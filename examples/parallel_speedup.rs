//! The deterministic parallel compute engine, end to end.
//!
//! Runs the identical HC checking loop twice — once on a single thread
//! and once on four — and shows the central guarantee of
//! `hc_core::parallel`: the thread count changes *only* the wall-clock.
//! Selected queries, round records, budget, and every posterior
//! probability are bit-identical, because all reductions use fixed
//! chunk boundaries and ordered merges (see `DESIGN.md`).
//!
//! ```bash
//! cargo run --release --example parallel_speedup
//! ```

use hc::prelude::*;
use hc::sim::SamplingOracle;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

const FACTS: usize = 12;

fn run_once(parallelism: Parallelism) -> hc_core::Result<(HcOutcome, f64)> {
    // One correlated 12-fact task (the Table III style workload): 4096
    // belief cells and 12 candidates to score per greedy step.
    let joint = hc::data::synth::markov_joint(FACTS, 0.55, 0.7);
    let beliefs = MultiBelief::new(vec![Belief::from_probs(joint)?]);
    let panel = ExpertPanel::from_accuracies(&[0.95, 0.9])?;
    let truths = vec![vec![true; FACTS]];
    let mut oracle = SamplingOracle::new(&truths, StdRng::seed_from_u64(7));
    let mut rng = StdRng::seed_from_u64(0);
    let mut config = HcConfig::new(4, 64);
    config.parallelism = parallelism;

    let start = Instant::now();
    let outcome = run_hc(
        beliefs,
        &panel,
        &GreedySelector::new(),
        &mut oracle,
        &config,
        &mut rng,
    )?;
    Ok((outcome, start.elapsed().as_secs_f64()))
}

fn main() -> hc_core::Result<()> {
    let (serial, serial_secs) = run_once(Parallelism::Serial)?;
    let (threaded, threaded_secs) = run_once(Parallelism::Threads(4))?;

    println!("serial (1 thread): {serial_secs:.3}s");
    println!("threads(4):        {threaded_secs:.3}s");
    println!("speedup:           {:.2}x", serial_secs / threaded_secs.max(1e-9));

    // The determinism contract, checked down to the bits.
    assert_eq!(serial.rounds.len(), threaded.rounds.len());
    assert_eq!(serial.budget_spent, threaded.budget_spent);
    for (a, b) in serial.rounds.iter().zip(&threaded.rounds) {
        assert_eq!(a.queries, b.queries, "round {}: same selections", a.round);
        assert_eq!(
            a.quality.to_bits(),
            b.quality.to_bits(),
            "round {}: bit-identical quality",
            a.round
        );
    }
    for (task_a, task_b) in serial.beliefs.tasks().iter().zip(threaded.beliefs.tasks()) {
        for (pa, pb) in task_a.probs().iter().zip(task_b.probs()) {
            assert_eq!(pa.to_bits(), pb.to_bits(), "bit-identical posterior");
        }
    }
    println!(
        "outcomes are bit-identical: {} rounds, {} budget, quality {:.6}",
        serial.rounds.len(),
        serial.budget_spent,
        serial.beliefs.quality()
    );
    Ok(())
}
