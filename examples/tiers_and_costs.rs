//! The §III-D extensions in one place: multi-tier crowds, cost-aware
//! experts, and the simulated platform's operational telemetry.
//!
//! Compares three deployments of the same corpus and answer budget:
//!
//! 1. the paper's two-tier design (unit pricing),
//! 2. the same design under accuracy-proportional pricing,
//! 3. a three-tier design checking with a mid-accuracy tier first.
//!
//! ```bash
//! cargo run --release --example tiers_and_costs
//! ```

use hc::prelude::*;
use hc_core::hc::{run_hc_costed, run_multi_tier, AccuracyCost, UnitCost};
use hc_sim::SimulatedPlatform;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> std::result::Result<(), Box<dyn std::error::Error>> {
    let mut config = SynthConfig::paper_default();
    config.n_tasks = 100;
    let dataset = generate(&config, &mut StdRng::seed_from_u64(11))?;
    let pipeline = PipelineConfig::paper_default();
    let prepared = prepare(&dataset, &pipeline, &InitMethod::CpVotes)?;
    let budget = 500u64;
    println!(
        "corpus: {} facts; init accuracy {:.3}, quality {:.2}; budget {budget}\n",
        dataset.n_items(),
        prepared.accuracy(&prepared.beliefs),
        prepared.beliefs.quality()
    );

    // 1. Two-tier, unit pricing, with platform telemetry.
    {
        let inner = ReplayOracle::new(&dataset, prepared.grouping)?;
        let mut platform = SimulatedPlatform::new(inner, 100);
        let mut beliefs = prepared.beliefs.clone();
        let mut rng = StdRng::seed_from_u64(12);
        let mut observer = |_: &MultiBelief, _: &hc_core::hc::RoundRecord| {};
        let (rounds, spent) = run_hc_costed(
            &mut beliefs,
            &prepared.panel,
            &GreedySelector::new(),
            &mut platform,
            &HcConfig::new(1, budget),
            &UnitCost,
            &mut rng,
            &mut observer,
        )?;
        for _ in 0..rounds.len() {
            platform.end_round();
        }
        let stats = platform.stats();
        println!(
            "two-tier / unit cost : accuracy {:.3}, quality {:7.2}, {} rounds, \
             {} answers, spend {}, crowd time {:.1} h",
            dataset_accuracy(&beliefs, &prepared.truths),
            beliefs.quality(),
            rounds.len(),
            stats.answers,
            spent,
            stats.clock.total_secs / 3600.0,
        );
    }

    // 2. Two-tier, accuracy-proportional pricing: same monetary budget
    //    buys fewer answers.
    {
        let mut oracle = ReplayOracle::new(&dataset, prepared.grouping)?;
        let mut beliefs = prepared.beliefs.clone();
        let mut rng = StdRng::seed_from_u64(12);
        let mut observer = |_: &MultiBelief, _: &hc_core::hc::RoundRecord| {};
        let (rounds, spent) = run_hc_costed(
            &mut beliefs,
            &prepared.panel,
            &GreedySelector::new(),
            &mut oracle,
            &HcConfig::new(1, budget),
            &AccuracyCost { base: 1, scale: 2 },
            &mut rng,
            &mut observer,
        )?;
        println!(
            "two-tier / acc. cost : accuracy {:.3}, quality {:7.2}, {} rounds, spend {}",
            dataset_accuracy(&beliefs, &prepared.truths),
            beliefs.quality(),
            rounds.len(),
            spent,
        );
    }

    // 3. Three tiers: the 0.85+ preliminary workers check first with 40%
    //    of the budget, then the real experts.
    {
        let crowd = dataset.crowd()?;
        let tiers_workers = crowd.split_tiers(&[0.85, 0.9]);
        let tiers = vec![
            (ExpertPanel::new(tiers_workers[1].clone()), budget * 2 / 5),
            (ExpertPanel::new(tiers_workers[2].clone()), budget * 3 / 5),
        ];
        let mut oracle = ReplayOracle::new(&dataset, prepared.grouping)?;
        let mut rng = StdRng::seed_from_u64(12);
        let outcome = run_multi_tier(
            prepared.beliefs.clone(),
            &tiers,
            &GreedySelector::new(),
            &mut oracle,
            1,
            &mut rng,
        )?;
        println!(
            "three-tier           : accuracy {:.3}, quality {:7.2}, {} rounds, spend {}",
            dataset_accuracy(&outcome.beliefs, &prepared.truths),
            outcome.quality(),
            outcome.rounds.len(),
            outcome.budget_spent,
        );
    }

    println!(
        "\nReading: pricier accurate answers shrink the answer count at a fixed\n\
         monetary budget; inserting a mid tier spends part of the budget on\n\
         noisier checks. The paper's plain two-tier design is the sweet spot."
    );
    Ok(())
}
