//! An unreliable crowd end to end: fault injection, retries, and
//! graceful degradation of the HC loop.
//!
//! Wraps the offline replay oracle in a seeded [`FaultPlan`] (uniform
//! per-attempt dropout plus a burst outage) and runs the same corpus
//! and budget at increasing dropout rates, once without retries and
//! once with the standard exponential-backoff-and-reassign policy.
//! The loop charges only for delivered answers, conditions each round's
//! Bayes update on the answers that arrived, and at 100% dropout stops
//! after its dry-round guard having spent nothing.
//!
//! ```bash
//! cargo run --release --example unreliable_crowd
//! ```

use hc::prelude::*;
use hc_core::hc::{run_hc_costed, UnitCost};
use hc_sim::{FaultPlan, FaultyOracle, RetryPolicy, SimulatedPlatform};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> std::result::Result<(), Box<dyn std::error::Error>> {
    let mut config = SynthConfig::paper_default();
    config.n_tasks = 100;
    let dataset = generate(&config, &mut StdRng::seed_from_u64(11))?;
    let pipeline = PipelineConfig::paper_default();
    let prepared = prepare(&dataset, &pipeline, &InitMethod::CpVotes)?;
    let budget = 500u64;
    println!(
        "corpus: {} facts; init accuracy {:.3}; budget {budget}\n",
        dataset.n_items(),
        prepared.accuracy(&prepared.beliefs),
    );
    println!(
        "{:>8} {:>9} {:>10} {:>8} {:>9} {:>9} {:>8} {:>7} {:>9}",
        "dropout", "policy", "accuracy", "rounds", "attempts", "answers", "retries", "spend", "busy h"
    );

    for dropout in [0.0, 0.3, 0.6, 1.0] {
        for (label, policy) in [
            ("no-retry", RetryPolicy::none()),
            ("retry", RetryPolicy::standard()),
        ] {
            let replay = ReplayOracle::new(&dataset, prepared.grouping)?;
            // Uniform dropout plus a 5-attempt outage every 200 attempts.
            let plan = FaultPlan::uniform(dropout, 21).with_burst(200, 5);
            let mut platform = SimulatedPlatform::new(FaultyOracle::new(replay, plan), 22)
                .with_retry_policy(policy)
                .with_reassignment_panel(&prepared.panel);
            let mut beliefs = prepared.beliefs.clone();
            let mut rng = StdRng::seed_from_u64(23);
            let mut observer = |_: &MultiBelief, _: &hc_core::hc::RoundRecord| {};
            let (rounds, spent) = run_hc_costed(
                &mut beliefs,
                &prepared.panel,
                &GreedySelector::new(),
                &mut platform,
                &HcConfig::new(1, budget),
                &UnitCost,
                &mut rng,
                &mut observer,
            )?;
            platform.end_round();
            let stats = platform.stats();
            println!(
                "{:>8.2} {:>9} {:>10.3} {:>8} {:>9} {:>9} {:>8} {:>7} {:>9.1}",
                dropout,
                label,
                dataset_accuracy(&beliefs, &prepared.truths),
                rounds.len(),
                stats.attempts,
                stats.answers,
                stats.retries,
                spent,
                stats.clock.total_secs / 3600.0,
            );
        }
    }

    println!(
        "\nReading: the loop pays only for delivered answers, so accuracy\n\
         degrades smoothly with dropout instead of collapsing; retries trade\n\
         simulated waiting time for fewer rounds, and at dropout 1.0 the\n\
         run ends after the dry-round guard with the budget untouched."
    );
    Ok(())
}
