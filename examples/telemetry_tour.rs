//! Telemetry tour: the observability stack end to end.
//!
//! One HC run recorded event by event, the metrics registry derived
//! from the log, per-phase hot-path timing, a JSONL export through
//! [`FileSink`] (read back and verified), and a faulty run where the
//! platform's retries and the injected faults land in the same ordered
//! stream as the loop's own events.
//!
//! ```bash
//! cargo run --release --example telemetry_tour
//! ```

use hc::prelude::*;
use hc::telemetry::timing;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The paper's Table I belief: three correlated facts.
fn table_one() -> hc_core::Result<MultiBelief> {
    let belief = Belief::from_probs(vec![
        0.09, 0.11, 0.10, 0.20, 0.08, 0.09, 0.15, 0.18,
    ])?;
    Ok(MultiBelief::new(vec![belief]))
}

fn main() -> hc_core::Result<()> {
    let panel = ExpertPanel::from_accuracies(&[0.95, 0.92])?;
    let selector = GreedySelector::new();
    let truths = vec![vec![true, true, false]];
    let config = HcConfig::new(2, 12);

    // ── 1. Record a run ────────────────────────────────────────────
    // `RecordingSink` keeps every event in emission order; timing
    // spans are off by default, so opt in before the run.
    timing::set_enabled(true);
    timing::reset();
    let mut sink = RecordingSink::new();
    let mut oracle = SamplingOracle::new(&truths, StdRng::seed_from_u64(7));
    let mut rng = StdRng::seed_from_u64(0);
    let outcome = run_hc_with_telemetry(
        table_one()?,
        &panel,
        &selector,
        &mut oracle,
        &config,
        &mut rng,
        &mut sink,
    )?;
    println!(
        "recorded run: {} rounds, {} budget, quality {:.4}",
        outcome.rounds.len(),
        outcome.budget_spent,
        outcome.quality()
    );
    println!("\n== event stream ({} events) ==", sink.len());
    for event in sink.events() {
        let round = event.round().map(|r| format!(" round={r}")).unwrap_or_default();
        println!("  {}{}", event.kind(), round);
    }

    // The per-round records expose the selector's regret: predicted
    // entropy (its objective for the chosen set) vs what the update
    // actually realised.
    println!("\n== per-round selection regret ==");
    for r in &outcome.rounds {
        println!(
            "  round {}: predicted {:.4}, realized {:.4}, regret {:+.4}",
            r.round,
            r.predicted_entropy,
            r.realized_entropy,
            r.realized_entropy - r.predicted_entropy
        );
    }

    // ── 2. Metrics derived from the log ────────────────────────────
    let metrics = MetricsRegistry::from_events(sink.events());
    println!("\n{}", metrics.render_table());

    // ── 3. Hot-path timing (selection / entropy / Bayes update) ────
    println!("{}", timing::snapshot().render_table());
    timing::set_enabled(false);

    // ── 4. JSONL export via FileSink, read back and verified ───────
    let path = std::env::temp_dir().join("hc_telemetry_tour.jsonl");
    {
        let mut file = FileSink::create(&path).expect("temp file is writable");
        for event in sink.events() {
            file.record(event);
        }
        file.flush();
    }
    let text = std::fs::read_to_string(&path).expect("trace reads back");
    let parsed = RecordingSink::from_jsonl(&text).expect("trace parses");
    assert_eq!(parsed.events(), sink.events(), "JSONL round-trips");
    println!("FileSink: {} events round-tripped through {}", sink.len(), path.display());
    let _ = std::fs::remove_file(&path);

    // ── 5. Faults and retries in the same stream ───────────────────
    // A `SharedRecorder` cloned into the fault layer, the platform,
    // and the loop fans all three into one ordered log.
    let recorder = SharedRecorder::new();
    let inner = SamplingOracle::new(&truths, StdRng::seed_from_u64(7));
    let faulty = FaultyOracle::new(inner, FaultPlan::uniform(0.4, 99))
        .with_telemetry(Box::new(recorder.clone()));
    let mut platform = SimulatedPlatform::new(faulty, 1)
        .with_retry_policy(RetryPolicy::standard())
        .with_reassignment_panel(&panel)
        .with_telemetry(Box::new(recorder.clone()));
    let mut loop_sink = recorder.clone();
    let mut rng = StdRng::seed_from_u64(1);
    let faulty_outcome = run_hc_with_telemetry(
        table_one()?,
        &panel,
        &selector,
        &mut platform,
        &config,
        &mut rng,
        &mut loop_sink,
    )?;
    let events = recorder.snapshot();
    let count = |pred: fn(&TelemetryEvent) -> bool| events.iter().filter(|e| pred(e)).count();
    println!(
        "\nfaulty run ({} rounds, {} budget): {} dispatched, {} delivered, \
         {} dropped, {} timed out, {} faults injected, {} retries",
        faulty_outcome.rounds.len(),
        faulty_outcome.budget_spent,
        count(|e| matches!(e, TelemetryEvent::QueryDispatched { .. })),
        count(|e| matches!(e, TelemetryEvent::AnswerDelivered { .. })),
        count(|e| matches!(e, TelemetryEvent::AnswerDropped { .. })),
        count(|e| matches!(e, TelemetryEvent::AnswerTimedOut { .. })),
        count(|e| matches!(e, TelemetryEvent::FaultInjected { .. })),
        count(|e| matches!(e, TelemetryEvent::RetryScheduled { .. })),
    );
    println!("{}", MetricsRegistry::from_events(&events).render_table());
    Ok(())
}
