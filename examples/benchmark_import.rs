//! Importing a crowdsourcing benchmark in the Zheng et al. CSV format
//! [29] — the format the paper's real datasets ship in — and running the
//! full HC pipeline on it.
//!
//! The example writes a small corpus out as `answer.csv`/`truth.csv`,
//! reads it back through the CSV importer (estimating worker accuracies
//! from the gold labels, as §II-A prescribes), and runs checking with an
//! entropy-adaptive k schedule.
//!
//! ```bash
//! cargo run --release --example benchmark_import
//! ```

use hc::data::csv::{load_benchmark_dir, save_benchmark_dir};
use hc::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> std::result::Result<(), Box<dyn std::error::Error>> {
    // Stand-in for a downloaded benchmark: a synthetic corpus exported
    // to the CSV format.
    let mut config = SynthConfig::paper_default();
    config.n_tasks = 60;
    let dataset = generate(&config, &mut StdRng::seed_from_u64(21))?;
    let dir = std::env::temp_dir().join("hc_benchmark_demo");
    save_benchmark_dir(&dataset, &dir)?;
    println!("wrote {}/answer.csv and truth.csv", dir.display());

    // Import: identifiers are interned, worker accuracies estimated
    // against the gold truth.
    let (imported, interning) = load_benchmark_dir(&dir)?;
    println!(
        "imported {} questions from {} workers (first: {:?} by {:?})",
        imported.n_items(),
        imported.n_workers(),
        interning.items.first(),
        interning.workers.first(),
    );
    println!(
        "estimated accuracies: {:?}",
        imported
            .worker_accuracies
            .iter()
            .map(|a| (a * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );

    // Corpus diagnostics before any inference.
    let stats = hc::data::matrix_stats(&imported.matrix);
    println!(
        "corpus stats: {:.1} answers/item, {:.0}% unanimous, Fleiss' kappa {:.3}",
        stats.answers_per_item,
        stats.unanimous_rate * 100.0,
        stats.fleiss_kappa,
    );

    // The usual pipeline, with an entropy-adaptive k schedule: batch
    // aggressively while uncertain, single queries near the end.
    let pipeline = PipelineConfig::paper_default();
    let prepared = prepare(&imported, &pipeline, &InitMethod::CpVotes)?;
    println!(
        "split at θ={}: {} experts, {} preliminary; init accuracy {:.3}",
        pipeline.theta,
        prepared.panel.len(),
        prepared.preliminary.len(),
        prepared.accuracy(&prepared.beliefs),
    );

    let mut oracle = ReplayOracle::new(&imported, prepared.grouping)?;
    let mut hc_config = HcConfig::new(8, 300);
    hc_config.k_schedule = KSchedule::EntropyAdaptive {
        nats_per_query: 1.0,
        max: 8,
    };
    let outcome = run_hc(
        prepared.beliefs.clone(),
        &prepared.panel,
        &GreedySelector::new(),
        &mut oracle,
        &hc_config,
        &mut StdRng::seed_from_u64(22),
    )?;
    println!(
        "after checking: accuracy {:.3}, quality {:.2}, {} rounds / {} budget",
        dataset_accuracy(&outcome.beliefs, &prepared.truths),
        outcome.quality(),
        outcome.rounds.len(),
        outcome.budget_spent,
    );

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
