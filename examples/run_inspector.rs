//! Run inspector: replay, explain traces, audits, and Prometheus
//! export over a recorded telemetry trace.
//!
//! Records one clean explain-mode run and one fault-injected run,
//! then inspects both from their JSONL traces alone: the replayed
//! entropy/spend trajectories match the live `HcOutcome` exactly, the
//! explain trace shows the greedy argmax's winning gain per pick, the
//! audit stays clean on the reliable run and flags the faulty one,
//! and the derived metrics render in Prometheus text format.
//!
//! ```bash
//! cargo run --release --example run_inspector
//! ```

use hc::eval::inspect_str;
use hc::prelude::*;
use hc::telemetry::{audit, ReplayedRun};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The paper's Table I belief: three correlated facts.
fn table_one() -> hc_core::Result<MultiBelief> {
    let belief = Belief::from_probs(vec![
        0.09, 0.11, 0.10, 0.20, 0.08, 0.09, 0.15, 0.18,
    ])?;
    Ok(MultiBelief::new(vec![belief]))
}

fn to_jsonl(events: &[TelemetryEvent]) -> String {
    let mut text = String::new();
    for event in events {
        text.push_str(&event.to_json_line());
        text.push('\n');
    }
    text
}

fn main() -> hc_core::Result<()> {
    let panel = ExpertPanel::from_accuracies(&[0.95, 0.92])?;
    let selector = GreedySelector::new();
    let truths = vec![vec![true, true, false]];

    // ── 1. A clean run recorded in explain mode ────────────────────
    // `explain_selection` makes the greedy selector emit its scored
    // gains and per-step picks into the event stream (it is a no-op
    // when the sink is disabled, so the plain path stays untouched).
    let mut config = HcConfig::new(2, 12);
    config.explain_selection = true;
    let mut sink = RecordingSink::new();
    let mut oracle = SamplingOracle::new(&truths, StdRng::seed_from_u64(7));
    let outcome = run_hc_with_telemetry(
        table_one()?,
        &panel,
        &selector,
        &mut oracle,
        &config,
        &mut StdRng::seed_from_u64(0),
        &mut sink,
    )?;
    let text = to_jsonl(sink.events());

    // ── 2. Replay: the JSONL alone reconstructs the run exactly ────
    let replayed = ReplayedRun::from_jsonl(&text);
    assert_eq!(replayed.total_spent(), outcome.budget_spent);
    assert_eq!(
        replayed.entropy_trajectory(),
        outcome
            .rounds
            .iter()
            .map(|r| r.realized_entropy)
            .collect::<Vec<_>>(),
        "replayed entropies are bit-identical to the live run"
    );
    println!(
        "replayed {} rounds from JSONL: spend {} and {} entropies match the live run exactly",
        replayed.rounds.len(),
        replayed.total_spent(),
        replayed.entropy_trajectory().len()
    );
    for round in &replayed.rounds {
        for pick in &round.selected {
            println!(
                "  round {} step {}: picked ({},{}) with gain {:.4} → query #{}",
                round.round, pick.step, pick.task, pick.fact, pick.gain, pick.query_id
            );
        }
    }

    // ── 3. The full inspect report (what `hc-eval inspect` prints) ─
    let inspection = inspect_str("clean explain-mode run", &text);
    assert!(inspection.passes(true), "clean run must audit clean");
    println!("\n{}", inspection.report);

    // ── 4. Prometheus text exposition of the derived metrics ──────
    let prom = inspection.metrics.to_prometheus();
    let preview: Vec<&str> = prom.lines().take(8).collect();
    println!("== prometheus exposition (first lines) ==\n{}", preview.join("\n"));

    // ── 5. A faulty run: the audit flags what went wrong ───────────
    let recorder = SharedRecorder::new();
    let inner = SamplingOracle::new(&truths, StdRng::seed_from_u64(7));
    let faulty = FaultyOracle::new(inner, FaultPlan::uniform(0.85, 99))
        .with_telemetry(Box::new(recorder.clone()));
    let mut platform = SimulatedPlatform::new(faulty, 1)
        .with_retry_policy(RetryPolicy::standard())
        .with_telemetry(Box::new(recorder.clone()));
    let mut loop_sink = recorder.clone();
    run_hc_with_telemetry(
        table_one()?,
        &panel,
        &selector,
        &mut platform,
        &HcConfig::new(2, 12),
        &mut StdRng::seed_from_u64(1),
        &mut loop_sink,
    )?;
    let report = audit(&recorder.snapshot());
    assert_eq!(report.error_count(), 0, "faults are anomalies, not contract bugs");
    println!("\n== audit of the faulty run ==\n{}", report.render());
    Ok(())
}
