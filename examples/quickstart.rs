//! Quickstart: the paper's Table I example, end to end.
//!
//! Three correlated facts with a known joint belief, two expert
//! checkers, one round of greedy checking-task selection, Bayesian
//! update, and the resulting labels.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use hc::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> hc_core::Result<()> {
    // The belief state of Table I in the paper: three correlated facts
    // f1, f2, f3 with an explicit joint distribution over the 8
    // observations. Bit i of the observation index is the truth value
    // of f_{i+1}.
    let belief = Belief::from_probs(vec![
        0.09, // o1: f1=F f2=F f3=F
        0.11, // o2: f1=T f2=F f3=F
        0.10, // o3: f1=F f2=T f3=F
        0.20, // o4: f1=T f2=T f3=F
        0.08, // o5: f1=F f2=F f3=T
        0.09, // o6: f1=T f2=F f3=T
        0.15, // o7: f1=F f2=T f3=T
        0.18, // o8: f1=T f2=T f3=T
    ])?;
    println!("prior marginals:    {:?}", rounded(&belief.marginals()));
    println!("prior quality:      {:.4}", belief.quality());

    // A heterogeneous crowd, split at θ = 0.9 into experts (checkers)
    // and preliminary workers (who produced the belief above).
    let crowd = Crowd::from_accuracies(&[0.95, 0.92, 0.7, 0.65, 0.6])?;
    let split = crowd.split(0.9);
    println!(
        "crowd split at 0.9: {} experts / {} preliminary",
        split.experts.len(),
        split.preliminary.len()
    );

    // Which two facts should the experts check? Greedy (Algorithm 2)
    // maximises the expected quality improvement = minimises
    // H(O | AS_CE^T) (Theorem 2).
    let beliefs = MultiBelief::new(vec![belief]);
    let selector = GreedySelector::new();
    let mut rng = StdRng::seed_from_u64(0);
    let candidates = hc::core::selection::global_facts(&beliefs);
    let queries = selector.select(&beliefs, &split.experts, 2, &candidates, &mut rng)?;
    println!(
        "selected checking queries: {:?}",
        queries.iter().map(|q| format!("f{}", q.fact.0 + 1)).collect::<Vec<_>>()
    );

    // Expected quality improvement of that query set (Theorem 1).
    let facts: Vec<FactId> = queries.iter().map(|q| q.fact).collect();
    let dq = hc::core::quality::expected_quality_improvement(
        &beliefs.tasks()[0],
        &facts,
        &split.experts,
    )?;
    println!("expected quality improvement: {dq:.4}");

    // Run the full checking loop against a simulated crowd whose hidden
    // ground truth is (true, true, false) — observation o4.
    let truths = vec![vec![true, true, false]];
    let mut oracle = SamplingOracle::new(&truths, StdRng::seed_from_u64(7));
    let outcome = run_hc(
        beliefs,
        &split.experts,
        &selector,
        &mut oracle,
        &HcConfig::new(2, 12),
        &mut rng,
    )?;
    println!(
        "after {} rounds ({} budget): quality {:.4}",
        outcome.rounds.len(),
        outcome.budget_spent,
        outcome.quality()
    );
    println!("final labels: {:?}", outcome.labels()[0]);
    assert_eq!(outcome.labels()[0], truths[0], "experts recover the truth");
    println!("ground truth recovered ✓");
    Ok(())
}

fn rounded(xs: &[f64]) -> Vec<f64> {
    xs.iter().map(|x| (x * 1000.0).round() / 1000.0).collect()
}
