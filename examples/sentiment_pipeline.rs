//! The paper's main pipeline on a synthetic sentiment corpus.
//!
//! 1. Generate a 200-task × 5-fact corpus with an 8-worker
//!    heterogeneous crowd (the §IV-A workload stand-in).
//! 2. Split the crowd at θ = 0.9; aggregate the preliminary answers
//!    with EBCC to initialise the belief state.
//! 3. Run the hierarchical checking loop (greedy selection, budget
//!    1000) replaying the recorded expert answers.
//! 4. Report accuracy/quality against the hidden ground truth.
//!
//! ```bash
//! cargo run --release --example sentiment_pipeline
//! ```

use hc::prelude::*;
use hc_core::hc::run_hc_with_observer;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> std::result::Result<(), Box<dyn std::error::Error>> {
    // 1. The corpus: 1000 sentiment facts merged into 200 five-fact
    //    tasks, correlated within task, 8 workers answering everything.
    let config = SynthConfig::paper_default();
    let mut rng = StdRng::seed_from_u64(42);
    let dataset = generate(&config, &mut rng)?;
    println!(
        "corpus: {} items, {} workers, {} answers",
        dataset.n_items(),
        dataset.n_workers(),
        dataset.matrix.len()
    );

    // 2. EBCC over the preliminary answers initialises the belief.
    let pipeline = PipelineConfig::paper_default();
    let experts: Vec<u32> = dataset
        .worker_accuracies
        .iter()
        .enumerate()
        .filter(|(_, &a)| a >= pipeline.theta)
        .map(|(w, _)| w as u32)
        .collect();
    let cp_only = dataset.matrix.filter_workers(|w| !experts.contains(&w));
    let ebcc = Ebcc::new().aggregate(&cp_only)?;
    let prepared = prepare(
        &dataset,
        &pipeline,
        &InitMethod::Marginals(ebcc.binary_marginals()),
    )?;
    println!(
        "init (EBCC on CP answers): accuracy {:.3}, quality {:.2}",
        prepared.accuracy(&prepared.beliefs),
        prepared.beliefs.quality()
    );

    // 3. The checking loop: k = 1 query per round, every expert answers
    //    each query, recorded answers replayed (the paper's offline
    //    evaluation mode).
    let mut oracle = ReplayOracle::new(&dataset, prepared.grouping)?;
    let selector = GreedySelector::new();
    let truths = prepared.truths.clone();
    let mut loop_rng = StdRng::seed_from_u64(1);
    let outcome = run_hc_with_observer(
        prepared.beliefs.clone(),
        &prepared.panel,
        &selector,
        &mut oracle,
        &HcConfig::new(1, 1000),
        &mut loop_rng,
        |state, record| {
            if record.budget_spent % 200 == 0 {
                println!(
                    "  budget {:>4}: accuracy {:.3}, quality {:.2}",
                    record.budget_spent,
                    dataset_accuracy(state, &truths),
                    record.quality
                );
            }
        },
    )?;

    // 4. Final report.
    let final_acc = dataset_accuracy(&outcome.beliefs, &prepared.truths);
    println!(
        "final: accuracy {:.3}, quality {:.2}, {} rounds, budget spent {}",
        final_acc,
        outcome.quality(),
        outcome.rounds.len(),
        outcome.budget_spent
    );
    assert!(
        final_acc > prepared.accuracy(&prepared.beliefs),
        "checking should improve on the initial labels"
    );
    Ok(())
}
