//! All eight truth-inference baselines on one corpus.
//!
//! Generates a heterogeneous-crowd corpus, runs MV, DS, ZC, GLAD, CRH,
//! BWA, BCC and EBCC on the same answer matrix, and prints a comparison
//! table: label accuracy, how well each algorithm recovered the workers'
//! true accuracy ordering, iterations, and convergence.
//!
//! ```bash
//! cargo run --release --example aggregator_showdown
//! ```

use hc::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> std::result::Result<(), Box<dyn std::error::Error>> {
    let mut config = SynthConfig::paper_default();
    config.n_tasks = 400; // 2000 facts: enough signal to rank methods.
    let mut rng = StdRng::seed_from_u64(7);
    let dataset = generate(&config, &mut rng)?;
    println!(
        "corpus: {} items × {} workers (true accuracies {:?})\n",
        dataset.n_items(),
        dataset.n_workers(),
        dataset
            .worker_accuracies
            .iter()
            .map(|a| (a * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );

    println!(
        "{:>6} {:>10} {:>12} {:>7} {:>10}",
        "method", "accuracy", "rank-corr", "iters", "converged"
    );
    for agg in all_aggregators() {
        let result = agg.aggregate(&dataset.matrix)?;
        let accuracy = dataset.accuracy_of(&result.map_labels());
        let rank_corr = spearman(&dataset.worker_accuracies, &result.worker_reliability);
        println!(
            "{:>6} {:>10.4} {:>12.3} {:>7} {:>10}",
            agg.name(),
            accuracy,
            rank_corr,
            result.iterations,
            result.converged
        );
    }
    Ok(())
}

/// Spearman rank correlation between true worker accuracies and the
/// estimated reliabilities — how well a method recovered who to trust.
fn spearman(truth: &[f64], estimate: &[f64]) -> f64 {
    let n = truth.len() as f64;
    let rank = |xs: &[f64]| -> Vec<f64> {
        let mut order: Vec<usize> = (0..xs.len()).collect();
        order.sort_by(|&a, &b| xs[a].partial_cmp(&xs[b]).unwrap_or(std::cmp::Ordering::Equal));
        let mut ranks = vec![0.0; xs.len()];
        for (r, &i) in order.iter().enumerate() {
            ranks[i] = r as f64;
        }
        ranks
    };
    let rt = rank(truth);
    let re = rank(estimate);
    let d2: f64 = rt.iter().zip(&re).map(|(a, b)| (a - b).powi(2)).sum();
    1.0 - 6.0 * d2 / (n * (n * n - 1.0))
}
