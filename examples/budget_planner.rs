//! Budget planning: the k / θ trade-off on a fixed corpus.
//!
//! For a practitioner deciding how to spend a checking budget, this
//! sweeps the per-round query count `k` and the expert threshold θ on
//! one corpus and prints the accuracy each combination reaches at
//! several budgets — the operational reading of Figures 3 and 4.
//!
//! ```bash
//! cargo run --release --example budget_planner
//! ```

use hc::prelude::*;
use hc_core::hc::run_hc_with_observer;
use rand::rngs::StdRng;
use rand::SeedableRng;

const BUDGETS: [u64; 3] = [200, 500, 1000];
const KS: [usize; 3] = [1, 3, 5];
const THETAS: [f64; 3] = [0.8, 0.85, 0.9];

fn main() -> std::result::Result<(), Box<dyn std::error::Error>> {
    let config = SynthConfig::paper_default();
    let mut rng = StdRng::seed_from_u64(42);
    let dataset = generate(&config, &mut rng)?;

    println!(
        "{:>6} {:>5} {:>8} | {:>14} {:>14} {:>14}",
        "theta", "k", "experts", "acc@200", "acc@500", "acc@1000"
    );
    for &theta in &THETAS {
        for &k in &KS {
            let pipeline = PipelineConfig {
                theta,
                group_size: 5,
            };
            // EBCC init from the sub-θ workers.
            let expert_ids: Vec<u32> = dataset
                .worker_accuracies
                .iter()
                .enumerate()
                .filter(|(_, &a)| a >= theta)
                .map(|(w, _)| w as u32)
                .collect();
            let cp_only = dataset.matrix.filter_workers(|w| !expert_ids.contains(&w));
            let marginals = Ebcc::new().aggregate(&cp_only)?.binary_marginals();
            let prepared = prepare(&dataset, &pipeline, &InitMethod::Marginals(marginals))?;

            let mut oracle = ReplayOracle::new(&dataset, prepared.grouping)?;
            let selector = GreedySelector::new();
            let truths = prepared.truths.clone();
            let mut at_budget = vec![f64::NAN; BUDGETS.len()];
            let mut loop_rng = StdRng::seed_from_u64(1);
            let outcome = run_hc_with_observer(
                prepared.beliefs.clone(),
                &prepared.panel,
                &selector,
                &mut oracle,
                &HcConfig::new(k, *BUDGETS.last().unwrap()),
                &mut loop_rng,
                |state, record| {
                    for (slot, &b) in at_budget.iter_mut().zip(&BUDGETS) {
                        if record.budget_spent <= b {
                            *slot = dataset_accuracy(state, &truths);
                        }
                    }
                },
            )?;
            let _ = outcome;
            println!(
                "{:>6.2} {:>5} {:>8} | {:>14.4} {:>14.4} {:>14.4}",
                theta,
                k,
                prepared.panel.len(),
                at_budget[0],
                at_budget[1],
                at_budget[2]
            );
        }
    }
    println!(
        "\nReading: θ dominates on this corpus — a smaller, sharper panel makes\n\
         each query cheaper (budget cost = |CE|) and more informative. The k\n\
         differences are small (re-planning after every answer helps only\n\
         marginally when most facts get checked at most once), matching the\n\
         ≤ 3.7% spread the paper reports."
    );
    Ok(())
}
