//! Run-inspector contract tests: a recorded JSONL trace alone must
//! reconstruct the live run exactly (entropy and spend trajectories
//! bit-identical to the `HcOutcome`), the audit must stay silent on
//! clean runs and flag injected dropout/retry-storm runs, and the
//! parser/replay layer must survive arbitrarily malformed input
//! without panicking.

use hc::eval::inspect_str;
use hc::prelude::*;
use hc::telemetry::{audit, ReplayedRun};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn corpus(seed: u64) -> CrowdDataset {
    let mut config = SynthConfig::paper_default();
    config.n_tasks = 10;
    generate(&config, &mut StdRng::seed_from_u64(seed)).unwrap()
}

fn small_corpus(seed: u64) -> CrowdDataset {
    let mut config = SynthConfig::paper_default();
    config.n_tasks = 6;
    generate(&config, &mut StdRng::seed_from_u64(seed)).unwrap()
}

fn prepared(dataset: &CrowdDataset) -> Prepared {
    prepare(
        dataset,
        &PipelineConfig::paper_default(),
        &InitMethod::CpVotes,
    )
    .unwrap()
}

/// Runs a clean (reliable-oracle) recorded run and returns the outcome
/// plus its serialized trace.
fn clean_run(seed: u64, budget: u64) -> (HcOutcome, String) {
    let dataset = corpus(seed);
    let p = prepared(&dataset);
    let mut sink = RecordingSink::new();
    let mut oracle = ReplayOracle::new(&dataset, p.grouping).unwrap();
    let outcome = run_hc_with_telemetry(
        p.beliefs.clone(),
        &p.panel,
        &GreedySelector::new(),
        &mut oracle,
        &HcConfig::new(2, budget),
        &mut StdRng::seed_from_u64(seed + 1),
        &mut sink,
    )
    .unwrap();
    let text = sink.to_jsonl();
    (outcome, text)
}

#[test]
fn replay_reconstructs_the_outcome_exactly_from_jsonl_alone() {
    let (outcome, text) = clean_run(70, 80);
    let run = ReplayedRun::from_jsonl(&text);
    assert!(run.skipped.is_empty());
    assert!(run.shape.is_some());
    assert!(run.open_dispatches.is_empty());
    assert_eq!(run.rounds.len(), outcome.rounds.len());

    // Bit-exact trajectories: the JSON layer round-trips f64s exactly,
    // so equality here is `==`, not approximate.
    let live_entropy: Vec<f64> = outcome.rounds.iter().map(|r| r.realized_entropy).collect();
    assert_eq!(run.entropy_trajectory(), live_entropy);
    let live_spend: Vec<u64> = outcome.rounds.iter().map(|r| r.budget_spent).collect();
    assert_eq!(run.spend_trajectory(), live_spend);
    assert_eq!(run.total_spent(), outcome.budget_spent);
    assert_eq!(
        run.final_entropy(),
        outcome.rounds.last().map(|r| r.realized_entropy)
    );

    for (replayed, record) in run.rounds.iter().zip(&outcome.rounds) {
        assert_eq!(replayed.round, record.round);
        let live_queries: Vec<(usize, u32)> = record
            .queries
            .iter()
            .map(|gf| (gf.task, gf.fact.0))
            .collect();
        assert_eq!(replayed.queries, live_queries);
        assert_eq!(replayed.predicted_entropy, record.predicted_entropy);
        assert_eq!(replayed.realized_entropy, Some(record.realized_entropy));
        assert_eq!(replayed.answers_requested, record.answers_requested);
        assert_eq!(replayed.answers_received, record.answers_received);
        assert_eq!(replayed.dispatched, record.answers_requested);
        assert_eq!(replayed.delivered, record.answers_received);
    }
    let end = run.end.expect("RunFinished replayed");
    assert_eq!(end.rounds, outcome.rounds.len());
    assert_eq!(end.budget_spent, outcome.budget_spent);
}

#[test]
fn audit_is_silent_on_a_clean_run_and_inspect_passes_strict() {
    let (outcome, text) = clean_run(72, 60);
    let (events, skipped) = hc::telemetry::replay::parse_jsonl(&text);
    assert!(skipped.is_empty());
    let report = audit(&events);
    assert!(report.is_clean(), "clean run must audit clean:\n{}", report.render());

    let inspection = inspect_str("clean", &text);
    assert!(inspection.passes(true));
    assert_eq!(inspection.replay.total_spent(), outcome.budget_spent);
    assert!(inspection.report.contains("audit: clean"));
    assert!(inspection.report.contains("## rounds"));
}

#[test]
fn audit_flags_a_dropout_heavy_run_as_warnings_only() {
    let dataset = corpus(74);
    let p = prepared(&dataset);
    let recorder = SharedRecorder::new();
    let replay = ReplayOracle::new(&dataset, p.grouping).unwrap();
    let mut oracle = FaultyOracle::new(replay, FaultPlan::uniform(0.9, 75))
        .with_telemetry(Box::new(recorder.clone()));
    let mut loop_sink = recorder.clone();
    run_hc_with_telemetry(
        p.beliefs.clone(),
        &p.panel,
        &GreedySelector::new(),
        &mut oracle,
        &HcConfig::new(2, 40),
        &mut StdRng::seed_from_u64(76),
        &mut loop_sink,
    )
    .unwrap();
    let events = recorder.snapshot();
    let report = audit(&events);
    assert_eq!(
        report.error_count(),
        0,
        "faults are anomalies, not contract violations:\n{}",
        report.render()
    );
    assert!(
        report.findings.iter().any(|f| f.code == "delivery_deficit"),
        "90% dropout must flag a delivery deficit:\n{}",
        report.render()
    );
}

#[test]
fn audit_flags_a_retry_storm_as_warnings_only() {
    let dataset = corpus(77);
    let p = prepared(&dataset);
    let recorder = SharedRecorder::new();
    let replay = ReplayOracle::new(&dataset, p.grouping).unwrap();
    let faulty = FaultyOracle::new(replay, FaultPlan::uniform(0.9, 78))
        .with_telemetry(Box::new(recorder.clone()));
    let mut platform = SimulatedPlatform::new(faulty, 79)
        .with_retry_policy(RetryPolicy::standard())
        .with_telemetry(Box::new(recorder.clone()));
    let mut loop_sink = recorder.clone();
    run_hc_with_telemetry(
        p.beliefs.clone(),
        &p.panel,
        &GreedySelector::new(),
        &mut platform,
        &HcConfig::new(2, 40),
        &mut StdRng::seed_from_u64(80),
        &mut loop_sink,
    )
    .unwrap();
    let events = recorder.snapshot();
    let retries = events
        .iter()
        .filter(|e| matches!(e, TelemetryEvent::RetryScheduled { .. }))
        .count();
    assert!(retries >= 8, "expected a storm, saw {retries} retries");
    let report = audit(&events);
    assert_eq!(report.error_count(), 0, "{}", report.render());
    assert!(
        report.findings.iter().any(|f| f.code == "retry_storm"),
        "retries ({retries}) over dispatches must flag a storm:\n{}",
        report.render()
    );
}

#[test]
fn explain_run_emits_consistent_selection_events() {
    let dataset = corpus(82);
    let p = prepared(&dataset);
    let mut config = HcConfig::new(2, 60);
    config.explain_selection = true;
    let mut sink = RecordingSink::new();
    let mut oracle = ReplayOracle::new(&dataset, p.grouping).unwrap();
    let outcome = run_hc_with_telemetry(
        p.beliefs.clone(),
        &p.panel,
        &GreedySelector::new(),
        &mut oracle,
        &config,
        &mut StdRng::seed_from_u64(83),
        &mut sink,
    )
    .unwrap();
    let run = ReplayedRun::from_events(sink.events());
    assert_eq!(run.rounds.len(), outcome.rounds.len());
    let mut expected_next_id = 1u64;
    for (replayed, record) in run.rounds.iter().zip(&outcome.rounds) {
        // One explained pick per selected query, in selection order,
        // with the greedy's positive winning gain and sequential
        // loop-assigned causal ids.
        assert_eq!(replayed.selected.len(), record.queries.len());
        assert!(replayed.candidates_scored >= record.queries.len());
        for (idx, (pick, gf)) in replayed.selected.iter().zip(&record.queries).enumerate() {
            assert_eq!(pick.step, idx);
            assert_eq!((pick.task, pick.fact), (gf.task, gf.fact.0));
            assert!(pick.gain.is_finite() && pick.gain > 0.0, "gain {}", pick.gain);
            assert_eq!(pick.query_id, expected_next_id);
            expected_next_id += 1;
        }
    }
    // Every dispatch carries the id of the pick that caused it.
    let pick_ids: std::collections::BTreeSet<u64> = run
        .rounds
        .iter()
        .flat_map(|r| r.selected.iter().map(|s| s.query_id))
        .collect();
    for event in sink.events() {
        if let TelemetryEvent::QueryDispatched { query_id, .. } = event {
            assert!(pick_ids.contains(query_id), "orphan dispatch id {query_id}");
        }
    }
    // The explained run audits clean too.
    assert!(audit(sink.events()).is_clean());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn replay_is_exact_under_arbitrary_fault_plans(
        dropout in 0.0f64..=1.0,
        timeout in 0.0f64..=0.5,
        churn in 0.0f64..=0.2,
        plan_seed in 0u64..1_000,
    ) {
        let dataset = small_corpus(84);
        let p = prepared(&dataset);
        let recorder = SharedRecorder::new();
        let replay_oracle = ReplayOracle::new(&dataset, p.grouping).unwrap();
        let plan = FaultPlan::uniform(dropout, plan_seed)
            .with_timeouts(timeout)
            .with_churn(churn);
        let mut oracle = FaultyOracle::new(replay_oracle, plan)
            .with_telemetry(Box::new(recorder.clone()));
        let mut loop_sink = recorder.clone();
        let outcome = run_hc_with_telemetry(
            p.beliefs.clone(),
            &p.panel,
            &GreedySelector::new(),
            &mut oracle,
            &HcConfig::new(2, 40),
            &mut StdRng::seed_from_u64(85),
            &mut loop_sink,
        )
        .unwrap();
        let mut text = String::new();
        for event in recorder.snapshot() {
            text.push_str(&event.to_json_line());
            text.push('\n');
        }
        let run = ReplayedRun::from_jsonl(&text);
        prop_assert!(run.skipped.is_empty());
        let live_entropy: Vec<f64> =
            outcome.rounds.iter().map(|r| r.realized_entropy).collect();
        prop_assert_eq!(run.entropy_trajectory(), live_entropy);
        let live_spend: Vec<u64> =
            outcome.rounds.iter().map(|r| r.budget_spent).collect();
        prop_assert_eq!(run.spend_trajectory(), live_spend);
        prop_assert_eq!(run.total_spent(), outcome.budget_spent);
        // Even heavily faulted runs satisfy the stream contract.
        let (events, _) = hc::telemetry::replay::parse_jsonl(&text);
        let report = audit(&events);
        prop_assert_eq!(report.error_count(), 0, "{}", report.render());
    }

    #[test]
    fn from_json_line_never_panics_on_garbage(line in "\\PC*") {
        let line: String = line;
        let _ = TelemetryEvent::from_json_line(&line);
    }

    #[test]
    fn truncated_lines_are_rejected_with_an_error(cut_seed in 0usize..10_000) {
        let event = TelemetryEvent::QueryDispatched {
            round: 3,
            task: 1,
            fact: 2,
            worker: 4,
            query_id: 9,
        };
        let line = event.to_json_line();
        let cut_seed: usize = cut_seed;
        let cut = 1 + cut_seed % (line.len() - 1);
        prop_assert!(TelemetryEvent::from_json_line(&line[..cut]).is_err());
    }

    #[test]
    fn unknown_kinds_are_rejected_with_an_error(kind in "[a-z_]{0,24}") {
        // No event kind starts with "zz_", so the prefix guarantees
        // the unknown-kind path without filtering the input space.
        let kind: String = kind;
        let line = format!(r#"{{"type":"zz_{kind}","round":1}}"#);
        prop_assert!(TelemetryEvent::from_json_line(&line).is_err());
    }

    #[test]
    fn replay_skips_and_reports_garbage_without_losing_good_lines(
        garbage in "[^\\r\\n]{0,40}",
        position in 0usize..6,
    ) {
        let garbage: String = garbage;
        let position: usize = position;
        let (_, text) = clean_run(86, 20);
        let lines: Vec<&str> = text.lines().collect();
        let at = position.min(lines.len());
        let mut mixed = String::new();
        for (i, line) in lines.iter().enumerate() {
            if i == at {
                mixed.push_str(&garbage);
                mixed.push('\n');
            }
            mixed.push_str(line);
            mixed.push('\n');
        }
        let clean = ReplayedRun::from_jsonl(&text);
        let run = ReplayedRun::from_jsonl(&mixed);
        // A non-blank unparseable line is reported; blank ones are
        // ignored (and a line that happens to parse folds as an event).
        let bad = usize::from(
            !garbage.trim().is_empty() && TelemetryEvent::from_json_line(&garbage).is_err(),
        );
        prop_assert_eq!(run.skipped.len(), bad);
        prop_assert!(run.events >= clean.events);
        prop_assert_eq!(run.end, clean.end);
    }
}
