//! The paper's concrete numeric claims, pinned as tests — every number
//! the text states explicitly should be reproducible from this
//! implementation.

use hc::prelude::*;
use hc_core::entropy::{binary_entropy, conditional_entropy};
use hc_core::quality::expected_quality_improvement;

/// The Table I belief (bit i of the observation index = truth of f_{i+1}).
fn table_i() -> Belief {
    Belief::from_probs(vec![0.09, 0.11, 0.10, 0.20, 0.08, 0.09, 0.15, 0.18]).unwrap()
}

#[test]
fn intro_majority_vote_error_rate_formula() {
    // §I: three workers with error rate e; majority vote errs with
    // probability 3e²(1−e) + e³ < e for e < 0.5. Verify the formula by
    // enumerating outcomes and the inequality across the range.
    for e in [0.05f64, 0.1, 0.2, 0.3, 0.4, 0.49] {
        // Exact enumeration: majority errs iff ≥ 2 of 3 workers err.
        let exact = 3.0 * e * e * (1.0 - e) + e * e * e;
        // The paper's closed form.
        let formula = 3.0 * e * e * (1.0 - e) + e.powi(3);
        assert!((exact - formula).abs() < 1e-12);
        assert!(formula < e, "e = {e}: aggregated {formula} !< {e}");
    }
    // And at e = 0.5 aggregation gains nothing.
    let e: f64 = 0.5;
    let formula = 3.0 * e * e * (1.0 - e) + e.powi(3);
    assert!((formula - 0.5).abs() < 1e-12);
}

#[test]
fn equation_4_marginals_of_table_i() {
    // P(f1) = 0.58, P(f2) = 0.63, P(f3) = 0.50.
    let b = table_i();
    assert!((b.marginal(FactId(0)) - 0.58).abs() < 1e-12);
    assert!((b.marginal(FactId(1)) - 0.63).abs() < 1e-12);
    assert!((b.marginal(FactId(2)) - 0.50).abs() < 1e-12);
}

#[test]
fn equation_3_fails_for_correlated_facts() {
    // §II-A: Π P(¬f_i) = 0.42·0.37·0.50 ≈ 0.0777 ≠ P(o1) = 0.09.
    let b = table_i();
    let product: f64 = (0..3).map(|i| 1.0 - b.marginal(FactId(i))).product();
    assert!((product - 0.42 * 0.37 * 0.50).abs() < 1e-12);
    assert!((product - 0.0777).abs() < 1e-4);
    assert!((b.prob(Observation(0)) - 0.09).abs() < 1e-12);
    assert!((product - 0.09).abs() > 0.01, "correlation must be visible");
}

#[test]
fn equation_10_single_query_answer_probability() {
    // For one query and one worker: P(answer = Yes) = Pr_cr·P(f) +
    // (1−Pr_cr)·(1−P(f)); in the degenerate deterministic case it is
    // exactly Pr_cr (o ⊨ f) or 1−Pr_cr (o ⊨ ¬f).
    use hc_core::answer::{answer_set_probability, AnswerSet, QuerySet};
    let certain_true = Belief::point_mass(1, Observation(1)).unwrap();
    let certain_false = Belief::point_mass(1, Observation(0)).unwrap();
    let queries = QuerySet::new(vec![FactId(0)], 1).unwrap();
    let yes = AnswerSet::new(&[Answer::Yes]);
    let p_true = answer_set_probability(&certain_true, &queries, 0.85, yes);
    let p_false = answer_set_probability(&certain_false, &queries, 0.85, yes);
    assert!((p_true - 0.85).abs() < 1e-12);
    assert!((p_false - 0.15).abs() < 1e-12);
}

#[test]
fn definition_2_quality_is_negative_entropy() {
    let b = table_i();
    // Q(F) = Σ P(o) log P(o) = −H(O); H of Table I ≈ 2.0237 nats.
    assert!((b.quality() + b.entropy()).abs() < 1e-12);
    assert!((b.entropy() - 2.0237).abs() < 1e-3);
    // Maximum quality is 0 (deterministic data).
    let point = Belief::point_mass(3, Observation(4)).unwrap();
    assert_eq!(point.quality(), 0.0);
}

#[test]
fn theorem_1_gain_equals_mutual_information_on_table_i() {
    // ΔQ(F|T) = H(O) − H(O|AS^T) ≥ 0, with equality iff the queries are
    // uninformative.
    let b = table_i();
    let panel = ExpertPanel::from_accuracies(&[0.9]).unwrap();
    for f in 0..3u32 {
        let dq = expected_quality_improvement(&b, &[FactId(f)], &panel).unwrap();
        let h = b.entropy();
        let h_cond = conditional_entropy(&b, &[FactId(f)], &panel).unwrap();
        assert!((dq - (h - h_cond)).abs() < 1e-12);
        assert!(dq > 0.0, "a 0.9-accuracy answer about f{f} is informative");
    }
}

#[test]
fn section_v_special_case_max_entropy_query() {
    // §V: with one worker and one query per round over independent
    // facts, the optimal query is the maximum-entropy one. On Table I
    // (correlated!), f3 has marginal 0.5 — maximal binary entropy — and
    // greedy indeed picks it.
    let b = table_i();
    let beliefs = MultiBelief::new(vec![b.clone()]);
    let panel = ExpertPanel::from_accuracies(&[0.8]).unwrap();
    let candidates = hc::core::selection::global_facts(&beliefs);
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    use rand::SeedableRng as _;
    let sel = GreedySelector::new()
        .select(&beliefs, &panel, 1, &candidates, &mut rng)
        .unwrap();
    assert_eq!(sel[0].fact, FactId(2), "f3 has P = 0.5");
    assert!((binary_entropy(b.marginal(FactId(2))) - std::f64::consts::LN_2).abs() < 1e-12);
}

#[test]
fn algorithm_3_budget_arithmetic() {
    // Line 7: B ← B − |T|·|CE|; the loop ends when B < |T|·|CE|.
    use hc_core::hc::{run_hc, HcConfig};
    use rand::SeedableRng;
    let beliefs = MultiBelief::new(vec![table_i()]);
    let panel = ExpertPanel::from_accuracies(&[0.9, 0.85, 0.8]).unwrap(); // |CE| = 3
    let truths = vec![vec![true, true, false]];
    let mut oracle = SamplingOracle::new(&truths, rand::rngs::StdRng::seed_from_u64(2));
    let outcome = run_hc(
        beliefs,
        &panel,
        &GreedySelector::new(),
        &mut oracle,
        &HcConfig::new(1, 10), // 3 rounds of cost 3 fit; 1 budget stranded
        &mut rand::rngs::StdRng::seed_from_u64(3),
    )
    .unwrap();
    assert_eq!(outcome.rounds.len(), 3);
    assert_eq!(outcome.budget_spent, 9);
}
