//! Golden-trace snapshot of a three-group corpus run.
//!
//! The corpus-level sibling of `tests/golden_trace.rs`: pins the full
//! observable behaviour of the cross-group scheduler on three literal
//! fact groups sharing a pooled budget of 10 under the θ = 0.9 panel
//! `[0.95, 0.92]` with truthful expert answers — the allocation order
//! step by step, every scheduled gain, the entropy after every
//! advance, each group's terminal spend, and the final posteriors.
//!
//! Everything here is RNG-free (the greedy selector draws nothing and
//! the oracle answers ground truth), so the literals cannot drift with
//! the random number stack; they were produced by this exact pipeline
//! and are compared at 1e-9 so a silent change to the allocation math
//! fails loudly. Bit-exactness across thread counts is asserted
//! separately at the bottom.
//!
//! The scenario is deliberately adversarial to the lazy heap's
//! tie-break: group 0 (paper Table I) and group 1 both contain a fact
//! with marginal exactly 0.5, and a single query's gain depends on the
//! fact's marginal alone — so their first-round gains tie *bit for
//! bit* and the schedule must break toward the lower group index.

use hc::prelude::*;
use hc_core::corpus::{CorpusBudget, CorpusEnv, CorpusReport, CorpusScheduler};
use hc_core::hc::UnitCost;
use hc_core::selection::GlobalFact;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

const TOL: f64 = 1e-9;

/// Ground truth per group (all groups are single-task).
const TRUTHS: [&[bool]; 3] = [
    &[true, true, false],
    &[false, true],
    &[true, false, true],
];

/// A deterministic expert crowd answering ground truth for one group.
struct TruthfulGroup {
    truth: Vec<bool>,
}
impl AnswerOracle for TruthfulGroup {
    fn answer(&mut self, _worker: &Worker, fact: GlobalFact) -> AnswerOutcome {
        AnswerOutcome::Answered(Answer::from_bool(self.truth[fact.fact.index()]))
    }
}

/// Group 0 is the paper's Table I joint; groups 1 and 2 are literal
/// joints of different sizes and sharpness.
fn groups() -> Vec<MultiBelief> {
    vec![
        MultiBelief::new(vec![Belief::from_probs(vec![
            0.09, 0.11, 0.10, 0.20, 0.08, 0.09, 0.15, 0.18,
        ])
        .expect("Table I joint")]),
        MultiBelief::new(vec![
            Belief::from_probs(vec![0.30, 0.20, 0.25, 0.25]).expect("group 1 joint"),
        ]),
        MultiBelief::new(vec![Belief::from_probs(vec![
            0.05, 0.10, 0.20, 0.05, 0.15, 0.10, 0.25, 0.10,
        ])
        .expect("group 2 joint")]),
    ]
}

/// One full corpus run: the report, the recorded telemetry, and the
/// final posterior bit patterns per group.
fn run_corpus(parallelism: Parallelism) -> (CorpusReport, Vec<TelemetryEvent>, Vec<Vec<u64>>) {
    let selector = GreedySelector::new();
    let costs = UnitCost;
    let panel = ExpertPanel::from_accuracies(&[0.95, 0.92]).expect("golden panel");
    let mut config = HcConfig::new(1, u64::MAX / 2);
    config.parallelism = parallelism;
    let sessions: Vec<HcSession> = groups()
        .into_iter()
        .map(|b| {
            HcSession::start(b, panel.clone(), config.clone(), &selector, &costs)
                .expect("golden session")
        })
        .collect();
    let mut scheduler = CorpusScheduler::new(sessions, CorpusBudget::Pooled(10));
    let mut oracles: Vec<TruthfulGroup> = TRUTHS
        .iter()
        .map(|t| TruthfulGroup { truth: t.to_vec() })
        .collect();
    // Loop RNGs are plumbed but never drawn from: the run is RNG-free.
    let mut rngs: Vec<StdRng> = (0..3).map(StdRng::seed_from_u64).collect();
    let mut sink = RecordingSink::new();
    let report = {
        let mut observer = |_: usize, _: &MultiBelief, _: &RoundRecord| {};
        let mut env = CorpusEnv {
            oracles: oracles.iter_mut().map(|o| o as &mut dyn AnswerOracle).collect(),
            rngs: rngs.iter_mut().map(|r| r as &mut dyn RngCore).collect(),
            sink: &mut sink,
            observer: &mut observer,
        };
        scheduler.run(&mut env).expect("golden corpus run")
    };
    let posterior_bits = (0..3)
        .map(|g| {
            scheduler.session(g).state().beliefs.tasks()[0]
                .probs()
                .iter()
                .map(|p| p.to_bits())
                .collect()
        })
        .collect();
    (report, sink.into_events(), posterior_bits)
}

/// The scheduled (group, gain) of every `GroupScheduled` event.
fn schedule(events: &[TelemetryEvent]) -> Vec<(usize, f64)> {
    events
        .iter()
        .filter_map(|e| match e {
            TelemetryEvent::GroupScheduled { group, gain, .. } => Some((*group, *gain)),
            _ => None,
        })
        .collect()
}

#[test]
fn three_group_corpus_matches_the_golden_allocation() {
    let (report, events, _) = run_corpus(Parallelism::Serial);

    // Five productive rounds (2 budget each out of the pool of 10),
    // then the three drain steps that let every group emit its
    // RunFinished.
    assert_eq!(report.steps, 8);
    assert_eq!(report.spent, 10);
    assert_eq!(report.groups_finished, 3);
    assert!(
        (report.entropy - 2.166_836_627_072_096_46).abs() < TOL,
        "final corpus entropy: got {}",
        report.entropy
    );

    // The allocation order and every scheduled gain, pinned. Steps 0
    // and 1 are the bit-exact tie (both groups own a marginal-0.5
    // fact); the tie breaks toward group 0. Drain steps carry gain 0
    // and run in ascending group order.
    let sched = schedule(&events);
    let expected: [(usize, f64); 8] = [
        (0, 0.586_753_567_758_532_71),
        (1, 0.586_753_567_758_532_71),
        (1, 0.586_753_206_842_987_71),
        (2, 0.569_249_840_210_400_04),
        (2, 0.586_748_515_418_499_93),
        (0, 0.0),
        (1, 0.0),
        (2, 0.0),
    ];
    assert_eq!(sched.len(), expected.len());
    for (step, ((got_g, got_gain), (want_g, want_gain))) in
        sched.iter().zip(&expected).enumerate()
    {
        assert_eq!(got_g, want_g, "allocation order diverges at step {step}");
        assert!(
            (got_gain - want_gain).abs() < TOL,
            "step {step} gain: got {got_gain}, want {want_gain}"
        );
    }
    // The cross-group tie really is exact, not merely within 1e-9.
    assert_eq!(
        sched[0].1.to_bits(),
        sched[1].1.to_bits(),
        "steps 0 and 1 must tie bit-for-bit"
    );

    // Entropy after every productive advance.
    let advanced: Vec<(usize, u64, f64)> = events
        .iter()
        .filter_map(|e| match e {
            TelemetryEvent::GroupAdvanced {
                group,
                spent_delta,
                entropy,
                ..
            } => Some((*group, *spent_delta, *entropy)),
            _ => None,
        })
        .collect();
    let expected_adv: [(usize, u64, f64); 5] = [
        (0, 2, 1.359_286_209_231_250_10),
        (1, 2, 0.722_162_831_345_836_14),
        (1, 2, 0.062_922_121_098_720_127),
        (2, 2, 1.361_119_312_005_256_93),
        (2, 2, 0.744_628_296_742_126_05),
    ];
    assert_eq!(advanced.len(), expected_adv.len());
    for (i, ((g, d, h), (wg, wd, wh))) in advanced.iter().zip(&expected_adv).enumerate() {
        assert_eq!((g, d), (wg, wd), "advance {i}");
        assert!((h - wh).abs() < TOL, "advance {i} entropy: got {h}, want {wh}");
    }

    // Terminal accounting per group: what each spent out of the pool.
    let finished: Vec<(usize, u64)> = events
        .iter()
        .filter_map(|e| match e {
            TelemetryEvent::GroupFinished { group, spent, .. } => Some((*group, *spent)),
            _ => None,
        })
        .collect();
    assert_eq!(finished, vec![(0, 2), (1, 4), (2, 4)]);

    // The envelope itself is sound.
    let audit = hc_core::telemetry::audit(&events);
    assert!(audit.is_clean(), "{}", audit.render());
}

#[test]
fn golden_corpus_posteriors_recover_the_checked_facts() {
    let (_, _, bits) = run_corpus(Parallelism::Serial);
    let marginals: Vec<Vec<f64>> = bits
        .iter()
        .map(|cells| {
            let probs: Vec<f64> = cells.iter().map(|&b| f64::from_bits(b)).collect();
            let n = probs.len().trailing_zeros() as usize;
            (0..n)
                .map(|f| {
                    probs
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| i & (1 << f) != 0)
                        .map(|(_, p)| p)
                        .sum()
                })
                .collect()
        })
        .collect();
    let expected: [&[f64]; 3] = [
        // One round only: f3 checked false, f1/f2 still uncertain.
        &[0.619_635_535_307_517_1, 0.600_273_348_519_362_2, 0.004_555_808_656_036_448],
        // Two rounds on two facts: both recovered.
        &[0.004_547_551_776_873_430_5, 0.994_546_255_734_985_3],
        // Two rounds: f1/f2 recovered, f3 never checked (~0.5).
        &[0.995_413_165_720_816_2, 0.003_451_813_565_705_234, 0.501_705_128_371_621_8],
    ];
    for (g, (got, want)) in marginals.iter().zip(&expected).enumerate() {
        assert_eq!(got.len(), want.len());
        for (f, (m, w)) in got.iter().zip(want.iter()).enumerate() {
            assert!(
                (m - w).abs() < TOL,
                "group {g} fact {f} marginal: got {m}, want {w}"
            );
        }
    }
}

#[test]
fn golden_corpus_is_thread_count_invariant() {
    let baseline = run_corpus(Parallelism::Serial);
    let base_sched: Vec<(usize, u64)> = schedule(&baseline.1)
        .into_iter()
        .map(|(g, gain)| (g, gain.to_bits()))
        .collect();
    for parallelism in [Parallelism::Threads(2), Parallelism::Threads(8)] {
        let run = run_corpus(parallelism);
        let sched: Vec<(usize, u64)> = schedule(&run.1)
            .into_iter()
            .map(|(g, gain)| (g, gain.to_bits()))
            .collect();
        assert_eq!(sched, base_sched, "schedule differs under {parallelism:?}");
        assert_eq!(
            run.2, baseline.2,
            "posterior bits differ under {parallelism:?}"
        );
        assert_eq!(run.0, baseline.0, "report differs under {parallelism:?}");
    }
}
