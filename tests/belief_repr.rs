//! Differential suite for the sparse and factored belief
//! representations, locked against the dense engine the same way the
//! fast selection paths are locked against Equation (34) in
//! `tests/conformance.rs`.
//!
//! The contract under test (see `hc_core::belief`):
//!
//! - A **full-support sparse** belief (no pattern ever pruned) shares
//!   the dense chunk layout, so posteriors, entropies, projections, and
//!   greedy picks are **bit-identical** to the dense oracle.
//! - A **truncating sparse** belief may drop low-mass patterns, but the
//!   realized dense-vs-sparse total-variation distance never exceeds
//!   its self-reported certified truncation bound.
//! - A **factored** belief over independent blocks agrees with the
//!   dense oracle to float-product-reordering noise (~1e-12).
//! - A 40-fact group — far past the dense `MAX_FACTS = 26` wall — runs
//!   end-to-end through `HcSession`, including a checkpoint/resume
//!   round trip through the serialized frame.

use hc_core::answer::{Answer, AnswerOutcome, AnswerSet, QuerySet};
use hc_core::belief::{Belief, MultiBelief, MAX_FACTS};
use hc_core::fact::FactId;
use hc_core::hc::{AnswerOracle, HcConfig, RoundRecord, UnitCost};
use hc_core::selection::{global_facts, GlobalFact, GreedySelector, TaskSelector};
use hc_core::session::{HcSession, SessionEnv, SessionStatus};
use hc_core::update::update_with_answer_set;
use hc_core::worker::{ExpertPanel, Worker};
use hc_telemetry::{CheckpointFrame, RecordingSink};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Slack over the certified truncation bound: the bound is exact in
/// real arithmetic; renormalisation roundoff adds ulp-scale noise.
const BOUND_SLACK: f64 = 1e-9;

/// Factored-vs-dense tolerance: identical math, different float
/// product order.
const FACTORED_TOL: f64 = 1e-12;

/// A normalised belief over `n` facts with strictly positive cells.
fn belief_strategy(n: usize) -> impl Strategy<Value = Belief> {
    prop::collection::vec(0.01f64..1.0, 1 << n).prop_map(|mut probs| {
        let sum: f64 = probs.iter().sum();
        for p in &mut probs {
            *p /= sum;
        }
        Belief::from_probs(probs).expect("normalised")
    })
}

/// `k` distinct fact ids out of `n`.
fn pick_facts(rng: &mut StdRng, n: usize, k: usize) -> Vec<FactId> {
    let mut ids: Vec<u32> = (0..n as u32).collect();
    for i in 0..k {
        let j = rng.gen_range(i..ids.len());
        ids.swap(i, j);
    }
    ids.truncate(k);
    ids.into_iter().map(FactId).collect()
}

fn random_round(rng: &mut StdRng, n: usize) -> (QuerySet, AnswerSet, f64) {
    let k = rng.gen_range(1..=3.min(n));
    let queries = QuerySet::new(pick_facts(rng, n, k), n).expect("valid query set");
    let bits = rng.gen_range(0..(1u32 << k));
    let set = AnswerSet::from_bits(bits, k);
    let acc = rng.gen_range(0.55..0.95);
    (queries, set, acc)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Full-support sparse is bit-exact against dense for as long as
    /// nothing has been pruned (the documented contract): every
    /// posterior cell, the entropy, a projection, and the per-update
    /// log evidence. A long adversarial run can legitimately push a
    /// cell below `PROB_FLOOR` — from the first prune on, the sparse
    /// posterior diverges by design and the certified TV bound takes
    /// over as the contract.
    #[test]
    fn untruncated_sparse_is_bit_exact_vs_dense(
        dense in (2usize..=6).prop_flat_map(belief_strategy),
        seed in any::<u64>(),
    ) {
        let n = dense.num_facts();
        let mut dense = dense;
        // Full support: every cell kept, including the chunk layout.
        let mut sparse = dense.to_sparse(1 << n).unwrap();
        prop_assert_eq!(sparse.repr_name(), "sparse");
        let mut rng = StdRng::seed_from_u64(seed);
        for round in 0..8 {
            let (queries, set, acc) = random_round(&mut rng, n);
            let hd = update_with_answer_set(&mut dense, &queries, acc, set).unwrap();
            let hs = update_with_answer_set(&mut sparse, &queries, acc, set).unwrap();
            if sparse.truncation_bound() > 0.0 {
                // A cell crossed PROB_FLOOR and was pruned; bit-exact
                // equality no longer applies. The bound contract must.
                let tv = dense.total_variation(&sparse).unwrap();
                let bound = sparse.truncation_bound();
                prop_assert!(
                    tv <= bound + BOUND_SLACK,
                    "round {}: TV {} exceeds bound {}", round, tv, bound
                );
                break;
            }
            prop_assert_eq!(
                hd.log_evidence.to_bits(), hs.log_evidence.to_bits(),
                "round {}: log evidence", round
            );
            for (pat, &p) in dense.probs().iter().enumerate() {
                prop_assert_eq!(
                    p.to_bits(), sparse.prob_pattern(pat as u64).to_bits(),
                    "round {}: cell {}", round, pat
                );
            }
            prop_assert_eq!(
                dense.entropy().to_bits(), sparse.entropy().to_bits(),
                "round {}: entropy", round
            );
            let facts = pick_facts(&mut rng, n, 2.min(n));
            let qd = dense.project(&facts);
            let qs = sparse.project(&facts);
            for (j, (a, b)) in qd.iter().zip(&qs).enumerate() {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "round {}: projection {}", round, j);
            }
        }
    }

    /// Truncating sparse: the realized dense-vs-sparse TV distance is
    /// certified by the self-reported truncation bound after every
    /// round, and the bound stays in [0, 1].
    #[test]
    fn truncation_bound_certifies_realized_tv_distance(
        dense in (5usize..=7).prop_flat_map(belief_strategy),
        seed in any::<u64>(),
    ) {
        let n = dense.num_facts();
        let mut dense = dense;
        // A support cap well under 2^n forces pruning immediately.
        let mut sparse = dense.to_sparse(1 << (n - 2)).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        for round in 0..12 {
            let (queries, set, acc) = random_round(&mut rng, n);
            update_with_answer_set(&mut dense, &queries, acc, set).unwrap();
            update_with_answer_set(&mut sparse, &queries, acc, set).unwrap();
            let bound = sparse.truncation_bound();
            prop_assert!((0.0..=1.0).contains(&bound), "round {round}: bound {bound}");
            let tv = dense.total_variation(&sparse).unwrap();
            prop_assert!(
                tv <= bound + BOUND_SLACK,
                "round {round}: realized TV {tv} exceeds certified bound {bound}"
            );
        }
    }

    /// Factored beliefs over independent blocks track the dense oracle
    /// to float-reordering noise through updates, entropies, and
    /// projections.
    #[test]
    fn factored_tracks_dense_within_reordering_noise(
        lo in belief_strategy(2),
        hi in belief_strategy(3),
        seed in any::<u64>(),
    ) {
        let mut factored = Belief::factored(vec![lo, hi]).unwrap();
        let mut dense = factored.to_dense().unwrap();
        let n = dense.num_facts();
        let mut rng = StdRng::seed_from_u64(seed);
        for round in 0..8 {
            let (queries, set, acc) = random_round(&mut rng, n);
            let hd = update_with_answer_set(&mut dense, &queries, acc, set).unwrap();
            let hf = update_with_answer_set(&mut factored, &queries, acc, set).unwrap();
            prop_assert!(
                (hd.log_evidence - hf.log_evidence).abs() < FACTORED_TOL,
                "round {round}: log evidence {} vs {}", hd.log_evidence, hf.log_evidence
            );
            for (pat, &p) in dense.probs().iter().enumerate() {
                let f = factored.prob_pattern(pat as u64);
                prop_assert!(
                    (p - f).abs() < FACTORED_TOL,
                    "round {round}: cell {pat}: dense {p} vs factored {f}"
                );
            }
            prop_assert!(
                (dense.entropy() - factored.entropy()).abs() < FACTORED_TOL,
                "round {round}: entropy"
            );
            let facts = pick_facts(&mut rng, n, 2);
            for (j, (a, b)) in dense.project(&facts).iter().zip(&factored.project(&facts)).enumerate() {
                prop_assert!((a - b).abs() < FACTORED_TOL, "round {round}: projection {j}");
            }
        }
    }

    /// Greedy picks on a full-support sparse belief are identical to
    /// the dense oracle's: the selector sees bit-identical projections
    /// and entropies, so it must walk the same path.
    #[test]
    fn greedy_picks_are_identical_on_full_support_sparse(
        dense in (3usize..=5).prop_flat_map(belief_strategy),
        seed in any::<u64>(),
    ) {
        let n = dense.num_facts();
        let sparse = dense.to_sparse(1 << n).unwrap();
        let dense_mb = MultiBelief::new(vec![dense]);
        let sparse_mb = MultiBelief::new(vec![sparse]);
        let panel = ExpertPanel::from_accuracies(&[0.9, 0.8]).unwrap();
        let selector = GreedySelector::new();
        let k = 2.min(n);
        let pick = |beliefs: &MultiBelief| -> Vec<GlobalFact> {
            let candidates = global_facts(beliefs);
            let mut rng = StdRng::seed_from_u64(seed);
            selector
                .select(beliefs, &panel, k, &candidates, &mut rng)
                .expect("greedy select")
        };
        prop_assert_eq!(pick(&dense_mb), pick(&sparse_mb));
    }
}

/// Deterministic selector for the session test: first `k` candidates.
struct FirstK;

impl TaskSelector for FirstK {
    fn name(&self) -> &'static str {
        "first-k"
    }

    fn select(
        &self,
        _beliefs: &MultiBelief,
        _panel: &ExpertPanel,
        k: usize,
        candidates: &[GlobalFact],
        _rng: &mut dyn RngCore,
    ) -> hc_core::Result<Vec<GlobalFact>> {
        Ok(candidates.iter().take(k).copied().collect())
    }
}

/// Deterministic oracle: answers follow a fixed parity rule.
struct ParityOracle;

impl AnswerOracle for ParityOracle {
    fn answer(&mut self, worker: &Worker, fact: GlobalFact) -> AnswerOutcome {
        AnswerOutcome::Answered(Answer::from_bool(
            (u64::from(fact.fact.0) + u64::from(worker.id.0)) % 2 == 0,
        ))
    }
}

/// Tiny deterministic RNG independent of any rand backend.
struct Lcg(u64);

impl RngCore for Lcg {
    fn next_u32(&mut self) -> u32 {
        self.next_u64() as u32
    }
    fn next_u64(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for b in dest.iter_mut() {
            *b = self.next_u64() as u8;
        }
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> std::result::Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

/// A 40-fact group — far past `MAX_FACTS` — runs end-to-end through
/// `HcSession` on the sparse representation, survives a mid-run
/// checkpoint/resume through the serialized frame, and finishes with
/// the same posterior as the uninterrupted run.
#[test]
fn forty_fact_group_end_to_end_with_checkpoint_resume() {
    assert!(40 > MAX_FACTS, "the point of the test");
    let make_beliefs = || {
        let marginals: Vec<f64> = (0..40).map(|i| 0.5 + 0.01 * ((i % 30) as f64)).collect();
        MultiBelief::new(vec![
            hc_core::init::init_from_marginals(&marginals).expect("sparse init"),
        ])
    };
    let beliefs = make_beliefs();
    assert_eq!(beliefs.tasks()[0].repr_name(), "sparse");
    assert_eq!(beliefs.repr_summary(), "sparse");
    let panel = ExpertPanel::from_accuracies(&[0.9, 0.8]).unwrap();
    let config = HcConfig::new(3, 30);

    let run = |crash_after: Option<usize>| -> (MultiBelief, String) {
        let mut session =
            HcSession::start(make_beliefs(), panel.clone(), config.clone(), &FirstK, &UnitCost)
                .unwrap();
        let mut oracle = ParityOracle;
        let mut rng = Lcg(9);
        let mut sink = RecordingSink::new();
        let mut obs = |_: &MultiBelief, _: &RoundRecord| {};
        let mut steps = 0usize;
        loop {
            if crash_after == Some(steps) {
                // Serialize a checkpoint frame, round-trip it through
                // its JSONL line (the sparse payload codec), and
                // resume into a fresh session. The loop RNG restarts
                // from its seed: the frame's draw log replays the
                // consumed prefix, exactly as crash recovery would.
                let frame = session.checkpoint_frame(steps as u64);
                let frame = CheckpointFrame::from_json_line(&frame.to_json_line()).unwrap();
                session = HcSession::from_frame(&frame, &FirstK, &UnitCost).unwrap();
                assert_eq!(session.state().beliefs.repr_summary(), "sparse");
                rng = Lcg(9);
            }
            let status = {
                let mut env = SessionEnv {
                    oracle: &mut oracle,
                    rng: &mut rng,
                    sink: &mut sink,
                    observer: &mut obs,
                };
                session.step(&mut env).unwrap()
            };
            steps += 1;
            if matches!(status, SessionStatus::Finished(_)) {
                break;
            }
        }
        let payload = session.state().to_payload();
        (session.state().beliefs.clone(), payload)
    };

    let (base_beliefs, base_payload) = run(None);
    let belief = &base_beliefs.tasks()[0];
    assert_eq!(belief.repr_name(), "sparse");
    assert_eq!(belief.num_facts(), 40);
    let h = belief.entropy();
    assert!(h.is_finite() && h >= 0.0, "entropy {h}");
    assert!(
        (0.0..=1.0).contains(&belief.truncation_bound()),
        "bound {}",
        belief.truncation_bound()
    );
    assert_eq!(belief.map_labels().len(), 40);

    // Mid-run frame round trip reaches the identical final state.
    let (resumed_beliefs, resumed_payload) = run(Some(4));
    assert_eq!(resumed_payload, base_payload, "resumed payload");
    assert_eq!(resumed_beliefs, base_beliefs, "resumed posterior");
}
