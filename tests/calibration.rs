//! Calibration of the probabilistic outputs across the pipeline: the
//! aggregators' posteriors and the HC loop's final marginals, scored
//! with the proper scoring rules in `hc-core::metrics`.

use hc::prelude::*;
use hc_core::hc::{run_hc, HcConfig};
use hc_core::metrics::{
    brier_score, expected_calibration_error, flat_marginals, log_loss, precision_recall,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn corpus(seed: u64) -> CrowdDataset {
    let mut config = SynthConfig::paper_default();
    config.n_tasks = 60;
    generate(&config, &mut StdRng::seed_from_u64(seed)).unwrap()
}

#[test]
fn aggregator_posteriors_beat_coin_flip_scores() {
    let ds = corpus(1);
    let truth = ds.binary_truth().unwrap();
    for agg in all_aggregators() {
        let result = agg.aggregate(&ds.matrix).unwrap();
        let marginals = result.binary_marginals();
        let brier = brier_score(&marginals, &truth);
        let ll = log_loss(&marginals, &truth);
        assert!(
            brier < 0.25,
            "{}: Brier {brier} no better than constant 0.5",
            agg.name()
        );
        assert!(
            ll < std::f64::consts::LN_2,
            "{}: log loss {ll} no better than constant 0.5",
            agg.name()
        );
    }
}

#[test]
fn checking_improves_every_proper_score() {
    let ds = corpus(2);
    let config = PipelineConfig::paper_default();
    let prepared = prepare(&ds, &config, &InitMethod::CpVotes).unwrap();
    let flat_truth: Vec<bool> = prepared.truths.concat();

    let before = flat_marginals(&prepared.beliefs);
    let mut oracle = ReplayOracle::new(&ds, prepared.grouping).unwrap();
    let outcome = run_hc(
        prepared.beliefs.clone(),
        &prepared.panel,
        &GreedySelector::new(),
        &mut oracle,
        &HcConfig::new(1, 300),
        &mut StdRng::seed_from_u64(3),
    )
    .unwrap();
    let after = flat_marginals(&outcome.beliefs);

    assert!(
        brier_score(&after, &flat_truth) < brier_score(&before, &flat_truth),
        "Brier should improve"
    );
    assert!(
        log_loss(&after, &flat_truth) < log_loss(&before, &flat_truth),
        "log loss should improve"
    );
    let pr_before = precision_recall(
        &before.iter().map(|&p| p >= 0.5).collect::<Vec<_>>(),
        &flat_truth,
    );
    let pr_after = precision_recall(
        &after.iter().map(|&p| p >= 0.5).collect::<Vec<_>>(),
        &flat_truth,
    );
    assert!(
        pr_after.f1 >= pr_before.f1,
        "F1 {:.3} -> {:.3}",
        pr_before.f1,
        pr_after.f1
    );
}

#[test]
fn hc_marginals_are_reasonably_calibrated() {
    // After checking, the belief's stated confidences should be within a
    // modest ECE of empirical accuracy (replayed evidence is double-used
    // by the vote init, so perfect calibration isn't expected).
    let ds = corpus(4);
    let config = PipelineConfig::paper_default();
    let prepared = prepare(&ds, &config, &InitMethod::CpVotes).unwrap();
    let flat_truth: Vec<bool> = prepared.truths.concat();
    let mut oracle = ReplayOracle::new(&ds, prepared.grouping).unwrap();
    let outcome = run_hc(
        prepared.beliefs.clone(),
        &prepared.panel,
        &GreedySelector::new(),
        &mut oracle,
        &HcConfig::new(1, 300),
        &mut StdRng::seed_from_u64(5),
    )
    .unwrap();
    let marginals = flat_marginals(&outcome.beliefs);
    let ece = expected_calibration_error(&marginals, &flat_truth, 10);
    assert!(ece < 0.15, "ECE {ece}");
}
