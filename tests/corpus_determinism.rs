//! Corpus-level determinism suite.
//!
//! The cross-group scheduler promises that a corpus run is a pure
//! function of the corpus and the budget mode: the allocation
//! schedule, every group's posterior bit patterns, the JSONL telemetry
//! trace, and the final checkpoint payload must be byte-identical at
//! `HC_THREADS = 1`, `2`, and `8` (i.e. `Parallelism::Serial`,
//! `Threads(2)`, `Threads(8)` — the env var maps onto the same
//! policies), and a process killed at *any* group boundary must resume
//! into the exact uninterrupted run. Both halves reuse the
//! `hc-sim::crash` chaos harness through [`CorpusFixture`].

use hc_core::parallel::Parallelism;
use hc_sim::{diff_corpus_artifacts, CorpusFixture, CrashPlan, TornWrite};

/// The thread policies `HC_THREADS={1,2,8}` select.
const POLICIES: [Parallelism; 3] = [
    Parallelism::Serial,
    Parallelism::Threads(2),
    Parallelism::Threads(8),
];

/// Checkpoint payloads honestly record each session's configured
/// thread policy — the one field that *should* differ across
/// policies. Blank it so the rest of the payload can be compared
/// byte-for-byte.
fn normalize_policy(payload: &str) -> String {
    let mut out = payload.replace("\"parallelism\":\"serial\"", "\"parallelism\":null");
    for n in [1, 2, 8] {
        out = out.replace(
            &format!("\"parallelism\":{n}.0"),
            "\"parallelism\":null",
        );
    }
    out
}

#[test]
fn corpus_runs_are_byte_identical_at_any_thread_count() {
    let baseline = CorpusFixture::standard(Parallelism::Serial).reference();
    assert!(
        baseline.steps > 8 && baseline.spent > 0,
        "fixture must be non-trivial: {} steps, {} spent",
        baseline.steps,
        baseline.spent
    );
    for policy in POLICIES {
        let run = CorpusFixture::standard(policy).reference();
        assert_eq!(
            run.schedule, baseline.schedule,
            "allocation schedule differs under {policy:?}"
        );
        assert_eq!(
            run.posterior_bits, baseline.posterior_bits,
            "posterior bit patterns differ under {policy:?}"
        );
        assert_eq!(
            run.event_lines, baseline.event_lines,
            "JSONL trace differs under {policy:?}"
        );
        assert_eq!(
            normalize_policy(&run.final_payload),
            normalize_policy(&baseline.final_payload),
            "final checkpoint payload differs under {policy:?}"
        );
        assert_eq!(
            (run.steps, run.spent, run.process_steps),
            (baseline.steps, baseline.spent, baseline.process_steps),
            "totals differ under {policy:?}"
        );
    }
}

#[test]
fn every_group_boundary_survives_a_clean_kill() {
    let fixture = CorpusFixture::standard(Parallelism::Serial);
    let reference = fixture.reference();
    // Kill after 0 steps (nothing durable), after each real boundary,
    // after the final drain, and one past the end (the doomed process
    // actually completed).
    for kill in 0..=(reference.steps as usize + 1) {
        let resumed = fixture
            .crash_and_resume(&CrashPlan::new(kill, TornWrite::None, kill as u64))
            .unwrap_or_else(|e| panic!("kill after {kill} steps failed to resume: {e}"));
        diff_corpus_artifacts(&reference, &resumed)
            .unwrap_or_else(|e| panic!("kill after {kill} steps diverged: {e}"));
        let expected_resumed = reference.steps.saturating_sub(kill as u64);
        assert_eq!(
            resumed.process_steps, expected_resumed,
            "kill after {kill}: the resumed process repeats or skips steps"
        );
    }
}

#[test]
fn torn_tails_at_a_group_boundary_recover_exactly() {
    let fixture = CorpusFixture::standard(Parallelism::Serial);
    let reference = fixture.reference();
    let torn = [
        TornWrite::TornEventLine,
        TornWrite::TornCheckpointLine,
        TornWrite::GarbageTail,
    ];
    for (i, torn) in torn.into_iter().enumerate() {
        for kill in [1usize, 4, 9] {
            let resumed = fixture
                .crash_and_resume(&CrashPlan::new(kill, torn, 0xBAD + i as u64))
                .unwrap_or_else(|e| panic!("{torn:?} after {kill} failed: {e}"));
            diff_corpus_artifacts(&reference, &resumed)
                .unwrap_or_else(|e| panic!("{torn:?} after {kill} diverged: {e}"));
        }
    }
}

#[test]
fn crash_resume_is_thread_count_invariant_too() {
    // A run killed under one policy and resumed under another must
    // still land on the serial reference: checkpoints carry no
    // thread-policy residue.
    let reference = CorpusFixture::standard(Parallelism::Serial).reference();
    for policy in [Parallelism::Threads(2), Parallelism::Threads(8)] {
        let resumed = CorpusFixture::standard(policy)
            .crash_and_resume(&CrashPlan::new(3, TornWrite::None, 7))
            .expect("threaded resume");
        assert_eq!(
            resumed.schedule, reference.schedule,
            "{policy:?} crash/resume schedule diverged"
        );
        assert_eq!(
            resumed.posterior_bits, reference.posterior_bits,
            "{policy:?} crash/resume posteriors diverged"
        );
        assert_eq!(
            resumed.event_lines, reference.event_lines,
            "{policy:?} crash/resume trace diverged"
        );
        assert_eq!(
            normalize_policy(&resumed.final_payload),
            normalize_policy(&reference.final_payload),
            "{policy:?} crash/resume payload diverged"
        );
    }
}
