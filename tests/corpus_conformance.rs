//! Differential conformance suite for the cross-group corpus
//! allocator.
//!
//! [`CorpusScheduler`] picks the next group to advance with a CELF
//! lazy heap whose stale entries are only re-scored on demand. This
//! suite locks that machinery against two independent references on
//! random small corpora (≤ 6 groups, ≤ 4 facts per group):
//!
//! 1. **The brute-force scheduler oracle** — before every scheduler
//!    step, re-score *every* unfinished group fresh and take the
//!    argmax (ties toward the lowest group index, exactly the heap's
//!    ordering). The lazy heap must execute that group, with that
//!    gain, at every single step of the run. This is the same float
//!    pipeline, so agreement is exact — any divergence is a staleness
//!    bug in the heap, not rounding.
//! 2. **The Equation (34) query oracle** — at `k = 1` under
//!    [`RepeatPolicy::Unrestricted`], a fresh group's previewed gain
//!    is the best single-query entropy drop, so the allocator's first
//!    pick must be the literal argmax of `conditional_entropy_naive`
//!    over all (group, query) pairs. Validated conformance.rs-style
//!    (winner matches naive, nothing naively beats the winner) so
//!    near-ties cannot flake.

use hc_core::belief::{Belief, MultiBelief};
use hc_core::corpus::{CorpusBudget, CorpusEnv, CorpusScheduler};
use hc_core::entropy::conditional_entropy_naive;
use hc_core::hc::{AnswerOracle, HcConfig, RepeatPolicy, UnitCost};
use hc_core::selection::{global_facts, GlobalFact, GreedySelector};
use hc_core::session::{HcSession, SessionStatus};
use hc_core::telemetry::{RecordingSink, TelemetryEvent};
use hc_core::worker::{ExpertPanel, Worker};
use hc_core::{Answer, AnswerOutcome, RoundRecord};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Tolerance for gains recomputed through a *different* float path
/// (the naive Equation (34) reference); same-path comparisons are
/// exact.
const GAIN_TOL: f64 = 1e-7;

/// A normalised belief over `n` facts with strictly positive cells.
fn belief_strategy(n: usize) -> impl Strategy<Value = Belief> {
    prop::collection::vec(0.01f64..1.0, 1 << n).prop_map(|mut probs| {
        let sum: f64 = probs.iter().sum();
        for p in &mut probs {
            *p /= sum;
        }
        Belief::from_probs(probs).expect("normalised")
    })
}

/// One fact group: 1–2 tasks with 1–2 facts each (naive enumeration
/// stays fast).
fn group_strategy() -> impl Strategy<Value = MultiBelief> {
    prop::collection::vec(1usize..=2, 1..=2).prop_flat_map(|sizes| {
        sizes
            .into_iter()
            .map(belief_strategy)
            .collect::<Vec<_>>()
            .prop_map(MultiBelief::new)
    })
}

/// A small corpus of independent groups.
fn corpus_strategy() -> impl Strategy<Value = Vec<MultiBelief>> {
    prop::collection::vec(group_strategy(), 1..=6)
}

fn panel_strategy() -> impl Strategy<Value = ExpertPanel> {
    prop::collection::vec(0.55f64..=0.95, 1..=2)
        .prop_map(|rates| ExpertPanel::from_accuracies(&rates).expect("valid rates"))
}

/// A deterministic always-yes expert crowd: the differential property
/// holds for any answer stream, this one just keeps runs reproducible.
struct Agreeable;
impl AnswerOracle for Agreeable {
    fn answer(&mut self, _worker: &Worker, _fact: GlobalFact) -> AnswerOutcome {
        AnswerOutcome::Answered(Answer::Yes)
    }
}

/// Best single-query gain of a fresh group by Equation (34) alone:
/// `max_{(t,f)} H(O_t) − H(O_t | A_f)`.
fn naive_single_query_max(beliefs: &MultiBelief, panel: &ExpertPanel) -> f64 {
    global_facts(beliefs)
        .into_iter()
        .map(|gf| {
            let belief = &beliefs.tasks()[gf.task];
            let before = conditional_entropy_naive(belief, &[], panel).expect("naive before");
            let after =
                conditional_entropy_naive(belief, &[gf.fact], panel).expect("naive after");
            before - after
        })
        .fold(f64::NEG_INFINITY, f64::max)
}

fn start_sessions<'a>(
    groups: &[MultiBelief],
    panel: &ExpertPanel,
    config: &HcConfig,
    selector: &'a GreedySelector,
    costs: &'a UnitCost,
) -> Vec<HcSession<'a>> {
    groups
        .iter()
        .map(|beliefs| {
            HcSession::start(beliefs.clone(), panel.clone(), config.clone(), selector, costs)
                .expect("start group")
        })
        .collect()
}

/// Drives a whole corpus run, checking the lazy allocator against the
/// literal "re-score everything, take the argmax" oracle at every
/// scheduler step.
fn assert_allocator_matches_exhaustive_oracle(
    groups: &[MultiBelief],
    panel: &ExpertPanel,
    config: &HcConfig,
    budget: CorpusBudget,
) -> Result<(), TestCaseError> {
    let selector = GreedySelector::new();
    let costs = UnitCost;
    let sessions = start_sessions(groups, panel, config, &selector, &costs);
    let n = sessions.len();
    let mut scheduler = CorpusScheduler::new(sessions, budget);
    let mut oracles: Vec<Agreeable> = (0..n).map(|_| Agreeable).collect();
    let mut rngs: Vec<StdRng> = (0..n).map(|g| StdRng::seed_from_u64(g as u64)).collect();
    let mut sink = RecordingSink::new();
    let mut step = 0usize;
    loop {
        // The exhaustive oracle: a fresh preview of every unfinished
        // group under the *current* budget view, argmax with ties
        // toward the lowest index.
        let mut expected: Option<(f64, usize)> = None;
        for g in 0..scheduler.len() {
            if matches!(scheduler.session(g).status(), SessionStatus::Finished(_)) {
                continue;
            }
            let view = match budget {
                CorpusBudget::Pooled(_) => scheduler.budget_remaining(),
                CorpusBudget::PerGroup => scheduler.session(g).state().remaining,
            };
            let gain = scheduler
                .session(g)
                .preview_next_round(view)
                .expect("oracle preview")
                .map_or(0.0, |p| p.gain);
            let better = match expected {
                None => true,
                Some((best, _)) => gain.total_cmp(&best) == std::cmp::Ordering::Greater,
            };
            if better {
                expected = Some((gain, g));
            }
        }

        let executed = {
            let mut observer = |_: usize, _: &MultiBelief, _: &RoundRecord| {};
            let mut env = CorpusEnv {
                oracles: oracles.iter_mut().map(|o| o as &mut dyn AnswerOracle).collect(),
                rngs: rngs.iter_mut().map(|r| r as &mut dyn RngCore).collect(),
                sink: &mut sink,
                observer: &mut observer,
            };
            scheduler.step_once(&mut env).expect("scheduler step")
        };
        let Some(executed) = executed else {
            prop_assert!(
                expected.is_none(),
                "corpus closed while the oracle still sees pending work: {expected:?}"
            );
            break;
        };
        let (oracle_gain, oracle_group) =
            expected.expect("scheduler advanced a group the oracle says is done");
        prop_assert_eq!(
            executed,
            oracle_group,
            "step {}: lazy heap advanced group {} but the fresh argmax is {} (gain {})",
            step,
            executed,
            oracle_group,
            oracle_gain
        );
        // The advertised gain is the same computation the oracle just
        // ran, so it must agree exactly.
        let scheduled: Vec<(usize, f64)> = sink
            .events()
            .iter()
            .filter_map(|e| match e {
                TelemetryEvent::GroupScheduled { group, gain, .. } => Some((*group, *gain)),
                _ => None,
            })
            .collect();
        prop_assert_eq!(scheduled.len(), step + 1);
        let (ev_group, ev_gain) = scheduled[step];
        prop_assert_eq!(ev_group, executed);
        prop_assert_eq!(
            ev_gain.to_bits(),
            oracle_gain.to_bits(),
            "step {}: scheduled gain {} != oracle gain {}",
            step,
            ev_gain,
            oracle_gain
        );
        step += 1;
    }

    prop_assert_eq!(scheduler.groups_finished(), n, "every group must drain");
    if let CorpusBudget::Pooled(pool) = budget {
        prop_assert!(
            scheduler.spent() <= pool,
            "pooled corpus overspent: {} > {}",
            scheduler.spent(),
            pool
        );
    }
    let events = sink.into_events();
    let audit = hc_core::telemetry::audit(&events);
    prop_assert!(audit.is_clean(), "{}", audit.render());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn pooled_allocator_follows_the_exhaustive_argmax(
        groups in corpus_strategy(),
        panel in panel_strategy(),
        k in 1usize..=2,
        pool in 2u64..=12,
    ) {
        let config = HcConfig::new(k, u64::MAX / 2);
        assert_allocator_matches_exhaustive_oracle(
            &groups,
            &panel,
            &config,
            CorpusBudget::Pooled(pool),
        )?;
    }

    #[test]
    fn per_group_allocator_follows_the_exhaustive_argmax(
        groups in corpus_strategy(),
        panel in panel_strategy(),
        k in 1usize..=2,
        budget_each in 2u64..=6,
    ) {
        let config = HcConfig::new(k, budget_each);
        assert_allocator_matches_exhaustive_oracle(
            &groups,
            &panel,
            &config,
            CorpusBudget::PerGroup,
        )?;
    }

    #[test]
    fn unrestricted_allocator_follows_the_exhaustive_argmax(
        groups in corpus_strategy(),
        panel in panel_strategy(),
        pool in 2u64..=10,
    ) {
        // Unrestricted re-selection keeps every query eligible forever,
        // so the gain landscape the heap must track never goes quiet.
        let mut config = HcConfig::new(1, u64::MAX / 2);
        config.repeat_policy = RepeatPolicy::Unrestricted;
        assert_allocator_matches_exhaustive_oracle(
            &groups,
            &panel,
            &config,
            CorpusBudget::Pooled(pool),
        )?;
    }

    #[test]
    fn first_pick_is_the_naive_query_pair_argmax(
        groups in corpus_strategy(),
        panel in panel_strategy(),
    ) {
        // Fresh corpus, k = 1, Unrestricted: the first scheduled gain
        // is the best single (group, query) pair by Equation (34).
        let mut config = HcConfig::new(1, u64::MAX / 2);
        config.repeat_policy = RepeatPolicy::Unrestricted;
        let selector = GreedySelector::new();
        let costs = UnitCost;
        let sessions = start_sessions(&groups, &panel, &config, &selector, &costs);
        let n = sessions.len();
        // Enough pool that every group can afford its first round.
        let mut scheduler = CorpusScheduler::new(sessions, CorpusBudget::Pooled(64));
        let mut oracles: Vec<Agreeable> = (0..n).map(|_| Agreeable).collect();
        let mut rngs: Vec<StdRng> =
            (0..n).map(|g| StdRng::seed_from_u64(g as u64)).collect();
        let mut sink = RecordingSink::new();
        let executed = {
            let mut observer = |_: usize, _: &MultiBelief, _: &RoundRecord| {};
            let mut env = CorpusEnv {
                oracles: oracles.iter_mut().map(|o| o as &mut dyn AnswerOracle).collect(),
                rngs: rngs.iter_mut().map(|r| r as &mut dyn RngCore).collect(),
                sink: &mut sink,
                observer: &mut observer,
            };
            scheduler.step_once(&mut env).expect("first step")
        };
        let executed = executed.expect("non-empty corpus schedules a group");
        let winner_gain = sink
            .events()
            .iter()
            .find_map(|e| match e {
                TelemetryEvent::GroupScheduled { gain, .. } => Some(*gain),
                _ => None,
            })
            .expect("first step emits GroupScheduled");
        // The winner's gain matches its own naive best pair …
        let winner_naive = naive_single_query_max(&groups[executed], &panel);
        prop_assert!(
            (winner_gain - winner_naive).abs() < GAIN_TOL,
            "group {executed}: scheduled gain {winner_gain} vs naive {winner_naive}"
        );
        // … and no (group, query) pair anywhere naively beats it.
        for (g, beliefs) in groups.iter().enumerate() {
            let naive = naive_single_query_max(beliefs, &panel);
            prop_assert!(
                naive <= winner_gain + GAIN_TOL,
                "group {g} naively gains {naive} > scheduled winner {winner_gain}"
            );
        }
    }
}
