//! Float-torture suite for the hardened belief engine.
//!
//! Drives the Bayes update path through the regimes that used to be
//! release-mode landmines: near-perfect accuracies (`1 − 1e-12`),
//! hundreds of consecutive rounds, beliefs up to 20 facts (`2^20`
//! cells), and evidence whose linear-domain likelihood underflows to
//! exactly zero. After every update the posterior must be finite,
//! non-negative, and normalised; entropies and selection gains must be
//! finite; and the whole run must be bit-identical at 1, 2, and 8
//! threads.
//!
//! Sizes are scaled down under `debug_assertions` so `cargo test`
//! stays quick; CI runs the full-scale suite in `--release`.

use hc::prelude::*;
use hc_core::answer::{answer_set_likelihood, AnswerSet, QuerySet};
use hc_core::entropy::conditional_entropy;
use hc_core::update::{update_with_answer_set, update_with_family, UpdateHealth};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[cfg(debug_assertions)]
mod scale {
    /// Largest belief exercised, in facts (cells are `2^N`).
    pub const MAX_FACTS: usize = 10;
    /// Update rounds per torture case.
    pub const ROUNDS: usize = 50;
    /// Proptest cases per property.
    pub const CASES: u32 = 8;
}
#[cfg(not(debug_assertions))]
mod scale {
    pub const MAX_FACTS: usize = 20;
    pub const ROUNDS: usize = 200;
    pub const CASES: u32 = 16;
}

/// Sum tolerance after an explicit renormalisation: ordered summation
/// over up to `2^20` cells accumulates a few ulps per chunk, nothing
/// more.
const SUM_TOL: f64 = 1e-8;

/// Accuracies from comfortable to one ulp shy of certain. The extreme
/// members are the whole point of the suite: `(1 − acc)` factors of
/// `1e-12` underflow a 64-bit float after a few hundred products.
fn accuracy_strategy() -> impl Strategy<Value = f64> {
    prop_oneof![
        4 => 0.51f64..0.999,
        1 => Just(1.0 - 1e-6),
        1 => Just(1.0 - 1e-9),
        2 => Just(1.0 - 1e-12),
    ]
}

/// `k` distinct fact ids out of `n`, chosen by partial Fisher–Yates.
fn pick_facts(rng: &mut StdRng, n: usize, k: usize) -> Vec<FactId> {
    let mut ids: Vec<u32> = (0..n as u32).collect();
    for i in 0..k {
        let j = rng.gen_range(i..ids.len());
        ids.swap(i, j);
    }
    ids.truncate(k);
    ids.into_iter().map(FactId).collect()
}

/// One worker's answers to `queries`: each query answered correctly
/// (relative to `truth`) with probability `acc`.
fn noisy_answers(rng: &mut StdRng, queries: &QuerySet, truth: Observation, acc: f64) -> AnswerSet {
    let proj = truth.project(queries.facts());
    let mut bits = 0u32;
    for j in 0..queries.len() {
        let truth_bit = (proj >> j) & 1 == 1;
        let correct = rng.gen_bool(acc);
        if truth_bit == correct {
            bits |= 1 << j;
        }
    }
    AnswerSet::from_bits(bits, queries.len())
}

/// Asserts the posterior invariants that release builds used to lose
/// silently: every cell finite and non-negative, total mass one.
fn assert_normalised(belief: &Belief, context: &str) {
    let mut sum = 0.0;
    for (i, &p) in belief.probs().iter().enumerate() {
        assert!(
            p.is_finite() && p >= 0.0,
            "{context}: cell {i} is {p}"
        );
        sum += p;
    }
    assert!(
        (sum - 1.0).abs() < SUM_TOL,
        "{context}: total mass {sum}"
    );
}

/// Runs `rounds` noisy single-worker updates against a fixed ground
/// truth, checking the posterior after every round. Returns the final
/// belief and the aggregated health.
fn torture_run(n: usize, acc: f64, rounds: usize, seed: u64) -> (Belief, UpdateHealth) {
    let mut rng = StdRng::seed_from_u64(seed);
    let marginals: Vec<f64> = (0..n).map(|_| rng.gen_range(0.02..0.98)).collect();
    let mut belief = Belief::from_marginals(&marginals).expect("valid marginals");
    let truth = Observation(rng.gen_range(0..(1u64 << n)) as u32);
    let mut agg = UpdateHealth::identity();
    for round in 0..rounds {
        let k = rng.gen_range(1..=3.min(n));
        let queries =
            QuerySet::new(pick_facts(&mut rng, n, k), n).expect("valid query set");
        let set = noisy_answers(&mut rng, &queries, truth, acc);
        let health = update_with_answer_set(&mut belief, &queries, acc, set)
            .expect("hardened update never poisons the belief");
        agg.merge(&health);
        assert_normalised(&belief, &format!("n={n} acc={acc} round={round}"));
        if round % 25 == 0 {
            let h = belief.entropy();
            assert!(h.is_finite() && h >= 0.0, "round {round}: entropy {h}");
        }
    }
    (belief, agg)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: scale::CASES,
        ..ProptestConfig::default()
    })]

    /// The tentpole property: arbitrarily extreme accuracies and long
    /// runs never produce a NaN, a negative cell, or a denormalised
    /// posterior — and entropies/gains stay finite throughout.
    #[test]
    fn torture_posteriors_stay_finite_and_normalised(
        n in 2usize..=scale::MAX_FACTS,
        acc in accuracy_strategy(),
        seed in any::<u64>(),
    ) {
        let (belief, health) = torture_run(n, acc, scale::ROUNDS, seed);
        let entropy = belief.entropy();
        prop_assert!(entropy.is_finite() && entropy >= 0.0, "entropy {entropy}");
        // Selection stays usable on the tortured posterior.
        let panel = ExpertPanel::from_accuracies(&[0.9, 0.8]).unwrap();
        let h_cond = conditional_entropy(&belief, &[FactId(0)], &panel).unwrap();
        prop_assert!(h_cond.is_finite() && h_cond >= 0.0, "H(O|AS) {h_cond}");
        let gain = entropy - h_cond;
        prop_assert!(gain.is_finite() && gain >= -1e-9, "gain {gain}");
        // Health telemetry from real updates is always meaningful.
        prop_assert!(health.is_meaningful());
        prop_assert!(health.renorm_scale.is_finite() && health.renorm_scale > 0.0);
        prop_assert!(health.min_mass.is_finite() && health.min_mass >= 0.0);
    }

    /// Differential check: in benign regimes (moderate accuracies,
    /// modest depth) the hardened path agrees with a naively-coded
    /// multiply-then-normalise update to 1e-9 per cell.
    #[test]
    fn hardened_update_matches_naive_in_benign_regimes(
        n in 2usize..=8,
        acc in 0.55f64..0.95,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let marginals: Vec<f64> = (0..n).map(|_| rng.gen_range(0.1..0.9)).collect();
        let mut hardened = Belief::from_marginals(&marginals).unwrap();
        let mut naive: Vec<f64> = hardened.probs().to_vec();
        let truth = Observation(rng.gen_range(0..(1u64 << n)) as u32);
        for _ in 0..50 {
            let k = rng.gen_range(1..=2.min(n));
            let queries = QuerySet::new(pick_facts(&mut rng, n, k), n).unwrap();
            let set = noisy_answers(&mut rng, &queries, truth, acc);
            update_with_answer_set(&mut hardened, &queries, acc, set).unwrap();
            // Naive reference: linear multiply, plain-sum renormalise.
            for (o, p) in naive.iter_mut().enumerate() {
                let proj = Observation(o as u32).project(queries.facts());
                *p *= answer_set_likelihood(acc, set, proj);
            }
            let sum: f64 = naive.iter().sum();
            for p in naive.iter_mut() {
                *p /= sum;
            }
        }
        for (i, (&h, &nv)) in hardened.probs().iter().zip(&naive).enumerate() {
            prop_assert!(
                (h - nv).abs() <= 1e-9,
                "cell {i}: hardened {h} vs naive {nv}"
            );
        }
    }
}

/// Dense-vs-sparse torture twin: the same noisy rounds applied to the
/// dense oracle and to a *truncating* sparse belief (support capped at
/// a quarter of the full layout, so pruning engages immediately).
/// Moderate accuracies keep every multiplier strictly positive, so the
/// sparse run can never legitimately collapse; what must hold instead
/// is the certified-bound contract: realized TV ≤ reported bound.
fn sparse_torture_run(
    n: usize,
    acc: f64,
    rounds: usize,
    seed: u64,
) -> (Belief, Belief) {
    let mut rng = StdRng::seed_from_u64(seed);
    let marginals: Vec<f64> = (0..n).map(|_| rng.gen_range(0.02..0.98)).collect();
    let mut dense = Belief::from_marginals(&marginals).expect("valid marginals");
    let mut sparse = dense.to_sparse(1 << (n - 2)).expect("truncated copy");
    let truth = Observation(rng.gen_range(0..(1u64 << n)) as u32);
    for round in 0..rounds {
        let k = rng.gen_range(1..=3.min(n));
        let queries = QuerySet::new(pick_facts(&mut rng, n, k), n).expect("valid query set");
        let set = noisy_answers(&mut rng, &queries, truth, acc);
        update_with_answer_set(&mut dense, &queries, acc, set)
            .unwrap_or_else(|e| panic!("dense round {round}: {e}"));
        update_with_answer_set(&mut sparse, &queries, acc, set)
            .unwrap_or_else(|e| panic!("sparse round {round}: {e}"));
        let bound = sparse.truncation_bound();
        assert!(
            (0.0..=1.0).contains(&bound),
            "round {round}: bound {bound}"
        );
        let tv = dense
            .total_variation(&sparse)
            .expect("comparable beliefs");
        assert!(
            tv <= bound + 1e-9,
            "round {round}: realized TV {tv} exceeds certified bound {bound}"
        );
    }
    (dense, sparse)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: scale::CASES,
        ..ProptestConfig::default()
    })]

    /// The hardened-vs-naive differential, run against the sparse
    /// representation: at every round the truncating sparse posterior
    /// stays within its self-certified TV bound of the dense oracle.
    #[test]
    fn sparse_truncation_bound_is_honest_under_torture(
        n in 5usize..=10,
        acc in 0.55f64..0.95,
        seed in any::<u64>(),
    ) {
        let (_, sparse) = sparse_torture_run(n, acc, 30, seed);
        let h = sparse.entropy();
        prop_assert!(h.is_finite() && h >= 0.0, "entropy {h}");
    }
}

/// Byte-equality of sparse and factored posteriors at 1, 2, and 8
/// threads — the determinism contract extended to the new
/// representations (fixed-chunk ordered merges over the support / the
/// blocks, exactly like the dense engine).
#[test]
fn sparse_and_factored_posteriors_bit_identical_across_thread_counts() {
    let n = 10;
    let rounds = 60;
    let drive = |belief: &mut Belief| {
        let mut rng = StdRng::seed_from_u64(0xB17_1DEA);
        let truth = Observation(rng.gen_range(0..(1u64 << n)) as u32);
        for _ in 0..rounds {
            let k = rng.gen_range(1..=3);
            let queries = QuerySet::new(pick_facts(&mut rng, n, k), n).unwrap();
            let set = noisy_answers(&mut rng, &queries, truth, 0.9);
            update_with_answer_set(belief, &queries, 0.9, set).unwrap();
        }
    };
    let sparse_run = |threads: usize| {
        let _guard = hc_core::parallel::scoped(Parallelism::Threads(threads));
        let marginals: Vec<f64> = (0..n).map(|i| 0.1 + 0.08 * (i as f64)).collect();
        let mut b = Belief::sparse_from_marginals(&marginals, 1 << (n - 2)).unwrap();
        drive(&mut b);
        let d = b.to_dense().unwrap();
        let bits: Vec<u64> = d.probs().iter().map(|p| p.to_bits()).collect();
        (bits, b.truncation_bound().to_bits())
    };
    let factored_run = |threads: usize| {
        let _guard = hc_core::parallel::scoped(Parallelism::Threads(threads));
        let blocks = vec![
            Belief::from_marginals(&[0.3, 0.6, 0.8, 0.45, 0.2]).unwrap(),
            Belief::from_marginals(&[0.7, 0.35, 0.55, 0.9, 0.15]).unwrap(),
        ];
        let mut b = Belief::factored(blocks).unwrap();
        drive(&mut b);
        let d = b.to_dense().unwrap();
        d.probs().iter().map(|p| p.to_bits()).collect::<Vec<u64>>()
    };
    let s1 = sparse_run(1);
    assert_eq!(s1, sparse_run(2), "sparse: 1 vs 2 threads");
    assert_eq!(s1, sparse_run(8), "sparse: 1 vs 8 threads");
    let f1 = factored_run(1);
    assert_eq!(f1, factored_run(2), "factored: 1 vs 2 threads");
    assert_eq!(f1, factored_run(8), "factored: 1 vs 8 threads");
}

/// A posterior that is *already* a point mass, contradicted each round
/// by a large panel of near-perfect workers, underflows the linear
/// domain every single update (30 factors of `1e-12` per round). The
/// log-domain rescue must absorb all `ROUNDS` of it without ever
/// losing the supported cell or de-normalising.
#[test]
fn repeated_underflowing_rounds_are_rescued_indefinitely() {
    let n = 2;
    let mut probs = vec![0.0; 1 << n];
    probs[0b01] = 1.0;
    let mut belief = Belief::from_probs(probs).unwrap();
    let acc = 1.0 - 1e-12;
    let panel = ExpertPanel::from_accuracies(&vec![acc; 15]).unwrap();
    let queries = QuerySet::new(vec![FactId(0), FactId(1)], n).unwrap();
    // Both answers inconsistent with the supported pattern 0b01.
    let family = AnswerFamily::new(vec![
        AnswerSet::new(&[Answer::No, Answer::Yes]);
        15
    ]);
    for round in 0..scale::ROUNDS {
        let health = update_with_family(&mut belief, &queries, &panel, &family)
            .unwrap_or_else(|e| panic!("round {round}: {e}"));
        assert!(health.rescued, "round {round}: rescue must engage");
        assert!(
            health.log_evidence.is_finite() && health.log_evidence < -800.0,
            "round {round}: log evidence {}",
            health.log_evidence
        );
        assert_normalised(&belief, &format!("rescued round {round}"));
        assert!(
            (belief.probs()[0b01] - 1.0).abs() < 1e-12,
            "round {round}: supported cell lost"
        );
    }
}

/// Byte-equality of the tortured posterior and its health report at 1,
/// 2, and 8 threads — the PR-4 determinism contract extended to the
/// rescue path.
#[test]
fn tortured_run_is_bit_identical_across_thread_counts() {
    let run = |threads: usize| {
        let _guard = hc_core::parallel::scoped(Parallelism::Threads(threads));
        let (belief, health) = torture_run(12.min(scale::MAX_FACTS), 1.0 - 1e-12, 100, 0xF10A7);
        let bits: Vec<u64> = belief.probs().iter().map(|p| p.to_bits()).collect();
        (
            bits,
            health.min_mass.to_bits(),
            health.renorm_scale.to_bits(),
            health.log_evidence.to_bits(),
            health.clamp_count,
            health.rescued,
        )
    };
    let at_1 = run(1);
    let at_2 = run(2);
    let at_8 = run(8);
    assert_eq!(at_1, at_2, "torture: 1 vs 2 threads");
    assert_eq!(at_1, at_8, "torture: 1 vs 8 threads");
}
