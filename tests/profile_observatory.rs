//! End-to-end contract of the performance observatory: hierarchical
//! profiling spans, work counters, and cross-run trace diffing.
//!
//! Pins the four guarantees the profiler makes:
//!
//! * a profiled run emits one `profile_report` whose span tree
//!   telescopes — self-times sum to the inclusive root time (within 1%,
//!   exact modulo saturation) — and whose work counters are non-trivial;
//! * profiling is an observability feature, not a behaviour change:
//!   posteriors, budget, and the functional event stream are
//!   bit-identical with profiling on, off, and with a disabled sink;
//! * the span timings are the *only* thread-policy-dependent output:
//!   serial and 8-thread runs agree bit for bit on posteriors and on
//!   every work counter;
//! * `compare` on two traces of the same seeded run reports zero
//!   trajectory divergence.

use hc::prelude::*;
use hc_core::hc::{run_hc_costed_with_telemetry, HcConfig, UnitCost};
use hc_core::parallel::Parallelism;
use hc_core::selection::GreedySelector;
use hc_core::telemetry::compare::compare_str;
use hc_core::telemetry::{ReplayedRun, SharedRecorder, TelemetryEvent};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Two correlated tasks, big enough that chunked scoring and the
/// parallel entropy reductions all engage (64- and 32-cell beliefs).
fn test_beliefs() -> MultiBelief {
    let a = Belief::from_probs(hc::data::synth::markov_joint(6, 0.6, 0.65)).expect("valid joint");
    let b = Belief::from_probs(hc::data::synth::markov_joint(5, 0.45, 0.8)).expect("valid joint");
    MultiBelief::new(vec![a, b])
}

fn test_truths() -> Vec<Vec<bool>> {
    vec![
        vec![true, false, true, true, false, true],
        vec![false, true, true, false, true],
    ]
}

/// One seeded HC run over an unreliable crowd. Returns the posterior
/// bit patterns, the budget spent, and the recorded event stream.
fn run_observed(
    parallelism: Parallelism,
    profile: bool,
    record: bool,
) -> (Vec<u64>, u64, Vec<TelemetryEvent>) {
    let mut beliefs = test_beliefs();
    let truths = test_truths();
    let recorder = SharedRecorder::new();

    let sampling = SamplingOracle::new(&truths, StdRng::seed_from_u64(0xFA11));
    let plan = FaultPlan::uniform(0.25, 0xD0_0D).with_timeouts(0.1);
    let faulty = FaultyOracle::new(sampling, plan);
    let mut platform =
        SimulatedPlatform::new(faulty, 0x51ED).with_retry_policy(RetryPolicy::standard());

    let panel = ExpertPanel::from_accuracies(&[0.95, 0.9, 0.85]).expect("valid panel");
    let mut config = HcConfig::new(3, 30);
    config.parallelism = parallelism;
    config.profile = profile;

    let mut rng = StdRng::seed_from_u64(0xC0DE);
    let mut observer = |_: &MultiBelief, _: &hc_core::hc::RoundRecord| {};
    let spent = if record {
        let mut sink = recorder.clone();
        let (_, spent) = run_hc_costed_with_telemetry(
            &mut beliefs,
            &panel,
            &GreedySelector::new(),
            &mut platform,
            &config,
            &UnitCost,
            &mut rng,
            &mut observer,
            &mut sink,
        )
        .expect("instrumented loop runs");
        spent
    } else {
        let mut sink = hc_core::telemetry::NullSink;
        let (_, spent) = run_hc_costed_with_telemetry(
            &mut beliefs,
            &panel,
            &GreedySelector::new(),
            &mut platform,
            &config,
            &UnitCost,
            &mut rng,
            &mut observer,
            &mut sink,
        )
        .expect("instrumented loop runs");
        spent
    };

    let bits: Vec<u64> = beliefs
        .tasks()
        .iter()
        .flat_map(|t| t.probs().iter().map(|p| p.to_bits()))
        .collect();
    (bits, spent, recorder.into_events())
}

fn to_jsonl(events: &[TelemetryEvent]) -> String {
    let mut text = String::new();
    for e in events {
        text.push_str(&e.to_json_line());
        text.push('\n');
    }
    text
}

fn profile_of(events: &[TelemetryEvent]) -> (Vec<hc_core::telemetry::ProfileSpan>, Vec<(String, u64)>) {
    let report = events
        .iter()
        .find_map(|e| match e {
            TelemetryEvent::ProfileReport { spans, counters, .. } => {
                Some((spans.clone(), counters.clone()))
            }
            _ => None,
        })
        .expect("a profiled run emits exactly one profile_report");
    report
}

fn without_profile(events: &[TelemetryEvent]) -> Vec<TelemetryEvent> {
    events
        .iter()
        .filter(|e| !matches!(e, TelemetryEvent::ProfileReport { .. }))
        .cloned()
        .collect()
}

#[test]
fn profiled_run_emits_a_telescoping_span_tree_with_work_counters() {
    let (_, spent, events) = run_observed(Parallelism::Serial, true, true);
    assert!(spent > 0, "the loop must spend budget");
    let profiles = events
        .iter()
        .filter(|e| matches!(e, TelemetryEvent::ProfileReport { .. }))
        .count();
    assert_eq!(profiles, 1, "exactly one profile_report per run");

    let (spans, counters) = profile_of(&events);
    assert!(!spans.is_empty(), "the span tree must not be empty");
    for s in &spans {
        assert!(
            s.self_nanos <= s.total_nanos,
            "self must not exceed inclusive time on {}",
            s.path
        );
    }
    // Telescoping: Σ self over the whole tree equals Σ inclusive over
    // the roots (self = inclusive − children, summed over a tree).
    let self_sum: u64 = spans.iter().map(|s| s.self_nanos).sum();
    let root_sum: u64 = spans
        .iter()
        .filter(|s| !s.path.contains('/'))
        .map(|s| s.total_nanos)
        .sum();
    assert!(root_sum > 0, "the run must have taken measurable time");
    let diff = self_sum.abs_diff(root_sum) as f64;
    assert!(
        diff <= root_sum as f64 * 0.01,
        "span self-times must telescope: Σself {self_sum} vs Σroot {root_sum}"
    );
    // The tree is hierarchical: phase work is nested under step spans.
    assert!(
        spans.iter().any(|s| s.path.contains('/')),
        "the tree must have at least one child span"
    );

    // Every kernel-level work counter is reported; selection, update,
    // and dispatch counters must all have fired on this run.
    let counter = |name: &str| {
        counters
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("missing counter {name}"))
            .1
    };
    assert!(counter("candidate_evals") > 0, "greedy scoring must count");
    assert!(counter("patterns_touched") > 0, "Bayes updates must count");
    assert!(counter("chunks_dispatched") > 0, "kernels must count");
    let _ = counter("rescued_updates"); // present even when zero

    // The trace replays, and the replayed profile matches the event.
    let replay = ReplayedRun::from_jsonl(&to_jsonl(&events));
    let profile = replay.profile.expect("replay keeps the profile");
    assert_eq!(profile.spans, spans);
    assert_eq!(profile.counters, counters);
}

#[test]
fn profiling_changes_the_stream_only_by_the_report() {
    let (bits_off, spent_off, events_off) = run_observed(Parallelism::Serial, false, true);
    let (bits_on, spent_on, events_on) = run_observed(Parallelism::Serial, true, true);
    assert_eq!(bits_off, bits_on, "posteriors: profile off vs on");
    assert_eq!(spent_off, spent_on, "budget: profile off vs on");
    assert!(
        !events_off
            .iter()
            .any(|e| matches!(e, TelemetryEvent::ProfileReport { .. })),
        "an unprofiled run must not emit profile_report"
    );
    assert_eq!(
        events_off,
        without_profile(&events_on),
        "profiling must add the report and change nothing else"
    );

    // With a disabled sink the profiled run still computes the same
    // posteriors and emits nothing at all.
    let (bits_null, spent_null, events_null) = run_observed(Parallelism::Serial, true, false);
    assert_eq!(bits_off, bits_null, "posteriors: NullSink");
    assert_eq!(spent_off, spent_null, "budget: NullSink");
    assert!(events_null.is_empty(), "NullSink records nothing");
}

#[test]
fn counters_and_posteriors_are_thread_policy_invariant() {
    let (bits_1, spent_1, events_1) = run_observed(Parallelism::Serial, true, true);
    let (bits_8, spent_8, events_8) = run_observed(Parallelism::Threads(8), true, true);
    assert_eq!(bits_1, bits_8, "posteriors: serial vs 8 threads");
    assert_eq!(spent_1, spent_8, "budget: serial vs 8 threads");
    // Everything but the wall-clock profile is bit-identical…
    assert_eq!(
        without_profile(&events_1),
        without_profile(&events_8),
        "functional event stream: serial vs 8 threads"
    );
    // …and even inside the profile, the *work counters* agree exactly:
    // counting happens only on the coordinating thread, and nested
    // kernels are never double-counted.
    let (_, counters_1) = profile_of(&events_1);
    let (_, counters_8) = profile_of(&events_8);
    assert_eq!(counters_1, counters_8, "work counters: serial vs 8 threads");
}

#[test]
fn same_seed_traces_compare_with_zero_trajectory_divergence() {
    let (_, _, events_a) = run_observed(Parallelism::Serial, true, true);
    let (_, _, events_b) = run_observed(Parallelism::Threads(8), true, true);
    let report = compare_str(&to_jsonl(&events_a), &to_jsonl(&events_b)).expect("traces compare");
    assert_eq!(report.mode, "trace");
    let trajectory = report.trajectory.expect("trace mode has a trajectory");
    assert!(
        trajectory.is_identical(),
        "same seeded run must show zero trajectory divergence: {trajectory:?}"
    );
    assert_eq!(trajectory.first_divergent_round, None);
    // Phase latency metrics are present (both sides carry profiles) and
    // no counter ratio strays from 1.
    assert!(
        report.metrics.iter().any(|m| m.key.starts_with("phase.")),
        "phase latency deltas must be reported"
    );
    for c in &report.counters {
        assert_eq!(c.a, c.b, "counter {} must not drift", c.name);
    }
}
