//! Golden-trace snapshot of the quickstart scenario (paper Table I).
//!
//! Pins the full observable behaviour of two greedy checking rounds on
//! the three-fact Table I belief with the θ = 0.9 expert panel
//! `[0.95, 0.92]` and truthful expert answers for ground truth
//! `(true, true, false)`:
//!
//! * the selection *order* and every scored marginal gain, per step;
//! * the belief entropy after each round's Bayes update;
//! * the final posterior, cell by cell, and the recovered labels.
//!
//! The expected values are literals from an independent f64 reference
//! implementation of Equations (34)–(36) (direct enumeration, no chain
//! rule), compared at 1e-9 — far above f64 association noise, far below
//! anything a real regression would produce. Bit-exactness across
//! thread counts is enforced separately in `tests/determinism.rs`;
//! this file pins the *values* so a silent change to the math (not just
//! to the reduction order) fails loudly.

use hc::prelude::*;
use hc_core::answer::{Answer, AnswerFamily, AnswerSet, QuerySet};
use hc_core::selection::{global_facts, ExplainTrace, GlobalFact, TaskSelector};
use hc_core::update::update_with_family;
use rand::rngs::StdRng;
use rand::SeedableRng;

const TOL: f64 = 1e-9;
const TRUTH: [bool; 3] = [true, true, false];

/// Table I: three correlated facts, bit `i` of the cell index is the
/// truth value of fact `i`.
fn table_one() -> Belief {
    Belief::from_probs(vec![0.09, 0.11, 0.10, 0.20, 0.08, 0.09, 0.15, 0.18])
        .expect("Table I joint is a distribution")
}

fn expert_panel() -> ExpertPanel {
    ExpertPanel::from_accuracies(&[0.95, 0.92]).expect("valid panel")
}

/// One greedy round: select `k = 2` with an explain trace, then apply
/// truthful answers from every expert for the selected facts.
fn golden_round(beliefs: &mut MultiBelief, panel: &ExpertPanel) -> ExplainTrace {
    let candidates = global_facts(beliefs);
    let mut trace = ExplainTrace::new();
    let mut rng = StdRng::seed_from_u64(0);
    let chosen = GreedySelector::new()
        .select_with_explain(beliefs, panel, 2, &candidates, &mut rng, &mut trace)
        .expect("greedy select");
    let facts: Vec<FactId> = chosen.iter().map(|q| q.fact).collect();
    let queries = QuerySet::new(facts.clone(), 3).expect("valid query set");
    let truthful: Vec<Answer> = facts
        .iter()
        .map(|f| Answer::from_bool(TRUTH[f.index()]))
        .collect();
    let family = AnswerFamily::new(vec![AnswerSet::new(&truthful); panel.len()]);
    let belief = &mut beliefs.tasks_mut()[0];
    update_with_family(belief, &queries, panel, &family).expect("Bayes update");
    trace
}

/// Asserts one explained pick: position, fact, and gain.
fn assert_pick(trace: &ExplainTrace, step: usize, fact: u32, gain: f64) {
    let pick = &trace.selected[step];
    assert_eq!(pick.step, step);
    assert_eq!(pick.fact, GlobalFact::new(0, fact), "winner of step {step}");
    assert!(
        (pick.gain - gain).abs() < TOL,
        "step {step} gain: got {}, want {gain}",
        pick.gain
    );
}

/// Asserts a scored (not necessarily winning) gain evaluated at `step`.
fn assert_scored(trace: &ExplainTrace, step: usize, fact: u32, gain: f64) {
    let found = trace
        .scored
        .iter()
        .find(|s| s.step == step && s.fact == GlobalFact::new(0, fact))
        .unwrap_or_else(|| panic!("fact {fact} must be scored at step {step}"));
    assert!(
        (found.gain - gain).abs() < TOL,
        "scored gain of f{fact} at step {step}: got {}, want {gain}",
        found.gain
    );
}

#[test]
fn quickstart_two_rounds_match_the_golden_trace() {
    let mut beliefs = MultiBelief::new(vec![table_one()]);
    let panel = expert_panel();

    assert!(
        (beliefs.entropy() - 2.023_666_548_128_520_3).abs() < TOL,
        "prior entropy: got {}",
        beliefs.entropy()
    );

    // Round 1: f3 wins (0.5868 nats), then f1 (0.5731 against the
    // updated base). All three first-step gains are pinned.
    let trace = golden_round(&mut beliefs, &panel);
    assert_eq!(trace.selected.len(), 2);
    assert_scored(&trace, 0, 0, 0.575_577_886_370_268_3);
    assert_scored(&trace, 0, 1, 0.557_034_780_694_086_74);
    assert_scored(&trace, 0, 2, 0.586_753_567_758_532_49);
    assert_pick(&trace, 0, 2, 0.586_753_567_758_532_49);
    assert_scored(&trace, 1, 0, 0.573_094_144_222_161_54);
    assert_scored(&trace, 1, 1, 0.555_576_977_353_782_2);
    assert_pick(&trace, 1, 0, 0.573_094_144_222_161_54);
    assert!(
        (beliefs.entropy() - 0.695_651_598_156_339_26).abs() < TOL,
        "entropy after round 1: got {}",
        beliefs.entropy()
    );

    // Round 2: the still-unchecked f2 dominates (0.5497), then f3 again
    // with the small residual gain (0.0175).
    let trace = golden_round(&mut beliefs, &panel);
    assert_eq!(trace.selected.len(), 2);
    assert_scored(&trace, 0, 0, 0.012_542_336_115_130_448);
    assert_scored(&trace, 0, 1, 0.549_720_658_217_970_34);
    assert_scored(&trace, 0, 2, 0.017_491_565_565_500_355);
    assert_pick(&trace, 0, 1, 0.549_720_658_217_970_34);
    assert_scored(&trace, 1, 0, 0.012_518_253_510_465_26);
    assert_scored(&trace, 1, 2, 0.017_490_117_617_552_065);
    assert_pick(&trace, 1, 2, 0.017_490_117_617_552_065);
    assert!(
        (beliefs.entropy() - 0.033_974_551_747_096_64).abs() < TOL,
        "entropy after round 2: got {}",
        beliefs.entropy()
    );

    // The final posterior, cell by cell: the true observation o4
    // (f1=T f2=T f3=F, index 0b011) holds ~99.5% of the mass.
    let expected = [
        9.380_270_441_671_130_9e-6,
        2.505_053_334_061_838_7e-3,
        2.277_321_212_783_489_7e-3,
        9.951_893_699_863_845_2e-1,
        1.746_465_273_499_749_5e-10,
        4.293_029_950_421_570_5e-8,
        7.155_049_917_369_282_7e-8,
        1.876_054_088_334_226_2e-5,
    ];
    let posterior = beliefs.tasks()[0].probs();
    assert_eq!(posterior.len(), expected.len());
    for (i, (&got, &want)) in posterior.iter().zip(&expected).enumerate() {
        assert!(
            (got - want).abs() < TOL,
            "posterior cell {i}: got {got}, want {want}"
        );
    }

    // And the labels recover the ground truth.
    let marginals = beliefs.tasks()[0].marginals();
    let labels: Vec<bool> = marginals.iter().map(|&m| m > 0.5).collect();
    assert_eq!(labels, TRUTH.to_vec());
    assert!((marginals[0] - 0.997_713_226_791_629_22).abs() < TOL);
    assert!((marginals[1] - 0.997_485_523_290_550_51).abs() < TOL);
    assert!((marginals[2] - 1.887_519_632_854_752e-5).abs() < TOL);
}

#[test]
fn golden_trace_is_thread_count_invariant() {
    // The same two rounds produce bit-identical picks, gains, and
    // posteriors whatever the thread policy — the snapshot above cannot
    // drift with the machine it runs on.
    let run = |parallelism| {
        let _guard = hc_core::parallel::scoped(parallelism);
        let mut beliefs = MultiBelief::new(vec![table_one()]);
        let panel = expert_panel();
        let t1 = golden_round(&mut beliefs, &panel);
        let t2 = golden_round(&mut beliefs, &panel);
        let gains: Vec<u64> = t1
            .selected
            .iter()
            .chain(&t2.selected)
            .map(|s| s.gain.to_bits())
            .collect();
        let picks: Vec<GlobalFact> = t1
            .selected
            .iter()
            .chain(&t2.selected)
            .map(|s| s.fact)
            .collect();
        let probs: Vec<u64> = beliefs.tasks()[0].probs().iter().map(|p| p.to_bits()).collect();
        (picks, gains, probs)
    };
    use hc_core::parallel::Parallelism;
    let serial = run(Parallelism::Serial);
    assert_eq!(serial, run(Parallelism::Threads(2)));
    assert_eq!(serial, run(Parallelism::Threads(8)));
}
