//! Thread-count bit-identity: the determinism contract of
//! `hc_core::parallel`, enforced end to end.
//!
//! The parallel engine promises that the thread count is invisible in
//! every output: all reductions run over fixed chunk boundaries with
//! serial ordered merges, so the floating-point operation order — and
//! therefore every bit of every result — is the same at `Serial`,
//! `Threads(2)`, and `Threads(8)`.
//!
//! These tests run the *full* stack — fault injection, retries,
//! explain-mode selection traces, and a recording telemetry sink — and
//! compare the complete outcome (posterior bits, serialized round
//! records, the JSON event stream) across thread counts with exact
//! equality, no tolerances.

use hc::prelude::*;
use hc_core::hc::{run_hc, run_hc_costed_with_telemetry, HcConfig, RoundRecord, UnitCost};
use hc_core::parallel::Parallelism;
use hc_core::selection::GreedySelector;
use hc_core::telemetry::SharedRecorder;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Two correlated tasks, big enough that chunked scoring and the
/// parallel entropy reductions all engage (64- and 32-cell beliefs).
fn test_beliefs() -> MultiBelief {
    let a = Belief::from_probs(hc::data::synth::markov_joint(6, 0.6, 0.65)).expect("valid joint");
    let b = Belief::from_probs(hc::data::synth::markov_joint(5, 0.45, 0.8)).expect("valid joint");
    MultiBelief::new(vec![a, b])
}

fn test_truths() -> Vec<Vec<bool>> {
    vec![
        vec![true, false, true, true, false, true],
        vec![false, true, true, false, true],
    ]
}

/// One fully-instrumented HC run under `parallelism`: unreliable crowd
/// (dropout + timeouts + a burst outage), standard retry policy,
/// explain-mode selection, and every layer fanned into one recorder.
///
/// Returns everything observable about the run, serialized:
/// (posterior bit patterns, round records as JSON, budget, events as
/// JSON lines).
fn run_instrumented(parallelism: Parallelism) -> (Vec<u64>, String, u64, String) {
    let mut beliefs = test_beliefs();
    let truths = test_truths();
    let recorder = SharedRecorder::new();

    let sampling = SamplingOracle::new(&truths, StdRng::seed_from_u64(0xFA11));
    let plan = FaultPlan::uniform(0.25, 0xD0_0D)
        .with_timeouts(0.1)
        .with_burst(7, 2);
    let faulty = FaultyOracle::new(sampling, plan).with_telemetry(Box::new(recorder.clone()));
    let mut platform = SimulatedPlatform::new(faulty, 0x51ED)
        .with_retry_policy(RetryPolicy::standard())
        .with_telemetry(Box::new(recorder.clone()));

    let panel = ExpertPanel::from_accuracies(&[0.95, 0.9, 0.85]).expect("valid panel");
    let mut config = HcConfig::new(3, 30);
    config.explain_selection = true;
    config.parallelism = parallelism;

    let mut rng = StdRng::seed_from_u64(0xC0DE);
    let mut rounds: Vec<RoundRecord> = Vec::new();
    let mut observer = |_: &MultiBelief, record: &RoundRecord| rounds.push(record.clone());
    let mut sink = recorder.clone();
    let (_, spent) = run_hc_costed_with_telemetry(
        &mut beliefs,
        &panel,
        &GreedySelector::new(),
        &mut platform,
        &config,
        &UnitCost,
        &mut rng,
        &mut observer,
        &mut sink,
    )
    .expect("instrumented loop runs");

    let bits: Vec<u64> = beliefs
        .tasks()
        .iter()
        .flat_map(|t| t.probs().iter().map(|p| p.to_bits()))
        .collect();
    let rounds_json = serde_json::to_string(&rounds).expect("rounds serialize");
    let events = recorder.into_events();
    let events_jsonl: String = events
        .iter()
        .map(|e| e.to_json_line())
        .collect::<Vec<_>>()
        .join("\n");
    (bits, rounds_json, spent, events_jsonl)
}

#[test]
fn full_instrumented_run_is_bit_identical_across_thread_counts() {
    let (bits_1, rounds_1, spent_1, events_1) = run_instrumented(Parallelism::Threads(1));
    let (bits_2, rounds_2, spent_2, events_2) = run_instrumented(Parallelism::Threads(2));
    let (bits_8, rounds_8, spent_8, events_8) = run_instrumented(Parallelism::Threads(8));

    // The run did real work: faults fired, retries happened, the
    // explain trace produced per-candidate events.
    assert!(spent_1 > 0, "the loop must spend budget");
    assert!(
        events_1.contains("\"fault_injected\"") || events_1.contains("FaultInjected"),
        "the fault layer must be exercised"
    );
    assert!(
        events_1.contains("candidate_scored") || events_1.contains("CandidateScored"),
        "explain mode must record candidate gains"
    );

    assert_eq!(bits_1, bits_2, "posteriors: 1 vs 2 threads");
    assert_eq!(bits_1, bits_8, "posteriors: 1 vs 8 threads");
    assert_eq!(spent_1, spent_2, "budget: 1 vs 2 threads");
    assert_eq!(spent_1, spent_8, "budget: 1 vs 8 threads");
    assert_eq!(rounds_1, rounds_2, "round records: 1 vs 2 threads");
    assert_eq!(rounds_1, rounds_8, "round records: 1 vs 8 threads");
    assert_eq!(events_1, events_2, "event stream: 1 vs 2 threads");
    assert_eq!(events_1, events_8, "event stream: 1 vs 8 threads");
}

#[test]
fn serial_and_auto_agree_on_a_plain_run() {
    // The simple `run_hc` front door honours `config.parallelism` too;
    // Auto (whatever the machine resolves it to) must be bit-identical
    // to Serial.
    let run = |parallelism: Parallelism| {
        let truths = test_truths();
        let mut oracle = SamplingOracle::new(&truths, StdRng::seed_from_u64(21));
        let mut rng = StdRng::seed_from_u64(4);
        let mut config = HcConfig::new(2, 16);
        config.parallelism = parallelism;
        run_hc(
            test_beliefs(),
            &ExpertPanel::from_accuracies(&[0.93, 0.88]).expect("valid panel"),
            &GreedySelector::new(),
            &mut oracle,
            &config,
            &mut rng,
        )
        .expect("plain loop runs")
    };
    let serial = run(Parallelism::Serial);
    let auto = run(Parallelism::Auto);
    assert_eq!(serial.budget_spent, auto.budget_spent);
    assert_eq!(serial.rounds.len(), auto.rounds.len());
    for (a, b) in serial.rounds.iter().zip(&auto.rounds) {
        assert_eq!(a.queries, b.queries);
        assert_eq!(a.quality.to_bits(), b.quality.to_bits());
    }
    for (ta, tb) in serial.beliefs.tasks().iter().zip(auto.beliefs.tasks()) {
        for (pa, pb) in ta.probs().iter().zip(tb.probs()) {
            assert_eq!(pa.to_bits(), pb.to_bits());
        }
    }
}

#[test]
fn lazy_selector_is_bit_identical_across_thread_counts() {
    // The CELF schedule has the subtlest parallel path (batched heap
    // rescoring); pin its selections and gains across thread counts.
    use hc_core::selection::{global_facts, ExplainTrace, TaskSelector};
    let beliefs = test_beliefs();
    let panel = ExpertPanel::from_accuracies(&[0.95, 0.9]).expect("valid panel");
    let candidates = global_facts(&beliefs);
    let run = |parallelism: Parallelism| {
        let _guard = hc_core::parallel::scoped(parallelism);
        let mut rng = StdRng::seed_from_u64(11);
        let mut trace = ExplainTrace::new();
        let chosen = GreedySelector::lazy()
            .select_with_explain(&beliefs, &panel, 5, &candidates, &mut rng, &mut trace)
            .expect("lazy select");
        let gains: Vec<u64> = trace.selected.iter().map(|s| s.gain.to_bits()).collect();
        let scored: Vec<(usize, usize, u32, u64)> = trace
            .scored
            .iter()
            .map(|s| (s.step, s.fact.task, s.fact.fact.0, s.gain.to_bits()))
            .collect();
        (chosen, gains, scored)
    };
    let at_1 = run(Parallelism::Threads(1));
    let at_2 = run(Parallelism::Threads(2));
    let at_8 = run(Parallelism::Threads(8));
    assert_eq!(at_1, at_2, "lazy: 1 vs 2 threads");
    assert_eq!(at_1, at_8, "lazy: 1 vs 8 threads");
}
