//! Differential conformance suite for the selection engine.
//!
//! The fast selection path (chain-rule entropies, task-dirty caching,
//! CELF lazy evaluation, and the parallel scoring engine) is locked
//! against the independently-coded brute-force reference
//! `conditional_entropy_naive` (Equation (34)) on random small
//! instances: the greedy selector's own chosen path must consist of
//! naive-argmax steps with naive-agreeing gains, the cached and lazy
//! schedules must reach the same objective, and at `k = 1` greedy must
//! match the exhaustive `ExactSelector`.
//!
//! Gains are validated *along greedy's own path* (winner gain matches
//! naive, and no remaining candidate naively beats the winner by more
//! than the tolerance) rather than by re-running an independent argmax,
//! so near-ties cannot make the test flaky.

use hc_core::belief::{Belief, MultiBelief};
use hc_core::entropy::conditional_entropy_naive;
use hc_core::fact::FactId;
use hc_core::selection::{
    global_facts, selection_objective, ExactSelector, ExplainTrace, GlobalFact, GreedySelector,
    TaskSelector,
};
use hc_core::worker::ExpertPanel;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Winner gains must match the naive reference this tightly; the fast
/// path and Equation (34) agree to ~1e-12, so 1e-7 is generous.
const GAIN_TOL: f64 = 1e-7;

fn rng() -> StdRng {
    StdRng::seed_from_u64(0xC0F0)
}

/// A normalised belief over `n` facts with strictly positive cells.
fn belief_strategy(n: usize) -> impl Strategy<Value = Belief> {
    prop::collection::vec(0.01f64..1.0, 1 << n).prop_map(|mut probs| {
        let sum: f64 = probs.iter().sum();
        for p in &mut probs {
            *p /= sum;
        }
        Belief::from_probs(probs).expect("normalised")
    })
}

/// 1–2 tasks with 1–2 facts each (≤ 4 facts total: naive enumeration
/// over `2^{k·m} · 2^n` stays fast).
fn beliefs_strategy() -> impl Strategy<Value = MultiBelief> {
    prop::collection::vec(1usize..=2, 1..=2).prop_flat_map(|sizes| {
        sizes
            .into_iter()
            .map(belief_strategy)
            .collect::<Vec<_>>()
            .prop_map(MultiBelief::new)
    })
}

fn panel_strategy() -> impl Strategy<Value = ExpertPanel> {
    prop::collection::vec(0.55f64..=0.95, 1..=2)
        .prop_map(|rates| ExpertPanel::from_accuracies(&rates).expect("valid rates"))
}

/// Brute-force quality gain of appending `candidate` to task
/// `candidate.task`'s current selection, via Equation (34) only.
fn naive_gain(
    beliefs: &MultiBelief,
    selected: &[Vec<FactId>],
    candidate: GlobalFact,
    panel: &ExpertPanel,
) -> f64 {
    let belief = &beliefs.tasks()[candidate.task];
    let current = &selected[candidate.task];
    let before = conditional_entropy_naive(belief, current, panel).expect("naive before");
    let mut extended = current.clone();
    extended.push(candidate.fact);
    let after = conditional_entropy_naive(belief, &extended, panel).expect("naive after");
    before - after
}

/// Total naive objective `Σ_t H(O_t | AS^{T_t})` for a global selection.
fn naive_objective(beliefs: &MultiBelief, selection: &[GlobalFact], panel: &ExpertPanel) -> f64 {
    let mut per_task: Vec<Vec<FactId>> = vec![Vec::new(); beliefs.len()];
    for gf in selection {
        per_task[gf.task].push(gf.fact);
    }
    beliefs
        .tasks()
        .iter()
        .zip(&per_task)
        .map(|(b, sel)| conditional_entropy_naive(b, sel, panel).expect("naive objective"))
        .sum()
}

/// Replays a greedy run against the naive reference: every selected
/// step's gain must match Equation (34), and no candidate left on the
/// table may naively beat the winner.
fn assert_greedy_path_is_naive_argmax(
    beliefs: &MultiBelief,
    panel: &ExpertPanel,
    k: usize,
    selector: &GreedySelector,
) -> Result<(), TestCaseError> {
    let candidates = global_facts(beliefs);
    let mut trace = ExplainTrace::new();
    let chosen = selector
        .select_with_explain(beliefs, panel, k, &candidates, &mut rng(), &mut trace)
        .expect("greedy select");
    prop_assert_eq!(trace.selected.len(), chosen.len());

    let mut selected_per_task: Vec<Vec<FactId>> = vec![Vec::new(); beliefs.len()];
    let mut remaining: Vec<GlobalFact> = candidates.clone();
    for (step, sq) in trace.selected.iter().enumerate() {
        prop_assert_eq!(sq.fact, chosen[step], "trace matches selection");
        let winner_naive = naive_gain(beliefs, &selected_per_task, sq.fact, panel);
        prop_assert!(
            (sq.gain - winner_naive).abs() < GAIN_TOL,
            "step {step}: greedy gain {} vs naive {winner_naive}",
            sq.gain
        );
        for &gf in &remaining {
            let g = naive_gain(beliefs, &selected_per_task, gf, panel);
            prop_assert!(
                g <= winner_naive + GAIN_TOL,
                "step {step}: {gf:?} naively gains {g} > winner {winner_naive}"
            );
        }
        remaining.retain(|&gf| gf != sq.fact);
        selected_per_task[sq.fact.task].push(sq.fact.fact);
    }
    // Early stop means nothing left was (meaningfully) worth picking.
    if chosen.len() < k {
        for &gf in &remaining {
            let g = naive_gain(beliefs, &selected_per_task, gf, panel);
            prop_assert!(
                g <= GAIN_TOL,
                "greedy stopped early but {gf:?} still naively gains {g}"
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn cached_greedy_follows_the_naive_argmax_path(
        beliefs in beliefs_strategy(),
        panel in panel_strategy(),
        k in 1usize..=3,
    ) {
        assert_greedy_path_is_naive_argmax(&beliefs, &panel, k, &GreedySelector::new())?;
    }

    #[test]
    fn lazy_greedy_follows_the_naive_argmax_path(
        beliefs in beliefs_strategy(),
        panel in panel_strategy(),
        k in 1usize..=3,
    ) {
        assert_greedy_path_is_naive_argmax(&beliefs, &panel, k, &GreedySelector::lazy())?;
    }

    #[test]
    fn cached_and_lazy_reach_the_same_objective(
        beliefs in beliefs_strategy(),
        panel in panel_strategy(),
        k in 1usize..=3,
    ) {
        let candidates = global_facts(&beliefs);
        let cached = GreedySelector::new()
            .select(&beliefs, &panel, k, &candidates, &mut rng())
            .expect("cached select");
        let lazy = GreedySelector::lazy()
            .select(&beliefs, &panel, k, &candidates, &mut rng())
            .expect("lazy select");
        prop_assert_eq!(cached.len(), lazy.len());
        let obj_cached = selection_objective(&beliefs, &cached, &panel).expect("objective");
        let obj_lazy = selection_objective(&beliefs, &lazy, &panel).expect("objective");
        prop_assert!(
            (obj_cached - obj_lazy).abs() < 1e-9,
            "cached {obj_cached} vs lazy {obj_lazy}"
        );
        // And both agree with the naive evaluation of their own sets.
        let naive_cached = naive_objective(&beliefs, &cached, &panel);
        prop_assert!((obj_cached - naive_cached).abs() < GAIN_TOL);
    }

    #[test]
    fn greedy_matches_exact_selector_at_k1(
        beliefs in beliefs_strategy(),
        panel in panel_strategy(),
    ) {
        // At k = 1 greedy *is* exhaustive search, so the objectives must
        // coincide (the selected fact may differ only on exact ties).
        let candidates = global_facts(&beliefs);
        let greedy = GreedySelector::new()
            .select(&beliefs, &panel, 1, &candidates, &mut rng())
            .expect("greedy select");
        let exact = ExactSelector::new()
            .select(&beliefs, &panel, 1, &candidates, &mut rng())
            .expect("exact select");
        let obj_greedy = naive_objective(&beliefs, &greedy, &panel);
        let obj_exact = naive_objective(&beliefs, &exact, &panel);
        prop_assert!(
            (obj_greedy - obj_exact).abs() < GAIN_TOL,
            "greedy {obj_greedy} vs exact {obj_exact}"
        );
    }
}
