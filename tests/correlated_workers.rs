//! The worker-correlation regime end to end: corpora whose preliminary
//! workers share a systematic error mode (the conditional-independence
//! violation EBCC targets), run through aggregation and the HC loop.

use hc::prelude::*;
use hc_core::hc::{run_hc, HcConfig};
use hc_data::SystematicErrors;
use hc_data::AccuracyModel;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A corpus where three of the six preliminary workers share a
/// systematic mode on 25% of items.
fn correlated_corpus(seed: u64) -> CrowdDataset {
    let mut config = SynthConfig::paper_default();
    config.n_tasks = 80;
    // The systematic mode must hit preliminary workers (indices after
    // the 2 experts), so reorder the profile: preliminary first.
    config.crowd = CrowdProfile {
        groups: vec![
            (6, AccuracyModel::Uniform { lo: 0.6, hi: 0.85 }),
            (2, AccuracyModel::Uniform { lo: 0.91, hi: 0.97 }),
        ],
    };
    config.systematic_errors = Some(SystematicErrors {
        workers: 3,
        rate: 0.25,
    });
    generate(&config, &mut StdRng::seed_from_u64(seed)).unwrap()
}

#[test]
fn generator_produces_valid_correlated_corpus() {
    let ds = correlated_corpus(1);
    assert_eq!(ds.n_workers(), 8);
    assert_eq!(ds.n_items(), 400);
    // The systematic workers' *empirical* accuracy is dragged below
    // their nominal parameter.
    let empirical = ds.matrix.worker_accuracy(&ds.ground_truth);
    #[allow(clippy::needless_range_loop)] // w indexes two parallel vecs
    for w in 0..3 {
        let emp = empirical[w].unwrap();
        let nominal = ds.worker_accuracies[w];
        assert!(
            emp < nominal,
            "worker {w}: empirical {emp} should trail nominal {nominal}"
        );
    }
}

#[test]
fn subtype_models_match_or_beat_ds_under_correlation() {
    // Averaged over corpora, EBCC (subtype mixtures) should do at least
    // as well as DS (conditional independence) on correlated answers.
    let mut ebcc_total = 0.0;
    let mut ds_total = 0.0;
    for seed in 0..5 {
        let corpus = correlated_corpus(seed);
        let ebcc = Ebcc::new().aggregate(&corpus.matrix).unwrap();
        let ds = DawidSkene::new().aggregate(&corpus.matrix).unwrap();
        ebcc_total += corpus.accuracy_of(&ebcc.map_labels());
        ds_total += corpus.accuracy_of(&ds.map_labels());
    }
    assert!(
        ebcc_total >= ds_total - 0.02,
        "EBCC {ebcc_total} vs DS {ds_total} (5-corpus totals)"
    );
}

#[test]
fn hc_loop_repairs_systematic_damage() {
    let corpus = correlated_corpus(7);
    let config = PipelineConfig::paper_default();
    // EBCC init over CP answers (which include the correlated workers).
    let experts: Vec<u32> = corpus
        .worker_accuracies
        .iter()
        .enumerate()
        .filter(|(_, &a)| a >= config.theta)
        .map(|(w, _)| w as u32)
        .collect();
    let cp = corpus.matrix.filter_workers(|w| !experts.contains(&w));
    let marginals = Ebcc::new().aggregate(&cp).unwrap().binary_marginals();
    let prepared = prepare(&corpus, &config, &InitMethod::Marginals(marginals)).unwrap();
    let acc0 = prepared.accuracy(&prepared.beliefs);

    let mut oracle = ReplayOracle::new(&corpus, prepared.grouping).unwrap();
    let outcome = run_hc(
        prepared.beliefs.clone(),
        &prepared.panel,
        &GreedySelector::new(),
        &mut oracle,
        &HcConfig::new(1, 400),
        &mut StdRng::seed_from_u64(8),
    )
    .unwrap();
    let acc1 = dataset_accuracy(&outcome.beliefs, &prepared.truths);
    assert!(
        acc1 > acc0 + 0.02,
        "expert checking should repair systematic CP damage: {acc0} -> {acc1}"
    );
}
