//! Failure-injection tests: the pipeline under adversarial,
//! inconsistent, unreliable, or degenerate conditions must degrade
//! gracefully — never panic, never denormalise a belief, never
//! overspend the budget.

use hc::prelude::*;
use hc_core::hc::run_hc;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn corpus(seed: u64) -> CrowdDataset {
    let mut config = SynthConfig::paper_default();
    config.n_tasks = 12;
    generate(&config, &mut StdRng::seed_from_u64(seed)).unwrap()
}

fn small_corpus(seed: u64) -> CrowdDataset {
    let mut config = SynthConfig::paper_default();
    config.n_tasks = 6;
    generate(&config, &mut StdRng::seed_from_u64(seed)).unwrap()
}

fn prepared(dataset: &CrowdDataset) -> Prepared {
    prepare(
        dataset,
        &PipelineConfig::paper_default(),
        &InitMethod::CpVotes,
    )
    .unwrap()
}

/// An oracle that always lies — the worst case the §II-A error model
/// excludes, injected anyway.
struct AdversarialOracle {
    truths: Vec<Vec<bool>>,
}

impl AnswerOracle for AdversarialOracle {
    fn answer(&mut self, _worker: &Worker, fact: GlobalFact) -> AnswerOutcome {
        Answer::from_bool(!self.truths[fact.task][fact.fact.index()]).into()
    }
}

/// An oracle that answers at random regardless of worker or fact.
struct NoiseOracle {
    rng: StdRng,
}

impl AnswerOracle for NoiseOracle {
    fn answer(&mut self, _worker: &Worker, _fact: GlobalFact) -> AnswerOutcome {
        Answer::from_bool(self.rng.gen_bool(0.5)).into()
    }
}

/// An oracle whose answers flip on every repeated ask — maximally
/// inconsistent evidence.
struct FlipFlopOracle {
    state: std::collections::HashMap<(u32, usize, u32), bool>,
}

impl AnswerOracle for FlipFlopOracle {
    fn answer(&mut self, worker: &Worker, fact: GlobalFact) -> AnswerOutcome {
        let key = (worker.id.0, fact.task, fact.fact.0);
        let v = self.state.entry(key).or_insert(false);
        *v = !*v;
        Answer::from_bool(*v).into()
    }
}

/// An oracle whose crowd never responds at all — every attempt is
/// dropped (the 100%-dropout worst case).
struct SilentOracle;

impl AnswerOracle for SilentOracle {
    fn answer(&mut self, _worker: &Worker, _fact: GlobalFact) -> AnswerOutcome {
        AnswerOutcome::Dropped
    }
}

/// An oracle that answers truthfully but fails a seeded fraction of
/// attempts, alternating between timeouts and drops.
struct FlakyOracle {
    truths: Vec<Vec<bool>>,
    rng: StdRng,
    fail_prob: f64,
}

impl AnswerOracle for FlakyOracle {
    fn answer(&mut self, _worker: &Worker, fact: GlobalFact) -> AnswerOutcome {
        if self.rng.gen_bool(self.fail_prob) {
            if self.rng.gen_bool(0.5) {
                AnswerOutcome::TimedOut
            } else {
                AnswerOutcome::Dropped
            }
        } else {
            Answer::from_bool(self.truths[fact.task][fact.fact.index()]).into()
        }
    }
}

fn assert_well_formed(outcome: &hc_core::hc::HcOutcome, budget: u64) {
    assert_normalised(outcome, budget);
    // With an always-delivering oracle the budget trace is strictly
    // increasing; unreliable-crowd runs can have flat (dry) rounds and
    // must use `assert_normalised` directly.
    let spends: Vec<u64> = outcome.rounds.iter().map(|r| r.budget_spent).collect();
    assert!(spends.windows(2).all(|w| w[0] < w[1]));
}

fn assert_normalised(outcome: &hc_core::hc::HcOutcome, budget: u64) {
    assert!(outcome.budget_spent <= budget);
    for belief in outcome.beliefs.tasks() {
        let sum: f64 = belief.probs().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "belief denormalised: {sum}");
        assert!(belief.probs().iter().all(|&p| (0.0..=1.0 + 1e-9).contains(&p)));
        assert!(belief.entropy().is_finite());
    }
    // The trace never decreases even when dry rounds deliver nothing.
    let spends: Vec<u64> = outcome.rounds.iter().map(|r| r.budget_spent).collect();
    assert!(spends.windows(2).all(|w| w[0] <= w[1]));
}

#[test]
fn adversarial_experts_corrupt_labels_but_not_state() {
    let dataset = corpus(1);
    let p = prepared(&dataset);
    let mut oracle = AdversarialOracle {
        truths: p.truths.clone(),
    };
    let outcome = run_hc(
        p.beliefs.clone(),
        &p.panel,
        &GreedySelector::new(),
        &mut oracle,
        &HcConfig::new(1, 100),
        &mut StdRng::seed_from_u64(2),
    )
    .unwrap();
    assert_well_formed(&outcome, 100);
    let acc = dataset_accuracy(&outcome.beliefs, &p.truths);
    let acc0 = p.accuracy(&p.beliefs);
    assert!(acc < acc0, "liars must hurt accuracy: {acc0} -> {acc}");
}

#[test]
fn pure_noise_oracle_is_survivable() {
    let dataset = corpus(3);
    let p = prepared(&dataset);
    let mut oracle = NoiseOracle {
        rng: StdRng::seed_from_u64(4),
    };
    let outcome = run_hc(
        p.beliefs.clone(),
        &p.panel,
        &GreedySelector::new(),
        &mut oracle,
        &HcConfig::new(3, 120),
        &mut StdRng::seed_from_u64(5),
    )
    .unwrap();
    assert_well_formed(&outcome, 120);
}

#[test]
fn flip_flop_answers_never_destabilise_the_loop() {
    let dataset = corpus(6);
    let p = prepared(&dataset);
    let mut oracle = FlipFlopOracle {
        state: Default::default(),
    };
    let mut config = HcConfig::new(1, 200);
    // Force re-selection so the flip-flopping actually repeats facts.
    config.repeat_policy = RepeatPolicy::Unrestricted;
    let outcome = run_hc(
        p.beliefs.clone(),
        &p.panel,
        &GreedySelector::new(),
        &mut oracle,
        &config,
        &mut StdRng::seed_from_u64(7),
    )
    .unwrap();
    assert_well_formed(&outcome, 200);
}

#[test]
fn single_fact_tasks_work_end_to_end() {
    // Degenerate grouping: every task has exactly one fact.
    let mut config = SynthConfig::paper_default();
    config.n_tasks = 30;
    config.facts_per_task = 1;
    let dataset = generate(&config, &mut StdRng::seed_from_u64(8)).unwrap();
    let p = prepare(
        &dataset,
        &PipelineConfig {
            theta: 0.9,
            group_size: 1,
        },
        &InitMethod::CpVotes,
    )
    .unwrap();
    let mut oracle = ReplayOracle::new(&dataset, p.grouping).unwrap();
    let outcome = run_hc(
        p.beliefs.clone(),
        &p.panel,
        &GreedySelector::new(),
        &mut oracle,
        &HcConfig::new(2, 40),
        &mut StdRng::seed_from_u64(9),
    )
    .unwrap();
    assert_well_formed(&outcome, 40);
    assert!(outcome.quality() >= p.beliefs.quality());
}

#[test]
fn ragged_final_task_is_handled() {
    // 7 items grouped by 5: the last task has 2 facts.
    let mut config = SynthConfig::paper_default();
    config.n_tasks = 7;
    config.facts_per_task = 1;
    let dataset = generate(&config, &mut StdRng::seed_from_u64(10)).unwrap();
    let p = prepare(
        &dataset,
        &PipelineConfig {
            theta: 0.9,
            group_size: 5,
        },
        &InitMethod::CpVotes,
    )
    .unwrap();
    assert_eq!(p.beliefs.len(), 2);
    assert_eq!(p.beliefs.tasks()[1].num_facts(), 2);
    let mut oracle = ReplayOracle::new(&dataset, p.grouping).unwrap();
    let outcome = run_hc(
        p.beliefs.clone(),
        &p.panel,
        &GreedySelector::new(),
        &mut oracle,
        &HcConfig::new(3, 30),
        &mut StdRng::seed_from_u64(11),
    )
    .unwrap();
    assert_well_formed(&outcome, 30);
}

#[test]
fn budget_exactly_one_round_is_spent_fully() {
    let dataset = corpus(12);
    let p = prepared(&dataset);
    let panel_size = p.panel.len() as u64;
    let mut oracle = ReplayOracle::new(&dataset, p.grouping).unwrap();
    let outcome = run_hc(
        p.beliefs.clone(),
        &p.panel,
        &GreedySelector::new(),
        &mut oracle,
        &HcConfig::new(1, panel_size),
        &mut StdRng::seed_from_u64(13),
    )
    .unwrap();
    assert_eq!(outcome.rounds.len(), 1);
    assert_eq!(outcome.budget_spent, panel_size);
}

#[test]
fn max_entropy_selector_under_adversarial_answers() {
    let dataset = corpus(14);
    let p = prepared(&dataset);
    let mut oracle = AdversarialOracle {
        truths: p.truths.clone(),
    };
    let outcome = run_hc(
        p.beliefs.clone(),
        &p.panel,
        &MaxEntropySelector::new(),
        &mut oracle,
        &HcConfig::new(2, 60),
        &mut StdRng::seed_from_u64(15),
    )
    .unwrap();
    assert_well_formed(&outcome, 60);
}

#[test]
fn entropy_adaptive_schedule_survives_noise() {
    let dataset = corpus(16);
    let p = prepared(&dataset);
    let mut oracle = NoiseOracle {
        rng: StdRng::seed_from_u64(17),
    };
    let mut config = HcConfig::new(4, 100);
    config.k_schedule = KSchedule::EntropyAdaptive {
        nats_per_query: 2.0,
        max: 6,
    };
    let outcome = run_hc(
        p.beliefs.clone(),
        &p.panel,
        &GreedySelector::new(),
        &mut oracle,
        &config,
        &mut StdRng::seed_from_u64(18),
    )
    .unwrap();
    assert_well_formed(&outcome, 100);
}

#[test]
fn silent_crowd_spends_nothing_and_returns_the_initial_belief() {
    let dataset = corpus(19);
    let p = prepared(&dataset);
    let outcome = run_hc(
        p.beliefs.clone(),
        &p.panel,
        &GreedySelector::new(),
        &mut SilentOracle,
        &HcConfig::new(2, 100),
        &mut StdRng::seed_from_u64(20),
    )
    .unwrap();
    assert_eq!(outcome.budget_spent, 0);
    assert_eq!(outcome.beliefs, p.beliefs, "absent answers must not move beliefs");
    assert!(
        outcome.rounds.len() <= HcConfig::new(2, 100).max_dry_rounds,
        "the dry-round guard bounds an unresponsive crowd"
    );
    assert_normalised(&outcome, 100);
}

#[test]
fn flaky_crowd_partial_rounds_stay_normalised_and_charge_delivery_only() {
    let dataset = corpus(21);
    let p = prepared(&dataset);
    let mut oracle = FlakyOracle {
        truths: p.truths.clone(),
        rng: StdRng::seed_from_u64(22),
        fail_prob: 0.5,
    };
    let outcome = run_hc(
        p.beliefs.clone(),
        &p.panel,
        &GreedySelector::new(),
        &mut oracle,
        &HcConfig::new(2, 80),
        &mut StdRng::seed_from_u64(23),
    )
    .unwrap();
    assert_normalised(&outcome, 80);
    // Unit cost: cumulative spend equals cumulative delivered answers.
    let received: usize = outcome.rounds.iter().map(|r| r.answers_received).sum();
    let requested: usize = outcome.rounds.iter().map(|r| r.answers_requested).sum();
    assert_eq!(outcome.budget_spent, received as u64);
    assert!(received < requested, "a 50% flaky crowd must lose answers");
    assert!(received > 0, "a 50% flaky crowd must deliver some answers");
}

#[test]
fn fault_layer_at_dropout_zero_is_bit_for_bit_identical() {
    let dataset = corpus(24);
    let p = prepared(&dataset);
    let run = |wrapped: bool| {
        let replay = ReplayOracle::new(&dataset, p.grouping).unwrap();
        let mut rng = StdRng::seed_from_u64(25);
        let config = HcConfig::new(1, 60);
        if wrapped {
            let mut oracle = FaultyOracle::new(replay, FaultPlan::none(77));
            run_hc(p.beliefs.clone(), &p.panel, &GreedySelector::new(), &mut oracle, &config, &mut rng)
        } else {
            let mut oracle = replay;
            run_hc(p.beliefs.clone(), &p.panel, &GreedySelector::new(), &mut oracle, &config, &mut rng)
        }
        .unwrap()
    };
    let plain = run(false);
    let faulty = run(true);
    assert_eq!(plain.budget_spent, faulty.budget_spent);
    assert_eq!(plain.rounds.len(), faulty.rounds.len());
    for (a, b) in plain.beliefs.tasks().iter().zip(faulty.beliefs.tasks()) {
        assert_eq!(a.probs(), b.probs(), "dropout 0 must not perturb the pipeline");
    }
}

#[test]
fn seeded_fault_plan_runs_are_reproducible() {
    let dataset = corpus(26);
    let p = prepared(&dataset);
    let run = || {
        let replay = ReplayOracle::new(&dataset, p.grouping).unwrap();
        let plan = FaultPlan::uniform(0.4, 123).with_timeouts(0.1).with_churn(0.02);
        let mut oracle = FaultyOracle::new(replay, plan);
        run_hc(
            p.beliefs.clone(),
            &p.panel,
            &GreedySelector::new(),
            &mut oracle,
            &HcConfig::new(2, 80),
            &mut StdRng::seed_from_u64(27),
        )
        .unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.budget_spent, b.budget_spent);
    assert_eq!(a.rounds.len(), b.rounds.len());
    for (ra, rb) in a.rounds.iter().zip(&b.rounds) {
        assert_eq!(ra.answers_received, rb.answers_received);
        assert_eq!(ra.queries, rb.queries);
    }
    for (ta, tb) in a.beliefs.tasks().iter().zip(b.beliefs.tasks()) {
        assert_eq!(ta.probs(), tb.probs(), "seeded fault runs must be bit-for-bit equal");
    }
}

#[test]
fn full_dropout_through_the_fault_layer_terminates_clean() {
    let dataset = corpus(28);
    let p = prepared(&dataset);
    let replay = ReplayOracle::new(&dataset, p.grouping).unwrap();
    let mut oracle = FaultyOracle::new(replay, FaultPlan::uniform(1.0, 9));
    let outcome = run_hc(
        p.beliefs.clone(),
        &p.panel,
        &GreedySelector::new(),
        &mut oracle,
        &HcConfig::new(1, 200),
        &mut StdRng::seed_from_u64(29),
    )
    .unwrap();
    assert_eq!(outcome.budget_spent, 0);
    assert_eq!(outcome.beliefs, p.beliefs);
    assert!(outcome.rounds.iter().all(|r| r.answers_received == 0));
    assert!(oracle.stats().attempts > 0, "dispatches were attempted");
    assert_eq!(oracle.stats().answered, 0);
}

#[test]
fn retry_platform_under_faults_respects_the_budget() {
    let dataset = corpus(30);
    let p = prepared(&dataset);
    let replay = ReplayOracle::new(&dataset, p.grouping).unwrap();
    let faulty = FaultyOracle::new(replay, FaultPlan::uniform(0.5, 31).with_timeouts(0.1));
    let mut platform = SimulatedPlatform::new(faulty, 32)
        .with_retry_policy(RetryPolicy::standard())
        .with_reassignment_panel(&p.panel);
    let outcome = run_hc(
        p.beliefs.clone(),
        &p.panel,
        &GreedySelector::new(),
        &mut platform,
        &HcConfig::new(1, 60),
        &mut StdRng::seed_from_u64(33),
    )
    .unwrap();
    assert_normalised(&outcome, 60);
    let stats = platform.stats();
    assert!(stats.attempts >= stats.answers);
    assert!(stats.retries > 0, "50% dropout must trigger retries");
    assert_eq!(
        stats.answers,
        outcome.rounds.iter().map(|r| r.answers_received as u64).sum::<u64>()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn any_fault_plan_keeps_beliefs_normalised_and_budget_bounded(
        dropout in 0.0f64..=1.0,
        timeout in 0.0f64..=0.5,
        churn in 0.0f64..=0.2,
        plan_seed in 0u64..1_000,
    ) {
        let dataset = small_corpus(40);
        let p = prepared(&dataset);
        let replay = ReplayOracle::new(&dataset, p.grouping).unwrap();
        let plan = FaultPlan::uniform(dropout, plan_seed)
            .with_timeouts(timeout)
            .with_churn(churn);
        let mut oracle = FaultyOracle::new(replay, plan);
        let budget = 40u64;
        let outcome = run_hc(
            p.beliefs.clone(),
            &p.panel,
            &GreedySelector::new(),
            &mut oracle,
            &HcConfig::new(2, budget),
            &mut StdRng::seed_from_u64(41),
        )
        .unwrap();
        prop_assert!(outcome.budget_spent <= budget);
        for belief in outcome.beliefs.tasks() {
            let sum: f64 = belief.probs().iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9, "belief denormalised: {}", sum);
            prop_assert!(belief.entropy().is_finite());
        }
        // Unit cost: spend equals total delivered answers.
        let received: usize = outcome.rounds.iter().map(|r| r.answers_received).sum();
        prop_assert_eq!(outcome.budget_spent, received as u64);
    }

    #[test]
    fn any_retry_policy_keeps_the_loop_within_budget(
        dropout in 0.0f64..=1.0,
        max_attempts in 1u32..=4,
        charge_failed in proptest::bool::ANY,
        reassign in proptest::bool::ANY,
        plan_seed in 0u64..1_000,
    ) {
        let dataset = small_corpus(42);
        let p = prepared(&dataset);
        let replay = ReplayOracle::new(&dataset, p.grouping).unwrap();
        let faulty = FaultyOracle::new(replay, FaultPlan::uniform(dropout, plan_seed));
        let policy = RetryPolicy {
            max_attempts,
            charge_failed_attempts: charge_failed,
            reassign,
            ..RetryPolicy::standard()
        };
        let mut platform = SimulatedPlatform::new(faulty, plan_seed ^ 1)
            .with_retry_policy(policy)
            .with_reassignment_panel(&p.panel);
        let budget = 30u64;
        let outcome = run_hc(
            p.beliefs.clone(),
            &p.panel,
            &GreedySelector::new(),
            &mut platform,
            &HcConfig::new(1, budget),
            &mut StdRng::seed_from_u64(43),
        )
        .unwrap();
        prop_assert!(outcome.budget_spent <= budget);
        for belief in outcome.beliefs.tasks() {
            let sum: f64 = belief.probs().iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9, "belief denormalised: {}", sum);
        }
        let stats = platform.stats();
        prop_assert!(stats.attempts >= stats.answers);
    }
}
