//! Failure-injection tests: the pipeline under adversarial,
//! inconsistent, or degenerate conditions must degrade gracefully —
//! never panic, never denormalise a belief, never overspend the budget.

use hc::prelude::*;
use hc_core::hc::run_hc;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn corpus(seed: u64) -> CrowdDataset {
    let mut config = SynthConfig::paper_default();
    config.n_tasks = 12;
    generate(&config, &mut StdRng::seed_from_u64(seed)).unwrap()
}

fn prepared(dataset: &CrowdDataset) -> Prepared {
    prepare(
        dataset,
        &PipelineConfig::paper_default(),
        &InitMethod::CpVotes,
    )
    .unwrap()
}

/// An oracle that always lies — the worst case the §II-A error model
/// excludes, injected anyway.
struct AdversarialOracle {
    truths: Vec<Vec<bool>>,
}

impl AnswerOracle for AdversarialOracle {
    fn answer(&mut self, _worker: &Worker, fact: GlobalFact) -> Answer {
        Answer::from_bool(!self.truths[fact.task][fact.fact.index()])
    }
}

/// An oracle that answers at random regardless of worker or fact.
struct NoiseOracle {
    rng: StdRng,
}

impl AnswerOracle for NoiseOracle {
    fn answer(&mut self, _worker: &Worker, _fact: GlobalFact) -> Answer {
        Answer::from_bool(self.rng.gen_bool(0.5))
    }
}

/// An oracle whose answers flip on every repeated ask — maximally
/// inconsistent evidence.
struct FlipFlopOracle {
    state: std::collections::HashMap<(u32, usize, u32), bool>,
}

impl AnswerOracle for FlipFlopOracle {
    fn answer(&mut self, worker: &Worker, fact: GlobalFact) -> Answer {
        let key = (worker.id.0, fact.task, fact.fact.0);
        let v = self.state.entry(key).or_insert(false);
        *v = !*v;
        Answer::from_bool(*v)
    }
}

fn assert_well_formed(outcome: &hc_core::hc::HcOutcome, budget: u64) {
    assert!(outcome.budget_spent <= budget);
    for belief in outcome.beliefs.tasks() {
        let sum: f64 = belief.probs().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "belief denormalised: {sum}");
        assert!(belief.probs().iter().all(|&p| (0.0..=1.0 + 1e-9).contains(&p)));
        assert!(belief.entropy().is_finite());
    }
    // Budget trace is strictly increasing.
    let spends: Vec<u64> = outcome.rounds.iter().map(|r| r.budget_spent).collect();
    assert!(spends.windows(2).all(|w| w[0] < w[1]));
}

#[test]
fn adversarial_experts_corrupt_labels_but_not_state() {
    let dataset = corpus(1);
    let p = prepared(&dataset);
    let mut oracle = AdversarialOracle {
        truths: p.truths.clone(),
    };
    let outcome = run_hc(
        p.beliefs.clone(),
        &p.panel,
        &GreedySelector::new(),
        &mut oracle,
        &HcConfig::new(1, 100),
        &mut StdRng::seed_from_u64(2),
    )
    .unwrap();
    assert_well_formed(&outcome, 100);
    let acc = dataset_accuracy(&outcome.beliefs, &p.truths);
    let acc0 = p.accuracy(&p.beliefs);
    assert!(acc < acc0, "liars must hurt accuracy: {acc0} -> {acc}");
}

#[test]
fn pure_noise_oracle_is_survivable() {
    let dataset = corpus(3);
    let p = prepared(&dataset);
    let mut oracle = NoiseOracle {
        rng: StdRng::seed_from_u64(4),
    };
    let outcome = run_hc(
        p.beliefs.clone(),
        &p.panel,
        &GreedySelector::new(),
        &mut oracle,
        &HcConfig::new(3, 120),
        &mut StdRng::seed_from_u64(5),
    )
    .unwrap();
    assert_well_formed(&outcome, 120);
}

#[test]
fn flip_flop_answers_never_destabilise_the_loop() {
    let dataset = corpus(6);
    let p = prepared(&dataset);
    let mut oracle = FlipFlopOracle {
        state: Default::default(),
    };
    let mut config = HcConfig::new(1, 200);
    // Force re-selection so the flip-flopping actually repeats facts.
    config.repeat_policy = RepeatPolicy::Unrestricted;
    let outcome = run_hc(
        p.beliefs.clone(),
        &p.panel,
        &GreedySelector::new(),
        &mut oracle,
        &config,
        &mut StdRng::seed_from_u64(7),
    )
    .unwrap();
    assert_well_formed(&outcome, 200);
}

#[test]
fn single_fact_tasks_work_end_to_end() {
    // Degenerate grouping: every task has exactly one fact.
    let mut config = SynthConfig::paper_default();
    config.n_tasks = 30;
    config.facts_per_task = 1;
    let dataset = generate(&config, &mut StdRng::seed_from_u64(8)).unwrap();
    let p = prepare(
        &dataset,
        &PipelineConfig {
            theta: 0.9,
            group_size: 1,
        },
        &InitMethod::CpVotes,
    )
    .unwrap();
    let mut oracle = ReplayOracle::new(&dataset, p.grouping).unwrap();
    let outcome = run_hc(
        p.beliefs.clone(),
        &p.panel,
        &GreedySelector::new(),
        &mut oracle,
        &HcConfig::new(2, 40),
        &mut StdRng::seed_from_u64(9),
    )
    .unwrap();
    assert_well_formed(&outcome, 40);
    assert!(outcome.quality() >= p.beliefs.quality());
}

#[test]
fn ragged_final_task_is_handled() {
    // 7 items grouped by 5: the last task has 2 facts.
    let mut config = SynthConfig::paper_default();
    config.n_tasks = 7;
    config.facts_per_task = 1;
    let dataset = generate(&config, &mut StdRng::seed_from_u64(10)).unwrap();
    let p = prepare(
        &dataset,
        &PipelineConfig {
            theta: 0.9,
            group_size: 5,
        },
        &InitMethod::CpVotes,
    )
    .unwrap();
    assert_eq!(p.beliefs.len(), 2);
    assert_eq!(p.beliefs.tasks()[1].num_facts(), 2);
    let mut oracle = ReplayOracle::new(&dataset, p.grouping).unwrap();
    let outcome = run_hc(
        p.beliefs.clone(),
        &p.panel,
        &GreedySelector::new(),
        &mut oracle,
        &HcConfig::new(3, 30),
        &mut StdRng::seed_from_u64(11),
    )
    .unwrap();
    assert_well_formed(&outcome, 30);
}

#[test]
fn budget_exactly_one_round_is_spent_fully() {
    let dataset = corpus(12);
    let p = prepared(&dataset);
    let panel_size = p.panel.len() as u64;
    let mut oracle = ReplayOracle::new(&dataset, p.grouping).unwrap();
    let outcome = run_hc(
        p.beliefs.clone(),
        &p.panel,
        &GreedySelector::new(),
        &mut oracle,
        &HcConfig::new(1, panel_size),
        &mut StdRng::seed_from_u64(13),
    )
    .unwrap();
    assert_eq!(outcome.rounds.len(), 1);
    assert_eq!(outcome.budget_spent, panel_size);
}

#[test]
fn max_entropy_selector_under_adversarial_answers() {
    let dataset = corpus(14);
    let p = prepared(&dataset);
    let mut oracle = AdversarialOracle {
        truths: p.truths.clone(),
    };
    let outcome = run_hc(
        p.beliefs.clone(),
        &p.panel,
        &MaxEntropySelector::new(),
        &mut oracle,
        &HcConfig::new(2, 60),
        &mut StdRng::seed_from_u64(15),
    )
    .unwrap();
    assert_well_formed(&outcome, 60);
}

#[test]
fn entropy_adaptive_schedule_survives_noise() {
    let dataset = corpus(16);
    let p = prepared(&dataset);
    let mut oracle = NoiseOracle {
        rng: StdRng::seed_from_u64(17),
    };
    let mut config = HcConfig::new(4, 100);
    config.k_schedule = KSchedule::EntropyAdaptive {
        nats_per_query: 2.0,
        max: 6,
    };
    let outcome = run_hc(
        p.beliefs.clone(),
        &p.panel,
        &GreedySelector::new(),
        &mut oracle,
        &config,
        &mut StdRng::seed_from_u64(18),
    )
    .unwrap();
    assert_well_formed(&outcome, 100);
}
