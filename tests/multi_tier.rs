//! The §III-D multi-tier extension and its special-case equivalence:
//! with a single expert per tier, sequentially checking with each tier
//! is equivalent to one merged panel answering the same queries —
//! Bayes updates with independent evidence commute.

use hc_core::answer::{Answer, AnswerFamily, AnswerOutcome, AnswerSet, QuerySet};
use hc_core::belief::{Belief, MultiBelief};
use hc_core::hc::{apply_round, run_multi_tier, AnswerOracle};
use hc_core::selection::{GlobalFact, GreedySelector};
use hc_core::update::update_with_family;
use hc_core::worker::{ExpertPanel, Worker};
use hc_core::FactId;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Deterministic oracle: worker answers are a fixed function of
/// (worker id, fact) — the same answers whoever asks, as in the
/// offline-replay setting.
struct FixedOracle;

impl AnswerOracle for FixedOracle {
    fn answer(&mut self, worker: &Worker, fact: GlobalFact) -> AnswerOutcome {
        // An arbitrary but fixed pattern.
        Answer::from_bool((worker.id.0 + fact.fact.0 + fact.task as u32).is_multiple_of(2)).into()
    }
}

fn initial_beliefs() -> MultiBelief {
    MultiBelief::new(vec![
        Belief::from_marginals(&[0.6, 0.45, 0.7]).unwrap(),
        Belief::from_marginals(&[0.52, 0.58]).unwrap(),
    ])
}

#[test]
fn sequential_single_expert_tiers_equal_merged_panel_on_same_queries() {
    // Same query set, same recorded answers: updating with expert A then
    // expert B equals updating with the merged {A, B} panel.
    let expert_a = Worker::new(0, 0.92).unwrap();
    let expert_b = Worker::new(1, 0.96).unwrap();
    let queries = QuerySet::new(vec![FactId(0), FactId(2)], 3).unwrap();
    let answers_a = AnswerSet::new(&[Answer::Yes, Answer::No]);
    let answers_b = AnswerSet::new(&[Answer::Yes, Answer::Yes]);

    // Sequential tiers.
    let mut sequential = initial_beliefs().tasks()[0].clone();
    update_with_family(
        &mut sequential,
        &queries,
        &ExpertPanel::new(vec![expert_a]),
        &AnswerFamily::new(vec![answers_a]),
    )
    .unwrap();
    update_with_family(
        &mut sequential,
        &queries,
        &ExpertPanel::new(vec![expert_b]),
        &AnswerFamily::new(vec![answers_b]),
    )
    .unwrap();

    // Merged panel.
    let mut merged = initial_beliefs().tasks()[0].clone();
    update_with_family(
        &mut merged,
        &queries,
        &ExpertPanel::new(vec![expert_a, expert_b]),
        &AnswerFamily::new(vec![answers_a, answers_b]),
    )
    .unwrap();

    for (s, m) in sequential.probs().iter().zip(merged.probs()) {
        assert!((s - m).abs() < 1e-12);
    }
}

#[test]
fn tier_order_does_not_matter_for_fixed_answers() {
    // The paper (§III-D): for single-expert tiers the concatenation is
    // equivalent "no matter in what order the experts are arranged".
    let expert_a = Worker::new(0, 0.9).unwrap();
    let expert_b = Worker::new(1, 0.8).unwrap();
    let queries = QuerySet::new(vec![FactId(1)], 3).unwrap();
    let ans_a = AnswerSet::new(&[Answer::No]);
    let ans_b = AnswerSet::new(&[Answer::Yes]);

    let run = |first: (Worker, AnswerSet), second: (Worker, AnswerSet)| {
        let mut belief = initial_beliefs().tasks()[0].clone();
        for (w, a) in [first, second] {
            update_with_family(
                &mut belief,
                &queries,
                &ExpertPanel::new(vec![w]),
                &AnswerFamily::new(vec![a]),
            )
            .unwrap();
        }
        belief
    };
    let ab = run((expert_a, ans_a), (expert_b, ans_b));
    let ba = run((expert_b, ans_b), (expert_a, ans_a));
    for (x, y) in ab.probs().iter().zip(ba.probs()) {
        assert!((x - y).abs() < 1e-12);
    }
}

#[test]
fn run_multi_tier_spends_each_tier_budget() {
    let tiers = vec![
        (ExpertPanel::from_accuracies(&[0.85]).unwrap(), 6u64),
        (ExpertPanel::from_accuracies(&[0.95]).unwrap(), 4u64),
    ];
    let mut oracle = FixedOracle;
    let mut rng = StdRng::seed_from_u64(1);
    let outcome = run_multi_tier(
        initial_beliefs(),
        &tiers,
        &GreedySelector::new(),
        &mut oracle,
        1,
        &mut rng,
    )
    .unwrap();
    assert_eq!(outcome.budget_spent, 10);
    // Rounds carry cumulative budget across tiers.
    let spends: Vec<u64> = outcome.rounds.iter().map(|r| r.budget_spent).collect();
    assert!(spends.windows(2).all(|w| w[0] < w[1]), "{spends:?}");
    assert_eq!(*spends.last().unwrap(), 10);
}

#[test]
fn apply_round_groups_queries_per_task() {
    let mut beliefs = initial_beliefs();
    let panel = ExpertPanel::from_accuracies(&[0.9]).unwrap();
    let before_t0 = beliefs.tasks()[0].clone();
    let queries = vec![GlobalFact::new(1, 0), GlobalFact::new(1, 1)];
    let mut oracle = FixedOracle;
    apply_round(&mut beliefs, &panel, &queries, &mut oracle).unwrap();
    // Task 0 untouched, task 1 updated.
    assert_eq!(beliefs.tasks()[0], before_t0);
    assert_ne!(
        beliefs.tasks()[1],
        initial_beliefs().tasks()[1],
        "queried task must change"
    );
}
