//! Property-based tests (proptest) on the core data structures and the
//! paper's invariants, with randomly generated beliefs, panels, query
//! sets, and answer families.

use hc_core::answer::{
    answer_set_likelihood, enumerate_families, family_probability, AnswerSet, QuerySet,
};
use hc_core::belief::Belief;
use hc_core::entropy::{binary_entropy, conditional_entropy, conditional_entropy_naive};
use hc_core::update::{posterior, update_with_family};
use hc_core::worker::ExpertPanel;
use hc_core::FactId;
use proptest::prelude::*;

/// Strategy: a normalised belief over `n` facts with strictly positive
/// probabilities.
fn belief_strategy(n: usize) -> impl Strategy<Value = Belief> {
    prop::collection::vec(0.01f64..1.0, 1 << n).prop_map(|mut probs| {
        let sum: f64 = probs.iter().sum();
        for p in &mut probs {
            *p /= sum;
        }
        Belief::from_probs(probs).expect("normalised")
    })
}

/// Strategy: an expert panel of 1..=3 workers.
fn panel_strategy() -> impl Strategy<Value = ExpertPanel> {
    prop::collection::vec(0.5f64..=0.99, 1..=3)
        .prop_map(|rates| ExpertPanel::from_accuracies(&rates).expect("valid rates"))
}

/// Strategy: a non-empty query set over `n` facts (distinct ids).
fn query_strategy(n: usize) -> impl Strategy<Value = Vec<FactId>> {
    prop::collection::hash_set(0..n as u32, 1..=n.min(3))
        .prop_map(|set| set.into_iter().map(FactId).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn belief_marginals_are_probabilities(belief in belief_strategy(4)) {
        for m in belief.marginals() {
            prop_assert!((0.0..=1.0 + 1e-12).contains(&m));
        }
    }

    #[test]
    fn belief_entropy_is_bounded(belief in belief_strategy(4)) {
        let h = belief.entropy();
        prop_assert!(h >= 0.0);
        prop_assert!(h <= 4.0 * std::f64::consts::LN_2 + 1e-9);
    }

    #[test]
    fn projection_preserves_mass_and_order(
        belief in belief_strategy(4),
        facts in query_strategy(4),
    ) {
        let q = belief.project(&facts);
        prop_assert_eq!(q.len(), 1 << facts.len());
        let sum: f64 = q.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        // Projected marginal of the first queried fact equals the
        // belief's marginal.
        let p_first: f64 = q
            .iter()
            .enumerate()
            .filter(|(t, _)| t & 1 == 1)
            .map(|(_, &p)| p)
            .sum();
        prop_assert!((p_first - belief.marginal(facts[0])).abs() < 1e-9);
    }

    #[test]
    fn fast_conditional_entropy_matches_naive(
        belief in belief_strategy(3),
        panel in panel_strategy(),
        facts in query_strategy(3),
    ) {
        let fast = conditional_entropy(&belief, &facts, &panel).unwrap();
        let naive = conditional_entropy_naive(&belief, &facts, &panel).unwrap();
        prop_assert!((fast - naive).abs() < 1e-8, "fast {} vs naive {}", fast, naive);
    }

    #[test]
    fn information_never_hurts(
        belief in belief_strategy(4),
        panel in panel_strategy(),
        facts in query_strategy(4),
    ) {
        let h_cond = conditional_entropy(&belief, &facts, &panel).unwrap();
        prop_assert!(h_cond >= 0.0);
        prop_assert!(h_cond <= belief.entropy() + 1e-9);
    }

    #[test]
    fn family_probabilities_form_a_distribution(
        belief in belief_strategy(3),
        panel in panel_strategy(),
        facts in query_strategy(3),
    ) {
        let queries = QuerySet::new(facts.clone(), 3).unwrap();
        let total: f64 = enumerate_families(facts.len(), panel.len())
            .map(|(_, fam)| family_probability(&belief, &queries, &panel, &fam))
            .sum();
        prop_assert!((total - 1.0).abs() < 1e-8);
    }

    #[test]
    fn bayes_update_keeps_normalisation_and_positivity(
        belief in belief_strategy(4),
        panel in panel_strategy(),
        facts in query_strategy(4),
        answer_bits in any::<u32>(),
    ) {
        let queries = QuerySet::new(facts.clone(), 4).unwrap();
        let k = facts.len();
        let sets: Vec<AnswerSet> = (0..panel.len())
            .map(|w| {
                let bits = (answer_bits >> (w * k)) & ((1u32 << k) - 1);
                AnswerSet::from_bits(bits, k)
            })
            .collect();
        let family = hc_core::answer::AnswerFamily::new(sets);
        let mut updated = belief.clone();
        update_with_family(&mut updated, &queries, &panel, &family).unwrap();
        let sum: f64 = updated.probs().iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        prop_assert!(updated.probs().iter().all(|&p| p >= 0.0));
    }

    #[test]
    fn expected_posterior_equals_prior(
        belief in belief_strategy(3),
        panel in panel_strategy(),
        facts in query_strategy(3),
    ) {
        // Law of total probability: Σ_A P(A) · P(o|A) = P(o).
        let queries = QuerySet::new(facts.clone(), 3).unwrap();
        let mut mixed = vec![0.0; belief.probs().len()];
        for (_, family) in enumerate_families(facts.len(), panel.len()) {
            let p_fam = family_probability(&belief, &queries, &panel, &family);
            if p_fam <= 0.0 {
                continue;
            }
            let post = posterior(&belief, &queries, &panel, &family).unwrap();
            for (slot, &p) in mixed.iter_mut().zip(post.probs()) {
                *slot += p_fam * p;
            }
        }
        for (mixed_p, &prior_p) in mixed.iter().zip(belief.probs()) {
            prop_assert!((mixed_p - prior_p).abs() < 1e-8);
        }
    }

    #[test]
    fn answer_set_likelihoods_sum_to_one_over_answers(
        accuracy in 0.5f64..=1.0,
        k in 1usize..=4,
        truth_bits in any::<u32>(),
    ) {
        let t = truth_bits & ((1u32 << k) - 1);
        let total: f64 = (0..(1u32 << k))
            .map(|bits| answer_set_likelihood(accuracy, AnswerSet::from_bits(bits, k), t))
            .sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn binary_entropy_is_concave_symmetric(p in 0.0f64..=1.0) {
        let h = binary_entropy(p);
        prop_assert!(h >= 0.0);
        prop_assert!(h <= std::f64::consts::LN_2 + 1e-12);
        prop_assert!((h - binary_entropy(1.0 - p)).abs() < 1e-9);
    }

    #[test]
    fn every_selector_returns_structurally_valid_selections(
        seed in any::<u64>(),
        k in 0usize..=5,
    ) {
        use hc_core::selection::{
            global_facts, BeamSelector, ExactSelector, GreedySelector, MaxEntropySelector,
            RandomSelector, TaskSelector,
        };
        use hc_core::belief::MultiBelief;
        use rand::SeedableRng;

        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        use rand::Rng as _;
        let beliefs = MultiBelief::new(
            (0..2)
                .map(|_| {
                    let marginals: Vec<f64> =
                        (0..3).map(|_| rng.gen_range(0.05..0.95)).collect();
                    Belief::from_marginals(&marginals).unwrap()
                })
                .collect(),
        );
        let panel = ExpertPanel::from_accuracies(&[0.9]).unwrap();
        let candidates = global_facts(&beliefs);
        let selectors: Vec<Box<dyn TaskSelector>> = vec![
            Box::new(GreedySelector::new()),
            Box::new(GreedySelector::lazy()),
            Box::new(ExactSelector::new()),
            Box::new(RandomSelector::new()),
            Box::new(MaxEntropySelector::new()),
            Box::new(BeamSelector::new(3)),
        ];
        for selector in selectors {
            let mut sel_rng = rand::rngs::StdRng::seed_from_u64(seed ^ 1);
            let selected = selector
                .select(&beliefs, &panel, k, &candidates, &mut sel_rng)
                .unwrap();
            prop_assert!(selected.len() <= k, "{} overselected", selector.name());
            let mut dedup = selected.clone();
            dedup.sort();
            dedup.dedup();
            prop_assert_eq!(dedup.len(), selected.len(), "{} duplicated", selector.name());
            for gf in &selected {
                prop_assert!(
                    candidates.contains(gf),
                    "{} selected a non-candidate",
                    selector.name()
                );
            }
        }
    }

    #[test]
    fn hc_config_serde_round_trips(
        k in 1usize..=8,
        budget in 0u64..10_000,
        unrestricted in any::<bool>(),
    ) {
        use hc_core::hc::{HcConfig, KSchedule, RepeatPolicy};
        let mut config = HcConfig::new(k, budget);
        config.repeat_policy = if unrestricted {
            RepeatPolicy::Unrestricted
        } else {
            RepeatPolicy::CycleThenRepeat
        };
        config.k_schedule = KSchedule::LinearDecay { end: 1 };
        let json = serde_json::to_string(&config).unwrap();
        let back: HcConfig = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back.k, config.k);
        prop_assert_eq!(back.budget, config.budget);
        prop_assert_eq!(back.repeat_policy, config.repeat_policy);
        prop_assert_eq!(back.k_schedule, config.k_schedule);
        // Older configs without the schedule field default to Fixed.
        let legacy: HcConfig = serde_json::from_str(
            &format!(r#"{{"k":{k},"budget":{budget},"max_rounds":null,"repeat_policy":"CycleThenRepeat"}}"#),
        )
        .unwrap();
        prop_assert_eq!(legacy.k_schedule, KSchedule::Fixed);
    }

    #[test]
    fn snapshot_round_trip(seed in any::<u64>(), n_tasks in 1usize..=8) {
        use rand::SeedableRng;
        let mut config = hc_data::SynthConfig::paper_default();
        config.n_tasks = n_tasks;
        let dataset = hc_data::generate(
            &config,
            &mut rand::rngs::StdRng::seed_from_u64(seed),
        ).unwrap();
        let restored =
            hc_data::io::decode_snapshot(hc_data::io::encode_snapshot(&dataset)).unwrap();
        prop_assert_eq!(dataset, restored);
    }

    #[test]
    fn aggregators_always_return_valid_posteriors(seed in any::<u64>()) {
        use rand::SeedableRng;
        let mut config = hc_data::SynthConfig::paper_default();
        config.n_tasks = 4;
        let dataset = hc_data::generate(
            &config,
            &mut rand::rngs::StdRng::seed_from_u64(seed),
        ).unwrap();
        for agg in hc_baselines::all_aggregators() {
            let result = agg.aggregate(&dataset.matrix).unwrap();
            prop_assert!(result.validate(), "{} invalid", agg.name());
            prop_assert_eq!(result.posteriors.len(), dataset.n_items());
        }
    }
}
