//! Cross-crate checks of the paper's theoretical results on non-trivial
//! instances: Theorem 1's identity, the greedy approximation quality
//! against OPT, and the NP-hard selector's optimality on enumerable
//! spaces.

use hc_core::answer::QuerySet;
use hc_core::belief::{Belief, MultiBelief};
use hc_core::quality::{expected_quality, expected_quality_by_enumeration};
use hc_core::selection::{
    global_facts, selection_objective, ExactSelector, GreedySelector, MaxEntropySelector,
    RandomSelector, TaskSelector,
};
use hc_core::worker::ExpertPanel;
use hc_core::FactId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random normalised belief over `n` facts.
fn random_belief(n: usize, rng: &mut StdRng) -> Belief {
    let len = 1usize << n;
    let mut probs: Vec<f64> = (0..len).map(|_| rng.gen_range(0.01..1.0)).collect();
    let sum: f64 = probs.iter().sum();
    for p in &mut probs {
        *p /= sum;
    }
    Belief::from_probs(probs).unwrap()
}

#[test]
fn theorem_1_identity_on_random_instances() {
    // ℚ(F|T) by literal Definition 5 enumeration == -H(O | AS^T).
    let mut rng = StdRng::seed_from_u64(100);
    for _ in 0..20 {
        let n = rng.gen_range(2..=4);
        let belief = random_belief(n, &mut rng);
        let rates: Vec<f64> = (0..rng.gen_range(1..=2))
            .map(|_| rng.gen_range(0.55..0.99))
            .collect();
        let panel = ExpertPanel::from_accuracies(&rates).unwrap();
        let k = rng.gen_range(1..=2.min(n));
        let facts: Vec<FactId> = (0..k as u32).map(FactId).collect();
        let queries = QuerySet::new(facts.clone(), n).unwrap();

        let by_enum = expected_quality_by_enumeration(&belief, &queries, &panel).unwrap();
        let by_entropy = expected_quality(&belief, &facts, &panel).unwrap();
        assert!(
            (by_enum - by_entropy).abs() < 1e-8,
            "n={n} rates={rates:?}: {by_enum} vs {by_entropy}"
        );
    }
}

#[test]
fn greedy_achieves_submodular_approximation_bound() {
    // Theoretical guarantee: the greedy gain sum is at least (1 - 1/e)
    // of OPT's gain. Checked on random multi-task instances.
    let mut rng = StdRng::seed_from_u64(200);
    let bound = 1.0 - 1.0 / std::f64::consts::E;
    for trial in 0..10 {
        let beliefs = MultiBelief::new(
            (0..3)
                .map(|_| random_belief(3, &mut rng))
                .collect::<Vec<_>>(),
        );
        let panel = ExpertPanel::from_accuracies(&[rng.gen_range(0.6..0.95)]).unwrap();
        let candidates = global_facts(&beliefs);
        let k = 3;

        let mut sel_rng = StdRng::seed_from_u64(trial);
        let greedy = GreedySelector::new()
            .select(&beliefs, &panel, k, &candidates, &mut sel_rng)
            .unwrap();
        let opt = ExactSelector::new()
            .select(&beliefs, &panel, k, &candidates, &mut sel_rng)
            .unwrap();

        let h0 = beliefs.entropy();
        let gain = |sel: &[hc_core::selection::GlobalFact]| {
            h0 - selection_objective(&beliefs, sel, &panel).unwrap()
        };
        let greedy_gain = gain(&greedy);
        let opt_gain = gain(&opt);
        assert!(
            greedy_gain >= bound * opt_gain - 1e-9,
            "trial {trial}: greedy {greedy_gain} < (1-1/e)·OPT {opt_gain}"
        );
    }
}

#[test]
fn greedy_is_in_practice_near_optimal() {
    // Figure 5's observation, as a property: on random instances the
    // greedy objective is within a small additive gap of OPT.
    let mut rng = StdRng::seed_from_u64(300);
    for trial in 0..10 {
        let beliefs = MultiBelief::new(
            (0..2)
                .map(|_| random_belief(4, &mut rng))
                .collect::<Vec<_>>(),
        );
        let panel = ExpertPanel::from_accuracies(&[0.9, 0.75]).unwrap();
        let candidates = global_facts(&beliefs);
        let mut sel_rng = StdRng::seed_from_u64(trial);
        for k in [2usize, 3] {
            let greedy = GreedySelector::new()
                .select(&beliefs, &panel, k, &candidates, &mut sel_rng)
                .unwrap();
            let opt = ExactSelector::new()
                .select(&beliefs, &panel, k, &candidates, &mut sel_rng)
                .unwrap();
            let obj_g = selection_objective(&beliefs, &greedy, &panel).unwrap();
            let obj_o = selection_objective(&beliefs, &opt, &panel).unwrap();
            assert!(
                obj_g - obj_o < 0.1,
                "trial {trial} k={k}: greedy {obj_g} vs OPT {obj_o}"
            );
        }
    }
}

#[test]
fn selector_quality_ordering_holds_in_expectation() {
    // OPT <= Greedy <= MaxEntropy-ish <= Random on the conditional
    // entropy objective, averaged over instances (individual instances
    // can tie).
    let mut rng = StdRng::seed_from_u64(400);
    let mut totals = [0.0f64; 3]; // opt, greedy, random
    for trial in 0..20 {
        let beliefs = MultiBelief::new(
            (0..3)
                .map(|_| random_belief(3, &mut rng))
                .collect::<Vec<_>>(),
        );
        let panel = ExpertPanel::from_accuracies(&[0.85]).unwrap();
        let candidates = global_facts(&beliefs);
        let mut sel_rng = StdRng::seed_from_u64(trial);
        let selectors: [Box<dyn TaskSelector>; 3] = [
            Box::new(ExactSelector::new()),
            Box::new(GreedySelector::new()),
            Box::new(RandomSelector::new()),
        ];
        for (total, selector) in totals.iter_mut().zip(&selectors) {
            let sel = selector
                .select(&beliefs, &panel, 2, &candidates, &mut sel_rng)
                .unwrap();
            *total += selection_objective(&beliefs, &sel, &panel).unwrap();
        }
    }
    assert!(totals[0] <= totals[1] + 1e-9, "OPT worse than greedy");
    assert!(totals[1] < totals[2], "greedy no better than random");
}

#[test]
fn fast_path_matches_naive_on_larger_spaces() {
    // The unit tests cover 3-fact beliefs; exercise 8–10 facts with up
    // to 3 workers, where the projection and family enumeration paths
    // take different shapes.
    let mut rng = StdRng::seed_from_u64(600);
    for _ in 0..5 {
        let n = rng.gen_range(8..=10);
        let belief = random_belief(n, &mut rng);
        let n_workers = rng.gen_range(1..=3);
        let rates: Vec<f64> = (0..n_workers).map(|_| rng.gen_range(0.55..0.99)).collect();
        let panel = ExpertPanel::from_accuracies(&rates).unwrap();
        let facts: Vec<FactId> = vec![FactId(0), FactId(n as u32 / 2), FactId(n as u32 - 1)];
        let fast = hc_core::entropy::conditional_entropy(&belief, &facts, &panel).unwrap();
        let naive =
            hc_core::entropy::conditional_entropy_naive(&belief, &facts, &panel).unwrap();
        assert!(
            (fast - naive).abs() < 1e-8,
            "n={n} m={n_workers}: {fast} vs {naive}"
        );
    }
}

#[test]
fn better_experts_extract_more_information() {
    // H(O | AS) is monotone non-increasing in worker accuracy.
    let mut rng = StdRng::seed_from_u64(700);
    for _ in 0..10 {
        let belief = random_belief(4, &mut rng);
        let facts = [FactId(1), FactId(3)];
        let mut prev = f64::MAX;
        for acc in [0.55, 0.7, 0.85, 0.95, 1.0] {
            let panel = ExpertPanel::from_accuracies(&[acc]).unwrap();
            let h = hc_core::entropy::conditional_entropy(&belief, &facts, &panel).unwrap();
            assert!(
                h <= prev + 1e-9,
                "accuracy {acc}: H {h} exceeds weaker expert's {prev}"
            );
            prev = h;
        }
    }
}

#[test]
fn greedy_handles_wide_single_task_spaces() {
    // A 18-fact single task (the Table III regime, scaled down): greedy
    // must select k distinct facts with monotone objective.
    let joint = hc_data::markov_joint(18, 0.55, 0.7);
    let beliefs = MultiBelief::new(vec![Belief::from_probs(joint).unwrap()]);
    let panel = ExpertPanel::from_accuracies(&[0.9]).unwrap();
    let candidates = global_facts(&beliefs);
    let mut rng = StdRng::seed_from_u64(800);
    let mut prev = beliefs.entropy();
    for k in [1usize, 3, 6] {
        let sel = GreedySelector::new()
            .select(&beliefs, &panel, k, &candidates, &mut rng)
            .unwrap();
        assert_eq!(sel.len(), k);
        let obj = selection_objective(&beliefs, &sel, &panel).unwrap();
        assert!(obj < prev, "k={k}: {obj} should improve on {prev}");
        prev = obj;
    }
}

#[test]
fn max_entropy_matches_greedy_on_independent_beliefs_k1() {
    // The §V special case: single expert, k = 1, independent facts.
    let mut rng = StdRng::seed_from_u64(500);
    for _ in 0..10 {
        let marginals: Vec<f64> = (0..4).map(|_| rng.gen_range(0.05..0.95)).collect();
        let beliefs = MultiBelief::new(vec![Belief::from_marginals(&marginals).unwrap()]);
        let panel = ExpertPanel::from_accuracies(&[0.8]).unwrap();
        let candidates = global_facts(&beliefs);
        let mut sel_rng = StdRng::seed_from_u64(1);
        let me = MaxEntropySelector::new()
            .select(&beliefs, &panel, 1, &candidates, &mut sel_rng)
            .unwrap();
        let greedy = GreedySelector::new()
            .select(&beliefs, &panel, 1, &candidates, &mut sel_rng)
            .unwrap();
        assert_eq!(me, greedy, "marginals {marginals:?}");
    }
}
