//! End-to-end pipeline tests spanning all crates: corpus generation →
//! aggregation → belief initialisation → hierarchical checking →
//! evaluation.

use hc::prelude::*;
use hc_core::hc::{run_hc, HcConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn corpus(n_tasks: usize, seed: u64) -> CrowdDataset {
    let mut config = SynthConfig::paper_default();
    config.n_tasks = n_tasks;
    generate(&config, &mut StdRng::seed_from_u64(seed)).unwrap()
}

fn ebcc_prepared(dataset: &CrowdDataset) -> Prepared {
    let config = PipelineConfig::paper_default();
    let experts: Vec<u32> = dataset
        .worker_accuracies
        .iter()
        .enumerate()
        .filter(|(_, &a)| a >= config.theta)
        .map(|(w, _)| w as u32)
        .collect();
    let cp = dataset.matrix.filter_workers(|w| !experts.contains(&w));
    let marginals = Ebcc::new().aggregate(&cp).unwrap().binary_marginals();
    prepare(dataset, &config, &InitMethod::Marginals(marginals)).unwrap()
}

#[test]
fn hc_improves_accuracy_and_quality_over_initialisation() {
    let dataset = corpus(40, 1);
    let prepared = ebcc_prepared(&dataset);
    let acc0 = prepared.accuracy(&prepared.beliefs);
    let q0 = prepared.beliefs.quality();

    let mut oracle = ReplayOracle::new(&dataset, prepared.grouping).unwrap();
    let outcome = run_hc(
        prepared.beliefs.clone(),
        &prepared.panel,
        &GreedySelector::new(),
        &mut oracle,
        &HcConfig::new(1, 200),
        &mut StdRng::seed_from_u64(2),
    )
    .unwrap();

    let acc1 = dataset_accuracy(&outcome.beliefs, &prepared.truths);
    assert!(acc1 > acc0, "accuracy {acc0} -> {acc1}");
    assert!(outcome.quality() > q0, "quality {q0} -> {}", outcome.quality());
    assert!(outcome.budget_spent <= 200);
}

#[test]
fn whole_pipeline_is_deterministic() {
    let run = || {
        let dataset = corpus(20, 9);
        let prepared = ebcc_prepared(&dataset);
        let mut oracle = ReplayOracle::new(&dataset, prepared.grouping).unwrap();
        let outcome = run_hc(
            prepared.beliefs.clone(),
            &prepared.panel,
            &GreedySelector::new(),
            &mut oracle,
            &HcConfig::new(2, 100),
            &mut StdRng::seed_from_u64(3),
        )
        .unwrap();
        (outcome.labels(), outcome.quality())
    };
    let (labels_a, quality_a) = run();
    let (labels_b, quality_b) = run();
    assert_eq!(labels_a, labels_b);
    assert_eq!(quality_a, quality_b);
}

#[test]
fn vote_init_pipeline_also_works() {
    let dataset = corpus(20, 4);
    let config = PipelineConfig::paper_default();
    let prepared = prepare(&dataset, &config, &InitMethod::CpVotes).unwrap();
    let mut oracle = ReplayOracle::new(&dataset, prepared.grouping).unwrap();
    let outcome = run_hc(
        prepared.beliefs.clone(),
        &prepared.panel,
        &GreedySelector::new(),
        &mut oracle,
        &HcConfig::new(1, 100),
        &mut StdRng::seed_from_u64(5),
    )
    .unwrap();
    assert!(outcome.quality() > prepared.beliefs.quality());
}

#[test]
fn sampling_oracle_reaches_high_accuracy_with_generous_budget() {
    // With fresh independent expert answers (a live crowd), repeated
    // checking drives accuracy near 1.
    let dataset = corpus(20, 6);
    let prepared = ebcc_prepared(&dataset);
    let truths = prepared.truths.clone();
    let mut oracle = SamplingOracle::new(&truths, StdRng::seed_from_u64(7));
    let outcome = run_hc(
        prepared.beliefs.clone(),
        &prepared.panel,
        &GreedySelector::new(),
        &mut oracle,
        &HcConfig::new(1, 2000),
        &mut StdRng::seed_from_u64(8),
    )
    .unwrap();
    let acc = dataset_accuracy(&outcome.beliefs, &prepared.truths);
    assert!(acc > 0.97, "accuracy {acc}");
}

#[test]
fn snapshot_round_trip_preserves_pipeline_behaviour() {
    let dataset = corpus(10, 11);
    let bytes = hc::data::io::encode_snapshot(&dataset);
    let restored = hc::data::io::decode_snapshot(bytes).unwrap();
    assert_eq!(dataset, restored);

    let a = ebcc_prepared(&dataset);
    let b = ebcc_prepared(&restored);
    assert_eq!(a.beliefs, b.beliefs);
    assert_eq!(a.truths, b.truths);
}

#[test]
fn every_selector_completes_the_loop() {
    let dataset = corpus(8, 12);
    let prepared = ebcc_prepared(&dataset);
    let selectors: Vec<Box<dyn TaskSelector>> = vec![
        Box::new(GreedySelector::new()),
        Box::new(GreedySelector::lazy()),
        Box::new(ExactSelector::new()),
        Box::new(RandomSelector::new()),
        Box::new(MaxEntropySelector::new()),
    ];
    for selector in selectors {
        let mut oracle = ReplayOracle::new(&dataset, prepared.grouping).unwrap();
        let outcome = run_hc(
            prepared.beliefs.clone(),
            &prepared.panel,
            selector.as_ref(),
            &mut oracle,
            &HcConfig::new(2, 40),
            &mut StdRng::seed_from_u64(13),
        )
        .unwrap();
        assert!(
            outcome.budget_spent <= 40,
            "{} overspent",
            selector.name()
        );
        for belief in outcome.beliefs.tasks() {
            let sum: f64 = belief.probs().iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "{} denormalised", selector.name());
        }
    }
}

#[test]
fn informed_selection_beats_random_on_average() {
    // Across several corpora, greedy checking should beat random
    // checking on final quality at equal budget.
    let mut greedy_total = 0.0;
    let mut random_total = 0.0;
    for seed in 20..25 {
        let dataset = corpus(16, seed);
        let prepared = ebcc_prepared(&dataset);
        for (selector, total) in [
            (
                Box::new(GreedySelector::new()) as Box<dyn TaskSelector>,
                &mut greedy_total,
            ),
            (Box::new(RandomSelector::new()), &mut random_total),
        ] {
            let mut oracle = ReplayOracle::new(&dataset, prepared.grouping).unwrap();
            let outcome = run_hc(
                prepared.beliefs.clone(),
                &prepared.panel,
                selector.as_ref(),
                &mut oracle,
                &HcConfig::new(1, 60),
                &mut StdRng::seed_from_u64(seed ^ 0xAB),
            )
            .unwrap();
            *total += outcome.quality();
        }
    }
    assert!(
        greedy_total > random_total,
        "greedy {greedy_total} vs random {random_total}"
    );
}
