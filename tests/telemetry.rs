//! Telemetry contract tests: the instrumented loop must not perturb
//! the pipeline (NullSink runs are bit-identical), and a recorded run
//! must yield a complete, ordered, internally consistent event log —
//! every dispatch closed by exactly one outcome event, metrics totals
//! agreeing with the returned `HcOutcome`, and the log surviving a
//! JSONL round trip.

use hc::prelude::*;
use hc_core::hc::run_hc;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn corpus(seed: u64) -> CrowdDataset {
    let mut config = SynthConfig::paper_default();
    config.n_tasks = 12;
    generate(&config, &mut StdRng::seed_from_u64(seed)).unwrap()
}

fn small_corpus(seed: u64) -> CrowdDataset {
    let mut config = SynthConfig::paper_default();
    config.n_tasks = 6;
    generate(&config, &mut StdRng::seed_from_u64(seed)).unwrap()
}

fn prepared(dataset: &CrowdDataset) -> Prepared {
    prepare(
        dataset,
        &PipelineConfig::paper_default(),
        &InitMethod::CpVotes,
    )
    .unwrap()
}

/// Walks the stream asserting every `QueryDispatched` is closed by
/// exactly one delivery/timeout/drop event for the same query before
/// the next dispatch opens. Returns (dispatched, closed).
fn check_dispatch_closure_invariant(events: &[TelemetryEvent]) -> (usize, usize) {
    let mut open: Option<(usize, usize, u32, u32, u64)> = None;
    let mut dispatched = 0usize;
    let mut closed = 0usize;
    for event in events {
        match event {
            TelemetryEvent::QueryDispatched {
                round,
                task,
                fact,
                worker,
                query_id,
            } => {
                assert!(open.is_none(), "dispatch while a query is still open");
                assert!(*query_id > 0, "loop-assigned query ids start at 1");
                open = Some((*round, *task, *fact, *worker, *query_id));
                dispatched += 1;
            }
            TelemetryEvent::AnswerDelivered {
                round,
                task,
                fact,
                worker,
                query_id,
                ..
            }
            | TelemetryEvent::AnswerTimedOut {
                round,
                task,
                fact,
                worker,
                query_id,
            }
            | TelemetryEvent::AnswerDropped {
                round,
                task,
                fact,
                worker,
                query_id,
            } => {
                assert_eq!(
                    open.take(),
                    Some((*round, *task, *fact, *worker, *query_id)),
                    "closure must match its dispatch"
                );
                closed += 1;
            }
            _ => {}
        }
    }
    assert!(open.is_none(), "stream ended with an open dispatch");
    (dispatched, closed)
}

#[test]
fn null_sink_run_is_bit_identical_to_the_plain_path() {
    let dataset = corpus(50);
    let p = prepared(&dataset);
    let config = HcConfig::new(2, 80);
    let plain = {
        let mut oracle = ReplayOracle::new(&dataset, p.grouping).unwrap();
        run_hc(
            p.beliefs.clone(),
            &p.panel,
            &GreedySelector::new(),
            &mut oracle,
            &config,
            &mut StdRng::seed_from_u64(51),
        )
        .unwrap()
    };
    let nulled = {
        let mut oracle = ReplayOracle::new(&dataset, p.grouping).unwrap();
        run_hc_with_telemetry(
            p.beliefs.clone(),
            &p.panel,
            &GreedySelector::new(),
            &mut oracle,
            &config,
            &mut StdRng::seed_from_u64(51),
            &mut NullSink,
        )
        .unwrap()
    };
    // With the sink disabled, asking for explain traces must be a no-op:
    // the loop falls back to the exact same `select` call, so the run is
    // still bit-identical to the plain path.
    let explained = {
        let mut explain_config = HcConfig::new(2, 80);
        explain_config.explain_selection = true;
        let mut oracle = ReplayOracle::new(&dataset, p.grouping).unwrap();
        run_hc_with_telemetry(
            p.beliefs.clone(),
            &p.panel,
            &GreedySelector::new(),
            &mut oracle,
            &explain_config,
            &mut StdRng::seed_from_u64(51),
            &mut NullSink,
        )
        .unwrap()
    };
    for instrumented in [&nulled, &explained] {
        assert_eq!(plain.budget_spent, instrumented.budget_spent);
        assert_eq!(plain.rounds.len(), instrumented.rounds.len());
        assert_eq!(plain.labels(), instrumented.labels());
        for (a, b) in plain.beliefs.tasks().iter().zip(instrumented.beliefs.tasks()) {
            assert_eq!(a.probs(), b.probs(), "NullSink must not perturb the run");
        }
        for (ra, rb) in plain.rounds.iter().zip(&instrumented.rounds) {
            assert_eq!(ra.queries, rb.queries);
            assert_eq!(ra.budget_spent, rb.budget_spent);
            assert_eq!(ra.predicted_entropy, rb.predicted_entropy);
            assert_eq!(ra.realized_entropy, rb.realized_entropy);
        }
    }
}

#[test]
fn recorded_run_yields_a_complete_ordered_log_matching_the_round_records() {
    let dataset = corpus(52);
    let p = prepared(&dataset);
    let mut sink = RecordingSink::new();
    let mut oracle = ReplayOracle::new(&dataset, p.grouping).unwrap();
    let outcome = run_hc_with_telemetry(
        p.beliefs.clone(),
        &p.panel,
        &GreedySelector::new(),
        &mut oracle,
        &HcConfig::new(2, 80),
        &mut StdRng::seed_from_u64(53),
        &mut sink,
    )
    .unwrap();
    let events = sink.events();
    assert!(matches!(events.first(), Some(TelemetryEvent::RunStarted { .. })));
    match events.last() {
        Some(TelemetryEvent::RunFinished {
            rounds,
            budget_spent,
            ..
        }) => {
            assert_eq!(*rounds, outcome.rounds.len());
            assert_eq!(*budget_spent, outcome.budget_spent);
        }
        other => panic!("log must end with RunFinished, got {other:?}"),
    }

    // One RoundSelected and one BeliefUpdated per round record, in
    // order, with entropy/quality agreeing exactly with the records.
    let selected: Vec<_> = events
        .iter()
        .filter(|e| matches!(e, TelemetryEvent::RoundSelected { .. }))
        .collect();
    let updated: Vec<_> = events
        .iter()
        .filter(|e| matches!(e, TelemetryEvent::BeliefUpdated { .. }))
        .collect();
    assert_eq!(selected.len(), outcome.rounds.len());
    assert_eq!(updated.len(), outcome.rounds.len());
    for (record, (sel, upd)) in outcome.rounds.iter().zip(selected.iter().zip(&updated)) {
        if let TelemetryEvent::RoundSelected {
            round,
            k_effective,
            queries,
            predicted_entropy,
            ..
        } = sel
        {
            assert_eq!(*round, record.round);
            assert_eq!(*k_effective, record.queries.len());
            assert_eq!(queries.len(), record.queries.len());
            assert_eq!(*predicted_entropy, record.predicted_entropy);
        } else {
            unreachable!()
        }
        if let TelemetryEvent::BeliefUpdated {
            round,
            entropy,
            quality,
            budget_spent,
            answers_requested,
            answers_received,
        } = upd
        {
            assert_eq!(*round, record.round);
            assert_eq!(*entropy, record.realized_entropy);
            assert_eq!(*quality, record.quality);
            assert_eq!(*budget_spent, record.budget_spent);
            assert_eq!(*answers_requested, record.answers_requested);
            assert_eq!(*answers_received, record.answers_received);
        } else {
            unreachable!()
        }
    }

    // A reliable oracle delivers everything it is asked.
    let (dispatched, closed) = check_dispatch_closure_invariant(events);
    assert_eq!(dispatched, closed);
    assert_eq!(
        dispatched,
        outcome.rounds.iter().map(|r| r.answers_requested).sum::<usize>()
    );
}

#[test]
fn dispatches_stay_closed_under_faults_retries_and_reassignment() {
    let dataset = corpus(54);
    let p = prepared(&dataset);
    let recorder = SharedRecorder::new();
    let replay = ReplayOracle::new(&dataset, p.grouping).unwrap();
    let faulty = FaultyOracle::new(
        replay,
        FaultPlan::uniform(0.5, 55).with_timeouts(0.1).with_churn(0.05),
    )
    .with_telemetry(Box::new(recorder.clone()));
    let mut platform = SimulatedPlatform::new(faulty, 56)
        .with_retry_policy(RetryPolicy::standard())
        .with_reassignment_panel(&p.panel)
        .with_telemetry(Box::new(recorder.clone()));
    let mut loop_sink = recorder.clone();
    let outcome = run_hc_with_telemetry(
        p.beliefs.clone(),
        &p.panel,
        &GreedySelector::new(),
        &mut platform,
        &HcConfig::new(2, 60),
        &mut StdRng::seed_from_u64(57),
        &mut loop_sink,
    )
    .unwrap();
    let events = recorder.snapshot();
    let (dispatched, closed) = check_dispatch_closure_invariant(&events);
    assert_eq!(dispatched, closed, "every dispatch gets exactly one outcome");
    assert!(dispatched > 0);
    // Platform and fault-layer events landed in the same stream.
    assert!(
        events
            .iter()
            .any(|e| matches!(e, TelemetryEvent::FaultInjected { .. })),
        "50% dropout must inject faults into the stream"
    );
    assert!(
        events
            .iter()
            .any(|e| matches!(e, TelemetryEvent::RetryScheduled { .. })),
        "the standard policy must schedule retries at 50% dropout"
    );
    // Deliveries in the stream equal deliveries the loop accounted for.
    let delivered = events
        .iter()
        .filter(|e| matches!(e, TelemetryEvent::AnswerDelivered { .. }))
        .count();
    assert_eq!(
        delivered,
        outcome.rounds.iter().map(|r| r.answers_received).sum::<usize>()
    );
}

#[test]
fn real_run_log_survives_a_jsonl_round_trip() {
    let dataset = corpus(58);
    let p = prepared(&dataset);
    let mut sink = RecordingSink::new();
    let mut oracle = ReplayOracle::new(&dataset, p.grouping).unwrap();
    run_hc_with_telemetry(
        p.beliefs.clone(),
        &p.panel,
        &GreedySelector::new(),
        &mut oracle,
        &HcConfig::new(2, 40),
        &mut StdRng::seed_from_u64(59),
        &mut sink,
    )
    .unwrap();
    assert!(!sink.is_empty());
    let text = sink.to_jsonl();
    let back = RecordingSink::from_jsonl(&text).expect("round trip parses");
    assert_eq!(back.events(), sink.events());
}

#[test]
fn regret_is_computable_from_the_round_records() {
    let dataset = corpus(60);
    let p = prepared(&dataset);
    let mut oracle = ReplayOracle::new(&dataset, p.grouping).unwrap();
    let outcome = run_hc(
        p.beliefs.clone(),
        &p.panel,
        &GreedySelector::new(),
        &mut oracle,
        &HcConfig::new(2, 80),
        &mut StdRng::seed_from_u64(61),
    )
    .unwrap();
    assert!(!outcome.rounds.is_empty());
    for r in &outcome.rounds {
        assert!(r.predicted_entropy.is_finite());
        assert!(r.realized_entropy.is_finite());
        assert!(r.predicted_entropy > 0.0, "objective includes unqueried tasks");
        let regret = r.realized_entropy - r.predicted_entropy;
        assert!(regret.is_finite());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn metrics_totals_match_the_outcome_under_arbitrary_fault_plans(
        dropout in 0.0f64..=1.0,
        timeout in 0.0f64..=0.5,
        churn in 0.0f64..=0.2,
        plan_seed in 0u64..1_000,
    ) {
        let dataset = small_corpus(62);
        let p = prepared(&dataset);
        let recorder = SharedRecorder::new();
        let replay = ReplayOracle::new(&dataset, p.grouping).unwrap();
        let plan = FaultPlan::uniform(dropout, plan_seed)
            .with_timeouts(timeout)
            .with_churn(churn);
        let mut oracle = FaultyOracle::new(replay, plan)
            .with_telemetry(Box::new(recorder.clone()));
        let mut loop_sink = recorder.clone();
        let outcome = run_hc_with_telemetry(
            p.beliefs.clone(),
            &p.panel,
            &GreedySelector::new(),
            &mut oracle,
            &HcConfig::new(2, 40),
            &mut StdRng::seed_from_u64(63),
            &mut loop_sink,
        )
        .unwrap();
        let events = recorder.snapshot();
        let metrics = MetricsRegistry::from_events(&events);

        prop_assert_eq!(metrics.counter("rounds"), outcome.rounds.len() as u64);
        prop_assert_eq!(
            metrics.gauge("budget_spent"),
            Some(outcome.budget_spent as f64)
        );
        let received: usize = outcome.rounds.iter().map(|r| r.answers_received).sum();
        let requested: usize = outcome.rounds.iter().map(|r| r.answers_requested).sum();
        prop_assert_eq!(metrics.counter("answers_delivered"), received as u64);
        prop_assert_eq!(metrics.counter("queries_dispatched"), requested as u64);
        // Unit cost: spend equals deliveries.
        prop_assert_eq!(metrics.counter("answers_delivered"), outcome.budget_spent);
        // Every dispatch resolves to exactly one of the three outcomes.
        prop_assert_eq!(
            metrics.counter("answers_delivered")
                + metrics.counter("answers_timed_out")
                + metrics.counter("answers_dropped"),
            metrics.counter("queries_dispatched")
        );
        let (dispatched, closed) = check_dispatch_closure_invariant(&events);
        prop_assert_eq!(dispatched, closed);
    }
}
