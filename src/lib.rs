//! # hc — Hierarchical Crowdsourcing for Data Labeling
//!
//! Facade crate re-exporting the whole workspace: the core framework
//! ([`core`]), corpora and the synthetic generator ([`data`]), the eight
//! truth-inference baselines ([`baselines`]), the simulated
//! crowdsourcing platform ([`sim`]), and the experiment harness
//! ([`eval`]).
//!
//! Reproduction of *"Hierarchical Crowdsourcing for Data Labeling with
//! Heterogeneous Crowd"* (ICDE 2023). See the repository `README.md`
//! for a guided tour and `examples/` for runnable entry points:
//!
//! ```bash
//! cargo run --release --example quickstart
//! cargo run --release --example sentiment_pipeline
//! cargo run --release --example aggregator_showdown
//! cargo run --release --example budget_planner
//! cargo run --release --example benchmark_import
//! cargo run --release --example tiers_and_costs
//! cargo run --release --example unreliable_crowd
//! cargo run --release --example telemetry_tour
//! cargo run --release --example run_inspector
//! ```

#![warn(missing_docs)]

/// The paper's core framework: beliefs, entropy, selection, the HC loop.
pub use hc_core as core;

/// Corpora: answer matrices, grouping, the synthetic generator.
pub use hc_data as data;

/// The eight truth-inference baselines (MV … EBCC).
pub use hc_baselines as baselines;

/// Simulated crowdsourcing: oracles, budget ledger, pipeline glue.
pub use hc_sim as sim;

/// Experiment harness regenerating the paper's tables and figures.
pub use hc_eval as eval;

/// Structured events, metrics, and hot-path timing for HC runs.
pub use hc_telemetry as telemetry;

/// Everything most programs need, in one import.
pub mod prelude {
    pub use hc_baselines::{
        all_aggregators, AggregateResult, Aggregator, Bcc, Bwa, Crh, DawidSkene, Ebcc, Glad,
        MajorityVote, ZenCrowd,
    };
    pub use hc_core::prelude::*;
    pub use hc_data::{
        generate, AccuracyModel, AnswerEntry, AnswerMatrix, CrowdDataset, CrowdProfile,
        SynthConfig, SystematicErrors, TaskGrouping,
    };
    pub use hc_sim::{
        dataset_accuracy, prepare, FaultPlan, FaultStats, FaultyOracle, InitMethod,
        PipelineConfig, PlatformStats, Prepared, ReplayOracle, RetryPolicy, SamplingOracle,
        SimulatedPlatform,
    };
}
