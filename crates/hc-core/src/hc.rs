//! The hierarchical-crowdsourcing loop (Algorithms 1 and 3 of the paper)
//! and the §III-D extensions (per-worker costs, multi-tier crowds).
//!
//! Given an initial belief state (from preliminary workers), the loop
//! repeatedly: selects a query set with a [`TaskSelector`], sends it to
//! every expert in the panel, updates the beliefs with the collected
//! answer family (Bayes), and charges the checking budget — until the
//! budget cannot afford another round or no query offers positive gain.

use crate::answer::{AnswerOutcome, PartialAnswerFamily, PartialAnswerSet, QuerySet};
use crate::belief::MultiBelief;
use crate::error::Result;
use crate::fact::FactId;
use crate::selection::{GlobalFact, TaskSelector};
use crate::update::{update_with_partial_family, UpdateHealth};
use crate::worker::{ExpertPanel, Worker};
use hc_telemetry::{NullSink, TelemetryEvent, TelemetrySink};
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// Source of expert answers during checking.
///
/// In a live deployment this is the crowdsourcing platform; in the
/// experiments it is a simulator (`hc-sim`) replaying recorded answers or
/// sampling from the worker error model against a hidden ground truth.
///
/// An attempt is *fallible*: a real worker can time out or drop a query,
/// so the contract returns an [`AnswerOutcome`] rather than a bare
/// [`crate::answer::Answer`]. Reliable oracles simply wrap every answer
/// (`Answer::from_bool(..).into()`); the HC loop conditions each round's
/// Bayes update only on the answers that actually arrived and charges
/// budget only for delivered answers.
pub trait AnswerOracle {
    /// One attempt at "is `fact` true?" by `worker`: the answer, or why
    /// none arrived.
    fn answer(&mut self, worker: &Worker, fact: GlobalFact) -> AnswerOutcome;

    /// Announces the causal query id of the dispatch whose
    /// [`AnswerOracle::answer`] call follows.
    ///
    /// The HC loop assigns one id per selected query per round
    /// (panel-wide: all workers answering the same query share it) and
    /// calls this before each `answer` so layered oracles (platform
    /// retries, fault injection) can stamp their own events —
    /// `RetryScheduled`, `FaultInjected` — with the id of the dispatch
    /// that caused them. The default is a no-op; wrappers should
    /// forward to their inner oracle.
    fn begin_dispatch(&mut self, _query_id: u64) {}
}

/// Pricing of expert answers (the cost-aware extension of §III-D).
pub trait CostModel: Send + Sync {
    /// Cost charged for one answer from `worker`.
    fn cost(&self, worker: &Worker) -> u64;
}

/// The paper's base model: every expert answer costs one budget unit, so
/// a round of `|T|` queries costs `|T| · |CE|` (Algorithm 3, line 7).
#[derive(Debug, Clone, Copy, Default)]
pub struct UnitCost;

impl CostModel for UnitCost {
    fn cost(&self, _worker: &Worker) -> u64 {
        1
    }
}

/// Accuracy-proportional pricing: more accurate experts cost more, as
/// proposed in §III-D ("the cost is related to his/her accuracy rate").
///
/// `cost = base + round(scale · (accuracy − 0.5) / 0.5)` — a chance-level
/// worker costs `base`, a perfect worker `base + scale`.
#[derive(Debug, Clone, Copy)]
pub struct AccuracyCost {
    /// Cost of a chance-level answer.
    pub base: u64,
    /// Extra cost of a perfect answer over a chance-level one.
    pub scale: u64,
}

impl CostModel for AccuracyCost {
    fn cost(&self, worker: &Worker) -> u64 {
        let premium = (worker.accuracy.rate() - 0.5) / 0.5;
        self.base + (self.scale as f64 * premium).round() as u64
    }
}

/// Whether a fact may be re-selected for checking in later rounds.
///
/// Algorithm 2 as written selects over all of `F` every round. In the
/// offline-replay evaluation (§IV-A) re-asking an expert the same
/// question returns the identical recorded answer, so when two experts
/// of near-equal accuracy disagree on a fact, its posterior barely moves
/// and unrestricted re-selection can burn the whole budget on that one
/// fact. [`RepeatPolicy::CycleThenRepeat`] therefore checks each fact at
/// most once per *cycle*, resetting eligibility once every fact has been
/// checked — which also reproduces the paper's observation that at high
/// budget "a few queries with wrong answers from the experts are
/// repeatedly selected for updates" (§IV-C(2)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum RepeatPolicy {
    /// The literal Algorithm 2: every fact is a candidate every round.
    Unrestricted,
    /// Facts become ineligible once checked; eligibility resets when the
    /// whole query space has been checked. The default.
    #[default]
    CycleThenRepeat,
}

/// How the per-round query count evolves over the run — the §III-D
/// trade-off ("the smaller the k is, the more precise the crowdsourced
/// answers are, meanwhile the more time-consuming the crowdsourcing
/// process is") turned into a schedule instead of a constant.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum KSchedule {
    /// Always use `HcConfig::k` (the paper's Algorithms 1–3).
    #[default]
    Fixed,
    /// Interpolate linearly from `HcConfig::k` at the start down to
    /// `end` when the budget runs out: large cheap batches early, fine
    /// single-query rounds late.
    LinearDecay {
        /// The query count approached as the budget depletes (≥ 1).
        end: usize,
    },
    /// Scale `k` with the remaining uncertainty: one query per
    /// `nats_per_query` nats of total belief entropy, capped at `max`.
    /// Uncertain early rounds batch aggressively; near-resolved states
    /// fall back to careful single queries.
    EntropyAdaptive {
        /// Nats of dataset entropy per selected query.
        nats_per_query: f64,
        /// Upper bound on the adaptive `k`.
        max: usize,
    },
}

impl KSchedule {
    /// The query count for the upcoming round.
    pub fn round_k(
        self,
        base_k: usize,
        spent: u64,
        budget: u64,
        beliefs: &MultiBelief,
    ) -> usize {
        match self {
            KSchedule::Fixed => base_k,
            KSchedule::LinearDecay { end } => {
                let end = end.max(1);
                if budget == 0 || base_k <= end {
                    return base_k.max(1);
                }
                let frac = spent as f64 / budget as f64;
                let k = base_k as f64 - (base_k - end) as f64 * frac;
                (k.round() as usize).clamp(end, base_k)
            }
            KSchedule::EntropyAdaptive {
                nats_per_query,
                max,
            } => {
                // A non-positive (or NaN) rate would divide to ±∞/NaN and
                // `as usize`-saturate; fall back to the base `k` instead
                // of letting a bad config poison the schedule in release.
                if nats_per_query.is_nan() || nats_per_query <= 0.0 {
                    return base_k.clamp(1, max.max(1));
                }
                let k = (beliefs.entropy() / nats_per_query).ceil() as usize;
                k.clamp(1, max.max(1))
            }
        }
    }
}

/// Configuration of the checking loop.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HcConfig {
    /// Queries selected per round (`k` of Algorithm 2). Trade-off
    /// discussed in §III-D and measured in Figure 3.
    pub k: usize,
    /// Total checking budget `B`, in cost units (= expert answers under
    /// [`UnitCost`]).
    pub budget: u64,
    /// Optional hard cap on rounds (safety valve for degenerate
    /// configurations; `None` reproduces the paper's loop exactly).
    pub max_rounds: Option<usize>,
    /// Re-selection policy (see [`RepeatPolicy`]).
    pub repeat_policy: RepeatPolicy,
    /// Per-round query-count schedule (see [`KSchedule`]).
    #[serde(default)]
    pub k_schedule: KSchedule,
    /// Consecutive rounds in which *zero* answers arrive before the loop
    /// gives up on the crowd. With a reliable oracle every round delivers
    /// and this never triggers; with a fully-dropped crowd (100% dropout)
    /// it bounds the loop — attempted dispatches cost nothing, so without
    /// this guard the loop would spin forever on an unresponsive panel.
    #[serde(default = "default_max_dry_rounds")]
    pub max_dry_rounds: usize,
    /// Record per-candidate selection gains as `CandidateScored` /
    /// `QuerySelected` telemetry (via
    /// [`TaskSelector::select_with_explain`]). Only takes effect when
    /// the sink is enabled; with this off (the default) the selection
    /// path is exactly [`TaskSelector::select`].
    #[serde(default)]
    pub explain_selection: bool,
    /// Thread policy for the deterministic compute engine
    /// ([`crate::parallel`]): installed for the duration of the run, it
    /// parallelises candidate scoring, entropy reductions, and Bayes
    /// renormalisation. Every output of the run is bit-identical
    /// whatever this is set to.
    #[serde(default)]
    pub parallelism: crate::parallel::Parallelism,
    /// Collect a hierarchical profile of the run (step/phase span tree,
    /// latency quantiles, work counters) and emit it as one
    /// `ProfileReport` telemetry event just before `RunFinished`. Off by
    /// default: span timings are wall-clock and therefore
    /// nondeterministic, so enabling this changes the emitted *stream*
    /// (never the computed posteriors) and golden-trace comparisons
    /// must strip the report. Only takes effect when the sink is
    /// enabled.
    #[serde(default)]
    pub profile: bool,
}

fn default_max_dry_rounds() -> usize {
    2
}

impl HcConfig {
    /// `k` queries per round with budget `B`, no round cap, and the
    /// default cycle-then-repeat policy.
    pub fn new(k: usize, budget: u64) -> Self {
        HcConfig {
            k,
            budget,
            max_rounds: None,
            repeat_policy: RepeatPolicy::default(),
            k_schedule: KSchedule::default(),
            max_dry_rounds: default_max_dry_rounds(),
            explain_selection: false,
            parallelism: crate::parallel::Parallelism::default(),
            profile: false,
        }
    }
}

/// What happened in one checking round.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RoundRecord {
    /// Round number, starting at 1.
    pub round: usize,
    /// The queries selected this round.
    pub queries: Vec<GlobalFact>,
    /// Cumulative budget spent *after* this round.
    pub budget_spent: u64,
    /// Dataset quality `Q = -Σ_t H(O_t)` after this round's update.
    pub quality: f64,
    /// Answers requested this round (`|T| · |CE|`).
    #[serde(default)]
    pub answers_requested: usize,
    /// Answers that actually arrived this round (= requested with a
    /// reliable crowd; fewer under dropout/timeouts).
    #[serde(default)]
    pub answers_received: usize,
    /// The selector's objective `Σ_t H(O_t | AS^{T_t})` for the chosen
    /// query set — the total entropy it *predicted* would remain after
    /// this round's update. Zero in records from before this field.
    #[serde(default)]
    pub predicted_entropy: f64,
    /// Total belief entropy actually *realised* after the update; the
    /// selector's per-round regret is
    /// `realized_entropy - predicted_entropy`.
    #[serde(default)]
    pub realized_entropy: f64,
}

/// What a round's dispatch actually delivered — the unreliable-crowd
/// bookkeeping [`apply_round`] reports so the loop can charge only for
/// answers that arrived.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoundDelivery {
    /// Answer attempts dispatched (`|T| · |CE|`).
    pub requested: usize,
    /// Answers delivered across the whole panel.
    pub delivered: usize,
    /// Delivered answers per panel worker, aligned with
    /// [`ExpertPanel::workers`].
    pub per_worker: Vec<usize>,
}

/// Result of a complete HC run.
#[derive(Debug, Clone)]
pub struct HcOutcome {
    /// Final belief state.
    pub beliefs: MultiBelief,
    /// Per-round trace.
    pub rounds: Vec<RoundRecord>,
    /// Total budget spent.
    pub budget_spent: u64,
}

impl HcOutcome {
    /// Final MAP labels per task (Equation (20)).
    pub fn labels(&self) -> Vec<Vec<bool>> {
        self.beliefs.map_labels()
    }

    /// Final dataset quality.
    pub fn quality(&self) -> f64 {
        self.beliefs.quality()
    }
}

/// Runs Algorithm 3 (or Algorithm 1, when `selector` is the exact one).
///
/// See [`run_hc_with_observer`] for a per-round callback variant.
pub fn run_hc(
    beliefs: MultiBelief,
    panel: &ExpertPanel,
    selector: &dyn TaskSelector,
    oracle: &mut dyn AnswerOracle,
    config: &HcConfig,
    rng: &mut dyn RngCore,
) -> Result<HcOutcome> {
    run_hc_with_observer(beliefs, panel, selector, oracle, config, rng, |_, _| {})
}

/// [`run_hc`] with an observer invoked after every round's belief update
/// — the hook experiments use to record accuracy-vs-budget curves.
///
/// This closure API is a thin adapter over the event-emitting internals
/// ([`run_hc_costed_with_telemetry`] with a [`NullSink`]).
#[allow(clippy::too_many_arguments)]
pub fn run_hc_with_observer(
    mut beliefs: MultiBelief,
    panel: &ExpertPanel,
    selector: &dyn TaskSelector,
    oracle: &mut dyn AnswerOracle,
    config: &HcConfig,
    rng: &mut dyn RngCore,
    mut observer: impl FnMut(&MultiBelief, &RoundRecord),
) -> Result<HcOutcome> {
    run_hc_costed_with_telemetry(
        &mut beliefs,
        panel,
        selector,
        oracle,
        config,
        &UnitCost,
        rng,
        &mut observer,
        &mut NullSink,
    )
    .map(|(rounds, spent)| HcOutcome {
        beliefs,
        rounds,
        budget_spent: spent,
    })
}

/// [`run_hc`] with a [`TelemetrySink`] receiving the structured event
/// stream of the run: `RunStarted`, per round `RoundSelected` →
/// `QueryDispatched`/delivery events → `BeliefUpdated`, and
/// `RunFinished` with the stop reason. With [`NullSink`] this is
/// bit-identical to [`run_hc`].
pub fn run_hc_with_telemetry(
    mut beliefs: MultiBelief,
    panel: &ExpertPanel,
    selector: &dyn TaskSelector,
    oracle: &mut dyn AnswerOracle,
    config: &HcConfig,
    rng: &mut dyn RngCore,
    sink: &mut dyn TelemetrySink,
) -> Result<HcOutcome> {
    let mut observer = |_: &MultiBelief, _: &RoundRecord| {};
    run_hc_costed_with_telemetry(
        &mut beliefs,
        panel,
        selector,
        oracle,
        config,
        &UnitCost,
        rng,
        &mut observer,
        sink,
    )
    .map(|(rounds, spent)| HcOutcome {
        beliefs,
        rounds,
        budget_spent: spent,
    })
}

/// The full loop with an explicit [`CostModel`] (§III-D extension).
#[allow(clippy::too_many_arguments)]
pub fn run_hc_costed(
    beliefs: &mut MultiBelief,
    panel: &ExpertPanel,
    selector: &dyn TaskSelector,
    oracle: &mut dyn AnswerOracle,
    config: &HcConfig,
    costs: &dyn CostModel,
    rng: &mut dyn RngCore,
    observer: &mut dyn FnMut(&MultiBelief, &RoundRecord),
) -> Result<(Vec<RoundRecord>, u64)> {
    run_hc_costed_with_telemetry(
        beliefs, panel, selector, oracle, config, costs, rng, observer, &mut NullSink,
    )
}

/// [`run_hc_costed`] plus telemetry: every phase of the loop emits into
/// `sink` (gated on [`TelemetrySink::enabled`], so a [`NullSink`] run
/// constructs no events).
///
/// Since the crash-safety refactor this is a thin driver over the
/// [`crate::session::HcSession`] state machine — one `step` per loop
/// phase, no checkpointing. Callers that want checkpoint/resume drive
/// the session directly.
#[allow(clippy::too_many_arguments)]
pub fn run_hc_costed_with_telemetry(
    beliefs: &mut MultiBelief,
    panel: &ExpertPanel,
    selector: &dyn TaskSelector,
    oracle: &mut dyn AnswerOracle,
    config: &HcConfig,
    costs: &dyn CostModel,
    rng: &mut dyn RngCore,
    observer: &mut dyn FnMut(&MultiBelief, &RoundRecord),
    sink: &mut dyn TelemetrySink,
) -> Result<(Vec<RoundRecord>, u64)> {
    if panel.is_empty() {
        return Err(crate::error::HcError::EmptyCrowd);
    }
    // Move the beliefs into the session for the duration of the run;
    // they come back (partially updated on error, exactly as the
    // pre-session loop behaved) via `into_parts`.
    let owned = std::mem::replace(beliefs, MultiBelief::new(Vec::new()));
    let mut session =
        crate::session::HcSession::start(owned, panel.clone(), config.clone(), selector, costs)
            .expect("panel verified non-empty above");
    let mut env = crate::session::SessionEnv {
        oracle,
        rng,
        sink,
        observer,
    };
    let result = session.run_to_completion(&mut env);
    let (final_beliefs, rounds, spent) = session.into_parts();
    *beliefs = final_beliefs;
    result.map(|_| (rounds, spent))
}

/// Sends `queries` to every expert, groups answers per task, and applies
/// the Bayes update (Equation (23)) — one round's lines 5–6 of
/// Algorithm 3.
///
/// Every attempt may fail ([`AnswerOutcome`]); the update conditions
/// only on the answers that arrived (missing answers are marginalised
/// out, so a fully-absent round is a no-op on the belief). The returned
/// [`RoundDelivery`] reports how many answers each worker actually
/// delivered so the caller can charge budget accordingly.
pub fn apply_round(
    beliefs: &mut MultiBelief,
    panel: &ExpertPanel,
    queries: &[GlobalFact],
    oracle: &mut dyn AnswerOracle,
) -> Result<RoundDelivery> {
    apply_round_with_telemetry(beliefs, panel, queries, oracle, 0, 1, &mut NullSink)
        .map(|(delivery, _)| delivery)
}

/// [`apply_round`] that also records each dispatch and its final
/// outcome as telemetry for round number `round`.
///
/// This is the *only* emitter of `QueryDispatched` and the
/// delivery/timeout/drop events — lower layers (platform retries, fault
/// injection) emit their own distinct event kinds — so every dispatch
/// is closed by exactly one delivery event regardless of how many
/// internal attempts the oracle made. Query `queries[i]` carries the
/// causal id `first_query_id + i` (shared by every panel worker
/// answering it), announced to the oracle via
/// [`AnswerOracle::begin_dispatch`] before each attempt.
///
/// Alongside the delivery report, returns the round's aggregated
/// [`UpdateHealth`] (worst-case across the per-task Bayes updates) for
/// the `NumericalHealth` telemetry event.
pub fn apply_round_with_telemetry(
    beliefs: &mut MultiBelief,
    panel: &ExpertPanel,
    queries: &[GlobalFact],
    oracle: &mut dyn AnswerOracle,
    round: usize,
    first_query_id: u64,
    sink: &mut dyn TelemetrySink,
) -> Result<(RoundDelivery, UpdateHealth)> {
    let mut health = UpdateHealth::identity();
    let mut per_worker = vec![0usize; panel.len()];
    // Group query facts (with their causal ids) per task, preserving order.
    let mut per_task: Vec<(usize, Vec<(FactId, u64)>)> = Vec::new();
    for (idx, gf) in queries.iter().enumerate() {
        let qid = first_query_id + idx as u64;
        match per_task.iter_mut().find(|(t, _)| *t == gf.task) {
            Some((_, facts)) => facts.push((gf.fact, qid)),
            None => per_task.push((gf.task, vec![(gf.fact, qid)])),
        }
    }
    for (task, facts) in per_task {
        let num_facts = beliefs.tasks()[task].num_facts();
        let query_set = QuerySet::new(facts.iter().map(|&(f, _)| f).collect(), num_facts)?;
        let mut sets: Vec<PartialAnswerSet> = Vec::with_capacity(panel.len());
        for (w_idx, w) in panel.workers().iter().enumerate() {
            let outcomes: Vec<AnswerOutcome> = facts
                .iter()
                .map(|&(f, qid)| {
                    if sink.enabled() {
                        sink.record(&TelemetryEvent::QueryDispatched {
                            round,
                            task,
                            fact: f.0,
                            worker: w.id.0,
                            query_id: qid,
                        });
                    }
                    oracle.begin_dispatch(qid);
                    let outcome = oracle.answer(w, GlobalFact { task, fact: f });
                    if sink.enabled() {
                        sink.record(&match outcome {
                            AnswerOutcome::Answered(a) => TelemetryEvent::AnswerDelivered {
                                round,
                                task,
                                fact: f.0,
                                worker: w.id.0,
                                query_id: qid,
                                answer: a.as_bool(),
                            },
                            AnswerOutcome::TimedOut => TelemetryEvent::AnswerTimedOut {
                                round,
                                task,
                                fact: f.0,
                                worker: w.id.0,
                                query_id: qid,
                            },
                            AnswerOutcome::Dropped => TelemetryEvent::AnswerDropped {
                                round,
                                task,
                                fact: f.0,
                                worker: w.id.0,
                                query_id: qid,
                            },
                        });
                    }
                    outcome
                })
                .collect();
            let set = PartialAnswerSet::new(&outcomes);
            per_worker[w_idx] += set.answered_count() as usize;
            sets.push(set);
        }
        let family = PartialAnswerFamily::new(sets);
        let task_health =
            update_with_partial_family(&mut beliefs.tasks_mut()[task], &query_set, panel, &family)?;
        health.merge(&task_health);
    }
    let delivered = per_worker.iter().sum();
    Ok((
        RoundDelivery {
            requested: queries.len() * panel.len(),
            delivered,
            per_worker,
        },
        health,
    ))
}

/// Sequential multi-tier checking (§III-D): the belief is checked by each
/// tier's panel in turn, each with its own budget share.
///
/// For single-expert tiers this is provably equivalent to merging all
/// tiers into one panel (the special case the paper cites from \[24\]);
/// `tests/multi_tier.rs` exercises that equivalence.
pub fn run_multi_tier(
    mut beliefs: MultiBelief,
    tiers: &[(ExpertPanel, u64)],
    selector: &dyn TaskSelector,
    oracle: &mut dyn AnswerOracle,
    k: usize,
    rng: &mut dyn RngCore,
) -> Result<HcOutcome> {
    let mut all_rounds = Vec::new();
    let mut total_spent = 0;
    for (panel, budget) in tiers {
        let config = HcConfig::new(k, *budget);
        let mut observer = |_: &MultiBelief, _: &RoundRecord| {};
        let (mut rounds, spent) = run_hc_costed(
            &mut beliefs,
            panel,
            selector,
            oracle,
            &config,
            &UnitCost,
            rng,
            &mut observer,
        )?;
        for r in &mut rounds {
            r.budget_spent += total_spent;
        }
        total_spent += spent;
        all_rounds.extend(rounds);
    }
    Ok(HcOutcome {
        beliefs,
        rounds: all_rounds,
        budget_spent: total_spent,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::answer::Answer;
    use crate::belief::Belief;
    use crate::selection::GreedySelector;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Oracle that always answers according to a fixed ground truth.
    struct TruthfulOracle {
        truths: Vec<Vec<bool>>,
    }

    impl AnswerOracle for TruthfulOracle {
        fn answer(&mut self, _worker: &Worker, fact: GlobalFact) -> AnswerOutcome {
            Answer::from_bool(self.truths[fact.task][fact.fact.index()]).into()
        }
    }

    /// Oracle that always lies.
    struct LyingOracle {
        truths: Vec<Vec<bool>>,
    }

    impl AnswerOracle for LyingOracle {
        fn answer(&mut self, _worker: &Worker, fact: GlobalFact) -> AnswerOutcome {
            Answer::from_bool(!self.truths[fact.task][fact.fact.index()]).into()
        }
    }

    /// Oracle whose crowd never responds (100% dropout).
    struct DroppedOracle {
        attempts: usize,
    }

    impl AnswerOracle for DroppedOracle {
        fn answer(&mut self, _worker: &Worker, _fact: GlobalFact) -> AnswerOutcome {
            self.attempts += 1;
            AnswerOutcome::Dropped
        }
    }

    /// Oracle where one worker (id 1) is permanently offline and the
    /// rest answer truthfully.
    struct OneWorkerDown {
        truths: Vec<Vec<bool>>,
    }

    impl AnswerOracle for OneWorkerDown {
        fn answer(&mut self, worker: &Worker, fact: GlobalFact) -> AnswerOutcome {
            if worker.id.0 == 1 {
                AnswerOutcome::TimedOut
            } else {
                Answer::from_bool(self.truths[fact.task][fact.fact.index()]).into()
            }
        }
    }

    fn setup() -> (MultiBelief, ExpertPanel, Vec<Vec<bool>>) {
        let beliefs = MultiBelief::new(vec![
            Belief::from_marginals(&[0.6, 0.45, 0.7]).unwrap(),
            Belief::from_marginals(&[0.55, 0.52]).unwrap(),
        ]);
        let panel = ExpertPanel::from_accuracies(&[0.9, 0.85]).unwrap();
        let truths = vec![vec![true, false, true], vec![false, true]];
        (beliefs, panel, truths)
    }

    #[test]
    fn loop_improves_quality_and_respects_budget() {
        let (beliefs, panel, truths) = setup();
        let q0 = beliefs.quality();
        let mut oracle = TruthfulOracle { truths };
        let mut rng = StdRng::seed_from_u64(1);
        let outcome = run_hc(
            beliefs,
            &panel,
            &GreedySelector::new(),
            &mut oracle,
            &HcConfig::new(1, 10),
            &mut rng,
        )
        .unwrap();
        assert!(outcome.quality() > q0, "checking must improve quality");
        assert!(outcome.budget_spent <= 10);
        // Each round of k=1 with 2 experts costs 2.
        assert!(outcome.rounds.iter().all(|r| r.budget_spent % 2 == 0));
    }

    #[test]
    fn truthful_experts_recover_ground_truth() {
        let (beliefs, panel, truths) = setup();
        let mut oracle = TruthfulOracle {
            truths: truths.clone(),
        };
        let mut rng = StdRng::seed_from_u64(2);
        let outcome = run_hc(
            beliefs,
            &panel,
            &GreedySelector::new(),
            &mut oracle,
            &HcConfig::new(2, 200),
            &mut rng,
        )
        .unwrap();
        assert_eq!(outcome.labels(), truths);
    }

    #[test]
    fn budget_zero_runs_no_rounds() {
        let (beliefs, panel, truths) = setup();
        let before = beliefs.clone();
        let mut oracle = TruthfulOracle { truths };
        let mut rng = StdRng::seed_from_u64(3);
        let outcome = run_hc(
            beliefs,
            &panel,
            &GreedySelector::new(),
            &mut oracle,
            &HcConfig::new(1, 0),
            &mut rng,
        )
        .unwrap();
        assert!(outcome.rounds.is_empty());
        assert_eq!(outcome.budget_spent, 0);
        assert_eq!(outcome.beliefs, before);
    }

    #[test]
    fn budget_smaller_than_panel_cost_runs_no_rounds() {
        let (beliefs, panel, truths) = setup();
        let mut oracle = TruthfulOracle { truths };
        let mut rng = StdRng::seed_from_u64(3);
        // Panel of 2, budget 1: cannot afford a single query.
        let outcome = run_hc(
            beliefs,
            &panel,
            &GreedySelector::new(),
            &mut oracle,
            &HcConfig::new(1, 1),
            &mut rng,
        )
        .unwrap();
        assert!(outcome.rounds.is_empty());
    }

    #[test]
    fn k_is_clamped_to_affordable_queries() {
        let (beliefs, panel, truths) = setup();
        let mut oracle = TruthfulOracle { truths };
        let mut rng = StdRng::seed_from_u64(4);
        // Budget 6 with |CE|=2 affords 3 answersets; k=5 must clamp to 3.
        let outcome = run_hc(
            beliefs,
            &panel,
            &GreedySelector::new(),
            &mut oracle,
            &HcConfig::new(5, 6),
            &mut rng,
        )
        .unwrap();
        assert_eq!(outcome.rounds.len(), 1);
        assert_eq!(outcome.rounds[0].queries.len(), 3);
        assert_eq!(outcome.budget_spent, 6);
    }

    #[test]
    fn max_rounds_caps_the_loop() {
        let (beliefs, panel, truths) = setup();
        let mut oracle = TruthfulOracle { truths };
        let mut rng = StdRng::seed_from_u64(5);
        let mut config = HcConfig::new(1, 1_000);
        config.max_rounds = Some(3);
        let outcome = run_hc(
            beliefs,
            &panel,
            &GreedySelector::new(),
            &mut oracle,
            &config,
            &mut rng,
        )
        .unwrap();
        assert!(outcome.rounds.len() <= 3);
    }

    #[test]
    fn observer_sees_every_round() {
        let (beliefs, panel, truths) = setup();
        let mut oracle = TruthfulOracle { truths };
        let mut rng = StdRng::seed_from_u64(6);
        let mut seen = Vec::new();
        let outcome = run_hc_with_observer(
            beliefs,
            &panel,
            &GreedySelector::new(),
            &mut oracle,
            &HcConfig::new(1, 8),
            &mut rng,
            |_, rec| seen.push(rec.round),
        )
        .unwrap();
        assert_eq!(seen.len(), outcome.rounds.len());
        assert_eq!(seen, (1..=seen.len()).collect::<Vec<_>>());
    }

    #[test]
    fn empty_panel_is_an_error() {
        let (beliefs, _, truths) = setup();
        let mut oracle = TruthfulOracle { truths };
        let mut rng = StdRng::seed_from_u64(7);
        let res = run_hc(
            beliefs,
            &ExpertPanel::new(vec![]),
            &GreedySelector::new(),
            &mut oracle,
            &HcConfig::new(1, 10),
            &mut rng,
        );
        assert!(res.is_err());
    }

    #[test]
    fn accuracy_cost_charges_premium() {
        let cheap = Worker::new(0, 0.5).unwrap();
        let pricey = Worker::new(1, 1.0).unwrap();
        let model = AccuracyCost { base: 2, scale: 10 };
        assert_eq!(model.cost(&cheap), 2);
        assert_eq!(model.cost(&pricey), 12);
    }

    #[test]
    fn costed_loop_consumes_budget_faster_with_expensive_experts() {
        let (beliefs, panel, truths) = setup();
        let mut oracle = TruthfulOracle {
            truths: truths.clone(),
        };
        let mut rng = StdRng::seed_from_u64(8);
        let config = HcConfig::new(1, 20);
        let mut b1 = beliefs.clone();
        let mut obs = |_: &MultiBelief, _: &RoundRecord| {};
        let (unit_rounds, _) = run_hc_costed(
            &mut b1,
            &panel,
            &GreedySelector::new(),
            &mut oracle,
            &config,
            &UnitCost,
            &mut rng,
            &mut obs,
        )
        .unwrap();
        let mut oracle2 = TruthfulOracle { truths };
        let mut b2 = beliefs.clone();
        let (costed_rounds, _) = run_hc_costed(
            &mut b2,
            &panel,
            &GreedySelector::new(),
            &mut oracle2,
            &config,
            &AccuracyCost { base: 1, scale: 4 },
            &mut rng,
            &mut obs,
        )
        .unwrap();
        assert!(costed_rounds.len() < unit_rounds.len());
    }

    #[test]
    fn lying_experts_hurt_but_do_not_crash() {
        let (beliefs, panel, truths) = setup();
        let mut oracle = LyingOracle {
            truths: truths.clone(),
        };
        let mut rng = StdRng::seed_from_u64(9);
        let outcome = run_hc(
            beliefs,
            &panel,
            &GreedySelector::new(),
            &mut oracle,
            &HcConfig::new(1, 30),
            &mut rng,
        )
        .unwrap();
        // Labels should be mostly wrong, but the loop must stay well-formed.
        for belief in outcome.beliefs.tasks() {
            assert!((belief.probs().iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
        let flat_labels: Vec<bool> = outcome.labels().concat();
        let flat_truth: Vec<bool> = truths.concat();
        let correct = flat_labels
            .iter()
            .zip(&flat_truth)
            .filter(|(a, b)| a == b)
            .count();
        assert!(correct < flat_truth.len(), "liars should flip some labels");
    }

    #[test]
    fn k_schedule_fixed_returns_base() {
        let beliefs = MultiBelief::new(vec![Belief::uniform(3).unwrap()]);
        assert_eq!(KSchedule::Fixed.round_k(4, 10, 100, &beliefs), 4);
    }

    #[test]
    fn k_schedule_linear_decay_interpolates() {
        let beliefs = MultiBelief::new(vec![Belief::uniform(3).unwrap()]);
        let sched = KSchedule::LinearDecay { end: 1 };
        assert_eq!(sched.round_k(5, 0, 100, &beliefs), 5);
        assert_eq!(sched.round_k(5, 50, 100, &beliefs), 3);
        assert_eq!(sched.round_k(5, 100, 100, &beliefs), 1);
        // Degenerate budget and end >= base.
        assert_eq!(sched.round_k(5, 0, 0, &beliefs), 5);
        assert_eq!(KSchedule::LinearDecay { end: 7 }.round_k(5, 50, 100, &beliefs), 5);
    }

    #[test]
    fn k_schedule_entropy_adaptive_tracks_uncertainty() {
        let uncertain = MultiBelief::new(vec![Belief::uniform(4).unwrap()]);
        let certain = MultiBelief::new(vec![Belief::point_mass(
            4,
            crate::observation::Observation(3),
        )
        .unwrap()]);
        let sched = KSchedule::EntropyAdaptive {
            nats_per_query: 1.0,
            max: 3,
        };
        assert_eq!(sched.round_k(1, 0, 100, &uncertain), 3, "capped at max");
        assert_eq!(sched.round_k(1, 0, 100, &certain), 1, "floor of 1");
    }

    #[test]
    fn scheduled_loop_uses_fewer_rounds_with_decay() {
        let (beliefs, panel, truths) = setup();
        let run = |schedule: KSchedule| {
            let mut oracle = TruthfulOracle {
                truths: truths.clone(),
            };
            let mut rng = StdRng::seed_from_u64(21);
            let mut config = HcConfig::new(3, 20);
            config.k_schedule = schedule;
            run_hc(
                beliefs.clone(),
                &panel,
                &GreedySelector::new(),
                &mut oracle,
                &config,
                &mut rng,
            )
            .unwrap()
        };
        let decayed = run(KSchedule::LinearDecay { end: 1 });
        let fixed_k1 = {
            let mut oracle = TruthfulOracle {
                truths: truths.clone(),
            };
            let mut rng = StdRng::seed_from_u64(21);
            run_hc(
                beliefs.clone(),
                &panel,
                &GreedySelector::new(),
                &mut oracle,
                &HcConfig::new(1, 20),
                &mut rng,
            )
            .unwrap()
        };
        // Decay starts with k=3 batches, so it needs fewer rounds than
        // constant k=1 at the same budget.
        assert!(decayed.rounds.len() < fixed_k1.rounds.len());
    }

    #[test]
    fn multi_tier_runs_each_tier() {
        let (beliefs, _, truths) = setup();
        let tier1 = ExpertPanel::from_accuracies(&[0.85]).unwrap();
        let tier2 = ExpertPanel::from_accuracies(&[0.97]).unwrap();
        let mut oracle = TruthfulOracle { truths };
        let mut rng = StdRng::seed_from_u64(10);
        let outcome = run_multi_tier(
            beliefs,
            &[(tier1, 4), (tier2, 4)],
            &GreedySelector::new(),
            &mut oracle,
            1,
            &mut rng,
        )
        .unwrap();
        assert_eq!(outcome.budget_spent, 8);
        // budget_spent in the trace is cumulative across tiers.
        let spends: Vec<u64> = outcome.rounds.iter().map(|r| r.budget_spent).collect();
        assert!(spends.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn fully_dropped_crowd_spends_nothing_and_terminates() {
        let (beliefs, panel, _) = setup();
        let before = beliefs.clone();
        let mut oracle = DroppedOracle { attempts: 0 };
        let mut rng = StdRng::seed_from_u64(11);
        let config = HcConfig::new(2, 100);
        let outcome = run_hc(
            beliefs,
            &panel,
            &GreedySelector::new(),
            &mut oracle,
            &config,
            &mut rng,
        )
        .unwrap();
        assert_eq!(outcome.budget_spent, 0, "no delivered answer, no charge");
        assert_eq!(outcome.beliefs, before, "belief unchanged by absent answers");
        assert!(
            outcome.rounds.len() <= config.max_dry_rounds,
            "dry-round guard must bound the loop"
        );
        assert!(oracle.attempts > 0, "dispatches were attempted");
        assert!(outcome
            .rounds
            .iter()
            .all(|r| r.answers_received == 0 && r.answers_requested > 0));
    }

    #[test]
    fn partial_delivery_charges_only_delivered_answers() {
        let (beliefs, panel, truths) = setup();
        let q0 = beliefs.quality();
        let mut oracle = OneWorkerDown { truths };
        let mut rng = StdRng::seed_from_u64(12);
        let outcome = run_hc(
            beliefs,
            &panel,
            &GreedySelector::new(),
            &mut oracle,
            &HcConfig::new(1, 10),
            &mut rng,
        )
        .unwrap();
        // Panel of 2 with worker 1 down: each k=1 round requests 2
        // answers, delivers 1, and costs 1 under UnitCost.
        for r in &outcome.rounds {
            assert_eq!(r.answers_requested, 2);
            assert_eq!(r.answers_received, 1);
        }
        assert_eq!(
            outcome.budget_spent,
            outcome.rounds.len() as u64,
            "only delivered answers are charged"
        );
        assert!(
            outcome.quality() > q0,
            "the surviving worker's answers still update the belief"
        );
        for belief in outcome.beliefs.tasks() {
            assert!((belief.probs().iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn dry_round_guard_resets_after_a_delivered_answer() {
        // A crowd that alternates dead/alive rounds never accumulates
        // max_dry_rounds consecutive dry rounds, so the budget check
        // terminates the loop instead.
        struct AlternatingOracle {
            truths: Vec<Vec<bool>>,
            calls: usize,
            round_len: usize,
        }
        impl AnswerOracle for AlternatingOracle {
            fn answer(&mut self, _worker: &Worker, fact: GlobalFact) -> AnswerOutcome {
                let round = self.calls / self.round_len;
                self.calls += 1;
                if round % 2 == 0 {
                    AnswerOutcome::Dropped
                } else {
                    Answer::from_bool(self.truths[fact.task][fact.fact.index()]).into()
                }
            }
        }
        let (beliefs, panel, truths) = setup();
        let mut oracle = AlternatingOracle {
            truths,
            calls: 0,
            round_len: panel.len(), // k=1 → panel.len() attempts per round
        };
        let mut rng = StdRng::seed_from_u64(13);
        let outcome = run_hc(
            beliefs,
            &panel,
            &GreedySelector::new(),
            &mut oracle,
            &HcConfig::new(1, 8),
            &mut rng,
        )
        .unwrap();
        // Half the rounds deliver; the loop must outlive max_dry_rounds.
        assert!(outcome.rounds.len() > default_max_dry_rounds());
        assert_eq!(outcome.budget_spent, 8, "alive rounds drain the budget");
    }
}
