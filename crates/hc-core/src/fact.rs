//! Facts and fact sets (§II-A).
//!
//! A *fact* is a binary proposition "data instance `e` should be labeled
//! `l`". Both labeling tasks (for preliminary workers) and checking tasks
//! (for experts) are Yes/No queries about facts, so the fact is the single
//! unit of work in the whole framework. Multi-label tasks are decomposed
//! into one fact per candidate label upstream (see `hc-data::group`).

use crate::error::{HcError, Result};
use serde::{Deserialize, Serialize};

/// Index of a fact within a task's [`FactSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FactId(pub u32);

impl FactId {
    /// Zero-based index into the owning fact set.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A named binary fact.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Fact {
    /// Index within the owning [`FactSet`].
    pub id: FactId,
    /// Human-readable description, e.g. `"tweet #17 is positive"`.
    pub description: String,
}

/// An ordered set of correlated binary facts `F = {f_1, …, f_n}` forming
/// one task's query space.
///
/// The joint truth-value distribution over a fact set is the task's
/// [`crate::belief::Belief`]; the two types always agree on `len()`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FactSet {
    facts: Vec<Fact>,
}

impl FactSet {
    /// Builds a fact set from descriptions; ids are assigned sequentially.
    ///
    /// # Errors
    ///
    /// Returns [`HcError::EmptyFactSet`] for zero facts and
    /// [`HcError::TooManyFacts`] beyond [`crate::belief::SPARSE_MAX_FACTS`]
    /// (groups past the dense limit [`crate::belief::MAX_FACTS`] are
    /// tracked with the sparse belief representation).
    pub fn new<S: Into<String>>(descriptions: Vec<S>) -> Result<Self> {
        if descriptions.is_empty() {
            return Err(HcError::EmptyFactSet);
        }
        if descriptions.len() > crate::belief::SPARSE_MAX_FACTS {
            return Err(HcError::TooManyFacts(descriptions.len()));
        }
        let facts = descriptions
            .into_iter()
            .enumerate()
            .map(|(i, d)| Fact {
                id: FactId(i as u32),
                description: d.into(),
            })
            .collect();
        Ok(FactSet { facts })
    }

    /// A fact set with `n` anonymous facts (`f_0 … f_{n-1}`), convenient
    /// for synthetic workloads and tests.
    pub fn anonymous(n: usize) -> Result<Self> {
        FactSet::new((0..n).map(|i| format!("f{i}")).collect())
    }

    /// Number of facts `n`.
    #[inline]
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// Whether the set is empty (never true for a constructed set).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }

    /// The facts in id order.
    #[inline]
    pub fn facts(&self) -> &[Fact] {
        &self.facts
    }

    /// Looks up a fact by id.
    pub fn get(&self, id: FactId) -> Option<&Fact> {
        self.facts.get(id.index())
    }

    /// Iterator over all fact ids, in order.
    pub fn ids(&self) -> impl Iterator<Item = FactId> + '_ {
        (0..self.facts.len() as u32).map(FactId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_ids() {
        let fs = FactSet::new(vec!["a", "b", "c"]).unwrap();
        assert_eq!(fs.len(), 3);
        let ids: Vec<u32> = fs.ids().map(|f| f.0).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        assert_eq!(fs.get(FactId(1)).unwrap().description, "b");
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(
            FactSet::new(Vec::<String>::new()),
            Err(HcError::EmptyFactSet)
        );
    }

    #[test]
    fn rejects_oversized() {
        let descriptions: Vec<String> = (0..100).map(|i| format!("f{i}")).collect();
        assert!(matches!(
            FactSet::new(descriptions),
            Err(HcError::TooManyFacts(100))
        ));
    }

    #[test]
    fn anonymous_names() {
        let fs = FactSet::anonymous(2).unwrap();
        assert_eq!(fs.facts()[0].description, "f0");
        assert_eq!(fs.facts()[1].description, "f1");
    }

    #[test]
    fn get_out_of_range_is_none() {
        let fs = FactSet::anonymous(2).unwrap();
        assert!(fs.get(FactId(2)).is_none());
    }
}
