//! Corpus-scale scheduling: many independent HC loops under one
//! checking budget, allocated across groups by global marginal entropy
//! gain.
//!
//! The paper's Algorithm 3 spends a budget greedily *within* one
//! correlated fact group. A production labeling system faces a corpus
//! of thousands of independent groups competing for a single budget,
//! which turns allocation into a cross-group knapsack: at every step,
//! spend the next round of checking on whichever group buys the most
//! entropy. [`CorpusScheduler`] implements that as a CELF-style
//! lazy-greedy layered on top of the per-group greedy selector.
//!
//! # Why the lazy heap is exact
//!
//! Each heap entry carries the gain a group's *next* round was last
//! scored at. Entries go stale two ways: the group itself advanced
//! (its own epoch bumped), or — in [`CorpusBudget::Pooled`] mode —
//! the shared pool shrank (the global pool epoch bumped). A stale
//! entry's recorded gain is still a valid **upper bound** on its fresh
//! gain:
//!
//! - Advancing a group only shrinks what its next round can buy —
//!   per-group marginal gains are non-increasing along the greedy path
//!   (the submodularity argument behind the within-group selector, see
//!   `DESIGN.md`).
//! - A smaller pool can only shrink the previewed round: every
//!   [`crate::hc::KSchedule`] variant is non-increasing in a shrinking
//!   budget view (`Fixed` is constant, `LinearDecay` decays with the
//!   spent fraction, `EntropyAdaptive` ignores the budget), and the
//!   affordability cap `remaining / panel_cost` obviously is. Fewer
//!   queries selected by a greedy prefix means no more gain.
//!
//! So when the popped maximum is stale, re-scoring it and re-inserting
//! cannot unfairly demote any other entry — their stale keys still
//! dominate their true values — and the first entry popped *fresh* is
//! the true argmax. That is exactly CELF's lazy evaluation, and it is
//! what the differential suite in `tests/corpus_conformance.rs` locks
//! against a brute-force "re-score everything every step" oracle.
//!
//! # Determinism contract
//!
//! The schedule is a pure function of the corpus and the budget mode:
//! ties in gain break toward the lowest group index, scoring previews
//! draw no RNG (see [`HcSession::preview_next_round`]), and the
//! parallel scoring fan-out uses [`crate::parallel::map_items`] whose
//! chunk boundaries are fixed regardless of thread count. Corpus runs
//! are therefore byte-identical at any `Parallelism`, and a scheduler
//! resumed from a [`CorpusScheduler::checkpoint_frame`] continues with
//! the exact schedule of an uninterrupted run: resume re-scores every
//! unfinished group fresh, and a fresh re-score picks the same argmax
//! the lazy heap would have (`tests/corpus_determinism.rs`).
//!
//! # Telemetry envelope
//!
//! Each scheduler step wraps the advanced group's session events in a
//! `GroupScheduled` … `GroupAdvanced`/`GroupFinished` segment, the
//! whole run in `CorpusStarted` … `CorpusFinished`. Concatenating one
//! group's segments yields that group's complete single-run trace;
//! `hc_telemetry::audit` demuxes and checks exactly that.

use std::collections::BinaryHeap;

use crate::belief::MultiBelief;
use crate::error::{HcError, Result};
use crate::hc::{AnswerOracle, CostModel, RoundRecord};
use crate::parallel;
use crate::selection::TaskSelector;
use crate::session::{
    HcSession, SessionEnv, SessionState, SessionStatus, SessionStep,
};
use hc_telemetry::json::{self, Json};
use hc_telemetry::{CheckpointFrame, TelemetryEvent, TelemetrySink};
use rand::RngCore;

/// Version tag of the corpus checkpoint payload.
pub const CORPUS_FORMAT_VERSION: u32 = 1;

/// The `kind` tag corpus checkpoints carry inside a
/// [`CheckpointFrame`].
pub const CORPUS_CHECKPOINT_KIND: &str = "hc-corpus";

/// How the corpus budget constrains the groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorpusBudget {
    /// One global pool shared by every group: before a group is
    /// advanced the scheduler lends it the whole remaining pool (see
    /// [`HcSession::lend_budget`]), so any group may spend whatever is
    /// left and the pool shrinks by what it actually spent.
    Pooled(u64),
    /// Every group keeps its own configured budget; the scheduler only
    /// decides *order*. Each group's posteriors, rounds, and telemetry
    /// substream are bit-identical to running it alone.
    PerGroup,
}

impl CorpusBudget {
    fn pooled(&self) -> bool {
        matches!(self, CorpusBudget::Pooled(_))
    }
}

/// The per-group collaborators a corpus run borrows: one oracle and
/// one loop RNG per group (indexes align with the scheduler's
/// sessions), a single shared telemetry sink, and a corpus-wide round
/// observer that also receives the group index.
pub struct CorpusEnv<'e> {
    /// Answer sources, one per group.
    pub oracles: Vec<&'e mut dyn AnswerOracle>,
    /// Loop RNGs, one per group (selector randomness; the default
    /// greedy selector draws nothing).
    pub rngs: Vec<&'e mut dyn RngCore>,
    /// Telemetry destination shared by the envelope and every group.
    pub sink: &'e mut dyn TelemetrySink,
    /// Invoked after each closed round as `(group, beliefs, record)`.
    pub observer: &'e mut dyn FnMut(usize, &MultiBelief, &RoundRecord),
}

/// Summary of a completed corpus run — the same numbers the closing
/// `CorpusFinished` event carries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorpusReport {
    /// Scheduler steps executed (group-rounds plus drain steps).
    pub steps: u64,
    /// Total budget spent across all groups.
    pub spent: u64,
    /// Groups that reached a terminal [`hc_telemetry::StopReason`].
    pub groups_finished: usize,
    /// Sum of the groups' final posterior entropies.
    pub entropy: f64,
}

/// A lazy-heap entry: the gain group `group` was last scored at, and
/// the epochs that scoring observed. `Ord` is by gain descending, ties
/// toward the lowest group index (so `BinaryHeap::pop` returns the
/// deterministic argmax).
#[derive(Debug, Clone, Copy)]
struct Entry {
    gain: f64,
    group: usize,
    epoch: u64,
    pool_epoch: u64,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.gain
            .total_cmp(&other.gain)
            .then_with(|| other.group.cmp(&self.group))
    }
}

/// Runs many independent [`HcSession`]s over a corpus, advancing one
/// group per step by global marginal entropy gain. See the module docs
/// for the allocation math and the determinism contract.
pub struct CorpusScheduler<'a> {
    sessions: Vec<HcSession<'a>>,
    budget: CorpusBudget,
    /// The corpus-wide budget at construction (pool size, or the sum
    /// of per-group remainders) — what `CorpusStarted` reports.
    budget_total: u64,
    /// Unspent pool (tracks `budget_total` minus deltas; equal to the
    /// per-group remainders' sum in [`CorpusBudget::PerGroup`] mode).
    pool_remaining: u64,
    steps: u64,
    started: bool,
    closed: bool,
    finished: Vec<bool>,
    /// Bumped when the group itself advances; entries scored under an
    /// older epoch are stale.
    epochs: Vec<u64>,
    /// Bumped when the shared pool shrinks (pooled mode only).
    pool_epoch: u64,
    heap: BinaryHeap<Entry>,
    heap_built: bool,
}

fn invalid(reason: String) -> HcError {
    HcError::InvalidCheckpoint { reason }
}

fn bad(what: &str) -> HcError {
    invalid(format!("corpus payload field `{what}` is missing or malformed"))
}

fn num(v: u64) -> Json {
    Json::Num(v as f64)
}

impl<'a> CorpusScheduler<'a> {
    /// Builds a scheduler over freshly started (or individually
    /// resumed) sessions. Sessions should stand at a round boundary;
    /// indexes into `sessions` are the group ids the telemetry
    /// envelope reports.
    pub fn new(sessions: Vec<HcSession<'a>>, budget: CorpusBudget) -> Self {
        let n = sessions.len();
        let budget_total = match budget {
            CorpusBudget::Pooled(b) => b,
            CorpusBudget::PerGroup => sessions.iter().map(|s| s.state().remaining).sum(),
        };
        CorpusScheduler {
            sessions,
            budget,
            budget_total,
            pool_remaining: budget_total,
            steps: 0,
            started: false,
            closed: false,
            finished: vec![false; n],
            epochs: vec![0; n],
            pool_epoch: 0,
            heap: BinaryHeap::with_capacity(n),
            heap_built: false,
        }
    }

    /// Number of groups.
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// True when the corpus holds no groups.
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// Read access to a group's session.
    pub fn session(&self, group: usize) -> &HcSession<'a> {
        &self.sessions[group]
    }

    /// Scheduler steps executed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Total budget spent across all groups.
    pub fn spent(&self) -> u64 {
        self.sessions.iter().map(|s| s.state().spent).sum()
    }

    /// The budget mode the scheduler was built with.
    pub fn budget(&self) -> CorpusBudget {
        self.budget
    }

    /// Unspent corpus budget: the shared pool in
    /// [`CorpusBudget::Pooled`] mode, or the sum of the groups' own
    /// remainders in [`CorpusBudget::PerGroup`] mode.
    pub fn budget_remaining(&self) -> u64 {
        match self.budget {
            CorpusBudget::Pooled(_) => self.pool_remaining,
            CorpusBudget::PerGroup => self.sessions.iter().map(|s| s.state().remaining).sum(),
        }
    }

    /// Groups that have reached a terminal stop reason.
    pub fn groups_finished(&self) -> usize {
        self.finished.iter().filter(|&&f| f).count()
    }

    /// True once every group has finished and `CorpusFinished` has
    /// been emitted.
    pub fn is_complete(&self) -> bool {
        self.closed
    }

    /// Sum of the groups' current posterior entropies.
    pub fn entropy(&self) -> f64 {
        self.sessions.iter().map(|s| s.state().beliefs.entropy()).sum()
    }

    /// Consumes the scheduler, yielding the sessions.
    pub fn into_sessions(self) -> Vec<HcSession<'a>> {
        self.sessions
    }

    /// Stores a group's oracle cursor so it rides along in the next
    /// [`CorpusScheduler::checkpoint_frame`].
    pub fn set_oracle_cursor(&mut self, group: usize, cursor: Option<String>) {
        self.sessions[group].set_oracle_cursor(cursor);
    }

    /// The budget view a scoring preview of `group` should see.
    fn remaining_view(&self, group: usize) -> u64 {
        match self.budget {
            CorpusBudget::Pooled(_) => self.pool_remaining,
            CorpusBudget::PerGroup => self.sessions[group].state().remaining,
        }
    }

    /// Fresh gain of `group`'s next round: the previewed entropy gain,
    /// or 0.0 when the next step would terminate the group (a "drain"
    /// entry — executed after all productive rounds so every group
    /// still emits its `RunFinished`).
    fn score(&self, group: usize) -> Result<f64> {
        Ok(self.sessions[group]
            .preview_next_round(self.remaining_view(group))?
            .map_or(0.0, |p| p.gain))
    }

    /// Scores every unfinished group and fills the heap. The fan-out
    /// runs through [`parallel::map_items`] with one group per chunk,
    /// so results are ordered and bit-identical at any thread count.
    fn build_heap(&mut self) -> Result<()> {
        let views: Vec<u64> = (0..self.sessions.len())
            .map(|g| self.remaining_view(g))
            .collect();
        let scored: Vec<Result<f64>> = {
            let sessions = &self.sessions;
            parallel::map_items(&views, |g, &view| {
                Ok(sessions[g].preview_next_round(view)?.map_or(0.0, |p| p.gain))
            })
        };
        self.heap.clear();
        for (g, gain) in scored.into_iter().enumerate() {
            if self.finished[g] {
                continue;
            }
            self.heap.push(Entry {
                gain: gain?,
                group: g,
                epoch: self.epochs[g],
                pool_epoch: self.pool_epoch,
            });
        }
        self.heap_built = true;
        Ok(())
    }

    /// Executes one scheduler step: pops the lazy heap until the
    /// maximum is fresh, advances that group one full round (or its
    /// terminal step), and re-inserts it unless it finished. Returns
    /// the advanced group, or `None` once the corpus is complete (the
    /// call that drains the last group also emits `CorpusFinished`).
    pub fn step_once(&mut self, env: &mut CorpusEnv<'_>) -> Result<Option<usize>> {
        if self.closed {
            return Ok(None);
        }
        if !self.started {
            if env.sink.enabled() {
                env.sink.record(&TelemetryEvent::CorpusStarted {
                    groups: self.sessions.len(),
                    facts: self
                        .sessions
                        .iter()
                        .map(|s| s.state().beliefs.total_facts())
                        .sum(),
                    budget: self.budget_total,
                    pooled: self.budget.pooled(),
                });
            }
            self.started = true;
        }
        if !self.heap_built {
            self.build_heap()?;
        }
        let entry = loop {
            let Some(e) = self.heap.pop() else { break None };
            if self.finished[e.group] {
                continue;
            }
            if e.epoch == self.epochs[e.group] && e.pool_epoch == self.pool_epoch {
                break Some(e);
            }
            // Stale: its key is an upper bound (see module docs), so
            // re-score and re-insert; the first fresh pop is the argmax.
            let gain = self.score(e.group)?;
            self.heap.push(Entry {
                gain,
                group: e.group,
                epoch: self.epochs[e.group],
                pool_epoch: self.pool_epoch,
            });
        };
        let Some(entry) = entry else {
            if env.sink.enabled() {
                env.sink.record(&TelemetryEvent::CorpusFinished {
                    steps: self.steps,
                    spent: self.spent(),
                    finished: self.groups_finished(),
                    entropy: self.entropy(),
                });
            }
            self.closed = true;
            return Ok(None);
        };

        let g = entry.group;
        let step = self.steps;
        self.steps += 1;
        if env.sink.enabled() {
            env.sink.record(&TelemetryEvent::GroupScheduled {
                group: g,
                step,
                gain: entry.gain,
            });
        }
        if self.budget.pooled() {
            self.sessions[g].lend_budget(self.pool_remaining);
        }
        let spent_before = self.sessions[g].state().spent;
        let status = {
            let CorpusEnv {
                oracles,
                rngs,
                sink,
                observer,
            } = &mut *env;
            let mut obs =
                |beliefs: &MultiBelief, record: &RoundRecord| (**observer)(g, beliefs, record);
            let mut senv = SessionEnv {
                oracle: &mut *oracles[g],
                rng: &mut *rngs[g],
                sink: &mut **sink,
                observer: &mut obs,
            };
            // One scheduling quantum is one full round: advance until
            // the session stands at the next round boundary (or ended).
            loop {
                let st = self.sessions[g].step(&mut senv)?;
                match st {
                    SessionStatus::Pending(SessionStep::SelectQueries) => break st,
                    SessionStatus::Finished(_) => break st,
                    _ => {}
                }
            }
        };
        let spent_after = self.sessions[g].state().spent;
        let delta = spent_after - spent_before;
        if self.budget.pooled() {
            self.pool_remaining = self.pool_remaining.saturating_sub(delta);
            if delta > 0 {
                // Every other entry's budget view shrank.
                self.pool_epoch += 1;
            }
        }
        self.epochs[g] += 1;
        let entropy = self.sessions[g].state().beliefs.entropy();
        match status {
            SessionStatus::Finished(reason) => {
                if env.sink.enabled() {
                    env.sink.record(&TelemetryEvent::GroupFinished {
                        group: g,
                        step,
                        reason,
                        spent: spent_after,
                        entropy,
                    });
                }
                self.finished[g] = true;
            }
            _ => {
                if env.sink.enabled() {
                    env.sink.record(&TelemetryEvent::GroupAdvanced {
                        group: g,
                        step,
                        round: self.sessions[g].state().round,
                        spent_delta: delta,
                        entropy,
                    });
                }
                let gain = self.score(g)?;
                self.heap.push(Entry {
                    gain,
                    group: g,
                    epoch: self.epochs[g],
                    pool_epoch: self.pool_epoch,
                });
            }
        }
        Ok(Some(g))
    }

    /// Drives [`CorpusScheduler::step_once`] until the corpus
    /// completes.
    pub fn run(&mut self, env: &mut CorpusEnv<'_>) -> Result<CorpusReport> {
        while self.step_once(env)?.is_some() {}
        Ok(CorpusReport {
            steps: self.steps,
            spent: self.spent(),
            groups_finished: self.groups_finished(),
            entropy: self.entropy(),
        })
    }

    /// Captures the whole corpus as a checkpoint frame. Call only
    /// between [`CorpusScheduler::step_once`] calls — that is the
    /// group-boundary guarantee: every session stands at a round
    /// boundary or is finished, so each group's payload round-trips
    /// through the ordinary session validation.
    pub fn checkpoint_frame(&self, seq: u64) -> CheckpointFrame {
        let mut obj = std::collections::BTreeMap::new();
        obj.insert("version".to_string(), num(u64::from(CORPUS_FORMAT_VERSION)));
        obj.insert("pooled".to_string(), Json::Bool(self.budget.pooled()));
        obj.insert("budget_total".to_string(), num(self.budget_total));
        obj.insert("pool_remaining".to_string(), num(self.pool_remaining));
        obj.insert("steps".to_string(), num(self.steps));
        obj.insert("started".to_string(), Json::Bool(self.started));
        obj.insert("closed".to_string(), Json::Bool(self.closed));
        obj.insert(
            "finished".to_string(),
            Json::Str(self.finished.iter().map(|&f| if f { '1' } else { '0' }).collect()),
        );
        obj.insert(
            "groups".to_string(),
            Json::Arr(self.sessions.iter().map(|s| s.state().to_json()).collect()),
        );
        CheckpointFrame::new(CORPUS_CHECKPOINT_KIND, seq, Json::Obj(obj).to_string())
    }

    /// Restores a scheduler from a [`CorpusScheduler::checkpoint_frame`].
    /// All-or-nothing like [`HcSession::resume`]; every group passes
    /// the full session validation. The heap is rebuilt by re-scoring
    /// every unfinished group fresh on the next step, which provably
    /// continues the uninterrupted schedule (module docs).
    pub fn from_frame(
        frame: &CheckpointFrame,
        selector: &'a dyn TaskSelector,
        costs: &'a dyn CostModel,
    ) -> Result<Self> {
        frame
            .expect_kind(CORPUS_CHECKPOINT_KIND)
            .map_err(|e| invalid(e.to_string()))?;
        let v = json::parse(&frame.payload)
            .map_err(|e| invalid(format!("corpus payload is not valid JSON: {e:?}")))?;
        let version = v.get("version").and_then(Json::as_u32).ok_or_else(|| bad("version"))?;
        if version != CORPUS_FORMAT_VERSION {
            return Err(invalid(format!(
                "unsupported corpus format version {version} (expected {CORPUS_FORMAT_VERSION})"
            )));
        }
        let pooled = v.get("pooled").and_then(Json::as_bool).ok_or_else(|| bad("pooled"))?;
        let budget_total = v
            .get("budget_total")
            .and_then(Json::as_u64)
            .ok_or_else(|| bad("budget_total"))?;
        let pool_remaining = v
            .get("pool_remaining")
            .and_then(Json::as_u64)
            .ok_or_else(|| bad("pool_remaining"))?;
        if pool_remaining > budget_total {
            return Err(invalid(format!(
                "pool remaining {pool_remaining} exceeds corpus budget {budget_total}"
            )));
        }
        let steps = v.get("steps").and_then(Json::as_u64).ok_or_else(|| bad("steps"))?;
        let started = v.get("started").and_then(Json::as_bool).ok_or_else(|| bad("started"))?;
        let closed = v.get("closed").and_then(Json::as_bool).ok_or_else(|| bad("closed"))?;
        let finished: Vec<bool> = v
            .get("finished")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("finished"))?
            .chars()
            .map(|c| match c {
                '0' => Ok(false),
                '1' => Ok(true),
                _ => Err(bad("finished")),
            })
            .collect::<Result<_>>()?;
        let groups = v
            .get("groups")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("groups"))?;
        if groups.len() != finished.len() {
            return Err(invalid(format!(
                "{} finished flags for {} groups",
                finished.len(),
                groups.len()
            )));
        }
        let mut sessions = Vec::with_capacity(groups.len());
        for (g, gv) in groups.iter().enumerate() {
            let state = SessionState::from_json(gv)
                .map_err(|e| invalid(format!("group {g}: {e}")))?;
            let session = HcSession::resume(state, selector, costs)
                .map_err(|e| invalid(format!("group {g}: {e}")))?;
            if !finished[g] && !matches!(session.status(), SessionStatus::Pending(_)) {
                return Err(invalid(format!(
                    "group {g} is finished but not flagged as such"
                )));
            }
            sessions.push(session);
        }
        let n = sessions.len();
        Ok(CorpusScheduler {
            sessions,
            budget: if pooled {
                CorpusBudget::Pooled(budget_total)
            } else {
                CorpusBudget::PerGroup
            },
            budget_total,
            pool_remaining,
            steps,
            started,
            closed,
            finished,
            epochs: vec![0; n],
            pool_epoch: 0,
            heap: BinaryHeap::with_capacity(n),
            heap_built: false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::answer::{Answer, AnswerOutcome};
    use crate::belief::{Belief, MultiBelief};
    use crate::hc::{HcConfig, UnitCost};
    use crate::selection::{GlobalFact, GreedySelector};
    use crate::worker::{ExpertPanel, Worker};
    use hc_telemetry::{RecordingSink, StopReason};

    /// Belief/loop state fans out across shard threads.
    #[test]
    fn session_state_is_send_and_static() {
        fn assert_send<T: Send + 'static>() {}
        assert_send::<SessionState>();
        fn assert_sync<T: Sync + ?Sized>() {}
        assert_sync::<HcSession<'_>>();
    }

    fn flat_group(n_facts: usize) -> MultiBelief {
        MultiBelief::new(vec![Belief::uniform(n_facts).unwrap()])
    }

    struct Truthful;
    impl AnswerOracle for Truthful {
        fn answer(&mut self, _worker: &Worker, _fact: GlobalFact) -> AnswerOutcome {
            AnswerOutcome::Answered(Answer::Yes)
        }
    }

    fn build<'a>(
        selector: &'a GreedySelector,
        costs: &'a UnitCost,
        sizes: &[usize],
        budget_each: u64,
    ) -> Vec<HcSession<'a>> {
        sizes
            .iter()
            .map(|&n| {
                HcSession::start(
                    flat_group(n),
                    ExpertPanel::from_accuracies(&[0.9]).unwrap(),
                    HcConfig::new(1, budget_each),
                    selector,
                    costs,
                )
                .unwrap()
            })
            .collect()
    }

    fn run_corpus(
        sizes: &[usize],
        budget: CorpusBudget,
        budget_each: u64,
    ) -> (CorpusReport, Vec<TelemetryEvent>) {
        let selector = GreedySelector::new();
        let costs = UnitCost;
        let sessions = build(&selector, &costs, sizes, budget_each);
        let n = sessions.len();
        let mut scheduler = CorpusScheduler::new(sessions, budget);
        let mut oracles: Vec<Truthful> = (0..n).map(|_| Truthful).collect();
        let mut rngs: Vec<rand::rngs::StdRng> = (0..n)
            .map(|g| <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(g as u64))
            .collect();
        let mut sink = RecordingSink::new();
        let mut observer = |_: usize, _: &MultiBelief, _: &RoundRecord| {};
        let report = {
            let mut env = CorpusEnv {
                oracles: oracles.iter_mut().map(|o| o as &mut dyn AnswerOracle).collect(),
                rngs: rngs.iter_mut().map(|r| r as &mut dyn RngCore).collect(),
                sink: &mut sink,
                observer: &mut observer,
            };
            scheduler.run(&mut env).unwrap()
        };
        assert!(scheduler.is_complete());
        (report, sink.into_events())
    }

    #[test]
    fn every_group_finishes_and_the_envelope_is_clean() {
        let (report, events) = run_corpus(&[2, 3, 2], CorpusBudget::Pooled(12), u64::MAX / 2);
        assert_eq!(report.groups_finished, 3);
        assert!(report.spent <= 12);
        let audit = hc_telemetry::audit(&events);
        assert!(audit.is_clean(), "{}", audit.render());
        let finished = events
            .iter()
            .filter(|e| matches!(e, TelemetryEvent::GroupFinished { .. }))
            .count();
        assert_eq!(finished, 3);
    }

    #[test]
    fn per_group_mode_is_clean_too() {
        let (report, events) = run_corpus(&[2, 2], CorpusBudget::PerGroup, 4);
        assert_eq!(report.groups_finished, 2);
        assert_eq!(report.spent, 8, "both groups exhaust their own budget");
        let audit = hc_telemetry::audit(&events);
        assert!(audit.is_clean(), "{}", audit.render());
    }

    #[test]
    fn empty_corpus_opens_and_closes() {
        let (report, events) = run_corpus(&[], CorpusBudget::Pooled(5), 5);
        assert_eq!(report.steps, 0);
        assert_eq!(report.groups_finished, 0);
        assert!(matches!(events.first(), Some(TelemetryEvent::CorpusStarted { groups: 0, .. })));
        assert!(matches!(events.last(), Some(TelemetryEvent::CorpusFinished { .. })));
    }

    #[test]
    fn pooled_run_never_overspends() {
        for pool in [1u64, 3, 7] {
            let (report, _) = run_corpus(&[3, 3], CorpusBudget::Pooled(pool), u64::MAX / 2);
            assert!(report.spent <= pool, "pool {pool} overspent: {}", report.spent);
            assert_eq!(report.groups_finished, 2, "pool {pool}");
        }
    }

    #[test]
    fn checkpoint_round_trips_between_any_two_steps() {
        let selector = GreedySelector::new();
        let costs = UnitCost;
        let sessions = build(&selector, &costs, &[2, 3], 100);
        let mut scheduler = CorpusScheduler::new(sessions, CorpusBudget::Pooled(6));
        let mut oracles = [Truthful, Truthful];
        let mut rngs: Vec<rand::rngs::StdRng> = (0..2)
            .map(|g| <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(g))
            .collect();
        let mut sink = hc_telemetry::NullSink;
        let mut observer = |_: usize, _: &MultiBelief, _: &RoundRecord| {};
        let mut env = CorpusEnv {
            oracles: oracles.iter_mut().map(|o| o as &mut dyn AnswerOracle).collect(),
            rngs: rngs.iter_mut().map(|r| r as &mut dyn RngCore).collect(),
            sink: &mut sink,
            observer: &mut observer,
        };
        let mut seq = 0;
        loop {
            let frame = scheduler.checkpoint_frame(seq);
            let restored = CorpusScheduler::from_frame(&frame, &selector, &costs).unwrap();
            assert_eq!(restored.steps(), scheduler.steps());
            assert_eq!(restored.spent(), scheduler.spent());
            assert_eq!(
                restored.checkpoint_frame(seq).payload,
                frame.payload,
                "checkpoint re-encodes byte-identically"
            );
            if scheduler.step_once(&mut env).unwrap().is_none() {
                break;
            }
            seq += 1;
        }
        assert!(scheduler.is_complete());
    }

    #[test]
    fn wrong_kind_frame_is_rejected() {
        let frame = CheckpointFrame::new("hc-session", 0, "{}".to_string());
        let selector = GreedySelector::new();
        let costs = UnitCost;
        assert!(matches!(
            CorpusScheduler::from_frame(&frame, &selector, &costs),
            Err(HcError::InvalidCheckpoint { .. })
        ));
    }

    #[test]
    fn finished_groups_emit_run_finished_with_a_reason() {
        let (_, events) = run_corpus(&[2], CorpusBudget::Pooled(3), u64::MAX / 2);
        let reasons: Vec<StopReason> = events
            .iter()
            .filter_map(|e| match e {
                TelemetryEvent::RunFinished { reason, .. } => Some(*reason),
                _ => None,
            })
            .collect();
        assert_eq!(reasons, vec![StopReason::BudgetExhausted]);
    }
}
