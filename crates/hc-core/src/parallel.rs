//! Deterministic data-parallel compute engine for the hot kernels.
//!
//! The greedy `(1 − 1/e)` checker spends almost all of its time in three
//! embarrassingly parallel loops: scoring candidate marginal gains,
//! summing answer-pattern distributions (`2^{k·m}` cells), and the Bayes
//! renormalisation over the `2^n` observation table. This module gives
//! those loops threads **without giving up bit-exact reproducibility**.
//!
//! # The determinism contract
//!
//! Floating-point addition is not associative, so a reduction's chunk
//! layout *is* its numerical contract. Every primitive here therefore:
//!
//! 1. splits the index space into chunks at **fixed boundaries** — a
//!    constant chunk length ([`CHUNK`], or per-call), never derived from
//!    the thread count or machine load;
//! 2. evaluates each chunk independently (possibly on scoped worker
//!    threads, possibly inline); and
//! 3. merges the per-chunk results **serially, in chunk order**.
//!
//! The thread count only decides *which OS thread evaluates which
//! chunk*; it can never change what is computed. Results — entropies,
//! gains, posteriors, tie-breaks, telemetry streams — are bit-identical
//! for any [`Parallelism`], including the serial fallback. The
//! conformance suite (`tests/determinism.rs`) pins this down by running
//! full HC loops at 1, 2, and 8 threads and asserting byte equality.
//!
//! Worker threads run with parallelism pinned to serial, so nested
//! kernels (a candidate gain evaluating an answer-family entropy) never
//! spawn threads of their own.

use serde::{Deserialize, Serialize};
use std::cell::Cell;
use std::ops::Range;
use std::sync::OnceLock;

/// Environment variable overriding the auto-detected thread count
/// (`HC_THREADS=1` forces serial; CI runs the test suite under several
/// values to enforce the determinism contract).
pub const THREADS_ENV: &str = "HC_THREADS";

/// Fixed chunk length for wide table reductions (`2^n` belief tables,
/// `2^{k·m}` answer-pattern tables). Part of the numerical contract:
/// changing it changes the association order of chunked sums.
pub const CHUNK: usize = 4096;

/// Thread-count policy for the deterministic compute engine.
///
/// Threaded through [`crate::hc::HcConfig`] into the checking loop, or
/// installed for a lexical scope with [`scoped`]. Whatever the policy,
/// results are bit-identical — see the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Parallelism {
    /// Inherit the enclosing [`scoped`] policy when one is installed
    /// (so an `Auto` [`crate::hc::HcConfig`] respects a CLI-level
    /// `--threads` scope); at top level, use [`THREADS_ENV`] when set,
    /// otherwise [`std::thread::available_parallelism`]. The default.
    #[default]
    Auto,
    /// Never spawn worker threads.
    Serial,
    /// Exactly this many threads (clamped to ≥ 1).
    Threads(usize),
}

impl Parallelism {
    /// The concrete thread count this policy resolves to (≥ 1).
    pub fn effective_threads(self) -> usize {
        match self {
            Parallelism::Serial => 1,
            Parallelism::Threads(n) => n.max(1),
            Parallelism::Auto => auto_threads(),
        }
    }
}

/// `Auto`'s resolution: env override, else available parallelism.
/// Cached for the process lifetime.
fn auto_threads() -> usize {
    static AUTO: OnceLock<usize> = OnceLock::new();
    *AUTO.get_or_init(|| {
        if let Ok(v) = std::env::var(THREADS_ENV) {
            if let Ok(n) = v.trim().parse::<usize>() {
                return n.max(1);
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

thread_local! {
    /// Per-thread override of the effective thread count; 0 = unset
    /// (fall back to [`auto_threads`]).
    static CURRENT: Cell<usize> = const { Cell::new(0) };
    /// Kernel nesting depth on this thread. The `chunks_dispatched`
    /// work counter must count *top-level* kernel invocations only:
    /// a serial run executes nested kernels inline on the coordinating
    /// thread (where timing is enabled) while a threaded run executes
    /// them on workers (where it never is), so counting nested calls
    /// would make the counter depend on the thread policy.
    static KERNEL_DEPTH: Cell<usize> = const { Cell::new(0) };
}

/// Bumps this thread's kernel depth; counts the dispatch at top level.
struct KernelGuard {
    depth: usize,
}

impl KernelGuard {
    fn enter(n_chunks: usize) -> KernelGuard {
        let depth = KERNEL_DEPTH.with(Cell::get);
        if depth == 0 {
            hc_telemetry::timing::add(
                hc_telemetry::timing::Counter::ChunksDispatched,
                n_chunks as u64,
            );
        }
        KERNEL_DEPTH.with(|d| d.set(depth + 1));
        KernelGuard { depth }
    }
}

impl Drop for KernelGuard {
    fn drop(&mut self) {
        KERNEL_DEPTH.with(|d| d.set(self.depth));
    }
}

/// The thread count kernels on this thread will use right now.
pub fn current_threads() -> usize {
    let cur = CURRENT.with(Cell::get);
    if cur == 0 {
        auto_threads()
    } else {
        cur
    }
}

/// Installs `parallelism` for the current thread until the returned
/// guard drops (restoring whatever was in effect before). The HC loop
/// uses this to apply [`crate::hc::HcConfig::parallelism`] to every
/// kernel it calls.
#[must_use = "the override lasts until this guard is dropped"]
pub fn scoped(parallelism: Parallelism) -> ScopedParallelism {
    let previous = CURRENT.with(Cell::get);
    let next = match parallelism {
        // Auto defers to whatever is already in effect (0 = unset, in
        // which case kernels fall back to env/auto-detect).
        Parallelism::Auto => previous,
        other => other.effective_threads(),
    };
    CURRENT.with(|c| c.set(next));
    ScopedParallelism { previous }
}

/// Guard returned by [`scoped`]; restores the previous policy on drop.
pub struct ScopedParallelism {
    previous: usize,
}

impl Drop for ScopedParallelism {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.previous));
    }
}

/// Evaluates `f` on every chunk of `0..len` (fixed `chunk` length, last
/// chunk short) and returns the per-chunk results **in chunk order**.
///
/// With more than one effective thread, chunks are distributed as
/// contiguous runs over scoped worker threads; each worker runs with
/// parallelism pinned to serial so nested kernels stay inline. The
/// result vector is identical whatever the thread count.
pub fn map_chunks<R, F>(len: usize, chunk: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    assert!(chunk > 0, "chunk length must be positive");
    let n_chunks = len.div_ceil(chunk);
    let _kernel = KernelGuard::enter(n_chunks);
    let threads = current_threads().min(n_chunks);
    let chunk_range = |c: usize| {
        let start = c * chunk;
        start..(start + chunk).min(len)
    };
    if threads <= 1 {
        return (0..n_chunks).map(|c| f(chunk_range(c))).collect();
    }
    let mut results: Vec<Option<R>> = Vec::with_capacity(n_chunks);
    results.resize_with(n_chunks, || None);
    let per_thread = n_chunks.div_ceil(threads);
    std::thread::scope(|s| {
        for (t, span) in results.chunks_mut(per_thread).enumerate() {
            let f = &f;
            s.spawn(move || {
                let _serial = scoped(Parallelism::Serial);
                for (j, slot) in span.iter_mut().enumerate() {
                    *slot = Some(f(chunk_range(t * per_thread + j)));
                }
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every chunk was evaluated"))
        .collect()
}

/// Chunked sum with ordered merge: `Σ_c f(chunk_c)`, the per-chunk
/// partials added left-to-right in chunk order. This association order
/// is fixed by `chunk`, never by the thread count — the heart of the
/// bit-identity contract.
pub fn sum_chunks<F>(len: usize, chunk: usize, f: F) -> f64
where
    F: Fn(Range<usize>) -> f64 + Sync,
{
    map_chunks(len, chunk, f).into_iter().sum()
}

/// Applies `f(global_offset, chunk_slice)` to disjoint fixed-length
/// chunks of `out` in place, possibly in parallel. Each element's value
/// must depend only on its own index, so the fill is trivially
/// deterministic.
pub fn fill_slice<T, F>(out: &mut [T], chunk: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk > 0, "chunk length must be positive");
    let len = out.len();
    let n_chunks = len.div_ceil(chunk);
    let _kernel = KernelGuard::enter(n_chunks);
    let threads = current_threads().min(n_chunks);
    if threads <= 1 {
        for (c, slice) in out.chunks_mut(chunk).enumerate() {
            f(c * chunk, slice);
        }
        return;
    }
    // Thread spans are whole numbers of chunks so offsets stay aligned.
    let per_thread = n_chunks.div_ceil(threads) * chunk;
    std::thread::scope(|s| {
        for (t, span) in out.chunks_mut(per_thread).enumerate() {
            let f = &f;
            s.spawn(move || {
                let _serial = scoped(Parallelism::Serial);
                for (c, slice) in span.chunks_mut(chunk).enumerate() {
                    f(t * per_thread + c * chunk, slice);
                }
            });
        }
    });
}

/// Scores every item independently and returns the results in item
/// order — the candidate-gain fan-out of the greedy selector. One item
/// per chunk: items are expensive (an answer-family entropy each) and
/// item results never participate in a float reduction, so per-item
/// scheduling cannot perturb numerics.
pub fn map_items<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    map_chunks(items.len(), 1, |r| f(r.start, &items[r.start]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_threads_floor_is_one() {
        assert_eq!(Parallelism::Serial.effective_threads(), 1);
        assert_eq!(Parallelism::Threads(0).effective_threads(), 1);
        assert_eq!(Parallelism::Threads(5).effective_threads(), 5);
        assert!(Parallelism::Auto.effective_threads() >= 1);
    }

    #[test]
    fn scoped_override_nests_and_restores() {
        let outer = current_threads();
        {
            let _a = scoped(Parallelism::Threads(3));
            assert_eq!(current_threads(), 3);
            {
                let _b = scoped(Parallelism::Serial);
                assert_eq!(current_threads(), 1);
            }
            assert_eq!(current_threads(), 3);
        }
        assert_eq!(current_threads(), outer);
    }

    #[test]
    fn auto_inherits_enclosing_scope() {
        let _outer = scoped(Parallelism::Threads(3));
        {
            let _inner = scoped(Parallelism::Auto);
            assert_eq!(current_threads(), 3, "Auto defers to the outer scope");
        }
        assert_eq!(current_threads(), 3);
    }

    #[test]
    fn map_chunks_is_ordered_and_complete() {
        for threads in [1usize, 2, 3, 8] {
            let _g = scoped(Parallelism::Threads(threads));
            let got = map_chunks(10, 3, |r| (r.start, r.end));
            assert_eq!(got, vec![(0, 3), (3, 6), (6, 9), (9, 10)], "threads={threads}");
        }
    }

    #[test]
    fn map_chunks_empty_input() {
        let got: Vec<usize> = map_chunks(0, 4, |r| r.len());
        assert!(got.is_empty());
    }

    #[test]
    fn sum_chunks_bit_identical_across_thread_counts() {
        // Adversarial magnitudes so association order matters.
        let data: Vec<f64> = (0..10_000)
            .map(|i| (1.0 + i as f64).sin() * 10f64.powi((i % 17) as i32 - 8))
            .collect();
        let reference = {
            let _g = scoped(Parallelism::Serial);
            sum_chunks(data.len(), 64, |r| data[r].iter().sum::<f64>())
        };
        for threads in [2usize, 3, 8, 32] {
            let _g = scoped(Parallelism::Threads(threads));
            let sum = sum_chunks(data.len(), 64, |r| data[r].iter().sum::<f64>());
            assert_eq!(
                sum.to_bits(),
                reference.to_bits(),
                "threads={threads}: {sum} vs {reference}"
            );
        }
    }

    #[test]
    fn fill_slice_matches_serial_fill() {
        let compute = |threads: Parallelism| {
            let _g = scoped(threads);
            let mut out = vec![0.0f64; 1000];
            fill_slice(&mut out, 7, |offset, slice| {
                for (j, slot) in slice.iter_mut().enumerate() {
                    *slot = ((offset + j) as f64).sqrt();
                }
            });
            out
        };
        let serial = compute(Parallelism::Serial);
        for threads in [2usize, 5, 16] {
            assert_eq!(serial, compute(Parallelism::Threads(threads)));
        }
    }

    #[test]
    fn map_items_preserves_order() {
        let items: Vec<usize> = (0..37).collect();
        for threads in [1usize, 4] {
            let _g = scoped(Parallelism::Threads(threads));
            let got = map_items(&items, |i, &x| {
                assert_eq!(i, x);
                x * 2
            });
            assert_eq!(got, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn workers_run_serially() {
        let _g = scoped(Parallelism::Threads(4));
        let counts = map_items(&[(); 8], |_, _| current_threads());
        // Every item evaluated under the pinned-serial worker context
        // (or inline when the scheduler collapses to one thread).
        assert!(counts.iter().all(|&c| c == 1));
    }

    #[test]
    fn serde_round_trip() {
        for p in [
            Parallelism::Auto,
            Parallelism::Serial,
            Parallelism::Threads(6),
        ] {
            let json = serde_json::to_string(&p).unwrap();
            let back: Parallelism = serde_json::from_str(&json).unwrap();
            assert_eq!(p, back);
        }
    }
}
