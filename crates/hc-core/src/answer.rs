//! Crowdsourced answers: query sets, answer sets, answer families, and
//! their likelihoods (§II-B, Definitions 3–4, Lemmas 1–2).

use crate::belief::Belief;
use crate::error::{HcError, Result};
use crate::fact::FactId;
use crate::observation::Observation;
use crate::worker::ExpertPanel;
use serde::{Deserialize, Serialize};

/// A Yes/No answer to a single checking query "is fact `f` true?".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Answer {
    /// The worker asserts the fact is true.
    Yes,
    /// The worker asserts the fact is false.
    No,
}

impl Answer {
    /// `Yes` ↦ `true`, `No` ↦ `false`.
    #[inline]
    pub fn as_bool(self) -> bool {
        matches!(self, Answer::Yes)
    }

    /// `true` ↦ `Yes`, `false` ↦ `No`.
    #[inline]
    pub fn from_bool(v: bool) -> Self {
        if v {
            Answer::Yes
        } else {
            Answer::No
        }
    }
}

/// The result of one answer attempt: a worker may answer, time out, or
/// drop the query entirely.
///
/// The paper's model (§II-A) assumes every selected expert answers every
/// checking query. A production platform cannot: workers abandon tasks,
/// miss deadlines, or churn out of the pool. [`crate::hc::AnswerOracle`]
/// therefore returns an `AnswerOutcome`, and the Bayes update conditions
/// only on the answers that actually arrived (missing answers are
/// marginalised out — see [`PartialAnswerSet`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AnswerOutcome {
    /// The worker delivered a Yes/No answer.
    Answered(Answer),
    /// The worker accepted the query but no answer arrived in time.
    TimedOut,
    /// The worker never engaged with the query (dropout or churn).
    Dropped,
}

impl AnswerOutcome {
    /// The delivered answer, if any.
    #[inline]
    pub fn answer(self) -> Option<Answer> {
        match self {
            AnswerOutcome::Answered(a) => Some(a),
            _ => None,
        }
    }

    /// Whether an answer was delivered.
    #[inline]
    pub fn is_answered(self) -> bool {
        matches!(self, AnswerOutcome::Answered(_))
    }

    /// Whether the attempt failed (timed out or dropped).
    #[inline]
    pub fn is_failure(self) -> bool {
        !self.is_answered()
    }
}

impl From<Answer> for AnswerOutcome {
    fn from(a: Answer) -> Self {
        AnswerOutcome::Answered(a)
    }
}

/// An ordered, duplicate-free set of facts `T ⊆ F` selected as checking
/// queries for one round.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuerySet {
    facts: Vec<FactId>,
}

impl QuerySet {
    /// Builds a query set, validating that all facts exist in an
    /// `num_facts`-fact task and appear at most once.
    pub fn new(facts: Vec<FactId>, num_facts: usize) -> Result<Self> {
        let mut seen = vec![false; num_facts];
        for &f in &facts {
            let idx = f.index();
            if idx >= num_facts || seen[idx] {
                return Err(HcError::InvalidQuery { fact: f.0 });
            }
            seen[idx] = true;
        }
        Ok(QuerySet { facts })
    }

    /// An empty query set.
    pub fn empty() -> Self {
        QuerySet { facts: Vec::new() }
    }

    /// The queries in selection order.
    #[inline]
    pub fn facts(&self) -> &[FactId] {
        &self.facts
    }

    /// Number of queries `k = |T|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// Whether no queries were selected.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }
}

/// One worker's answers to a query set (`A_cr^T`, Definition 3), stored as
/// a bitmask aligned with the query order: bit `j` set means the worker
/// answered *Yes* to query `j`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AnswerSet {
    bits: u32,
    len: u8,
}

impl AnswerSet {
    /// Builds an answer set from explicit answers, in query order.
    pub fn new(answers: &[Answer]) -> Self {
        debug_assert!(answers.len() <= 32);
        let mut bits = 0u32;
        for (j, a) in answers.iter().enumerate() {
            if a.as_bool() {
                bits |= 1 << j;
            }
        }
        AnswerSet {
            bits,
            len: answers.len() as u8,
        }
    }

    /// Builds an answer set from a raw bitmask over `len` queries.
    pub fn from_bits(bits: u32, len: usize) -> Self {
        debug_assert!(len <= 32);
        debug_assert!(len == 32 || bits < (1u32 << len));
        AnswerSet {
            bits,
            len: len as u8,
        }
    }

    /// The raw Yes-bitmask.
    #[inline]
    pub fn bits(self) -> u32 {
        self.bits
    }

    /// Number of answered queries.
    #[inline]
    pub fn len(self) -> usize {
        self.len as usize
    }

    /// Whether the set holds no answers.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.len == 0
    }

    /// The answer to query `j` (position in the query set, not a fact id).
    #[inline]
    pub fn answer(self, j: usize) -> Answer {
        Answer::from_bool((self.bits >> j) & 1 == 1)
    }

    /// The answers as a vector, in query order.
    pub fn answers(self) -> Vec<Answer> {
        (0..self.len()).map(|j| self.answer(j)).collect()
    }

    /// Size of the *consistent set* `|T⁺(o, A)|`: queries whose answer
    /// matches the truth value `o` assigns (Equation (7)). The projection
    /// `o_proj = o.project(queries)` must be precomputed by the caller.
    #[inline]
    pub fn consistent_count(self, o_proj: u32) -> u32 {
        // XNOR of answer bits and truth bits over the first `len` bits.
        let agreement = !(self.bits ^ o_proj);
        let mask = if self.len == 32 {
            u32::MAX
        } else {
            (1u32 << self.len) - 1
        };
        (agreement & mask).count_ones()
    }
}

/// The answers of every expert in the panel for one query set
/// (`A_C^T`, the *crowdsourced answer family* of Definition 3).
///
/// `sets[i]` is the answer set of `panel.workers()[i]`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AnswerFamily {
    sets: Vec<AnswerSet>,
}

impl AnswerFamily {
    /// Wraps per-worker answer sets (aligned with the panel's worker
    /// order).
    pub fn new(sets: Vec<AnswerSet>) -> Self {
        AnswerFamily { sets }
    }

    /// The per-worker answer sets.
    #[inline]
    pub fn sets(&self) -> &[AnswerSet] {
        &self.sets
    }

    /// Number of workers that answered.
    #[inline]
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// Whether no workers answered.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }
}

/// One worker's *partial* answers to a query set: some queries may have
/// no answer (timeout/dropout). Bit `j` of `answered` is set when query
/// `j` was actually answered; `bits` holds the Yes-mask over the answered
/// positions (bits at unanswered positions are zero and ignored).
///
/// Under the missing-at-random assumption (whether a worker drops a
/// query is independent of the ground truth), an absent answer carries no
/// evidence: its likelihood factor is exactly 1, so the Bayes update with
/// a partial set conditions only on what arrived and the belief stays a
/// proper distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartialAnswerSet {
    bits: u32,
    answered: u32,
    len: u8,
}

impl PartialAnswerSet {
    /// Builds a partial answer set from per-query attempt outcomes, in
    /// query order.
    pub fn new(outcomes: &[AnswerOutcome]) -> Self {
        debug_assert!(outcomes.len() <= 32);
        let mut bits = 0u32;
        let mut answered = 0u32;
        for (j, out) in outcomes.iter().enumerate() {
            if let Some(a) = out.answer() {
                answered |= 1 << j;
                if a.as_bool() {
                    bits |= 1 << j;
                }
            }
        }
        PartialAnswerSet {
            bits,
            answered,
            len: outcomes.len() as u8,
        }
    }

    /// A fully-absent set over `len` queries (the worker answered
    /// nothing).
    pub fn absent(len: usize) -> Self {
        debug_assert!(len <= 32);
        PartialAnswerSet {
            bits: 0,
            answered: 0,
            len: len as u8,
        }
    }

    /// Builds a partial set from raw masks: `bits` is the Yes-mask,
    /// `answered` the delivery mask. Bits outside `answered` are cleared.
    pub fn from_masks(bits: u32, answered: u32, len: usize) -> Self {
        debug_assert!(len <= 32);
        let mask = if len == 32 {
            u32::MAX
        } else {
            (1u32 << len) - 1
        };
        let answered = answered & mask;
        PartialAnswerSet {
            bits: bits & answered,
            answered,
            len: len as u8,
        }
    }

    /// The raw Yes-bitmask over answered positions.
    #[inline]
    pub fn bits(self) -> u32 {
        self.bits
    }

    /// The delivery mask: bit `j` set means query `j` was answered.
    #[inline]
    pub fn answered_mask(self) -> u32 {
        self.answered
    }

    /// Number of queries in the round (answered or not).
    #[inline]
    pub fn len(self) -> usize {
        self.len as usize
    }

    /// Whether the query set was empty.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.len == 0
    }

    /// Number of queries this worker actually answered.
    #[inline]
    pub fn answered_count(self) -> u32 {
        self.answered.count_ones()
    }

    /// Whether every query was answered.
    #[inline]
    pub fn is_complete(self) -> bool {
        self.answered_count() as usize == self.len()
    }

    /// The answer to query `j`, if one arrived.
    #[inline]
    pub fn answer(self, j: usize) -> Option<Answer> {
        if (self.answered >> j) & 1 == 1 {
            Some(Answer::from_bool((self.bits >> j) & 1 == 1))
        } else {
            None
        }
    }

    /// Consistent answers among the *answered* queries: positions where
    /// the delivered answer matches the truth assignment `o_proj`.
    #[inline]
    pub fn consistent_count(self, o_proj: u32) -> u32 {
        (!(self.bits ^ o_proj) & self.answered).count_ones()
    }

    /// The equivalent complete [`AnswerSet`], when every query was
    /// answered.
    pub fn complete(self) -> Option<AnswerSet> {
        if self.is_complete() {
            Some(AnswerSet::from_bits(self.bits, self.len()))
        } else {
            None
        }
    }
}

impl From<AnswerSet> for PartialAnswerSet {
    fn from(set: AnswerSet) -> Self {
        let len = set.len();
        let mask = if len == 32 {
            u32::MAX
        } else if len == 0 {
            0
        } else {
            (1u32 << len) - 1
        };
        PartialAnswerSet {
            bits: set.bits() & mask,
            answered: mask,
            len: len as u8,
        }
    }
}

/// Per-worker partial answer sets for one query set — the
/// unreliable-crowd generalisation of [`AnswerFamily`]. `sets[i]` is the
/// (possibly incomplete) answer set of `panel.workers()[i]`; a worker
/// that delivered nothing contributes a fully-absent set.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartialAnswerFamily {
    sets: Vec<PartialAnswerSet>,
}

impl PartialAnswerFamily {
    /// Wraps per-worker partial answer sets (aligned with the panel's
    /// worker order).
    pub fn new(sets: Vec<PartialAnswerSet>) -> Self {
        PartialAnswerFamily { sets }
    }

    /// The per-worker partial answer sets.
    #[inline]
    pub fn sets(&self) -> &[PartialAnswerSet] {
        &self.sets
    }

    /// Number of workers in the family (answering or not).
    #[inline]
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// Whether the family has no workers.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }

    /// Total answers delivered across all workers.
    pub fn delivered(&self) -> u32 {
        self.sets.iter().map(|s| s.answered_count()).sum()
    }
}

impl From<&AnswerFamily> for PartialAnswerFamily {
    fn from(family: &AnswerFamily) -> Self {
        PartialAnswerFamily {
            sets: family.sets().iter().map(|&s| s.into()).collect(),
        }
    }
}

/// `P(A_cr^T | o)` — the likelihood of one worker's answer set given an
/// observation (Lemma 1, Equation (6)):
/// `Pr_cr^{|T⁺|} · (1 - Pr_cr)^{|T⁻|}`.
///
/// `o_proj` is the observation restricted to the query set
/// ([`Observation::project`]).
#[inline]
pub fn answer_set_likelihood(accuracy: f64, set: AnswerSet, o_proj: u32) -> f64 {
    let consistent = set.consistent_count(o_proj);
    let inconsistent = set.len() as u32 - consistent;
    accuracy.powi(consistent as i32) * (1.0 - accuracy).powi(inconsistent as i32)
}

/// `ln P(A_cr^T | o)` — the log-domain counterpart of
/// [`answer_set_likelihood`], used by the Bayes update's underflow
/// rescue path (`crates/hc-core/src/update.rs`).
///
/// Returns `-∞` exactly when the linear likelihood is zero (a perfect
/// worker contradicted by `o_proj`); a *finite* log-likelihood whose
/// `exp` underflows to zero is precisely the case the rescue path
/// recovers. The zero-count factors are skipped rather than multiplied
/// so that `0 · ln(0) = NaN` can never leak out of a perfect worker
/// whose answers are all consistent.
#[inline]
pub fn answer_set_log_likelihood(accuracy: f64, set: AnswerSet, o_proj: u32) -> f64 {
    let consistent = set.consistent_count(o_proj);
    let inconsistent = set.len() as u32 - consistent;
    let mut l = 0.0;
    if consistent > 0 {
        l += f64::from(consistent) * accuracy.ln();
    }
    if inconsistent > 0 {
        l += f64::from(inconsistent) * (1.0 - accuracy).ln();
    }
    l
}

/// `P(A_C^T | o)` — the likelihood of a whole answer family given an
/// observation: the product over workers (they answer independently given
/// the ground truth; Lemma 2).
pub fn family_likelihood_given(panel: &ExpertPanel, family: &AnswerFamily, o_proj: u32) -> f64 {
    debug_assert_eq!(panel.len(), family.len());
    panel
        .workers()
        .iter()
        .zip(family.sets())
        .map(|(w, &set)| answer_set_likelihood(w.accuracy.rate(), set, o_proj))
        .product()
}

/// `P(A_cr^{T'} | o)` for a *partial* answer set: the likelihood of the
/// answers that arrived, with absent answers marginalised out.
///
/// Given the ground truth, each answer is an independent Bernoulli, so
/// summing the full-set likelihood over every value of the missing
/// answers collapses their factors to `Pr_cr + (1 − Pr_cr) = 1`
/// (missing-at-random): only the delivered answers contribute.
#[inline]
pub fn partial_answer_set_likelihood(accuracy: f64, set: PartialAnswerSet, o_proj: u32) -> f64 {
    let consistent = set.consistent_count(o_proj);
    let inconsistent = set.answered_count() - consistent;
    accuracy.powi(consistent as i32) * (1.0 - accuracy).powi(inconsistent as i32)
}

/// `ln P(A_cr^{T'} | o)` — the log-domain counterpart of
/// [`partial_answer_set_likelihood`]; see
/// [`answer_set_log_likelihood`] for the rescue-path contract.
#[inline]
pub fn partial_answer_set_log_likelihood(
    accuracy: f64,
    set: PartialAnswerSet,
    o_proj: u32,
) -> f64 {
    let consistent = set.consistent_count(o_proj);
    let inconsistent = set.answered_count() - consistent;
    let mut l = 0.0;
    if consistent > 0 {
        l += f64::from(consistent) * accuracy.ln();
    }
    if inconsistent > 0 {
        l += f64::from(inconsistent) * (1.0 - accuracy).ln();
    }
    l
}

/// `P(A_C^{T'} | o)` for a partial answer family: the product over
/// workers of their partial-set likelihoods (workers answer independently
/// given the ground truth, so absent experts contribute factor 1).
pub fn partial_family_likelihood_given(
    panel: &ExpertPanel,
    family: &PartialAnswerFamily,
    o_proj: u32,
) -> f64 {
    debug_assert_eq!(panel.len(), family.len());
    panel
        .workers()
        .iter()
        .zip(family.sets())
        .map(|(w, &set)| partial_answer_set_likelihood(w.accuracy.rate(), set, o_proj))
        .product()
}

/// Per-query likelihood factors for one worker's answer set:
/// `factors[j][b] = P(answer_j | truth of query j is b)`, i.e. the
/// worker's accuracy when answer `j` matches `b` and its complement
/// otherwise.
///
/// Because queries are answered independently given the ground truth,
/// `Π_j factors[j][bit j of o_proj]` equals
/// [`answer_set_likelihood`] exactly — the factorisation the
/// block-diagonal (factored) Bayes update exploits to update each block
/// with only its own queries' factors.
pub(crate) fn answer_set_query_factors(accuracy: f64, set: AnswerSet) -> Vec<[f64; 2]> {
    (0..set.len())
        .map(|j| {
            let yes = set.answer(j).as_bool();
            let agree = accuracy;
            let disagree = 1.0 - accuracy;
            if yes {
                [disagree, agree]
            } else {
                [agree, disagree]
            }
        })
        .collect()
}

/// Per-query likelihood factors for a *partial* answer set: unanswered
/// queries contribute the identity factor `[1, 1]`
/// (missing-at-random marginalisation, as in
/// [`partial_answer_set_likelihood`]).
pub(crate) fn partial_answer_set_query_factors(
    accuracy: f64,
    set: PartialAnswerSet,
) -> Vec<[f64; 2]> {
    (0..set.len())
        .map(|j| match set.answer(j) {
            None => [1.0, 1.0],
            Some(a) => {
                let agree = accuracy;
                let disagree = 1.0 - accuracy;
                if a.as_bool() {
                    [disagree, agree]
                } else {
                    [agree, disagree]
                }
            }
        })
        .collect()
}

/// Per-query factors of a whole answer family: the per-worker factors
/// multiplied position-wise (workers answer independently given the
/// ground truth).
pub(crate) fn family_query_factors(panel: &ExpertPanel, family: &AnswerFamily) -> Vec<[f64; 2]> {
    debug_assert_eq!(panel.len(), family.len());
    let k = family.sets().first().map_or(0, |s| s.len());
    let mut factors = vec![[1.0, 1.0]; k];
    for (w, &set) in panel.workers().iter().zip(family.sets()) {
        for (slot, f) in factors
            .iter_mut()
            .zip(answer_set_query_factors(w.accuracy.rate(), set))
        {
            slot[0] *= f[0];
            slot[1] *= f[1];
        }
    }
    factors
}

/// Per-query factors of a partial answer family; absent answers keep
/// their identity factor.
pub(crate) fn partial_family_query_factors(
    panel: &ExpertPanel,
    family: &PartialAnswerFamily,
) -> Vec<[f64; 2]> {
    debug_assert_eq!(panel.len(), family.len());
    let k = family.sets().first().map_or(0, |s| s.len());
    let mut factors = vec![[1.0, 1.0]; k];
    for (w, &set) in panel.workers().iter().zip(family.sets()) {
        for (slot, f) in factors
            .iter_mut()
            .zip(partial_answer_set_query_factors(w.accuracy.rate(), set))
        {
            slot[0] *= f[0];
            slot[1] *= f[1];
        }
    }
    factors
}

/// `P(A_cr^T)` — the marginal probability of one worker's answer set under
/// the current belief (Lemma 1, Equation (8)):
/// `Σ_o P(o) · P(A_cr^T | o)`.
pub fn answer_set_probability(
    belief: &Belief,
    queries: &QuerySet,
    accuracy: f64,
    set: AnswerSet,
) -> f64 {
    let q = belief.project(queries.facts());
    q.iter()
        .enumerate()
        .map(|(t, &p)| p * answer_set_likelihood(accuracy, set, t as u32))
        .sum()
}

/// `P(A_C^T)` — the marginal probability of an answer family under the
/// current belief (Lemma 2, Equation (11)).
pub fn family_probability(
    belief: &Belief,
    queries: &QuerySet,
    panel: &ExpertPanel,
    family: &AnswerFamily,
) -> f64 {
    let q = belief.project(queries.facts());
    q.iter()
        .enumerate()
        .map(|(t, &p)| p * family_likelihood_given(panel, family, t as u32))
        .sum()
}

/// Iterates every possible answer family for `k` queries and `m` workers
/// (there are `2^(k·m)`), yielding `(index, family)`.
///
/// The index packs the per-worker answer bitmasks contiguously: worker
/// `i`'s answers occupy bits `[i·k, (i+1)·k)`. Exposed for the naive
/// entropy oracle and tests; the fast kernels in [`crate::entropy`]
/// enumerate indices directly without materialising families.
pub fn enumerate_families(k: usize, m: usize) -> impl Iterator<Item = (u64, AnswerFamily)> {
    let total: u64 = 1u64 << (k * m);
    (0..total).map(move |idx| {
        let sets = (0..m)
            .map(|i| {
                let bits = ((idx >> (i * k)) & ((1u64 << k) - 1)) as u32;
                AnswerSet::from_bits(bits, k)
            })
            .collect();
        (idx, AnswerFamily::new(sets))
    })
}

/// Majority-vote label for a single fact from an answer family
/// (Equation (5)): `true` when at least half the workers answered Yes.
pub fn majority_label(family: &AnswerFamily, query_index: usize) -> bool {
    let yes = family
        .sets()
        .iter()
        .filter(|s| s.answer(query_index) == Answer::Yes)
        .count();
    2 * yes >= family.len()
}

/// Projects an observation onto a query set — convenience wrapper around
/// [`Observation::project`] for callers holding a [`QuerySet`].
#[inline]
pub fn project_observation(o: Observation, queries: &QuerySet) -> u32 {
    o.project(queries.facts())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::belief::Belief;

    fn table_i_belief() -> Belief {
        Belief::from_probs(vec![0.09, 0.11, 0.10, 0.20, 0.08, 0.09, 0.15, 0.18]).unwrap()
    }

    #[test]
    fn query_set_rejects_duplicates_and_out_of_range() {
        assert!(QuerySet::new(vec![FactId(0), FactId(0)], 3).is_err());
        assert!(QuerySet::new(vec![FactId(3)], 3).is_err());
        assert!(QuerySet::new(vec![FactId(0), FactId(2)], 3).is_ok());
    }

    #[test]
    fn answer_set_round_trips() {
        let answers = vec![Answer::Yes, Answer::No, Answer::Yes];
        let set = AnswerSet::new(&answers);
        assert_eq!(set.answers(), answers);
        assert_eq!(set.bits(), 0b101);
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn consistent_count_matches_definition() {
        // Queries [f0, f1, f2]; answers Yes,No,Yes = 0b101.
        let set = AnswerSet::new(&[Answer::Yes, Answer::No, Answer::Yes]);
        // Observation restricted to queries: truth bits 0b100 -> f0 false,
        // f1 false, f2 true. Agreement: f1 (No vs false) and f2 -> 2.
        assert_eq!(set.consistent_count(0b100), 2);
        assert_eq!(set.consistent_count(0b101), 3);
        assert_eq!(set.consistent_count(0b010), 0);
    }

    #[test]
    fn consistent_and_inconsistent_partition_queries() {
        // Property of Equation (9): |T⁺| + |T⁻| = |T| for any o.
        let set = AnswerSet::from_bits(0b0110, 4);
        for proj in 0..16u32 {
            let c = set.consistent_count(proj);
            assert!(c <= 4);
        }
    }

    #[test]
    fn likelihood_single_query_matches_eq_10() {
        // For one query, P(A = Yes | o ⊨ f) = Pr_cr.
        let yes = AnswerSet::new(&[Answer::Yes]);
        assert!((answer_set_likelihood(0.9, yes, 1) - 0.9).abs() < 1e-12);
        assert!((answer_set_likelihood(0.9, yes, 0) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn answer_set_probabilities_sum_to_one() {
        let b = table_i_belief();
        let queries = QuerySet::new(vec![FactId(0), FactId(2)], 3).unwrap();
        let total: f64 = (0..4u32)
            .map(|bits| {
                answer_set_probability(&b, &queries, 0.85, AnswerSet::from_bits(bits, 2))
            })
            .sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn family_probabilities_sum_to_one() {
        let b = table_i_belief();
        let panel = ExpertPanel::from_accuracies(&[0.9, 0.8]).unwrap();
        let queries = QuerySet::new(vec![FactId(1)], 3).unwrap();
        let total: f64 = enumerate_families(1, 2)
            .map(|(_, fam)| family_probability(&b, &queries, &panel, &fam))
            .sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn family_likelihood_is_product_of_workers() {
        let panel = ExpertPanel::from_accuracies(&[0.9, 0.7]).unwrap();
        let fam = AnswerFamily::new(vec![
            AnswerSet::new(&[Answer::Yes]),
            AnswerSet::new(&[Answer::No]),
        ]);
        // o ⊨ f: worker 0 consistent (0.9), worker 1 inconsistent (0.3).
        let l = family_likelihood_given(&panel, &fam, 1);
        assert!((l - 0.9 * 0.3).abs() < 1e-12);
    }

    #[test]
    fn enumerate_families_covers_space() {
        let families: Vec<_> = enumerate_families(2, 2).collect();
        assert_eq!(families.len(), 16);
        // Index packing: worker 0 low bits, worker 1 high bits.
        let (idx, fam) = &families[0b1101];
        assert_eq!(*idx, 0b1101);
        assert_eq!(fam.sets()[0].bits(), 0b01);
        assert_eq!(fam.sets()[1].bits(), 0b11);
    }

    #[test]
    fn majority_label_ties_go_to_yes() {
        // Equation (5) uses >= 1/2, so a tie is labeled true.
        let fam = AnswerFamily::new(vec![
            AnswerSet::new(&[Answer::Yes]),
            AnswerSet::new(&[Answer::No]),
        ]);
        assert!(majority_label(&fam, 0));
    }

    #[test]
    fn majority_label_counts_votes() {
        let fam = AnswerFamily::new(vec![
            AnswerSet::new(&[Answer::No, Answer::Yes]),
            AnswerSet::new(&[Answer::No, Answer::Yes]),
            AnswerSet::new(&[Answer::Yes, Answer::No]),
        ]);
        assert!(!majority_label(&fam, 0));
        assert!(majority_label(&fam, 1));
    }

    #[test]
    fn perfect_worker_likelihood_is_indicator() {
        let set = AnswerSet::new(&[Answer::Yes, Answer::No]);
        assert_eq!(answer_set_likelihood(1.0, set, 0b01), 1.0);
        assert_eq!(answer_set_likelihood(1.0, set, 0b00), 0.0);
        assert_eq!(answer_set_likelihood(1.0, set, 0b11), 0.0);
    }

    #[test]
    fn answer_outcome_accessors() {
        let a = AnswerOutcome::Answered(Answer::Yes);
        assert_eq!(a.answer(), Some(Answer::Yes));
        assert!(a.is_answered() && !a.is_failure());
        for f in [AnswerOutcome::TimedOut, AnswerOutcome::Dropped] {
            assert_eq!(f.answer(), None);
            assert!(f.is_failure() && !f.is_answered());
        }
        assert_eq!(AnswerOutcome::from(Answer::No).answer(), Some(Answer::No));
    }

    #[test]
    fn partial_set_tracks_delivery() {
        let outcomes = [
            AnswerOutcome::Answered(Answer::Yes),
            AnswerOutcome::Dropped,
            AnswerOutcome::Answered(Answer::No),
            AnswerOutcome::TimedOut,
        ];
        let set = PartialAnswerSet::new(&outcomes);
        assert_eq!(set.len(), 4);
        assert_eq!(set.answered_count(), 2);
        assert_eq!(set.answered_mask(), 0b0101);
        assert_eq!(set.bits(), 0b0001);
        assert_eq!(set.answer(0), Some(Answer::Yes));
        assert_eq!(set.answer(1), None);
        assert_eq!(set.answer(2), Some(Answer::No));
        assert!(!set.is_complete());
        assert!(set.complete().is_none());
    }

    #[test]
    fn complete_partial_set_round_trips_to_answer_set() {
        let full = AnswerSet::new(&[Answer::Yes, Answer::No, Answer::Yes]);
        let partial: PartialAnswerSet = full.into();
        assert!(partial.is_complete());
        assert_eq!(partial.complete(), Some(full));
        for proj in 0..8u32 {
            assert_eq!(partial.consistent_count(proj), full.consistent_count(proj));
            for acc in [0.5, 0.7, 0.95] {
                let a = partial_answer_set_likelihood(acc, partial, proj);
                let b = answer_set_likelihood(acc, full, proj);
                assert!((a - b).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn absent_set_has_unit_likelihood() {
        // A worker that delivered nothing must not move the posterior:
        // factor 1 for every observation.
        let set = PartialAnswerSet::absent(3);
        for proj in 0..8u32 {
            assert_eq!(partial_answer_set_likelihood(0.9, set, proj), 1.0);
        }
    }

    #[test]
    fn partial_likelihood_marginalises_missing_answers() {
        // Summing the full-set likelihood over both values of a missing
        // answer must equal the partial-set likelihood.
        let acc = 0.8;
        // Queries [q0, q1]; q0 answered Yes, q1 missing.
        let partial = PartialAnswerSet::from_masks(0b01, 0b01, 2);
        for proj in 0..4u32 {
            let with_yes = answer_set_likelihood(acc, AnswerSet::from_bits(0b11, 2), proj);
            let with_no = answer_set_likelihood(acc, AnswerSet::from_bits(0b01, 2), proj);
            let marginal = with_yes + with_no;
            let direct = partial_answer_set_likelihood(acc, partial, proj);
            assert!(
                (marginal - direct).abs() < 1e-12,
                "proj {proj}: {marginal} vs {direct}"
            );
        }
    }

    #[test]
    fn partial_family_product_over_workers() {
        let panel = ExpertPanel::from_accuracies(&[0.9, 0.7]).unwrap();
        let family = PartialAnswerFamily::new(vec![
            PartialAnswerSet::new(&[AnswerOutcome::Answered(Answer::Yes)]),
            PartialAnswerSet::new(&[AnswerOutcome::Dropped]),
        ]);
        assert_eq!(family.delivered(), 1);
        // o ⊨ f: worker 0 consistent (0.9), worker 1 absent (1.0).
        let l = partial_family_likelihood_given(&panel, &family, 1);
        assert!((l - 0.9).abs() < 1e-12);
    }

    #[test]
    fn query_factors_factorise_the_likelihood() {
        // Π_j factors[j][truth bit j] must reproduce the set likelihood
        // for every projected truth assignment.
        let acc = 0.85;
        let set = AnswerSet::new(&[Answer::Yes, Answer::No, Answer::Yes]);
        let factors = answer_set_query_factors(acc, set);
        for proj in 0..8u32 {
            let product: f64 = factors
                .iter()
                .enumerate()
                .map(|(j, f)| f[((proj >> j) & 1) as usize])
                .product();
            let direct = answer_set_likelihood(acc, set, proj);
            assert!((product - direct).abs() < 1e-15, "proj {proj}");
        }
        // Partial sets: the missing query contributes factor 1 always.
        let partial = PartialAnswerSet::from_masks(0b01, 0b01, 2);
        let pf = partial_answer_set_query_factors(acc, partial);
        assert_eq!(pf[1], [1.0, 1.0]);
        for proj in 0..4u32 {
            let product: f64 = pf
                .iter()
                .enumerate()
                .map(|(j, f)| f[((proj >> j) & 1) as usize])
                .product();
            let direct = partial_answer_set_likelihood(acc, partial, proj);
            assert!((product - direct).abs() < 1e-15);
        }
    }

    #[test]
    fn family_query_factors_multiply_workers() {
        let panel = ExpertPanel::from_accuracies(&[0.9, 0.7]).unwrap();
        let fam = AnswerFamily::new(vec![
            AnswerSet::new(&[Answer::Yes, Answer::No]),
            AnswerSet::new(&[Answer::No, Answer::No]),
        ]);
        let factors = family_query_factors(&panel, &fam);
        for proj in 0..4u32 {
            let product: f64 = factors
                .iter()
                .enumerate()
                .map(|(j, f)| f[((proj >> j) & 1) as usize])
                .product();
            let direct = family_likelihood_given(&panel, &fam, proj);
            assert!((product - direct).abs() < 1e-12, "proj {proj}");
        }
    }

    #[test]
    fn from_masks_clears_out_of_range_bits() {
        let set = PartialAnswerSet::from_masks(0b1111, 0b0110, 2);
        assert_eq!(set.answered_mask(), 0b10);
        assert_eq!(set.bits(), 0b10);
    }
}
