//! # hc-core — Hierarchical Crowdsourcing for Data Labeling
//!
//! Core library reproducing *"Hierarchical Crowdsourcing for Data
//! Labeling with Heterogeneous Crowd"* (ICDE 2023).
//!
//! A crowd of imperfect workers is split at an accuracy threshold θ into
//! *preliminary* workers (who produce the initial noisy labels) and
//! *expert* workers (who repeatedly *check* selected labels). The state
//! of knowledge about each task's `n` correlated binary facts is a
//! [`belief::Belief`] — a joint distribution over all `2^n`
//! truth-value [`observation::Observation`]s — initialised from the
//! preliminary answers ([`init`]) and refined by Bayesian updates from
//! expert answers ([`update`]).
//!
//! The core optimisation — which `k` facts to send for checking each
//! round — maximises the expected quality improvement, which the paper
//! proves equals minimising the conditional entropy
//! `H(O | AS_CE^T)` ([`entropy`]) and is NP-hard. The [`selection`]
//! module provides the greedy `(1 − 1/e)`-approximation (Algorithm 2),
//! the brute-force optimum, and the baseline selectors; [`hc`] runs the
//! full budgeted loop (Algorithm 3).
//!
//! ## Quickstart
//!
//! ```
//! use hc_core::prelude::*;
//! use rand::SeedableRng;
//!
//! // Table I of the paper: three correlated facts.
//! let belief = Belief::from_probs(
//!     vec![0.09, 0.11, 0.10, 0.20, 0.08, 0.09, 0.15, 0.18],
//! ).unwrap();
//! let beliefs = MultiBelief::new(vec![belief]);
//!
//! // Two expert checkers.
//! let panel = ExpertPanel::from_accuracies(&[0.92, 0.9]).unwrap();
//!
//! // Greedily pick the two most informative checking queries.
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let selector = GreedySelector::new();
//! let candidates = hc_core::selection::global_facts(&beliefs);
//! let queries = selector
//!     .select(&beliefs, &panel, 2, &candidates, &mut rng)
//!     .unwrap();
//! assert_eq!(queries.len(), 2);
//! ```

#![warn(missing_docs)]

pub mod answer;
pub mod belief;
pub mod corpus;
pub mod entropy;
pub mod error;
pub mod fact;
pub mod hc;
pub mod init;
pub mod metrics;
pub mod observation;
pub mod parallel;
pub mod quality;
pub mod selection;
pub mod session;
pub mod update;
pub mod worker;

pub use hc_telemetry as telemetry;

/// The most commonly used items in one import.
pub mod prelude {
    pub use crate::answer::{
        Answer, AnswerFamily, AnswerOutcome, AnswerSet, PartialAnswerFamily, PartialAnswerSet,
        QuerySet,
    };
    pub use crate::belief::{Belief, MultiBelief, PROB_FLOOR};
    pub use crate::error::{HcError, Result};
    pub use crate::fact::{Fact, FactId, FactSet};
    pub use crate::update::UpdateHealth;
    pub use crate::hc::{
        run_hc, run_hc_with_observer, run_hc_with_telemetry, AccuracyCost, AnswerOracle,
        CostModel, HcConfig, HcOutcome, KSchedule, RepeatPolicy, RoundDelivery, RoundRecord,
        UnitCost,
    };
    pub use hc_telemetry::{
        FileSink, MetricsRegistry, NullSink, RecordingSink, SharedRecorder, TelemetryEvent,
        TelemetrySink,
    };
    pub use crate::observation::{Observation, ObservationSpace};
    pub use crate::parallel::Parallelism;
    pub use crate::selection::{
        BeamSelector, ExactSelector, ExplainTrace, GlobalFact, GreedySelector,
        MaxEntropySelector, RandomSelector, ScoredCandidate, SelectedQuery, TaskSelector,
    };
    pub use crate::session::{
        resume_state_from_trace, HcSession, ResumableOracle, SessionEnv, SessionState,
        SessionStatus, SessionStep, StepCursor, TraceResume, SESSION_CHECKPOINT_KIND,
        SESSION_FORMAT_VERSION,
    };
    pub use crate::worker::{Accuracy, Crowd, CrowdSplit, ExpertPanel, Worker, WorkerId};
}

pub use answer::{
    Answer, AnswerFamily, AnswerOutcome, AnswerSet, PartialAnswerFamily, PartialAnswerSet,
    QuerySet,
};
pub use belief::{Belief, MultiBelief, PROB_FLOOR};
pub use error::{HcError, Result};
pub use fact::{Fact, FactId, FactSet};
pub use update::UpdateHealth;
pub use hc::{
    run_hc, run_hc_with_observer, run_hc_with_telemetry, AccuracyCost, AnswerOracle, CostModel,
    HcConfig, HcOutcome, KSchedule, RepeatPolicy, RoundDelivery, RoundRecord, UnitCost,
};
pub use observation::{Observation, ObservationSpace};
pub use parallel::Parallelism;
pub use selection::{
    BeamSelector, ExactSelector, ExplainTrace, GlobalFact, GreedySelector, MaxEntropySelector,
    RandomSelector, ScoredCandidate, SelectedQuery, TaskSelector,
};
pub use session::{
    group_queries, replay_draws, resume_state_from_trace, CollectedRound, HcSession,
    PlannedRound, ResumableOracle, RngDraw, SessionEnv, SessionState, SessionStatus,
    SessionStep, StepCursor, TaskGroup, TraceResume, SESSION_CHECKPOINT_KIND,
    SESSION_FORMAT_VERSION,
};
pub use worker::{Accuracy, Crowd, CrowdSplit, ExpertPanel, Worker, WorkerId};
