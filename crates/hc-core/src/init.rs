//! Belief initialisation from preliminary-worker labels (§III-A,
//! Equations (15)–(16)).
//!
//! The initial belief can come from plain vote fractions (Equation (15)),
//! from any external aggregator's per-fact posteriors (the paper
//! initialises with EBCC in §IV-A), or be uniform (the NO-HC ablation).

use crate::answer::Answer;
use crate::belief::{Belief, DEFAULT_SPARSE_SUPPORT, MAX_FACTS};
use crate::error::{HcError, Result};

/// Builds a belief with the given per-fact marginals, choosing the
/// representation by group size: dense up to [`MAX_FACTS`], sparse
/// support-set (capped at [`DEFAULT_SPARSE_SUPPORT`] patterns, with the
/// dropped product-form mass certified in the truncation bound) above
/// it. All the initialisation entry points below route through this so
/// large groups work out of the box.
fn belief_from_marginals_auto(marginals: &[f64]) -> Result<Belief> {
    if marginals.len() > MAX_FACTS {
        Belief::sparse_from_marginals(marginals, DEFAULT_SPARSE_SUPPORT)
    } else {
        Belief::from_marginals(marginals)
    }
}

/// Raw votes of preliminary workers for one task: `votes[f][w]` is worker
/// `w`'s Yes/No answer to fact `f`. Workers may differ per fact (ragged).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VoteTable {
    votes: Vec<Vec<Answer>>,
}

impl VoteTable {
    /// Wraps per-fact vote lists.
    ///
    /// # Errors
    ///
    /// [`HcError::EmptyFactSet`] when there are no facts;
    /// [`HcError::EmptyCrowd`] when some fact received no votes.
    pub fn new(votes: Vec<Vec<Answer>>) -> Result<Self> {
        if votes.is_empty() {
            return Err(HcError::EmptyFactSet);
        }
        if votes.iter().any(|v| v.is_empty()) {
            return Err(HcError::EmptyCrowd);
        }
        Ok(VoteTable { votes })
    }

    /// Number of facts.
    pub fn num_facts(&self) -> usize {
        self.votes.len()
    }

    /// Fraction of Yes votes per fact — the `ob(o, f)` terms of
    /// Equation (16).
    pub fn yes_fractions(&self) -> Vec<f64> {
        self.votes
            .iter()
            .map(|v| {
                let yes = v.iter().filter(|a| a.as_bool()).count();
                yes as f64 / v.len() as f64
            })
            .collect()
    }
}

/// Equation (15): the product-form belief whose per-fact marginals are the
/// CP crowd's Yes-vote fractions.
///
/// Fractions of exactly 0 or 1 are softened by [`Belief::from_marginals`]
/// so no observation starts with zero probability.
pub fn init_from_votes(votes: &VoteTable) -> Result<Belief> {
    belief_from_marginals_auto(&votes.yes_fractions())
}

/// Initialisation from arbitrary per-fact truth probabilities — the hook
/// for probability-based aggregators (EBCC, DS, …): pass their posterior
/// `P(f is true)` per fact.
pub fn init_from_marginals(marginals: &[f64]) -> Result<Belief> {
    belief_from_marginals_auto(marginals)
}

/// Weighted majority initialisation: votes weighted by worker accuracy,
/// producing marginal `Σ_yes w_i / Σ w_i` per fact. A common variant the
/// paper mentions alongside plain majority voting.
pub fn init_from_weighted_votes(votes: &[Vec<(Answer, f64)>]) -> Result<Belief> {
    if votes.is_empty() {
        return Err(HcError::EmptyFactSet);
    }
    let mut marginals = Vec::with_capacity(votes.len());
    for fact_votes in votes {
        if fact_votes.is_empty() {
            return Err(HcError::EmptyCrowd);
        }
        let mut yes = 0.0;
        let mut total = 0.0;
        for &(a, w) in fact_votes {
            if !w.is_finite() || w < 0.0 {
                return Err(HcError::InvalidProbability(w));
            }
            total += w;
            if a.as_bool() {
                yes += w;
            }
        }
        if total <= 0.0 {
            return Err(HcError::InvalidProbability(total));
        }
        marginals.push(yes / total);
    }
    belief_from_marginals_auto(&marginals)
}

/// The uniform initialisation used by the NO-HC baseline of §IV-C(5).
///
/// Past the dense cap this is a sparse belief over the
/// [`DEFAULT_SPARSE_SUPPORT`] lowest patterns (all `2^n` are equally
/// likely, so any support choice is as good as any other); the missing
/// mass is certified in the truncation bound.
pub fn init_uniform(num_facts: usize) -> Result<Belief> {
    if num_facts > MAX_FACTS {
        Belief::sparse_from_marginals(&vec![0.5; num_facts], DEFAULT_SPARSE_SUPPORT)
    } else {
        Belief::uniform(num_facts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fact::FactId;

    fn votes(yes_counts: &[(usize, usize)]) -> VoteTable {
        // (yes, total) per fact.
        VoteTable::new(
            yes_counts
                .iter()
                .map(|&(yes, total)| {
                    (0..total)
                        .map(|i| Answer::from_bool(i < yes))
                        .collect::<Vec<_>>()
                })
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn vote_fractions_match_counts() {
        let table = votes(&[(3, 4), (1, 4)]);
        let fr = table.yes_fractions();
        assert!((fr[0] - 0.75).abs() < 1e-12);
        assert!((fr[1] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn eq_15_init_has_vote_marginals() {
        let table = votes(&[(3, 4), (1, 4), (2, 4)]);
        let belief = init_from_votes(&table).unwrap();
        assert!((belief.marginal(FactId(0)) - 0.75).abs() < 1e-9);
        assert!((belief.marginal(FactId(1)) - 0.25).abs() < 1e-9);
        assert!((belief.marginal(FactId(2)) - 0.50).abs() < 1e-9);
    }

    #[test]
    fn unanimous_votes_are_softened() {
        let table = votes(&[(4, 4), (0, 4)]);
        let belief = init_from_votes(&table).unwrap();
        assert!(belief.probs().iter().all(|&p| p > 0.0));
        assert_eq!(belief.map_labels(), vec![true, false]);
    }

    #[test]
    fn weighted_votes_respect_weights() {
        // One accurate Yes (0.9) vs two weak No (0.55 each):
        // marginal = 0.9 / 2.0 = 0.45.
        let belief = init_from_weighted_votes(&[vec![
            (Answer::Yes, 0.9),
            (Answer::No, 0.55),
            (Answer::No, 0.55),
        ]])
        .unwrap();
        assert!((belief.marginal(FactId(0)) - 0.45).abs() < 1e-9);
    }

    #[test]
    fn weighted_votes_reject_bad_weights() {
        assert!(init_from_weighted_votes(&[vec![(Answer::Yes, -1.0)]]).is_err());
        assert!(init_from_weighted_votes(&[vec![(Answer::Yes, f64::NAN)]]).is_err());
        assert!(init_from_weighted_votes(&[vec![]]).is_err());
        assert!(init_from_weighted_votes(&[]).is_err());
    }

    #[test]
    fn vote_table_validation() {
        assert!(matches!(VoteTable::new(vec![]), Err(HcError::EmptyFactSet)));
        assert!(matches!(
            VoteTable::new(vec![vec![Answer::Yes], vec![]]),
            Err(HcError::EmptyCrowd)
        ));
    }

    #[test]
    fn uniform_init_matches_belief_uniform() {
        let b = init_uniform(3).unwrap();
        assert_eq!(b, Belief::uniform(3).unwrap());
    }

    #[test]
    fn large_groups_auto_select_the_sparse_representation() {
        // 40 facts is far past the dense cap; every init path must
        // come back sparse with the advertised marginals preserved on
        // the kept support.
        let marginals = vec![0.9; 40];
        let b = init_from_marginals(&marginals).unwrap();
        assert_eq!(b.repr_name(), "sparse");
        assert_eq!(b.num_facts(), 40);
        assert!(b.truncation_bound() < 1.0);
        let u = init_uniform(40).unwrap();
        assert_eq!(u.repr_name(), "sparse");
        // Small groups keep the dense engine.
        assert_eq!(init_from_marginals(&[0.9; 5]).unwrap().repr_name(), "dense");
    }
}
