//! Bayesian belief update from crowdsourced checking answers
//! (§III-A, Lemma 3 and Equation (23)).
//!
//! After a round of checking, every observation's probability is updated
//! to its posterior given the collected answer family:
//!
//! `P(o | A_CE^T) ∝ P(o) · Π_{cr ∈ CE} P(A_cr^T | o)`
//!
//! The likelihood depends on `o` only through `o`'s restriction to the
//! query set, so the kernel first computes a `2^k`-entry multiplier table
//! and then streams once over the full belief — `O(2^k · k·m + 2^n)`
//! instead of `O(2^n · k·m)`.

use crate::answer::{
    answer_set_likelihood, partial_answer_set_likelihood, AnswerFamily, AnswerSet,
    PartialAnswerFamily, QuerySet,
};
use crate::belief::Belief;
use crate::error::{HcError, Result};
use crate::worker::ExpertPanel;

/// Updates `belief` in place with one expert's answer set (Lemma 3,
/// Equation (19)).
///
/// # Errors
///
/// [`HcError::DimensionMismatch`] when the answer set length differs from
/// the query set length.
pub fn update_with_answer_set(
    belief: &mut Belief,
    queries: &QuerySet,
    accuracy: f64,
    set: AnswerSet,
) -> Result<()> {
    if set.len() != queries.len() {
        return Err(HcError::DimensionMismatch {
            expected: queries.len(),
            actual: set.len(),
        });
    }
    let cells = 1usize << queries.len();
    let mut multiplier = Vec::with_capacity(cells);
    for t in 0..cells as u32 {
        multiplier.push(answer_set_likelihood(accuracy, set, t));
    }
    apply_multiplier(belief, queries, &multiplier)
}

/// Updates `belief` in place with a whole answer family from the expert
/// panel (Equation (23)) — the per-round update of Algorithms 1 and 3.
///
/// # Errors
///
/// [`HcError::DimensionMismatch`] when the family's worker count differs
/// from the panel's, or any answer set length differs from the query set.
pub fn update_with_family(
    belief: &mut Belief,
    queries: &QuerySet,
    panel: &ExpertPanel,
    family: &AnswerFamily,
) -> Result<()> {
    if family.len() != panel.len() {
        return Err(HcError::DimensionMismatch {
            expected: panel.len(),
            actual: family.len(),
        });
    }
    for set in family.sets() {
        if set.len() != queries.len() {
            return Err(HcError::DimensionMismatch {
                expected: queries.len(),
                actual: set.len(),
            });
        }
    }
    let cells = 1usize << queries.len();
    let mut multiplier = vec![1.0; cells];
    for (worker, &set) in panel.workers().iter().zip(family.sets()) {
        let acc = worker.accuracy.rate();
        for (t, m) in multiplier.iter_mut().enumerate() {
            *m *= answer_set_likelihood(acc, set, t as u32);
        }
    }
    apply_multiplier(belief, queries, &multiplier)
}

/// Updates `belief` in place with a *partial* answer family — the
/// unreliable-crowd generalisation of [`update_with_family`]: each worker
/// may have answered only a subset of the queries (or nothing at all),
/// and the posterior conditions only on the answers that arrived.
///
/// Missing answers are marginalised out (their likelihood factor is 1;
/// see [`crate::answer::partial_answer_set_likelihood`]), so a round in
/// which nobody answered leaves the belief exactly unchanged and the
/// posterior is always a proper distribution — the update never
/// denormalises and never fails on absence alone.
///
/// # Errors
///
/// [`HcError::DimensionMismatch`] when the family's worker count differs
/// from the panel's, or any partial set's query count differs from the
/// query set; [`HcError::InvalidProbability`] when the delivered answers
/// are impossible under the current belief (perfect expert contradicting
/// a zero-prior observation).
pub fn update_with_partial_family(
    belief: &mut Belief,
    queries: &QuerySet,
    panel: &ExpertPanel,
    family: &PartialAnswerFamily,
) -> Result<()> {
    let _span = hc_telemetry::timing::span(hc_telemetry::timing::Phase::BayesUpdate);
    if family.len() != panel.len() {
        return Err(HcError::DimensionMismatch {
            expected: panel.len(),
            actual: family.len(),
        });
    }
    for set in family.sets() {
        if set.len() != queries.len() {
            return Err(HcError::DimensionMismatch {
                expected: queries.len(),
                actual: set.len(),
            });
        }
    }
    let cells = 1usize << queries.len();
    let mut multiplier = vec![1.0; cells];
    for (worker, &set) in panel.workers().iter().zip(family.sets()) {
        if set.answered_count() == 0 {
            continue; // Fully absent: factor 1 everywhere.
        }
        let acc = worker.accuracy.rate();
        for (t, m) in multiplier.iter_mut().enumerate() {
            *m *= partial_answer_set_likelihood(acc, set, t as u32);
        }
    }
    apply_multiplier(belief, queries, &multiplier)
}

/// Multiplies each observation's probability by `multiplier[o|T]` and
/// renormalises.
fn apply_multiplier(belief: &mut Belief, queries: &QuerySet, multiplier: &[f64]) -> Result<()> {
    let facts = queries.facts();
    // Total evidence mass: if the answers are impossible under the current
    // belief (can only happen with perfect experts and a zero-prior
    // observation), the posterior is undefined.
    let q = belief.project(facts);
    let mass: f64 = q.iter().zip(multiplier).map(|(&a, &b)| a * b).sum();
    if mass <= 0.0 {
        return Err(HcError::InvalidProbability(mass));
    }
    if facts.is_empty() {
        return Ok(()); // No queries: posterior equals prior.
    }
    // The multiply is element-independent, so chunking it over the 2^n
    // table cannot perturb numerics; renormalize() below carries the
    // chunked-ordered-sum contract for the mass reduction.
    let probs = belief.probs_mut();
    if facts.len() == 1 {
        let bit = 1usize << facts[0].0;
        crate::parallel::fill_slice(probs, crate::parallel::CHUNK, |offset, slice| {
            for (j, p) in slice.iter_mut().enumerate() {
                *p *= multiplier[usize::from((offset + j) & bit != 0)];
            }
        });
    } else {
        crate::parallel::fill_slice(probs, crate::parallel::CHUNK, |offset, slice| {
            for (j, p) in slice.iter_mut().enumerate() {
                let t = crate::observation::Observation((offset + j) as u32).project(facts) as usize;
                *p *= multiplier[t];
            }
        });
    }
    belief.renormalize();
    Ok(())
}

/// The posterior belief given an answer family, without mutating the
/// prior — convenience for expected-quality computations and tests.
pub fn posterior(
    belief: &Belief,
    queries: &QuerySet,
    panel: &ExpertPanel,
    family: &AnswerFamily,
) -> Result<Belief> {
    let mut out = belief.clone();
    update_with_family(&mut out, queries, panel, family)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::answer::Answer;
    use crate::fact::FactId;
    use crate::observation::Observation;

    fn table_i_belief() -> Belief {
        Belief::from_probs(vec![0.09, 0.11, 0.10, 0.20, 0.08, 0.09, 0.15, 0.18]).unwrap()
    }

    #[test]
    fn single_yes_answer_shifts_marginal_up() {
        let mut b = table_i_belief();
        let queries = QuerySet::new(vec![FactId(0)], 3).unwrap();
        let prior = b.marginal(FactId(0));
        update_with_answer_set(&mut b, &queries, 0.9, AnswerSet::new(&[Answer::Yes])).unwrap();
        let post = b.marginal(FactId(0));
        assert!(post > prior, "Yes from a good worker raises P(f)");
        // Exact Bayes for the marginal: p' = 0.9p / (0.9p + 0.1(1-p)).
        let expected = 0.9 * prior / (0.9 * prior + 0.1 * (1.0 - prior));
        assert!((post - expected).abs() < 1e-9);
    }

    #[test]
    fn no_answer_shifts_marginal_down() {
        let mut b = table_i_belief();
        let queries = QuerySet::new(vec![FactId(1)], 3).unwrap();
        let prior = b.marginal(FactId(1));
        update_with_answer_set(&mut b, &queries, 0.8, AnswerSet::new(&[Answer::No])).unwrap();
        assert!(b.marginal(FactId(1)) < prior);
    }

    #[test]
    fn chance_worker_answer_is_a_no_op() {
        let mut b = table_i_belief();
        let before = b.clone();
        let queries = QuerySet::new(vec![FactId(0)], 3).unwrap();
        update_with_answer_set(&mut b, &queries, 0.5, AnswerSet::new(&[Answer::Yes])).unwrap();
        for (a, e) in b.probs().iter().zip(before.probs()) {
            assert!((a - e).abs() < 1e-12);
        }
    }

    #[test]
    fn family_update_equals_sequential_set_updates() {
        // Workers are conditionally independent given o, so updating with
        // the whole family at once must equal chaining per-worker updates.
        let queries = QuerySet::new(vec![FactId(0), FactId(2)], 3).unwrap();
        let panel = ExpertPanel::from_accuracies(&[0.9, 0.75]).unwrap();
        let family = AnswerFamily::new(vec![
            AnswerSet::new(&[Answer::Yes, Answer::No]),
            AnswerSet::new(&[Answer::Yes, Answer::Yes]),
        ]);

        let mut joint = table_i_belief();
        update_with_family(&mut joint, &queries, &panel, &family).unwrap();

        let mut seq = table_i_belief();
        update_with_answer_set(&mut seq, &queries, 0.9, family.sets()[0]).unwrap();
        update_with_answer_set(&mut seq, &queries, 0.75, family.sets()[1]).unwrap();

        for (a, e) in joint.probs().iter().zip(seq.probs()) {
            assert!((a - e).abs() < 1e-12);
        }
    }

    #[test]
    fn posterior_stays_normalised() {
        let b = table_i_belief();
        let queries = QuerySet::new(vec![FactId(0), FactId(1), FactId(2)], 3).unwrap();
        let panel = ExpertPanel::from_accuracies(&[0.95]).unwrap();
        let family = AnswerFamily::new(vec![AnswerSet::new(&[
            Answer::No,
            Answer::Yes,
            Answer::No,
        ])]);
        let post = posterior(&b, &queries, &panel, &family).unwrap();
        assert!((post.probs().iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_expert_collapses_queried_facts() {
        let b = table_i_belief();
        let queries = QuerySet::new(vec![FactId(0), FactId(1), FactId(2)], 3).unwrap();
        let panel = ExpertPanel::from_accuracies(&[1.0]).unwrap();
        let family = AnswerFamily::new(vec![AnswerSet::new(&[
            Answer::Yes,
            Answer::Yes,
            Answer::No,
        ])]);
        let post = posterior(&b, &queries, &panel, &family).unwrap();
        // All mass on the single consistent observation o4 = 0b011.
        assert!((post.prob(Observation(0b011)) - 1.0).abs() < 1e-12);
        assert_eq!(post.map_labels(), vec![true, true, false]);
    }

    #[test]
    fn impossible_evidence_is_an_error() {
        // Point mass on o=0 (all facts false), perfect expert says Yes:
        // zero posterior mass.
        let mut b = Belief::point_mass(2, Observation(0)).unwrap();
        let queries = QuerySet::new(vec![FactId(0)], 2).unwrap();
        let err =
            update_with_answer_set(&mut b, &queries, 1.0, AnswerSet::new(&[Answer::Yes]));
        assert!(matches!(err, Err(HcError::InvalidProbability(_))));
    }

    #[test]
    fn mismatched_lengths_are_rejected() {
        let mut b = table_i_belief();
        let queries = QuerySet::new(vec![FactId(0), FactId(1)], 3).unwrap();
        let err = update_with_answer_set(&mut b, &queries, 0.9, AnswerSet::new(&[Answer::Yes]));
        assert!(matches!(err, Err(HcError::DimensionMismatch { .. })));

        let panel = ExpertPanel::from_accuracies(&[0.9, 0.9]).unwrap();
        let family = AnswerFamily::new(vec![AnswerSet::new(&[Answer::Yes, Answer::No])]);
        let err = update_with_family(&mut b, &queries, &panel, &family);
        assert!(matches!(err, Err(HcError::DimensionMismatch { .. })));
    }

    #[test]
    fn empty_query_update_is_identity() {
        let mut b = table_i_belief();
        let before = b.clone();
        let queries = QuerySet::empty();
        let panel = ExpertPanel::from_accuracies(&[0.9]).unwrap();
        let family = AnswerFamily::new(vec![AnswerSet::new(&[])]);
        update_with_family(&mut b, &queries, &panel, &family).unwrap();
        assert_eq!(b, before);
    }

    #[test]
    fn partial_family_with_all_answers_matches_complete_update() {
        use crate::answer::PartialAnswerFamily;
        let queries = QuerySet::new(vec![FactId(0), FactId(2)], 3).unwrap();
        let panel = ExpertPanel::from_accuracies(&[0.9, 0.75]).unwrap();
        let family = AnswerFamily::new(vec![
            AnswerSet::new(&[Answer::Yes, Answer::No]),
            AnswerSet::new(&[Answer::No, Answer::Yes]),
        ]);
        let partial: PartialAnswerFamily = (&family).into();

        let mut complete = table_i_belief();
        update_with_family(&mut complete, &queries, &panel, &family).unwrap();
        let mut with_partial = table_i_belief();
        update_with_partial_family(&mut with_partial, &queries, &panel, &partial).unwrap();

        for (a, e) in with_partial.probs().iter().zip(complete.probs()) {
            assert!((a - e).abs() < 1e-12);
        }
    }

    #[test]
    fn fully_absent_round_is_identity() {
        use crate::answer::{PartialAnswerFamily, PartialAnswerSet};
        let mut b = table_i_belief();
        let before = b.clone();
        let queries = QuerySet::new(vec![FactId(0), FactId(1)], 3).unwrap();
        let panel = ExpertPanel::from_accuracies(&[0.9, 0.8]).unwrap();
        let family = PartialAnswerFamily::new(vec![
            PartialAnswerSet::absent(2),
            PartialAnswerSet::absent(2),
        ]);
        update_with_partial_family(&mut b, &queries, &panel, &family).unwrap();
        for (a, e) in b.probs().iter().zip(before.probs()) {
            assert!((a - e).abs() < 1e-15);
        }
    }

    #[test]
    fn partial_update_equals_marginalising_the_missing_answer() {
        use crate::answer::{AnswerOutcome, PartialAnswerFamily, PartialAnswerSet};
        // Worker answered q0=Yes, dropped q1. The partial posterior must
        // equal the P(A_q1)-weighted mixture of the two full posteriors.
        let queries = QuerySet::new(vec![FactId(0), FactId(1)], 3).unwrap();
        let panel = ExpertPanel::from_accuracies(&[0.85]).unwrap();
        let prior = table_i_belief();

        let mut partial_post = prior.clone();
        let partial = PartialAnswerFamily::new(vec![PartialAnswerSet::new(&[
            AnswerOutcome::Answered(Answer::Yes),
            AnswerOutcome::Dropped,
        ])]);
        update_with_partial_family(&mut partial_post, &queries, &panel, &partial).unwrap();

        let mut mixture = vec![0.0; prior.probs().len()];
        let mut mass = 0.0;
        for q1 in [Answer::Yes, Answer::No] {
            let family =
                AnswerFamily::new(vec![AnswerSet::new(&[Answer::Yes, q1])]);
            let p_family =
                crate::answer::family_probability(&prior, &queries, &panel, &family);
            let post = posterior(&prior, &queries, &panel, &family).unwrap();
            for (slot, p) in mixture.iter_mut().zip(post.probs()) {
                *slot += p_family * p;
            }
            mass += p_family;
        }
        for slot in &mut mixture {
            *slot /= mass;
        }
        for (a, e) in partial_post.probs().iter().zip(&mixture) {
            assert!((a - e).abs() < 1e-9, "{a} vs {e}");
        }
    }

    #[test]
    fn partial_update_stays_normalised_and_rejects_mismatch() {
        use crate::answer::{AnswerOutcome, PartialAnswerFamily, PartialAnswerSet};
        let queries = QuerySet::new(vec![FactId(0), FactId(1)], 3).unwrap();
        let panel = ExpertPanel::from_accuracies(&[0.9, 0.8]).unwrap();
        let mut b = table_i_belief();
        let family = PartialAnswerFamily::new(vec![
            PartialAnswerSet::new(&[
                AnswerOutcome::Answered(Answer::No),
                AnswerOutcome::TimedOut,
            ]),
            PartialAnswerSet::absent(2),
        ]);
        update_with_partial_family(&mut b, &queries, &panel, &family).unwrap();
        assert!((b.probs().iter().sum::<f64>() - 1.0).abs() < 1e-12);

        // Wrong worker count.
        let short = PartialAnswerFamily::new(vec![PartialAnswerSet::absent(2)]);
        assert!(matches!(
            update_with_partial_family(&mut b, &queries, &panel, &short),
            Err(HcError::DimensionMismatch { .. })
        ));
        // Wrong query count.
        let wrong_len = PartialAnswerFamily::new(vec![
            PartialAnswerSet::absent(3),
            PartialAnswerSet::absent(3),
        ]);
        assert!(matches!(
            update_with_partial_family(&mut b, &queries, &panel, &wrong_len),
            Err(HcError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn repeated_consistent_answers_converge_to_certainty() {
        let mut b = Belief::uniform(2).unwrap();
        let queries = QuerySet::new(vec![FactId(0), FactId(1)], 2).unwrap();
        for _ in 0..50 {
            update_with_answer_set(
                &mut b,
                &queries,
                0.8,
                AnswerSet::new(&[Answer::Yes, Answer::No]),
            )
            .unwrap();
        }
        assert!(b.prob(Observation(0b01)) > 0.999999);
        assert!(b.entropy() < 1e-4);
    }
}
