//! Bayesian belief update from crowdsourced checking answers
//! (§III-A, Lemma 3 and Equation (23)).
//!
//! After a round of checking, every observation's probability is updated
//! to its posterior given the collected answer family:
//!
//! `P(o | A_CE^T) ∝ P(o) · Π_{cr ∈ CE} P(A_cr^T | o)`
//!
//! The likelihood depends on `o` only through `o`'s restriction to the
//! query set, so the kernel first computes a `2^k`-entry multiplier table
//! and then streams once over the full belief — `O(2^k · k·m + 2^n)`
//! instead of `O(2^n · k·m)`.

use crate::answer::{
    answer_set_likelihood, answer_set_log_likelihood, answer_set_query_factors,
    family_query_factors, partial_answer_set_likelihood, partial_answer_set_log_likelihood,
    partial_family_query_factors, AnswerFamily, AnswerSet, PartialAnswerFamily, QuerySet,
};
use crate::belief::{Belief, BeliefRepr, SparseBelief, PROB_FLOOR};
use crate::error::{HcError, Result};
use crate::fact::FactId;
use crate::observation::project_pattern;
use crate::worker::ExpertPanel;

/// Numerical health report from one Bayes update — the raw material of
/// the `NumericalHealth` telemetry event.
///
/// Every update function returns one of these; existing callers that
/// only care about success can keep discarding it with `?`. The HC loop
/// aggregates the per-task reports into a per-round event so the
/// inspector's audit can flag runs that came close to collapse.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UpdateHealth {
    /// Smallest posterior cell mass after renormalisation. Cells at or
    /// below [`crate::belief::PROB_FLOOR`] are one underflow away from
    /// being unrecoverable by the linear path.
    pub min_mass: f64,
    /// Pre-normalisation total mass — the renormalisation scale
    /// `Σ_o P(o)·m(o)`. Values near the subnormal range mean the table
    /// survived this round only barely.
    pub renorm_scale: f64,
    /// Log evidence of the round's answers, `ln Σ_o P(o)·m(o)`,
    /// accumulated in log domain on the rescue path so it stays finite
    /// even when the linear mass underflows.
    pub log_evidence: f64,
    /// Posterior cells flushed to exact zero despite a finite
    /// log-likelihood (plus any prior cells clamped at
    /// [`crate::belief::PROB_FLOOR`] by the caller's construction path).
    pub clamp_count: usize,
    /// Whether the log-domain rescue path had to take over because the
    /// linear multiply-and-renormalise underflowed.
    pub rescued: bool,
}

impl UpdateHealth {
    /// The no-op update: identity for [`UpdateHealth::merge`].
    pub fn identity() -> Self {
        UpdateHealth {
            min_mass: f64::INFINITY,
            renorm_scale: f64::INFINITY,
            log_evidence: 0.0,
            clamp_count: 0,
            rescued: false,
        }
    }

    /// Folds another update's report into this one (per-round
    /// aggregation across tasks): worst-case mins, summed log evidence
    /// and clamp counts.
    pub fn merge(&mut self, other: &UpdateHealth) {
        self.min_mass = self.min_mass.min(other.min_mass);
        self.renorm_scale = self.renorm_scale.min(other.renorm_scale);
        self.log_evidence += other.log_evidence;
        self.clamp_count += other.clamp_count;
        self.rescued |= other.rescued;
    }

    /// Whether at least one real renormalisation fed this report (the
    /// mins are meaningful, not the identity's infinities).
    pub fn is_meaningful(&self) -> bool {
        self.min_mass.is_finite() && self.renorm_scale.is_finite()
    }
}

/// Updates `belief` in place with one expert's answer set (Lemma 3,
/// Equation (19)).
///
/// # Errors
///
/// [`HcError::DimensionMismatch`] when the answer set length differs from
/// the query set length; [`HcError::InvalidProbability`] /
/// [`HcError::BeliefCollapsed`] when the answers leave no posterior mass
/// (see [`apply_multiplier`'s contract](update_with_partial_family)).
pub fn update_with_answer_set(
    belief: &mut Belief,
    queries: &QuerySet,
    accuracy: f64,
    set: AnswerSet,
) -> Result<UpdateHealth> {
    if set.len() != queries.len() {
        return Err(HcError::DimensionMismatch {
            expected: queries.len(),
            actual: set.len(),
        });
    }
    let cells = 1usize << queries.len();
    let mut multiplier = Vec::with_capacity(cells);
    for t in 0..cells as u32 {
        multiplier.push(answer_set_likelihood(accuracy, set, t));
    }
    apply_multiplier(
        belief,
        queries,
        &multiplier,
        || {
            (0..cells as u32)
                .map(|t| answer_set_log_likelihood(accuracy, set, t))
                .collect()
        },
        || answer_set_query_factors(accuracy, set),
    )
}

/// Updates `belief` in place with a whole answer family from the expert
/// panel (Equation (23)) — the per-round update of Algorithms 1 and 3.
///
/// # Errors
///
/// [`HcError::DimensionMismatch`] when the family's worker count differs
/// from the panel's, or any answer set length differs from the query set.
pub fn update_with_family(
    belief: &mut Belief,
    queries: &QuerySet,
    panel: &ExpertPanel,
    family: &AnswerFamily,
) -> Result<UpdateHealth> {
    if family.len() != panel.len() {
        return Err(HcError::DimensionMismatch {
            expected: panel.len(),
            actual: family.len(),
        });
    }
    for set in family.sets() {
        if set.len() != queries.len() {
            return Err(HcError::DimensionMismatch {
                expected: queries.len(),
                actual: set.len(),
            });
        }
    }
    let cells = 1usize << queries.len();
    let mut multiplier = vec![1.0; cells];
    for (worker, &set) in panel.workers().iter().zip(family.sets()) {
        let acc = worker.accuracy.rate();
        for (t, m) in multiplier.iter_mut().enumerate() {
            *m *= answer_set_likelihood(acc, set, t as u32);
        }
    }
    apply_multiplier(
        belief,
        queries,
        &multiplier,
        || {
            let mut log_mult = vec![0.0; cells];
            for (worker, &set) in panel.workers().iter().zip(family.sets()) {
                let acc = worker.accuracy.rate();
                for (t, l) in log_mult.iter_mut().enumerate() {
                    *l += answer_set_log_likelihood(acc, set, t as u32);
                }
            }
            log_mult
        },
        || family_query_factors(panel, family),
    )
}

/// Updates `belief` in place with a *partial* answer family — the
/// unreliable-crowd generalisation of [`update_with_family`]: each worker
/// may have answered only a subset of the queries (or nothing at all),
/// and the posterior conditions only on the answers that arrived.
///
/// Missing answers are marginalised out (their likelihood factor is 1;
/// see [`crate::answer::partial_answer_set_likelihood`]), so a round in
/// which nobody answered leaves the belief exactly unchanged and the
/// posterior is always a proper distribution — the update never
/// denormalises and never fails on absence alone.
///
/// # Errors
///
/// [`HcError::DimensionMismatch`] when the family's worker count differs
/// from the panel's, or any partial set's query count differs from the
/// query set; [`HcError::InvalidProbability`] when the delivered answers
/// are impossible under the current belief (perfect expert contradicting
/// a zero-prior observation); [`HcError::BeliefCollapsed`] when even the
/// log-domain rescue path cannot recover a usable posterior mass.
pub fn update_with_partial_family(
    belief: &mut Belief,
    queries: &QuerySet,
    panel: &ExpertPanel,
    family: &PartialAnswerFamily,
) -> Result<UpdateHealth> {
    let _span = hc_telemetry::timing::span(hc_telemetry::timing::Phase::BayesUpdate);
    if family.len() != panel.len() {
        return Err(HcError::DimensionMismatch {
            expected: panel.len(),
            actual: family.len(),
        });
    }
    for set in family.sets() {
        if set.len() != queries.len() {
            return Err(HcError::DimensionMismatch {
                expected: queries.len(),
                actual: set.len(),
            });
        }
    }
    let cells = 1usize << queries.len();
    let mut multiplier = vec![1.0; cells];
    for (worker, &set) in panel.workers().iter().zip(family.sets()) {
        if set.answered_count() == 0 {
            continue; // Fully absent: factor 1 everywhere.
        }
        let acc = worker.accuracy.rate();
        for (t, m) in multiplier.iter_mut().enumerate() {
            *m *= partial_answer_set_likelihood(acc, set, t as u32);
        }
    }
    apply_multiplier(
        belief,
        queries,
        &multiplier,
        || {
            let mut log_mult = vec![0.0; cells];
            for (worker, &set) in panel.workers().iter().zip(family.sets()) {
                if set.answered_count() == 0 {
                    continue;
                }
                let acc = worker.accuracy.rate();
                for (t, l) in log_mult.iter_mut().enumerate() {
                    *l += partial_answer_set_log_likelihood(acc, set, t as u32);
                }
            }
            log_mult
        },
        || partial_family_query_factors(panel, family),
    )
}

/// Multiplies each observation's probability by `multiplier[o|T]` and
/// renormalises, falling back to a log-domain rescue when the linear
/// products underflow.
///
/// The healthy path is bit-for-bit the historical multiply-then-
/// renormalise kernel: a chunked dry-run reduction first computes
/// `Σ_o fl(P(o)·m)` with exactly the summands, chunk boundaries, and
/// merge order the old stored-multiply + `renormalize()` produced, and
/// only when that mass is usable (`> 0` with a finite reciprocal) does
/// a single write pass store `fl(fl(P(o)·m)·inv)` — the same two
/// roundings the old code performed. The belief is therefore never
/// touched until the update is known to succeed.
///
/// When the linear mass underflows, `log_multiplier` is invoked (only
/// then — the hot path never pays for it) to rebuild the per-pattern
/// likelihoods as `Σ ln(factor)`. The table is shifted by the largest
/// log-likelihood among patterns the belief actually supports, so the
/// rescued multiplier `exp(l − lmax)` is exactly 1.0 somewhere mass
/// lives, and the posterior is renormalised by *division* (a subnormal
/// rescued mass must not become an infinite reciprocal). The evidence
/// `lmax + ln(Σ P(o)·exp(l − lmax))` stays finite throughout.
///
/// # Errors
///
/// [`HcError::InvalidProbability`] when the projected evidence mass is
/// exactly non-positive (genuinely impossible answers);
/// [`HcError::BeliefCollapsed`] when even the rescued mass is zero or
/// non-finite. In both cases the belief is left unmodified.
fn apply_multiplier(
    belief: &mut Belief,
    queries: &QuerySet,
    multiplier: &[f64],
    log_multiplier: impl FnOnce() -> Vec<f64>,
    query_factors: impl FnOnce() -> Vec<[f64; 2]>,
) -> Result<UpdateHealth> {
    let facts = queries.facts();
    if facts.is_empty() {
        // Total evidence mass under the *projected* belief (one cell when
        // the query set is empty).
        let q = belief.project(facts);
        let mass: f64 = q.iter().zip(multiplier).map(|(&a, &b)| a * b).sum();
        if !(mass > 0.0) {
            // NaN-safe: NaN fails the comparison too.
            return Err(HcError::InvalidProbability(mass));
        }
        // No queries: posterior equals prior, bit for bit. The report is
        // the merge identity so an all-empty round aggregates to "no
        // renormalisation happened".
        return Ok(UpdateHealth::identity());
    }
    match belief.repr() {
        BeliefRepr::Dense(_) => apply_multiplier_dense(belief, facts, multiplier, log_multiplier),
        BeliefRepr::Sparse(_) => apply_multiplier_sparse(belief, facts, multiplier, log_multiplier),
        BeliefRepr::Factored(_) => apply_multiplier_factored(belief, facts, query_factors()),
    }
}

/// The dense kernel — the historical bit-exact multiply-then-renormalise
/// path, and the differential oracle the sparse and factored kernels are
/// locked against.
fn apply_multiplier_dense(
    belief: &mut Belief,
    facts: &[FactId],
    multiplier: &[f64],
    log_multiplier: impl FnOnce() -> Vec<f64>,
) -> Result<UpdateHealth> {
    use crate::parallel;
    // Total evidence mass under the *projected* belief. A non-positive
    // value is either genuinely impossible evidence (perfect experts
    // contradicting a zero-prior observation) or a linear underflow — the
    // two are indistinguishable here (both are exactly 0.0), so the
    // verdict is deferred to the log-domain check below.
    let q = belief.project(facts);
    let mass: f64 = q.iter().zip(multiplier).map(|(&a, &b)| a * b).sum();
    let linear_mass_ok = mass > 0.0; // NaN-safe: NaN fails this too.
    let single_bit = (facts.len() == 1).then(|| 1usize << facts[0].0);
    let mult_of = |o: usize| -> f64 {
        match single_bit {
            Some(bit) => multiplier[usize::from(o & bit != 0)],
            None => {
                multiplier[crate::observation::Observation(o as u32).project(facts) as usize]
            }
        }
    };

    let n = belief.probs().len();
    // Work counter: every pattern of this belief's table is read (and,
    // on success, rewritten) by the passes below. Counted here on the
    // coordinating thread; a no-op unless profiling is enabled.
    hc_telemetry::timing::add(hc_telemetry::timing::Counter::PatternsTouched, n as u64);
    let probs_ro = belief.probs();
    if linear_mass_ok {
        // Pass 1 (read-only): chunked ordered reduction of the scaled
        // table. The per-chunk running sum and the left-to-right merge
        // reproduce `renormalize()`'s `sum_chunks` association order
        // exactly; the min rides along without touching the sum's
        // arithmetic.
        let parts = parallel::map_chunks(n, parallel::CHUNK, |r| {
            let mut sum = 0.0;
            let mut min = f64::INFINITY;
            for o in r {
                let scaled = probs_ro[o] * mult_of(o);
                sum += scaled;
                if scaled < min {
                    min = scaled;
                }
            }
            (sum, min)
        });
        let mut sum = 0.0;
        let mut min_scaled = f64::INFINITY;
        for &(s, m) in &parts {
            sum += s;
            if m < min_scaled {
                min_scaled = m;
            }
        }

        let inv = 1.0 / sum;
        if sum > 0.0 && inv.is_finite() {
            // Healthy: single write pass, identical bits to the
            // historical multiply-then-renormalise double write.
            let probs = belief.probs_mut();
            parallel::fill_slice(probs, parallel::CHUNK, |offset, slice| {
                for (j, p) in slice.iter_mut().enumerate() {
                    *p = (*p * mult_of(offset + j)) * inv;
                }
            });
            return Ok(UpdateHealth {
                min_mass: min_scaled * inv,
                renorm_scale: sum,
                log_evidence: sum.ln(),
                clamp_count: 0,
                rescued: false,
            });
        }
    }

    // Rescue: the linear path underflowed (projected mass or full-table
    // mass flushed to zero, or its reciprocal overflowed). Rebuild the
    // multiplier in log domain and shift by the largest log-likelihood
    // among *supported* patterns (`q[t] > 0`) — shifting by an
    // unsupported pattern's larger likelihood would re-flush the cells
    // that still carry mass.
    let log_mult = log_multiplier();
    debug_assert_eq!(log_mult.len(), multiplier.len());
    let mut lmax = f64::NEG_INFINITY;
    for (&qt, &l) in q.iter().zip(&log_mult) {
        if qt > 0.0 && l > lmax {
            lmax = l;
        }
    }
    if !lmax.is_finite() {
        // Every pattern the belief supports has log-likelihood −∞ (or the
        // belief has no support at all): the evidence is genuinely
        // impossible, not underflowed — keep the historical error.
        return Err(HcError::InvalidProbability(mass));
    }
    // `exp(l − lmax) ∈ [0, 1]` on supported patterns (their `l` is at
    // most `lmax` by construction), equal to 1.0 on the dominant one.
    // Unsupported patterns are pinned to 0.0 outright: their
    // log-likelihood may exceed `lmax`, and `exp` of that difference
    // overflows to `+inf`, which would turn the zero-mass cells
    // projecting there into `0 · ∞ = NaN`. Every cell with positive
    // mass projects to a supported pattern, so the pin changes no
    // posterior value. A supported pattern that still flushes to zero
    // despite a finite log-likelihood is a genuine clamp — counted per
    // cell below.
    let rescued_mult: Vec<f64> = log_mult
        .iter()
        .zip(&q)
        .map(|(&l, &qt)| if qt > 0.0 { (l - lmax).exp() } else { 0.0 })
        .collect();
    let flushed: Vec<bool> = log_mult
        .iter()
        .zip(&rescued_mult)
        .map(|(&l, &m)| l.is_finite() && m == 0.0)
        .collect();
    let rescued_of = |o: usize| -> (f64, bool) {
        let t = match single_bit {
            Some(bit) => usize::from(o & bit != 0),
            None => crate::observation::Observation(o as u32).project(facts) as usize,
        };
        (rescued_mult[t], flushed[t])
    };
    let parts = parallel::map_chunks(n, parallel::CHUNK, |r| {
        let mut sum = 0.0;
        let mut min = f64::INFINITY;
        let mut clamps = 0usize;
        for o in r {
            let p = probs_ro[o];
            let (m, pattern_flushed) = rescued_of(o);
            let scaled = p * m;
            if p > 0.0 && (pattern_flushed || (m > 0.0 && scaled == 0.0)) {
                clamps += 1;
            }
            sum += scaled;
            if scaled < min {
                min = scaled;
            }
        }
        (sum, min, clamps)
    });
    let mut rsum = 0.0;
    let mut rmin = f64::INFINITY;
    let mut clamp_count = 0usize;
    for &(s, m, c) in &parts {
        rsum += s;
        if m < rmin {
            rmin = m;
        }
        clamp_count += c;
    }
    // NaN is non-finite, so a NaN-poisoned sum is rejected too.
    if rsum <= 0.0 || !rsum.is_finite() {
        return Err(HcError::BeliefCollapsed { mass: rsum });
    }
    let probs = belief.probs_mut();
    parallel::fill_slice(probs, parallel::CHUNK, |offset, slice| {
        for (j, p) in slice.iter_mut().enumerate() {
            *p = (*p * rescued_of(offset + j).0) / rsum;
        }
    });
    Ok(UpdateHealth {
        min_mass: rmin / rsum,
        renorm_scale: rsum,
        log_evidence: lmax + rsum.ln(),
        clamp_count,
        rescued: true,
    })
}

/// Drops support cells whose posterior fell below [`PROB_FLOOR`],
/// returning the kept support, the dropped (post-normalisation) mass
/// `δ`, and how many cells were pruned. Serial in pattern order, so the
/// dropped mass is deterministic at any thread count.
fn prune_support(patterns: &[u64], probs: &[f64]) -> (Vec<u64>, Vec<f64>, f64, usize) {
    let mut kept_patterns = Vec::with_capacity(patterns.len());
    let mut kept_probs = Vec::with_capacity(probs.len());
    let mut dropped_mass = 0.0;
    let mut dropped = 0usize;
    for (&pat, &p) in patterns.iter().zip(probs) {
        if p < PROB_FLOOR {
            dropped_mass += p;
            dropped += 1;
        } else {
            kept_patterns.push(pat);
            kept_probs.push(p);
        }
    }
    (kept_patterns, kept_probs, dropped_mass, dropped)
}

/// The sparse kernel: the dense passes transplanted onto the support
/// vectors (same chunk boundaries, same merge order — a sparse belief
/// whose support is the complete untouched `2^n` layout produces
/// bit-identical posteriors), followed by a prune of sub-floor cells.
///
/// The certified truncation bound is advanced per update as
/// `L ← min(1, 2·L·(M/Z) + δ)` where `M = sup_t m(t)` over the
/// multiplier table (≤ 1: likelihoods are probabilities), `Z` the
/// pre-normalisation evidence mass over the kept support, and `δ` the
/// pruned post-normalisation mass. The first term bounds how
/// renormalising over a truncated support amplifies the error already
/// present; the second is the exact TV cost of this round's prune.
/// When nothing is pruned the posterior write is the only mutation, so
/// the untruncated path stays bit-exact against dense.
///
/// All work happens on cloned support vectors committed at the end, so
/// the belief is unmodified on any error — the same atomicity contract
/// as the dense kernel.
fn apply_multiplier_sparse(
    belief: &mut Belief,
    facts: &[FactId],
    multiplier: &[f64],
    log_multiplier: impl FnOnce() -> Vec<f64>,
) -> Result<UpdateHealth> {
    use crate::parallel;
    let q = belief.project(facts);
    let mass: f64 = q.iter().zip(multiplier).map(|(&a, &b)| a * b).sum();
    let linear_mass_ok = mass > 0.0; // NaN-safe.
    let single_bit = (facts.len() == 1).then(|| 1u64 << facts[0].0);
    let BeliefRepr::Sparse(sparse) = belief.repr() else {
        unreachable!("apply_multiplier_sparse on a non-sparse belief")
    };
    let patterns = sparse.patterns().to_vec();
    let mut probs = sparse.probs().to_vec();
    let old_bound = sparse.truncation_bound();
    let n = probs.len();
    hc_telemetry::timing::add(hc_telemetry::timing::Counter::PatternsTouched, n as u64);
    let mult_of = |pat: u64| -> f64 {
        match single_bit {
            Some(bit) => multiplier[usize::from(pat & bit != 0)],
            None => multiplier[project_pattern(pat, facts) as usize],
        }
    };

    // Commits the pruned posterior, re-certifying the truncation bound.
    // `mult_ratio` is M/Z for this round's effective multiplier.
    let mut commit = |kept_patterns: Vec<u64>,
                      mut kept_probs: Vec<f64>,
                      delta: f64,
                      pruned: usize,
                      mult_ratio: f64,
                      mut health: UpdateHealth|
     -> Result<UpdateHealth> {
        if kept_probs.is_empty() {
            return Err(HcError::BeliefCollapsed { mass: 0.0 });
        }
        if pruned > 0 {
            let kept_sum = parallel::sum_chunks(kept_probs.len(), parallel::CHUNK, |r| {
                kept_probs[r].iter().sum::<f64>()
            });
            let inv = 1.0 / kept_sum;
            if kept_sum <= 0.0 || !inv.is_finite() {
                return Err(HcError::BeliefCollapsed { mass: kept_sum });
            }
            parallel::fill_slice(&mut kept_probs, parallel::CHUNK, |_, slice| {
                for p in slice {
                    *p *= inv;
                }
            });
            // Truncated mass is part of the evidence accounting: the
            // kept evidence is `Z · kept_sum` of the exact evidence.
            health.log_evidence += kept_sum.ln();
            health.clamp_count += pruned;
        }
        let truncation_bound = (2.0 * old_bound * mult_ratio + delta).min(1.0);
        *belief.repr_mut() = BeliefRepr::Sparse(SparseBelief {
            patterns: kept_patterns,
            probs: kept_probs,
            truncation_bound,
        });
        Ok(health)
    };

    if linear_mass_ok {
        let parts = parallel::map_chunks(n, parallel::CHUNK, |r| {
            let mut sum = 0.0;
            let mut min = f64::INFINITY;
            for o in r {
                let scaled = probs[o] * mult_of(patterns[o]);
                sum += scaled;
                if scaled < min {
                    min = scaled;
                }
            }
            (sum, min)
        });
        let mut sum = 0.0;
        let mut min_scaled = f64::INFINITY;
        for &(s, m) in &parts {
            sum += s;
            if m < min_scaled {
                min_scaled = m;
            }
        }
        let inv = 1.0 / sum;
        if sum > 0.0 && inv.is_finite() {
            parallel::fill_slice(&mut probs, parallel::CHUNK, |offset, slice| {
                for (j, p) in slice.iter_mut().enumerate() {
                    *p = (*p * mult_of(patterns[offset + j])) * inv;
                }
            });
            let (kept_patterns, kept_probs, delta, pruned) = prune_support(&patterns, &probs);
            let max_mult = multiplier.iter().fold(0.0f64, |a, &m| a.max(m));
            return commit(
                kept_patterns,
                kept_probs,
                delta,
                pruned,
                max_mult / sum,
                UpdateHealth {
                    min_mass: min_scaled * inv,
                    renorm_scale: sum,
                    log_evidence: sum.ln(),
                    clamp_count: 0,
                    rescued: false,
                },
            );
        }
    }

    // Rescue: mirror of the dense log-domain path over the support.
    let log_mult = log_multiplier();
    debug_assert_eq!(log_mult.len(), multiplier.len());
    let mut lmax = f64::NEG_INFINITY;
    for (&qt, &l) in q.iter().zip(&log_mult) {
        if qt > 0.0 && l > lmax {
            lmax = l;
        }
    }
    if !lmax.is_finite() {
        return Err(HcError::InvalidProbability(mass));
    }
    let rescued_mult: Vec<f64> = log_mult
        .iter()
        .zip(&q)
        .map(|(&l, &qt)| if qt > 0.0 { (l - lmax).exp() } else { 0.0 })
        .collect();
    let flushed: Vec<bool> = log_mult
        .iter()
        .zip(&rescued_mult)
        .map(|(&l, &m)| l.is_finite() && m == 0.0)
        .collect();
    let rescued_of = |pat: u64| -> (f64, bool) {
        let t = match single_bit {
            Some(bit) => usize::from(pat & bit != 0),
            None => project_pattern(pat, facts) as usize,
        };
        (rescued_mult[t], flushed[t])
    };
    let parts = parallel::map_chunks(n, parallel::CHUNK, |r| {
        let mut sum = 0.0;
        let mut min = f64::INFINITY;
        let mut clamps = 0usize;
        for o in r {
            let p = probs[o];
            let (m, pattern_flushed) = rescued_of(patterns[o]);
            let scaled = p * m;
            if p > 0.0 && (pattern_flushed || (m > 0.0 && scaled == 0.0)) {
                clamps += 1;
            }
            sum += scaled;
            if scaled < min {
                min = scaled;
            }
        }
        (sum, min, clamps)
    });
    let mut rsum = 0.0;
    let mut rmin = f64::INFINITY;
    let mut clamp_count = 0usize;
    for &(s, m, c) in &parts {
        rsum += s;
        if m < rmin {
            rmin = m;
        }
        clamp_count += c;
    }
    if rsum <= 0.0 || !rsum.is_finite() {
        return Err(HcError::BeliefCollapsed { mass: rsum });
    }
    parallel::fill_slice(&mut probs, parallel::CHUNK, |offset, slice| {
        for (j, p) in slice.iter_mut().enumerate() {
            *p = (*p * rescued_of(patterns[offset + j]).0) / rsum;
        }
    });
    let (kept_patterns, kept_probs, delta, pruned) = prune_support(&patterns, &probs);
    // In the shifted log domain the effective multiplier is
    // `exp(l − lmax)`, whose supremum over *all* patterns (the exact
    // posterior may live outside the kept support) is
    // `exp(max_finite_l − lmax)`.
    let l_global_max = log_mult
        .iter()
        .fold(f64::NEG_INFINITY, |a, &l| if l.is_finite() { a.max(l) } else { a });
    let max_mult = (l_global_max - lmax).exp();
    commit(
        kept_patterns,
        kept_probs,
        delta,
        pruned,
        max_mult / rsum,
        UpdateHealth {
            min_mass: rmin / rsum,
            renorm_scale: rsum,
            log_evidence: lmax + rsum.ln(),
            clamp_count,
            rescued: true,
        },
    )
}

/// The factored kernel: because workers answer each query independently
/// given the ground truth, the joint multiplier factorises per query
/// (`m(t) = Π_j factor_j(t_j)` — see
/// [`crate::answer::answer_set_query_factors`]), so each block can be
/// updated with only its own queries' factors through the dense kernel.
/// Exact when the blocks are independent: the per-block evidences
/// multiply to the joint evidence, which is why summing the per-block
/// `log_evidence` via [`UpdateHealth::merge`] is the correct total.
///
/// Block updates run on clones and commit only when every touched block
/// succeeds, preserving the kernels' belief-unmodified-on-error
/// contract. Blocks with no queried fact are left bit-identical.
fn apply_multiplier_factored(
    belief: &mut Belief,
    facts: &[FactId],
    factors: Vec<[f64; 2]>,
) -> Result<UpdateHealth> {
    debug_assert_eq!(factors.len(), facts.len());
    let BeliefRepr::Factored(f) = belief.repr() else {
        unreachable!("apply_multiplier_factored on a non-factored belief")
    };
    let mut health = UpdateHealth::identity();
    let mut updated: Vec<(usize, Belief)> = Vec::new();
    let mut offset = 0usize;
    for (i, block) in f.blocks().iter().enumerate() {
        let nb = block.num_facts();
        // This block's slice of the query set, in query order, with
        // facts translated to block-local ids.
        let local: Vec<(FactId, [f64; 2])> = facts
            .iter()
            .zip(&factors)
            .filter(|(fct, _)| {
                let g = fct.0 as usize;
                g >= offset && g < offset + nb
            })
            .map(|(fct, &fac)| (FactId((fct.0 as usize - offset) as u32), fac))
            .collect();
        offset += nb;
        if local.is_empty() {
            continue;
        }
        let k = local.len();
        let mut local_mult = Vec::with_capacity(1 << k);
        for t in 0..1u32 << k {
            let mut m = 1.0;
            for (j, &(_, fac)) in local.iter().enumerate() {
                m *= fac[((t >> j) & 1) as usize];
            }
            local_mult.push(m);
        }
        let local_facts: Vec<FactId> = local.iter().map(|&(lf, _)| lf).collect();
        let mut block_post = block.clone();
        let block_health = apply_multiplier_dense(&mut block_post, &local_facts, &local_mult, || {
            (0..1u32 << k)
                .map(|t| {
                    let mut l = 0.0;
                    for (j, &(_, fac)) in local.iter().enumerate() {
                        let fval = fac[((t >> j) & 1) as usize];
                        if fval != 1.0 {
                            l += fval.ln();
                        }
                    }
                    l
                })
                .collect()
        })?;
        health.merge(&block_health);
        updated.push((i, block_post));
    }
    let BeliefRepr::Factored(f) = belief.repr_mut() else {
        unreachable!()
    };
    for (i, post) in updated {
        f.blocks[i] = post;
    }
    Ok(health)
}

/// The posterior belief given an answer family, without mutating the
/// prior — convenience for expected-quality computations and tests.
pub fn posterior(
    belief: &Belief,
    queries: &QuerySet,
    panel: &ExpertPanel,
    family: &AnswerFamily,
) -> Result<Belief> {
    let mut out = belief.clone();
    update_with_family(&mut out, queries, panel, family)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::answer::Answer;
    use crate::fact::FactId;
    use crate::observation::Observation;

    fn table_i_belief() -> Belief {
        Belief::from_probs(vec![0.09, 0.11, 0.10, 0.20, 0.08, 0.09, 0.15, 0.18]).unwrap()
    }

    #[test]
    fn single_yes_answer_shifts_marginal_up() {
        let mut b = table_i_belief();
        let queries = QuerySet::new(vec![FactId(0)], 3).unwrap();
        let prior = b.marginal(FactId(0));
        update_with_answer_set(&mut b, &queries, 0.9, AnswerSet::new(&[Answer::Yes])).unwrap();
        let post = b.marginal(FactId(0));
        assert!(post > prior, "Yes from a good worker raises P(f)");
        // Exact Bayes for the marginal: p' = 0.9p / (0.9p + 0.1(1-p)).
        let expected = 0.9 * prior / (0.9 * prior + 0.1 * (1.0 - prior));
        assert!((post - expected).abs() < 1e-9);
    }

    #[test]
    fn no_answer_shifts_marginal_down() {
        let mut b = table_i_belief();
        let queries = QuerySet::new(vec![FactId(1)], 3).unwrap();
        let prior = b.marginal(FactId(1));
        update_with_answer_set(&mut b, &queries, 0.8, AnswerSet::new(&[Answer::No])).unwrap();
        assert!(b.marginal(FactId(1)) < prior);
    }

    #[test]
    fn chance_worker_answer_is_a_no_op() {
        let mut b = table_i_belief();
        let before = b.clone();
        let queries = QuerySet::new(vec![FactId(0)], 3).unwrap();
        update_with_answer_set(&mut b, &queries, 0.5, AnswerSet::new(&[Answer::Yes])).unwrap();
        for (a, e) in b.probs().iter().zip(before.probs()) {
            assert!((a - e).abs() < 1e-12);
        }
    }

    #[test]
    fn family_update_equals_sequential_set_updates() {
        // Workers are conditionally independent given o, so updating with
        // the whole family at once must equal chaining per-worker updates.
        let queries = QuerySet::new(vec![FactId(0), FactId(2)], 3).unwrap();
        let panel = ExpertPanel::from_accuracies(&[0.9, 0.75]).unwrap();
        let family = AnswerFamily::new(vec![
            AnswerSet::new(&[Answer::Yes, Answer::No]),
            AnswerSet::new(&[Answer::Yes, Answer::Yes]),
        ]);

        let mut joint = table_i_belief();
        update_with_family(&mut joint, &queries, &panel, &family).unwrap();

        let mut seq = table_i_belief();
        update_with_answer_set(&mut seq, &queries, 0.9, family.sets()[0]).unwrap();
        update_with_answer_set(&mut seq, &queries, 0.75, family.sets()[1]).unwrap();

        for (a, e) in joint.probs().iter().zip(seq.probs()) {
            assert!((a - e).abs() < 1e-12);
        }
    }

    #[test]
    fn posterior_stays_normalised() {
        let b = table_i_belief();
        let queries = QuerySet::new(vec![FactId(0), FactId(1), FactId(2)], 3).unwrap();
        let panel = ExpertPanel::from_accuracies(&[0.95]).unwrap();
        let family = AnswerFamily::new(vec![AnswerSet::new(&[
            Answer::No,
            Answer::Yes,
            Answer::No,
        ])]);
        let post = posterior(&b, &queries, &panel, &family).unwrap();
        assert!((post.probs().iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_expert_collapses_queried_facts() {
        let b = table_i_belief();
        let queries = QuerySet::new(vec![FactId(0), FactId(1), FactId(2)], 3).unwrap();
        let panel = ExpertPanel::from_accuracies(&[1.0]).unwrap();
        let family = AnswerFamily::new(vec![AnswerSet::new(&[
            Answer::Yes,
            Answer::Yes,
            Answer::No,
        ])]);
        let post = posterior(&b, &queries, &panel, &family).unwrap();
        // All mass on the single consistent observation o4 = 0b011.
        assert!((post.prob(Observation(0b011)) - 1.0).abs() < 1e-12);
        assert_eq!(post.map_labels(), vec![true, true, false]);
    }

    #[test]
    fn impossible_evidence_is_an_error() {
        // Point mass on o=0 (all facts false), perfect expert says Yes:
        // zero posterior mass.
        let mut b = Belief::point_mass(2, Observation(0)).unwrap();
        let queries = QuerySet::new(vec![FactId(0)], 2).unwrap();
        let err =
            update_with_answer_set(&mut b, &queries, 1.0, AnswerSet::new(&[Answer::Yes]));
        assert!(matches!(err, Err(HcError::InvalidProbability(_))));
    }

    #[test]
    fn mismatched_lengths_are_rejected() {
        let mut b = table_i_belief();
        let queries = QuerySet::new(vec![FactId(0), FactId(1)], 3).unwrap();
        let err = update_with_answer_set(&mut b, &queries, 0.9, AnswerSet::new(&[Answer::Yes]));
        assert!(matches!(err, Err(HcError::DimensionMismatch { .. })));

        let panel = ExpertPanel::from_accuracies(&[0.9, 0.9]).unwrap();
        let family = AnswerFamily::new(vec![AnswerSet::new(&[Answer::Yes, Answer::No])]);
        let err = update_with_family(&mut b, &queries, &panel, &family);
        assert!(matches!(err, Err(HcError::DimensionMismatch { .. })));
    }

    #[test]
    fn empty_query_update_is_identity() {
        let mut b = table_i_belief();
        let before = b.clone();
        let queries = QuerySet::empty();
        let panel = ExpertPanel::from_accuracies(&[0.9]).unwrap();
        let family = AnswerFamily::new(vec![AnswerSet::new(&[])]);
        let health = update_with_family(&mut b, &queries, &panel, &family).unwrap();
        assert_eq!(b, before);
        // The prior must be untouched *bit for bit* — the early return
        // happens before any write pass, so not even a `*= 1.0` rounding
        // identity may run over the table.
        for (a, e) in b.probs().iter().zip(before.probs()) {
            assert_eq!(a.to_bits(), e.to_bits());
        }
        // No renormalisation happened: the report is the merge identity.
        assert!(!health.is_meaningful());
        assert!(!health.rescued);
        assert_eq!(health.clamp_count, 0);
    }

    #[test]
    fn perfect_panel_contradicting_zero_prior_is_rejected_without_mutation() {
        // Several perfect experts all contradicting a point-mass prior:
        // the projected evidence mass is exactly zero, the update must
        // fail with `InvalidProbability`, and the belief must be left
        // bit-for-bit unchanged.
        let mut b = Belief::point_mass(2, Observation(0)).unwrap();
        let before = b.clone();
        let queries = QuerySet::new(vec![FactId(0), FactId(1)], 2).unwrap();
        let panel = ExpertPanel::from_accuracies(&[1.0, 1.0]).unwrap();
        let family = AnswerFamily::new(vec![
            AnswerSet::new(&[Answer::Yes, Answer::Yes]),
            AnswerSet::new(&[Answer::Yes, Answer::Yes]),
        ]);
        let err = update_with_family(&mut b, &queries, &panel, &family);
        assert!(matches!(err, Err(HcError::InvalidProbability(_))));
        for (a, e) in b.probs().iter().zip(before.probs()) {
            assert_eq!(a.to_bits(), e.to_bits());
        }
    }

    #[test]
    fn underflowing_evidence_is_rescued_in_log_domain() {
        // A prior with support on a single pattern, hammered by a panel
        // whose combined contradiction likelihood underflows f64 — the
        // linear multiplier is (1e-12)^30 ≈ 1e-360 → 0.0 on every
        // surviving cell, so the old kernel's renormalisation mass was
        // exactly zero (NaN posterior in release). The rescue path must
        // recognise that evidence cannot move a point mass and return it
        // unchanged, with a finite log evidence.
        let mut b = Belief::from_probs(vec![0.0, 1.0, 0.0, 0.0]).unwrap();
        let queries = QuerySet::new(vec![FactId(0), FactId(1)], 2).unwrap();
        let acc = 1.0 - 1e-12;
        let panel = ExpertPanel::from_accuracies(&vec![acc; 15]).unwrap();
        // Truth is o=0b01 (f0 true, f1 false); every worker answers the
        // exact opposite on both queries: 30 contradicting factors.
        let family = AnswerFamily::new(vec![
            AnswerSet::new(&[Answer::No, Answer::Yes]);
            15
        ]);
        let health = update_with_family(&mut b, &queries, &panel, &family).unwrap();
        assert!(health.rescued, "the linear path must have underflowed");
        assert!(
            health.log_evidence.is_finite() && health.log_evidence < -800.0,
            "log evidence ≈ 30·ln(1e-12) ≈ -829, got {}",
            health.log_evidence
        );
        assert!((b.prob(Observation(0b01)) - 1.0).abs() < 1e-12);
        assert!(b.probs().iter().all(|p| p.is_finite()));
        assert!((b.probs().iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn update_health_reports_the_renormalisation() {
        let mut b = table_i_belief();
        let queries = QuerySet::new(vec![FactId(0)], 3).unwrap();
        let health =
            update_with_answer_set(&mut b, &queries, 0.9, AnswerSet::new(&[Answer::Yes]))
                .unwrap();
        assert!(health.is_meaningful());
        assert!(!health.rescued);
        assert_eq!(health.clamp_count, 0);
        // Pre-normalisation mass = 0.9·P(f0) + 0.1·(1−P(f0)), and the log
        // evidence is its logarithm.
        let prior = table_i_belief().marginal(FactId(0));
        let expected_mass = 0.9 * prior + 0.1 * (1.0 - prior);
        assert!((health.renorm_scale - expected_mass).abs() < 1e-12);
        assert!((health.log_evidence - expected_mass.ln()).abs() < 1e-12);
        // min_mass is the smallest posterior cell.
        let observed_min = b.probs().iter().cloned().fold(f64::INFINITY, f64::min);
        assert!((health.min_mass - observed_min).abs() < 1e-12);
    }

    #[test]
    fn update_health_merge_aggregates_worst_case() {
        let mut agg = UpdateHealth::identity();
        agg.merge(&UpdateHealth {
            min_mass: 1e-3,
            renorm_scale: 0.5,
            log_evidence: -0.7,
            clamp_count: 1,
            rescued: false,
        });
        agg.merge(&UpdateHealth {
            min_mass: 1e-9,
            renorm_scale: 0.9,
            log_evidence: -0.1,
            clamp_count: 2,
            rescued: true,
        });
        assert_eq!(agg.min_mass, 1e-9);
        assert_eq!(agg.renorm_scale, 0.5);
        assert!((agg.log_evidence - -0.8).abs() < 1e-12);
        assert_eq!(agg.clamp_count, 3);
        assert!(agg.rescued);
        assert!(agg.is_meaningful());
    }

    #[test]
    fn partial_family_with_all_answers_matches_complete_update() {
        use crate::answer::PartialAnswerFamily;
        let queries = QuerySet::new(vec![FactId(0), FactId(2)], 3).unwrap();
        let panel = ExpertPanel::from_accuracies(&[0.9, 0.75]).unwrap();
        let family = AnswerFamily::new(vec![
            AnswerSet::new(&[Answer::Yes, Answer::No]),
            AnswerSet::new(&[Answer::No, Answer::Yes]),
        ]);
        let partial: PartialAnswerFamily = (&family).into();

        let mut complete = table_i_belief();
        update_with_family(&mut complete, &queries, &panel, &family).unwrap();
        let mut with_partial = table_i_belief();
        update_with_partial_family(&mut with_partial, &queries, &panel, &partial).unwrap();

        for (a, e) in with_partial.probs().iter().zip(complete.probs()) {
            assert!((a - e).abs() < 1e-12);
        }
    }

    #[test]
    fn fully_absent_round_is_identity() {
        use crate::answer::{PartialAnswerFamily, PartialAnswerSet};
        let mut b = table_i_belief();
        let before = b.clone();
        let queries = QuerySet::new(vec![FactId(0), FactId(1)], 3).unwrap();
        let panel = ExpertPanel::from_accuracies(&[0.9, 0.8]).unwrap();
        let family = PartialAnswerFamily::new(vec![
            PartialAnswerSet::absent(2),
            PartialAnswerSet::absent(2),
        ]);
        update_with_partial_family(&mut b, &queries, &panel, &family).unwrap();
        for (a, e) in b.probs().iter().zip(before.probs()) {
            assert!((a - e).abs() < 1e-15);
        }
    }

    #[test]
    fn partial_update_equals_marginalising_the_missing_answer() {
        use crate::answer::{AnswerOutcome, PartialAnswerFamily, PartialAnswerSet};
        // Worker answered q0=Yes, dropped q1. The partial posterior must
        // equal the P(A_q1)-weighted mixture of the two full posteriors.
        let queries = QuerySet::new(vec![FactId(0), FactId(1)], 3).unwrap();
        let panel = ExpertPanel::from_accuracies(&[0.85]).unwrap();
        let prior = table_i_belief();

        let mut partial_post = prior.clone();
        let partial = PartialAnswerFamily::new(vec![PartialAnswerSet::new(&[
            AnswerOutcome::Answered(Answer::Yes),
            AnswerOutcome::Dropped,
        ])]);
        update_with_partial_family(&mut partial_post, &queries, &panel, &partial).unwrap();

        let mut mixture = vec![0.0; prior.probs().len()];
        let mut mass = 0.0;
        for q1 in [Answer::Yes, Answer::No] {
            let family =
                AnswerFamily::new(vec![AnswerSet::new(&[Answer::Yes, q1])]);
            let p_family =
                crate::answer::family_probability(&prior, &queries, &panel, &family);
            let post = posterior(&prior, &queries, &panel, &family).unwrap();
            for (slot, p) in mixture.iter_mut().zip(post.probs()) {
                *slot += p_family * p;
            }
            mass += p_family;
        }
        for slot in &mut mixture {
            *slot /= mass;
        }
        for (a, e) in partial_post.probs().iter().zip(&mixture) {
            assert!((a - e).abs() < 1e-9, "{a} vs {e}");
        }
    }

    #[test]
    fn partial_update_stays_normalised_and_rejects_mismatch() {
        use crate::answer::{AnswerOutcome, PartialAnswerFamily, PartialAnswerSet};
        let queries = QuerySet::new(vec![FactId(0), FactId(1)], 3).unwrap();
        let panel = ExpertPanel::from_accuracies(&[0.9, 0.8]).unwrap();
        let mut b = table_i_belief();
        let family = PartialAnswerFamily::new(vec![
            PartialAnswerSet::new(&[
                AnswerOutcome::Answered(Answer::No),
                AnswerOutcome::TimedOut,
            ]),
            PartialAnswerSet::absent(2),
        ]);
        update_with_partial_family(&mut b, &queries, &panel, &family).unwrap();
        assert!((b.probs().iter().sum::<f64>() - 1.0).abs() < 1e-12);

        // Wrong worker count.
        let short = PartialAnswerFamily::new(vec![PartialAnswerSet::absent(2)]);
        assert!(matches!(
            update_with_partial_family(&mut b, &queries, &panel, &short),
            Err(HcError::DimensionMismatch { .. })
        ));
        // Wrong query count.
        let wrong_len = PartialAnswerFamily::new(vec![
            PartialAnswerSet::absent(3),
            PartialAnswerSet::absent(3),
        ]);
        assert!(matches!(
            update_with_partial_family(&mut b, &queries, &panel, &wrong_len),
            Err(HcError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn sparse_untruncated_update_is_bit_exact_vs_dense() {
        // A full-support sparse belief runs the same values through the
        // same chunk boundaries as dense, so the posterior (and the
        // health report) must match bit for bit.
        let queries = QuerySet::new(vec![FactId(0), FactId(2)], 3).unwrap();
        let panel = ExpertPanel::from_accuracies(&[0.9, 0.75]).unwrap();
        let family = AnswerFamily::new(vec![
            AnswerSet::new(&[Answer::Yes, Answer::No]),
            AnswerSet::new(&[Answer::No, Answer::Yes]),
        ]);
        let mut dense = table_i_belief();
        let mut sparse = dense.to_sparse(usize::MAX).unwrap();
        let hd = update_with_family(&mut dense, &queries, &panel, &family).unwrap();
        let hs = update_with_family(&mut sparse, &queries, &panel, &family).unwrap();
        assert_eq!(hd, hs, "health reports must be identical");
        assert_eq!(sparse.truncation_bound(), 0.0, "nothing was truncated");
        assert_eq!(sparse.support_len(), 8, "support layout untouched");
        for o in 0..8u64 {
            assert_eq!(
                dense.prob_pattern(o).to_bits(),
                sparse.prob_pattern(o).to_bits(),
                "cell {o}"
            );
        }
    }

    #[test]
    fn sparse_pruning_certifies_the_truncation_bound() {
        // Hammer a 6-fact group with consistent high-accuracy answers:
        // the posterior concentrates, tail cells fall below PROB_FLOOR,
        // and the sparse path prunes them. The realized dense-vs-sparse
        // TV distance must stay within the certified bound.
        let marginals = [0.6, 0.4, 0.55, 0.45, 0.5, 0.52];
        let mut dense = Belief::from_marginals(&marginals).unwrap();
        let mut sparse = dense.to_sparse(usize::MAX).unwrap();
        let queries = QuerySet::new((0..6).map(FactId).collect(), 6).unwrap();
        let set = AnswerSet::new(&[Answer::Yes; 6]);
        let mut pruned_ever = false;
        for _ in 0..12 {
            update_with_answer_set(&mut dense, &queries, 0.95, set).unwrap();
            let h = update_with_answer_set(&mut sparse, &queries, 0.95, set).unwrap();
            pruned_ever |= h.clamp_count > 0;
            let bound = sparse.truncation_bound();
            let tv = dense.total_variation(&sparse.to_dense().unwrap()).unwrap();
            assert!(
                tv <= bound + 1e-9,
                "realized TV {tv} exceeds certified bound {bound}"
            );
        }
        assert!(pruned_ever, "the scenario must actually exercise pruning");
        assert!(sparse.support_len() < 64, "tail cells must be gone");
        assert!(sparse.truncation_bound() > 0.0);
        // Both engines agree on the conclusion.
        assert_eq!(dense.map_labels(), sparse.map_labels());
    }

    #[test]
    fn factored_update_matches_dense_oracle() {
        // Independent blocks [2, 3] facts; queries span both blocks. The
        // factored posterior must agree with the dense oracle (same
        // update applied to the expanded joint) up to fp rounding, and
        // the merged log evidence must match the joint evidence.
        let b0 = Belief::from_marginals(&[0.6, 0.35]).unwrap();
        let b1 = Belief::from_probs(vec![0.09, 0.11, 0.10, 0.20, 0.08, 0.09, 0.15, 0.18]).unwrap();
        let mut factored = Belief::factored(vec![b0, b1]).unwrap();
        let mut dense = factored.to_dense().unwrap();
        let queries = QuerySet::new(vec![FactId(1), FactId(3), FactId(0)], 5).unwrap();
        let panel = ExpertPanel::from_accuracies(&[0.9, 0.7]).unwrap();
        let family = AnswerFamily::new(vec![
            AnswerSet::new(&[Answer::Yes, Answer::No, Answer::Yes]),
            AnswerSet::new(&[Answer::No, Answer::No, Answer::Yes]),
        ]);
        let hd = update_with_family(&mut dense, &queries, &panel, &family).unwrap();
        let hf = update_with_family(&mut factored, &queries, &panel, &family).unwrap();
        assert!(factored.is_factored(), "representation preserved");
        for o in 0..32u64 {
            let a = dense.prob_pattern(o);
            let b = factored.prob_pattern(o);
            assert!((a - b).abs() < 1e-12, "cell {o}: {a} vs {b}");
        }
        assert!(
            (hd.log_evidence - hf.log_evidence).abs() < 1e-12,
            "block evidences must multiply to the joint evidence: {} vs {}",
            hd.log_evidence,
            hf.log_evidence
        );
        // The block that owns no queried fact stays bit-identical.
        let before = Belief::factored(vec![
            Belief::from_marginals(&[0.6, 0.35]).unwrap(),
            Belief::from_probs(vec![0.09, 0.11, 0.10, 0.20, 0.08, 0.09, 0.15, 0.18]).unwrap(),
        ])
        .unwrap();
        let queries_b0 = QuerySet::new(vec![FactId(0)], 5).unwrap();
        let mut touched = before.clone();
        update_with_answer_set(&mut touched, &queries_b0, 0.8, AnswerSet::new(&[Answer::Yes]))
            .unwrap();
        let crate::belief::BeliefRepr::Factored(fa) = touched.repr() else {
            unreachable!()
        };
        let crate::belief::BeliefRepr::Factored(fb) = before.repr() else {
            unreachable!()
        };
        assert_eq!(fa.blocks()[1], fb.blocks()[1], "unqueried block untouched");
        assert_ne!(fa.blocks()[0], fb.blocks()[0], "queried block updated");
    }

    #[test]
    fn factored_partial_family_matches_dense_oracle() {
        use crate::answer::{AnswerOutcome, PartialAnswerFamily, PartialAnswerSet};
        let b0 = Belief::from_marginals(&[0.7, 0.4]).unwrap();
        let b1 = Belief::from_marginals(&[0.3, 0.8]).unwrap();
        let mut factored = Belief::factored(vec![b0, b1]).unwrap();
        let mut dense = factored.to_dense().unwrap();
        let queries = QuerySet::new(vec![FactId(0), FactId(3)], 4).unwrap();
        let panel = ExpertPanel::from_accuracies(&[0.85, 0.9]).unwrap();
        let family = PartialAnswerFamily::new(vec![
            PartialAnswerSet::new(&[
                AnswerOutcome::Answered(Answer::Yes),
                AnswerOutcome::Dropped,
            ]),
            PartialAnswerSet::absent(2),
        ]);
        update_with_partial_family(&mut dense, &queries, &panel, &family).unwrap();
        update_with_partial_family(&mut factored, &queries, &panel, &family).unwrap();
        for o in 0..16u64 {
            assert!((dense.prob_pattern(o) - factored.prob_pattern(o)).abs() < 1e-12);
        }
    }

    #[test]
    fn sparse_impossible_evidence_is_rejected_without_mutation() {
        // The sparse kernel must honour the same atomicity contract as
        // dense: on error the belief (including its bound) is untouched.
        let dense = Belief::from_probs(vec![0.0, 1.0, 0.0, 0.0]).unwrap();
        let mut sparse = dense.to_sparse(usize::MAX).unwrap();
        let before = sparse.clone();
        let queries = QuerySet::new(vec![FactId(0)], 2).unwrap();
        let err = update_with_answer_set(&mut sparse, &queries, 1.0, AnswerSet::new(&[Answer::No]));
        assert!(matches!(err, Err(HcError::InvalidProbability(_))));
        assert_eq!(sparse, before);
    }

    #[test]
    fn sparse_underflow_rescue_matches_dense() {
        // The log-domain rescue transplanted to the support vectors:
        // same scenario as the dense rescue test, full-support sparse.
        let dense_prior = Belief::from_probs(vec![0.0, 1.0, 0.0, 0.0]).unwrap();
        let mut dense = dense_prior.clone();
        let mut sparse = dense_prior.to_sparse(usize::MAX).unwrap();
        let queries = QuerySet::new(vec![FactId(0), FactId(1)], 2).unwrap();
        let acc = 1.0 - 1e-12;
        let panel = ExpertPanel::from_accuracies(&vec![acc; 15]).unwrap();
        let family = AnswerFamily::new(vec![
            AnswerSet::new(&[Answer::No, Answer::Yes]);
            15
        ]);
        let hd = update_with_family(&mut dense, &queries, &panel, &family).unwrap();
        let hs = update_with_family(&mut sparse, &queries, &panel, &family).unwrap();
        assert!(hs.rescued);
        assert_eq!(hd.log_evidence.to_bits(), hs.log_evidence.to_bits());
        assert!((sparse.prob_pattern(0b01) - 1.0).abs() < 1e-12);
        // The rescue flushes the zero-prior cells to zero, which the
        // sparse path then prunes — posterior values still agree.
        let tv = dense.total_variation(&sparse.to_dense().unwrap()).unwrap();
        assert!(tv <= sparse.truncation_bound() + 1e-12, "tv {tv}");
    }

    #[test]
    fn repeated_consistent_answers_converge_to_certainty() {
        let mut b = Belief::uniform(2).unwrap();
        let queries = QuerySet::new(vec![FactId(0), FactId(1)], 2).unwrap();
        for _ in 0..50 {
            update_with_answer_set(
                &mut b,
                &queries,
                0.8,
                AnswerSet::new(&[Answer::Yes, Answer::No]),
            )
            .unwrap();
        }
        assert!(b.prob(Observation(0b01)) > 0.999999);
        assert!(b.entropy() < 1e-4);
    }
}
