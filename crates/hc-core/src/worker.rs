//! Crowd workers, accuracy rates, and the θ-split into expert and
//! preliminary workers (§II-A, Definition 1 of the paper).

use crate::error::{HcError, Result};
use serde::{Deserialize, Serialize};

/// Identifier of a crowdsourcing worker within a [`Crowd`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct WorkerId(pub u32);

impl WorkerId {
    /// Zero-based index into the crowd's worker list.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A validated worker accuracy rate `Pr_cr ∈ [0.5, 1.0]`.
///
/// The paper's error model (§II-A) assumes every worker answers a Yes/No
/// query correctly with probability at least 1/2, independently across
/// queries and workers. The confidence of a crowdsourced answer equals the
/// accuracy rate of the worker who gave it.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
#[serde(try_from = "f64", into = "f64")]
pub struct Accuracy(f64);

impl Accuracy {
    /// Validates and wraps a raw accuracy rate.
    ///
    /// # Errors
    ///
    /// Returns [`HcError::InvalidAccuracy`] if `rate` is not finite or lies
    /// outside `[0.5, 1.0]`.
    pub fn new(rate: f64) -> Result<Self> {
        if rate.is_finite() && (0.5..=1.0).contains(&rate) {
            Ok(Accuracy(rate))
        } else {
            Err(HcError::InvalidAccuracy(rate))
        }
    }

    /// The raw accuracy rate.
    #[inline]
    pub fn rate(self) -> f64 {
        self.0
    }

    /// Probability of an *incorrect* answer, `1 - Pr_cr`.
    #[inline]
    pub fn error_rate(self) -> f64 {
        1.0 - self.0
    }

    /// Shannon entropy (nats) of a single answer from this worker given the
    /// ground truth: `h(Pr_cr) = -p ln p - (1-p) ln (1-p)`.
    ///
    /// This is the per-query contribution to `H(AS | O)` used by the
    /// chain-rule fast path in [`crate::entropy`].
    #[inline]
    pub fn answer_entropy(self) -> f64 {
        crate::entropy::binary_entropy(self.0)
    }
}

impl TryFrom<f64> for Accuracy {
    type Error = HcError;
    fn try_from(rate: f64) -> Result<Self> {
        Accuracy::new(rate)
    }
}

impl From<Accuracy> for f64 {
    fn from(a: Accuracy) -> f64 {
        a.0
    }
}

/// A single crowdsourcing worker: an id plus an accuracy rate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Worker {
    /// Stable identifier of the worker inside its crowd.
    pub id: WorkerId,
    /// The worker's (estimated) accuracy rate.
    pub accuracy: Accuracy,
}

impl Worker {
    /// Creates a worker, validating the accuracy.
    pub fn new(id: u32, accuracy: f64) -> Result<Self> {
        Ok(Worker {
            id: WorkerId(id),
            accuracy: Accuracy::new(accuracy)?,
        })
    }
}

/// A heterogeneous crowd of workers.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Crowd {
    workers: Vec<Worker>,
}

impl Crowd {
    /// Builds a crowd from workers with the given accuracy rates; worker
    /// ids are assigned sequentially from zero.
    ///
    /// # Errors
    ///
    /// Returns [`HcError::InvalidAccuracy`] on any out-of-range rate.
    pub fn from_accuracies(rates: &[f64]) -> Result<Self> {
        let workers = rates
            .iter()
            .enumerate()
            .map(|(i, &r)| Worker::new(i as u32, r))
            .collect::<Result<Vec<_>>>()?;
        Ok(Crowd { workers })
    }

    /// Builds a crowd from pre-constructed workers.
    pub fn new(workers: Vec<Worker>) -> Self {
        Crowd { workers }
    }

    /// All workers in the crowd.
    #[inline]
    pub fn workers(&self) -> &[Worker] {
        &self.workers
    }

    /// Number of workers.
    #[inline]
    pub fn len(&self) -> usize {
        self.workers.len()
    }

    /// Whether the crowd has no workers.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.workers.is_empty()
    }

    /// Looks up a worker by id.
    pub fn get(&self, id: WorkerId) -> Option<&Worker> {
        self.workers.iter().find(|w| w.id == id)
    }

    /// Splits the crowd at accuracy threshold θ into expert workers `CE`
    /// (accuracy ≥ θ) and preliminary workers `CP` (the rest), per
    /// Definition 1 / Equation (1) of the paper.
    pub fn split(&self, theta: f64) -> CrowdSplit {
        let (experts, preliminary): (Vec<_>, Vec<_>) = self
            .workers
            .iter()
            .copied()
            .partition(|w| w.accuracy.rate() >= theta);
        CrowdSplit {
            experts: ExpertPanel::new(experts),
            preliminary,
        }
    }

    /// Splits the crowd into more than two tiers using an ascending list of
    /// thresholds: tier 0 holds workers below `thresholds\[0\]`, tier `i`
    /// holds workers in `[thresholds[i-1], thresholds[i])`, and the last
    /// tier holds workers at or above the final threshold.
    ///
    /// This supports the multi-group extension discussed in §III-D.
    pub fn split_tiers(&self, thresholds: &[f64]) -> Vec<Vec<Worker>> {
        let mut tiers = vec![Vec::new(); thresholds.len() + 1];
        for &w in &self.workers {
            let r = w.accuracy.rate();
            let tier = thresholds.iter().take_while(|&&t| r >= t).count();
            tiers[tier].push(w);
        }
        tiers
    }
}

/// The result of splitting a [`Crowd`] at threshold θ.
#[derive(Debug, Clone, PartialEq)]
pub struct CrowdSplit {
    /// Expert workers `CE` — accuracy at or above θ; they answer the
    /// *checking* tasks.
    pub experts: ExpertPanel,
    /// Preliminary workers `CP` — below θ; their answers initialise the
    /// belief state.
    pub preliminary: Vec<Worker>,
}

/// The expert worker set `CE` used for label checking.
///
/// Wrapping the worker list lets the entropy/selection code precompute the
/// per-worker quantities it needs (`Σ_cr h(Pr_cr)`) once.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExpertPanel {
    workers: Vec<Worker>,
}

impl ExpertPanel {
    /// Wraps a set of expert workers.
    pub fn new(workers: Vec<Worker>) -> Self {
        ExpertPanel { workers }
    }

    /// Builds a panel directly from accuracy rates.
    pub fn from_accuracies(rates: &[f64]) -> Result<Self> {
        Ok(ExpertPanel::new(Crowd::from_accuracies(rates)?.workers))
    }

    /// The experts in the panel.
    #[inline]
    pub fn workers(&self) -> &[Worker] {
        &self.workers
    }

    /// Number of experts `|CE|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.workers.len()
    }

    /// Whether the panel is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.workers.is_empty()
    }

    /// `Σ_{cr ∈ CE} h(Pr_cr)` — the entropy every additional query adds to
    /// `H(AS | O)` (chain-rule fast path, see [`crate::entropy`]).
    pub fn per_query_answer_entropy(&self) -> f64 {
        self.workers
            .iter()
            .map(|w| w.accuracy.answer_entropy())
            .sum()
    }

    /// The sub-panel of workers whose `present` flag is set — used by the
    /// unreliable-crowd machinery to reason about rounds in which only a
    /// subset of the experts delivers answers.
    ///
    /// `present` is aligned with [`ExpertPanel::workers`]; missing flags
    /// beyond the slice's end count as absent.
    pub fn subset(&self, present: &[bool]) -> ExpertPanel {
        ExpertPanel {
            workers: self
                .workers
                .iter()
                .zip(present.iter().chain(std::iter::repeat(&false)))
                .filter(|(_, &p)| p)
                .map(|(&w, _)| w)
                .collect(),
        }
    }

    /// The panel sorted by accuracy, best first — the reassignment order
    /// a retrying platform uses to pick the next-best available expert.
    pub fn by_accuracy_desc(&self) -> Vec<Worker> {
        let mut sorted = self.workers.clone();
        sorted.sort_by(|a, b| {
            b.accuracy
                .partial_cmp(&a.accuracy)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.id.cmp(&b.id))
        });
        sorted
    }
}

/// Estimates a worker's accuracy rate from answers to gold (known-truth)
/// sample queries, as suggested in §II-A.
///
/// Each element of `answers` pairs the worker's Yes/No answer with the true
/// truth value of the sampled fact. The estimate is clamped into
/// `[0.5, 1.0]` (with a small margin below 1.0 left intact) because the
/// downstream model requires admissible accuracies; a worker that scores
/// below chance on the gold set is treated as an exactly-chance worker.
///
/// # Errors
///
/// Returns [`HcError::EmptyFactSet`] when no gold answers are supplied.
pub fn estimate_accuracy(answers: &[(bool, bool)]) -> Result<Accuracy> {
    if answers.is_empty() {
        return Err(HcError::EmptyFactSet);
    }
    let correct = answers.iter().filter(|(a, t)| a == t).count();
    let raw = correct as f64 / answers.len() as f64;
    Accuracy::new(raw.clamp(0.5, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_validation() {
        assert!(Accuracy::new(0.5).is_ok());
        assert!(Accuracy::new(1.0).is_ok());
        assert!(Accuracy::new(0.75).is_ok());
        assert_eq!(
            Accuracy::new(0.49),
            Err(HcError::InvalidAccuracy(0.49)),
            "below-chance workers are rejected"
        );
        assert!(Accuracy::new(1.01).is_err());
        assert!(Accuracy::new(f64::NAN).is_err());
        assert!(Accuracy::new(f64::INFINITY).is_err());
    }

    #[test]
    fn error_rate_complements_accuracy() {
        let a = Accuracy::new(0.8).unwrap();
        assert!((a.rate() + a.error_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_worker_has_zero_answer_entropy() {
        let a = Accuracy::new(1.0).unwrap();
        assert_eq!(a.answer_entropy(), 0.0);
    }

    #[test]
    fn chance_worker_has_max_answer_entropy() {
        let a = Accuracy::new(0.5).unwrap();
        assert!((a.answer_entropy() - std::f64::consts::LN_2).abs() < 1e-12);
    }

    #[test]
    fn split_partitions_by_theta() {
        let crowd = Crowd::from_accuracies(&[0.6, 0.95, 0.9, 0.7, 0.99]).unwrap();
        let split = crowd.split(0.9);
        let expert_ids: Vec<u32> = split.experts.workers().iter().map(|w| w.id.0).collect();
        assert_eq!(expert_ids, vec![1, 2, 4]);
        let prelim_ids: Vec<u32> = split.preliminary.iter().map(|w| w.id.0).collect();
        assert_eq!(prelim_ids, vec![0, 3]);
        assert_eq!(split.experts.len() + split.preliminary.len(), crowd.len());
    }

    #[test]
    fn split_threshold_is_inclusive() {
        let crowd = Crowd::from_accuracies(&[0.9]).unwrap();
        let split = crowd.split(0.9);
        assert_eq!(split.experts.len(), 1, "accuracy == θ counts as expert");
    }

    #[test]
    fn split_tiers_orders_workers() {
        let crowd = Crowd::from_accuracies(&[0.55, 0.7, 0.85, 0.95]).unwrap();
        let tiers = crowd.split_tiers(&[0.6, 0.8, 0.9]);
        assert_eq!(tiers.len(), 4);
        assert_eq!(tiers[0].len(), 1); // 0.55
        assert_eq!(tiers[1].len(), 1); // 0.7
        assert_eq!(tiers[2].len(), 1); // 0.85
        assert_eq!(tiers[3].len(), 1); // 0.95
    }

    #[test]
    fn split_tiers_with_no_thresholds_is_single_group() {
        let crowd = Crowd::from_accuracies(&[0.55, 0.7]).unwrap();
        let tiers = crowd.split_tiers(&[]);
        assert_eq!(tiers.len(), 1);
        assert_eq!(tiers[0].len(), 2);
    }

    #[test]
    fn panel_entropy_sums_workers() {
        let panel = ExpertPanel::from_accuracies(&[0.9, 0.95]).unwrap();
        let expected = crate::entropy::binary_entropy(0.9) + crate::entropy::binary_entropy(0.95);
        assert!((panel.per_query_answer_entropy() - expected).abs() < 1e-12);
    }

    #[test]
    fn subset_filters_by_presence() {
        let panel = ExpertPanel::from_accuracies(&[0.9, 0.95, 0.85]).unwrap();
        let sub = panel.subset(&[true, false, true]);
        let ids: Vec<u32> = sub.workers().iter().map(|w| w.id.0).collect();
        assert_eq!(ids, vec![0, 2]);
        // Short presence slices treat the tail as absent.
        assert_eq!(panel.subset(&[false]).len(), 0);
        assert_eq!(panel.subset(&[]).len(), 0);
        assert_eq!(panel.subset(&[true, true, true]).workers(), panel.workers());
    }

    #[test]
    fn by_accuracy_desc_orders_best_first() {
        let panel = ExpertPanel::from_accuracies(&[0.9, 0.95, 0.85]).unwrap();
        let order: Vec<u32> = panel.by_accuracy_desc().iter().map(|w| w.id.0).collect();
        assert_eq!(order, vec![1, 0, 2]);
    }

    #[test]
    fn estimate_accuracy_from_gold() {
        // 8/10 correct.
        let answers: Vec<(bool, bool)> = (0..10).map(|i| (i < 8, true)).collect();
        let est = estimate_accuracy(&answers).unwrap();
        assert!((est.rate() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn estimate_accuracy_clamps_below_chance() {
        let answers = vec![(false, true), (false, true), (true, true)];
        let est = estimate_accuracy(&answers).unwrap();
        assert_eq!(est.rate(), 0.5);
    }

    #[test]
    fn estimate_accuracy_rejects_empty() {
        assert_eq!(estimate_accuracy(&[]), Err(HcError::EmptyFactSet));
    }

    #[test]
    fn crowd_lookup_by_id() {
        let crowd = Crowd::from_accuracies(&[0.6, 0.9]).unwrap();
        assert_eq!(crowd.get(WorkerId(1)).unwrap().accuracy.rate(), 0.9);
        assert!(crowd.get(WorkerId(7)).is_none());
    }
}
