//! Evaluation metrics beyond the paper's accuracy/quality pair.
//!
//! The paper scores labeled data by accuracy (MAP labels vs ground
//! truth) and quality (negative entropy). Downstream users of a
//! *probabilistic* label set also care how well the belief's marginals
//! are calibrated; this module adds the standard proper scoring rules
//! (Brier, log loss) and an expected-calibration-error estimate, all
//! over per-fact marginals against boolean ground truth.

use crate::belief::{MultiBelief, PROB_FLOOR};

/// Flattens the per-fact marginals of every task, in (task, fact) order.
pub fn flat_marginals(beliefs: &MultiBelief) -> Vec<f64> {
    beliefs
        .tasks()
        .iter()
        .flat_map(|b| b.marginals())
        .collect()
}

/// Brier score: mean squared error of the marginals against the 0/1
/// truth. Lower is better; 0 is perfect, 0.25 is the score of constant
/// 0.5 predictions.
pub fn brier_score(marginals: &[f64], truth: &[bool]) -> f64 {
    debug_assert_eq!(marginals.len(), truth.len());
    if marginals.is_empty() {
        return 0.0;
    }
    marginals
        .iter()
        .zip(truth)
        .map(|(&p, &t)| {
            let y = f64::from(t);
            (p - y) * (p - y)
        })
        .sum::<f64>()
        / marginals.len() as f64
}

/// Mean negative log-likelihood of the truth under the marginals, in
/// nats. Probabilities are clamped to `[ε, 1−ε]` (`ε =`
/// [`PROB_FLOOR`], the same floor `Belief::from_marginals` applies on
/// the way in) so a single confident mistake yields a large-but-finite
/// penalty of at most `−ln(PROB_FLOOR) ≈ 20.7` nats.
pub fn log_loss(marginals: &[f64], truth: &[bool]) -> f64 {
    debug_assert_eq!(marginals.len(), truth.len());
    if marginals.is_empty() {
        return 0.0;
    }
    marginals
        .iter()
        .zip(truth)
        .map(|(&p, &t)| {
            let p = p.clamp(PROB_FLOOR, 1.0 - PROB_FLOOR);
            if t {
                -p.ln()
            } else {
                -(1.0 - p).ln()
            }
        })
        .sum::<f64>()
        / marginals.len() as f64
}

/// Expected calibration error with `bins` equal-width confidence bins:
/// the prediction-count-weighted mean |empirical accuracy − mean
/// confidence| per bin, computed on `max(p, 1−p)` confidences of the
/// implied hard labels.
pub fn expected_calibration_error(marginals: &[f64], truth: &[bool], bins: usize) -> f64 {
    debug_assert_eq!(marginals.len(), truth.len());
    debug_assert!(bins > 0);
    if marginals.is_empty() {
        return 0.0;
    }
    let mut count = vec![0usize; bins];
    let mut conf_sum = vec![0.0; bins];
    let mut correct = vec![0usize; bins];
    for (&p, &t) in marginals.iter().zip(truth) {
        let label = p >= 0.5;
        let confidence = if label { p } else { 1.0 - p };
        // Confidence of a binary argmax is in [0.5, 1.0]; bin that range.
        let idx = (((confidence - 0.5) / 0.5) * bins as f64) as usize;
        let idx = idx.min(bins - 1);
        count[idx] += 1;
        conf_sum[idx] += confidence;
        if label == t {
            correct[idx] += 1;
        }
    }
    let n = marginals.len() as f64;
    let mut ece = 0.0;
    for b in 0..bins {
        if count[b] == 0 {
            continue;
        }
        let acc = correct[b] as f64 / count[b] as f64;
        let conf = conf_sum[b] / count[b] as f64;
        ece += (count[b] as f64 / n) * (acc - conf).abs();
    }
    ece
}

/// Precision, recall and F1 of the positive class for hard labels.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrecisionRecall {
    /// Fraction of predicted positives that are true.
    pub precision: f64,
    /// Fraction of true positives that are predicted.
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
}

/// Computes positive-class precision/recall/F1 from hard labels.
///
/// Degenerate denominators (no predicted or no actual positives) yield
/// zero for the affected metric.
pub fn precision_recall(labels: &[bool], truth: &[bool]) -> PrecisionRecall {
    debug_assert_eq!(labels.len(), truth.len());
    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut fn_ = 0usize;
    for (&l, &t) in labels.iter().zip(truth) {
        match (l, t) {
            (true, true) => tp += 1,
            (true, false) => fp += 1,
            (false, true) => fn_ += 1,
            (false, false) => {}
        }
    }
    let precision = if tp + fp > 0 {
        tp as f64 / (tp + fp) as f64
    } else {
        0.0
    };
    let recall = if tp + fn_ > 0 {
        tp as f64 / (tp + fn_) as f64
    } else {
        0.0
    };
    let f1 = if precision + recall > 0.0 {
        2.0 * precision * recall / (precision + recall)
    } else {
        0.0
    };
    PrecisionRecall {
        precision,
        recall,
        f1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::belief::Belief;

    #[test]
    fn brier_perfect_and_ignorant() {
        assert_eq!(brier_score(&[1.0, 0.0], &[true, false]), 0.0);
        assert!((brier_score(&[0.5, 0.5], &[true, false]) - 0.25).abs() < 1e-12);
        assert_eq!(brier_score(&[0.0], &[true]), 1.0);
        assert_eq!(brier_score(&[], &[]), 0.0);
    }

    #[test]
    fn log_loss_orders_confidence() {
        let confident_right = log_loss(&[0.99], &[true]);
        let hedged = log_loss(&[0.6], &[true]);
        let confident_wrong = log_loss(&[0.01], &[true]);
        assert!(confident_right < hedged);
        assert!(hedged < confident_wrong);
        assert!(confident_wrong.is_finite());
        // Even p = 0 exactly stays finite thanks to clamping.
        assert!(log_loss(&[0.0], &[true]).is_finite());
    }

    #[test]
    fn ece_zero_for_perfectly_calibrated_extremes() {
        let marginals = vec![1.0, 1.0, 0.0, 0.0];
        let truth = vec![true, true, false, false];
        assert!(expected_calibration_error(&marginals, &truth, 10) < 1e-12);
    }

    #[test]
    fn ece_detects_overconfidence() {
        // Predicts 0.99 but is right only half the time.
        let marginals = vec![0.99; 10];
        let truth: Vec<bool> = (0..10).map(|i| i % 2 == 0).collect();
        let ece = expected_calibration_error(&marginals, &truth, 10);
        assert!((ece - 0.49).abs() < 0.01, "ece {ece}");
    }

    #[test]
    fn precision_recall_basic() {
        let labels = vec![true, true, false, false];
        let truth = vec![true, false, true, false];
        let pr = precision_recall(&labels, &truth);
        assert!((pr.precision - 0.5).abs() < 1e-12);
        assert!((pr.recall - 0.5).abs() < 1e-12);
        assert!((pr.f1 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn precision_recall_degenerate_cases() {
        let pr = precision_recall(&[false, false], &[true, true]);
        assert_eq!(pr.precision, 0.0);
        assert_eq!(pr.recall, 0.0);
        assert_eq!(pr.f1, 0.0);
        let perfect = precision_recall(&[true, false], &[true, false]);
        assert_eq!(perfect.f1, 1.0);
    }

    #[test]
    fn flat_marginals_concatenate_tasks() {
        let beliefs = MultiBelief::new(vec![
            Belief::from_marginals(&[0.7, 0.2]).unwrap(),
            Belief::from_marginals(&[0.9]).unwrap(),
        ]);
        let flat = flat_marginals(&beliefs);
        assert_eq!(flat.len(), 3);
        assert!((flat[0] - 0.7).abs() < 1e-9);
        assert!((flat[2] - 0.9).abs() < 1e-9);
    }
}
