//! Error types for the hierarchical-crowdsourcing core.

use std::fmt;

/// Errors produced by fallible constructors and algorithms in `hc-core`.
///
/// All validation happens at the public API boundary; internal hot paths
/// rely on the invariants these constructors establish and use
/// `debug_assert!` instead.
#[derive(Debug, Clone, PartialEq)]
pub enum HcError {
    /// A worker accuracy was outside the model's admissible range.
    ///
    /// The error model of §II-A requires every worker to be at least as
    /// good as a coin flip (`0.5 <= accuracy <= 1.0`); answers from worse
    /// workers carry no usable signal.
    InvalidAccuracy(f64),
    /// A probability was not a finite value in `[0, 1]`.
    InvalidProbability(f64),
    /// A probability vector did not sum to (approximately) one.
    NotNormalized {
        /// The actual sum of the offending vector.
        sum: f64,
    },
    /// Two inputs that must agree on a dimension did not.
    DimensionMismatch {
        /// What was expected by the callee.
        expected: usize,
        /// What the caller supplied.
        actual: usize,
    },
    /// A fact set exceeded a belief-representation size limit.
    ///
    /// Dense beliefs are `2^n` vectors, capped at
    /// [`crate::belief::MAX_FACTS`] facts; sparse support-set beliefs
    /// lift the cap to [`crate::belief::SPARSE_MAX_FACTS`] (the `u64`
    /// pattern width). Operations that must densify — the differential
    /// oracle, factored blocks — still report this error past the dense
    /// cap.
    TooManyFacts(usize),
    /// An operation that needs at least one fact received none.
    EmptyFactSet,
    /// An operation that needs at least one worker received an empty crowd.
    EmptyCrowd,
    /// A query set contained a duplicate or out-of-range fact.
    InvalidQuery {
        /// Index of the offending fact.
        fact: u32,
    },
    /// The exact (brute-force) selector exceeded its wall-clock budget.
    Timeout,
    /// The checking budget cannot afford even a single query.
    BudgetExhausted,
    /// A belief's total mass collapsed to zero (or a non-finite value)
    /// during renormalisation.
    ///
    /// This is the numerical dead end of Bayes' rule: the evidence
    /// assigned probability zero to every observation the belief still
    /// considered possible — either a genuine contradiction (a perfect
    /// expert contradicting a zero-prior cell) or an underflow the
    /// log-domain rescue path could not recover. The belief is left
    /// unmodified when this error is returned.
    BeliefCollapsed {
        /// The offending pre-normalisation mass (zero, negative, or
        /// non-finite).
        mass: f64,
    },
    /// A session checkpoint could not be restored: wrong format version,
    /// internally inconsistent state, or a resume trace that diverged
    /// from the recorded run.
    ///
    /// The contract of [`crate::session`]: a rejected checkpoint applies
    /// *no* state — restoration either yields a complete, validated
    /// [`crate::session::SessionState`] or this error.
    InvalidCheckpoint {
        /// Human-readable description of what failed to validate.
        reason: String,
    },
}

impl fmt::Display for HcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HcError::InvalidAccuracy(a) => {
                write!(f, "worker accuracy {a} outside [0.5, 1.0]")
            }
            HcError::InvalidProbability(p) => {
                write!(f, "probability {p} outside [0.0, 1.0] or not finite")
            }
            HcError::NotNormalized { sum } => {
                write!(f, "probability vector sums to {sum}, expected 1.0")
            }
            HcError::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
            HcError::TooManyFacts(n) => {
                write!(f, "fact set of size {n} exceeds the dense belief limit")
            }
            HcError::EmptyFactSet => write!(f, "fact set is empty"),
            HcError::EmptyCrowd => write!(f, "crowd is empty"),
            HcError::InvalidQuery { fact } => {
                write!(f, "query references invalid or duplicate fact {fact}")
            }
            HcError::Timeout => write!(f, "selection exceeded its time budget"),
            HcError::BudgetExhausted => {
                write!(f, "checking budget cannot afford a single query")
            }
            HcError::BeliefCollapsed { mass } => {
                write!(
                    f,
                    "belief collapsed: pre-normalisation mass {mass} is not a \
                     usable positive value"
                )
            }
            HcError::InvalidCheckpoint { reason } => {
                write!(f, "invalid session checkpoint: {reason}")
            }
        }
    }
}

impl std::error::Error for HcError {}

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, HcError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let cases: Vec<(HcError, &str)> = vec![
            (HcError::InvalidAccuracy(0.3), "0.3"),
            (HcError::InvalidProbability(1.5), "1.5"),
            (HcError::NotNormalized { sum: 0.9 }, "0.9"),
            (
                HcError::DimensionMismatch {
                    expected: 4,
                    actual: 2,
                },
                "expected 4",
            ),
            (HcError::TooManyFacts(99), "99"),
            (HcError::EmptyFactSet, "empty"),
            (HcError::EmptyCrowd, "empty"),
            (HcError::InvalidQuery { fact: 7 }, "7"),
            (HcError::Timeout, "time budget"),
            (HcError::BudgetExhausted, "budget"),
            (HcError::BeliefCollapsed { mass: 0.0 }, "collapsed"),
            (
                HcError::InvalidCheckpoint {
                    reason: "version 9".into(),
                },
                "version 9",
            ),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg:?} should contain {needle:?}");
        }
    }

    #[test]
    fn error_is_std_error() {
        fn assert_error<E: std::error::Error>() {}
        assert_error::<HcError>();
    }
}
