//! Observations: complete truth-value interpretations of a fact set
//! (§II-A, Table I of the paper).
//!
//! For `n` binary facts there are `2^n` mutually exclusive observations,
//! exactly one of which is the ground truth. An observation is encoded as a
//! bitmask: bit `i` set means fact `f_i` is interpreted *true* (`o ⊨ f_i`).
//! The dense encoding keeps the belief state a flat `Vec<f64>` that the
//! entropy and update kernels can stream through without hashing.

use crate::fact::FactId;
use serde::{Deserialize, Serialize};

/// One truth-value interpretation of a fact set, encoded as a bitmask.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Observation(pub u32);

impl Observation {
    /// Whether this observation is a *positive model* of `fact`
    /// (`o ⊨ f`).
    #[inline]
    pub fn satisfies(self, fact: FactId) -> bool {
        (self.0 >> fact.0) & 1 == 1
    }

    /// The truth value this observation assigns to `fact` as a `bool`.
    ///
    /// Alias of [`Observation::satisfies`] that reads better at call sites
    /// comparing against labels.
    #[inline]
    pub fn truth_of(self, fact: FactId) -> bool {
        self.satisfies(fact)
    }

    /// Restriction of the observation to an ordered list of facts: bit `j`
    /// of the result is the truth value of `facts[j]`.
    ///
    /// Used to project a belief onto a query set (the likelihood of an
    /// answer family depends on `o` only through this restriction).
    #[inline]
    pub fn project(self, facts: &[FactId]) -> u32 {
        let mut out = 0u32;
        for (j, f) in facts.iter().enumerate() {
            out |= ((self.0 >> f.0) & 1) << j;
        }
        out
    }

    /// Builds an observation from explicit truth values, one per fact in
    /// id order.
    pub fn from_bools(values: &[bool]) -> Self {
        let mut bits = 0u32;
        for (i, &v) in values.iter().enumerate() {
            if v {
                bits |= 1 << i;
            }
        }
        Observation(bits)
    }

    /// The truth values as booleans, one per fact.
    pub fn to_bools(self, num_facts: usize) -> Vec<bool> {
        (0..num_facts).map(|i| (self.0 >> i) & 1 == 1).collect()
    }
}

/// Restriction of a wide (up to 64-bit) observation pattern to an
/// ordered list of facts: bit `j` of the result is the truth value of
/// `facts[j]`.
///
/// The `u64` twin of [`Observation::project`] for sparse beliefs, whose
/// patterns can exceed the 32-bit dense observation encoding; the bit
/// semantics are identical.
#[inline]
pub fn project_pattern(pattern: u64, facts: &[FactId]) -> u32 {
    let mut out = 0u32;
    for (j, f) in facts.iter().enumerate() {
        out |= (((pattern >> f.0) & 1) as u32) << j;
    }
    out
}

/// The space of all `2^n` observations of an `n`-fact task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObservationSpace {
    num_facts: u8,
}

impl ObservationSpace {
    /// The observation space for `num_facts` facts.
    ///
    /// # Panics
    ///
    /// Panics (debug) when `num_facts` exceeds [`crate::belief::MAX_FACTS`];
    /// public constructors of [`crate::belief::Belief`] validate this with a
    /// proper error first.
    pub fn new(num_facts: usize) -> Self {
        debug_assert!(num_facts <= crate::belief::MAX_FACTS);
        ObservationSpace {
            num_facts: num_facts as u8,
        }
    }

    /// Number of facts `n`.
    #[inline]
    pub fn num_facts(self) -> usize {
        self.num_facts as usize
    }

    /// Number of observations `2^n`.
    #[inline]
    pub fn len(self) -> usize {
        1usize << self.num_facts
    }

    /// Observation spaces are never empty (`2^n ≥ 1`).
    #[inline]
    pub fn is_empty(self) -> bool {
        false
    }

    /// Iterates every observation in index order.
    pub fn iter(self) -> impl Iterator<Item = Observation> {
        (0..self.len() as u32).map(Observation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn satisfies_reads_bits() {
        let o = Observation(0b101);
        assert!(o.satisfies(FactId(0)));
        assert!(!o.satisfies(FactId(1)));
        assert!(o.satisfies(FactId(2)));
    }

    #[test]
    fn from_bools_round_trips() {
        let values = vec![true, false, true, true];
        let o = Observation::from_bools(&values);
        assert_eq!(o.to_bools(4), values);
        assert_eq!(o.0, 0b1101);
    }

    #[test]
    fn projection_reorders_bits() {
        let o = Observation(0b110); // f0=F, f1=T, f2=T
        assert_eq!(o.project(&[FactId(2), FactId(0)]), 0b01);
        assert_eq!(o.project(&[FactId(1), FactId(2)]), 0b11);
        assert_eq!(o.project(&[]), 0);
    }

    #[test]
    fn space_enumerates_all() {
        let space = ObservationSpace::new(3);
        assert_eq!(space.len(), 8);
        let all: Vec<u32> = space.iter().map(|o| o.0).collect();
        assert_eq!(all, (0..8).collect::<Vec<u32>>());
    }

    #[test]
    fn zero_fact_space_has_one_observation() {
        let space = ObservationSpace::new(0);
        assert_eq!(space.len(), 1);
        assert!(!space.is_empty());
    }

    #[test]
    fn table_i_example_observation_numbering() {
        // Table I of the paper: o_4 has f1=true, f2=true, f3=false.
        // With our bit encoding (f1 -> bit0) that is 0b011 = 3.
        let o4 = Observation::from_bools(&[true, true, false]);
        assert_eq!(o4.0, 0b011);
        assert!(o4.satisfies(FactId(0)));
        assert!(o4.satisfies(FactId(1)));
        assert!(!o4.satisfies(FactId(2)));
    }
}
