//! Crash-safe resumable HC sessions: the checking loop of Algorithm 3
//! factored into an explicit state machine with step-boundary
//! checkpoints.
//!
//! [`crate::hc::run_hc_costed_with_telemetry`] is a thin driver over
//! [`HcSession`]: every iteration of the paper's loop decomposes into
//! five resumable steps —
//!
//! ```text
//! SelectQueries → Dispatch → CollectAnswers → UpdateBeliefs → CloseRound
//! ```
//!
//! — and between any two steps the complete session state
//! ([`SessionState`]) serializes to a versioned, CRC-checksummed
//! [`CheckpointFrame`] (see `hc_telemetry::checkpoint`). A process
//! killed at any step boundary resumes from the last frame and produces
//! **byte-identical** output — posteriors, round records, and the
//! remainder of the telemetry event stream — to a run that was never
//! interrupted. `tests/crash_resume.rs` asserts exactly that, at every
//! boundary, under 1/2/8 compute threads.
//!
//! # What makes resumption exact
//!
//! - **Beliefs** round-trip through
//!   `Belief::from_checkpoint_probs`, which validates but does *not*
//!   renormalise, so probabilities restore bit-for-bit.
//! - **Floats** are encoded with shortest-round-trip formatting
//!   (`hc_telemetry::json::write_f64`); fields that may legitimately be
//!   non-finite (numerical-health extrema, adaptive-schedule rates) are
//!   stored as 16-hex-digit IEEE-754 bit patterns instead.
//! - **The loop RNG** is not serializable in general, so the session
//!   logs every draw the selector makes ([`RngDraw`], run-length
//!   encoded) and resume fast-forwards a freshly seeded RNG with
//!   [`replay_draws`].
//! - **The oracle** carries its own state (platform retry counters,
//!   sampling positions). Oracles that support resumption implement
//!   [`ResumableOracle`]; the session stores their opaque cursor string
//!   alongside its own state.
//! - **Telemetry continuation**: [`SessionState`] counts nothing the
//!   sink already wrote — the driver records how many JSONL lines
//!   preceded the checkpoint, truncates the log there on restart, and
//!   the resumed session regenerates the identical remainder.
//!
//! # Failure semantics
//!
//! Restoration is all-or-nothing: [`SessionState::from_payload`] and
//! [`HcSession::resume`] either return a fully validated state or a
//! typed [`HcError::InvalidCheckpoint`] — never a partially applied
//! one. A `step` that returns an error poisons the in-memory session
//! (the `UpdateBeliefs` step is not idempotent on failure); recover by
//! resuming from the last checkpoint instead of re-stepping.

use std::collections::BTreeMap;

use crate::answer::{Answer, AnswerOutcome, PartialAnswerFamily, PartialAnswerSet, QuerySet};
use crate::belief::{Belief, BeliefRepr, MultiBelief};
use crate::error::{HcError, Result};
use crate::fact::FactId;
use crate::hc::{AnswerOracle, CostModel, HcConfig, KSchedule, RepeatPolicy, RoundDelivery, RoundRecord};
use crate::parallel::Parallelism;
use crate::selection::{ExplainTrace, GlobalFact, TaskSelector};
use crate::update::{update_with_partial_family, UpdateHealth};
use crate::worker::{ExpertPanel, Worker};
use hc_telemetry::json::{self, Json};
use hc_telemetry::timing::{self, Phase};
use hc_telemetry::{BeliefReprSummary, CheckpointFrame, StopReason, TelemetryEvent, TelemetrySink};
use rand::RngCore;

/// Version tag of the [`SessionState`] payload encoding. Bumped on any
/// incompatible change; restore rejects other versions with a typed
/// error rather than guessing.
pub const SESSION_FORMAT_VERSION: u32 = 1;

/// The `kind` tag session checkpoints carry inside a
/// [`CheckpointFrame`], so readers cannot confuse them with frames
/// written by other producers.
pub const SESSION_CHECKPOINT_KIND: &str = "hc-session";

/// The five resumable steps of one checking round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionStep {
    /// Run the stop checks and the selector; plan the round's queries.
    SelectQueries,
    /// Assign causal query ids and group the plan per task.
    Dispatch,
    /// Ask every panel worker every planned query (the only step that
    /// touches the oracle).
    CollectAnswers,
    /// Apply the partial-answer Bayes update per task (the only step
    /// that mutates beliefs).
    UpdateBeliefs,
    /// Charge the budget, record the round, and run the dry-round
    /// guard.
    CloseRound,
}

impl SessionStep {
    /// All steps in execution order.
    pub const ALL: [SessionStep; 5] = [
        SessionStep::SelectQueries,
        SessionStep::Dispatch,
        SessionStep::CollectAnswers,
        SessionStep::UpdateBeliefs,
        SessionStep::CloseRound,
    ];

    /// Stable machine-readable name.
    pub fn name(self) -> &'static str {
        match self {
            SessionStep::SelectQueries => "select_queries",
            SessionStep::Dispatch => "dispatch",
            SessionStep::CollectAnswers => "collect_answers",
            SessionStep::UpdateBeliefs => "update_beliefs",
            SessionStep::CloseRound => "close_round",
        }
    }
}

/// Where a session stands after a [`HcSession::step`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionStatus {
    /// The run continues; the named step executes next.
    Pending(SessionStep),
    /// The run is over (the `RunFinished` event has been emitted).
    Finished(StopReason),
}

/// One run-length-encoded record of loop-RNG consumption.
///
/// The session cannot serialize an arbitrary [`RngCore`], so it records
/// *how much* randomness the selector consumed; resume replays the same
/// draws against a freshly seeded RNG of the same kind, leaving it in
/// the exact pre-crash position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RngDraw {
    /// `n` consecutive `next_u32` calls.
    U32 {
        /// Number of calls.
        n: u64,
    },
    /// `n` consecutive `next_u64` calls.
    U64 {
        /// Number of calls.
        n: u64,
    },
    /// One `fill_bytes`/`try_fill_bytes` call of `len` bytes. Never
    /// merged: byte fills are rare and the length matters.
    Bytes {
        /// Buffer length of the fill.
        len: u64,
    },
}

/// Fast-forwards `rng` through a recorded draw log, discarding the
/// values. After this, `rng` is positioned exactly where the logging
/// run's RNG stood when the log ended.
pub fn replay_draws(log: &[RngDraw], rng: &mut dyn RngCore) {
    for d in log {
        match *d {
            RngDraw::U32 { n } => {
                for _ in 0..n {
                    rng.next_u32();
                }
            }
            RngDraw::U64 { n } => {
                for _ in 0..n {
                    rng.next_u64();
                }
            }
            RngDraw::Bytes { len } => {
                let mut buf = vec![0u8; len as usize];
                rng.fill_bytes(&mut buf);
            }
        }
    }
}

/// RNG wrapper that forwards to an inner RNG while appending every
/// draw to a run-length-encoded log (see [`RngDraw`]).
struct CursorRng<'a> {
    inner: &'a mut dyn RngCore,
    log: &'a mut Vec<RngDraw>,
}

impl RngCore for CursorRng<'_> {
    fn next_u32(&mut self) -> u32 {
        if let Some(RngDraw::U32 { n }) = self.log.last_mut() {
            *n += 1;
        } else {
            self.log.push(RngDraw::U32 { n: 1 });
        }
        self.inner.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        if let Some(RngDraw::U64 { n }) = self.log.last_mut() {
            *n += 1;
        } else {
            self.log.push(RngDraw::U64 { n: 1 });
        }
        self.inner.next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.log.push(RngDraw::Bytes {
            len: dest.len() as u64,
        });
        self.inner.fill_bytes(dest);
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> std::result::Result<(), rand::Error> {
        let result = self.inner.try_fill_bytes(dest);
        if result.is_ok() {
            self.log.push(RngDraw::Bytes {
                len: dest.len() as u64,
            });
        }
        result
    }
}

/// An [`AnswerOracle`] whose internal state (platform retry counters,
/// sampling positions, fault-plan progress) can be exported and
/// restored, so a resumed session sees the same answer stream an
/// uninterrupted one would have.
///
/// `restore_cursor` is contractually applied to a *freshly constructed,
/// identically seeded* oracle; the cursor carries only the mutable
/// progress, not the configuration.
pub trait ResumableOracle: AnswerOracle {
    /// Serializes the oracle's mutable progress to an opaque string
    /// (stored verbatim in [`SessionState::oracle_cursor`]).
    fn save_cursor(&self) -> String;

    /// Restores progress previously produced by
    /// [`ResumableOracle::save_cursor`] on an identically configured
    /// oracle. Rejects unparseable cursors with
    /// [`HcError::InvalidCheckpoint`] and leaves the oracle unchanged.
    fn restore_cursor(&mut self, cursor: &str) -> Result<()>;
}

/// The immutable outcome of a round's `SelectQueries` step, carried
/// through the remaining steps of the round.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedRound {
    /// Round number (1-based) this plan belongs to.
    pub round: usize,
    /// What the k-schedule requested before the affordability clamp.
    pub k_requested: usize,
    /// The selected queries, in selection order.
    pub queries: Vec<GlobalFact>,
    /// The selector's objective for the chosen set (predicted
    /// post-round entropy).
    pub predicted_entropy: f64,
    /// Causal id of `queries[0]`; query `i` carries `first_query_id + i`.
    pub first_query_id: u64,
}

/// A round's queries for one task, with their causal ids, in dispatch
/// order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskGroup {
    /// Task index into the [`MultiBelief`].
    pub task: usize,
    /// `(fact, query_id)` pairs, in selection order.
    pub facts: Vec<(FactId, u64)>,
}

/// Everything the `CollectAnswers` step gathered from the oracle.
#[derive(Debug, Clone, PartialEq)]
pub struct CollectedRound {
    /// Outcome grid: `outcomes[group][worker][fact]`, aligned with the
    /// round's [`TaskGroup`]s and the panel's worker order.
    pub outcomes: Vec<Vec<Vec<AnswerOutcome>>>,
    /// Delivered-answer counts per panel worker.
    pub per_worker: Vec<usize>,
}

/// The session's position inside (or between) rounds — the state-machine
/// cursor, carrying each step's output forward to the next.
#[derive(Debug, Clone, PartialEq)]
pub enum StepCursor {
    /// Between rounds; `SelectQueries` runs next.
    NextRound,
    /// Selection done; `Dispatch` runs next.
    Selected {
        /// The round plan.
        plan: PlannedRound,
    },
    /// Dispatch grouping done; `CollectAnswers` runs next.
    Dispatched {
        /// The round plan.
        plan: PlannedRound,
        /// Per-task dispatch groups derived from the plan.
        groups: Vec<TaskGroup>,
    },
    /// Answers collected; `UpdateBeliefs` runs next.
    Collected {
        /// The round plan.
        plan: PlannedRound,
        /// Per-task dispatch groups derived from the plan.
        groups: Vec<TaskGroup>,
        /// The collected answer grid.
        collected: CollectedRound,
    },
    /// Beliefs updated; `CloseRound` runs next.
    Updated {
        /// The round plan.
        plan: PlannedRound,
        /// What the round actually delivered (drives the budget charge).
        delivery: RoundDelivery,
        /// Aggregated numerical health of the round's Bayes updates.
        health: UpdateHealth,
    },
    /// Terminal: the run finished and `RunFinished` was emitted.
    Finished {
        /// Why the run stopped.
        reason: StopReason,
    },
}

// ---------------------------------------------------------------------------
// Serialization: a hand-rolled codec over `hc_telemetry::json`.
//
// The codec is deliberately dependency-free and bit-exact:
// - u64/usize counters encode as JSON numbers (exact below 2^53, far
//   beyond any real budget or query id);
// - floats that are finite by construction (probabilities, entropies,
//   qualities) encode as numbers via shortest-round-trip formatting;
// - floats that may be non-finite (UpdateHealth extrema start at +inf;
//   EntropyAdaptive rates are user input) encode as 16-hex-digit bit
//   patterns so even NaN payloads round-trip losslessly.
// ---------------------------------------------------------------------------

fn bad(what: &str) -> HcError {
    HcError::InvalidCheckpoint {
        reason: format!("missing or invalid `{what}`"),
    }
}

fn invalid(reason: String) -> HcError {
    HcError::InvalidCheckpoint { reason }
}

fn get_u64(v: &Json, key: &str) -> Result<u64> {
    v.get(key).and_then(Json::as_u64).ok_or_else(|| bad(key))
}

fn get_usize(v: &Json, key: &str) -> Result<usize> {
    v.get(key).and_then(Json::as_usize).ok_or_else(|| bad(key))
}

fn get_f64(v: &Json, key: &str) -> Result<f64> {
    let x = v.get(key).and_then(Json::as_f64).ok_or_else(|| bad(key))?;
    if !x.is_finite() {
        return Err(bad(key));
    }
    Ok(x)
}

fn get_bool(v: &Json, key: &str) -> Result<bool> {
    v.get(key).and_then(Json::as_bool).ok_or_else(|| bad(key))
}

fn get_str<'a>(v: &'a Json, key: &str) -> Result<&'a str> {
    v.get(key).and_then(Json::as_str).ok_or_else(|| bad(key))
}

fn get_arr<'a>(v: &'a Json, key: &str) -> Result<&'a [Json]> {
    v.get(key).and_then(Json::as_arr).ok_or_else(|| bad(key))
}

fn num(v: u64) -> Json {
    debug_assert!(v < (1u64 << 53), "u64 exceeds exact-f64 range");
    Json::Num(v as f64)
}

fn num_usize(v: usize) -> Json {
    num(v as u64)
}

/// Encodes a possibly-non-finite float as its IEEE-754 bit pattern.
fn bits_json(v: f64) -> Json {
    Json::Str(format!("{:016x}", v.to_bits()))
}

/// Decodes a float stored as a 16-hex-digit bit pattern.
fn get_bits_f64(v: &Json, key: &str) -> Result<f64> {
    let s = get_str(v, key)?;
    if s.len() != 16 {
        return Err(bad(key));
    }
    let bits = u64::from_str_radix(s, 16).map_err(|_| bad(key))?;
    Ok(f64::from_bits(bits))
}

fn obj(entries: Vec<(&str, Json)>) -> Json {
    let mut map = BTreeMap::new();
    for (k, v) in entries {
        map.insert(k.to_string(), v);
    }
    Json::Obj(map)
}

fn queries_to_json(queries: &[GlobalFact]) -> Json {
    Json::Arr(
        queries
            .iter()
            .map(|q| Json::Arr(vec![num_usize(q.task), num(u64::from(q.fact.0))]))
            .collect(),
    )
}

fn queries_from_json(v: &Json, key: &str) -> Result<Vec<GlobalFact>> {
    get_arr(v, key)?
        .iter()
        .map(|pair| {
            let parts = pair.as_arr().ok_or_else(|| bad(key))?;
            if parts.len() != 2 {
                return Err(bad(key));
            }
            let task = parts[0].as_usize().ok_or_else(|| bad(key))?;
            let fact = parts[1].as_u32().ok_or_else(|| bad(key))?;
            Ok(GlobalFact::new(task, fact))
        })
        .collect()
}

fn config_to_json(c: &HcConfig) -> Json {
    let k_schedule = match c.k_schedule {
        KSchedule::Fixed => obj(vec![("kind", Json::Str("fixed".into()))]),
        KSchedule::LinearDecay { end } => obj(vec![
            ("kind", Json::Str("linear_decay".into())),
            ("end", num_usize(end)),
        ]),
        KSchedule::EntropyAdaptive {
            nats_per_query,
            max,
        } => obj(vec![
            ("kind", Json::Str("entropy_adaptive".into())),
            ("nats_per_query", bits_json(nats_per_query)),
            ("max", num_usize(max)),
        ]),
    };
    let repeat_policy = match c.repeat_policy {
        RepeatPolicy::Unrestricted => "unrestricted",
        RepeatPolicy::CycleThenRepeat => "cycle_then_repeat",
    };
    let parallelism = match c.parallelism {
        Parallelism::Auto => Json::Str("auto".into()),
        Parallelism::Serial => Json::Str("serial".into()),
        Parallelism::Threads(n) => num_usize(n),
    };
    obj(vec![
        ("k", num_usize(c.k)),
        ("budget", num(c.budget)),
        (
            "max_rounds",
            match c.max_rounds {
                Some(n) => num_usize(n),
                None => Json::Null,
            },
        ),
        ("repeat_policy", Json::Str(repeat_policy.into())),
        ("k_schedule", k_schedule),
        ("max_dry_rounds", num_usize(c.max_dry_rounds)),
        ("explain_selection", Json::Bool(c.explain_selection)),
        ("parallelism", parallelism),
        ("profile", Json::Bool(c.profile)),
    ])
}

fn config_from_json(v: &Json) -> Result<HcConfig> {
    let repeat_policy = match get_str(v, "repeat_policy")? {
        "unrestricted" => RepeatPolicy::Unrestricted,
        "cycle_then_repeat" => RepeatPolicy::CycleThenRepeat,
        other => return Err(invalid(format!("unknown repeat policy `{other}`"))),
    };
    let sched = v.get("k_schedule").ok_or_else(|| bad("k_schedule"))?;
    let k_schedule = match get_str(sched, "kind")? {
        "fixed" => KSchedule::Fixed,
        "linear_decay" => KSchedule::LinearDecay {
            end: get_usize(sched, "end")?,
        },
        "entropy_adaptive" => KSchedule::EntropyAdaptive {
            nats_per_query: get_bits_f64(sched, "nats_per_query")?,
            max: get_usize(sched, "max")?,
        },
        other => return Err(invalid(format!("unknown k-schedule `{other}`"))),
    };
    let parallelism = match v.get("parallelism").ok_or_else(|| bad("parallelism"))? {
        Json::Str(s) if s == "auto" => Parallelism::Auto,
        Json::Str(s) if s == "serial" => Parallelism::Serial,
        j => Parallelism::Threads(j.as_usize().ok_or_else(|| bad("parallelism"))?),
    };
    let max_rounds = match v.get("max_rounds").ok_or_else(|| bad("max_rounds"))? {
        Json::Null => None,
        j => Some(j.as_usize().ok_or_else(|| bad("max_rounds"))?),
    };
    Ok(HcConfig {
        k: get_usize(v, "k")?,
        budget: get_u64(v, "budget")?,
        max_rounds,
        repeat_policy,
        k_schedule,
        max_dry_rounds: get_usize(v, "max_dry_rounds")?,
        explain_selection: get_bool(v, "explain_selection")?,
        parallelism,
        // Absent in frames written before profiling existed.
        profile: match v.get("profile") {
            None => false,
            Some(j) => j.as_bool().ok_or_else(|| bad("profile"))?,
        },
    })
}

fn panel_to_json(panel: &ExpertPanel) -> Json {
    Json::Arr(
        panel
            .workers()
            .iter()
            .map(|w| {
                obj(vec![
                    ("id", num(u64::from(w.id.0))),
                    ("accuracy", Json::Num(w.accuracy.rate())),
                ])
            })
            .collect(),
    )
}

fn panel_from_json(v: &Json, key: &str) -> Result<ExpertPanel> {
    let workers = get_arr(v, key)?
        .iter()
        .map(|w| {
            let id = w.get("id").and_then(Json::as_u32).ok_or_else(|| bad(key))?;
            let rate = get_f64(w, "accuracy")?;
            Worker::new(id, rate).map_err(|e| invalid(format!("panel worker: {e}")))
        })
        .collect::<Result<Vec<Worker>>>()?;
    Ok(ExpertPanel::new(workers))
}

fn beliefs_to_json(beliefs: &MultiBelief) -> Json {
    Json::Arr(beliefs.tasks().iter().map(belief_to_json).collect())
}

/// Serialises one belief. Dense stays the historical plain probability
/// array (frames written before sparse/factored existed parse
/// unchanged); the other representations are tagged objects so the
/// decoder can dispatch without guessing.
fn belief_to_json(b: &Belief) -> Json {
    match b.repr() {
        BeliefRepr::Dense(probs) => {
            Json::Arr(probs.iter().map(|&p| Json::Num(p)).collect())
        }
        BeliefRepr::Sparse(s) => obj(vec![
            ("repr", Json::Str("sparse".into())),
            ("num_facts", num_usize(b.num_facts())),
            (
                // Patterns are u64 and can exceed the 2^53 range JSON
                // numbers represent exactly, so they travel as decimal
                // strings.
                "patterns",
                Json::Arr(
                    s.patterns()
                        .iter()
                        .map(|p| Json::Str(p.to_string()))
                        .collect(),
                ),
            ),
            (
                "probs",
                Json::Arr(s.probs().iter().map(|&p| Json::Num(p)).collect()),
            ),
            ("bound", Json::Num(s.truncation_bound())),
        ]),
        BeliefRepr::Factored(f) => obj(vec![
            ("repr", Json::Str("factored".into())),
            (
                "blocks",
                Json::Arr(f.blocks().iter().map(belief_to_json).collect()),
            ),
        ]),
    }
}

fn belief_from_json(t: &Json, key: &str) -> Result<Belief> {
    // Back-compat: a bare array is a dense belief (the only format
    // before SESSION_FORMAT_VERSION grew representation tags).
    if let Some(arr) = t.as_arr() {
        let probs = arr
            .iter()
            .map(|p| p.as_f64().ok_or_else(|| bad(key)))
            .collect::<Result<Vec<f64>>>()?;
        return Belief::from_checkpoint_probs(probs)
            .map_err(|e| invalid(format!("belief restore: {e}")));
    }
    match get_str(t, "repr")? {
        "sparse" => {
            let num_facts = get_usize(t, "num_facts")?;
            let patterns = get_arr(t, "patterns")?
                .iter()
                .map(|p| {
                    p.as_str()
                        .and_then(|s| s.parse::<u64>().ok())
                        .ok_or_else(|| bad("patterns"))
                })
                .collect::<Result<Vec<u64>>>()?;
            let probs = get_arr(t, "probs")?
                .iter()
                .map(|p| p.as_f64().ok_or_else(|| bad("probs")))
                .collect::<Result<Vec<f64>>>()?;
            let bound = get_f64(t, "bound")?;
            Belief::sparse_from_checkpoint(num_facts, patterns, probs, bound)
                .map_err(|e| invalid(format!("belief restore: {e}")))
        }
        "factored" => {
            let blocks = get_arr(t, "blocks")?
                .iter()
                .map(|b| belief_from_json(b, "blocks"))
                .collect::<Result<Vec<Belief>>>()?;
            Belief::factored_from_checkpoint(blocks)
                .map_err(|e| invalid(format!("belief restore: {e}")))
        }
        other => Err(invalid(format!("unknown belief repr `{other}`"))),
    }
}

fn beliefs_from_json(v: &Json, key: &str) -> Result<MultiBelief> {
    let tasks = get_arr(v, key)?
        .iter()
        .map(|t| belief_from_json(t, key))
        .collect::<Result<Vec<Belief>>>()?;
    Ok(MultiBelief::new(tasks))
}

fn record_to_json(r: &RoundRecord) -> Json {
    obj(vec![
        ("round", num_usize(r.round)),
        ("queries", queries_to_json(&r.queries)),
        ("budget_spent", num(r.budget_spent)),
        ("quality", Json::Num(r.quality)),
        ("answers_requested", num_usize(r.answers_requested)),
        ("answers_received", num_usize(r.answers_received)),
        ("predicted_entropy", Json::Num(r.predicted_entropy)),
        ("realized_entropy", Json::Num(r.realized_entropy)),
    ])
}

fn record_from_json(v: &Json) -> Result<RoundRecord> {
    Ok(RoundRecord {
        round: get_usize(v, "round")?,
        queries: queries_from_json(v, "queries")?,
        budget_spent: get_u64(v, "budget_spent")?,
        quality: get_f64(v, "quality")?,
        answers_requested: get_usize(v, "answers_requested")?,
        answers_received: get_usize(v, "answers_received")?,
        predicted_entropy: get_f64(v, "predicted_entropy")?,
        realized_entropy: get_f64(v, "realized_entropy")?,
    })
}

fn plan_to_json(p: &PlannedRound) -> Json {
    obj(vec![
        ("round", num_usize(p.round)),
        ("k_requested", num_usize(p.k_requested)),
        ("queries", queries_to_json(&p.queries)),
        ("predicted_entropy", Json::Num(p.predicted_entropy)),
        ("first_query_id", num(p.first_query_id)),
    ])
}

fn plan_from_json(v: &Json, key: &str) -> Result<PlannedRound> {
    let p = v.get(key).ok_or_else(|| bad(key))?;
    Ok(PlannedRound {
        round: get_usize(p, "round")?,
        k_requested: get_usize(p, "k_requested")?,
        queries: queries_from_json(p, "queries")?,
        predicted_entropy: get_f64(p, "predicted_entropy")?,
        first_query_id: get_u64(p, "first_query_id")?,
    })
}

fn groups_to_json(groups: &[TaskGroup]) -> Json {
    Json::Arr(
        groups
            .iter()
            .map(|g| {
                obj(vec![
                    ("task", num_usize(g.task)),
                    (
                        "facts",
                        Json::Arr(
                            g.facts
                                .iter()
                                .map(|&(f, qid)| {
                                    Json::Arr(vec![num(u64::from(f.0)), num(qid)])
                                })
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect(),
    )
}

fn groups_from_json(v: &Json, key: &str) -> Result<Vec<TaskGroup>> {
    get_arr(v, key)?
        .iter()
        .map(|g| {
            let facts = get_arr(g, "facts")?
                .iter()
                .map(|pair| {
                    let parts = pair.as_arr().ok_or_else(|| bad(key))?;
                    if parts.len() != 2 {
                        return Err(bad(key));
                    }
                    let f = parts[0].as_u32().ok_or_else(|| bad(key))?;
                    let qid = parts[1].as_u64().ok_or_else(|| bad(key))?;
                    Ok((FactId(f), qid))
                })
                .collect::<Result<Vec<(FactId, u64)>>>()?;
            Ok(TaskGroup {
                task: get_usize(g, "task")?,
                facts,
            })
        })
        .collect()
}

fn outcome_to_str(o: &AnswerOutcome) -> &'static str {
    match o {
        AnswerOutcome::Answered(a) => {
            if a.as_bool() {
                "y"
            } else {
                "n"
            }
        }
        AnswerOutcome::TimedOut => "t",
        AnswerOutcome::Dropped => "d",
    }
}

fn outcome_from_str(s: &str) -> Result<AnswerOutcome> {
    match s {
        "y" => Ok(AnswerOutcome::Answered(Answer::from_bool(true))),
        "n" => Ok(AnswerOutcome::Answered(Answer::from_bool(false))),
        "t" => Ok(AnswerOutcome::TimedOut),
        "d" => Ok(AnswerOutcome::Dropped),
        other => Err(invalid(format!("unknown answer outcome `{other}`"))),
    }
}

fn collected_to_json(c: &CollectedRound) -> Json {
    obj(vec![
        (
            "outcomes",
            Json::Arr(
                c.outcomes
                    .iter()
                    .map(|grid| {
                        Json::Arr(
                            grid.iter()
                                .map(|row| {
                                    Json::Arr(
                                        row.iter()
                                            .map(|o| Json::Str(outcome_to_str(o).into()))
                                            .collect(),
                                    )
                                })
                                .collect(),
                        )
                    })
                    .collect(),
            ),
        ),
        (
            "per_worker",
            Json::Arr(c.per_worker.iter().map(|&n| num_usize(n)).collect()),
        ),
    ])
}

fn usize_arr_from_json(v: &Json, key: &str) -> Result<Vec<usize>> {
    get_arr(v, key)?
        .iter()
        .map(|n| n.as_usize().ok_or_else(|| bad(key)))
        .collect()
}

fn collected_from_json(v: &Json, key: &str) -> Result<CollectedRound> {
    let c = v.get(key).ok_or_else(|| bad(key))?;
    let outcomes = get_arr(c, "outcomes")?
        .iter()
        .map(|grid| {
            grid.as_arr()
                .ok_or_else(|| bad(key))?
                .iter()
                .map(|row| {
                    row.as_arr()
                        .ok_or_else(|| bad(key))?
                        .iter()
                        .map(|o| outcome_from_str(o.as_str().ok_or_else(|| bad(key))?))
                        .collect::<Result<Vec<AnswerOutcome>>>()
                })
                .collect::<Result<Vec<Vec<AnswerOutcome>>>>()
        })
        .collect::<Result<Vec<Vec<Vec<AnswerOutcome>>>>>()?;
    Ok(CollectedRound {
        outcomes,
        per_worker: usize_arr_from_json(c, "per_worker")?,
    })
}

fn delivery_to_json(d: &RoundDelivery) -> Json {
    obj(vec![
        ("requested", num_usize(d.requested)),
        ("delivered", num_usize(d.delivered)),
        (
            "per_worker",
            Json::Arr(d.per_worker.iter().map(|&n| num_usize(n)).collect()),
        ),
    ])
}

fn delivery_from_json(v: &Json, key: &str) -> Result<RoundDelivery> {
    let d = v.get(key).ok_or_else(|| bad(key))?;
    Ok(RoundDelivery {
        requested: get_usize(d, "requested")?,
        delivered: get_usize(d, "delivered")?,
        per_worker: usize_arr_from_json(d, "per_worker")?,
    })
}

fn health_to_json(h: &UpdateHealth) -> Json {
    obj(vec![
        ("min_mass", bits_json(h.min_mass)),
        ("renorm_scale", bits_json(h.renorm_scale)),
        ("log_evidence", bits_json(h.log_evidence)),
        ("clamp_count", num_usize(h.clamp_count)),
        ("rescued", Json::Bool(h.rescued)),
    ])
}

fn health_from_json(v: &Json, key: &str) -> Result<UpdateHealth> {
    let h = v.get(key).ok_or_else(|| bad(key))?;
    Ok(UpdateHealth {
        min_mass: get_bits_f64(h, "min_mass")?,
        renorm_scale: get_bits_f64(h, "renorm_scale")?,
        log_evidence: get_bits_f64(h, "log_evidence")?,
        clamp_count: get_usize(h, "clamp_count")?,
        rescued: get_bool(h, "rescued")?,
    })
}

fn cursor_to_json(c: &StepCursor) -> Json {
    match c {
        StepCursor::NextRound => obj(vec![("step", Json::Str("next_round".into()))]),
        StepCursor::Selected { plan } => obj(vec![
            ("step", Json::Str("selected".into())),
            ("plan", plan_to_json(plan)),
        ]),
        StepCursor::Dispatched { plan, groups } => obj(vec![
            ("step", Json::Str("dispatched".into())),
            ("plan", plan_to_json(plan)),
            ("groups", groups_to_json(groups)),
        ]),
        StepCursor::Collected {
            plan,
            groups,
            collected,
        } => obj(vec![
            ("step", Json::Str("collected".into())),
            ("plan", plan_to_json(plan)),
            ("groups", groups_to_json(groups)),
            ("collected", collected_to_json(collected)),
        ]),
        StepCursor::Updated {
            plan,
            delivery,
            health,
        } => obj(vec![
            ("step", Json::Str("updated".into())),
            ("plan", plan_to_json(plan)),
            ("delivery", delivery_to_json(delivery)),
            ("health", health_to_json(health)),
        ]),
        StepCursor::Finished { reason } => obj(vec![
            ("step", Json::Str("finished".into())),
            ("reason", Json::Str(reason.name().into())),
        ]),
    }
}

fn cursor_from_json(v: &Json, key: &str) -> Result<StepCursor> {
    let c = v.get(key).ok_or_else(|| bad(key))?;
    match get_str(c, "step")? {
        "next_round" => Ok(StepCursor::NextRound),
        "selected" => Ok(StepCursor::Selected {
            plan: plan_from_json(c, "plan")?,
        }),
        "dispatched" => Ok(StepCursor::Dispatched {
            plan: plan_from_json(c, "plan")?,
            groups: groups_from_json(c, "groups")?,
        }),
        "collected" => Ok(StepCursor::Collected {
            plan: plan_from_json(c, "plan")?,
            groups: groups_from_json(c, "groups")?,
            collected: collected_from_json(c, "collected")?,
        }),
        "updated" => Ok(StepCursor::Updated {
            plan: plan_from_json(c, "plan")?,
            delivery: delivery_from_json(c, "delivery")?,
            health: health_from_json(c, "health")?,
        }),
        "finished" => {
            let name = get_str(c, "reason")?;
            let reason = StopReason::from_name(name)
                .ok_or_else(|| invalid(format!("unknown stop reason `{name}`")))?;
            Ok(StepCursor::Finished { reason })
        }
        other => Err(invalid(format!("unknown cursor step `{other}`"))),
    }
}

fn draws_to_json(draws: &[RngDraw]) -> Json {
    Json::Arr(
        draws
            .iter()
            .map(|d| match *d {
                RngDraw::U32 { n } => Json::Arr(vec![Json::Str("u32".into()), num(n)]),
                RngDraw::U64 { n } => Json::Arr(vec![Json::Str("u64".into()), num(n)]),
                RngDraw::Bytes { len } => {
                    Json::Arr(vec![Json::Str("bytes".into()), num(len)])
                }
            })
            .collect(),
    )
}

fn draws_from_json(v: &Json, key: &str) -> Result<Vec<RngDraw>> {
    get_arr(v, key)?
        .iter()
        .map(|d| {
            let parts = d.as_arr().ok_or_else(|| bad(key))?;
            if parts.len() != 2 {
                return Err(bad(key));
            }
            let n = parts[1].as_u64().ok_or_else(|| bad(key))?;
            match parts[0].as_str().ok_or_else(|| bad(key))? {
                "u32" => Ok(RngDraw::U32 { n }),
                "u64" => Ok(RngDraw::U64 { n }),
                "bytes" => Ok(RngDraw::Bytes { len: n }),
                other => Err(invalid(format!("unknown rng draw kind `{other}`"))),
            }
        })
        .collect()
}

/// The complete, self-contained state of a checking run between two
/// steps — everything needed to continue the run bit-exactly.
///
/// Serializes to a compact JSON payload ([`SessionState::to_payload`])
/// intended to travel inside a CRC-checksummed [`CheckpointFrame`];
/// restoration ([`SessionState::from_payload`]) is all-or-nothing with
/// typed [`HcError::InvalidCheckpoint`] errors.
#[derive(Debug, Clone)]
pub struct SessionState {
    /// Payload format version (see [`SESSION_FORMAT_VERSION`]).
    pub version: u32,
    /// The run's configuration.
    pub config: HcConfig,
    /// The expert panel answering queries.
    pub panel: ExpertPanel,
    /// Current per-task posteriors.
    pub beliefs: MultiBelief,
    /// Closed rounds so far.
    pub rounds: Vec<RoundRecord>,
    /// Budget spent so far.
    pub spent: u64,
    /// Budget remaining (`config.budget - spent`, kept explicit).
    pub remaining: u64,
    /// Rounds started so far (1-based round number of the round in
    /// flight, if any).
    pub round: usize,
    /// Per-fact checked flags of the current repeat cycle, aligned with
    /// `selection::global_facts(&beliefs)`.
    pub checked: Vec<bool>,
    /// Number of `true` entries in `checked`.
    pub checked_count: usize,
    /// Consecutive rounds with zero delivered answers.
    pub dry_rounds: usize,
    /// Causal id the next selected query will receive.
    pub next_query_id: u64,
    /// Whether `RunStarted` has been emitted.
    pub started: bool,
    /// Position inside the step state machine.
    pub cursor: StepCursor,
    /// Run-length-encoded log of every loop-RNG draw so far (replayed
    /// on resume; see [`replay_draws`]).
    pub rng_draws: Vec<RngDraw>,
    /// Opaque oracle cursor captured at checkpoint time (see
    /// [`ResumableOracle`]), if the driver supplied one.
    pub oracle_cursor: Option<String>,
}

impl SessionState {
    /// Encodes the state as a JSON value.
    pub fn to_json(&self) -> Json {
        obj(vec![
            ("version", num(u64::from(self.version))),
            ("config", config_to_json(&self.config)),
            ("panel", panel_to_json(&self.panel)),
            ("beliefs", beliefs_to_json(&self.beliefs)),
            (
                "rounds",
                Json::Arr(self.rounds.iter().map(record_to_json).collect()),
            ),
            ("spent", num(self.spent)),
            ("remaining", num(self.remaining)),
            ("round", num_usize(self.round)),
            (
                "checked",
                Json::Str(
                    self.checked
                        .iter()
                        .map(|&c| if c { '1' } else { '0' })
                        .collect(),
                ),
            ),
            ("checked_count", num_usize(self.checked_count)),
            ("dry_rounds", num_usize(self.dry_rounds)),
            ("next_query_id", num(self.next_query_id)),
            ("started", Json::Bool(self.started)),
            ("cursor", cursor_to_json(&self.cursor)),
            ("rng_draws", draws_to_json(&self.rng_draws)),
            (
                "oracle_cursor",
                match &self.oracle_cursor {
                    Some(s) => Json::Str(s.clone()),
                    None => Json::Null,
                },
            ),
        ])
    }

    /// Decodes a state from a JSON value. The format version is checked
    /// *first*: a payload of any other version is rejected before any
    /// field is interpreted.
    pub fn from_json(v: &Json) -> Result<Self> {
        let version = v
            .get("version")
            .and_then(Json::as_u32)
            .ok_or_else(|| bad("version"))?;
        if version != SESSION_FORMAT_VERSION {
            return Err(invalid(format!(
                "unsupported session format version {version} (expected {SESSION_FORMAT_VERSION})"
            )));
        }
        let checked: Vec<bool> = get_str(v, "checked")?
            .chars()
            .map(|c| match c {
                '0' => Ok(false),
                '1' => Ok(true),
                _ => Err(bad("checked")),
            })
            .collect::<Result<Vec<bool>>>()?;
        let oracle_cursor = match v.get("oracle_cursor").ok_or_else(|| bad("oracle_cursor"))? {
            Json::Null => None,
            j => Some(j.as_str().ok_or_else(|| bad("oracle_cursor"))?.to_string()),
        };
        Ok(SessionState {
            version,
            config: config_from_json(v.get("config").ok_or_else(|| bad("config"))?)?,
            panel: panel_from_json(v, "panel")?,
            beliefs: beliefs_from_json(v, "beliefs")?,
            rounds: get_arr(v, "rounds")?
                .iter()
                .map(record_from_json)
                .collect::<Result<Vec<RoundRecord>>>()?,
            spent: get_u64(v, "spent")?,
            remaining: get_u64(v, "remaining")?,
            round: get_usize(v, "round")?,
            checked,
            checked_count: get_usize(v, "checked_count")?,
            dry_rounds: get_usize(v, "dry_rounds")?,
            next_query_id: get_u64(v, "next_query_id")?,
            started: get_bool(v, "started")?,
            cursor: cursor_from_json(v, "cursor")?,
            rng_draws: draws_from_json(v, "rng_draws")?,
            oracle_cursor,
        })
    }

    /// Serializes to the compact string payload stored in a
    /// [`CheckpointFrame`].
    pub fn to_payload(&self) -> String {
        self.to_json().to_string()
    }

    /// Parses a payload produced by [`SessionState::to_payload`].
    /// All-or-nothing: any malformed field yields
    /// [`HcError::InvalidCheckpoint`] and no state.
    pub fn from_payload(payload: &str) -> Result<Self> {
        let v = json::parse(payload)
            .map_err(|e| invalid(format!("payload is not valid JSON: {e:?}")))?;
        Self::from_json(&v)
    }
}

/// The mutable collaborators a session borrows for the duration of one
/// [`HcSession::step`] call — everything that is *not* part of the
/// serializable state.
pub struct SessionEnv<'e> {
    /// Source of expert answers.
    pub oracle: &'e mut dyn AnswerOracle,
    /// The loop RNG (selector randomness). On the first step after a
    /// resume it must be freshly seeded exactly like the original run's;
    /// the session fast-forwards it through the recorded draw log.
    pub rng: &'e mut dyn RngCore,
    /// Telemetry destination.
    pub sink: &'e mut dyn TelemetrySink,
    /// Per-round callback, invoked after each round's belief update.
    pub observer: &'e mut dyn FnMut(&MultiBelief, &RoundRecord),
}

/// Groups a round's queries per task (first-seen task order, selection
/// order within a task), attaching the causal id `first_query_id + i`
/// to query `i` — the exact grouping the checking loop has always used.
pub fn group_queries(queries: &[GlobalFact], first_query_id: u64) -> Vec<TaskGroup> {
    let mut groups: Vec<TaskGroup> = Vec::new();
    for (idx, gf) in queries.iter().enumerate() {
        let qid = first_query_id + idx as u64;
        match groups.iter_mut().find(|g| g.task == gf.task) {
            Some(g) => g.facts.push((gf.fact, qid)),
            None => groups.push(TaskGroup {
                task: gf.task,
                facts: vec![(gf.fact, qid)],
            }),
        }
    }
    groups
}

/// Asks every panel worker every query of one task group, emitting the
/// dispatch/outcome telemetry pairs. Returns `grid[worker][fact]`.
fn collect_group(
    panel: &ExpertPanel,
    group: &TaskGroup,
    oracle: &mut dyn AnswerOracle,
    round: usize,
    sink: &mut dyn TelemetrySink,
) -> Vec<Vec<AnswerOutcome>> {
    let task = group.task;
    panel
        .workers()
        .iter()
        .map(|w| {
            group
                .facts
                .iter()
                .map(|&(f, qid)| {
                    if sink.enabled() {
                        sink.record(&TelemetryEvent::QueryDispatched {
                            round,
                            task,
                            fact: f.0,
                            worker: w.id.0,
                            query_id: qid,
                        });
                    }
                    oracle.begin_dispatch(qid);
                    let outcome = oracle.answer(w, GlobalFact { task, fact: f });
                    if sink.enabled() {
                        sink.record(&match outcome {
                            AnswerOutcome::Answered(a) => TelemetryEvent::AnswerDelivered {
                                round,
                                task,
                                fact: f.0,
                                worker: w.id.0,
                                query_id: qid,
                                answer: a.as_bool(),
                            },
                            AnswerOutcome::TimedOut => TelemetryEvent::AnswerTimedOut {
                                round,
                                task,
                                fact: f.0,
                                worker: w.id.0,
                                query_id: qid,
                            },
                            AnswerOutcome::Dropped => TelemetryEvent::AnswerDropped {
                                round,
                                task,
                                fact: f.0,
                                worker: w.id.0,
                                query_id: qid,
                            },
                        });
                    }
                    outcome
                })
                .collect()
        })
        .collect()
}

/// Applies one task group's partial-answer Bayes update from a
/// collected outcome grid (`outcomes[worker][fact]`).
fn update_group(
    beliefs: &mut MultiBelief,
    panel: &ExpertPanel,
    group: &TaskGroup,
    outcomes: &[Vec<AnswerOutcome>],
) -> Result<UpdateHealth> {
    let num_facts = beliefs.tasks()[group.task].num_facts();
    let query_set = QuerySet::new(group.facts.iter().map(|&(f, _)| f).collect(), num_facts)?;
    let sets: Vec<PartialAnswerSet> = outcomes
        .iter()
        .map(|row| PartialAnswerSet::new(row))
        .collect();
    let family = PartialAnswerFamily::new(sets);
    update_with_partial_family(&mut beliefs.tasks_mut()[group.task], &query_set, panel, &family)
}

/// The checking loop of Algorithm 3 as an explicit, resumable state
/// machine.
///
/// Construct with [`HcSession::start`] (fresh run) or
/// [`HcSession::resume`] / [`HcSession::from_frame`] (from a
/// checkpoint), then drive with [`HcSession::step`] or
/// [`HcSession::run_to_completion`]. Between any two steps,
/// [`HcSession::checkpoint_frame`] captures the entire run.
pub struct HcSession<'a> {
    selector: &'a dyn TaskSelector,
    costs: &'a dyn CostModel,
    state: SessionState,
    /// Cost of asking the whole panel one query (derived).
    panel_cost: u64,
    /// The global fact space (derived from the beliefs' shape).
    all_facts: Vec<GlobalFact>,
    /// Set on resume: the next `step` call fast-forwards `env.rng`
    /// through the recorded draw log before doing anything else.
    needs_rng_replay: bool,
    /// Set by the first `step` of a `config.profile` run: the thread's
    /// timing state has been reset and enabled, and `finish` must emit
    /// the `ProfileReport` and disable it again. Deliberately not
    /// serialized — a resumed session profiles its own segment.
    profile_started: bool,
}

impl std::fmt::Debug for HcSession<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HcSession")
            .field("selector", &self.selector.name())
            .field("state", &self.state)
            .field("panel_cost", &self.panel_cost)
            .field("needs_rng_replay", &self.needs_rng_replay)
            .finish_non_exhaustive()
    }
}

/// What [`HcSession::preview_next_round`] predicts the next
/// `SelectQueries` step would do under a hypothetical remaining budget:
/// the effective query count, the selector's predicted post-round
/// entropy, and the resulting entropy gain. Used by
/// [`crate::corpus::CorpusScheduler`] to score groups without mutating
/// them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundPreview {
    /// min(scheduled k, affordable queries) for the previewed round.
    pub k_eff: usize,
    /// The selection objective of the previewed plan (expected entropy
    /// after the round).
    pub predicted_entropy: f64,
    /// Current total entropy minus `predicted_entropy` — the marginal
    /// gain the round is expected to buy.
    pub gain: f64,
}

impl<'a> HcSession<'a> {
    /// Begins a fresh run. Fails only on an empty panel.
    pub fn start(
        beliefs: MultiBelief,
        panel: ExpertPanel,
        config: HcConfig,
        selector: &'a dyn TaskSelector,
        costs: &'a dyn CostModel,
    ) -> Result<Self> {
        if panel.is_empty() {
            return Err(HcError::EmptyCrowd);
        }
        let all_facts = crate::selection::global_facts(&beliefs);
        let panel_cost: u64 = panel.workers().iter().map(|w| costs.cost(w)).sum();
        let state = SessionState {
            version: SESSION_FORMAT_VERSION,
            remaining: config.budget,
            spent: 0,
            rounds: Vec::new(),
            round: 0,
            checked: vec![false; all_facts.len()],
            checked_count: 0,
            dry_rounds: 0,
            next_query_id: 1,
            started: false,
            cursor: StepCursor::NextRound,
            rng_draws: Vec::new(),
            oracle_cursor: None,
            config,
            panel,
            beliefs,
        };
        Ok(HcSession {
            selector,
            costs,
            state,
            panel_cost,
            all_facts,
            needs_rng_replay: false,
            profile_started: false,
        })
    }

    /// Rehydrates a session from a restored [`SessionState`], validating
    /// its internal consistency exhaustively first. A state that fails
    /// any check is rejected with [`HcError::InvalidCheckpoint`] and
    /// nothing is constructed.
    pub fn resume(
        state: SessionState,
        selector: &'a dyn TaskSelector,
        costs: &'a dyn CostModel,
    ) -> Result<Self> {
        if state.version != SESSION_FORMAT_VERSION {
            return Err(invalid(format!(
                "unsupported session format version {} (expected {SESSION_FORMAT_VERSION})",
                state.version
            )));
        }
        if state.panel.is_empty() {
            return Err(invalid("checkpoint has an empty expert panel".into()));
        }
        let all_facts = crate::selection::global_facts(&state.beliefs);
        if state.checked.len() != all_facts.len() {
            return Err(invalid(format!(
                "checked-flag vector has {} entries for a {}-fact space",
                state.checked.len(),
                all_facts.len()
            )));
        }
        let count = state.checked.iter().filter(|&&c| c).count();
        if count != state.checked_count {
            return Err(invalid(format!(
                "checked_count {} does not match {} set flags",
                state.checked_count, count
            )));
        }
        if state.spent.checked_add(state.remaining) != Some(state.config.budget) {
            return Err(invalid(format!(
                "spent {} + remaining {} does not equal budget {}",
                state.spent, state.remaining, state.config.budget
            )));
        }
        match &state.cursor {
            StepCursor::NextRound | StepCursor::Finished { .. } => {
                if state.rounds.len() != state.round {
                    return Err(invalid(format!(
                        "{} closed rounds recorded but round counter is {}",
                        state.rounds.len(),
                        state.round
                    )));
                }
            }
            StepCursor::Selected { plan }
            | StepCursor::Dispatched { plan, .. }
            | StepCursor::Collected { plan, .. }
            | StepCursor::Updated { plan, .. } => {
                if plan.round != state.round || state.rounds.len() + 1 != state.round {
                    return Err(invalid(format!(
                        "mid-round cursor for round {} is inconsistent with round \
                         counter {} and {} closed rounds",
                        plan.round,
                        state.round,
                        state.rounds.len()
                    )));
                }
                if plan.queries.is_empty() {
                    return Err(invalid("mid-round cursor has an empty query plan".into()));
                }
                if plan.first_query_id + plan.queries.len() as u64 != state.next_query_id {
                    return Err(invalid(
                        "query-id counter does not follow the in-flight plan".into(),
                    ));
                }
                for q in &plan.queries {
                    if !all_facts.contains(q) {
                        return Err(invalid(format!(
                            "planned query (task {}, fact {}) is outside the fact space",
                            q.task, q.fact.0
                        )));
                    }
                }
            }
        }
        match &state.cursor {
            StepCursor::Dispatched { plan, groups }
            | StepCursor::Collected { plan, groups, .. }
                if *groups != group_queries(&plan.queries, plan.first_query_id) =>
            {
                return Err(invalid(
                    "dispatch groups do not match the query plan".into(),
                ));
            }
            _ => {}
        }
        if let StepCursor::Collected {
            groups, collected, ..
        } = &state.cursor
        {
            if collected.outcomes.len() != groups.len()
                || collected.per_worker.len() != state.panel.len()
            {
                return Err(invalid("collected outcome grid has wrong shape".into()));
            }
            let mut per_worker = vec![0usize; state.panel.len()];
            for (g, grid) in groups.iter().zip(&collected.outcomes) {
                if grid.len() != state.panel.len() {
                    return Err(invalid("collected outcome grid has wrong shape".into()));
                }
                for (w, row) in grid.iter().enumerate() {
                    if row.len() != g.facts.len() {
                        return Err(invalid("collected outcome grid has wrong shape".into()));
                    }
                    per_worker[w] += row.iter().filter(|o| o.is_answered()).count();
                }
            }
            if per_worker != collected.per_worker {
                return Err(invalid(
                    "per-worker delivery counts do not match the outcome grid".into(),
                ));
            }
        }
        if let StepCursor::Updated { plan, delivery, .. } = &state.cursor {
            if delivery.per_worker.len() != state.panel.len()
                || delivery.requested != plan.queries.len() * state.panel.len()
                || delivery.delivered != delivery.per_worker.iter().sum::<usize>()
                || delivery.delivered > delivery.requested
            {
                return Err(invalid(
                    "round delivery report is internally inconsistent".into(),
                ));
            }
        }
        let panel_cost: u64 = state.panel.workers().iter().map(|w| costs.cost(w)).sum();
        Ok(HcSession {
            selector,
            costs,
            state,
            panel_cost,
            all_facts,
            needs_rng_replay: true,
            profile_started: false,
        })
    }

    /// [`HcSession::resume`] from a raw [`CheckpointFrame`]: verifies
    /// the frame's kind tag, decodes the payload, and validates.
    pub fn from_frame(
        frame: &CheckpointFrame,
        selector: &'a dyn TaskSelector,
        costs: &'a dyn CostModel,
    ) -> Result<Self> {
        frame
            .expect_kind(SESSION_CHECKPOINT_KIND)
            .map_err(|e| invalid(e.to_string()))?;
        let state = SessionState::from_payload(&frame.payload)?;
        Self::resume(state, selector, costs)
    }

    /// Captures the current state as a checkpoint frame with sequence
    /// number `seq`. Call only between steps (never mid-`step`).
    pub fn checkpoint_frame(&self, seq: u64) -> CheckpointFrame {
        CheckpointFrame::new(SESSION_CHECKPOINT_KIND, seq, self.state.to_payload())
    }

    /// Stores the driver's oracle cursor so it rides along in the next
    /// [`HcSession::checkpoint_frame`] (see [`ResumableOracle`]).
    pub fn set_oracle_cursor(&mut self, cursor: Option<String>) {
        self.state.oracle_cursor = cursor;
    }

    /// Read access to the session state.
    pub fn state(&self) -> &SessionState {
        &self.state
    }

    /// Where the session stands: the step that `step` would execute
    /// next, or the finished stop reason.
    pub fn status(&self) -> SessionStatus {
        match &self.state.cursor {
            StepCursor::NextRound => SessionStatus::Pending(SessionStep::SelectQueries),
            StepCursor::Selected { .. } => SessionStatus::Pending(SessionStep::Dispatch),
            StepCursor::Dispatched { .. } => SessionStatus::Pending(SessionStep::CollectAnswers),
            StepCursor::Collected { .. } => SessionStatus::Pending(SessionStep::UpdateBeliefs),
            StepCursor::Updated { .. } => SessionStatus::Pending(SessionStep::CloseRound),
            StepCursor::Finished { reason } => SessionStatus::Finished(*reason),
        }
    }

    /// Consumes the session, yielding the final beliefs, the closed
    /// rounds, and the budget spent.
    pub fn into_parts(self) -> (MultiBelief, Vec<RoundRecord>, u64) {
        (self.state.beliefs, self.state.rounds, self.state.spent)
    }

    /// Cost of asking the whole panel one query under this session's
    /// cost model.
    pub fn panel_cost(&self) -> u64 {
        self.panel_cost
    }

    /// Re-points the session at a new remaining budget, keeping the
    /// `spent + remaining == config.budget` checkpoint invariant by
    /// rewriting `config.budget` to match. This is how
    /// [`crate::corpus::CorpusScheduler`] lends slices of a pooled
    /// corpus budget to a group just before advancing it; a session
    /// whose budget is never lent behaves exactly as configured.
    pub fn lend_budget(&mut self, remaining: u64) {
        self.state.remaining = remaining;
        self.state.config.budget = self.state.spent + remaining;
    }

    /// The `k_eff` that the next `SelectQueries` step would compute if
    /// the session had `remaining_view` budget left: 0 when the session
    /// is finished, mid-round, or would stop (dry rounds, round cap, or
    /// unaffordable panel). Because every [`KSchedule`] variant is
    /// non-increasing in a shrinking budget view, this is non-increasing
    /// in `remaining_view` — the monotonicity the corpus scheduler's
    /// lazy heap relies on.
    pub fn preview_k_eff(&self, remaining_view: u64) -> usize {
        if !matches!(self.state.cursor, StepCursor::NextRound) {
            return 0;
        }
        if self.state.dry_rounds >= self.state.config.max_dry_rounds.max(1) {
            return 0;
        }
        if let Some(cap) = self.state.config.max_rounds {
            if self.state.round >= cap {
                return 0;
            }
        }
        let round_k = self.state.config.k_schedule.round_k(
            self.state.config.k,
            self.state.spent,
            self.state.spent + remaining_view,
            &self.state.beliefs,
        );
        let affordable = (remaining_view / self.panel_cost) as usize;
        round_k.min(affordable)
    }

    /// Dry-runs the next `SelectQueries` step under a hypothetical
    /// remaining budget of `remaining_view`, without mutating the
    /// session: replays the budget/round guards, the repeat-policy
    /// candidate filter (including a *virtual* cycle reset), and the
    /// selector, and reports the plan's predicted entropy and marginal
    /// gain. Returns `Ok(None)` when the step would terminate the run
    /// instead of selecting a round (or when the session is not at a
    /// round boundary).
    ///
    /// The preview draws from a throwaway fixed-seed RNG rather than
    /// the session's logged stream, so it predicts the executed round
    /// **exactly** only for selectors that make no RNG draws (the
    /// default greedy selector draws nothing). This is the pure scoring
    /// function behind the corpus scheduler's cross-group CELF: calling
    /// it never changes what the session will do next.
    pub fn preview_next_round(&self, remaining_view: u64) -> Result<Option<RoundPreview>> {
        use rand::SeedableRng as _;
        let k_eff = self.preview_k_eff(remaining_view);
        if k_eff == 0 {
            return Ok(None);
        }
        let cycle_reset = self.state.config.repeat_policy == RepeatPolicy::CycleThenRepeat
            && self.state.checked_count == self.all_facts.len();
        let candidates: Vec<GlobalFact> =
            if self.state.config.repeat_policy == RepeatPolicy::CycleThenRepeat && !cycle_reset {
                self.all_facts
                    .iter()
                    .zip(&self.state.checked)
                    .filter(|(_, &c)| !c)
                    .map(|(&gf, _)| gf)
                    .collect()
            } else {
                self.all_facts.clone()
            };
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let queries = self.selector.select(
            &self.state.beliefs,
            &self.state.panel,
            k_eff,
            &candidates,
            &mut rng,
        )?;
        if queries.is_empty() {
            return Ok(None);
        }
        let predicted_entropy =
            crate::selection::selection_objective(&self.state.beliefs, &queries, &self.state.panel)?;
        let gain = self.state.beliefs.entropy() - predicted_entropy;
        Ok(Some(RoundPreview {
            k_eff,
            predicted_entropy,
            gain,
        }))
    }

    /// Executes exactly one step of the state machine and returns where
    /// the session stands afterwards.
    ///
    /// Calling `step` on a finished session is a no-op that returns the
    /// terminal status again (nothing is re-emitted). An `Err` return
    /// leaves the cursor *before* the failed step, but the step's
    /// partial side effects (oracle calls, partially applied updates)
    /// make re-stepping unsound — resume from the last checkpoint
    /// instead.
    pub fn step(&mut self, env: &mut SessionEnv<'_>) -> Result<SessionStatus> {
        // Install the run's thread policy for every kernel below;
        // results are bit-identical regardless (see `crate::parallel`).
        let _par = crate::parallel::scoped(self.state.config.parallelism);
        if self.needs_rng_replay {
            replay_draws(&self.state.rng_draws, env.rng);
            self.needs_rng_replay = false;
        }
        if let StepCursor::Finished { reason } = self.state.cursor {
            return Ok(SessionStatus::Finished(reason));
        }
        // Opt-in profiling owns this thread's timing state for the whole
        // run: reset once at the first step (fresh or resumed), disabled
        // again when `finish` emits the report. Span timings are
        // wall-clock, so nothing below feeds back into computed bits.
        if self.state.config.profile && !self.profile_started {
            timing::reset();
            timing::set_enabled(true);
            self.profile_started = true;
        }
        if !self.state.started {
            if env.sink.enabled() {
                env.sink.record(&TelemetryEvent::RunStarted {
                    tasks: self.state.beliefs.len(),
                    facts: self.state.beliefs.total_facts(),
                    panel: self.state.panel.len(),
                    budget: self.state.config.budget,
                    k: self.state.config.k,
                    entropy: self.state.beliefs.entropy(),
                    quality: self.state.beliefs.quality(),
                    belief_repr: BeliefReprSummary::parse(self.state.beliefs.repr_summary())
                        .unwrap_or_default(),
                });
            }
            self.state.started = true;
        }
        // Step-level spans parent the kernel spans below them
        // (selection/scoring/entropy/update), giving the profile tree
        // its top layer. No-ops unless this thread's timing is enabled.
        let _step_span = timing::span(match &self.state.cursor {
            StepCursor::NextRound => Phase::SelectQueries,
            StepCursor::Selected { .. } => Phase::Dispatch,
            StepCursor::Dispatched { .. } => Phase::CollectAnswers,
            StepCursor::Collected { .. } => Phase::UpdateBeliefs,
            StepCursor::Updated { .. } => Phase::CloseRound,
            StepCursor::Finished { .. } => unreachable!("handled above"),
        });
        match self.state.cursor.clone() {
            StepCursor::NextRound => self.select_queries(env),
            StepCursor::Selected { plan } => self.dispatch(plan),
            StepCursor::Dispatched { plan, groups } => self.collect_answers(plan, groups, env),
            StepCursor::Collected {
                plan,
                groups,
                collected,
            } => self.update_beliefs(plan, groups, collected),
            StepCursor::Updated {
                plan,
                delivery,
                health,
            } => self.close_round(plan, delivery, health, env),
            StepCursor::Finished { .. } => unreachable!("handled above"),
        }
    }

    /// Drives [`HcSession::step`] until the run finishes.
    pub fn run_to_completion(&mut self, env: &mut SessionEnv<'_>) -> Result<StopReason> {
        loop {
            if let SessionStatus::Finished(reason) = self.step(env)? {
                return Ok(reason);
            }
        }
    }

    fn select_queries(&mut self, env: &mut SessionEnv<'_>) -> Result<SessionStatus> {
        // Normally the dry-round guard fires inside `close_round`; this
        // pre-check only triggers on a state folded from a trace that
        // ended after a dry round's BeliefUpdated but before its
        // RunFinished — the resumed session must still emit it.
        if self.state.dry_rounds >= self.state.config.max_dry_rounds.max(1) {
            return self.finish(StopReason::DryRounds, env);
        }
        if let Some(cap) = self.state.config.max_rounds {
            if self.state.round >= cap {
                return self.finish(StopReason::MaxRounds, env);
            }
        }
        // Algorithm 2 caps |T| at min(k, affordable queries); the
        // schedule may shrink or grow the base k first (§III-D).
        let round_k = self.state.config.k_schedule.round_k(
            self.state.config.k,
            self.state.spent,
            self.state.config.budget,
            &self.state.beliefs,
        );
        let affordable = (self.state.remaining / self.panel_cost) as usize;
        let k_eff = round_k.min(affordable);
        if k_eff == 0 {
            return self.finish(StopReason::BudgetExhausted, env);
        }
        // Eligible candidates under the repeat policy.
        if self.state.config.repeat_policy == RepeatPolicy::CycleThenRepeat
            && self.state.checked_count == self.all_facts.len()
        {
            self.state.checked.fill(false);
            self.state.checked_count = 0;
        }
        let candidates: Vec<GlobalFact> =
            if self.state.config.repeat_policy == RepeatPolicy::CycleThenRepeat {
                self.all_facts
                    .iter()
                    .zip(&self.state.checked)
                    .filter(|(_, &c)| !c)
                    .map(|(&gf, _)| gf)
                    .collect()
            } else {
                self.all_facts.clone()
            };
        // The explain trace exists only when requested AND the sink
        // wants events; otherwise the selection path is exactly `select`.
        let mut trace: Option<ExplainTrace> =
            if self.state.config.explain_selection && env.sink.enabled() {
                Some(ExplainTrace::new())
            } else {
                None
            };
        let queries = {
            let _span = timing::span(Phase::Selection);
            let mut rng = CursorRng {
                inner: env.rng,
                log: &mut self.state.rng_draws,
            };
            match trace.as_mut() {
                Some(t) => self.selector.select_with_explain(
                    &self.state.beliefs,
                    &self.state.panel,
                    k_eff,
                    &candidates,
                    &mut rng,
                    t,
                )?,
                None => self.selector.select(
                    &self.state.beliefs,
                    &self.state.panel,
                    k_eff,
                    &candidates,
                    &mut rng,
                )?,
            }
        };
        if queries.is_empty() {
            return self.finish(StopReason::NoPositiveGain, env);
        }
        if self.state.config.repeat_policy == RepeatPolicy::CycleThenRepeat {
            for q in &queries {
                let idx = self
                    .all_facts
                    .iter()
                    .position(|gf| gf == q)
                    .expect("selector returns candidates");
                if !self.state.checked[idx] {
                    self.state.checked[idx] = true;
                    self.state.checked_count += 1;
                }
            }
        }
        self.state.round += 1;
        // What the selector expects to remain after this round — stored
        // in the RoundRecord so per-round regret is computable.
        let predicted_entropy =
            crate::selection::selection_objective(&self.state.beliefs, &queries, &self.state.panel)?;
        if env.sink.enabled() {
            env.sink.record(&TelemetryEvent::RoundSelected {
                round: self.state.round,
                k_requested: round_k,
                k_effective: queries.len(),
                queries: queries.iter().map(|q| (q.task, q.fact.0)).collect(),
                entropy_before: self.state.beliefs.entropy(),
                predicted_entropy,
            });
        }
        let first_query_id = self.state.next_query_id;
        self.state.next_query_id += queries.len() as u64;
        if let Some(t) = trace.as_ref() {
            if env.sink.enabled() {
                for s in &t.scored {
                    env.sink.record(&TelemetryEvent::CandidateScored {
                        round: self.state.round,
                        step: s.step,
                        task: s.fact.task,
                        fact: s.fact.fact.0,
                        gain: s.gain,
                    });
                }
                for (idx, s) in t.selected.iter().enumerate() {
                    env.sink.record(&TelemetryEvent::QuerySelected {
                        round: self.state.round,
                        step: s.step,
                        task: s.fact.task,
                        fact: s.fact.fact.0,
                        gain: s.gain,
                        query_id: first_query_id + idx as u64,
                    });
                }
            }
        }
        self.state.cursor = StepCursor::Selected {
            plan: PlannedRound {
                round: self.state.round,
                k_requested: round_k,
                queries,
                predicted_entropy,
                first_query_id,
            },
        };
        Ok(SessionStatus::Pending(SessionStep::Dispatch))
    }

    fn dispatch(&mut self, plan: PlannedRound) -> Result<SessionStatus> {
        let groups = group_queries(&plan.queries, plan.first_query_id);
        // Validate every group's query set *before* any oracle call, so
        // a selector emitting duplicate or out-of-range facts fails here
        // (as the pre-session loop did) rather than after dispatching.
        for g in &groups {
            let num_facts = self.state.beliefs.tasks()[g.task].num_facts();
            QuerySet::new(g.facts.iter().map(|&(f, _)| f).collect(), num_facts)?;
        }
        self.state.cursor = StepCursor::Dispatched { plan, groups };
        Ok(SessionStatus::Pending(SessionStep::CollectAnswers))
    }

    fn collect_answers(
        &mut self,
        plan: PlannedRound,
        groups: Vec<TaskGroup>,
        env: &mut SessionEnv<'_>,
    ) -> Result<SessionStatus> {
        let mut outcomes = Vec::with_capacity(groups.len());
        let mut per_worker = vec![0usize; self.state.panel.len()];
        for group in &groups {
            let grid = collect_group(&self.state.panel, group, env.oracle, plan.round, env.sink);
            for (w, row) in grid.iter().enumerate() {
                per_worker[w] += row.iter().filter(|o| o.is_answered()).count();
            }
            outcomes.push(grid);
        }
        self.state.cursor = StepCursor::Collected {
            plan,
            groups,
            collected: CollectedRound {
                outcomes,
                per_worker,
            },
        };
        Ok(SessionStatus::Pending(SessionStep::UpdateBeliefs))
    }

    fn update_beliefs(
        &mut self,
        plan: PlannedRound,
        groups: Vec<TaskGroup>,
        collected: CollectedRound,
    ) -> Result<SessionStatus> {
        let mut health = UpdateHealth::identity();
        for (group, grid) in groups.iter().zip(&collected.outcomes) {
            let task_health =
                update_group(&mut self.state.beliefs, &self.state.panel, group, grid)?;
            if task_health.rescued {
                timing::add(timing::Counter::RescuedUpdates, 1);
            }
            health.merge(&task_health);
        }
        let delivery = RoundDelivery {
            requested: plan.queries.len() * self.state.panel.len(),
            delivered: collected.per_worker.iter().sum(),
            per_worker: collected.per_worker,
        };
        self.state.cursor = StepCursor::Updated {
            plan,
            delivery,
            health,
        };
        Ok(SessionStatus::Pending(SessionStep::CloseRound))
    }

    fn close_round(
        &mut self,
        plan: PlannedRound,
        delivery: RoundDelivery,
        health: UpdateHealth,
        env: &mut SessionEnv<'_>,
    ) -> Result<SessionStatus> {
        // Charge only for answers that actually arrived: a dropped or
        // timed-out attempt costs nothing. With a reliable crowd this is
        // exactly the paper's `|T| · |CE|` per-round charge.
        let cost: u64 = self
            .state
            .panel
            .workers()
            .iter()
            .zip(&delivery.per_worker)
            .map(|(w, &n)| self.costs.cost(w) * n as u64)
            .sum();
        self.state.remaining -= cost;
        self.state.spent += cost;
        let realized_entropy = self.state.beliefs.entropy();
        let record = RoundRecord {
            round: plan.round,
            queries: plan.queries,
            budget_spent: self.state.spent,
            quality: self.state.beliefs.quality(),
            answers_requested: delivery.requested,
            answers_received: delivery.delivered,
            predicted_entropy: plan.predicted_entropy,
            realized_entropy,
        };
        if env.sink.enabled() {
            env.sink.record(&TelemetryEvent::BeliefUpdated {
                round: plan.round,
                entropy: realized_entropy,
                quality: record.quality,
                budget_spent: self.state.spent,
                answers_requested: delivery.requested,
                answers_received: delivery.delivered,
            });
            // One numerical-health report per round that actually
            // renormalised something, so the inspector's audit can flag
            // near-collapse runs. All fields come from fixed-chunk
            // ordered reductions, so the event stream stays bit-identical
            // across thread counts.
            if health.is_meaningful() {
                env.sink.record(&TelemetryEvent::NumericalHealth {
                    round: plan.round,
                    min_mass: health.min_mass,
                    renorm_scale: health.renorm_scale,
                    log_evidence: health.log_evidence,
                    clamp_count: health.clamp_count as u64,
                    rescued: health.rescued,
                });
            }
        }
        (env.observer)(&self.state.beliefs, &record);
        self.state.rounds.push(record);
        // An unresponsive crowd delivers nothing and charges nothing, so
        // the budget check alone cannot terminate the loop — bound it by
        // consecutive all-dry rounds instead.
        if delivery.delivered == 0 {
            self.state.dry_rounds += 1;
            if self.state.dry_rounds >= self.state.config.max_dry_rounds.max(1) {
                return self.finish(StopReason::DryRounds, env);
            }
        } else {
            self.state.dry_rounds = 0;
        }
        self.state.cursor = StepCursor::NextRound;
        Ok(SessionStatus::Pending(SessionStep::SelectQueries))
    }

    fn finish(&mut self, reason: StopReason, env: &mut SessionEnv<'_>) -> Result<SessionStatus> {
        if self.profile_started {
            // The step span that led here is still open; its in-flight
            // execution opens no child spans before reaching `finish`,
            // so the snapshot's telescoping identity (Σ self == Σ root
            // inclusive) still holds over everything recorded.
            if env.sink.enabled() {
                env.sink
                    .record(&TelemetryEvent::profile_report(&timing::snapshot()));
            }
            timing::set_enabled(false);
            self.profile_started = false;
        }
        if env.sink.enabled() {
            env.sink.record(&TelemetryEvent::RunFinished {
                rounds: self.state.round,
                budget_spent: self.state.spent,
                entropy: self.state.beliefs.entropy(),
                quality: self.state.beliefs.quality(),
                reason,
            });
            env.sink.flush();
        }
        self.state.cursor = StepCursor::Finished { reason };
        Ok(SessionStatus::Finished(reason))
    }
}

/// Result of [`resume_state_from_trace`].
#[derive(Debug, Clone)]
pub struct TraceResume {
    /// The reconstructed state, positioned at the next round boundary
    /// (or finished, when the trace contains `RunFinished`).
    pub state: SessionState,
    /// How many leading events of the input were folded into `state`.
    /// Events past this index belong to a partial round the resumed
    /// session re-executes, so a stitched log must be truncated to this
    /// many events before the resumed run appends to it.
    pub events_consumed: usize,
}

/// A round in flight during the trace fold: selected, answers arriving,
/// not yet closed by a `BeliefUpdated`.
struct PendingRound {
    round: usize,
    k_requested: usize,
    queries: Vec<GlobalFact>,
    predicted_entropy: f64,
    /// `(task, fact, worker, query_id, outcome)` in event order.
    outcomes: Vec<(usize, u32, u32, u64, AnswerOutcome)>,
}

/// Reconstructs a resumable [`SessionState`] by folding a recorded
/// telemetry stream over the run's *initial* inputs — recovery when no
/// snapshot survived but the JSONL trace did.
///
/// The fold replays every closed round's Bayes updates and
/// cross-checks the recomputed entropies bit-for-bit against the
/// recorded ones; any divergence (wrong initial beliefs, edited trace,
/// foreign events) is rejected with [`HcError::InvalidCheckpoint`]. A
/// trailing partial round (selected but not closed when the process
/// died) is discarded — the resumed session re-executes it and, being
/// deterministic, re-emits the identical events.
///
/// Limitations, by construction: the returned state has an empty RNG
/// draw log and no oracle cursor, so it resumes exactly only runs
/// whose selector draws no loop randomness (all deterministic
/// selectors) and whose oracle state the driver restores out of band
/// (e.g. from the count of answer events consumed).
pub fn resume_state_from_trace(
    beliefs: MultiBelief,
    panel: ExpertPanel,
    config: HcConfig,
    events: &[TelemetryEvent],
) -> Result<TraceResume> {
    if panel.is_empty() {
        return Err(HcError::EmptyCrowd);
    }
    let _par = crate::parallel::scoped(config.parallelism);
    let mut beliefs = beliefs;
    let all_facts = crate::selection::global_facts(&beliefs);
    let mut started = false;
    let mut finished: Option<StopReason> = None;
    let mut pending: Option<PendingRound> = None;
    let mut consumed = 0usize;
    let mut rounds: Vec<RoundRecord> = Vec::new();
    let mut spent: u64 = 0;
    let mut round_count = 0usize;
    let mut checked: Vec<bool> = vec![false; all_facts.len()];
    let mut checked_count = 0usize;
    let mut dry_rounds = 0usize;
    let mut next_query_id: u64 = 1;
    // Set when the trace ends exactly at a `BeliefUpdated`: the round's
    // close may have been torn mid-write (its `NumericalHealth` or
    // `RunFinished` never reached the log), so the round is left at the
    // `Updated` cursor and the resumed session re-runs `CloseRound`,
    // re-emitting the close byte-identically.
    let mut tail_cursor: Option<StepCursor> = None;

    for (idx, ev) in events.iter().enumerate() {
        if finished.is_some() {
            return Err(invalid("trace contains events after RunFinished".into()));
        }
        match ev {
            TelemetryEvent::RunStarted {
                tasks,
                facts,
                panel: panel_size,
                budget,
                k,
                entropy,
                quality: _,
                belief_repr,
            } => {
                if started {
                    return Err(invalid("trace contains a second RunStarted".into()));
                }
                if *tasks != beliefs.len()
                    || *facts != beliefs.total_facts()
                    || *panel_size != panel.len()
                    || *budget != config.budget
                    || *k != config.k
                {
                    return Err(invalid(
                        "RunStarted does not match the supplied run inputs".into(),
                    ));
                }
                if *belief_repr
                    != BeliefReprSummary::parse(beliefs.repr_summary()).unwrap_or_default()
                {
                    return Err(invalid(
                        "RunStarted belief representation does not match the supplied beliefs"
                            .into(),
                    ));
                }
                if entropy.to_bits() != beliefs.entropy().to_bits() {
                    return Err(invalid(
                        "RunStarted entropy does not match the supplied initial beliefs".into(),
                    ));
                }
                started = true;
                consumed = idx + 1;
            }
            _ if !started => {
                return Err(invalid("trace event precedes RunStarted".into()));
            }
            TelemetryEvent::RoundSelected {
                round,
                k_requested,
                k_effective,
                queries,
                entropy_before,
                predicted_entropy,
            } => {
                if pending.is_some() {
                    return Err(invalid(
                        "RoundSelected before the previous round closed".into(),
                    ));
                }
                if *round != round_count + 1 {
                    return Err(invalid(format!(
                        "RoundSelected for round {round} after {round_count} closed rounds"
                    )));
                }
                if queries.len() != *k_effective || queries.is_empty() {
                    return Err(invalid("RoundSelected query list is inconsistent".into()));
                }
                if entropy_before.to_bits() != beliefs.entropy().to_bits() {
                    return Err(invalid(format!(
                        "trace diverged: entropy before round {round} does not match"
                    )));
                }
                let qs: Vec<GlobalFact> = queries
                    .iter()
                    .map(|&(t, f)| GlobalFact::new(t, f))
                    .collect();
                for q in &qs {
                    if !all_facts.contains(q) {
                        return Err(invalid(format!(
                            "selected query (task {}, fact {}) is outside the fact space",
                            q.task, q.fact.0
                        )));
                    }
                }
                pending = Some(PendingRound {
                    round: *round,
                    k_requested: *k_requested,
                    queries: qs,
                    predicted_entropy: *predicted_entropy,
                    outcomes: Vec::new(),
                });
            }
            TelemetryEvent::CandidateScored { .. }
            | TelemetryEvent::QuerySelected { .. }
            | TelemetryEvent::QueryDispatched { .. }
            | TelemetryEvent::RetryScheduled { .. }
            | TelemetryEvent::FaultInjected { .. }
            | TelemetryEvent::AnswerLatency { .. }
            | TelemetryEvent::ProfileReport { .. } => {}
            TelemetryEvent::AnswerDelivered {
                task,
                fact,
                worker,
                query_id,
                answer,
                ..
            } => {
                let p = pending
                    .as_mut()
                    .ok_or_else(|| invalid("answer event outside an open round".into()))?;
                p.outcomes.push((
                    *task,
                    *fact,
                    *worker,
                    *query_id,
                    AnswerOutcome::Answered(Answer::from_bool(*answer)),
                ));
            }
            TelemetryEvent::AnswerTimedOut {
                task,
                fact,
                worker,
                query_id,
                ..
            } => {
                let p = pending
                    .as_mut()
                    .ok_or_else(|| invalid("answer event outside an open round".into()))?;
                p.outcomes
                    .push((*task, *fact, *worker, *query_id, AnswerOutcome::TimedOut));
            }
            TelemetryEvent::AnswerDropped {
                task,
                fact,
                worker,
                query_id,
                ..
            } => {
                let p = pending
                    .as_mut()
                    .ok_or_else(|| invalid("answer event outside an open round".into()))?;
                p.outcomes
                    .push((*task, *fact, *worker, *query_id, AnswerOutcome::Dropped));
            }
            TelemetryEvent::BeliefUpdated {
                round,
                entropy,
                quality,
                budget_spent,
                answers_requested,
                answers_received,
            } => {
                let p = pending
                    .take()
                    .ok_or_else(|| invalid("BeliefUpdated without RoundSelected".into()))?;
                if p.round != *round {
                    return Err(invalid(format!(
                        "BeliefUpdated for round {round} closes round {}",
                        p.round
                    )));
                }
                // Mirror the loop's bookkeeping exactly: cycle reset,
                // checked marks, round counter, query-id allocation.
                if config.repeat_policy == RepeatPolicy::CycleThenRepeat {
                    if checked_count == all_facts.len() {
                        checked.fill(false);
                        checked_count = 0;
                    }
                    for q in &p.queries {
                        let fidx = all_facts
                            .iter()
                            .position(|gf| gf == q)
                            .expect("membership validated at RoundSelected");
                        if !checked[fidx] {
                            checked[fidx] = true;
                            checked_count += 1;
                        }
                    }
                }
                round_count += 1;
                debug_assert_eq!(round_count, *round);
                let first_query_id = next_query_id;
                next_query_id += p.queries.len() as u64;
                let groups = group_queries(&p.queries, first_query_id);
                // Consume the round's answer events positionally in
                // dispatch order, verifying each against its slot.
                let mut cursor = p.outcomes.iter();
                let mut per_worker = vec![0usize; panel.len()];
                let mut grids: Vec<Vec<Vec<AnswerOutcome>>> = Vec::with_capacity(groups.len());
                for g in &groups {
                    let mut grid = Vec::with_capacity(panel.len());
                    for (w_idx, w) in panel.workers().iter().enumerate() {
                        let mut row = Vec::with_capacity(g.facts.len());
                        for &(f, qid) in &g.facts {
                            let &(t2, f2, w2, q2, outcome) = cursor.next().ok_or_else(|| {
                                invalid(format!("round {round} is missing answer events"))
                            })?;
                            if t2 != g.task || f2 != f.0 || w2 != w.id.0 || q2 != qid {
                                return Err(invalid(format!(
                                    "round {round} answer events are out of dispatch order"
                                )));
                            }
                            if outcome.is_answered() {
                                per_worker[w_idx] += 1;
                            }
                            row.push(outcome);
                        }
                        grid.push(row);
                    }
                    grids.push(grid);
                }
                if cursor.next().is_some() {
                    return Err(invalid(format!(
                        "round {round} has surplus answer events"
                    )));
                }
                let delivered: usize = per_worker.iter().sum();
                if delivered != *answers_received
                    || p.queries.len() * panel.len() != *answers_requested
                {
                    return Err(invalid(format!(
                        "round {round} delivery counts do not match its answer events"
                    )));
                }
                let mut health = UpdateHealth::identity();
                for (g, grid) in groups.iter().zip(&grids) {
                    let task_health = update_group(&mut beliefs, &panel, g, grid)?;
                    health.merge(&task_health);
                }
                if *budget_spent < spent || *budget_spent > config.budget {
                    return Err(invalid(format!(
                        "round {round} budget_spent {budget_spent} is not monotone within budget"
                    )));
                }
                let realized = beliefs.entropy();
                let q = beliefs.quality();
                if realized.to_bits() != entropy.to_bits() || q.to_bits() != quality.to_bits() {
                    return Err(invalid(format!(
                        "trace diverged: recomputed beliefs after round {round} do not \
                         match the recorded entropy/quality"
                    )));
                }
                if idx + 1 == events.len() {
                    // Last event of the trace: `CloseRound` emits
                    // `BeliefUpdated`, then (sometimes) `NumericalHealth`,
                    // then (sometimes) `RunFinished` — a crash between
                    // those writes leaves this exact shape, and the log
                    // alone cannot distinguish it from a completed close.
                    // Leave the round un-closed: the resumed session
                    // re-runs `CloseRound` from identical state and
                    // re-emits the close byte-for-byte either way.
                    let delivery = RoundDelivery {
                        requested: *answers_requested,
                        delivered,
                        per_worker,
                    };
                    tail_cursor = Some(StepCursor::Updated {
                        plan: PlannedRound {
                            round: *round,
                            k_requested: p.k_requested,
                            queries: p.queries,
                            predicted_entropy: p.predicted_entropy,
                            first_query_id,
                        },
                        delivery,
                        health,
                    });
                    consumed = idx;
                } else {
                    spent = *budget_spent;
                    rounds.push(RoundRecord {
                        round: *round,
                        queries: p.queries,
                        budget_spent: spent,
                        quality: q,
                        answers_requested: *answers_requested,
                        answers_received: *answers_received,
                        predicted_entropy: p.predicted_entropy,
                        realized_entropy: realized,
                    });
                    if delivered == 0 {
                        dry_rounds += 1;
                    } else {
                        dry_rounds = 0;
                    }
                    consumed = idx + 1;
                }
            }
            TelemetryEvent::NumericalHealth { .. } => {
                // Emitted right after its round's BeliefUpdated; fold it
                // into the consumed prefix only at that position.
                if pending.is_none() {
                    consumed = idx + 1;
                }
            }
            TelemetryEvent::RunFinished {
                rounds: finished_rounds,
                budget_spent,
                entropy,
                quality: _,
                reason,
            } => {
                if pending.is_some() {
                    return Err(invalid("RunFinished inside an open round".into()));
                }
                if *finished_rounds != round_count || *budget_spent != spent {
                    return Err(invalid(
                        "RunFinished totals do not match the folded rounds".into(),
                    ));
                }
                if entropy.to_bits() != beliefs.entropy().to_bits() {
                    return Err(invalid(
                        "RunFinished entropy does not match the recomputed beliefs".into(),
                    ));
                }
                finished = Some(*reason);
                consumed = idx + 1;
            }
            TelemetryEvent::CorpusStarted { .. }
            | TelemetryEvent::GroupScheduled { .. }
            | TelemetryEvent::GroupAdvanced { .. }
            | TelemetryEvent::GroupFinished { .. }
            | TelemetryEvent::CorpusFinished { .. } => {
                // A single-group trace never carries the corpus
                // envelope; demux the corpus log first (see
                // `hc_telemetry::audit`) and fold one group's segments.
                return Err(invalid(format!(
                    "corpus envelope event `{}` inside a single-run trace",
                    ev.kind()
                )));
            }
        }
    }
    if !started {
        return Err(invalid("trace contains no RunStarted".into()));
    }
    let cursor = match finished {
        Some(reason) => StepCursor::Finished { reason },
        None => tail_cursor.unwrap_or(StepCursor::NextRound),
    };
    let state = SessionState {
        version: SESSION_FORMAT_VERSION,
        remaining: config.budget - spent,
        config,
        panel,
        beliefs,
        rounds,
        spent,
        round: round_count,
        checked,
        checked_count,
        dry_rounds,
        next_query_id,
        started,
        cursor,
        rng_draws: Vec::new(),
        oracle_cursor: None,
    };
    Ok(TraceResume {
        state,
        events_consumed: consumed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hc::UnitCost;
    use hc_telemetry::RecordingSink;

    /// Deterministic selector: first `k` eligible candidates, no RNG.
    struct FirstK;

    impl TaskSelector for FirstK {
        fn name(&self) -> &'static str {
            "first-k"
        }

        fn select(
            &self,
            _beliefs: &MultiBelief,
            _panel: &ExpertPanel,
            k: usize,
            candidates: &[GlobalFact],
            _rng: &mut dyn RngCore,
        ) -> Result<Vec<GlobalFact>> {
            Ok(candidates.iter().take(k).copied().collect())
        }
    }

    /// Selector that consumes loop RNG (one `next_u64` per pick), to
    /// exercise the draw-log replay path.
    struct RandomishK;

    impl TaskSelector for RandomishK {
        fn name(&self) -> &'static str {
            "randomish-k"
        }

        fn select(
            &self,
            _beliefs: &MultiBelief,
            _panel: &ExpertPanel,
            k: usize,
            candidates: &[GlobalFact],
            rng: &mut dyn RngCore,
        ) -> Result<Vec<GlobalFact>> {
            let mut pool = candidates.to_vec();
            let mut picked = Vec::new();
            for _ in 0..k.min(pool.len()) {
                let i = (rng.next_u64() % pool.len() as u64) as usize;
                picked.push(pool.remove(i));
            }
            Ok(picked)
        }
    }

    /// Tiny deterministic RNG (LCG) independent of any rand backend.
    struct TestRng(u64);

    impl RngCore for TestRng {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for b in dest.iter_mut() {
                *b = self.next_u64() as u8;
            }
        }
        fn try_fill_bytes(&mut self, dest: &mut [u8]) -> std::result::Result<(), rand::Error> {
            self.fill_bytes(dest);
            Ok(())
        }
    }

    /// Deterministic stateful flaky oracle: outcome is a pure function
    /// of a call counter, which doubles as its resume cursor.
    struct FlakyCounter {
        calls: u64,
    }

    impl AnswerOracle for FlakyCounter {
        fn answer(&mut self, worker: &Worker, fact: GlobalFact) -> AnswerOutcome {
            self.calls += 1;
            match self.calls % 7 {
                0 => AnswerOutcome::TimedOut,
                3 => AnswerOutcome::Dropped,
                c => AnswerOutcome::Answered(Answer::from_bool(
                    (c + u64::from(fact.fact.0) + u64::from(worker.id.0)) % 2 == 0,
                )),
            }
        }
    }

    impl ResumableOracle for FlakyCounter {
        fn save_cursor(&self) -> String {
            self.calls.to_string()
        }
        fn restore_cursor(&mut self, cursor: &str) -> Result<()> {
            self.calls = cursor
                .parse()
                .map_err(|_| invalid("bad oracle cursor".into()))?;
            Ok(())
        }
    }

    /// Oracle whose crowd never responds, for the dry-round guard.
    struct AlwaysDrop;

    impl AnswerOracle for AlwaysDrop {
        fn answer(&mut self, _worker: &Worker, _fact: GlobalFact) -> AnswerOutcome {
            AnswerOutcome::Dropped
        }
    }

    fn fixture() -> (MultiBelief, ExpertPanel, HcConfig) {
        let beliefs = MultiBelief::new(vec![
            Belief::from_probs(vec![0.4, 0.3, 0.2, 0.1]).unwrap(),
            Belief::from_probs(vec![0.15, 0.35, 0.3, 0.2]).unwrap(),
        ]);
        let panel = ExpertPanel::from_accuracies(&[0.9, 0.8]).unwrap();
        let config = HcConfig::new(2, 16);
        (beliefs, panel, config)
    }

    fn posterior_bits(b: &MultiBelief) -> Vec<Vec<u64>> {
        b.tasks()
            .iter()
            .map(|t| t.probs().iter().map(|p| p.to_bits()).collect())
            .collect()
    }

    /// Runs a session start-to-finish, returning (event JSON lines,
    /// posterior bits, final-state payload, number of steps taken).
    fn run_full(selector: &dyn TaskSelector, seed: u64) -> (Vec<String>, Vec<Vec<u64>>, String, usize) {
        let (beliefs, panel, config) = fixture();
        let mut session = HcSession::start(beliefs, panel, config, selector, &UnitCost).unwrap();
        let mut oracle = FlakyCounter { calls: 0 };
        let mut rng = TestRng(seed);
        let mut sink = RecordingSink::new();
        let mut obs = |_: &MultiBelief, _: &RoundRecord| {};
        let mut steps = 0usize;
        loop {
            let status = {
                let mut env = SessionEnv {
                    oracle: &mut oracle,
                    rng: &mut rng,
                    sink: &mut sink,
                    observer: &mut obs,
                };
                session.step(&mut env).unwrap()
            };
            steps += 1;
            if matches!(status, SessionStatus::Finished(_)) {
                break;
            }
        }
        let lines = sink.events().iter().map(|e| e.to_json_line()).collect();
        let bits = posterior_bits(&session.state().beliefs);
        let payload = session.state().to_payload();
        (lines, bits, payload, steps)
    }

    /// Crash at every step boundary, resume from the checkpoint frame,
    /// and require byte-identical stitched events, posteriors, and
    /// final-state payload.
    fn assert_crash_resume_everywhere(selector: &dyn TaskSelector, seed: u64) {
        let (base_lines, base_bits, base_payload, total_steps) = run_full(selector, seed);
        assert!(total_steps > 6, "fixture should run several rounds");
        for crash_after in 0..total_steps {
            let (beliefs, panel, config) = fixture();
            let mut session =
                HcSession::start(beliefs, panel, config, selector, &UnitCost).unwrap();
            let mut oracle = FlakyCounter { calls: 0 };
            let mut rng = TestRng(seed);
            let mut sink = RecordingSink::new();
            let mut obs = |_: &MultiBelief, _: &RoundRecord| {};
            for _ in 0..crash_after {
                let mut env = SessionEnv {
                    oracle: &mut oracle,
                    rng: &mut rng,
                    sink: &mut sink,
                    observer: &mut obs,
                };
                session.step(&mut env).unwrap();
            }
            let mut stitched: Vec<String> =
                sink.events().iter().map(|e| e.to_json_line()).collect();
            session.set_oracle_cursor(Some(oracle.save_cursor()));
            let frame = session.checkpoint_frame(crash_after as u64);
            // The payload must survive its own codec bit-exactly.
            assert_eq!(
                SessionState::from_payload(&frame.payload).unwrap().to_payload(),
                frame.payload,
                "payload round trip at boundary {crash_after}"
            );
            // Round-trip the whole frame through its JSONL encoding,
            // exactly as a crash-recovery read would.
            let frame = CheckpointFrame::from_json_line(&frame.to_json_line()).unwrap();
            let mut resumed = HcSession::from_frame(&frame, selector, &UnitCost).unwrap();
            let mut oracle2 = FlakyCounter { calls: 0 };
            oracle2
                .restore_cursor(resumed.state().oracle_cursor.clone().unwrap().as_str())
                .unwrap();
            let mut rng2 = TestRng(seed);
            let mut sink2 = RecordingSink::new();
            let mut obs2 = |_: &MultiBelief, _: &RoundRecord| {};
            let mut env2 = SessionEnv {
                oracle: &mut oracle2,
                rng: &mut rng2,
                sink: &mut sink2,
                observer: &mut obs2,
            };
            resumed.run_to_completion(&mut env2).unwrap();
            stitched.extend(sink2.events().iter().map(|e| e.to_json_line()));
            assert_eq!(stitched, base_lines, "event stream at boundary {crash_after}");
            assert_eq!(
                posterior_bits(&resumed.state().beliefs),
                base_bits,
                "posteriors at boundary {crash_after}"
            );
            resumed.set_oracle_cursor(None);
            assert_eq!(
                resumed.state().to_payload(),
                base_payload,
                "final state at boundary {crash_after}"
            );
        }
    }

    #[test]
    fn crash_at_every_boundary_deterministic_selector() {
        assert_crash_resume_everywhere(&FirstK, 7);
    }

    #[test]
    fn crash_at_every_boundary_rng_selector_via_draw_replay() {
        assert_crash_resume_everywhere(&RandomishK, 42);
    }

    #[test]
    fn rng_draw_log_is_run_length_encoded() {
        let mut log = Vec::new();
        let mut inner = TestRng(1);
        {
            let mut rng = CursorRng {
                inner: &mut inner,
                log: &mut log,
            };
            rng.next_u64();
            rng.next_u64();
            rng.next_u32();
            let mut buf = [0u8; 5];
            rng.fill_bytes(&mut buf);
            rng.next_u64();
        }
        assert_eq!(
            log,
            vec![
                RngDraw::U64 { n: 2 },
                RngDraw::U32 { n: 1 },
                RngDraw::Bytes { len: 5 },
                RngDraw::U64 { n: 1 },
            ]
        );
        // Replaying the log against a fresh RNG reaches the same state.
        let mut fresh = TestRng(1);
        replay_draws(&log, &mut fresh);
        assert_eq!(fresh.0, inner.0);
    }

    #[test]
    fn rejects_garbage_payload() {
        let err = SessionState::from_payload("{not json").unwrap_err();
        assert!(matches!(err, HcError::InvalidCheckpoint { .. }), "{err:?}");
    }

    #[test]
    fn rejects_wrong_format_version() {
        let (_, _, payload, _) = run_full(&FirstK, 7);
        let tampered = payload.replace("\"version\":1", "\"version\":9");
        assert_ne!(tampered, payload, "tamper must hit the version field");
        let err = SessionState::from_payload(&tampered).unwrap_err();
        match err {
            HcError::InvalidCheckpoint { reason } => {
                assert!(reason.contains("version"), "{reason}");
            }
            other => panic!("expected InvalidCheckpoint, got {other:?}"),
        }
    }

    #[test]
    fn rejects_foreign_frame_kind() {
        let (_, _, payload, _) = run_full(&FirstK, 7);
        let frame = CheckpointFrame::new("other-producer", 0, payload);
        let err = HcSession::from_frame(&frame, &FirstK, &UnitCost).unwrap_err();
        assert!(matches!(err, HcError::InvalidCheckpoint { .. }), "{err:?}");
    }

    #[test]
    fn rejects_internally_inconsistent_state() {
        let (_, _, payload, _) = run_full(&FirstK, 7);
        let mut state = SessionState::from_payload(&payload).unwrap();
        state.checked_count = state.checked_count.wrapping_add(1);
        let err = HcSession::resume(state, &FirstK, &UnitCost).unwrap_err();
        assert!(matches!(err, HcError::InvalidCheckpoint { .. }), "{err:?}");

        let mut state = SessionState::from_payload(&payload).unwrap();
        state.remaining += 1;
        let err = HcSession::resume(state, &FirstK, &UnitCost).unwrap_err();
        assert!(matches!(err, HcError::InvalidCheckpoint { .. }), "{err:?}");
    }

    #[test]
    fn trace_fold_of_full_run_matches_live_state() {
        let (base_lines, _bits, base_payload, _) = run_full(&FirstK, 7);
        let events: Vec<TelemetryEvent> = base_lines
            .iter()
            .map(|l| TelemetryEvent::from_json_line(l).unwrap())
            .collect();
        let (beliefs, panel, config) = fixture();
        let folded = resume_state_from_trace(beliefs, panel, config, &events).unwrap();
        assert_eq!(folded.events_consumed, events.len());
        assert_eq!(folded.state.to_payload(), base_payload);
    }

    #[test]
    fn trace_fold_of_prefix_resumes_byte_identically() {
        let (base_lines, base_bits, _payload, _) = run_full(&FirstK, 7);
        let events: Vec<TelemetryEvent> = base_lines
            .iter()
            .map(|l| TelemetryEvent::from_json_line(l).unwrap())
            .collect();
        // Cut mid-run at several positions, including mid-round ones
        // whose partial tail the fold must discard and re-execute.
        for cut in [1, events.len() / 3, events.len() / 2, events.len() - 2] {
            let prefix = &events[..cut];
            let (beliefs, panel, config) = fixture();
            let folded =
                resume_state_from_trace(beliefs, panel, config, prefix).unwrap();
            assert!(folded.events_consumed <= cut);
            // The oracle's position is the number of dispatch attempts
            // inside the consumed prefix (one answer event each).
            let calls = prefix[..folded.events_consumed]
                .iter()
                .filter(|e| {
                    matches!(
                        e,
                        TelemetryEvent::AnswerDelivered { .. }
                            | TelemetryEvent::AnswerTimedOut { .. }
                            | TelemetryEvent::AnswerDropped { .. }
                    )
                })
                .count() as u64;
            let consumed = folded.events_consumed;
            let mut resumed = HcSession::resume(folded.state, &FirstK, &UnitCost).unwrap();
            let mut oracle = FlakyCounter { calls };
            let mut rng = TestRng(7);
            let mut sink = RecordingSink::new();
            let mut obs = |_: &MultiBelief, _: &RoundRecord| {};
            let mut env = SessionEnv {
                oracle: &mut oracle,
                rng: &mut rng,
                sink: &mut sink,
                observer: &mut obs,
            };
            resumed.run_to_completion(&mut env).unwrap();
            let mut stitched: Vec<String> = base_lines[..consumed].to_vec();
            stitched.extend(sink.events().iter().map(|e| e.to_json_line()));
            assert_eq!(stitched, base_lines, "cut at {cut}");
            assert_eq!(posterior_bits(&resumed.state().beliefs), base_bits);
        }
    }

    #[test]
    fn trace_fold_rejects_divergent_stream() {
        let (base_lines, ..) = run_full(&FirstK, 7);
        let events: Vec<TelemetryEvent> = base_lines
            .iter()
            .map(|l| TelemetryEvent::from_json_line(l).unwrap())
            .collect();
        // Same trace folded over the *wrong* initial beliefs diverges.
        let (_, panel, config) = fixture();
        let wrong = MultiBelief::new(vec![
            Belief::from_probs(vec![0.25, 0.25, 0.25, 0.25]).unwrap(),
            Belief::from_probs(vec![0.25, 0.25, 0.25, 0.25]).unwrap(),
        ]);
        let err = resume_state_from_trace(wrong, panel, config, &events).unwrap_err();
        assert!(matches!(err, HcError::InvalidCheckpoint { .. }), "{err:?}");
    }

    #[test]
    fn dry_round_finish_survives_trace_resume() {
        // A fully dropped crowd stops via the dry-round guard. Crash
        // after the final BeliefUpdated but before RunFinished: the
        // resumed session must still emit the identical RunFinished.
        let (beliefs, panel, config) = fixture();
        let mut session =
            HcSession::start(beliefs, panel, config, &FirstK, &UnitCost).unwrap();
        let mut oracle = AlwaysDrop;
        let mut rng = TestRng(5);
        let mut sink = RecordingSink::new();
        let mut obs = |_: &MultiBelief, _: &RoundRecord| {};
        let reason = {
            let mut env = SessionEnv {
                oracle: &mut oracle,
                rng: &mut rng,
                sink: &mut sink,
                observer: &mut obs,
            };
            session.run_to_completion(&mut env).unwrap()
        };
        assert_eq!(reason, StopReason::DryRounds);
        let base_lines: Vec<String> = sink.events().iter().map(|e| e.to_json_line()).collect();
        let events: Vec<TelemetryEvent> = base_lines
            .iter()
            .map(|l| TelemetryEvent::from_json_line(l).unwrap())
            .collect();
        let truncated = &events[..events.len() - 1];
        let (beliefs, panel, config) = fixture();
        let folded = resume_state_from_trace(beliefs, panel, config, truncated).unwrap();
        // A trailing BeliefUpdated stays unconsumed (possibly-torn close,
        // re-emitted on resume); a trailing NumericalHealth closes its
        // round completely. Either way the stitched log below must match.
        assert!(folded.events_consumed >= truncated.len() - 1);
        let mut resumed = HcSession::resume(folded.state, &FirstK, &UnitCost).unwrap();
        let mut oracle2 = AlwaysDrop;
        let mut rng2 = TestRng(5);
        let mut sink2 = RecordingSink::new();
        let mut obs2 = |_: &MultiBelief, _: &RoundRecord| {};
        let mut env2 = SessionEnv {
            oracle: &mut oracle2,
            rng: &mut rng2,
            sink: &mut sink2,
            observer: &mut obs2,
        };
        let reason2 = resumed.run_to_completion(&mut env2).unwrap();
        assert_eq!(reason2, StopReason::DryRounds);
        let tail: Vec<String> = sink2.events().iter().map(|e| e.to_json_line()).collect();
        let mut stitched: Vec<String> = base_lines[..folded.events_consumed].to_vec();
        stitched.extend(tail);
        assert_eq!(stitched, base_lines);
    }

    #[test]
    fn stepping_a_finished_session_is_a_silent_no_op() {
        let (beliefs, panel, config) = fixture();
        let mut session =
            HcSession::start(beliefs, panel, config, &FirstK, &UnitCost).unwrap();
        let mut oracle = FlakyCounter { calls: 0 };
        let mut rng = TestRng(7);
        let mut sink = RecordingSink::new();
        let mut obs = |_: &MultiBelief, _: &RoundRecord| {};
        let mut env = SessionEnv {
            oracle: &mut oracle,
            rng: &mut rng,
            sink: &mut sink,
            observer: &mut obs,
        };
        let reason = session.run_to_completion(&mut env).unwrap();
        let events_before = sink.events().len();
        let mut env2 = SessionEnv {
            oracle: &mut oracle,
            rng: &mut rng,
            sink: &mut sink,
            observer: &mut obs,
        };
        let status = session.step(&mut env2).unwrap();
        assert_eq!(status, SessionStatus::Finished(reason));
        assert_eq!(sink.events().len(), events_before);
    }
}
