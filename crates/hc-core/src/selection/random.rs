//! The random selector — the baseline of §IV-C(3)'s Figure 5.

use super::{GlobalFact, TaskSelector};
use crate::belief::MultiBelief;
use crate::error::Result;
use crate::worker::ExpertPanel;
use rand::RngCore;

/// Selects `k` distinct facts uniformly at random from the global query
/// space.
#[derive(Debug, Clone, Copy, Default)]
pub struct RandomSelector;

impl RandomSelector {
    /// A new random selector.
    pub fn new() -> Self {
        RandomSelector
    }
}

impl TaskSelector for RandomSelector {
    fn name(&self) -> &'static str {
        "Random"
    }

    fn select(
        &self,
        _beliefs: &MultiBelief,
        _panel: &ExpertPanel,
        k: usize,
        candidates: &[GlobalFact],
        rng: &mut dyn RngCore,
    ) -> Result<Vec<GlobalFact>> {
        let mut candidates = candidates.to_vec();
        let n = candidates.len();
        let k = k.min(n);
        // Partial Fisher–Yates: the first k slots become the sample.
        for i in 0..k {
            let j = i + (rng.next_u64() as usize) % (n - i);
            candidates.swap(i, j);
        }
        candidates.truncate(k);
        Ok(candidates)
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::*;
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sample_is_distinct_and_sized() {
        let beliefs = two_task_beliefs();
        let p = panel();
        let mut rng = StdRng::seed_from_u64(3);
        for k in 0..=6 {
            let sel = RandomSelector::new().select(&beliefs, &p, k, &crate::selection::global_facts(&beliefs), &mut rng).unwrap();
            assert_eq!(sel.len(), k.min(4));
            let mut d = sel.clone();
            d.sort();
            d.dedup();
            assert_eq!(d.len(), sel.len(), "duplicates in {sel:?}");
        }
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let beliefs = two_task_beliefs();
        let p = panel();
        let a = RandomSelector::new()
            .select(&beliefs, &p, 2, &crate::selection::global_facts(&beliefs), &mut StdRng::seed_from_u64(42))
            .unwrap();
        let b = RandomSelector::new()
            .select(&beliefs, &p, 2, &crate::selection::global_facts(&beliefs), &mut StdRng::seed_from_u64(42))
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn covers_whole_space_eventually() {
        let beliefs = two_task_beliefs();
        let p = panel();
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            for gf in RandomSelector::new().select(&beliefs, &p, 1, &crate::selection::global_facts(&beliefs), &mut rng).unwrap() {
                seen.insert(gf);
            }
        }
        assert_eq!(seen.len(), 4, "every fact should be sampled eventually");
    }
}
