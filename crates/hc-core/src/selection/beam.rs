//! Beam-search checking-task selection — a tunable middle ground
//! between the greedy approximation (beam width 1) and exhaustive OPT.
//!
//! At each of the `k` steps the beam keeps the `width` best partial
//! query sets (scored by total answer-family entropy `Σ_t H(AS^{T_t})`,
//! which orders sets identically to the conditional-entropy objective —
//! see the `exact` module notes) and extends each with every remaining
//! candidate. Width 1 reproduces greedy exactly; growing the width
//! trades selection time for closeness to OPT — the knob Table III's
//! efficiency discussion implies but the paper leaves unexplored.

use super::{GlobalFact, TaskSelector};
use crate::belief::MultiBelief;
use crate::entropy::answer_family_entropy;
use crate::error::Result;
use crate::fact::FactId;
use crate::worker::ExpertPanel;
use rand::RngCore;
use std::collections::HashMap;

/// Beam-search selector with configurable width.
#[derive(Debug, Clone, Copy)]
pub struct BeamSelector {
    /// Number of partial query sets kept per step (≥ 1).
    pub width: usize,
}

impl BeamSelector {
    /// A beam of the given width (clamped to ≥ 1).
    pub fn new(width: usize) -> Self {
        BeamSelector {
            width: width.max(1),
        }
    }
}

/// One partial query set in the beam.
#[derive(Debug, Clone)]
struct BeamState {
    /// Selected facts, grouped per task for scoring.
    selected: Vec<GlobalFact>,
    /// `Σ_t H(AS^{T_t})` — higher is better.
    score: f64,
}

impl TaskSelector for BeamSelector {
    fn name(&self) -> &'static str {
        "Beam"
    }

    fn select(
        &self,
        beliefs: &MultiBelief,
        panel: &ExpertPanel,
        k: usize,
        candidates: &[GlobalFact],
        _rng: &mut dyn RngCore,
    ) -> Result<Vec<GlobalFact>> {
        let k = k.min(candidates.len());
        if k == 0 {
            return Ok(Vec::new());
        }
        // Memoised per-task H(AS) by fact bitmask — shared across beam
        // states, which overlap heavily.
        let mut memo: HashMap<(usize, u64), f64> = HashMap::new();
        let score_task =
            |task: usize, facts: &[FactId], memo: &mut HashMap<(usize, u64), f64>| -> Result<f64> {
                let mask = facts.iter().fold(0u64, |m, f| m | (1u64 << f.0));
                if let Some(&h) = memo.get(&(task, mask)) {
                    return Ok(h);
                }
                let h = answer_family_entropy(&beliefs.tasks()[task], facts, panel)?;
                memo.insert((task, mask), h);
                Ok(h)
            };

        let mut beam = vec![BeamState {
            selected: Vec::new(),
            score: 0.0,
        }];
        for _ in 0..k {
            let mut expansions: Vec<BeamState> = Vec::new();
            for state in &beam {
                for &gf in candidates {
                    if state.selected.contains(&gf) {
                        continue;
                    }
                    // Re-score only the task the new fact touches.
                    let mut task_facts: Vec<FactId> = state
                        .selected
                        .iter()
                        .filter(|s| s.task == gf.task)
                        .map(|s| s.fact)
                        .collect();
                    let old_task_score = if task_facts.is_empty() {
                        0.0
                    } else {
                        score_task(gf.task, &task_facts, &mut memo)?
                    };
                    task_facts.push(gf.fact);
                    let new_task_score = score_task(gf.task, &task_facts, &mut memo)?;
                    let mut selected = state.selected.clone();
                    selected.push(gf);
                    expansions.push(BeamState {
                        selected,
                        score: state.score - old_task_score + new_task_score,
                    });
                }
            }
            if expansions.is_empty() {
                break;
            }
            // Keep the top `width` states; dedup identical fact sets
            // reached in different orders.
            expansions.sort_by(|a, b| {
                b.score
                    .partial_cmp(&a.score)
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            let mut seen: Vec<u128> = Vec::new();
            let mut next: Vec<BeamState> = Vec::new();
            for mut state in expansions {
                state.selected.sort_unstable();
                let key = set_key(&state.selected);
                if seen.contains(&key) {
                    continue;
                }
                seen.push(key);
                next.push(state);
                if next.len() == self.width {
                    break;
                }
            }
            beam = next;
        }
        Ok(beam
            .into_iter()
            .next()
            .map(|s| s.selected)
            .unwrap_or_default())
    }
}

/// Order-independent fingerprint of a sorted selection (sufficient for
/// dedup within one beam step: ≤ 6 facts × 21 bits).
fn set_key(sorted: &[GlobalFact]) -> u128 {
    let mut key = 0u128;
    for gf in sorted {
        key = (key << 21) | (((gf.task as u128) << 6) | gf.fact.0 as u128);
    }
    key
}

#[cfg(test)]
mod tests {
    use super::super::test_support::*;
    use super::super::{selection_objective, ExactSelector, GreedySelector, TaskSelector};
    use super::*;
    use crate::belief::Belief;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(31)
    }

    fn instance() -> (MultiBelief, ExpertPanel) {
        let beliefs = MultiBelief::new(vec![
            Belief::from_probs(vec![0.09, 0.11, 0.10, 0.20, 0.08, 0.09, 0.15, 0.18]).unwrap(),
            Belief::from_marginals(&[0.6, 0.75, 0.52]).unwrap(),
        ]);
        let panel = ExpertPanel::from_accuracies(&[0.9, 0.8]).unwrap();
        (beliefs, panel)
    }

    #[test]
    fn width_one_matches_greedy_objective() {
        let (beliefs, panel) = instance();
        let candidates = crate::selection::global_facts(&beliefs);
        for k in 1..=4 {
            let beam = BeamSelector::new(1)
                .select(&beliefs, &panel, k, &candidates, &mut rng())
                .unwrap();
            let greedy = GreedySelector::new()
                .select(&beliefs, &panel, k, &candidates, &mut rng())
                .unwrap();
            let ob = selection_objective(&beliefs, &beam, &panel).unwrap();
            let og = selection_objective(&beliefs, &greedy, &panel).unwrap();
            assert!((ob - og).abs() < 1e-9, "k={k}: beam {ob} vs greedy {og}");
        }
    }

    #[test]
    fn wider_beams_never_do_worse() {
        let (beliefs, panel) = instance();
        let candidates = crate::selection::global_facts(&beliefs);
        for k in 2..=3 {
            let mut prev = f64::MAX;
            for width in [1usize, 2, 4, 8] {
                let sel = BeamSelector::new(width)
                    .select(&beliefs, &panel, k, &candidates, &mut rng())
                    .unwrap();
                let obj = selection_objective(&beliefs, &sel, &panel).unwrap();
                assert!(
                    obj <= prev + 1e-9,
                    "k={k} width={width}: {obj} worse than narrower beam {prev}"
                );
                prev = obj;
            }
        }
    }

    #[test]
    fn huge_beam_matches_opt_on_small_instances() {
        let (beliefs, panel) = instance();
        let candidates = crate::selection::global_facts(&beliefs);
        for k in 1..=3 {
            let beam = BeamSelector::new(64)
                .select(&beliefs, &panel, k, &candidates, &mut rng())
                .unwrap();
            let opt = ExactSelector::new()
                .select(&beliefs, &panel, k, &candidates, &mut rng())
                .unwrap();
            let ob = selection_objective(&beliefs, &beam, &panel).unwrap();
            let oo = selection_objective(&beliefs, &opt, &panel).unwrap();
            assert!((ob - oo).abs() < 1e-9, "k={k}: beam {ob} vs OPT {oo}");
        }
    }

    #[test]
    fn respects_candidates_and_k() {
        let beliefs = two_task_beliefs();
        let p = panel();
        let candidates = vec![crate::selection::GlobalFact::new(1, 0)];
        let sel = BeamSelector::new(3)
            .select(&beliefs, &p, 5, &candidates, &mut rng())
            .unwrap();
        assert_eq!(sel, candidates, "only candidate must be picked, once");
    }

    #[test]
    fn zero_width_is_clamped() {
        assert_eq!(BeamSelector::new(0).width, 1);
    }
}
