//! Checking-task selection (§III-B/C): choosing the size-`k` query set
//! that maximises the expected quality improvement, equivalently
//! minimises `H(O | AS_CE^T)` (Theorem 2).
//!
//! Five selectors are provided behind one trait:
//!
//! * [`GreedySelector`] — Algorithm 2, the `(1 − 1/e)`-approximation.
//! * [`ExactSelector`] — brute force over all size-`k` subsets (the OPT
//!   method of §IV-C(3)); NP-hard, supports a wall-clock budget.
//! * [`RandomSelector`] — the random baseline of §IV-C(3).
//! * [`MaxEntropySelector`] — top-`k` facts by marginal entropy, the
//!   trivial solution of the single-task-per-round special case
//!   discussed in §V.
//! * [`BeamSelector`] — beam search between greedy (width 1) and OPT.
//!
//! Selection operates over the *global* query space of a multi-task
//! dataset: tasks are independent, so the objective decomposes as
//! `Σ_t H(O_t | AS^{T∩F_t})` and each candidate's gain involves only its
//! own task's belief.

mod beam;
mod exact;
mod greedy;
mod max_entropy;
mod random;

pub use beam::BeamSelector;
pub use exact::ExactSelector;
pub use greedy::GreedySelector;
pub use max_entropy::MaxEntropySelector;
pub use random::RandomSelector;

use crate::belief::MultiBelief;
use crate::error::Result;
use crate::fact::FactId;
use crate::worker::ExpertPanel;
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// A fact addressed in the global query space of a dataset: task index
/// plus fact id within that task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct GlobalFact {
    /// Index of the task in the [`MultiBelief`].
    pub task: usize,
    /// Fact within the task.
    pub fact: FactId,
}

impl GlobalFact {
    /// Convenience constructor.
    pub fn new(task: usize, fact: u32) -> Self {
        GlobalFact {
            task,
            fact: FactId(fact),
        }
    }
}

/// Enumerates the whole global query space of a dataset.
pub fn global_facts(beliefs: &MultiBelief) -> Vec<GlobalFact> {
    let mut out = Vec::with_capacity(beliefs.total_facts());
    for (t, b) in beliefs.tasks().iter().enumerate() {
        for f in 0..b.num_facts() as u32 {
            out.push(GlobalFact::new(t, f));
        }
    }
    out
}

/// One marginal-gain evaluation recorded during an explained selection.
///
/// `step` is the number of queries already chosen when the gain was
/// computed; for the cached greedy schedule a candidate scored at an
/// early step may win a later pick with that same gain (task
/// independence keeps cached gains exact across steps that touch other
/// tasks).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoredCandidate {
    /// Queries already selected when this gain was computed.
    pub step: usize,
    /// The candidate that was scored.
    pub fact: GlobalFact,
    /// Its marginal conditional-entropy gain at that step.
    pub gain: f64,
}

/// One pick of an explained selection: the winning candidate at `step`
/// and the gain it won with.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SelectedQuery {
    /// Position of this pick in the selection (0-based).
    pub step: usize,
    /// The selected query.
    pub fact: GlobalFact,
    /// The winning marginal gain. `NaN` for selectors without per-step
    /// gain accounting (see [`TaskSelector::select_with_explain`]).
    pub gain: f64,
}

/// The record of one explained selection round: every freshly computed
/// marginal gain plus the per-step winners.
///
/// Filled by [`TaskSelector::select_with_explain`]; the HC loop turns it
/// into `CandidateScored` / `QuerySelected` telemetry events. Reusable
/// across rounds — implementations clear it before writing.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExplainTrace {
    /// Every marginal gain computed, in evaluation order.
    pub scored: Vec<ScoredCandidate>,
    /// The winning candidate of each greedy step, in pick order.
    pub selected: Vec<SelectedQuery>,
}

impl ExplainTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empties both record lists, keeping capacity.
    pub fn clear(&mut self) {
        self.scored.clear();
        self.selected.clear();
    }
}

/// Strategy interface for per-round checking-task selection.
///
/// Implementations return at most `k` facts from `candidates`; fewer
/// (possibly zero) when no candidate offers positive expected gain —
/// Algorithm 2 terminates early in that case and the HC loop stops
/// spending budget. The candidate list lets the loop apply an
/// eligibility policy (e.g. cycle through unchecked facts first; see
/// [`crate::hc::RepeatPolicy`]); pass [`global_facts`] for the paper's
/// unrestricted query space.
pub trait TaskSelector: Send + Sync {
    /// Short human-readable name for experiment tables.
    fn name(&self) -> &'static str;

    /// Selects up to `k` checking queries among `candidates` for the
    /// current belief state.
    fn select(
        &self,
        beliefs: &MultiBelief,
        panel: &ExpertPanel,
        k: usize,
        candidates: &[GlobalFact],
        rng: &mut dyn RngCore,
    ) -> Result<Vec<GlobalFact>>;

    /// Like [`TaskSelector::select`], but also records how the choice
    /// was made into `trace` (cleared first).
    ///
    /// The default implementation delegates to `select` and reports each
    /// pick with a `NaN` gain — selectors that do not account per-step
    /// gains stay correct without extra work. [`GreedySelector`]
    /// overrides this to record every marginal-gain evaluation; the
    /// selected set is identical to what `select` returns for the same
    /// inputs.
    fn select_with_explain(
        &self,
        beliefs: &MultiBelief,
        panel: &ExpertPanel,
        k: usize,
        candidates: &[GlobalFact],
        rng: &mut dyn RngCore,
        trace: &mut ExplainTrace,
    ) -> Result<Vec<GlobalFact>> {
        trace.clear();
        let chosen = self.select(beliefs, panel, k, candidates, rng)?;
        for (step, &fact) in chosen.iter().enumerate() {
            trace.selected.push(SelectedQuery {
                step,
                fact,
                gain: f64::NAN,
            });
        }
        Ok(chosen)
    }
}

/// Total selection objective `Σ_t H(O_t | AS^{T_t})` for a concrete
/// global query set — the quantity all selectors minimise. Used by tests
/// and the exact selector to compare candidate sets.
pub fn selection_objective(
    beliefs: &MultiBelief,
    selection: &[GlobalFact],
    panel: &ExpertPanel,
) -> Result<f64> {
    let mut per_task: Vec<Vec<FactId>> = vec![Vec::new(); beliefs.len()];
    for gf in selection {
        per_task[gf.task].push(gf.fact);
    }
    let mut total = 0.0;
    for (belief, facts) in beliefs.tasks().iter().zip(&per_task) {
        total += crate::entropy::conditional_entropy(belief, facts, panel)?;
    }
    Ok(total)
}

/// Ranks every candidate by its first-step expected quality gain
/// (Equation (35) with `T = ∅`), descending — the diagnostic view behind
/// greedy's first pick, useful for dashboards and debugging selection
/// behaviour.
pub fn rank_candidates(
    beliefs: &MultiBelief,
    panel: &ExpertPanel,
    candidates: &[GlobalFact],
) -> Result<Vec<(GlobalFact, f64)>> {
    let panel_h = panel.per_query_answer_entropy();
    let mut ranked = Vec::with_capacity(candidates.len());
    for &gf in candidates {
        let belief = &beliefs.tasks()[gf.task];
        let q = belief.project(&[gf.fact]);
        let h_as = crate::entropy::answer_family_entropy_projected(&q, panel)?;
        ranked.push((gf, h_as - panel_h));
    }
    ranked.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.0.cmp(&b.0))
    });
    Ok(ranked)
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;
    use crate::belief::Belief;

    /// A small two-task dataset with distinguishable uncertainty.
    pub fn two_task_beliefs() -> MultiBelief {
        let near_certain = Belief::from_marginals(&[0.95, 0.97]).unwrap();
        let uncertain = Belief::from_marginals(&[0.55, 0.6]).unwrap();
        MultiBelief::new(vec![near_certain, uncertain])
    }

    pub fn panel() -> ExpertPanel {
        ExpertPanel::from_accuracies(&[0.9]).unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::*;
    use super::*;

    #[test]
    fn global_facts_enumerates_all_tasks() {
        let beliefs = two_task_beliefs();
        let facts = global_facts(&beliefs);
        assert_eq!(facts.len(), 4);
        assert_eq!(facts[0], GlobalFact::new(0, 0));
        assert_eq!(facts[3], GlobalFact::new(1, 1));
    }

    #[test]
    fn objective_of_empty_selection_is_total_entropy() {
        let beliefs = two_task_beliefs();
        let obj = selection_objective(&beliefs, &[], &panel()).unwrap();
        assert!((obj - beliefs.entropy()).abs() < 1e-12);
    }

    #[test]
    fn rank_candidates_orders_by_gain_and_matches_greedy() {
        let beliefs = two_task_beliefs();
        let p = panel();
        let candidates = global_facts(&beliefs);
        let ranked = rank_candidates(&beliefs, &p, &candidates).unwrap();
        assert_eq!(ranked.len(), 4);
        assert!(ranked.windows(2).all(|w| w[0].1 >= w[1].1), "descending");
        // Gains are non-negative (information never hurts in expectation).
        assert!(ranked.iter().all(|(_, g)| *g >= -1e-12));
        // The top-ranked fact is greedy's first pick.
        use rand::SeedableRng as _;
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let first = GreedySelector::new()
            .select(&beliefs, &p, 1, &candidates, &mut rng)
            .unwrap();
        assert_eq!(first[0], ranked[0].0);
    }

    #[test]
    fn default_explain_reports_picks_with_nan_gains() {
        let beliefs = two_task_beliefs();
        let p = panel();
        let candidates = global_facts(&beliefs);
        use rand::SeedableRng as _;
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut trace = ExplainTrace::new();
        // RandomSelector relies on the trait's default implementation.
        let chosen = RandomSelector::new()
            .select_with_explain(&beliefs, &p, 2, &candidates, &mut rng, &mut trace)
            .unwrap();
        assert_eq!(trace.selected.len(), chosen.len());
        assert!(trace.scored.is_empty());
        for (step, sel) in trace.selected.iter().enumerate() {
            assert_eq!(sel.step, step);
            assert_eq!(sel.fact, chosen[step]);
            assert!(sel.gain.is_nan());
        }
    }

    #[test]
    fn objective_decreases_with_more_queries() {
        let beliefs = two_task_beliefs();
        let p = panel();
        let one = selection_objective(&beliefs, &[GlobalFact::new(1, 0)], &p).unwrap();
        let two = selection_objective(
            &beliefs,
            &[GlobalFact::new(1, 0), GlobalFact::new(0, 0)],
            &p,
        )
        .unwrap();
        assert!(two < one);
        assert!(one < beliefs.entropy());
    }
}
