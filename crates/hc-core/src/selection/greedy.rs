//! The greedy approximate selector — Algorithm 2 of the paper.
//!
//! Queries are added one at a time, each step taking the fact with the
//! largest *quality gain* (Equation (35)):
//!
//! `gain^T(f) = H(O | AS^T) − H(O | AS^{T∪{f}})
//!            = [H(AS^{T∪f}) − H(AS^T)] − Σ_cr h(Pr_cr)`
//!
//! (chain rule; only answer-family entropies are evaluated). Selection
//! stops at `k` queries or when no candidate's gain clears the
//! entropy-scaled noise floor ([`stop_floor`]). Because
//! the gain function is submodular, the greedy set is a `(1 − 1/e)`-
//! approximation of the optimum.
//!
//! Two exact-equivalent evaluation schedules are provided:
//!
//! * **task-dirty caching** (default): tasks are independent, so adding a
//!   query to task `t` leaves every other task's gains unchanged; only
//!   task `t`'s candidates are re-scored next step.
//! * **lazy (CELF)**: additionally exploits submodularity *within* a task
//!   — stale gains are upper bounds, so candidates are re-scored only
//!   while their stale gain tops the queue. This is the classic CELF
//!   accelerated greedy; it matters when one task has many facts (the
//!   Table III workload). The `ablations` bench quantifies the win.

use super::{ExplainTrace, GlobalFact, ScoredCandidate, SelectedQuery, TaskSelector};
use crate::belief::MultiBelief;
use crate::entropy::{answer_family_entropy, answer_family_entropy_projected};
use crate::error::Result;
use crate::fact::FactId;
use crate::parallel;
use crate::worker::ExpertPanel;
use hc_telemetry::timing::{add, span, Counter, Phase};
use rand::RngCore;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Base unit of the greedy stop threshold (Algorithm 2's "no positive
/// gain" condition). Gains at or below the *scaled* threshold — see
/// [`stop_floor`] — are treated as zero.
pub const GAIN_EPSILON: f64 = 1e-12;

/// The stop threshold for one selection round: [`GAIN_EPSILON`] scaled
/// by the current total entropy of the belief state, floored at 1 nat
/// so a near-certain belief never loosens the cut-off below the
/// absolute epsilon.
///
/// An absolute `1e-12` cut-off is meaningless when the gains come from
/// a chain-rule subtraction of entropies that are themselves O(10)
/// nats: the subtraction's roundoff is proportional to the operand
/// scale, so the noise floor must track that scale too. The scaled
/// floor stays many orders of magnitude below the conformance
/// tolerance between the greedy schedules, so cached, lazy, and exact
/// selection keep agreeing.
pub fn stop_floor(beliefs: &MultiBelief) -> f64 {
    GAIN_EPSILON * beliefs.entropy().max(1.0)
}

/// How many consecutive stale heap tops the lazy path re-scores per
/// parallel batch. A fixed constant — never derived from the thread
/// count — so the heap's operation sequence (and therefore every
/// tie-break and trace entry) is identical at any [`parallel::Parallelism`].
pub const LAZY_RESCORE_BATCH: usize = 16;

/// Algorithm 2: greedy `(1 − 1/e)`-approximate checking-task selection.
#[derive(Debug, Clone, Default)]
pub struct GreedySelector {
    /// Use the CELF lazy-evaluation schedule (see module docs).
    pub lazy: bool,
}

impl GreedySelector {
    /// The default (task-dirty cached) greedy selector.
    pub fn new() -> Self {
        GreedySelector { lazy: false }
    }

    /// The CELF lazy greedy selector.
    pub fn lazy() -> Self {
        GreedySelector { lazy: true }
    }
}

/// Gain of adding `candidate` to task-local selection `selected`, given
/// the cached `H(AS^T)` for that task.
fn gain(
    beliefs: &MultiBelief,
    task: usize,
    selected: &[FactId],
    candidate: FactId,
    h_as_current: f64,
    panel: &ExpertPanel,
    panel_h: f64,
) -> Result<f64> {
    let belief = &beliefs.tasks()[task];
    let h_as_new = if selected.is_empty() {
        // Single-query fast path: project is the marginal.
        let q = belief.project(&[candidate]);
        answer_family_entropy_projected(&q, panel)?
    } else {
        let mut extended = Vec::with_capacity(selected.len() + 1);
        extended.extend_from_slice(selected);
        extended.push(candidate);
        answer_family_entropy(belief, &extended, panel)?
    };
    Ok(h_as_new - h_as_current - panel_h)
}

impl TaskSelector for GreedySelector {
    fn name(&self) -> &'static str {
        if self.lazy {
            "Approx(lazy)"
        } else {
            "Approx"
        }
    }

    fn select(
        &self,
        beliefs: &MultiBelief,
        panel: &ExpertPanel,
        k: usize,
        candidates: &[GlobalFact],
        _rng: &mut dyn RngCore,
    ) -> Result<Vec<GlobalFact>> {
        if self.lazy {
            select_lazy(beliefs, panel, k, candidates, None)
        } else {
            select_cached(beliefs, panel, k, candidates, None)
        }
    }

    fn select_with_explain(
        &self,
        beliefs: &MultiBelief,
        panel: &ExpertPanel,
        k: usize,
        candidates: &[GlobalFact],
        _rng: &mut dyn RngCore,
        trace: &mut ExplainTrace,
    ) -> Result<Vec<GlobalFact>> {
        trace.clear();
        if self.lazy {
            select_lazy(beliefs, panel, k, candidates, Some(trace))
        } else {
            select_cached(beliefs, panel, k, candidates, Some(trace))
        }
    }
}

/// Plain greedy with task-dirty gain caching. When `trace` is given,
/// every *fresh* gain computation is recorded (cached gains are exact
/// under task independence, so a pick may reuse a gain scored at an
/// earlier step) along with each step's winner.
fn select_cached(
    beliefs: &MultiBelief,
    panel: &ExpertPanel,
    k: usize,
    candidates: &[GlobalFact],
    mut trace: Option<&mut ExplainTrace>,
) -> Result<Vec<GlobalFact>> {
    let panel_h = panel.per_query_answer_entropy();
    let gain_floor = stop_floor(beliefs);
    let mut chosen: Vec<GlobalFact> = Vec::with_capacity(k);
    let mut selected_per_task: Vec<Vec<FactId>> = vec![Vec::new(); beliefs.len()];
    // H(AS^{T_t}) per task; empty selection has a single sure family,
    // hence entropy zero.
    let mut h_as: Vec<f64> = vec![0.0; beliefs.len()];
    let mut taken = vec![false; candidates.len()];
    let mut gains: Vec<f64> = vec![f64::NAN; candidates.len()];
    // All gains start dirty; afterwards only the task we touched is.
    let mut dirty_task: Option<usize> = None;
    let mut first_pass = true;

    while chosen.len() < k {
        // Scoring pass: fan the dirty candidates out over the compute
        // engine (each gain is an independent answer-family entropy),
        // then write gains and trace entries back in candidate-index
        // order — exactly the order the serial loop produced.
        let to_score: Vec<usize> = candidates
            .iter()
            .enumerate()
            .filter(|(i, gf)| !taken[*i] && (first_pass || dirty_task == Some(gf.task)))
            .map(|(i, _)| i)
            .collect();
        let scored = {
            let _span = span(Phase::Scoring);
            // Counted on the coordinating thread — worker-thread timing
            // state is always disabled, so counters there would vanish.
            add(Counter::CandidateEvals, to_score.len() as u64);
            parallel::map_items(&to_score, |_, &i| {
                let gf = &candidates[i];
                gain(
                    beliefs,
                    gf.task,
                    &selected_per_task[gf.task],
                    gf.fact,
                    h_as[gf.task],
                    panel,
                    panel_h,
                )
            })
        };
        for (&i, g) in to_score.iter().zip(scored) {
            gains[i] = g?;
            if let Some(t) = trace.as_deref_mut() {
                t.scored.push(ScoredCandidate {
                    step: chosen.len(),
                    fact: candidates[i],
                    gain: gains[i],
                });
            }
        }
        first_pass = false;
        // Argmax pass: strict `>` in index order, so the first index
        // wins ties — independent of how the scores were scheduled.
        let mut best: Option<(usize, f64)> = None;
        for i in 0..candidates.len() {
            if taken[i] {
                continue;
            }
            let g = gains[i];
            if best.is_none_or(|(_, bg)| g > bg) {
                best = Some((i, g));
            }
        }
        let Some((idx, best_gain)) = best else { break };
        // Algorithm 2, line 4: stop when no candidate improves quality
        // beyond the entropy-scaled noise floor.
        if best_gain <= gain_floor {
            break;
        }
        let gf = candidates[idx];
        taken[idx] = true;
        if let Some(t) = trace.as_deref_mut() {
            t.selected.push(SelectedQuery {
                step: chosen.len(),
                fact: gf,
                gain: best_gain,
            });
        }
        chosen.push(gf);
        selected_per_task[gf.task].push(gf.fact);
        h_as[gf.task] = answer_family_entropy(
            &beliefs.tasks()[gf.task],
            &selected_per_task[gf.task],
            panel,
        )?;
        dirty_task = Some(gf.task);
    }
    Ok(chosen)
}

/// Heap entry for CELF: stale gain plus the selection epoch it was
/// computed at (per task).
struct HeapEntry {
    gain: f64,
    candidate_idx: usize,
    task_epoch: u32,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.gain == other.gain
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.gain
            .partial_cmp(&other.gain)
            .unwrap_or(Ordering::Equal)
    }
}

/// CELF lazy greedy: gains are recomputed only when a stale entry reaches
/// the top of the max-heap; submodularity guarantees stale gains are
/// upper bounds, so a fresh top entry is the true argmax.
fn select_lazy(
    beliefs: &MultiBelief,
    panel: &ExpertPanel,
    k: usize,
    candidates: &[GlobalFact],
    mut trace: Option<&mut ExplainTrace>,
) -> Result<Vec<GlobalFact>> {
    let panel_h = panel.per_query_answer_entropy();
    let gain_floor = stop_floor(beliefs);
    let mut selected_per_task: Vec<Vec<FactId>> = vec![Vec::new(); beliefs.len()];
    let mut h_as: Vec<f64> = vec![0.0; beliefs.len()];
    let mut task_epoch: Vec<u32> = vec![0; beliefs.len()];
    let mut chosen: Vec<GlobalFact> = Vec::with_capacity(k);

    // Initial pass: score every candidate in parallel, then push heap
    // entries in candidate-index order (a fixed operation sequence, so
    // the heap's internal layout — and with it the pop order of equal
    // gains — is thread-count-independent).
    let init_gains = {
        let _span = span(Phase::Scoring);
        add(Counter::CandidateEvals, candidates.len() as u64);
        parallel::map_items(candidates, |_, gf| {
            gain(beliefs, gf.task, &[], gf.fact, 0.0, panel, panel_h)
        })
    };
    let mut heap = BinaryHeap::with_capacity(candidates.len());
    for (i, (gf, g)) in candidates.iter().zip(init_gains).enumerate() {
        let g = g?;
        if let Some(t) = trace.as_deref_mut() {
            t.scored.push(ScoredCandidate {
                step: 0,
                fact: *gf,
                gain: g,
            });
        }
        heap.push(HeapEntry {
            gain: g,
            candidate_idx: i,
            task_epoch: 0,
        });
    }

    while chosen.len() < k {
        let Some(top) = heap.pop() else { break };
        let gf = candidates[top.candidate_idx];
        if top.task_epoch == task_epoch[gf.task] {
            // Fresh: by submodularity this is the global argmax.
            if top.gain <= gain_floor {
                break;
            }
            if let Some(t) = trace.as_deref_mut() {
                t.selected.push(SelectedQuery {
                    step: chosen.len(),
                    fact: gf,
                    gain: top.gain,
                });
            }
            chosen.push(gf);
            selected_per_task[gf.task].push(gf.fact);
            h_as[gf.task] = answer_family_entropy(
                &beliefs.tasks()[gf.task],
                &selected_per_task[gf.task],
                panel,
            )?;
            task_epoch[gf.task] += 1;
        } else {
            // Stale: re-score against the task's current selection. Up
            // to LAZY_RESCORE_BATCH consecutive stale tops are drained
            // and re-scored as one parallel batch; rescoring extra
            // stale entries only replaces upper bounds with exact
            // gains, so the picks are unchanged (a pick still happens
            // only on a *fresh* top). The batch size is a constant, so
            // the pop/push sequence is the same at any thread count.
            let mut batch = vec![top];
            while batch.len() < LAZY_RESCORE_BATCH {
                let stale = heap.peek().is_some_and(|e| {
                    e.task_epoch != task_epoch[candidates[e.candidate_idx].task]
                });
                if !stale {
                    break;
                }
                batch.push(heap.pop().expect("peeked entry"));
            }
            let rescored = {
                let _span = span(Phase::Scoring);
                add(Counter::CandidateEvals, batch.len() as u64);
                parallel::map_items(&batch, |_, e| {
                    let gf = candidates[e.candidate_idx];
                    gain(
                        beliefs,
                        gf.task,
                        &selected_per_task[gf.task],
                        gf.fact,
                        h_as[gf.task],
                        panel,
                        panel_h,
                    )
                })
            };
            // Trace and re-insert in pop order.
            for (entry, g) in batch.into_iter().zip(rescored) {
                let g = g?;
                let gf = candidates[entry.candidate_idx];
                if let Some(t) = trace.as_deref_mut() {
                    t.scored.push(ScoredCandidate {
                        step: chosen.len(),
                        fact: gf,
                        gain: g,
                    });
                }
                heap.push(HeapEntry {
                    gain: g,
                    candidate_idx: entry.candidate_idx,
                    task_epoch: task_epoch[gf.task],
                });
            }
        }
    }
    Ok(chosen)
}

#[cfg(test)]
mod tests {
    use super::super::test_support::*;
    use super::super::{selection_objective, TaskSelector};
    use super::*;
    use crate::belief::Belief;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn greedy_prefers_uncertain_task() {
        let beliefs = two_task_beliefs();
        let sel = GreedySelector::new()
            .select(&beliefs, &panel(), 1, &crate::selection::global_facts(&beliefs), &mut rng())
            .unwrap();
        assert_eq!(sel.len(), 1);
        assert_eq!(sel[0].task, 1, "task 1 is the uncertain one");
    }

    #[test]
    fn greedy_respects_k() {
        let beliefs = two_task_beliefs();
        for k in 0..=4 {
            let sel = GreedySelector::new()
                .select(&beliefs, &panel(), k, &crate::selection::global_facts(&beliefs), &mut rng())
                .unwrap();
            assert!(sel.len() <= k);
        }
    }

    #[test]
    fn greedy_never_selects_duplicates() {
        let beliefs = two_task_beliefs();
        let sel = GreedySelector::new()
            .select(&beliefs, &panel(), 4, &crate::selection::global_facts(&beliefs), &mut rng())
            .unwrap();
        let mut dedup = sel.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), sel.len());
    }

    #[test]
    fn greedy_stops_on_nonpositive_gain() {
        // A belief that is already certain offers no gain; greedy must
        // select nothing even with budget.
        let certain =
            Belief::point_mass(2, crate::observation::Observation(0b01)).unwrap();
        let beliefs = MultiBelief::new(vec![certain]);
        let sel = GreedySelector::new()
            .select(&beliefs, &panel(), 2, &crate::selection::global_facts(&beliefs), &mut rng())
            .unwrap();
        assert!(
            sel.is_empty(),
            "no positive-gain candidates, got {sel:?}"
        );
    }

    #[test]
    fn lazy_matches_plain_greedy() {
        let beliefs = MultiBelief::new(vec![
            Belief::from_marginals(&[0.55, 0.8, 0.63]).unwrap(),
            Belief::from_marginals(&[0.9, 0.52]).unwrap(),
            Belief::from_probs(vec![0.09, 0.11, 0.10, 0.20, 0.08, 0.09, 0.15, 0.18]).unwrap(),
        ]);
        let p = ExpertPanel::from_accuracies(&[0.9, 0.8]).unwrap();
        for k in 1..=5 {
            let plain = GreedySelector::new()
                .select(&beliefs, &p, k, &crate::selection::global_facts(&beliefs), &mut rng())
                .unwrap();
            let lazy = GreedySelector::lazy()
                .select(&beliefs, &p, k, &crate::selection::global_facts(&beliefs), &mut rng())
                .unwrap();
            let obj_plain = selection_objective(&beliefs, &plain, &p).unwrap();
            let obj_lazy = selection_objective(&beliefs, &lazy, &p).unwrap();
            assert!(
                (obj_plain - obj_lazy).abs() < 1e-9,
                "k={k}: plain {obj_plain} vs lazy {obj_lazy}"
            );
        }
    }

    #[test]
    fn greedy_objective_improves_monotonically_in_k() {
        let beliefs = two_task_beliefs();
        let p = panel();
        let mut prev = beliefs.entropy();
        for k in 1..=4 {
            let sel = GreedySelector::new()
                .select(&beliefs, &p, k, &crate::selection::global_facts(&beliefs), &mut rng())
                .unwrap();
            let obj = selection_objective(&beliefs, &sel, &p).unwrap();
            assert!(obj <= prev + 1e-12, "k={k}");
            prev = obj;
        }
    }

    #[test]
    fn explain_returns_the_same_set_as_select() {
        let beliefs = MultiBelief::new(vec![
            Belief::from_marginals(&[0.55, 0.8, 0.63]).unwrap(),
            Belief::from_marginals(&[0.9, 0.52]).unwrap(),
        ]);
        let p = ExpertPanel::from_accuracies(&[0.9, 0.8]).unwrap();
        let candidates = crate::selection::global_facts(&beliefs);
        for selector in [GreedySelector::new(), GreedySelector::lazy()] {
            for k in 0..=5 {
                let plain = selector
                    .select(&beliefs, &p, k, &candidates, &mut rng())
                    .unwrap();
                let mut trace = crate::selection::ExplainTrace::new();
                let explained = selector
                    .select_with_explain(&beliefs, &p, k, &candidates, &mut rng(), &mut trace)
                    .unwrap();
                assert_eq!(plain, explained, "{} k={k}", selector.name());
                assert_eq!(trace.selected.len(), explained.len());
            }
        }
    }

    #[test]
    fn explain_trace_gains_are_consistent() {
        let beliefs = two_task_beliefs();
        let p = panel();
        let candidates = crate::selection::global_facts(&beliefs);
        for selector in [GreedySelector::new(), GreedySelector::lazy()] {
            let mut trace = crate::selection::ExplainTrace::new();
            let chosen = selector
                .select_with_explain(&beliefs, &p, 3, &candidates, &mut rng(), &mut trace)
                .unwrap();
            assert!(!chosen.is_empty());
            for (step, sel) in trace.selected.iter().enumerate() {
                assert_eq!(sel.step, step);
                assert_eq!(sel.fact, chosen[step]);
                assert!(sel.gain > GAIN_EPSILON, "winning gains are positive");
                // The winning gain is the latest gain scored for that
                // fact (cached gains stay exact across steps that touch
                // other tasks, so the score may predate the pick).
                let last_scored = trace
                    .scored
                    .iter()
                    .rev()
                    .find(|s| s.fact == sel.fact && s.step <= step)
                    .expect("every pick was scored");
                assert_eq!(last_scored.gain, sel.gain, "{} step {step}", selector.name());
            }
            // Step 0 scores every candidate exactly once.
            assert_eq!(
                trace.scored.iter().filter(|s| s.step == 0).count(),
                candidates.len()
            );
        }
    }

    #[test]
    fn explain_trace_is_cleared_between_rounds() {
        let beliefs = two_task_beliefs();
        let p = panel();
        let candidates = crate::selection::global_facts(&beliefs);
        let mut trace = crate::selection::ExplainTrace::new();
        let selector = GreedySelector::new();
        selector
            .select_with_explain(&beliefs, &p, 3, &candidates, &mut rng(), &mut trace)
            .unwrap();
        let first = trace.clone();
        selector
            .select_with_explain(&beliefs, &p, 3, &candidates, &mut rng(), &mut trace)
            .unwrap();
        assert_eq!(trace, first, "re-running does not accumulate");
    }

    #[test]
    fn stop_floor_tracks_the_entropy_scale() {
        let beliefs = two_task_beliefs();
        let floor = stop_floor(&beliefs);
        assert!(floor >= GAIN_EPSILON, "never looser than the absolute epsilon");
        assert!(
            (floor - GAIN_EPSILON * beliefs.entropy().max(1.0)).abs() == 0.0,
            "exactly the scaled epsilon"
        );
        // A certain belief has zero entropy: the floor clamps to the
        // absolute epsilon instead of collapsing to zero.
        let certain =
            Belief::point_mass(2, crate::observation::Observation(0b01)).unwrap();
        let certain_beliefs = MultiBelief::new(vec![certain]);
        assert_eq!(stop_floor(&certain_beliefs), GAIN_EPSILON);
        // The floor stays far below the cross-schedule conformance
        // tolerance even at the 26-fact ceiling.
        assert!(GAIN_EPSILON * 26.0 * std::f64::consts::LN_2 < 1e-7);
    }

    #[test]
    fn k_zero_selects_nothing() {
        let beliefs = two_task_beliefs();
        let sel = GreedySelector::new()
            .select(&beliefs, &panel(), 0, &crate::selection::global_facts(&beliefs), &mut rng())
            .unwrap();
        assert!(sel.is_empty());
    }
}
