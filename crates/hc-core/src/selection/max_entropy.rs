//! The max-marginal-entropy heuristic selector.
//!
//! §V notes that the single-query, single-worker special case of the
//! selection problem "has a trivial solution, namely, selecting the query
//! with the maximum entropy". Generalised to `k` queries, this heuristic
//! ranks facts by the binary entropy of their marginal `P(f)` and takes
//! the top `k` — ignoring both correlations between facts and worker
//! accuracies. It is cheap (`O(N · 2^n)` for the marginals) and serves as
//! an ablation point between Random and Approx.

use super::{GlobalFact, TaskSelector};
use crate::belief::MultiBelief;
use crate::entropy::binary_entropy;
use crate::error::Result;
use crate::fact::FactId;
use crate::worker::ExpertPanel;
use rand::RngCore;

/// Top-`k` facts by marginal entropy `h(P(f))`.
#[derive(Debug, Clone, Copy, Default)]
pub struct MaxEntropySelector;

impl MaxEntropySelector {
    /// A new max-entropy selector.
    pub fn new() -> Self {
        MaxEntropySelector
    }
}

impl TaskSelector for MaxEntropySelector {
    fn name(&self) -> &'static str {
        "MaxEntropy"
    }

    fn select(
        &self,
        beliefs: &MultiBelief,
        _panel: &ExpertPanel,
        k: usize,
        candidates: &[GlobalFact],
        _rng: &mut dyn RngCore,
    ) -> Result<Vec<GlobalFact>> {
        let mut scored: Vec<(f64, GlobalFact)> = candidates
            .iter()
            .map(|&gf| {
                let h = binary_entropy(beliefs.tasks()[gf.task].marginal(FactId(gf.fact.0)));
                (h, gf)
            })
            .collect();
        // Descending by entropy; ties broken by (task, fact) for
        // determinism.
        scored.sort_by(|a, b| {
            b.0.partial_cmp(&a.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.1.cmp(&b.1))
        });
        Ok(scored.into_iter().take(k).map(|(_, gf)| gf).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::*;
    use super::*;
    use crate::belief::Belief;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn picks_most_uncertain_marginals() {
        let beliefs = MultiBelief::new(vec![
            Belief::from_marginals(&[0.5, 0.95]).unwrap(),
            Belief::from_marginals(&[0.52, 0.99]).unwrap(),
        ]);
        let p = panel();
        let mut rng = StdRng::seed_from_u64(1);
        let sel = MaxEntropySelector::new()
            .select(&beliefs, &p, 2, &crate::selection::global_facts(&beliefs), &mut rng)
            .unwrap();
        assert_eq!(sel[0], GlobalFact::new(0, 0), "P=0.5 is maximal entropy");
        assert_eq!(sel[1], GlobalFact::new(1, 0), "P=0.52 second");
    }

    #[test]
    fn matches_greedy_in_single_expert_single_query_independent_case() {
        // With one expert, k=1, and an *independent* (product-form)
        // belief, the conditional-entropy-optimal query is the max
        // marginal-entropy fact (the §V special case).
        let beliefs = MultiBelief::new(vec![
            Belief::from_marginals(&[0.7, 0.56, 0.9]).unwrap(),
        ]);
        let p = panel();
        let mut rng = StdRng::seed_from_u64(1);
        let me = MaxEntropySelector::new()
            .select(&beliefs, &p, 1, &crate::selection::global_facts(&beliefs), &mut rng)
            .unwrap();
        let greedy = super::super::GreedySelector::new()
            .select(&beliefs, &p, 1, &crate::selection::global_facts(&beliefs), &mut rng)
            .unwrap();
        assert_eq!(me, greedy);
    }

    #[test]
    fn k_exceeding_space_returns_everything() {
        let beliefs = two_task_beliefs();
        let p = panel();
        let mut rng = StdRng::seed_from_u64(1);
        let sel = MaxEntropySelector::new()
            .select(&beliefs, &p, 99, &crate::selection::global_facts(&beliefs), &mut rng)
            .unwrap();
        assert_eq!(sel.len(), 4);
    }
}
