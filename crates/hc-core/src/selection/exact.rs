//! The exact (OPT) selector: brute force over every size-`k` subset of
//! the global query space (§IV-C(3)).
//!
//! Theorem 3 shows the underlying problem is NP-hard, so this selector is
//! exponential by construction; it exists as the ground-truth comparator
//! for Figure 5 and the runtime baseline of Table III. A wall-clock
//! budget reproduces the paper's "timeout" entries.
//!
//! Implementation notes:
//!
//! * Because tasks are independent, the objective decomposes and, via the
//!   chain rule, minimising `Σ_t H(O_t | AS^{T_t})` over size-`k` sets is
//!   equivalent to **maximising `Σ_t H(AS^{T_t})`** (the `k · Σ_cr h(Pr_cr)`
//!   and `Σ_t H(O_t)` terms are constant for fixed `k`).
//! * Per-task `H(AS^{S})` values are memoised by `(task, fact-bitmask)`;
//!   many global subsets share per-task groups.

use super::{GlobalFact, TaskSelector};
use crate::belief::MultiBelief;
use crate::entropy::answer_family_entropy;
use crate::error::{HcError, Result};
use crate::fact::FactId;
use crate::worker::ExpertPanel;
use rand::RngCore;
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Brute-force optimal checking-task selection with an optional time
/// budget.
#[derive(Debug, Clone, Default)]
pub struct ExactSelector {
    /// Abort with [`HcError::Timeout`] when exceeded. `None` = unlimited.
    pub time_budget: Option<Duration>,
}

impl ExactSelector {
    /// Unlimited exact selection.
    pub fn new() -> Self {
        ExactSelector { time_budget: None }
    }

    /// Exact selection that gives up (with [`HcError::Timeout`]) after
    /// `budget` of wall-clock time — reproducing Table III's timeouts.
    pub fn with_time_budget(budget: Duration) -> Self {
        ExactSelector {
            time_budget: Some(budget),
        }
    }
}

/// Iterator over `k`-combinations of `0..n` as index vectors.
struct Combinations {
    n: usize,
    k: usize,
    indices: Vec<usize>,
    started: bool,
    done: bool,
}

impl Combinations {
    fn new(n: usize, k: usize) -> Self {
        Combinations {
            n,
            k,
            indices: (0..k).collect(),
            started: false,
            done: k > n,
        }
    }

    /// Advances to the next combination; returns the current one.
    fn next_combo(&mut self) -> Option<&[usize]> {
        if self.done {
            return None;
        }
        if !self.started {
            self.started = true;
            return Some(&self.indices);
        }
        // Find rightmost index that can be incremented.
        let k = self.k;
        if k == 0 {
            self.done = true;
            return None;
        }
        let mut i = k;
        loop {
            if i == 0 {
                self.done = true;
                return None;
            }
            i -= 1;
            if self.indices[i] < self.n - (k - i) {
                break;
            }
        }
        self.indices[i] += 1;
        for j in i + 1..k {
            self.indices[j] = self.indices[j - 1] + 1;
        }
        Some(&self.indices)
    }
}

impl TaskSelector for ExactSelector {
    fn name(&self) -> &'static str {
        "OPT"
    }

    fn select(
        &self,
        beliefs: &MultiBelief,
        panel: &ExpertPanel,
        k: usize,
        candidates: &[GlobalFact],
        _rng: &mut dyn RngCore,
    ) -> Result<Vec<GlobalFact>> {
        let n = candidates.len();
        let k = k.min(n);
        if k == 0 {
            return Ok(Vec::new());
        }
        let start = Instant::now();
        // Memo: (task, selected-fact bitmask) -> H(AS^S).
        let mut memo: HashMap<(usize, u64), f64> = HashMap::new();
        let mut best: Option<(f64, Vec<usize>)> = None;
        let mut combos = Combinations::new(n, k);
        let mut evaluated: u64 = 0;

        while let Some(idxs) = combos.next_combo() {
            evaluated += 1;
            if evaluated.is_multiple_of(1024) {
                if let Some(budget) = self.time_budget {
                    if start.elapsed() > budget {
                        return Err(HcError::Timeout);
                    }
                }
            }
            // Group the subset per task as bitmasks. Candidate lists are
            // not necessarily task-sorted, so sort the (small) subset
            // first.
            let mut subset: Vec<GlobalFact> = idxs.iter().map(|&i| candidates[i]).collect();
            subset.sort_unstable();
            let mut score = 0.0;
            let mut i = 0;
            while i < subset.len() {
                let task = subset[i].task;
                let mut mask = 0u64;
                let mut facts: Vec<FactId> = Vec::with_capacity(k);
                while i < subset.len() && subset[i].task == task {
                    let f = subset[i].fact;
                    mask |= 1u64 << f.0;
                    facts.push(f);
                    i += 1;
                }
                let h = match memo.get(&(task, mask)) {
                    Some(&h) => h,
                    None => {
                        let h = answer_family_entropy(&beliefs.tasks()[task], &facts, panel)?;
                        memo.insert((task, mask), h);
                        h
                    }
                };
                score += h;
            }
            if best.as_ref().is_none_or(|(b, _)| score > *b) {
                best = Some((score, idxs.to_vec()));
            }
        }

        let (_, idxs) = best.expect("k >= 1 and n >= k imply at least one combination");
        Ok(idxs.into_iter().map(|i| candidates[i]).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::*;
    use super::super::{selection_objective, GreedySelector, TaskSelector};
    use super::*;
    use crate::belief::Belief;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    #[test]
    fn combinations_enumerate_binomial_count() {
        let mut c = Combinations::new(5, 3);
        let mut count = 0;
        let mut seen = std::collections::HashSet::new();
        while let Some(idx) = c.next_combo() {
            count += 1;
            assert!(idx.windows(2).all(|w| w[0] < w[1]));
            seen.insert(idx.to_vec());
        }
        assert_eq!(count, 10);
        assert_eq!(seen.len(), 10);
    }

    #[test]
    fn combinations_edge_cases() {
        let mut c = Combinations::new(3, 3);
        assert_eq!(c.next_combo(), Some(&[0, 1, 2][..]));
        assert!(c.next_combo().is_none());

        let mut c = Combinations::new(2, 3);
        assert!(c.next_combo().is_none());
    }

    #[test]
    fn exact_is_at_least_as_good_as_greedy() {
        let beliefs = MultiBelief::new(vec![
            Belief::from_probs(vec![0.09, 0.11, 0.10, 0.20, 0.08, 0.09, 0.15, 0.18]).unwrap(),
            Belief::from_marginals(&[0.6, 0.75]).unwrap(),
        ]);
        let p = ExpertPanel::from_accuracies(&[0.85]).unwrap();
        for k in 1..=3 {
            let opt = ExactSelector::new()
                .select(&beliefs, &p, k, &crate::selection::global_facts(&beliefs), &mut rng())
                .unwrap();
            let grd = GreedySelector::new()
                .select(&beliefs, &p, k, &crate::selection::global_facts(&beliefs), &mut rng())
                .unwrap();
            let obj_opt = selection_objective(&beliefs, &opt, &p).unwrap();
            let obj_grd = selection_objective(&beliefs, &grd, &p).unwrap();
            assert!(
                obj_opt <= obj_grd + 1e-9,
                "k={k}: OPT {obj_opt} worse than greedy {obj_grd}"
            );
        }
    }

    #[test]
    fn exact_matches_greedy_for_k_1() {
        // §IV-C(3): "if k equals 1 ... there is no difference between the
        // OPT method and the Approx method".
        let beliefs = two_task_beliefs();
        let p = panel();
        let opt = ExactSelector::new()
            .select(&beliefs, &p, 1, &crate::selection::global_facts(&beliefs), &mut rng())
            .unwrap();
        let grd = GreedySelector::new()
            .select(&beliefs, &p, 1, &crate::selection::global_facts(&beliefs), &mut rng())
            .unwrap();
        assert_eq!(opt, grd);
    }

    #[test]
    fn exact_beats_every_other_subset() {
        // Exhaustive cross-check on a tiny instance.
        let beliefs = MultiBelief::new(vec![Belief::from_probs(vec![
            0.09, 0.11, 0.10, 0.20, 0.08, 0.09, 0.15, 0.18,
        ])
        .unwrap()]);
        let p = ExpertPanel::from_accuracies(&[0.8]).unwrap();
        let opt = ExactSelector::new()
            .select(&beliefs, &p, 2, &crate::selection::global_facts(&beliefs), &mut rng())
            .unwrap();
        let obj_opt = selection_objective(&beliefs, &opt, &p).unwrap();
        let all = super::super::global_facts(&beliefs);
        for i in 0..all.len() {
            for j in i + 1..all.len() {
                let obj = selection_objective(&beliefs, &[all[i], all[j]], &p).unwrap();
                assert!(obj_opt <= obj + 1e-9);
            }
        }
    }

    #[test]
    fn timeout_is_reported() {
        let beliefs = MultiBelief::new(vec![Belief::uniform(16).unwrap()]);
        let p = ExpertPanel::from_accuracies(&[0.9]).unwrap();
        let sel = ExactSelector::with_time_budget(Duration::from_millis(1));
        let res = sel.select(&beliefs, &p, 6, &crate::selection::global_facts(&beliefs), &mut rng());
        assert_eq!(res.unwrap_err(), HcError::Timeout);
    }

    #[test]
    fn k_larger_than_space_is_clamped() {
        let beliefs = MultiBelief::new(vec![Belief::from_marginals(&[0.6]).unwrap()]);
        let p = panel();
        let sel = ExactSelector::new()
            .select(&beliefs, &p, 5, &crate::selection::global_facts(&beliefs), &mut rng())
            .unwrap();
        assert_eq!(sel.len(), 1);
    }
}
