//! Data quality and expected quality (Definitions 2, 5, 7; Theorem 1).
//!
//! Quality of a belief is its negative Shannon entropy, `Q(F) = -H(O)`.
//! Before crowdsourcing a round's answers, only the *expected* quality of
//! a query set is available; Theorem 1 shows the expected improvement is
//! the mutual information `ΔQ(F|T) = H(O) − H(O|AS_CE^T)`.

use crate::answer::{enumerate_families, AnswerFamily, QuerySet};
use crate::belief::Belief;
use crate::error::Result;
use crate::fact::FactId;
use crate::update::posterior;
use crate::worker::ExpertPanel;

/// `Q(F | A_CE^T)` — the realised quality after updating with a concrete
/// answer family.
pub fn conditional_quality(
    belief: &Belief,
    queries: &QuerySet,
    panel: &ExpertPanel,
    family: &AnswerFamily,
) -> Result<f64> {
    Ok(posterior(belief, queries, panel, family)?.quality())
}

/// `ℚ(F | T)` — the expected quality of the data after checking query set
/// `T` (Definition 5):
/// `Σ_{A} P(A) · Q(F | A) = -H(O | AS_CE^T)`.
///
/// Computed through the fast conditional-entropy kernel.
pub fn expected_quality(belief: &Belief, queries: &[FactId], panel: &ExpertPanel) -> Result<f64> {
    Ok(-crate::entropy::conditional_entropy(belief, queries, panel)?)
}

/// `ΔQ(F | T)` — the expected quality improvement (Definition 7,
/// Theorem 1): `H(O) − H(O | AS_CE^T)`. Always non-negative
/// (information never hurts in expectation).
pub fn expected_quality_improvement(
    belief: &Belief,
    queries: &[FactId],
    panel: &ExpertPanel,
) -> Result<f64> {
    let h_cond = crate::entropy::conditional_entropy(belief, queries, panel)?;
    Ok((belief.entropy() - h_cond).max(0.0))
}

/// Evaluates Definition 5 literally — enumerating every answer family,
/// updating, and averaging realised qualities. Exponential; used as the
/// independent oracle that Theorem 1's identity holds in code.
pub fn expected_quality_by_enumeration(
    belief: &Belief,
    queries: &QuerySet,
    panel: &ExpertPanel,
) -> Result<f64> {
    let k = queries.len();
    let m = panel.len();
    let mut expected = 0.0;
    for (_, family) in enumerate_families(k, m) {
        let p = crate::answer::family_probability(belief, queries, panel, &family);
        if p <= 0.0 {
            continue;
        }
        expected += p * conditional_quality(belief, queries, panel, &family)?;
    }
    Ok(expected)
}

/// Fraction of facts whose MAP label matches the ground truth — the
/// accuracy metric of §IV-B.
///
/// `ground_truth[i]` is the true value of fact `i`; both slices must have
/// one entry per fact.
pub fn label_accuracy(belief: &Belief, ground_truth: &[bool]) -> f64 {
    debug_assert_eq!(ground_truth.len(), belief.num_facts());
    let labels = belief.map_labels();
    let correct = labels
        .iter()
        .zip(ground_truth)
        .filter(|(a, b)| a == b)
        .count();
    correct as f64 / ground_truth.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observation::Observation;

    fn table_i_belief() -> Belief {
        Belief::from_probs(vec![0.09, 0.11, 0.10, 0.20, 0.08, 0.09, 0.15, 0.18]).unwrap()
    }

    #[test]
    fn theorem_1_identity_holds() {
        // ℚ(F|T) computed by enumerating answer families (Definition 5)
        // must equal -H(O|AS^T) (Theorem 1).
        let b = table_i_belief();
        let panel = ExpertPanel::from_accuracies(&[0.9, 0.7]).unwrap();
        for facts in [vec![FactId(0)], vec![FactId(1), FactId(2)]] {
            let queries = QuerySet::new(facts.clone(), 3).unwrap();
            let by_enum = expected_quality_by_enumeration(&b, &queries, &panel).unwrap();
            let by_entropy = expected_quality(&b, &facts, &panel).unwrap();
            assert!(
                (by_enum - by_entropy).abs() < 1e-9,
                "facts {facts:?}: {by_enum} vs {by_entropy}"
            );
        }
    }

    #[test]
    fn improvement_is_nonnegative_and_bounded() {
        let b = table_i_belief();
        let panel = ExpertPanel::from_accuracies(&[0.8]).unwrap();
        for f in 0..3u32 {
            let dq = expected_quality_improvement(&b, &[FactId(f)], &panel).unwrap();
            assert!(dq >= 0.0);
            assert!(dq <= b.entropy() + 1e-12);
        }
    }

    #[test]
    fn improvement_zero_for_chance_expert() {
        let b = table_i_belief();
        let panel = ExpertPanel::from_accuracies(&[0.5]).unwrap();
        let dq = expected_quality_improvement(&b, &[FactId(0)], &panel).unwrap();
        assert!(dq.abs() < 1e-9);
    }

    #[test]
    fn expected_quality_of_empty_set_is_current_quality() {
        let b = table_i_belief();
        let panel = ExpertPanel::from_accuracies(&[0.9]).unwrap();
        let q = expected_quality(&b, &[], &panel).unwrap();
        assert!((q - b.quality()).abs() < 1e-12);
    }

    #[test]
    fn accuracy_counts_matching_labels() {
        let b = Belief::point_mass(3, Observation(0b011)).unwrap();
        assert_eq!(label_accuracy(&b, &[true, true, false]), 1.0);
        assert!((label_accuracy(&b, &[true, false, false]) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(label_accuracy(&b, &[false, false, true]), 0.0);
    }
}
