//! The belief state: a joint probability distribution over all
//! observations of a task's fact set (§II-A).
//!
//! A belief assigns `P(o)` to every observation `o ∈ O`; it is the
//! framework's entire knowledge about the uncertain labels, including all
//! correlations between the facts. Data quality is measured as the
//! negative Shannon entropy of this distribution (Definition 2):
//! `Q(F) = -H(O) = Σ_o P(o) ln P(o)` — higher is better, with 0 the
//! maximum (a point mass).

use crate::error::{HcError, Result};
use crate::fact::FactId;
use crate::observation::{Observation, ObservationSpace};
use serde::{Deserialize, Serialize};

/// Maximum number of facts per task for the dense belief representation.
///
/// A belief over `n` facts stores `2^n` probabilities; 26 facts is a
/// 512 MiB vector and the practical ceiling. The paper's workloads use 5
/// facts per task (§IV-A) and >20 facts for the efficiency study
/// (Table III), both comfortably inside the limit.
pub const MAX_FACTS: usize = 26;

/// Tolerance used when validating that probability vectors sum to one.
pub const NORMALIZATION_TOLERANCE: f64 = 1e-6;

/// The floor applied when a probability must be kept away from exactly
/// zero (or one) for numerical reasons.
///
/// One constant for the whole crate: [`Belief::from_marginals`] clamps
/// CP vote fractions into `[PROB_FLOOR, 1 − PROB_FLOOR]` so no
/// observation starts with an unrevivable zero prior, and
/// [`crate::metrics::log_loss`] clamps predictions by the same amount so
/// a confidently-wrong label costs `−ln(PROB_FLOOR) ≈ 20.7` nats instead
/// of infinity. `1e-9` is far below any probability the crowd model can
/// produce honestly (even a `1 − 1e-12`-accurate expert moves posteriors
/// by factors of ~`1e12` per answer, many orders above the floor) while
/// staying far above the `f64` underflow threshold. Clamp *counts* are
/// surfaced rather than silent: [`Belief::from_marginals_counted`]
/// reports how many marginals were floored, and the update path reports
/// flushed multiplier cells through `UpdateHealth` / the
/// `NumericalHealth` telemetry event.
pub const PROB_FLOOR: f64 = 1e-9;

/// A joint distribution `P(O)` over the observations of one task.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Belief {
    num_facts: u8,
    /// `probs[o]` is `P(gt(O) = o)`; always normalised.
    probs: Vec<f64>,
}

impl Belief {
    /// The uniform belief over `num_facts` facts — total ignorance, used
    /// by the NO-HC baseline of §IV-C(5).
    pub fn uniform(num_facts: usize) -> Result<Self> {
        Self::check_num_facts(num_facts)?;
        let len = 1usize << num_facts;
        Ok(Belief {
            num_facts: num_facts as u8,
            probs: vec![1.0 / len as f64; len],
        })
    }

    /// A belief from explicit observation probabilities (index `o` holds
    /// `P(o)`).
    ///
    /// The vector is validated (finite, non-negative, summing to one
    /// within [`NORMALIZATION_TOLERANCE`]) and then renormalised exactly.
    ///
    /// # Errors
    ///
    /// [`HcError::DimensionMismatch`] when `probs.len()` is not a power of
    /// two matching a fact count; [`HcError::InvalidProbability`] /
    /// [`HcError::NotNormalized`] for bad contents.
    pub fn from_probs(probs: Vec<f64>) -> Result<Self> {
        let len = probs.len();
        if len == 0 || !len.is_power_of_two() {
            return Err(HcError::DimensionMismatch {
                expected: len.next_power_of_two().max(1),
                actual: len,
            });
        }
        let num_facts = len.trailing_zeros() as usize;
        Self::check_num_facts(num_facts)?;
        let mut sum = 0.0;
        for &p in &probs {
            if !p.is_finite() || p < 0.0 {
                return Err(HcError::InvalidProbability(p));
            }
            sum += p;
        }
        if (sum - 1.0).abs() > NORMALIZATION_TOLERANCE {
            return Err(HcError::NotNormalized { sum });
        }
        let mut belief = Belief {
            num_facts: num_facts as u8,
            probs,
        };
        belief.renormalize()?;
        Ok(belief)
    }

    /// A product-form belief from independent per-fact marginals:
    /// `P(o) = Π_i ob(o, f_i)` with `ob` the marginal of `f_i` (true) or
    /// its complement (false). This is exactly the initialisation of
    /// Equation (15) when the marginals are CP vote fractions.
    ///
    /// Marginals are clamped into `[ε, 1-ε]` (`ε =` [`PROB_FLOOR`]) so
    /// that no observation starts with exactly zero probability — a zero
    /// prior can never be revived by Bayes updates even if every expert
    /// contradicts it, which would make the checking loop brittle against
    /// unanimous CP mistakes.
    pub fn from_marginals(marginals: &[f64]) -> Result<Self> {
        Self::from_marginals_counted(marginals).map(|(belief, _)| belief)
    }

    /// Like [`Belief::from_marginals`], but additionally reports how many
    /// marginals had to be clamped away from an exact 0 or 1 — clamping
    /// is a lossy numerical intervention and callers that care about run
    /// health (e.g. the init path feeding `NumericalHealth` telemetry)
    /// should not have it happen silently.
    pub fn from_marginals_counted(marginals: &[f64]) -> Result<(Self, usize)> {
        Self::check_num_facts(marginals.len())?;
        if marginals.is_empty() {
            return Err(HcError::EmptyFactSet);
        }
        let mut clamp_count = 0usize;
        let mut clamped = Vec::with_capacity(marginals.len());
        for &m in marginals {
            if !m.is_finite() || !(0.0..=1.0).contains(&m) {
                return Err(HcError::InvalidProbability(m));
            }
            let c = m.clamp(PROB_FLOOR, 1.0 - PROB_FLOOR);
            if c != m {
                clamp_count += 1;
            }
            clamped.push(c);
        }
        let len = 1usize << marginals.len();
        let mut probs = Vec::with_capacity(len);
        for o in 0..len as u32 {
            let mut p = 1.0;
            for (i, &m) in clamped.iter().enumerate() {
                p *= if (o >> i) & 1 == 1 { m } else { 1.0 - m };
            }
            probs.push(p);
        }
        let mut belief = Belief {
            num_facts: marginals.len() as u8,
            probs,
        };
        belief.renormalize()?;
        Ok((belief, clamp_count))
    }

    /// A point-mass belief on a single observation (useful in tests and
    /// for oracle comparisons).
    pub fn point_mass(num_facts: usize, observation: Observation) -> Result<Self> {
        Self::check_num_facts(num_facts)?;
        let len = 1usize << num_facts;
        let idx = observation.0 as usize;
        if idx >= len {
            return Err(HcError::DimensionMismatch {
                expected: len,
                actual: idx,
            });
        }
        let mut probs = vec![0.0; len];
        probs[idx] = 1.0;
        Ok(Belief {
            num_facts: num_facts as u8,
            probs,
        })
    }

    /// Reconstructs a belief from checkpointed probabilities *without*
    /// renormalising, so a save/restore round trip is bit-exact.
    ///
    /// [`Belief::from_probs`] divides by the validated sum, which is not
    /// idempotent at the ULP level (a vector whose sum is `1.0 - 1e-16`
    /// changes bits when renormalised again); the checkpoint path
    /// validates the same invariants but trusts the stored bits, which
    /// were normalised when the belief was first built.
    ///
    /// # Errors
    ///
    /// The same validation errors as [`Belief::from_probs`].
    pub(crate) fn from_checkpoint_probs(probs: Vec<f64>) -> Result<Self> {
        let len = probs.len();
        if len == 0 || !len.is_power_of_two() {
            return Err(HcError::DimensionMismatch {
                expected: len.next_power_of_two().max(1),
                actual: len,
            });
        }
        let num_facts = len.trailing_zeros() as usize;
        Self::check_num_facts(num_facts)?;
        let mut sum = 0.0;
        for &p in &probs {
            if !p.is_finite() || p < 0.0 {
                return Err(HcError::InvalidProbability(p));
            }
            sum += p;
        }
        if (sum - 1.0).abs() > NORMALIZATION_TOLERANCE {
            return Err(HcError::NotNormalized { sum });
        }
        Ok(Belief {
            num_facts: num_facts as u8,
            probs,
        })
    }

    fn check_num_facts(num_facts: usize) -> Result<()> {
        if num_facts > MAX_FACTS {
            return Err(HcError::TooManyFacts(num_facts));
        }
        Ok(())
    }

    /// Number of facts `n`.
    #[inline]
    pub fn num_facts(&self) -> usize {
        self.num_facts as usize
    }

    /// The observation space this belief ranges over.
    #[inline]
    pub fn space(&self) -> ObservationSpace {
        ObservationSpace::new(self.num_facts())
    }

    /// `P(o)` for every observation, in index order.
    #[inline]
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// `P(o)` of a single observation.
    #[inline]
    pub fn prob(&self, o: Observation) -> f64 {
        self.probs[o.0 as usize]
    }

    /// Marginal probability `P(f) = Σ_{o ⊨ f} P(o)` (Equation (2)).
    pub fn marginal(&self, fact: FactId) -> f64 {
        let bit = 1usize << fact.0;
        self.probs
            .iter()
            .enumerate()
            .filter(|(o, _)| o & bit != 0)
            .map(|(_, &p)| p)
            .sum()
    }

    /// All per-fact marginals, in fact order.
    pub fn marginals(&self) -> Vec<f64> {
        (0..self.num_facts() as u32)
            .map(|i| self.marginal(FactId(i)))
            .collect()
    }

    /// Shannon entropy `H(O) = -Σ_o P(o) ln P(o)` in nats.
    ///
    /// Zero-probability observations contribute zero (the standard
    /// `0 ln 0 = 0` convention).
    pub fn entropy(&self) -> f64 {
        crate::entropy::entropy_of(&self.probs)
    }

    /// Data quality `Q(F) = -H(O)` (Definition 2). Higher is better;
    /// maximum 0 for a deterministic belief.
    #[inline]
    pub fn quality(&self) -> f64 {
        -self.entropy()
    }

    /// The maximum-a-posteriori observation `o* = argmax_o P(o)`.
    ///
    /// Ties break toward the lowest observation index, deterministically.
    pub fn map_observation(&self) -> Observation {
        let mut best = 0usize;
        let mut best_p = self.probs[0];
        for (o, &p) in self.probs.iter().enumerate().skip(1) {
            if p > best_p {
                best = o;
                best_p = p;
            }
        }
        Observation(best as u32)
    }

    /// Discrete labels from the MAP observation (Equation (20)):
    /// `label(f_i) = o* ⊨ f_i`.
    pub fn map_labels(&self) -> Vec<bool> {
        self.map_observation().to_bools(self.num_facts())
    }

    /// Projects the belief onto an ordered list of facts: returns `q`
    /// with `q[t] = Σ_{o : o|facts = t} P(o)`, a distribution over the
    /// `2^|facts|` restricted interpretations.
    ///
    /// The likelihood of any answer family for query set `facts` depends
    /// on `o` only through this restriction, so entropy and selection
    /// kernels operate on `q` instead of the full belief — the main
    /// performance lever of this implementation (see `DESIGN.md`).
    pub fn project(&self, facts: &[FactId]) -> Vec<f64> {
        use crate::parallel;
        let mut q = vec![0.0; 1 << facts.len()];
        if facts.len() == 1 {
            // Hot single-fact case (greedy candidate scans): avoid the
            // generic bit-gather. Chunked ordered sum, like every other
            // reduction over the 2^n table.
            let bit = 1usize << facts[0].0;
            let p_true = parallel::sum_chunks(self.probs.len(), parallel::CHUNK, |r| {
                let mut acc = 0.0;
                for (j, &p) in self.probs[r.clone()].iter().enumerate() {
                    if (r.start + j) & bit != 0 {
                        acc += p;
                    }
                }
                acc
            });
            q[1] = p_true;
            q[0] = 1.0 - p_true;
            return q;
        }
        // General bit-gather: per-chunk partial histograms merged in
        // chunk order, so every cell's sum has a fixed association.
        let partials = parallel::map_chunks(self.probs.len(), parallel::CHUNK, |r| {
            let mut local = vec![0.0; q.len()];
            for (j, &p) in self.probs[r.clone()].iter().enumerate() {
                let t = Observation((r.start + j) as u32).project(facts) as usize;
                local[t] += p;
            }
            local
        });
        for local in partials {
            for (slot, v) in q.iter_mut().zip(local) {
                *slot += v;
            }
        }
        q
    }

    /// The belief conditioned on a fact's truth value:
    /// `P(o | f = value)`. Useful for counterfactual analysis ("what
    /// would the labels be if f were settled?").
    ///
    /// # Errors
    ///
    /// [`HcError::InvalidProbability`] when the conditioning event has
    /// zero probability.
    pub fn condition_on_fact(&self, fact: FactId, value: bool) -> Result<Belief> {
        let mass = if value {
            self.marginal(fact)
        } else {
            1.0 - self.marginal(fact)
        };
        if mass <= 0.0 {
            return Err(HcError::InvalidProbability(mass));
        }
        let bit = 1usize << fact.0;
        let probs = self
            .probs
            .iter()
            .enumerate()
            .map(|(o, &p)| if (o & bit != 0) == value { p } else { 0.0 })
            .collect();
        let mut out = Belief {
            num_facts: self.num_facts,
            probs,
        };
        out.renormalize()?;
        Ok(out)
    }

    /// Kullback–Leibler divergence `D(self ‖ other)` in nats.
    ///
    /// Returns `f64::INFINITY` when `self` puts mass where `other` has
    /// none (the standard convention). The sum runs over fixed chunk
    /// boundaries with an ordered merge — like `entropy_of` and
    /// [`Belief::total_variation`] — so the value honours the
    /// thread-invariance contract of [`crate::parallel`].
    pub fn kl_divergence(&self, other: &Belief) -> Result<f64> {
        use crate::parallel;
        if other.num_facts != self.num_facts {
            return Err(HcError::DimensionMismatch {
                expected: self.num_facts(),
                actual: other.num_facts(),
            });
        }
        let kl = parallel::sum_chunks(self.probs.len(), parallel::CHUNK, |r| {
            let mut acc = 0.0;
            for (&p, &q) in self.probs[r.clone()].iter().zip(&other.probs[r]) {
                if p == 0.0 {
                    // 0 ln 0 = 0, and 0/0 must not poison the sum.
                    continue;
                }
                // q == 0 with p > 0 yields +inf here, which propagates
                // through the fold to the standard D = ∞ convention.
                acc += p * (p / q).ln();
            }
            acc
        });
        Ok(kl.max(0.0))
    }

    /// Total variation distance `½ Σ_o |P(o) − Q(o)|` ∈ [0, 1].
    ///
    /// Chunked ordered sum: bit-identical at any thread count.
    pub fn total_variation(&self, other: &Belief) -> Result<f64> {
        use crate::parallel;
        if other.num_facts != self.num_facts {
            return Err(HcError::DimensionMismatch {
                expected: self.num_facts(),
                actual: other.num_facts(),
            });
        }
        let sum = parallel::sum_chunks(self.probs.len(), parallel::CHUNK, |r| {
            self.probs[r.clone()]
                .iter()
                .zip(&other.probs[r])
                .map(|(&p, &q)| (p - q).abs())
                .sum::<f64>()
        });
        Ok(0.5 * sum)
    }

    /// Rescales so probabilities sum to exactly one, returning the
    /// pre-normalisation mass that was divided out.
    ///
    /// # Errors
    ///
    /// [`HcError::BeliefCollapsed`] when the mass is zero, negative,
    /// non-finite, or so subnormal that its reciprocal overflows — in
    /// every such case scaling would poison the table with NaN/Inf, so
    /// the belief is left untouched instead. This is a real release-mode
    /// check: the former `debug_assert!(sum > 0.0)` compiled away exactly
    /// in the optimised builds where long near-perfect-expert runs make
    /// underflow most likely.
    pub(crate) fn renormalize(&mut self) -> Result<f64> {
        use crate::parallel;
        // Chunked ordered sum + element-independent scale: the Bayes
        // update's 2^n renormalisation pass, bit-identical for any
        // thread count (see `parallel` module docs).
        let sum = parallel::sum_chunks(self.probs.len(), parallel::CHUNK, |r| {
            self.probs[r].iter().sum::<f64>()
        });
        let inv = 1.0 / sum;
        // A NaN sum yields a NaN (non-finite) inverse, so this also
        // rejects NaN-poisoned mass.
        if sum <= 0.0 || !inv.is_finite() {
            return Err(HcError::BeliefCollapsed { mass: sum });
        }
        parallel::fill_slice(&mut self.probs, parallel::CHUNK, |_, slice| {
            for p in slice {
                *p *= inv;
            }
        });
        Ok(sum)
    }

    /// Mutable access for update kernels inside the crate.
    pub(crate) fn probs_mut(&mut self) -> &mut [f64] {
        &mut self.probs
    }
}

/// A collection of independent per-task beliefs — the belief state of a
/// whole labeled dataset.
///
/// Tasks are probabilistically independent of each other (correlations
/// exist only *within* a task's fact set), so the dataset quality is the
/// sum of per-task qualities and conditional entropies decompose
/// additively across tasks. Checking-task selection still interacts
/// across tasks through the shared size-`k` budget each round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiBelief {
    tasks: Vec<Belief>,
}

impl MultiBelief {
    /// Wraps per-task beliefs.
    pub fn new(tasks: Vec<Belief>) -> Self {
        MultiBelief { tasks }
    }

    /// The per-task beliefs.
    #[inline]
    pub fn tasks(&self) -> &[Belief] {
        &self.tasks
    }

    /// Mutable per-task beliefs (used by the HC loop's update step).
    #[inline]
    pub fn tasks_mut(&mut self) -> &mut [Belief] {
        &mut self.tasks
    }

    /// Number of tasks.
    #[inline]
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether there are no tasks.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Total number of facts across all tasks (the global query space
    /// size `N`).
    pub fn total_facts(&self) -> usize {
        self.tasks.iter().map(|b| b.num_facts()).sum()
    }

    /// Dataset quality: the sum of per-task qualities, as in §IV-C
    /// ("the quality values of the data instances are simply summarized").
    pub fn quality(&self) -> f64 {
        self.tasks.iter().map(|b| b.quality()).sum()
    }

    /// Dataset entropy `Σ_t H(O_t)`.
    pub fn entropy(&self) -> f64 {
        self.tasks.iter().map(|b| b.entropy()).sum()
    }

    /// MAP labels for every task, flattened in (task, fact) order.
    pub fn map_labels(&self) -> Vec<Vec<bool>> {
        self.tasks.iter().map(|b| b.map_labels()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The running example of Table I in the paper.
    pub(crate) fn table_i_belief() -> Belief {
        // Bit order: f1 -> bit0, f2 -> bit1, f3 -> bit2.
        // o1=000, o2=001, o3=010, o4=011, o5=100, o6=101, o7=110, o8=111
        Belief::from_probs(vec![0.09, 0.11, 0.10, 0.20, 0.08, 0.09, 0.15, 0.18]).unwrap()
    }

    #[test]
    fn table_i_marginals_match_paper_eq_4() {
        let b = table_i_belief();
        assert!((b.marginal(FactId(0)) - 0.58).abs() < 1e-12, "P(f1)");
        assert!((b.marginal(FactId(1)) - 0.63).abs() < 1e-12, "P(f2)");
        assert!((b.marginal(FactId(2)) - 0.50).abs() < 1e-12, "P(f3)");
    }

    #[test]
    fn table_i_facts_are_correlated() {
        // The paper notes Π P(¬f_i) = 0.0777… ≠ P(o1) = 0.09.
        let b = table_i_belief();
        let product: f64 = (0..3)
            .map(|i| 1.0 - b.marginal(FactId(i)))
            .product();
        assert!((product - b.prob(Observation(0))).abs() > 1e-3);
    }

    #[test]
    fn uniform_has_max_entropy() {
        let b = Belief::uniform(4).unwrap();
        assert!((b.entropy() - 4.0 * std::f64::consts::LN_2).abs() < 1e-12);
        assert!((b.quality() + 4.0 * std::f64::consts::LN_2).abs() < 1e-12);
    }

    #[test]
    fn point_mass_has_zero_entropy() {
        let b = Belief::point_mass(3, Observation(5)).unwrap();
        assert_eq!(b.entropy(), 0.0);
        assert_eq!(b.map_observation(), Observation(5));
        assert_eq!(b.map_labels(), vec![true, false, true]);
    }

    #[test]
    fn from_probs_validates() {
        assert!(matches!(
            Belief::from_probs(vec![0.5, 0.3]),
            Err(HcError::NotNormalized { .. })
        ));
        assert!(matches!(
            Belief::from_probs(vec![0.5, 0.2, 0.3]),
            Err(HcError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            Belief::from_probs(vec![1.5, -0.5]),
            Err(HcError::InvalidProbability(_))
        ));
        assert!(Belief::from_probs(vec![]).is_err());
    }

    #[test]
    fn from_marginals_builds_product_distribution() {
        let b = Belief::from_marginals(&[0.6, 0.9]).unwrap();
        // P(00)=0.4*0.1, P(01)=0.6*0.1, P(10)=0.4*0.9, P(11)=0.6*0.9
        assert!((b.prob(Observation(0)) - 0.04).abs() < 1e-9);
        assert!((b.prob(Observation(1)) - 0.06).abs() < 1e-9);
        assert!((b.prob(Observation(2)) - 0.36).abs() < 1e-9);
        assert!((b.prob(Observation(3)) - 0.54).abs() < 1e-9);
    }

    #[test]
    fn from_marginals_clamps_extremes() {
        let b = Belief::from_marginals(&[1.0, 0.0]).unwrap();
        // No observation may be exactly zero after clamping.
        assert!(b.probs().iter().all(|&p| p > 0.0));
        // But the MAP is still the obvious one: f0 true, f1 false.
        assert_eq!(b.map_labels(), vec![true, false]);
    }

    #[test]
    fn projection_preserves_mass_and_marginals() {
        let b = table_i_belief();
        let q = b.project(&[FactId(2), FactId(0)]);
        assert_eq!(q.len(), 4);
        assert!((q.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // Marginal of f3 (= first projected bit) from q.
        let p_f3 = q[0b01] + q[0b11];
        assert!((p_f3 - b.marginal(FactId(2))).abs() < 1e-12);
        let p_f1 = q[0b10] + q[0b11];
        assert!((p_f1 - b.marginal(FactId(0))).abs() < 1e-12);
    }

    #[test]
    fn single_fact_projection_fast_path_matches_marginal() {
        let b = table_i_belief();
        for i in 0..3 {
            let q = b.project(&[FactId(i)]);
            assert!((q[1] - b.marginal(FactId(i))).abs() < 1e-12);
            assert!((q[0] + q[1] - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_projection_is_total_mass() {
        let b = table_i_belief();
        let q = b.project(&[]);
        assert_eq!(q.len(), 1);
        assert!((q[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn multi_belief_quality_sums() {
        let a = Belief::uniform(2).unwrap();
        let b = Belief::point_mass(2, Observation(1)).unwrap();
        let mb = MultiBelief::new(vec![a.clone(), b]);
        assert!((mb.quality() - a.quality()).abs() < 1e-12);
        assert_eq!(mb.total_facts(), 4);
        assert_eq!(mb.len(), 2);
    }

    #[test]
    fn map_tie_breaks_deterministically() {
        let b = Belief::uniform(2).unwrap();
        assert_eq!(b.map_observation(), Observation(0));
    }

    #[test]
    fn too_many_facts_rejected() {
        assert!(matches!(
            Belief::uniform(MAX_FACTS + 1),
            Err(HcError::TooManyFacts(_))
        ));
    }

    #[test]
    fn conditioning_fixes_the_fact_and_renormalises() {
        let b = table_i_belief();
        let cond = b.condition_on_fact(FactId(0), true).unwrap();
        assert!((cond.marginal(FactId(0)) - 1.0).abs() < 1e-12);
        assert!((cond.probs().iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // Conditional of f2 given f1: P(f2, f1) / P(f1) = 0.38 / 0.58.
        assert!((cond.marginal(FactId(1)) - 0.38 / 0.58).abs() < 1e-9);
    }

    #[test]
    fn conditioning_on_impossible_event_errors() {
        let b = Belief::point_mass(2, Observation(0b01)).unwrap();
        assert!(b.condition_on_fact(FactId(0), false).is_err());
        assert!(b.condition_on_fact(FactId(0), true).is_ok());
    }

    #[test]
    fn kl_divergence_properties() {
        let b = table_i_belief();
        assert!(b.kl_divergence(&b).unwrap().abs() < 1e-12);
        let u = Belief::uniform(3).unwrap();
        let kl = b.kl_divergence(&u).unwrap();
        assert!(kl > 0.0);
        // D(b || uniform) = log|O| - H(b).
        assert!((kl - (8f64.ln() - b.entropy())).abs() < 1e-9);
        // Infinite when the support mismatches.
        let point = Belief::point_mass(3, Observation(0)).unwrap();
        assert_eq!(b.kl_divergence(&point).unwrap(), f64::INFINITY);
        // Dimension check.
        assert!(b.kl_divergence(&Belief::uniform(2).unwrap()).is_err());
    }

    #[test]
    fn total_variation_properties() {
        let b = table_i_belief();
        assert_eq!(b.total_variation(&b).unwrap(), 0.0);
        let point0 = Belief::point_mass(2, Observation(0)).unwrap();
        let point3 = Belief::point_mass(2, Observation(3)).unwrap();
        assert!((point0.total_variation(&point3).unwrap() - 1.0).abs() < 1e-12);
        assert!(b.total_variation(&Belief::uniform(2).unwrap()).is_err());
    }

    #[test]
    fn from_marginals_counts_clamps() {
        let (b, count) = Belief::from_marginals_counted(&[1.0, 0.0, 0.5]).unwrap();
        assert_eq!(count, 2, "both extreme marginals must be reported");
        assert!(b.probs().iter().all(|&p| p > 0.0));
        let (_, clean) = Belief::from_marginals_counted(&[0.3, 0.7]).unwrap();
        assert_eq!(clean, 0, "interior marginals are untouched");
    }

    /// A deterministic non-uniform belief large enough to span several
    /// `parallel::CHUNK` chunks.
    fn big_belief(seed: u64) -> Belief {
        let len = 1usize << 13;
        let raw: Vec<f64> = (0..len as u64)
            .map(|i| ((i.wrapping_mul(seed) % 97) + 1) as f64)
            .collect();
        let sum: f64 = raw.iter().sum();
        Belief::from_probs(raw.into_iter().map(|p| p / sum).collect()).unwrap()
    }

    #[test]
    fn kl_and_tv_are_thread_invariant_across_chunks() {
        use crate::parallel::{self, Parallelism};
        let a = big_belief(31);
        let b = big_belief(57);
        let run = |parallelism| {
            let _guard = parallel::scoped(parallelism);
            (
                a.kl_divergence(&b).unwrap().to_bits(),
                a.total_variation(&b).unwrap().to_bits(),
            )
        };
        let serial = run(Parallelism::Serial);
        assert_eq!(serial, run(Parallelism::Threads(2)), "1 vs 2 threads");
        assert_eq!(serial, run(Parallelism::Threads(8)), "1 vs 8 threads");
        // And the self-distances stay exactly degenerate.
        assert!(a.kl_divergence(&a).unwrap().abs() < 1e-12);
        assert_eq!(a.total_variation(&a).unwrap(), 0.0);
    }

    #[test]
    fn kl_divergence_is_infinite_on_support_mismatch_in_any_chunk() {
        // Zero `other`-cell deep inside a later chunk: the +inf term must
        // survive the chunked merge.
        let a = big_belief(11);
        let mut probs = big_belief(13).probs().to_vec();
        let dead = probs.len() - 7;
        let spread = probs[dead] / (probs.len() - 1) as f64;
        probs[dead] = 0.0;
        for (i, p) in probs.iter_mut().enumerate() {
            if i != dead {
                *p += spread;
            }
        }
        let b = Belief::from_probs(probs).unwrap();
        assert_eq!(a.kl_divergence(&b).unwrap(), f64::INFINITY);
    }

    #[test]
    fn renormalize_reports_collapse_instead_of_dividing_by_zero() {
        // All-zero mass: the release-mode path must error, not divide.
        let mut dead = Belief {
            num_facts: 2,
            probs: vec![0.0; 4],
        };
        assert!(matches!(
            dead.renormalize(),
            Err(HcError::BeliefCollapsed { mass }) if mass == 0.0
        ));
        assert!(dead.probs().iter().all(|&p| p == 0.0), "left untouched");

        // Subnormal mass whose reciprocal overflows: also a collapse.
        let mut tiny = Belief {
            num_facts: 2,
            probs: vec![1e-320; 4],
        };
        assert!(matches!(
            tiny.renormalize(),
            Err(HcError::BeliefCollapsed { .. })
        ));

        // A healthy table reports the divided-out mass.
        let mut ok = Belief {
            num_facts: 1,
            probs: vec![1.0, 3.0],
        };
        assert_eq!(ok.renormalize().unwrap(), 4.0);
        assert_eq!(ok.probs(), &[0.25, 0.75]);
    }
}
