//! The belief state: a joint probability distribution over all
//! observations of a task's fact set (§II-A).
//!
//! A belief assigns `P(o)` to every observation `o ∈ O`; it is the
//! framework's entire knowledge about the uncertain labels, including all
//! correlations between the facts. Data quality is measured as the
//! negative Shannon entropy of this distribution (Definition 2):
//! `Q(F) = -H(O) = Σ_o P(o) ln P(o)` — higher is better, with 0 the
//! maximum (a point mass).
//!
//! Three representations live behind the same [`Belief`] API:
//!
//! * **Dense** — a `Vec<f64>` of length `2^n`, the exact reference
//!   engine and the differential oracle for the other two. Capped at
//!   [`MAX_FACTS`] facts.
//! * **Sparse** — a support set of `(pattern, prob)` pairs. Patterns
//!   whose posterior falls below [`PROB_FLOOR`] are dropped after each
//!   Bayes update; the lost mass is accumulated into a certified
//!   truncation-error bound ([`Belief::truncation_bound`], a total
//!   variation bound against the exact dense posterior). Capped at
//!   [`SPARSE_MAX_FACTS`] facts.
//! * **Factored** — a product of small dense joints over contiguous
//!   fact blocks, exact when the blocks are probabilistically
//!   independent (block-diagonal correlation structure).
//!
//! While a sparse belief's support is still the complete untouched
//! `2^n` layout (nothing ever pruned), every kernel runs over the same
//! values in the same `parallel::CHUNK` boundaries as the dense engine,
//! so results are **bit-identical** to dense. Once cells have been
//! pruned, posteriors agree with dense within the reported truncation
//! bound (plus ULP-scale float noise from the changed summation
//! layout).

use crate::error::{HcError, Result};
use crate::fact::FactId;
use crate::observation::{project_pattern, Observation, ObservationSpace};
use crate::parallel;
use serde::{Deserialize, Serialize};

/// Maximum number of facts per task for the dense belief representation.
///
/// A belief over `n` facts stores `2^n` probabilities; 26 facts is a
/// 512 MiB vector and the practical ceiling. The paper's workloads use 5
/// facts per task (§IV-A) and >20 facts for the efficiency study
/// (Table III), both comfortably inside the limit. Sparse and factored
/// beliefs go up to [`SPARSE_MAX_FACTS`]; this constant now only bounds
/// the dense oracle.
pub const MAX_FACTS: usize = 26;

/// Maximum number of facts for the sparse and factored representations.
///
/// 64 so a whole observation pattern fits one `u64`. The binding
/// constraint for sparse beliefs is the support cap, not the pattern
/// width; for factored beliefs it is the per-block dense limit.
pub const SPARSE_MAX_FACTS: usize = 64;

/// Default support-set cap used when a sparse belief is built
/// automatically (init paths for groups beyond [`MAX_FACTS`]).
///
/// `2^16` cells ≈ 1 MiB — large enough that product-form priors over 40
/// facts keep ≥ 1 − 1e-3 of their mass for realistic vote fractions,
/// small enough that every kernel is ~1000× cheaper than a 40-fact
/// dense table would be.
pub const DEFAULT_SPARSE_SUPPORT: usize = 1 << 16;

/// Tolerance used when validating that probability vectors sum to one.
pub const NORMALIZATION_TOLERANCE: f64 = 1e-6;

/// The floor applied when a probability must be kept away from exactly
/// zero (or one) for numerical reasons.
///
/// One constant for the whole crate: [`Belief::from_marginals`] clamps
/// CP vote fractions into `[PROB_FLOOR, 1 − PROB_FLOOR]` so no
/// observation starts with an unrevivable zero prior, and
/// [`crate::metrics::log_loss`] clamps predictions by the same amount so
/// a confidently-wrong label costs `−ln(PROB_FLOOR) ≈ 20.7` nats instead
/// of infinity. `1e-9` is far below any probability the crowd model can
/// produce honestly (even a `1 − 1e-12`-accurate expert moves posteriors
/// by factors of ~`1e12` per answer, many orders above the floor) while
/// staying far above the `f64` underflow threshold. Clamp *counts* are
/// surfaced rather than silent: [`Belief::from_marginals_counted`]
/// reports how many marginals were floored, and the update path reports
/// flushed multiplier cells through `UpdateHealth` / the
/// `NumericalHealth` telemetry event. The sparse representation reuses
/// the same constant as its post-update prune threshold.
pub const PROB_FLOOR: f64 = 1e-9;

/// A sparse support-set posterior: only the patterns carrying mass.
///
/// `patterns` is strictly increasing; `probs[i]` is the probability of
/// `patterns[i]`. Parallel vectors (not pairs) so reductions run over a
/// plain `&[f64]` with exactly the same chunking as the dense engine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SparseBelief {
    pub(crate) patterns: Vec<u64>,
    pub(crate) probs: Vec<f64>,
    /// Certified upper bound on the total-variation distance between
    /// this belief and the exact (dense) posterior, accumulated across
    /// construction truncation and per-update pruning. `0.0` until the
    /// first cell is dropped.
    pub(crate) truncation_bound: f64,
}

impl SparseBelief {
    /// The support patterns, strictly increasing.
    #[inline]
    pub fn patterns(&self) -> &[u64] {
        &self.patterns
    }

    /// Probabilities aligned with [`SparseBelief::patterns`].
    #[inline]
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// Number of support cells.
    #[inline]
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// Whether the support is empty (never true for a valid belief).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }

    /// The certified truncation bound (TV distance vs the exact
    /// posterior).
    #[inline]
    pub fn truncation_bound(&self) -> f64 {
        self.truncation_bound
    }

    /// Probability of one pattern (binary search; 0 outside support).
    pub fn prob_pattern(&self, pattern: u64) -> f64 {
        match self.patterns.binary_search(&pattern) {
            Ok(i) => self.probs[i],
            Err(_) => 0.0,
        }
    }
}

/// A product of small dense joints over contiguous fact blocks.
///
/// Block `i` covers facts `[offset_i, offset_i + n_i)` where
/// `offset_i = Σ_{j<i} n_j`. Exact when the blocks are independent;
/// every per-block table is a dense [`Belief`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FactoredBelief {
    pub(crate) blocks: Vec<Belief>,
}

impl FactoredBelief {
    /// The per-block dense beliefs, lowest fact bits first.
    #[inline]
    pub fn blocks(&self) -> &[Belief] {
        &self.blocks
    }

    /// Locates a global fact: `(block index, fact offset of that
    /// block, fact id local to the block)`.
    pub(crate) fn block_of(&self, fact: FactId) -> (usize, usize, FactId) {
        let mut offset = 0usize;
        for (i, b) in self.blocks.iter().enumerate() {
            let n = b.num_facts();
            let f = fact.0 as usize;
            if f < offset + n {
                return (i, offset, FactId((f - offset) as u32));
            }
            offset += n;
        }
        panic!(
            "fact {} out of range for a {}-fact factored belief",
            fact.0, offset
        );
    }
}

/// The storage behind a [`Belief`] — see the module docs for the three
/// representations and their contracts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum BeliefRepr {
    /// The exact `2^n` table; the differential oracle.
    Dense(Vec<f64>),
    /// Support-set posterior with a certified truncation bound.
    Sparse(SparseBelief),
    /// Product of independent dense blocks.
    Factored(FactoredBelief),
}

/// A joint distribution `P(O)` over the observations of one task.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Belief {
    num_facts: u8,
    repr: BeliefRepr,
}

/// Chunked ordered sum + element-independent scale: the shared
/// renormalisation pass over any probability slice, bit-identical for
/// any thread count (see `parallel` module docs).
fn renormalize_slice(probs: &mut [f64]) -> Result<f64> {
    let sum = parallel::sum_chunks(probs.len(), parallel::CHUNK, |r| {
        probs[r].iter().sum::<f64>()
    });
    let inv = 1.0 / sum;
    // A NaN sum yields a NaN (non-finite) inverse, so this also
    // rejects NaN-poisoned mass.
    if sum <= 0.0 || !inv.is_finite() {
        return Err(HcError::BeliefCollapsed { mass: sum });
    }
    parallel::fill_slice(probs, parallel::CHUNK, |_, slice| {
        for p in slice {
            *p *= inv;
        }
    });
    Ok(sum)
}

impl Belief {
    /// The uniform belief over `num_facts` facts — total ignorance, used
    /// by the NO-HC baseline of §IV-C(5).
    pub fn uniform(num_facts: usize) -> Result<Self> {
        Self::check_num_facts(num_facts)?;
        let len = 1usize << num_facts;
        Ok(Belief {
            num_facts: num_facts as u8,
            repr: BeliefRepr::Dense(vec![1.0 / len as f64; len]),
        })
    }

    /// A belief from explicit observation probabilities (index `o` holds
    /// `P(o)`).
    ///
    /// The vector is validated (finite, non-negative, summing to one
    /// within [`NORMALIZATION_TOLERANCE`]) and then renormalised exactly.
    ///
    /// # Errors
    ///
    /// [`HcError::DimensionMismatch`] when `probs.len()` is not a power of
    /// two matching a fact count; [`HcError::InvalidProbability`] /
    /// [`HcError::NotNormalized`] for bad contents.
    pub fn from_probs(probs: Vec<f64>) -> Result<Self> {
        let len = probs.len();
        if len == 0 || !len.is_power_of_two() {
            return Err(HcError::DimensionMismatch {
                expected: len.next_power_of_two().max(1),
                actual: len,
            });
        }
        let num_facts = len.trailing_zeros() as usize;
        Self::check_num_facts(num_facts)?;
        let mut sum = 0.0;
        for &p in &probs {
            if !p.is_finite() || p < 0.0 {
                return Err(HcError::InvalidProbability(p));
            }
            sum += p;
        }
        if (sum - 1.0).abs() > NORMALIZATION_TOLERANCE {
            return Err(HcError::NotNormalized { sum });
        }
        let mut belief = Belief {
            num_facts: num_facts as u8,
            repr: BeliefRepr::Dense(probs),
        };
        belief.renormalize()?;
        Ok(belief)
    }

    /// A product-form belief from independent per-fact marginals:
    /// `P(o) = Π_i ob(o, f_i)` with `ob` the marginal of `f_i` (true) or
    /// its complement (false). This is exactly the initialisation of
    /// Equation (15) when the marginals are CP vote fractions.
    ///
    /// Marginals are clamped into `[ε, 1-ε]` (`ε =` [`PROB_FLOOR`]) so
    /// that no observation starts with exactly zero probability — a zero
    /// prior can never be revived by Bayes updates even if every expert
    /// contradicts it, which would make the checking loop brittle against
    /// unanimous CP mistakes.
    pub fn from_marginals(marginals: &[f64]) -> Result<Self> {
        Self::from_marginals_counted(marginals).map(|(belief, _)| belief)
    }

    /// Like [`Belief::from_marginals`], but additionally reports how many
    /// marginals had to be clamped away from an exact 0 or 1 — clamping
    /// is a lossy numerical intervention and callers that care about run
    /// health (e.g. the init path feeding `NumericalHealth` telemetry)
    /// should not have it happen silently.
    pub fn from_marginals_counted(marginals: &[f64]) -> Result<(Self, usize)> {
        Self::check_num_facts(marginals.len())?;
        let (clamped, clamp_count) = Self::clamp_marginals(marginals)?;
        let len = 1usize << marginals.len();
        let mut probs = Vec::with_capacity(len);
        for o in 0..len as u32 {
            let mut p = 1.0;
            for (i, &m) in clamped.iter().enumerate() {
                p *= if (o >> i) & 1 == 1 { m } else { 1.0 - m };
            }
            probs.push(p);
        }
        let mut belief = Belief {
            num_facts: marginals.len() as u8,
            repr: BeliefRepr::Dense(probs),
        };
        belief.renormalize()?;
        Ok((belief, clamp_count))
    }

    /// Validates marginals and clamps them into
    /// `[PROB_FLOOR, 1 − PROB_FLOOR]`, reporting the clamp count.
    fn clamp_marginals(marginals: &[f64]) -> Result<(Vec<f64>, usize)> {
        if marginals.is_empty() {
            return Err(HcError::EmptyFactSet);
        }
        let mut clamp_count = 0usize;
        let mut clamped = Vec::with_capacity(marginals.len());
        for &m in marginals {
            if !m.is_finite() || !(0.0..=1.0).contains(&m) {
                return Err(HcError::InvalidProbability(m));
            }
            let c = m.clamp(PROB_FLOOR, 1.0 - PROB_FLOOR);
            if c != m {
                clamp_count += 1;
            }
            clamped.push(c);
        }
        Ok((clamped, clamp_count))
    }

    /// A sparse product-form belief from per-fact marginals, keeping at
    /// most `max_support` of the highest-probability patterns.
    ///
    /// Uses a best-first enumeration of the product distribution (each
    /// heap pop yields the next most probable pattern), so the kept set
    /// is exactly the top-`max_support` patterns, deterministically
    /// (ties break toward the lower pattern). Probabilities are
    /// recomputed from the pattern with the same factor order as
    /// [`Belief::from_marginals`], and when the full `2^n` support fits
    /// under the cap the result is **bit-identical** to the dense
    /// construction (with truncation bound `0.0`). Otherwise the kept
    /// mass is renormalised and `1 − kept_mass` becomes the initial
    /// certified truncation bound.
    ///
    /// # Errors
    ///
    /// [`HcError::TooManyFacts`] above [`SPARSE_MAX_FACTS`];
    /// [`HcError::EmptyFactSet`] / [`HcError::InvalidProbability`] as in
    /// the dense constructor.
    pub fn sparse_from_marginals(marginals: &[f64], max_support: usize) -> Result<Self> {
        let n = marginals.len();
        if n > SPARSE_MAX_FACTS {
            return Err(HcError::TooManyFacts(n));
        }
        let (clamped, _) = Self::clamp_marginals(marginals)?;
        let cap = max_support.max(1);
        // Exact probability of a pattern, multiplying factors in the
        // same (fact-index) order as the dense constructor so the
        // full-support case reproduces its bits.
        let prob_of = |pattern: u64| -> f64 {
            let mut p = 1.0;
            for (i, &m) in clamped.iter().enumerate() {
                p *= if (pattern >> i) & 1 == 1 { m } else { 1.0 - m };
            }
            p
        };

        let complete = n < 64 && (1u64 << n) <= cap as u64;
        let (patterns, mut probs) = if complete {
            let len = 1u64 << n;
            let patterns: Vec<u64> = (0..len).collect();
            let probs: Vec<f64> = (0..len).map(prob_of).collect();
            (patterns, probs)
        } else {
            Self::top_patterns_of_product(&clamped, &prob_of, cap)
        };

        let kept_sum = renormalize_slice(&mut probs)?;
        let truncation_bound = if complete {
            0.0
        } else {
            (1.0 - kept_sum).clamp(0.0, 1.0)
        };
        Ok(Belief {
            num_facts: n as u8,
            repr: BeliefRepr::Sparse(SparseBelief {
                patterns,
                probs,
                truncation_bound,
            }),
        })
    }

    /// Best-first (Lawler-style two-children) enumeration of the top
    /// `cap` patterns of a product distribution, returned sorted by
    /// pattern ascending.
    fn top_patterns_of_product(
        clamped: &[f64],
        prob_of: &dyn Fn(u64) -> f64,
        cap: usize,
    ) -> (Vec<u64>, Vec<f64>) {
        use std::cmp::Ordering;
        use std::collections::BinaryHeap;
        let n = clamped.len();
        // Facts sorted by descending flip cost ratio
        // r_i = min(m, 1-m) / max(m, 1-m): flipping the fact with the
        // highest ratio loses the least probability.
        let mut order: Vec<usize> = (0..n).collect();
        let ratio = |i: usize| {
            let m = clamped[i];
            m.min(1.0 - m) / m.max(1.0 - m)
        };
        order.sort_by(|&a, &b| ratio(b).total_cmp(&ratio(a)).then(a.cmp(&b)));
        // The single most probable pattern: each fact at its likelier
        // value.
        let mut top = 0u64;
        for (i, &m) in clamped.iter().enumerate() {
            if m > 0.5 {
                top |= 1u64 << i;
            }
        }

        /// Heap entry: a pattern whose flipped set (relative to the top
        /// pattern, in sorted-fact order) ends at sorted index `last`.
        struct Cand {
            prob: f64,
            pattern: u64,
            /// Highest flipped sorted index, or `usize::MAX` for the
            /// unflipped top pattern.
            last: usize,
        }
        impl PartialEq for Cand {
            fn eq(&self, other: &Self) -> bool {
                self.cmp_key(other) == Ordering::Equal
            }
        }
        impl Eq for Cand {}
        impl Cand {
            fn cmp_key(&self, other: &Self) -> Ordering {
                // Max-heap: higher probability first; ties toward the
                // smaller pattern for determinism.
                self.prob
                    .total_cmp(&other.prob)
                    .then(other.pattern.cmp(&self.pattern))
            }
        }
        impl PartialOrd for Cand {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp_key(other))
            }
        }
        impl Ord for Cand {
            fn cmp(&self, other: &Self) -> Ordering {
                self.cmp_key(other)
            }
        }

        let mut heap = BinaryHeap::new();
        heap.push(Cand {
            prob: prob_of(top),
            pattern: top,
            last: usize::MAX,
        });
        let mut pairs: Vec<(u64, f64)> = Vec::with_capacity(cap);
        while pairs.len() < cap {
            let Some(c) = heap.pop() else { break };
            pairs.push((c.pattern, c.prob));
            // Two children keep the enumeration complete and
            // duplicate-free: extend the flipped set with the next
            // sorted index, or slide its last element one right.
            let next = c.last.wrapping_add(1); // MAX wraps to 0
            if next < n {
                let extended = c.pattern ^ (1u64 << order[next]);
                heap.push(Cand {
                    prob: prob_of(extended),
                    pattern: extended,
                    last: next,
                });
                if c.last != usize::MAX {
                    let slid = c.pattern ^ (1u64 << order[c.last]) ^ (1u64 << order[next]);
                    heap.push(Cand {
                        prob: prob_of(slid),
                        pattern: slid,
                        last: next,
                    });
                }
            }
        }
        pairs.sort_by_key(|&(pattern, _)| pattern);
        pairs.into_iter().unzip()
    }

    /// A factored belief: the product of independent `blocks`, block 0
    /// covering the lowest fact indices. Exact when the blocks really
    /// are independent.
    ///
    /// Sparse blocks are densified and nested factored blocks are
    /// flattened, so every stored block is dense.
    ///
    /// # Errors
    ///
    /// [`HcError::EmptyFactSet`] with no blocks;
    /// [`HcError::TooManyFacts`] when the total exceeds
    /// [`SPARSE_MAX_FACTS`] (or a non-dense block exceeds the dense
    /// per-block limit).
    pub fn factored(blocks: Vec<Belief>) -> Result<Self> {
        if blocks.is_empty() {
            return Err(HcError::EmptyFactSet);
        }
        let mut flat = Vec::with_capacity(blocks.len());
        for b in blocks {
            match b.repr {
                BeliefRepr::Dense(_) => flat.push(b),
                BeliefRepr::Sparse(_) => flat.push(b.to_dense()?),
                BeliefRepr::Factored(f) => flat.extend(f.blocks),
            }
        }
        let total: usize = flat.iter().map(|b| b.num_facts()).sum();
        if total > SPARSE_MAX_FACTS {
            return Err(HcError::TooManyFacts(total));
        }
        Ok(Belief {
            num_facts: total as u8,
            repr: BeliefRepr::Factored(FactoredBelief { blocks: flat }),
        })
    }

    /// A point-mass belief on a single observation (useful in tests and
    /// for oracle comparisons).
    pub fn point_mass(num_facts: usize, observation: Observation) -> Result<Self> {
        Self::check_num_facts(num_facts)?;
        let len = 1usize << num_facts;
        let idx = observation.0 as usize;
        if idx >= len {
            return Err(HcError::DimensionMismatch {
                expected: len,
                actual: idx,
            });
        }
        let mut probs = vec![0.0; len];
        probs[idx] = 1.0;
        Ok(Belief {
            num_facts: num_facts as u8,
            repr: BeliefRepr::Dense(probs),
        })
    }

    /// Reconstructs a dense belief from checkpointed probabilities
    /// *without* renormalising, so a save/restore round trip is
    /// bit-exact.
    ///
    /// [`Belief::from_probs`] divides by the validated sum, which is not
    /// idempotent at the ULP level (a vector whose sum is `1.0 - 1e-16`
    /// changes bits when renormalised again); the checkpoint path
    /// validates the same invariants but trusts the stored bits, which
    /// were normalised when the belief was first built.
    ///
    /// # Errors
    ///
    /// The same validation errors as [`Belief::from_probs`].
    pub(crate) fn from_checkpoint_probs(probs: Vec<f64>) -> Result<Self> {
        let len = probs.len();
        if len == 0 || !len.is_power_of_two() {
            return Err(HcError::DimensionMismatch {
                expected: len.next_power_of_two().max(1),
                actual: len,
            });
        }
        let num_facts = len.trailing_zeros() as usize;
        Self::check_num_facts(num_facts)?;
        let mut sum = 0.0;
        for &p in &probs {
            if !p.is_finite() || p < 0.0 {
                return Err(HcError::InvalidProbability(p));
            }
            sum += p;
        }
        if (sum - 1.0).abs() > NORMALIZATION_TOLERANCE {
            return Err(HcError::NotNormalized { sum });
        }
        Ok(Belief {
            num_facts: num_facts as u8,
            repr: BeliefRepr::Dense(probs),
        })
    }

    /// Reconstructs a sparse belief from checkpointed support *without*
    /// renormalising (bit-exact restore), validating every invariant the
    /// update kernels rely on.
    pub(crate) fn sparse_from_checkpoint(
        num_facts: usize,
        patterns: Vec<u64>,
        probs: Vec<f64>,
        truncation_bound: f64,
    ) -> Result<Self> {
        if num_facts == 0 || num_facts > SPARSE_MAX_FACTS {
            return Err(HcError::TooManyFacts(num_facts));
        }
        if patterns.len() != probs.len() || patterns.is_empty() {
            return Err(HcError::DimensionMismatch {
                expected: patterns.len().max(1),
                actual: probs.len(),
            });
        }
        let mut sum = 0.0;
        for (i, (&pat, &p)) in patterns.iter().zip(&probs).enumerate() {
            if i > 0 && pat <= patterns[i - 1] {
                return Err(HcError::InvalidCheckpoint {
                    reason: format!("sparse support not strictly increasing at index {i}"),
                });
            }
            if num_facts < 64 && pat >= (1u64 << num_facts) {
                return Err(HcError::InvalidCheckpoint {
                    reason: format!("pattern {pat} out of range for {num_facts} facts"),
                });
            }
            if !p.is_finite() || p < 0.0 {
                return Err(HcError::InvalidProbability(p));
            }
            sum += p;
        }
        if (sum - 1.0).abs() > NORMALIZATION_TOLERANCE {
            return Err(HcError::NotNormalized { sum });
        }
        if !truncation_bound.is_finite() || !(0.0..=1.0).contains(&truncation_bound) {
            return Err(HcError::InvalidCheckpoint {
                reason: format!("truncation bound {truncation_bound} outside [0, 1]"),
            });
        }
        Ok(Belief {
            num_facts: num_facts as u8,
            repr: BeliefRepr::Sparse(SparseBelief {
                patterns,
                probs,
                truncation_bound,
            }),
        })
    }

    /// Reconstructs a factored belief from checkpointed dense blocks
    /// *without* renormalising.
    pub(crate) fn factored_from_checkpoint(blocks: Vec<Belief>) -> Result<Self> {
        if blocks.is_empty() {
            return Err(HcError::EmptyFactSet);
        }
        for b in &blocks {
            if !b.is_dense() {
                return Err(HcError::InvalidCheckpoint {
                    reason: "factored belief blocks must be dense".into(),
                });
            }
        }
        let total: usize = blocks.iter().map(|b| b.num_facts()).sum();
        if total > SPARSE_MAX_FACTS {
            return Err(HcError::TooManyFacts(total));
        }
        Ok(Belief {
            num_facts: total as u8,
            repr: BeliefRepr::Factored(FactoredBelief { blocks }),
        })
    }

    fn check_num_facts(num_facts: usize) -> Result<()> {
        if num_facts > MAX_FACTS {
            return Err(HcError::TooManyFacts(num_facts));
        }
        Ok(())
    }

    /// Number of facts `n`.
    #[inline]
    pub fn num_facts(&self) -> usize {
        self.num_facts as usize
    }

    /// The observation space this belief ranges over. Only meaningful
    /// for fact counts within the dense limit.
    #[inline]
    pub fn space(&self) -> ObservationSpace {
        ObservationSpace::new(self.num_facts())
    }

    /// The representation behind this belief.
    #[inline]
    pub fn repr(&self) -> &BeliefRepr {
        &self.repr
    }

    /// Mutable representation access for update kernels in this crate.
    #[inline]
    pub(crate) fn repr_mut(&mut self) -> &mut BeliefRepr {
        &mut self.repr
    }

    /// `"dense"`, `"sparse"` or `"factored"`.
    pub fn repr_name(&self) -> &'static str {
        match &self.repr {
            BeliefRepr::Dense(_) => "dense",
            BeliefRepr::Sparse(_) => "sparse",
            BeliefRepr::Factored(_) => "factored",
        }
    }

    /// Whether this belief is dense.
    #[inline]
    pub fn is_dense(&self) -> bool {
        matches!(self.repr, BeliefRepr::Dense(_))
    }

    /// Whether this belief is sparse.
    #[inline]
    pub fn is_sparse(&self) -> bool {
        matches!(self.repr, BeliefRepr::Sparse(_))
    }

    /// Whether this belief is factored.
    #[inline]
    pub fn is_factored(&self) -> bool {
        matches!(self.repr, BeliefRepr::Factored(_))
    }

    /// Number of stored probability cells (`2^n` dense, the support
    /// size when sparse, the sum of block table sizes when factored).
    pub fn support_len(&self) -> usize {
        match &self.repr {
            BeliefRepr::Dense(probs) => probs.len(),
            BeliefRepr::Sparse(s) => s.len(),
            BeliefRepr::Factored(f) => f.blocks.iter().map(|b| b.support_len()).sum(),
        }
    }

    /// Certified truncation bound: an upper bound on the total-variation
    /// distance to the exact posterior the dense engine would hold.
    /// Always `0.0` for dense and factored beliefs (factored error is a
    /// modelling assumption, not a truncation).
    pub fn truncation_bound(&self) -> f64 {
        match &self.repr {
            BeliefRepr::Sparse(s) => s.truncation_bound,
            _ => 0.0,
        }
    }

    /// `P(o)` for every observation, in index order.
    ///
    /// # Panics
    ///
    /// When the belief is not dense — sparse/factored beliefs have no
    /// `2^n` table to borrow; use [`Belief::prob_pattern`],
    /// [`Belief::to_dense`], or the repr accessors instead.
    #[inline]
    pub fn probs(&self) -> &[f64] {
        match &self.repr {
            BeliefRepr::Dense(probs) => probs,
            _ => panic!(
                "Belief::probs() requires the dense representation, got {}",
                self.repr_name()
            ),
        }
    }

    /// `P(o)` of a single observation.
    #[inline]
    pub fn prob(&self, o: Observation) -> f64 {
        self.prob_pattern(o.0 as u64)
    }

    /// Probability of one bit pattern under any representation.
    pub fn prob_pattern(&self, pattern: u64) -> f64 {
        match &self.repr {
            BeliefRepr::Dense(probs) => probs[pattern as usize],
            BeliefRepr::Sparse(s) => s.prob_pattern(pattern),
            BeliefRepr::Factored(f) => {
                let mut p = 1.0;
                let mut offset = 0usize;
                for b in &f.blocks {
                    let k = b.num_facts();
                    let local = (pattern >> offset) & ((1u64 << k) - 1);
                    p *= b.prob_pattern(local);
                    offset += k;
                }
                p
            }
        }
    }

    /// Marginal probability `P(f) = Σ_{o ⊨ f} P(o)` (Equation (2)).
    pub fn marginal(&self, fact: FactId) -> f64 {
        match &self.repr {
            BeliefRepr::Dense(probs) => {
                let bit = 1usize << fact.0;
                probs
                    .iter()
                    .enumerate()
                    .filter(|(o, _)| o & bit != 0)
                    .map(|(_, &p)| p)
                    .sum()
            }
            BeliefRepr::Sparse(s) => {
                let bit = 1u64 << fact.0;
                s.patterns
                    .iter()
                    .zip(&s.probs)
                    .filter(|(&pat, _)| pat & bit != 0)
                    .map(|(_, &p)| p)
                    .sum()
            }
            BeliefRepr::Factored(f) => {
                let (i, _, local) = f.block_of(fact);
                f.blocks[i].marginal(local)
            }
        }
    }

    /// All per-fact marginals, in fact order.
    pub fn marginals(&self) -> Vec<f64> {
        (0..self.num_facts() as u32)
            .map(|i| self.marginal(FactId(i)))
            .collect()
    }

    /// Shannon entropy `H(O) = -Σ_o P(o) ln P(o)` in nats.
    ///
    /// Zero-probability observations contribute zero (the standard
    /// `0 ln 0 = 0` convention). Sparse beliefs sum over the support
    /// with the same chunking as dense; factored entropy is the exact
    /// sum of block entropies (independence).
    pub fn entropy(&self) -> f64 {
        match &self.repr {
            BeliefRepr::Dense(probs) => crate::entropy::entropy_of(probs),
            BeliefRepr::Sparse(s) => crate::entropy::entropy_of(&s.probs),
            BeliefRepr::Factored(f) => f.blocks.iter().map(|b| b.entropy()).sum(),
        }
    }

    /// Data quality `Q(F) = -H(O)` (Definition 2). Higher is better;
    /// maximum 0 for a deterministic belief.
    #[inline]
    pub fn quality(&self) -> f64 {
        -self.entropy()
    }

    /// The maximum-a-posteriori pattern `argmax_o P(o)` as a raw bit
    /// pattern, for any representation and up to 64 facts.
    ///
    /// Ties break toward the lowest pattern, deterministically.
    pub fn map_pattern(&self) -> u64 {
        match &self.repr {
            BeliefRepr::Dense(probs) => {
                let mut best = 0usize;
                let mut best_p = probs[0];
                for (o, &p) in probs.iter().enumerate().skip(1) {
                    if p > best_p {
                        best = o;
                        best_p = p;
                    }
                }
                best as u64
            }
            BeliefRepr::Sparse(s) => {
                // Patterns are sorted ascending, so the strict `>` scan
                // ties toward the lowest pattern, like dense.
                let mut best = s.patterns[0];
                let mut best_p = s.probs[0];
                for (&pat, &p) in s.patterns.iter().zip(&s.probs).skip(1) {
                    if p > best_p {
                        best = pat;
                        best_p = p;
                    }
                }
                best
            }
            BeliefRepr::Factored(f) => {
                // Independent blocks: the joint argmax is the product of
                // block argmaxes.
                let mut pattern = 0u64;
                let mut offset = 0usize;
                for b in &f.blocks {
                    pattern |= b.map_pattern() << offset;
                    offset += b.num_facts();
                }
                pattern
            }
        }
    }

    /// The maximum-a-posteriori observation `o* = argmax_o P(o)`.
    ///
    /// Ties break toward the lowest observation index, deterministically.
    ///
    /// # Panics
    ///
    /// When the belief has more than 32 facts (the pattern no longer
    /// fits an [`Observation`]); use [`Belief::map_pattern`] there.
    pub fn map_observation(&self) -> Observation {
        let p = self.map_pattern();
        assert!(
            self.num_facts() <= 32,
            "map_observation on a {}-fact belief: use map_pattern()",
            self.num_facts()
        );
        Observation(p as u32)
    }

    /// Discrete labels from the MAP pattern (Equation (20)):
    /// `label(f_i) = o* ⊨ f_i`.
    pub fn map_labels(&self) -> Vec<bool> {
        let p = self.map_pattern();
        (0..self.num_facts()).map(|i| (p >> i) & 1 == 1).collect()
    }

    /// Projects the belief onto an ordered list of facts: returns `q`
    /// with `q[t] = Σ_{o : o|facts = t} P(o)`, a distribution over the
    /// `2^|facts|` restricted interpretations.
    ///
    /// The likelihood of any answer family for query set `facts` depends
    /// on `o` only through this restriction, so entropy and selection
    /// kernels operate on `q` instead of the full belief — the main
    /// performance lever of this implementation (see `DESIGN.md`).
    pub fn project(&self, facts: &[FactId]) -> Vec<f64> {
        match &self.repr {
            BeliefRepr::Dense(probs) => Self::project_dense(probs, facts),
            BeliefRepr::Sparse(s) => Self::project_sparse(s, facts),
            BeliefRepr::Factored(f) => Self::project_factored(f, facts),
        }
    }

    fn project_dense(probs: &[f64], facts: &[FactId]) -> Vec<f64> {
        let mut q = vec![0.0; 1 << facts.len()];
        if facts.len() == 1 {
            // Hot single-fact case (greedy candidate scans): avoid the
            // generic bit-gather. Chunked ordered sum, like every other
            // reduction over the 2^n table.
            let bit = 1usize << facts[0].0;
            let p_true = parallel::sum_chunks(probs.len(), parallel::CHUNK, |r| {
                let mut acc = 0.0;
                for (j, &p) in probs[r.clone()].iter().enumerate() {
                    if (r.start + j) & bit != 0 {
                        acc += p;
                    }
                }
                acc
            });
            // Chunked-sum roundoff can leave p_true a hair above 1.0;
            // without the clamps the complement cell would go negative
            // and poison the entropy kernels downstream.
            q[1] = p_true.clamp(0.0, 1.0);
            q[0] = (1.0 - p_true).clamp(0.0, 1.0);
            return q;
        }
        // General bit-gather: per-chunk partial histograms merged in
        // chunk order, so every cell's sum has a fixed association.
        let partials = parallel::map_chunks(probs.len(), parallel::CHUNK, |r| {
            let mut local = vec![0.0; q.len()];
            for (j, &p) in probs[r.clone()].iter().enumerate() {
                let t = Observation((r.start + j) as u32).project(facts) as usize;
                local[t] += p;
            }
            local
        });
        for local in partials {
            for (slot, v) in q.iter_mut().zip(local) {
                *slot += v;
            }
        }
        q
    }

    fn project_sparse(s: &SparseBelief, facts: &[FactId]) -> Vec<f64> {
        let mut q = vec![0.0; 1 << facts.len()];
        if facts.len() == 1 {
            let bit = 1u64 << facts[0].0;
            let p_true = parallel::sum_chunks(s.probs.len(), parallel::CHUNK, |r| {
                let mut acc = 0.0;
                for (j, &p) in s.probs[r.clone()].iter().enumerate() {
                    if s.patterns[r.start + j] & bit != 0 {
                        acc += p;
                    }
                }
                acc
            });
            q[1] = p_true.clamp(0.0, 1.0);
            q[0] = (1.0 - p_true).clamp(0.0, 1.0);
            return q;
        }
        let partials = parallel::map_chunks(s.probs.len(), parallel::CHUNK, |r| {
            let mut local = vec![0.0; q.len()];
            for (j, &p) in s.probs[r.clone()].iter().enumerate() {
                let t = project_pattern(s.patterns[r.start + j], facts) as usize;
                local[t] += p;
            }
            local
        });
        for local in partials {
            for (slot, v) in q.iter_mut().zip(local) {
                *slot += v;
            }
        }
        q
    }

    fn project_factored(f: &FactoredBelief, facts: &[FactId]) -> Vec<f64> {
        // Independence: the joint projection is the product over blocks
        // of each block's projection onto its own facts. Query sets are
        // tiny (≤ k facts), so these loops stay serial.
        let mut q = vec![1.0; 1 << facts.len()];
        let mut offset = 0usize;
        for b in &f.blocks {
            let n = b.num_facts();
            // Output-bit positions owned by this block, with the fact
            // translated to block-local coordinates.
            let positions: Vec<(usize, FactId)> = facts
                .iter()
                .enumerate()
                .filter(|(_, fct)| {
                    let g = fct.0 as usize;
                    g >= offset && g < offset + n
                })
                .map(|(j, fct)| (j, FactId((fct.0 as usize - offset) as u32)))
                .collect();
            offset += n;
            if positions.is_empty() {
                continue;
            }
            let local_facts: Vec<FactId> = positions.iter().map(|&(_, lf)| lf).collect();
            let block_q = b.project(&local_facts);
            for (t, slot) in q.iter_mut().enumerate() {
                let mut local_t = 0usize;
                for (idx, &(j, _)) in positions.iter().enumerate() {
                    local_t |= ((t >> j) & 1) << idx;
                }
                *slot *= block_q[local_t];
            }
        }
        q
    }

    /// The belief conditioned on a fact's truth value:
    /// `P(o | f = value)`. Useful for counterfactual analysis ("what
    /// would the labels be if f were settled?").
    ///
    /// The conditioning mass is computed from the masked table itself
    /// (the exact sum the renormalisation divides by), so near-zero
    /// support is reported as [`HcError::InvalidProbability`] instead of
    /// surfacing as a downstream renormalisation collapse.
    ///
    /// For sparse beliefs the truncation bound is re-certified as
    /// `min(1, 2·L / mass)` — conditioning renormalises, which can
    /// amplify the truncated mass by at most that factor.
    ///
    /// # Errors
    ///
    /// [`HcError::InvalidProbability`] when the conditioning event has
    /// (numerically) zero probability.
    pub fn condition_on_fact(&self, fact: FactId, value: bool) -> Result<Belief> {
        match &self.repr {
            BeliefRepr::Dense(probs) => {
                let bit = 1usize << fact.0;
                let masked: Vec<f64> = probs
                    .iter()
                    .enumerate()
                    .map(|(o, &p)| if (o & bit != 0) == value { p } else { 0.0 })
                    .collect();
                let mass = parallel::sum_chunks(masked.len(), parallel::CHUNK, |r| {
                    masked[r].iter().sum::<f64>()
                });
                if !(mass > 0.0) || !(1.0 / mass).is_finite() {
                    return Err(HcError::InvalidProbability(mass));
                }
                let mut out = Belief {
                    num_facts: self.num_facts,
                    repr: BeliefRepr::Dense(masked),
                };
                // Recomputes the identical chunked sum, so it cannot
                // fail after the gate above.
                out.renormalize()?;
                Ok(out)
            }
            BeliefRepr::Sparse(s) => {
                let bit = 1u64 << fact.0;
                let masked: Vec<f64> = s
                    .patterns
                    .iter()
                    .zip(&s.probs)
                    .map(|(&pat, &p)| if (pat & bit != 0) == value { p } else { 0.0 })
                    .collect();
                let mass = parallel::sum_chunks(masked.len(), parallel::CHUNK, |r| {
                    masked[r].iter().sum::<f64>()
                });
                if !(mass > 0.0) || !(1.0 / mass).is_finite() {
                    return Err(HcError::InvalidProbability(mass));
                }
                let mut patterns = Vec::new();
                let mut probs = Vec::new();
                for (&pat, &p) in s.patterns.iter().zip(&masked) {
                    if (pat & bit != 0) == value {
                        patterns.push(pat);
                        probs.push(p / mass);
                    }
                }
                let truncation_bound = (2.0 * s.truncation_bound / mass).min(1.0);
                Ok(Belief {
                    num_facts: self.num_facts,
                    repr: BeliefRepr::Sparse(SparseBelief {
                        patterns,
                        probs,
                        truncation_bound,
                    }),
                })
            }
            BeliefRepr::Factored(f) => {
                // Independence: conditioning touches only the owning
                // block, exactly.
                let (i, _, local) = f.block_of(fact);
                let mut blocks = f.blocks.clone();
                blocks[i] = blocks[i].condition_on_fact(local, value)?;
                Ok(Belief {
                    num_facts: self.num_facts,
                    repr: BeliefRepr::Factored(FactoredBelief { blocks }),
                })
            }
        }
    }

    /// Kullback–Leibler divergence `D(self ‖ other)` in nats.
    ///
    /// Returns `f64::INFINITY` when `self` puts mass where `other` has
    /// none (the standard convention). Dense–dense sums run over fixed
    /// chunk boundaries with an ordered merge — like `entropy_of` and
    /// [`Belief::total_variation`] — so the value honours the
    /// thread-invariance contract of [`crate::parallel`]. Sparse–sparse
    /// walks the merged supports serially; any other mix densifies (and
    /// therefore requires `n ≤` [`MAX_FACTS`]).
    pub fn kl_divergence(&self, other: &Belief) -> Result<f64> {
        if other.num_facts != self.num_facts {
            return Err(HcError::DimensionMismatch {
                expected: self.num_facts(),
                actual: other.num_facts(),
            });
        }
        match (&self.repr, &other.repr) {
            (BeliefRepr::Dense(a), BeliefRepr::Dense(b)) => {
                let kl = parallel::sum_chunks(a.len(), parallel::CHUNK, |r| {
                    let mut acc = 0.0;
                    for (&p, &q) in a[r.clone()].iter().zip(&b[r]) {
                        if p == 0.0 {
                            // 0 ln 0 = 0, and 0/0 must not poison the sum.
                            continue;
                        }
                        // q == 0 with p > 0 yields +inf here, which
                        // propagates through the fold to the standard
                        // D = ∞ convention.
                        acc += p * (p / q).ln();
                    }
                    acc
                });
                Ok(kl.max(0.0))
            }
            (BeliefRepr::Sparse(a), BeliefRepr::Sparse(b)) => {
                let mut acc = 0.0;
                for (&pat, &p) in a.patterns.iter().zip(&a.probs) {
                    if p == 0.0 {
                        continue;
                    }
                    let q = b.prob_pattern(pat);
                    acc += p * (p / q).ln();
                }
                Ok(acc.max(0.0))
            }
            _ => self.to_dense()?.kl_divergence(&other.to_dense()?),
        }
    }

    /// Total variation distance `½ Σ_o |P(o) − Q(o)|` ∈ [0, 1].
    ///
    /// Dense–dense: chunked ordered sum, bit-identical at any thread
    /// count. Sparse–sparse: serial merged-support walk. Other mixes
    /// densify (requires `n ≤` [`MAX_FACTS`]).
    pub fn total_variation(&self, other: &Belief) -> Result<f64> {
        if other.num_facts != self.num_facts {
            return Err(HcError::DimensionMismatch {
                expected: self.num_facts(),
                actual: other.num_facts(),
            });
        }
        match (&self.repr, &other.repr) {
            (BeliefRepr::Dense(a), BeliefRepr::Dense(b)) => {
                let sum = parallel::sum_chunks(a.len(), parallel::CHUNK, |r| {
                    a[r.clone()]
                        .iter()
                        .zip(&b[r])
                        .map(|(&p, &q)| (p - q).abs())
                        .sum::<f64>()
                });
                Ok(0.5 * sum)
            }
            (BeliefRepr::Sparse(a), BeliefRepr::Sparse(b)) => {
                // Two-pointer walk over the union of the sorted supports.
                let mut i = 0usize;
                let mut j = 0usize;
                let mut sum = 0.0;
                while i < a.patterns.len() || j < b.patterns.len() {
                    let pa = a.patterns.get(i).copied();
                    let pb = b.patterns.get(j).copied();
                    match (pa, pb) {
                        (Some(x), Some(y)) if x == y => {
                            sum += (a.probs[i] - b.probs[j]).abs();
                            i += 1;
                            j += 1;
                        }
                        (Some(x), Some(y)) if x < y => {
                            sum += a.probs[i];
                            i += 1;
                        }
                        (Some(_), Some(_)) => {
                            sum += b.probs[j];
                            j += 1;
                        }
                        (Some(_), None) => {
                            sum += a.probs[i];
                            i += 1;
                        }
                        (None, Some(_)) => {
                            sum += b.probs[j];
                            j += 1;
                        }
                        (None, None) => unreachable!(),
                    }
                }
                Ok(0.5 * sum)
            }
            _ => self.to_dense()?.total_variation(&other.to_dense()?),
        }
    }

    /// Expands any representation into the dense table.
    ///
    /// Bit-preserving: stored probabilities are copied, never
    /// renormalised.
    ///
    /// # Errors
    ///
    /// [`HcError::TooManyFacts`] when `n >` [`MAX_FACTS`].
    pub fn to_dense(&self) -> Result<Belief> {
        match &self.repr {
            BeliefRepr::Dense(_) => Ok(self.clone()),
            BeliefRepr::Sparse(s) => {
                Self::check_num_facts(self.num_facts())?;
                let mut probs = vec![0.0; 1usize << self.num_facts()];
                for (&pat, &p) in s.patterns.iter().zip(&s.probs) {
                    probs[pat as usize] = p;
                }
                Ok(Belief {
                    num_facts: self.num_facts,
                    repr: BeliefRepr::Dense(probs),
                })
            }
            BeliefRepr::Factored(f) => {
                Self::check_num_facts(self.num_facts())?;
                // Blockwise outer product, lowest bits first: after
                // processing blocks of total width w, acc[i] is the
                // probability of low-bit pattern i.
                let mut acc = vec![1.0f64];
                for b in &f.blocks {
                    let q = b.probs();
                    let mut next = Vec::with_capacity(acc.len() * q.len());
                    for &hi in q {
                        for &lo in &acc {
                            next.push(lo * hi);
                        }
                    }
                    acc = next;
                }
                Ok(Belief {
                    num_facts: self.num_facts,
                    repr: BeliefRepr::Dense(acc),
                })
            }
        }
    }

    /// Compresses into a sparse belief keeping at most `max_support`
    /// cells.
    ///
    /// From dense: when the whole `2^n` table fits under the cap the
    /// complete layout is kept verbatim (bound `0.0`, bit-preserving —
    /// including zero cells, so reductions keep their exact chunk
    /// boundaries); otherwise the top-`max_support` cells by
    /// `(prob desc, pattern asc)` are kept, renormalised, with bound
    /// `1 − kept_mass`. From sparse: a clone (existing support is kept
    /// even above the cap — pruning happens in the update path). From
    /// factored: via the dense expansion.
    pub fn to_sparse(&self, max_support: usize) -> Result<Belief> {
        let cap = max_support.max(1);
        match &self.repr {
            BeliefRepr::Dense(probs) => {
                if probs.len() <= cap {
                    let patterns: Vec<u64> = (0..probs.len() as u64).collect();
                    return Ok(Belief {
                        num_facts: self.num_facts,
                        repr: BeliefRepr::Sparse(SparseBelief {
                            patterns,
                            probs: probs.clone(),
                            truncation_bound: 0.0,
                        }),
                    });
                }
                let mut idx: Vec<usize> = (0..probs.len()).collect();
                idx.sort_by(|&a, &b| probs[b].total_cmp(&probs[a]).then(a.cmp(&b)));
                idx.truncate(cap);
                idx.sort_unstable();
                let patterns: Vec<u64> = idx.iter().map(|&i| i as u64).collect();
                let mut kept: Vec<f64> = idx.iter().map(|&i| probs[i]).collect();
                let kept_sum = renormalize_slice(&mut kept)?;
                Ok(Belief {
                    num_facts: self.num_facts,
                    repr: BeliefRepr::Sparse(SparseBelief {
                        patterns,
                        probs: kept,
                        truncation_bound: (1.0 - kept_sum).clamp(0.0, 1.0),
                    }),
                })
            }
            BeliefRepr::Sparse(_) => Ok(self.clone()),
            BeliefRepr::Factored(_) => self.to_dense()?.to_sparse(cap),
        }
    }

    /// Rescales so probabilities sum to exactly one, returning the
    /// pre-normalisation mass that was divided out (the product of
    /// block masses when factored).
    ///
    /// # Errors
    ///
    /// [`HcError::BeliefCollapsed`] when the mass is zero, negative,
    /// non-finite, or so subnormal that its reciprocal overflows — in
    /// every such case scaling would poison the table with NaN/Inf, so
    /// the belief is left untouched instead. This is a real release-mode
    /// check: the former `debug_assert!(sum > 0.0)` compiled away exactly
    /// in the optimised builds where long near-perfect-expert runs make
    /// underflow most likely.
    pub(crate) fn renormalize(&mut self) -> Result<f64> {
        match &mut self.repr {
            BeliefRepr::Dense(probs) => renormalize_slice(probs),
            BeliefRepr::Sparse(s) => renormalize_slice(&mut s.probs),
            BeliefRepr::Factored(f) => {
                let mut total = 1.0;
                for b in &mut f.blocks {
                    total *= b.renormalize()?;
                }
                Ok(total)
            }
        }
    }

    /// Mutable access for update kernels inside the crate.
    ///
    /// # Panics
    ///
    /// When the belief is not dense (the sparse/factored update kernels
    /// go through [`Belief::repr_mut`]).
    pub(crate) fn probs_mut(&mut self) -> &mut [f64] {
        match &mut self.repr {
            BeliefRepr::Dense(probs) => probs,
            repr => panic!(
                "Belief::probs_mut() requires the dense representation, got {}",
                match repr {
                    BeliefRepr::Dense(_) => unreachable!(),
                    BeliefRepr::Sparse(_) => "sparse",
                    BeliefRepr::Factored(_) => "factored",
                }
            ),
        }
    }
}

/// A collection of independent per-task beliefs — the belief state of a
/// whole labeled dataset.
///
/// Tasks are probabilistically independent of each other (correlations
/// exist only *within* a task's fact set), so the dataset quality is the
/// sum of per-task qualities and conditional entropies decompose
/// additively across tasks. Checking-task selection still interacts
/// across tasks through the shared size-`k` budget each round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiBelief {
    tasks: Vec<Belief>,
}

impl MultiBelief {
    /// Wraps per-task beliefs.
    pub fn new(tasks: Vec<Belief>) -> Self {
        MultiBelief { tasks }
    }

    /// The per-task beliefs.
    #[inline]
    pub fn tasks(&self) -> &[Belief] {
        &self.tasks
    }

    /// Mutable per-task beliefs (used by the HC loop's update step).
    #[inline]
    pub fn tasks_mut(&mut self) -> &mut [Belief] {
        &mut self.tasks
    }

    /// Number of tasks.
    #[inline]
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether there are no tasks.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Total number of facts across all tasks (the global query space
    /// size `N`).
    pub fn total_facts(&self) -> usize {
        self.tasks.iter().map(|b| b.num_facts()).sum()
    }

    /// Dataset quality: the sum of per-task qualities, as in §IV-C
    /// ("the quality values of the data instances are simply summarized").
    pub fn quality(&self) -> f64 {
        self.tasks.iter().map(|b| b.quality()).sum()
    }

    /// Dataset entropy `Σ_t H(O_t)`.
    pub fn entropy(&self) -> f64 {
        self.tasks.iter().map(|b| b.entropy()).sum()
    }

    /// MAP labels for every task, flattened in (task, fact) order.
    pub fn map_labels(&self) -> Vec<Vec<bool>> {
        self.tasks.iter().map(|b| b.map_labels()).collect()
    }

    /// The representation shared by every task: `"dense"`, `"sparse"`,
    /// `"factored"`, or `"mixed"` when tasks differ (empty defaults to
    /// `"dense"`). Surfaced in `RunStarted` telemetry.
    pub fn repr_summary(&self) -> &'static str {
        let mut iter = self.tasks.iter().map(|b| b.repr_name());
        let Some(first) = iter.next() else {
            return "dense";
        };
        if iter.all(|name| name == first) {
            first
        } else {
            "mixed"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a dense belief from raw parts, bypassing validation (test
    /// fixtures for deliberately-broken tables).
    fn raw_dense(num_facts: u8, probs: Vec<f64>) -> Belief {
        Belief {
            num_facts,
            repr: BeliefRepr::Dense(probs),
        }
    }

    /// The running example of Table I in the paper.
    pub(crate) fn table_i_belief() -> Belief {
        // Bit order: f1 -> bit0, f2 -> bit1, f3 -> bit2.
        // o1=000, o2=001, o3=010, o4=011, o5=100, o6=101, o7=110, o8=111
        Belief::from_probs(vec![0.09, 0.11, 0.10, 0.20, 0.08, 0.09, 0.15, 0.18]).unwrap()
    }

    #[test]
    fn table_i_marginals_match_paper_eq_4() {
        let b = table_i_belief();
        assert!((b.marginal(FactId(0)) - 0.58).abs() < 1e-12, "P(f1)");
        assert!((b.marginal(FactId(1)) - 0.63).abs() < 1e-12, "P(f2)");
        assert!((b.marginal(FactId(2)) - 0.50).abs() < 1e-12, "P(f3)");
    }

    #[test]
    fn table_i_facts_are_correlated() {
        // The paper notes Π P(¬f_i) = 0.0777… ≠ P(o1) = 0.09.
        let b = table_i_belief();
        let product: f64 = (0..3)
            .map(|i| 1.0 - b.marginal(FactId(i)))
            .product();
        assert!((product - b.prob(Observation(0))).abs() > 1e-3);
    }

    #[test]
    fn uniform_has_max_entropy() {
        let b = Belief::uniform(4).unwrap();
        assert!((b.entropy() - 4.0 * std::f64::consts::LN_2).abs() < 1e-12);
        assert!((b.quality() + 4.0 * std::f64::consts::LN_2).abs() < 1e-12);
    }

    #[test]
    fn point_mass_has_zero_entropy() {
        let b = Belief::point_mass(3, Observation(5)).unwrap();
        assert_eq!(b.entropy(), 0.0);
        assert_eq!(b.map_observation(), Observation(5));
        assert_eq!(b.map_labels(), vec![true, false, true]);
    }

    #[test]
    fn from_probs_validates() {
        assert!(matches!(
            Belief::from_probs(vec![0.5, 0.3]),
            Err(HcError::NotNormalized { .. })
        ));
        assert!(matches!(
            Belief::from_probs(vec![0.5, 0.2, 0.3]),
            Err(HcError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            Belief::from_probs(vec![1.5, -0.5]),
            Err(HcError::InvalidProbability(_))
        ));
        assert!(Belief::from_probs(vec![]).is_err());
    }

    #[test]
    fn from_marginals_builds_product_distribution() {
        let b = Belief::from_marginals(&[0.6, 0.9]).unwrap();
        // P(00)=0.4*0.1, P(01)=0.6*0.1, P(10)=0.4*0.9, P(11)=0.6*0.9
        assert!((b.prob(Observation(0)) - 0.04).abs() < 1e-9);
        assert!((b.prob(Observation(1)) - 0.06).abs() < 1e-9);
        assert!((b.prob(Observation(2)) - 0.36).abs() < 1e-9);
        assert!((b.prob(Observation(3)) - 0.54).abs() < 1e-9);
    }

    #[test]
    fn from_marginals_clamps_extremes() {
        let b = Belief::from_marginals(&[1.0, 0.0]).unwrap();
        // No observation may be exactly zero after clamping.
        assert!(b.probs().iter().all(|&p| p > 0.0));
        // But the MAP is still the obvious one: f0 true, f1 false.
        assert_eq!(b.map_labels(), vec![true, false]);
    }

    #[test]
    fn projection_preserves_mass_and_marginals() {
        let b = table_i_belief();
        let q = b.project(&[FactId(2), FactId(0)]);
        assert_eq!(q.len(), 4);
        assert!((q.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // Marginal of f3 (= first projected bit) from q.
        let p_f3 = q[0b01] + q[0b11];
        assert!((p_f3 - b.marginal(FactId(2))).abs() < 1e-12);
        let p_f1 = q[0b10] + q[0b11];
        assert!((p_f1 - b.marginal(FactId(0))).abs() < 1e-12);
    }

    #[test]
    fn single_fact_projection_fast_path_matches_marginal() {
        let b = table_i_belief();
        for i in 0..3 {
            let q = b.project(&[FactId(i)]);
            assert!((q[1] - b.marginal(FactId(i))).abs() < 1e-12);
            assert!((q[0] + q[1] - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn single_fact_projection_clamps_oversum_mass() {
        // A table whose mass sums to 1.0 + ε (legal: within
        // NORMALIZATION_TOLERANCE, and from_checkpoint_probs trusts the
        // bits). With all mass on f0-true cells, the unclamped fast path
        // would return q[0] = 1.0 - (1.0 + ε) < 0 — a negative
        // probability fed straight into the entropy kernels.
        let eps = 1e-7;
        let b = Belief::from_checkpoint_probs(vec![0.0, 0.5 + eps, 0.0, 0.5]).unwrap();
        let q = b.project(&[FactId(0)]);
        assert!(q[0] >= 0.0, "complement cell must be clamped, got {}", q[0]);
        assert!(q[1] <= 1.0, "true cell must be clamped, got {}", q[1]);
        // And the sparse path clamps identically.
        let s = b.to_sparse(usize::MAX).unwrap();
        let qs = s.project(&[FactId(0)]);
        assert_eq!(q, qs);
    }

    #[test]
    fn empty_projection_is_total_mass() {
        let b = table_i_belief();
        let q = b.project(&[]);
        assert_eq!(q.len(), 1);
        assert!((q[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn multi_belief_quality_sums() {
        let a = Belief::uniform(2).unwrap();
        let b = Belief::point_mass(2, Observation(1)).unwrap();
        let mb = MultiBelief::new(vec![a.clone(), b]);
        assert!((mb.quality() - a.quality()).abs() < 1e-12);
        assert_eq!(mb.total_facts(), 4);
        assert_eq!(mb.len(), 2);
    }

    #[test]
    fn map_tie_breaks_deterministically() {
        let b = Belief::uniform(2).unwrap();
        assert_eq!(b.map_observation(), Observation(0));
    }

    #[test]
    fn too_many_facts_rejected() {
        assert!(matches!(
            Belief::uniform(MAX_FACTS + 1),
            Err(HcError::TooManyFacts(_))
        ));
        assert!(matches!(
            Belief::sparse_from_marginals(&vec![0.5; SPARSE_MAX_FACTS + 1], 16),
            Err(HcError::TooManyFacts(_))
        ));
    }

    #[test]
    fn conditioning_fixes_the_fact_and_renormalises() {
        let b = table_i_belief();
        let cond = b.condition_on_fact(FactId(0), true).unwrap();
        assert!((cond.marginal(FactId(0)) - 1.0).abs() < 1e-12);
        assert!((cond.probs().iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // Conditional of f2 given f1: P(f2, f1) / P(f1) = 0.38 / 0.58.
        assert!((cond.marginal(FactId(1)) - 0.38 / 0.58).abs() < 1e-9);
    }

    #[test]
    fn conditioning_on_impossible_event_errors() {
        let b = Belief::point_mass(2, Observation(0b01)).unwrap();
        assert!(b.condition_on_fact(FactId(0), false).is_err());
        assert!(b.condition_on_fact(FactId(0), true).is_ok());
    }

    #[test]
    fn conditioning_near_zero_support_reports_invalid_probability() {
        // Masked mass is positive but so subnormal its reciprocal
        // overflows: the documented contract is InvalidProbability, not
        // a renormalisation collapse surfacing as BeliefCollapsed.
        let b = raw_dense(2, vec![1e-320, 0.5, 0.0, 0.5]);
        match b.condition_on_fact(FactId(0), false) {
            Err(HcError::InvalidProbability(mass)) => {
                assert!(mass > 0.0 && mass < 1e-300, "tiny mass, got {mass}");
            }
            other => panic!("expected InvalidProbability, got {other:?}"),
        }
        // Exactly-zero support also maps to InvalidProbability.
        let z = Belief::point_mass(2, Observation(0b01)).unwrap();
        assert!(matches!(
            z.condition_on_fact(FactId(0), false),
            Err(HcError::InvalidProbability(_))
        ));
        // And the sparse path honours the same contract.
        let zs = z.to_sparse(usize::MAX).unwrap();
        assert!(matches!(
            zs.condition_on_fact(FactId(0), false),
            Err(HcError::InvalidProbability(_))
        ));
    }

    #[test]
    fn kl_divergence_properties() {
        let b = table_i_belief();
        assert!(b.kl_divergence(&b).unwrap().abs() < 1e-12);
        let u = Belief::uniform(3).unwrap();
        let kl = b.kl_divergence(&u).unwrap();
        assert!(kl > 0.0);
        // D(b || uniform) = log|O| - H(b).
        assert!((kl - (8f64.ln() - b.entropy())).abs() < 1e-9);
        // Infinite when the support mismatches.
        let point = Belief::point_mass(3, Observation(0)).unwrap();
        assert_eq!(b.kl_divergence(&point).unwrap(), f64::INFINITY);
        // Dimension check.
        assert!(b.kl_divergence(&Belief::uniform(2).unwrap()).is_err());
    }

    #[test]
    fn total_variation_properties() {
        let b = table_i_belief();
        assert_eq!(b.total_variation(&b).unwrap(), 0.0);
        let point0 = Belief::point_mass(2, Observation(0)).unwrap();
        let point3 = Belief::point_mass(2, Observation(3)).unwrap();
        assert!((point0.total_variation(&point3).unwrap() - 1.0).abs() < 1e-12);
        assert!(b.total_variation(&Belief::uniform(2).unwrap()).is_err());
    }

    #[test]
    fn from_marginals_counts_clamps() {
        let (b, count) = Belief::from_marginals_counted(&[1.0, 0.0, 0.5]).unwrap();
        assert_eq!(count, 2, "both extreme marginals must be reported");
        assert!(b.probs().iter().all(|&p| p > 0.0));
        let (_, clean) = Belief::from_marginals_counted(&[0.3, 0.7]).unwrap();
        assert_eq!(clean, 0, "interior marginals are untouched");
    }

    /// A deterministic non-uniform belief large enough to span several
    /// `parallel::CHUNK` chunks.
    fn big_belief(seed: u64) -> Belief {
        let len = 1usize << 13;
        let raw: Vec<f64> = (0..len as u64)
            .map(|i| ((i.wrapping_mul(seed) % 97) + 1) as f64)
            .collect();
        let sum: f64 = raw.iter().sum();
        Belief::from_probs(raw.into_iter().map(|p| p / sum).collect()).unwrap()
    }

    #[test]
    fn kl_and_tv_are_thread_invariant_across_chunks() {
        use crate::parallel::{self, Parallelism};
        let a = big_belief(31);
        let b = big_belief(57);
        let run = |parallelism| {
            let _guard = parallel::scoped(parallelism);
            (
                a.kl_divergence(&b).unwrap().to_bits(),
                a.total_variation(&b).unwrap().to_bits(),
            )
        };
        let serial = run(Parallelism::Serial);
        assert_eq!(serial, run(Parallelism::Threads(2)), "1 vs 2 threads");
        assert_eq!(serial, run(Parallelism::Threads(8)), "1 vs 8 threads");
        // And the self-distances stay exactly degenerate.
        assert!(a.kl_divergence(&a).unwrap().abs() < 1e-12);
        assert_eq!(a.total_variation(&a).unwrap(), 0.0);
    }

    #[test]
    fn kl_divergence_is_infinite_on_support_mismatch_in_any_chunk() {
        // Zero `other`-cell deep inside a later chunk: the +inf term must
        // survive the chunked merge.
        let a = big_belief(11);
        let mut probs = big_belief(13).probs().to_vec();
        let dead = probs.len() - 7;
        let spread = probs[dead] / (probs.len() - 1) as f64;
        probs[dead] = 0.0;
        for (i, p) in probs.iter_mut().enumerate() {
            if i != dead {
                *p += spread;
            }
        }
        let b = Belief::from_probs(probs).unwrap();
        assert_eq!(a.kl_divergence(&b).unwrap(), f64::INFINITY);
    }

    #[test]
    fn renormalize_reports_collapse_instead_of_dividing_by_zero() {
        // All-zero mass: the release-mode path must error, not divide.
        let mut dead = raw_dense(2, vec![0.0; 4]);
        assert!(matches!(
            dead.renormalize(),
            Err(HcError::BeliefCollapsed { mass }) if mass == 0.0
        ));
        assert!(dead.probs().iter().all(|&p| p == 0.0), "left untouched");

        // Subnormal mass whose reciprocal overflows: also a collapse.
        let mut tiny = raw_dense(2, vec![1e-320; 4]);
        assert!(matches!(
            tiny.renormalize(),
            Err(HcError::BeliefCollapsed { .. })
        ));

        // A healthy table reports the divided-out mass.
        let mut ok = raw_dense(1, vec![1.0, 3.0]);
        assert_eq!(ok.renormalize().unwrap(), 4.0);
        assert_eq!(ok.probs(), &[0.25, 0.75]);
    }

    // ---- sparse representation ----

    #[test]
    fn sparse_full_support_is_bit_identical_to_dense() {
        let marginals = [0.62, 0.31, 0.87, 0.44, 0.5];
        let dense = Belief::from_marginals(&marginals).unwrap();
        let sparse = Belief::sparse_from_marginals(&marginals, 1 << 10).unwrap();
        assert!(sparse.is_sparse());
        assert_eq!(sparse.truncation_bound(), 0.0);
        assert_eq!(sparse.support_len(), 32);
        let BeliefRepr::Sparse(s) = sparse.repr() else {
            unreachable!()
        };
        assert_eq!(s.patterns(), (0..32u64).collect::<Vec<_>>());
        for (o, &p) in dense.probs().iter().enumerate() {
            assert_eq!(
                p.to_bits(),
                s.probs()[o].to_bits(),
                "cell {o} must match dense bit-for-bit"
            );
        }
        assert_eq!(dense.entropy().to_bits(), sparse.entropy().to_bits());
        assert_eq!(dense.map_pattern(), sparse.map_pattern());
    }

    #[test]
    fn sparse_truncation_keeps_top_patterns_and_certifies_bound() {
        let marginals = [0.9, 0.8, 0.7, 0.6, 0.55];
        let dense = Belief::from_marginals(&marginals).unwrap();
        let cap = 8;
        let sparse = Belief::sparse_from_marginals(&marginals, cap).unwrap();
        assert_eq!(sparse.support_len(), cap);
        let bound = sparse.truncation_bound();
        assert!(bound > 0.0 && bound < 1.0, "bound {bound}");
        // The kept set must be exactly the top-`cap` dense cells.
        let BeliefRepr::Sparse(s) = sparse.repr() else {
            unreachable!()
        };
        let mut by_prob: Vec<usize> = (0..dense.probs().len()).collect();
        by_prob.sort_by(|&a, &b| {
            dense.probs()[b]
                .total_cmp(&dense.probs()[a])
                .then(a.cmp(&b))
        });
        let mut expected: Vec<u64> = by_prob[..cap].iter().map(|&i| i as u64).collect();
        expected.sort_unstable();
        assert_eq!(s.patterns(), expected.as_slice());
        // The realized TV distance to dense is within the bound (plus
        // ULP noise).
        let tv = dense.total_variation(&sparse.to_dense().unwrap()).unwrap();
        assert!(tv <= bound + 1e-12, "tv {tv} > bound {bound}");
    }

    #[test]
    fn sparse_supports_forty_facts() {
        let marginals: Vec<f64> = (0..40).map(|i| 0.3 + 0.4 * (i as f64 / 39.0)).collect();
        let b = Belief::sparse_from_marginals(&marginals, 1 << 12).unwrap();
        assert_eq!(b.num_facts(), 40);
        assert_eq!(b.support_len(), 1 << 12);
        assert!(b.truncation_bound() < 1.0);
        let ms = b.marginals();
        assert_eq!(ms.len(), 40);
        // Truncation biases marginals by at most the TV bound.
        for (m, &orig) in ms.iter().zip(&marginals) {
            assert!((m - orig).abs() <= b.truncation_bound() + 1e-9);
        }
        assert!(b.entropy() > 0.0);
        assert_eq!(b.map_labels().len(), 40);
    }

    #[test]
    fn sparse_round_trips_through_dense() {
        let marginals = [0.9, 0.2, 0.7];
        let sparse = Belief::sparse_from_marginals(&marginals, 4).unwrap();
        let dense = sparse.to_dense().unwrap();
        let back = dense.to_sparse(4).unwrap();
        // to_sparse on an already-renormalised truncated table keeps
        // the same support.
        let BeliefRepr::Sparse(a) = sparse.repr() else {
            unreachable!()
        };
        let BeliefRepr::Sparse(b) = back.repr() else {
            unreachable!()
        };
        assert_eq!(a.patterns(), b.patterns());
        assert_eq!(sparse.total_variation(&back).unwrap(), 0.0);
    }

    #[test]
    fn sparse_checkpoint_restore_validates() {
        let ok = Belief::sparse_from_checkpoint(3, vec![1, 5], vec![0.25, 0.75], 0.1).unwrap();
        assert!(ok.is_sparse());
        assert_eq!(ok.prob_pattern(5), 0.75);
        // Not strictly increasing.
        assert!(Belief::sparse_from_checkpoint(3, vec![5, 1], vec![0.25, 0.75], 0.0).is_err());
        // Pattern out of range.
        assert!(Belief::sparse_from_checkpoint(2, vec![4], vec![1.0], 0.0).is_err());
        // Mass not normalised.
        assert!(Belief::sparse_from_checkpoint(3, vec![1, 5], vec![0.25, 0.25], 0.0).is_err());
        // Bad bound.
        assert!(Belief::sparse_from_checkpoint(3, vec![1, 5], vec![0.25, 0.75], 1.5).is_err());
    }

    // ---- factored representation ----

    #[test]
    fn factored_matches_dense_product() {
        let b0 = table_i_belief();
        let b1 = Belief::from_marginals(&[0.7, 0.2]).unwrap();
        let f = Belief::factored(vec![b0.clone(), b1.clone()]).unwrap();
        assert!(f.is_factored());
        assert_eq!(f.num_facts(), 5);
        // Marginals: block 0 owns facts 0..3, block 1 owns 3..5.
        assert_eq!(f.marginal(FactId(1)), b0.marginal(FactId(1)));
        assert_eq!(f.marginal(FactId(3)), b1.marginal(FactId(0)));
        // Entropy adds across independent blocks.
        assert!((f.entropy() - (b0.entropy() + b1.entropy())).abs() < 1e-12);
        // Dense expansion is the exact outer product.
        let dense = f.to_dense().unwrap();
        for o in 0..32u64 {
            let expected = b0.prob_pattern(o & 0b111) * b1.prob_pattern(o >> 3);
            assert_eq!(dense.prob_pattern(o).to_bits(), expected.to_bits());
        }
        // MAP decomposes across blocks.
        assert_eq!(
            f.map_pattern(),
            b0.map_pattern() | (b1.map_pattern() << 3)
        );
        // Projection across block boundaries matches the dense oracle.
        let facts = [FactId(4), FactId(0), FactId(3)];
        let qf = f.project(&facts);
        let qd = dense.project(&facts);
        for (a, b) in qf.iter().zip(&qd) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn factored_conditioning_touches_one_block() {
        let b0 = Belief::from_marginals(&[0.6, 0.9]).unwrap();
        let b1 = table_i_belief();
        let f = Belief::factored(vec![b0, b1]).unwrap();
        let cond = f.condition_on_fact(FactId(3), true).unwrap();
        assert!(cond.is_factored());
        assert!((cond.marginal(FactId(3)) - 1.0).abs() < 1e-12);
        // Other block untouched, bit-for-bit.
        assert_eq!(cond.marginal(FactId(0)).to_bits(), f.marginal(FactId(0)).to_bits());
        // Against the dense oracle.
        let oracle = f.to_dense().unwrap().condition_on_fact(FactId(3), true).unwrap();
        assert!(cond.to_dense().unwrap().total_variation(&oracle).unwrap() < 1e-12);
    }

    #[test]
    fn factored_validates_and_flattens() {
        assert!(matches!(
            Belief::factored(vec![]),
            Err(HcError::EmptyFactSet)
        ));
        let nested = Belief::factored(vec![
            Belief::factored(vec![Belief::uniform(2).unwrap(), Belief::uniform(1).unwrap()])
                .unwrap(),
            Belief::uniform(3).unwrap(),
        ])
        .unwrap();
        let BeliefRepr::Factored(f) = nested.repr() else {
            unreachable!()
        };
        assert_eq!(f.blocks().len(), 3, "nested factored blocks flatten");
        assert_eq!(nested.num_facts(), 6);
        // Oversized totals are rejected.
        let blocks: Vec<Belief> = (0..5)
            .map(|_| Belief::uniform(13).unwrap())
            .collect();
        assert!(matches!(
            Belief::factored(blocks),
            Err(HcError::TooManyFacts(65))
        ));
    }

    #[test]
    fn non_dense_probs_access_panics_with_clear_message() {
        let s = Belief::sparse_from_marginals(&[0.5, 0.5], 1).unwrap();
        let err = std::panic::catch_unwind(|| s.probs()).unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("sparse"), "panic message: {msg}");
    }

    #[test]
    fn repr_summary_reports_mixture() {
        let d = Belief::uniform(2).unwrap();
        let s = Belief::sparse_from_marginals(&[0.5, 0.5], 8).unwrap();
        assert_eq!(MultiBelief::new(vec![]).repr_summary(), "dense");
        assert_eq!(MultiBelief::new(vec![d.clone()]).repr_summary(), "dense");
        assert_eq!(MultiBelief::new(vec![s.clone(), s.clone()]).repr_summary(), "sparse");
        assert_eq!(MultiBelief::new(vec![d, s]).repr_summary(), "mixed");
    }
}
