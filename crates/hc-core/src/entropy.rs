//! Entropy computations behind the checking-task selection objective
//! (Definition 4, Theorems 1–2 of the paper).
//!
//! The paper proves the expected quality improvement of a query set `T` is
//! `ΔQ(F|T) = H(O) − H(O | AS_CE^T)`, so selection minimises the
//! conditional entropy of the observations given the answer families.
//!
//! Two exact evaluation strategies are provided:
//!
//! 1. [`conditional_entropy_naive`] — direct Equation (34): enumerate
//!    every answer family, compute the posterior over the *full*
//!    observation space, and average the posterior entropies. Cost
//!    `O(2^{k·m} · 2^n)`. Kept as the test oracle and ablation baseline.
//! 2. [`conditional_entropy`] — the fast path used everywhere else,
//!    combining two exact identities:
//!    * **Chain rule**: `H(O|AS) = H(AS|O) + H(O) − H(AS)`, where
//!      `H(AS|O) = |T| · Σ_cr h(Pr_cr)` in closed form because, given the
//!      ground truth, answers are independent Bernoullis.
//!    * **Projection**: the likelihood of any answer family depends on
//!      `o` only through the restriction of `o` to `T`, so `H(AS)` is
//!      computed from the belief projected onto `T` (`2^k` cells) instead
//!      of the full `2^n` space.
//!
//!    Cost `O(2^n)` for the projection plus `O(2^{k·m} · 2^k · m)` for
//!    `H(AS)` — independent of `n` beyond the single projection pass.

use crate::answer::enumerate_families;
use crate::belief::Belief;
use crate::error::{HcError, Result};
use crate::fact::FactId;
use crate::parallel;
use crate::worker::ExpertPanel;

/// Upper bound on `k · |CE|`, the number of bits indexing an answer
/// family. Beyond this the family space does not fit a dense vector and
/// the exact objective is hopeless anyway (it is NP-hard; see Theorem 3).
pub const MAX_FAMILY_BITS: usize = 30;

/// Binary Shannon entropy `h(p) = -p ln p - (1-p) ln(1-p)` in nats.
///
/// Inputs are clamped into `[0, 1]` so a marginal that leaks a few
/// ulps outside the unit interval (roundoff in a projection sum) costs
/// nothing in debug *and* release instead of returning NaN via the log
/// of a negative number. In-range inputs are untouched, so the clamp
/// never changes a healthy result's bits.
#[inline]
pub fn binary_entropy(p: f64) -> f64 {
    // Tolerate roundoff-scale leakage in debug too; gross violations
    // (and NaN, for which `contains` is false) still trip the assert.
    debug_assert!((-1e-9..=1.0 + 1e-9).contains(&p), "p = {p}");
    let p = p.clamp(0.0, 1.0);
    let mut h = 0.0;
    if p > 0.0 {
        h -= p * p.ln();
    }
    if p < 1.0 {
        h -= (1.0 - p) * (1.0 - p).ln();
    }
    h
}

/// Shannon entropy of an arbitrary (not necessarily normalised to machine
/// precision) distribution, in nats, with the `0 ln 0 = 0` convention.
///
/// Summed over fixed [`parallel::CHUNK`]-length chunks with an ordered
/// merge, so the value is bit-identical for any thread count.
pub fn entropy_of(dist: &[f64]) -> f64 {
    -parallel::sum_chunks(dist.len(), parallel::CHUNK, |r| {
        dist[r]
            .iter()
            .filter(|&&p| p > 0.0)
            .map(|&p| p * p.ln())
            .sum::<f64>()
    })
}

/// Per-worker likelihood tables for a `k`-query set: `tables[w][a][t]` is
/// `P(A_w = a | o|T = t)` for answer bitmask `a` and truth bitmask `t`.
///
/// Precomputing these (cost `O(m · 4^k · k)`) turns the inner loop of the
/// family-distribution kernel into pure table lookups.
fn worker_tables(panel: &ExpertPanel, k: usize) -> Vec<Vec<f64>> {
    let cells = 1usize << k;
    let mask = (cells - 1) as u32;
    panel
        .workers()
        .iter()
        .map(|w| {
            let acc = w.accuracy.rate();
            // pow[c] = acc^c (1-acc)^(k-c)
            let mut pow = vec![0.0; k + 1];
            for (c, slot) in pow.iter_mut().enumerate() {
                *slot = acc.powi(c as i32) * (1.0 - acc).powi((k - c) as i32);
            }
            let mut table = vec![0.0; cells * cells];
            for a in 0..cells as u32 {
                for t in 0..cells as u32 {
                    let consistent = (!(a ^ t) & mask).count_ones() as usize;
                    table[(a as usize) * cells + t as usize] = pow[consistent];
                }
            }
            table
        })
        .collect()
}

/// The distribution `P(A_CE^T)` over all `2^{k·m}` answer families, given
/// the belief *projected* onto the query set (`q[t] = P(o|T = t)`).
///
/// Family index packing matches [`enumerate_families`]: worker `w`'s
/// answer bits occupy bits `[w·k, (w+1)·k)`.
///
/// # Errors
///
/// [`HcError::TooManyFacts`] when `k · m` exceeds [`MAX_FAMILY_BITS`].
pub fn family_distribution_projected(q: &[f64], panel: &ExpertPanel) -> Result<Vec<f64>> {
    // Internal invariant: every caller passes a `Belief::project`
    // result, whose length is `1 << |T|` by construction. In release a
    // violation would only mis-size the family space (`k` is derived
    // from `trailing_zeros`), never touch memory out of bounds.
    debug_assert!(q.len().is_power_of_two());
    let k = q.len().trailing_zeros() as usize;
    let m = panel.len();
    let bits = k * m;
    if bits > MAX_FAMILY_BITS {
        return Err(HcError::TooManyFacts(bits));
    }
    let cells = q.len();
    let tables = worker_tables(panel, k);
    let n_families = 1usize << bits;
    let mut dist = vec![0.0; n_families];
    let a_mask = (cells - 1) as u64;
    // Each family's mass depends only on its own index, so the fill is
    // trivially deterministic under any chunk-to-thread assignment.
    parallel::fill_slice(&mut dist, parallel::CHUNK, |offset, slice| {
        for (j, slot) in slice.iter_mut().enumerate() {
            let a_joint = offset + j;
            let mut p = 0.0;
            for (t, &qt) in q.iter().enumerate() {
                if qt == 0.0 {
                    continue;
                }
                let mut l = qt;
                for (w, table) in tables.iter().enumerate() {
                    let a_w = ((a_joint as u64 >> (w * k)) & a_mask) as usize;
                    l *= table[a_w * cells + t];
                }
                p += l;
            }
            *slot = p;
        }
    });
    Ok(dist)
}

/// `H(AS_CE^T)` — the entropy of the answer families (Definition 4) —
/// computed from the projected belief.
pub fn answer_family_entropy_projected(q: &[f64], panel: &ExpertPanel) -> Result<f64> {
    Ok(entropy_of(&family_distribution_projected(q, panel)?))
}

/// `H(AS_CE^T)` for a belief and query set.
pub fn answer_family_entropy(belief: &Belief, queries: &[FactId], panel: &ExpertPanel) -> Result<f64> {
    let q = belief.project(queries);
    answer_family_entropy_projected(&q, panel)
}

/// `H(AS_CE^T | O)` — closed form: `|T| · Σ_cr h(Pr_cr)`.
///
/// Given the ground truth, each of the `|T|` queries is answered by each
/// worker as an independent Bernoulli with success probability `Pr_cr`,
/// so the conditional entropy is additive and observation-independent.
#[inline]
pub fn answer_family_entropy_given_obs(k: usize, panel: &ExpertPanel) -> f64 {
    k as f64 * panel.per_query_answer_entropy()
}

/// `H(O | AS_CE^T)` — the selection objective (Theorem 2, Equation (34))
/// — via the chain-rule + projection fast path.
///
/// Representation-agnostic: the belief enters only through
/// [`Belief::project`] and [`Belief::entropy`], both of which dispatch
/// per-representation, so this works unchanged for dense, sparse, and
/// factored beliefs (unlike [`conditional_entropy_naive`], the
/// dense-only oracle).
///
/// Clamped at zero: the true value is non-negative, and the subtraction
/// can produce `-1e-16`-scale noise for near-deterministic beliefs.
pub fn conditional_entropy(belief: &Belief, queries: &[FactId], panel: &ExpertPanel) -> Result<f64> {
    let _span = hc_telemetry::timing::span(hc_telemetry::timing::Phase::Entropy);
    let q = belief.project(queries);
    conditional_entropy_projected(&q, belief.entropy(), panel)
}

/// [`conditional_entropy`] when the caller already has the projected
/// belief `q` and the prior entropy `H(O)` (greedy selectors reuse both).
pub fn conditional_entropy_projected(
    q: &[f64],
    prior_entropy: f64,
    panel: &ExpertPanel,
) -> Result<f64> {
    let k = q.len().trailing_zeros() as usize;
    // Degenerate cases: no queries or no experts means no information.
    // Return the prior entropy *exactly*, rather than letting the
    // chain-rule subtraction reintroduce float noise — the naive oracle
    // takes the matching early exit.
    if k == 0 || panel.is_empty() {
        return Ok(prior_entropy);
    }
    let h_as = answer_family_entropy_projected(q, panel)?;
    let h_as_given_o = answer_family_entropy_given_obs(k, panel);
    Ok((h_as_given_o + prior_entropy - h_as).max(0.0))
}

/// `H(O | AS_CE^T)` by direct evaluation of Equation (34): enumerate all
/// `2^{k·m}` answer families, form each full posterior `P(o | A)`, and
/// average posterior entropies weighted by `P(A)`.
///
/// Exponential in both `k·m` and `n`; retained as the independently-coded
/// oracle for the fast path (tested to agree to 1e-9) and as the
/// `ablation_chain_rule` bench baseline.
///
/// **Dense-only**: this oracle reads the full `2^n` vector via
/// [`Belief::probs`] and panics on sparse or factored beliefs. Convert
/// with [`Belief::to_dense`] first when cross-checking those
/// representations.
pub fn conditional_entropy_naive(
    belief: &Belief,
    queries: &[FactId],
    panel: &ExpertPanel,
) -> Result<f64> {
    let k = queries.len();
    let m = panel.len();
    if k * m > MAX_FAMILY_BITS {
        return Err(HcError::TooManyFacts(k * m));
    }
    // Match the fast path's degenerate-case contract exactly: with no
    // queries or no experts the single trivial answer family carries no
    // information, so the objective is the prior entropy — returned
    // directly instead of via `posterior / p_family` renormalisation,
    // whose rounding would otherwise disagree with `belief.entropy()`
    // in the last bits.
    if k == 0 || m == 0 {
        return Ok(belief.entropy());
    }
    let probs = belief.probs();
    // Precompute each observation's projection once.
    let projections: Vec<u32> = (0..probs.len())
        .map(|o| crate::observation::Observation(o as u32).project(queries))
        .collect();
    let mut total = 0.0;
    let mut posterior = vec![0.0; probs.len()];
    for (_, family) in enumerate_families(k, m) {
        let mut p_family = 0.0;
        for (o, &p_o) in probs.iter().enumerate() {
            let l = crate::answer::family_likelihood_given(panel, &family, projections[o]);
            posterior[o] = p_o * l;
            p_family += posterior[o];
        }
        if p_family <= 0.0 {
            continue;
        }
        let mut h_post = 0.0;
        for &joint in &posterior {
            if joint > 0.0 {
                let p = joint / p_family;
                h_post -= p * p.ln();
            }
        }
        total += p_family * h_post;
    }
    Ok(total)
}

/// `H(O | AS, D)` — the selection objective under an unreliable crowd:
/// the expectation of [`conditional_entropy`] over which workers actually
/// deliver their answers, with each worker absent for the whole round
/// independently with probability `dropout`.
///
/// For a panel of `m` workers this enumerates the `2^m` presence subsets
/// (missing-at-random: absence reveals nothing about the ground truth, so
/// the sub-panel objective applies verbatim). At `dropout = 0` this is
/// exactly [`conditional_entropy`]; at `dropout = 1` it is the prior
/// entropy `H(O)` — checking with a crowd that never answers learns
/// nothing.
///
/// # Errors
///
/// [`HcError::InvalidProbability`] when `dropout` is not in `[0, 1]`;
/// otherwise the same errors as [`conditional_entropy`].
pub fn conditional_entropy_with_dropout(
    belief: &Belief,
    queries: &[FactId],
    panel: &ExpertPanel,
    dropout: f64,
) -> Result<f64> {
    if !(0.0..=1.0).contains(&dropout) {
        return Err(HcError::InvalidProbability(dropout));
    }
    let m = panel.len();
    // Fast paths: the degenerate rates need no subset enumeration.
    // (`dropout == 0` delegates to `conditional_entropy`, which opens
    // its own timing span — don't open one here too.)
    if dropout == 0.0 {
        return conditional_entropy(belief, queries, panel);
    }
    let _span = hc_telemetry::timing::span(hc_telemetry::timing::Phase::Entropy);
    if dropout == 1.0 {
        return Ok(belief.entropy());
    }
    // Each presence subset's term is an independent sub-panel objective;
    // evaluate them in parallel (one mask per chunk — each term costs a
    // full `conditional_entropy`) and merge in mask order, reproducing
    // the serial accumulation bit-for-bit.
    let terms = parallel::map_chunks(1usize << m, 1, |r| -> Result<f64> {
        let mask = r.start as u64;
        let mut weight = 1.0;
        let mut present = vec![false; m];
        for (w, slot) in present.iter_mut().enumerate() {
            let here = (mask >> w) & 1 == 1;
            *slot = here;
            weight *= if here { 1.0 - dropout } else { dropout };
        }
        if weight == 0.0 {
            return Ok(0.0);
        }
        let sub = panel.subset(&present);
        let h = if sub.is_empty() {
            belief.entropy()
        } else {
            conditional_entropy(belief, queries, &sub)?
        };
        Ok(weight * h)
    });
    let mut total = 0.0;
    for term in terms {
        total += term?;
    }
    Ok(total)
}

/// The *quality gain* of appending fact `f` to the query set `T`
/// (Equation (35)):
/// `gain^T(f) = H(O | AS^T) − H(O | AS^{T∪{f}})`.
///
/// Computed with the chain rule so only the two `H(AS)` terms are needed:
/// `gain = [H(AS^{T∪f}) − H(AS^T)] − Σ_cr h(Pr_cr)`.
pub fn quality_gain(
    belief: &Belief,
    current: &[FactId],
    candidate: FactId,
    h_as_current: f64,
    panel: &ExpertPanel,
) -> Result<f64> {
    let mut extended: Vec<FactId> = Vec::with_capacity(current.len() + 1);
    extended.extend_from_slice(current);
    extended.push(candidate);
    let h_as_new = answer_family_entropy(belief, &extended, panel)?;
    Ok(h_as_new - h_as_current - panel.per_query_answer_entropy())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::belief::Belief;
    use crate::fact::FactId;

    fn table_i_belief() -> Belief {
        Belief::from_probs(vec![0.09, 0.11, 0.10, 0.20, 0.08, 0.09, 0.15, 0.18]).unwrap()
    }

    fn panel(rates: &[f64]) -> ExpertPanel {
        ExpertPanel::from_accuracies(rates).unwrap()
    }

    #[test]
    fn binary_entropy_endpoints_and_peak() {
        assert_eq!(binary_entropy(0.0), 0.0);
        assert_eq!(binary_entropy(1.0), 0.0);
        assert!((binary_entropy(0.5) - std::f64::consts::LN_2).abs() < 1e-12);
        // Symmetry.
        assert!((binary_entropy(0.3) - binary_entropy(0.7)).abs() < 1e-12);
    }

    #[test]
    fn binary_entropy_clamps_roundoff_leakage() {
        // A marginal a few ulps outside [0, 1] clamps to an endpoint
        // instead of producing NaN through ln of a negative number.
        assert_eq!(binary_entropy(1.0 + 1e-12), 0.0);
        assert_eq!(binary_entropy(-1e-12), 0.0);
    }

    #[test]
    fn family_distribution_normalises() {
        let b = table_i_belief();
        let p = panel(&[0.9, 0.8]);
        for facts in [vec![FactId(0)], vec![FactId(0), FactId(2)]] {
            let q = b.project(&facts);
            let dist = family_distribution_projected(&q, &p).unwrap();
            assert_eq!(dist.len(), 1 << (facts.len() * 2));
            let sum: f64 = dist.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "sum {sum} for |T|={}", facts.len());
        }
    }

    #[test]
    fn fast_path_matches_naive_oracle() {
        let b = table_i_belief();
        let cases: Vec<(Vec<FactId>, Vec<f64>)> = vec![
            (vec![FactId(0)], vec![0.9]),
            (vec![FactId(1)], vec![0.9, 0.75]),
            (vec![FactId(0), FactId(1)], vec![0.85]),
            (vec![FactId(0), FactId(2)], vec![0.95, 0.6]),
            (vec![FactId(0), FactId(1), FactId(2)], vec![0.9, 0.8]),
        ];
        for (facts, rates) in cases {
            let p = panel(&rates);
            let fast = conditional_entropy(&b, &facts, &p).unwrap();
            let naive = conditional_entropy_naive(&b, &facts, &p).unwrap();
            assert!(
                (fast - naive).abs() < 1e-9,
                "facts {facts:?} rates {rates:?}: fast {fast} vs naive {naive}"
            );
        }
    }

    #[test]
    fn conditional_entropy_is_representation_agnostic() {
        // Full-support sparse shares the dense chunk layout, so the
        // projection-based fast path is bit-identical; factored differs
        // only by float product order.
        let dense = table_i_belief();
        let sparse = dense.to_sparse(1 << 3).unwrap();
        let factored = Belief::factored(vec![
            Belief::from_probs(vec![0.3, 0.7]).unwrap(),
            Belief::from_probs(vec![0.1, 0.2, 0.3, 0.4]).unwrap(),
        ])
        .unwrap();
        let factored_dense = factored.to_dense().unwrap();
        let p = panel(&[0.9, 0.75]);
        let queries = vec![FactId(0), FactId(2)];
        let h_dense = conditional_entropy(&dense, &queries, &p).unwrap();
        let h_sparse = conditional_entropy(&sparse, &queries, &p).unwrap();
        assert_eq!(h_dense.to_bits(), h_sparse.to_bits());
        let h_fact = conditional_entropy(&factored, &queries, &p).unwrap();
        let h_fact_dense = conditional_entropy(&factored_dense, &queries, &p).unwrap();
        assert!(
            (h_fact - h_fact_dense).abs() < 1e-12,
            "factored {h_fact} vs dense {h_fact_dense}"
        );
    }

    #[test]
    fn conditioning_never_increases_entropy() {
        // Information never hurts: H(O|AS) <= H(O).
        let b = table_i_belief();
        let p = panel(&[0.9]);
        let h_o = b.entropy();
        for f in 0..3u32 {
            let h = conditional_entropy(&b, &[FactId(f)], &p).unwrap();
            assert!(h <= h_o + 1e-12, "H(O|AS)={h} > H(O)={h_o}");
        }
    }

    #[test]
    fn chance_worker_gives_zero_gain() {
        // A 0.5-accuracy expert's answers are pure noise: the conditional
        // entropy equals the prior entropy.
        let b = table_i_belief();
        let p = panel(&[0.5]);
        let h = conditional_entropy(&b, &[FactId(0)], &p).unwrap();
        assert!((h - b.entropy()).abs() < 1e-9);
    }

    #[test]
    fn perfect_worker_resolves_queried_fact() {
        // A perfect expert answering about f removes exactly the marginal
        // entropy contribution of f: H(O|AS) = H(O) - H_b(P(f))... only
        // when f is independent of the rest; in general it equals
        // H(O) - I(O; f) = H(O|f).
        let b = Belief::from_marginals(&[0.7, 0.4]).unwrap();
        let p = panel(&[1.0]);
        let h = conditional_entropy(&b, &[FactId(0)], &p).unwrap();
        let expected = b.entropy() - binary_entropy(b.marginal(FactId(0)));
        assert!((h - expected).abs() < 1e-9);
    }

    #[test]
    fn empty_query_set_changes_nothing() {
        let b = table_i_belief();
        let p = panel(&[0.9]);
        let h = conditional_entropy(&b, &[], &p).unwrap();
        assert!((h - b.entropy()).abs() < 1e-12);
    }

    #[test]
    fn more_experts_reduce_conditional_entropy() {
        let b = table_i_belief();
        let one = conditional_entropy(&b, &[FactId(0)], &panel(&[0.8])).unwrap();
        let two = conditional_entropy(&b, &[FactId(0)], &panel(&[0.8, 0.8])).unwrap();
        assert!(two < one, "second expert must add information");
    }

    #[test]
    fn larger_query_sets_reduce_conditional_entropy() {
        let b = table_i_belief();
        let p = panel(&[0.85]);
        let h1 = conditional_entropy(&b, &[FactId(0)], &p).unwrap();
        let h2 = conditional_entropy(&b, &[FactId(0), FactId(1)], &p).unwrap();
        assert!(h2 < h1, "monotonicity of information");
    }

    #[test]
    fn quality_gain_matches_direct_difference() {
        let b = table_i_belief();
        let p = panel(&[0.9, 0.8]);
        let current = [FactId(0)];
        let h_as = answer_family_entropy(&b, &current, &p).unwrap();
        let gain = quality_gain(&b, &current, FactId(2), h_as, &p).unwrap();
        let h_t = conditional_entropy(&b, &current, &p).unwrap();
        let h_tf = conditional_entropy(&b, &[FactId(0), FactId(2)], &p).unwrap();
        assert!((gain - (h_t - h_tf)).abs() < 1e-9);
        assert!(gain >= 0.0, "information gain is non-negative");
    }

    #[test]
    fn family_bits_limit_enforced() {
        let b = Belief::uniform(16).unwrap();
        let p = panel(&[0.9, 0.9, 0.9, 0.9]);
        let facts: Vec<FactId> = (0..16).map(FactId).collect();
        // 16 * 4 = 64 bits > MAX_FAMILY_BITS.
        assert!(matches!(
            conditional_entropy(&b, &facts, &p),
            Err(HcError::TooManyFacts(64))
        ));
    }

    #[test]
    fn dropout_zero_matches_reliable_objective() {
        let b = table_i_belief();
        let p = panel(&[0.9, 0.8]);
        let facts = [FactId(0), FactId(2)];
        let with = conditional_entropy_with_dropout(&b, &facts, &p, 0.0).unwrap();
        let without = conditional_entropy(&b, &facts, &p).unwrap();
        assert!((with - without).abs() < 1e-12);
    }

    #[test]
    fn dropout_one_learns_nothing() {
        let b = table_i_belief();
        let p = panel(&[0.9, 0.8]);
        let h = conditional_entropy_with_dropout(&b, &[FactId(1)], &p, 1.0).unwrap();
        assert!((h - b.entropy()).abs() < 1e-12);
    }

    #[test]
    fn dropout_objective_is_monotone_in_dropout() {
        // More dropout => less expected information => higher H(O | AS, D).
        let b = table_i_belief();
        let p = panel(&[0.9, 0.8]);
        let facts = [FactId(0)];
        let mut prev = -1.0;
        for d in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let h = conditional_entropy_with_dropout(&b, &facts, &p, d).unwrap();
            assert!(h >= prev - 1e-12, "dropout {d}: {h} < {prev}");
            assert!(h <= b.entropy() + 1e-12);
            prev = h;
        }
    }

    #[test]
    fn dropout_objective_mixes_subsets() {
        // One worker, dropout d: the expectation is explicit.
        let b = table_i_belief();
        let p = panel(&[0.85]);
        let d = 0.3;
        let h = conditional_entropy_with_dropout(&b, &[FactId(2)], &p, d).unwrap();
        let h_present = conditional_entropy(&b, &[FactId(2)], &p).unwrap();
        let expected = (1.0 - d) * h_present + d * b.entropy();
        assert!((h - expected).abs() < 1e-9);
    }

    #[test]
    fn dropout_rate_is_validated() {
        let b = table_i_belief();
        let p = panel(&[0.9]);
        assert!(matches!(
            conditional_entropy_with_dropout(&b, &[FactId(0)], &p, -0.1),
            Err(HcError::InvalidProbability(_))
        ));
        assert!(matches!(
            conditional_entropy_with_dropout(&b, &[FactId(0)], &p, 1.5),
            Err(HcError::InvalidProbability(_))
        ));
    }

    #[test]
    fn degenerate_empty_query_set_fast_and_naive_agree_exactly() {
        // k = 0: the single trivial answer family carries no information,
        // so both paths must return the prior entropy *bit-exactly*.
        let b = table_i_belief();
        let p = panel(&[0.9, 0.8]);
        let prior = b.entropy();
        let fast = conditional_entropy(&b, &[], &p).unwrap();
        let naive = conditional_entropy_naive(&b, &[], &p).unwrap();
        assert_eq!(fast.to_bits(), prior.to_bits());
        assert_eq!(naive.to_bits(), prior.to_bits());
    }

    #[test]
    fn degenerate_empty_panel_fast_and_naive_agree_exactly() {
        // m = 0: no experts answer, so checking learns nothing.
        let b = table_i_belief();
        let empty = panel(&[]);
        let prior = b.entropy();
        let facts = [FactId(0), FactId(2)];
        let fast = conditional_entropy(&b, &facts, &empty).unwrap();
        let naive = conditional_entropy_naive(&b, &facts, &empty).unwrap();
        assert_eq!(fast.to_bits(), prior.to_bits());
        assert_eq!(naive.to_bits(), prior.to_bits());
    }

    #[test]
    fn degenerate_fully_dropped_out_round_is_prior_entropy_exactly() {
        // dropout = 1: every worker is absent for the whole round, which
        // must match the empty-panel objective bit-for-bit.
        let b = table_i_belief();
        let p = panel(&[0.9, 0.8]);
        let prior = b.entropy();
        let h = conditional_entropy_with_dropout(&b, &[FactId(1)], &p, 1.0).unwrap();
        assert_eq!(h.to_bits(), prior.to_bits());
        let via_empty = conditional_entropy(&b, &[FactId(1)], &panel(&[])).unwrap();
        assert_eq!(h.to_bits(), via_empty.to_bits());
    }

    #[test]
    fn degenerate_empty_queries_under_dropout() {
        // k = 0 composed with partial dropout still learns nothing.
        let b = table_i_belief();
        let p = panel(&[0.9]);
        let h = conditional_entropy_with_dropout(&b, &[], &p, 0.4).unwrap();
        assert!((h - b.entropy()).abs() < 1e-12);
    }

    #[test]
    fn entropy_of_is_bit_identical_across_thread_counts() {
        let dist: Vec<f64> = (0..10_000).map(|i| ((i % 97) as f64 + 0.5) / 1e4).collect();
        let serial = {
            let _g = crate::parallel::scoped(crate::parallel::Parallelism::Serial);
            entropy_of(&dist)
        };
        for threads in [2usize, 8] {
            let _g = crate::parallel::scoped(crate::parallel::Parallelism::Threads(threads));
            assert_eq!(entropy_of(&dist).to_bits(), serial.to_bits());
        }
    }

    #[test]
    fn deterministic_belief_has_zero_conditional_entropy() {
        let b = Belief::point_mass(3, crate::observation::Observation(5)).unwrap();
        let p = panel(&[0.9]);
        let h = conditional_entropy(&b, &[FactId(0)], &p).unwrap();
        assert!(h.abs() < 1e-12);
        assert!(h >= 0.0, "clamped at zero");
    }
}
