//! Checkpoint overhead and resume latency micro-benchmark.
//!
//! Drives the chaos fixture (`hc_sim::crash::SessionFixture`) start to
//! finish with the `--checkpoint-every 1` discipline and times every
//! durability operation a crash-safe deployment pays for:
//!
//! - **encode** — serialize session state into a checksummed
//!   [`CheckpointFrame`] JSON line (per step);
//! - **snapshot write** — atomic temp+fsync+rename replace of the
//!   snapshot file (per step);
//! - **scan** — find the latest valid checkpoint embedded in the full
//!   JSONL trace (what recovery does first);
//! - **snapshot read / from_frame / cursor restore** — rehydrate the
//!   session and oracle stack from the final checkpoint;
//! - **fold resume** — reconstruct the same state by folding the raw
//!   event trace (the snapshot-less recovery path).
//!
//! ```bash
//! cargo run --release -p hc-bench --bin checkpoint_bench > BENCH_checkpoint.json
//! ```
//!
//! Stderr gets a human-readable table; stdout one stamped envelope (see
//! [`hc_bench::stamp`]) whose `"results"` payload holds the
//! minimum-of-repeats nanosecond timings.

use hc_core::session::{HcSession, ResumableOracle, SessionEnv, SessionStatus};
use hc_core::telemetry::checkpoint::{latest_in_jsonl, read_snapshot, write_snapshot};
use hc_core::telemetry::{RecordingSink, TelemetryEvent};
use hc_core::{resume_state_from_trace, MultiBelief, Parallelism, RoundRecord, UnitCost};
use hc_sim::crash::SessionFixture;
use std::time::Instant;

/// Timing repeats for the resume-path measurements; minimum reported.
const REPEATS: usize = 20;

fn nanos(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

fn min_nanos(repeats: usize, mut f: impl FnMut()) -> u64 {
    let mut best = u64::MAX;
    for _ in 0..repeats {
        let start = Instant::now();
        f();
        best = best.min(nanos(start));
    }
    best
}

fn main() {
    let fixture = SessionFixture::standard(Parallelism::Serial);
    let snapshot_path =
        std::env::temp_dir().join(format!("hc_checkpoint_bench_{}.ckpt", std::process::id()));

    // ---- Checkpointed run: per-step encode + snapshot-write cost ----
    let mut session = fixture.session();
    let mut oracle = fixture.stack();
    let mut rng = SessionFixture::loop_rng();
    let mut sink = RecordingSink::new();
    let mut trace = String::new();
    let mut emitted = 0usize;
    let mut steps = 0u64;
    let mut encode_total = 0u64;
    let mut snapshot_total = 0u64;
    loop {
        let status = {
            let mut obs = |_: &MultiBelief, _: &RoundRecord| {};
            let mut env = SessionEnv {
                oracle: &mut oracle,
                rng: &mut rng,
                sink: &mut sink,
                observer: &mut obs,
            };
            session.step(&mut env).expect("bench fixture step")
        };
        steps += 1;
        for event in &sink.events()[emitted..] {
            trace.push_str(&event.to_json_line());
            trace.push('\n');
        }
        emitted = sink.events().len();

        let start = Instant::now();
        session.set_oracle_cursor(Some(oracle.save_cursor()));
        let frame = session.checkpoint_frame(steps);
        let line = frame.to_json_line();
        encode_total += nanos(start);
        trace.push_str(&line);
        trace.push('\n');

        let start = Instant::now();
        write_snapshot(&snapshot_path, &frame).expect("bench snapshot write");
        snapshot_total += nanos(start);

        if matches!(status, SessionStatus::Finished(_)) {
            break;
        }
    }
    let encode_per_step = encode_total / steps;
    let snapshot_per_step = snapshot_total / steps;

    // ---- Recovery paths ---------------------------------------------
    let scan_nanos = min_nanos(REPEATS, || {
        latest_in_jsonl(&trace).expect("trace has checkpoints");
    });
    let snapshot_read_nanos = min_nanos(REPEATS, || {
        read_snapshot(&snapshot_path).expect("bench snapshot read");
    });
    let frame = read_snapshot(&snapshot_path).expect("final frame");
    let frame_bytes = frame.to_json_line().len();
    let selector = hc_core::GreedySelector::new();
    let from_frame_nanos = min_nanos(REPEATS, || {
        HcSession::from_frame(&frame, &selector, &UnitCost).expect("bench from_frame");
    });
    let resumed = HcSession::from_frame(&frame, &selector, &UnitCost).expect("bench from_frame");
    let cursor = resumed
        .state()
        .oracle_cursor
        .clone()
        .expect("final checkpoint carries a cursor");
    let cursor_restore_nanos = min_nanos(REPEATS, || {
        let mut stack = fixture.stack();
        stack.restore_cursor(&cursor).expect("bench cursor restore");
    });

    let events: Vec<TelemetryEvent> = trace
        .lines()
        .filter_map(|l| TelemetryEvent::from_json_line(l).ok())
        .collect();
    let (beliefs, panel, config) = fixture.fold_inputs();
    let fold_nanos = min_nanos(REPEATS, || {
        resume_state_from_trace(beliefs.clone(), panel.clone(), config.clone(), &events)
            .expect("bench fold resume");
    });
    let _ = std::fs::remove_file(&snapshot_path);

    eprintln!("checkpoint_bench: {steps} steps, frame {frame_bytes} bytes");
    eprintln!("{:>22} {:>12}", "operation", "nanos");
    for (name, v) in [
        ("encode/step", encode_per_step),
        ("snapshot write/step", snapshot_per_step),
        ("trace scan", scan_nanos),
        ("snapshot read", snapshot_read_nanos),
        ("from_frame", from_frame_nanos),
        ("cursor restore", cursor_restore_nanos),
        ("fold resume", fold_nanos),
    ] {
        eprintln!("{name:>22} {v:>12}");
    }
    let results = format!(
        "{{\"steps\":{steps},\"frame_bytes\":{frame_bytes},\
         \"encode_nanos_per_step\":{encode_per_step},\
         \"snapshot_write_nanos_per_step\":{snapshot_per_step},\
         \"trace_scan_nanos\":{scan_nanos},\
         \"snapshot_read_nanos\":{snapshot_read_nanos},\
         \"from_frame_nanos\":{from_frame_nanos},\
         \"cursor_restore_nanos\":{cursor_restore_nanos},\
         \"fold_resume_nanos\":{fold_nanos}}}"
    );
    println!("{}", hc_bench::stamp::stamped("checkpoint", &results));
}
