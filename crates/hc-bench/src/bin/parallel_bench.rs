//! Serial-vs-parallel curves for greedy checking-task selection.
//!
//! For a sweep of task sizes `n` (facts per task, so `2^n` belief cells
//! and `n` candidates to score each step), runs the same
//! `GreedySelector` call under `Parallelism::Serial` and under the
//! machine's full thread count, verifies the selections are identical
//! (they are bit-identical by construction — see `hc_core::parallel`),
//! and reports the speedup per point:
//!
//! ```bash
//! cargo run --release -p hc-bench --bin parallel_bench > BENCH_parallel.json
//! ```
//!
//! Stdout is one stamped envelope (see [`hc_bench::stamp`]) whose
//! `"results"` payload is
//! `{"threads":T,"points":[{"n":..,"serial_nanos":..,"parallel_nanos":..,
//! "speedup":..},..],"identical":true}`.

use hc_bench::{bench_panel, bench_rng, bench_single_task};
use hc_core::parallel::{self, Parallelism};
use hc_core::selection::{global_facts, GlobalFact, GreedySelector, TaskSelector};
use std::fmt::Write as _;
use std::time::Instant;

/// Facts-per-task sweep; `n` is also the candidate count per step.
const SIZES: [usize; 4] = [8, 10, 12, 14];
/// Queries per round: deep enough that the per-candidate answer-family
/// entropies dominate (family bits = K·m = 12 ≤ 30).
const K: usize = 6;
/// Timing repeats per point; the minimum is reported.
const REPEATS: usize = 5;

fn run_selection(n: usize, policy: Parallelism) -> (Vec<GlobalFact>, u64) {
    let beliefs = bench_single_task(n);
    let panel = bench_panel();
    let candidates = global_facts(&beliefs);
    let selector = GreedySelector::new();
    let _guard = parallel::scoped(policy);
    let mut best_nanos = u64::MAX;
    let mut selection = Vec::new();
    for _ in 0..REPEATS {
        let mut rng = bench_rng();
        let start = Instant::now();
        selection = selector
            .select(&beliefs, &panel, K, &candidates, &mut rng)
            .expect("bench selection succeeds");
        let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        best_nanos = best_nanos.min(nanos);
    }
    (selection, best_nanos)
}

fn main() {
    let threads = Parallelism::Auto.effective_threads();
    let mut identical = true;
    let mut points = String::new();
    eprintln!("parallel_bench: {threads} thread(s)");
    eprintln!("{:>4} {:>14} {:>14} {:>8}", "n", "serial_ns", "parallel_ns", "speedup");
    for (i, &n) in SIZES.iter().enumerate() {
        let (serial_sel, serial_nanos) = run_selection(n, Parallelism::Serial);
        let (parallel_sel, parallel_nanos) = run_selection(n, Parallelism::Threads(threads));
        if serial_sel != parallel_sel {
            identical = false;
        }
        let speedup = serial_nanos as f64 / parallel_nanos.max(1) as f64;
        eprintln!("{n:>4} {serial_nanos:>14} {parallel_nanos:>14} {speedup:>8.2}");
        if i > 0 {
            points.push(',');
        }
        let _ = write!(
            points,
            "{{\"n\":{n},\"serial_nanos\":{serial_nanos},\"parallel_nanos\":{parallel_nanos},\"speedup\":{speedup:.4}}}"
        );
    }
    let results =
        format!("{{\"threads\":{threads},\"points\":[{points}],\"identical\":{identical}}}");
    println!("{}", hc_bench::stamp::stamped("parallel", &results));
    assert!(identical, "serial and parallel selections must be identical");
}
