//! Micro-benchmark over the telemetry timing spans.
//!
//! Runs the three instrumented hot paths — greedy selection,
//! conditional entropy, and the partial Bayes update — by driving full
//! HC loops on the bench fixtures with per-phase timing enabled, then
//! prints the per-phase latency histograms (stderr, human-readable) and
//! a stamped `BENCH_telemetry.json` envelope (stdout, see
//! [`hc_bench::stamp`]) whose `"results"` payload is the per-phase
//! p50/p95/p99 summary:
//!
//! ```bash
//! cargo run --release -p hc-bench --bin telemetry_bench > BENCH_telemetry.json
//! ```

use hc_bench::{bench_panel, bench_single_task};
use hc_core::hc::{run_hc, HcConfig};
use hc_core::selection::GreedySelector;
use hc_core::telemetry::timing;
use hc_sim::SamplingOracle;
use rand::rngs::StdRng;
use rand::SeedableRng;

const ITERATIONS: usize = 10;

fn main() {
    timing::set_enabled(true);
    timing::reset();

    let panel = bench_panel();
    let selector = GreedySelector::new();
    // A 10-fact correlated task keeps each kernel invocation
    // non-trivial while the full sweep stays sub-second.
    let truths = vec![vec![true; 10]];
    for i in 0..ITERATIONS {
        let beliefs = bench_single_task(10);
        let mut oracle = SamplingOracle::new(&truths, StdRng::seed_from_u64(7 + i as u64));
        let mut rng = StdRng::seed_from_u64(i as u64);
        run_hc(
            beliefs,
            &panel,
            &selector,
            &mut oracle,
            &HcConfig::new(2, 40),
            &mut rng,
        )
        .expect("bench fixture loop succeeds");
    }

    let snapshot = timing::snapshot();
    eprintln!("{}", snapshot.render_table());
    println!(
        "{}",
        hc_bench::stamp::stamped("telemetry", &snapshot.to_bench_json())
    );
}
