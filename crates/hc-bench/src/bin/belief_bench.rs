//! Dense vs sparse vs factored belief kernels across group sizes.
//!
//! For each group size `n` in the sweep, builds the same
//! product-form belief in every representation that supports `n`
//! (dense only up to `MAX_FACTS`), then times the three kernels the HC
//! loop spends its rounds in: `entropy()`, a 3-fact `project()`, and a
//! 3-query Bayes update. This is the "2^n wall" picture: dense cost
//! doubles per fact and stops at 26, sparse/factored stay flat.
//!
//! ```bash
//! cargo run --release -p hc-bench --bin belief_bench > BENCH_belief.json
//! ```
//!
//! Stdout is one stamped envelope (see [`hc_bench::stamp`]) whose
//! `"results"` payload is
//! `{"points":[{"n":..,"repr":"dense","entropy_nanos":..,
//! "project_nanos":..,"update_nanos":..},..]}`.

use hc_core::answer::{Answer, AnswerSet, QuerySet};
use hc_core::belief::{Belief, DEFAULT_SPARSE_SUPPORT, MAX_FACTS};
use hc_core::fact::FactId;
use hc_core::update::update_with_answer_set;
use std::fmt::Write as _;
use std::time::Instant;

/// Group sizes: two dense-reachable points and two past the wall.
const SIZES: [usize; 4] = [16, 26, 32, 40];
/// Factored blocks hold at most this many facts (2^8 dense cells).
const BLOCK: usize = 8;
/// Timing repeats per kernel; the minimum is reported.
const REPEATS: usize = 7;
/// Target wall time per timing sample: long enough to amortise load
/// spikes on shared runners, short enough to keep the sweep fast.
const TARGET_SAMPLE_NANOS: u128 = 25_000_000;

/// Deterministic, mildly varied per-fact marginals.
fn marginals(n: usize) -> Vec<f64> {
    (0..n).map(|i| 0.55 + 0.04 * ((i % 10) as f64)).collect()
}

/// The three facts the project/update kernels query: the ends and the
/// middle of the group.
fn query_facts(n: usize) -> Vec<FactId> {
    vec![FactId(0), FactId((n / 2) as u32), FactId((n - 1) as u32)]
}

fn build(n: usize, repr: &str) -> Belief {
    let m = marginals(n);
    match repr {
        "dense" => Belief::from_marginals(&m).expect("dense bench belief"),
        "sparse" => {
            Belief::sparse_from_marginals(&m, DEFAULT_SPARSE_SUPPORT).expect("sparse bench belief")
        }
        "factored" => {
            let blocks = m
                .chunks(BLOCK)
                .map(|c| Belief::from_marginals(c).expect("factored bench block"))
                .collect();
            Belief::factored(blocks).expect("factored bench belief")
        }
        other => unreachable!("unknown repr {other}"),
    }
}

fn min_nanos(mut op: impl FnMut()) -> u64 {
    // Warm-up doubles as calibration: batch fast kernels so every
    // sample spans ~TARGET_SAMPLE_NANOS, keeping run-to-run noise well
    // inside the CI regression gate.
    let start = Instant::now();
    op();
    let once = start.elapsed().as_nanos().max(1);
    let batch = u128::clamp(TARGET_SAMPLE_NANOS / once, 1, 100_000) as usize;
    let mut best = u64::MAX;
    for _ in 0..REPEATS {
        let start = Instant::now();
        for _ in 0..batch {
            op();
        }
        let nanos =
            u64::try_from(start.elapsed().as_nanos() / batch as u128).unwrap_or(u64::MAX);
        best = best.min(nanos);
    }
    best
}

fn main() {
    let mut points = String::new();
    let mut first = true;
    eprintln!(
        "{:>4} {:>8} {:>14} {:>14} {:>14}",
        "n", "repr", "entropy_ns", "project_ns", "update_ns"
    );
    for &n in &SIZES {
        for repr in ["dense", "sparse", "factored"] {
            if repr == "dense" && n > MAX_FACTS {
                continue;
            }
            let belief = build(n, repr);
            let facts = query_facts(n);
            let queries = QuerySet::new(facts.clone(), n).expect("bench query set");
            let answers = AnswerSet::new(&[Answer::Yes, Answer::No, Answer::Yes]);
            let entropy_nanos = min_nanos(|| {
                std::hint::black_box(belief.entropy());
            });
            let project_nanos = min_nanos(|| {
                std::hint::black_box(belief.project(&facts));
            });
            let update_nanos = min_nanos(|| {
                let mut b = belief.clone();
                update_with_answer_set(&mut b, &queries, 0.9, answers)
                    .expect("bench update succeeds");
                std::hint::black_box(&b);
            });
            eprintln!(
                "{n:>4} {repr:>8} {entropy_nanos:>14} {project_nanos:>14} {update_nanos:>14}"
            );
            if !first {
                points.push(',');
            }
            first = false;
            let _ = write!(
                points,
                "{{\"n\":{n},\"repr\":\"{repr}\",\"entropy_nanos\":{entropy_nanos},\"project_nanos\":{project_nanos},\"update_nanos\":{update_nanos}}}"
            );
        }
    }
    let results = format!("{{\"points\":[{points}]}}");
    println!("{}", hc_bench::stamp::stamped("belief", &results));
}
