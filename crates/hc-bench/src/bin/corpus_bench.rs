//! Corpus-scheduler throughput at 1k / 10k / 100k facts.
//!
//! Builds synthetic corpora of independent five-fact groups (so 32
//! belief cells each), pools one global checking budget over them, and
//! times `CorpusScheduler::run` — cross-group CELF allocation, per-group
//! rounds, and the drain steps that finish every group. The run is
//! RNG-free (truthful oracles, greedy selector), so the spend/entropy
//! numbers in the payload are bit-stable across machines; only the
//! timings vary.
//!
//! ```bash
//! cargo run --release -p hc-bench --bin corpus_bench > BENCH_corpus.json
//! cargo run --release -p hc-bench --bin corpus_bench -- --quick  # CI smoke
//! ```
//!
//! Stdout is one stamped envelope (see [`hc_bench::stamp`]) whose
//! `"results"` payload is `{"quick":bool,"scales":[{"facts":..,
//! "groups":..,"steps":..,"spent":..,"entropy_initial":..,
//! "entropy_final":..,"entropy_per_spend":..,"nanos":..,
//! "groups_per_sec":..,"steps_per_sec":..},..]}`.

use hc_core::corpus::{CorpusBudget, CorpusEnv, CorpusScheduler};
use hc_core::selection::GreedySelector;
use hc_core::session::HcSession;
use hc_core::telemetry::NullSink;
use hc_core::{
    Answer, AnswerOracle, AnswerOutcome, ExpertPanel, GlobalFact, HcConfig, MultiBelief,
    RoundRecord, UnitCost, Worker,
};
use hc_core::{Belief, Result};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::fmt::Write as _;
use std::time::Instant;

/// Facts per group; each group is one correlated five-fact task.
const FACTS_PER_GROUP: usize = 5;
/// Corpus scales in total facts — ~1k, ~10k, ~100k.
const SCALES: [usize; 3] = [1_000, 10_000, 100_000];

/// A deterministic expert crowd answering the group's fixed ground
/// truth; never touches the RNG, so the whole bench is replay-exact.
struct TruthfulGroup {
    group: usize,
}

impl AnswerOracle for TruthfulGroup {
    fn answer(&mut self, _worker: &Worker, fact: GlobalFact) -> AnswerOutcome {
        // Ground truth varies by group and fact but costs no state.
        let truth = (self.group + fact.fact.index()) % 3 != 0;
        AnswerOutcome::Answered(Answer::from_bool(truth))
    }
}

struct ScalePoint {
    facts: usize,
    groups: usize,
    steps: u64,
    spent: u64,
    entropy_initial: f64,
    entropy_final: f64,
    nanos: u64,
}

/// One timed corpus run at `total_facts` facts. The pooled budget gives
/// roughly half the groups one checking round; every group still costs
/// a drain step, so throughput covers both the productive allocation
/// and the long finishing tail.
fn run_scale(total_facts: usize) -> Result<ScalePoint> {
    let groups = total_facts / FACTS_PER_GROUP;
    let selector = GreedySelector::new();
    let costs = UnitCost;
    let panel = ExpertPanel::from_accuracies(&[0.95, 0.9]).expect("bench panel");
    let config = HcConfig::new(1, u64::MAX / 2);
    let sessions: Vec<HcSession<'_>> = (0..groups)
        .map(|g| {
            // Deterministic per-group joints of varying sharpness and
            // correlation — no RNG anywhere in the corpus build.
            let base = 0.45 + (g % 7) as f64 * 0.015;
            let corr = 0.55 + (g % 5) as f64 * 0.04;
            let joint = hc_data::markov_joint(FACTS_PER_GROUP, base, corr);
            let beliefs = MultiBelief::new(vec![
                Belief::from_probs(joint).expect("markov joint is valid"),
            ]);
            HcSession::start(beliefs, panel.clone(), config.clone(), &selector, &costs)
        })
        .collect::<Result<_>>()?;
    let pool = groups as u64; // panel costs 2/round => ~groups/2 rounds
    let mut scheduler = CorpusScheduler::new(sessions, CorpusBudget::Pooled(pool));
    let entropy_initial = scheduler.entropy();

    let mut oracles: Vec<TruthfulGroup> = (0..groups).map(|group| TruthfulGroup { group }).collect();
    let mut rngs: Vec<StdRng> = (0..groups).map(|g| StdRng::seed_from_u64(g as u64)).collect();
    let mut sink = NullSink;
    let mut observer = |_: usize, _: &MultiBelief, _: &RoundRecord| {};
    let mut env = CorpusEnv {
        oracles: oracles
            .iter_mut()
            .map(|o| o as &mut dyn AnswerOracle)
            .collect(),
        rngs: rngs.iter_mut().map(|r| r as &mut dyn RngCore).collect(),
        sink: &mut sink,
        observer: &mut observer,
    };
    let start = Instant::now();
    let report = scheduler.run(&mut env)?;
    let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
    assert_eq!(
        report.groups_finished, groups,
        "every group must finish (drain steps included)"
    );
    assert!(report.spent <= pool, "pooled budget respected");
    Ok(ScalePoint {
        facts: groups * FACTS_PER_GROUP,
        groups,
        steps: report.steps,
        spent: report.spent,
        entropy_initial,
        entropy_final: report.entropy,
        nanos,
    })
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scales: &[usize] = if quick { &SCALES[..1] } else { &SCALES[..] };
    eprintln!(
        "corpus_bench: {} scale(s){}",
        scales.len(),
        if quick { " (--quick)" } else { "" }
    );
    eprintln!(
        "{:>8} {:>8} {:>8} {:>8} {:>12} {:>12} {:>12}",
        "facts", "groups", "steps", "spent", "nanos", "groups/s", "steps/s"
    );
    let mut points = String::new();
    for (i, &total_facts) in scales.iter().enumerate() {
        let p = run_scale(total_facts).expect("bench corpus runs");
        let secs = p.nanos as f64 / 1e9;
        let groups_per_sec = p.groups as f64 / secs.max(1e-9);
        let steps_per_sec = p.steps as f64 / secs.max(1e-9);
        let entropy_per_spend = (p.entropy_initial - p.entropy_final) / p.spent.max(1) as f64;
        eprintln!(
            "{:>8} {:>8} {:>8} {:>8} {:>12} {:>12.0} {:>12.0}",
            p.facts, p.groups, p.steps, p.spent, p.nanos, groups_per_sec, steps_per_sec
        );
        if i > 0 {
            points.push(',');
        }
        let _ = write!(
            points,
            "{{\"facts\":{},\"groups\":{},\"steps\":{},\"spent\":{},\
             \"entropy_initial\":{:.6},\"entropy_final\":{:.6},\
             \"entropy_per_spend\":{:.6},\"nanos\":{},\
             \"groups_per_sec\":{:.1},\"steps_per_sec\":{:.1}}}",
            p.facts,
            p.groups,
            p.steps,
            p.spent,
            p.entropy_initial,
            p.entropy_final,
            entropy_per_spend,
            p.nanos,
            groups_per_sec,
            steps_per_sec
        );
    }
    let results = format!("{{\"quick\":{quick},\"scales\":[{points}]}}");
    println!("{}", hc_bench::stamp::stamped("corpus", &results));
}
