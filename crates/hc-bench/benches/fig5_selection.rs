//! Figure 5 kernels: the three selection methods (OPT, Approx, Random)
//! on the same belief state at k = 2 and k = 3.
//!
//! Regenerate the figure's series with
//! `cargo run --release -p hc-eval -- --experiment fig5`.

use criterion::{criterion_group, criterion_main, Criterion};
use hc_bench::{bench_corpus, bench_prepared, bench_rng};
use hc_core::selection::{ExactSelector, GreedySelector, RandomSelector, TaskSelector};
use std::hint::black_box;

fn selectors(c: &mut Criterion) {
    let dataset = bench_corpus();
    let prepared = bench_prepared(&dataset);
    let candidates = hc_core::selection::global_facts(&prepared.beliefs);
    let methods: Vec<Box<dyn TaskSelector>> = vec![
        Box::new(ExactSelector::new()),
        Box::new(GreedySelector::new()),
        Box::new(RandomSelector::new()),
    ];
    for k in [2usize, 3] {
        let mut group = c.benchmark_group(format!("fig5/select_k{k}"));
        // OPT over C(120, 3) subsets is the slow one; keep samples low.
        group.sample_size(10);
        for method in &methods {
            let mut rng = bench_rng();
            group.bench_function(method.name(), |b| {
                b.iter(|| {
                    method
                        .select(
                            black_box(&prepared.beliefs),
                            &prepared.panel,
                            k,
                            &candidates,
                            &mut rng,
                        )
                        .unwrap()
                })
            });
        }
        group.finish();
    }
}

criterion_group!(benches, selectors);
criterion_main!(benches);
