//! Figure 3 kernel: one greedy selection round at each swept `k` —
//! the per-round cost the k-trade-off discussion (§III-D) weighs against
//! answer-collection latency.
//!
//! Regenerate the figure's series with
//! `cargo run --release -p hc-eval -- --experiment fig3`.

use criterion::{criterion_group, criterion_main, Criterion};
use hc_bench::{bench_corpus, bench_prepared, bench_rng};
use hc_core::selection::{GreedySelector, TaskSelector};
use std::hint::black_box;

fn selection_by_k(c: &mut Criterion) {
    let dataset = bench_corpus();
    let prepared = bench_prepared(&dataset);
    let selector = GreedySelector::new();
    let candidates = hc_core::selection::global_facts(&prepared.beliefs);
    let mut group = c.benchmark_group("fig3/select");
    for k in [1usize, 2, 3] {
        let mut rng = bench_rng();
        group.bench_function(format!("k{k}"), |b| {
            b.iter(|| {
                selector
                    .select(
                        black_box(&prepared.beliefs),
                        &prepared.panel,
                        k,
                        &candidates,
                        &mut rng,
                    )
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, selection_by_k);
criterion_main!(benches);
