//! Figure 2 kernels: every baseline aggregator on the standard corpus,
//! plus the budget-augmentation step and one full HC checking round.
//!
//! Regenerate the figure's series with
//! `cargo run --release -p hc-eval -- --experiment fig2`.

use criterion::{criterion_group, criterion_main, Criterion};
use hc_baselines::all_aggregators;
use hc_bench::{bench_corpus, bench_prepared, bench_rng};
use hc_core::selection::{GreedySelector, TaskSelector};
use hc_eval::experiments::augmented_matrix;
use std::hint::black_box;

fn aggregators(c: &mut Criterion) {
    let dataset = bench_corpus();
    let mut group = c.benchmark_group("fig2/aggregate");
    for agg in all_aggregators() {
        group.bench_function(agg.name(), |b| {
            b.iter(|| agg.aggregate(black_box(&dataset.matrix)).unwrap())
        });
    }
    group.finish();
}

fn augmentation(c: &mut Criterion) {
    let dataset = bench_corpus();
    c.bench_function("fig2/augment_matrix_b60", |b| {
        b.iter(|| augmented_matrix(black_box(&dataset), 0.9, 60))
    });
}

fn hc_selection_round(c: &mut Criterion) {
    let dataset = bench_corpus();
    let prepared = bench_prepared(&dataset);
    let selector = GreedySelector::new();
    let candidates = hc_core::selection::global_facts(&prepared.beliefs);
    let mut rng = bench_rng();
    c.bench_function("fig2/hc_select_k1", |b| {
        b.iter(|| {
            selector
                .select(
                    black_box(&prepared.beliefs),
                    &prepared.panel,
                    1,
                    &candidates,
                    &mut rng,
                )
                .unwrap()
        })
    });
}

criterion_group!(benches, aggregators, augmentation, hc_selection_round);
criterion_main!(benches);
