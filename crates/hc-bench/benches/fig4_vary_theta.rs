//! Figure 4 kernel: crowd splitting, EBCC initialisation, and pipeline
//! preparation at each swept threshold θ — the setup cost that changes
//! with the expert/preliminary split.
//!
//! Regenerate the figure's series with
//! `cargo run --release -p hc-eval -- --experiment fig4`.

use criterion::{criterion_group, criterion_main, Criterion};
use hc_baselines::Ebcc;
use hc_bench::bench_corpus;
use hc_eval::experiments::aggregator_marginals;
use hc_sim::{prepare, InitMethod, PipelineConfig};
use std::hint::black_box;

fn prepare_by_theta(c: &mut Criterion) {
    let dataset = bench_corpus();
    let mut group = c.benchmark_group("fig4/prepare");
    for theta in [0.8, 0.85, 0.9] {
        group.bench_function(format!("theta{theta}"), |b| {
            b.iter(|| {
                let marginals = aggregator_marginals(black_box(&dataset), theta, &Ebcc::new());
                prepare(
                    &dataset,
                    &PipelineConfig {
                        theta,
                        group_size: 5,
                    },
                    &InitMethod::Marginals(marginals),
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

fn crowd_split(c: &mut Criterion) {
    let dataset = bench_corpus();
    let crowd = dataset.crowd().unwrap();
    c.bench_function("fig4/crowd_split", |b| {
        b.iter(|| black_box(&crowd).split(black_box(0.9)))
    });
}

criterion_group!(benches, prepare_by_theta, crowd_split);
criterion_main!(benches);
