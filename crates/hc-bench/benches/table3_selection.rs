//! Table III kernel: OPT vs Approx selection time on a single
//! correlated many-fact task, k swept.
//!
//! The bench uses a 12-fact task and k ≤ 4 so Criterion iterations stay
//! tractable; the full >20-fact, k ≤ 10 measurement (with the paper's
//! timeouts) is produced by
//! `cargo run --release -p hc-eval -- --experiment table3`.

use criterion::{criterion_group, criterion_main, Criterion};
use hc_bench::{bench_panel, bench_rng, bench_single_task};
use hc_core::selection::{ExactSelector, GreedySelector, TaskSelector};
use std::hint::black_box;

fn opt_vs_approx(c: &mut Criterion) {
    let beliefs = bench_single_task(12);
    let panel = bench_panel();
    let candidates = hc_core::selection::global_facts(&beliefs);
    for k in [1usize, 2, 3, 4] {
        let mut group = c.benchmark_group(format!("table3/k{k}"));
        group.sample_size(10);
        let mut rng = bench_rng();
        let greedy = GreedySelector::new();
        group.bench_function("Approx", |b| {
            b.iter(|| {
                greedy
                    .select(black_box(&beliefs), &panel, k, &candidates, &mut rng)
                    .unwrap()
            })
        });
        let exact = ExactSelector::new();
        group.bench_function("OPT", |b| {
            b.iter(|| {
                exact
                    .select(black_box(&beliefs), &panel, k, &candidates, &mut rng)
                    .unwrap()
            })
        });
        group.finish();
    }
}

criterion_group!(benches, opt_vs_approx);
criterion_main!(benches);
