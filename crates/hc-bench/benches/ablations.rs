//! Ablation benches for the design choices called out in `DESIGN.md`:
//!
//! * `chain_rule` — conditional entropy via the chain-rule + projection
//!   fast path vs the naive Equation (34) enumeration.
//! * `incremental_greedy` — plain task-dirty greedy vs CELF lazy greedy
//!   on a many-fact single task.
//! * `projection` — belief projection (the `O(2^n)` pass that feeds
//!   every entropy kernel) across fact counts.
//! * `update` — single-fact Bayes-update fast path vs the generic
//!   multi-fact path.

use criterion::{criterion_group, criterion_main, Criterion};
use hc_bench::{bench_panel, bench_rng, bench_single_task};
use hc_core::answer::{Answer, AnswerFamily, AnswerSet, QuerySet};
use hc_core::entropy::{conditional_entropy, conditional_entropy_naive};
use hc_core::fact::FactId;
use hc_core::selection::{GreedySelector, TaskSelector};
use hc_core::update::update_with_family;
use std::hint::black_box;

fn chain_rule(c: &mut Criterion) {
    let beliefs = bench_single_task(10);
    let belief = &beliefs.tasks()[0];
    let panel = bench_panel();
    let facts = [FactId(0), FactId(3), FactId(7)];
    let mut group = c.benchmark_group("ablation/chain_rule");
    group.bench_function("fast", |b| {
        b.iter(|| conditional_entropy(black_box(belief), &facts, &panel).unwrap())
    });
    group.bench_function("naive_eq34", |b| {
        b.iter(|| conditional_entropy_naive(black_box(belief), &facts, &panel).unwrap())
    });
    group.finish();
}

fn incremental_greedy(c: &mut Criterion) {
    let beliefs = bench_single_task(14);
    let panel = bench_panel();
    let candidates = hc_core::selection::global_facts(&beliefs);
    let mut group = c.benchmark_group("ablation/greedy_schedule");
    group.sample_size(10);
    for (name, selector) in [
        ("plain", GreedySelector::new()),
        ("lazy_celf", GreedySelector::lazy()),
    ] {
        let mut rng = bench_rng();
        group.bench_function(name, |b| {
            b.iter(|| {
                selector
                    .select(black_box(&beliefs), &panel, 4, &candidates, &mut rng)
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn beam_width(c: &mut Criterion) {
    use hc_core::selection::BeamSelector;
    let beliefs = bench_single_task(12);
    let panel = bench_panel();
    let candidates = hc_core::selection::global_facts(&beliefs);
    let mut group = c.benchmark_group("ablation/beam_width");
    group.sample_size(10);
    for width in [1usize, 4, 16] {
        let selector = BeamSelector::new(width);
        let mut rng = bench_rng();
        group.bench_function(format!("w{width}"), |b| {
            b.iter(|| {
                selector
                    .select(black_box(&beliefs), &panel, 3, &candidates, &mut rng)
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn projection(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/projection");
    for facts in [8usize, 12, 16, 20] {
        let beliefs = bench_single_task(facts);
        let belief = &beliefs.tasks()[0];
        let query = [FactId(0), FactId(1)];
        group.bench_function(format!("n{facts}"), |b| {
            b.iter(|| black_box(belief).project(&query))
        });
    }
    group.finish();
}

fn update(c: &mut Criterion) {
    let panel = bench_panel();
    let mut group = c.benchmark_group("ablation/update");

    let beliefs = bench_single_task(16);
    let single = QuerySet::new(vec![FactId(2)], 16).unwrap();
    let single_family = AnswerFamily::new(vec![
        AnswerSet::new(&[Answer::Yes]),
        AnswerSet::new(&[Answer::Yes]),
    ]);
    group.bench_function("single_fact", |b| {
        b.iter(|| {
            let mut belief = beliefs.tasks()[0].clone();
            update_with_family(&mut belief, &single, &panel, &single_family).unwrap()
        })
    });

    let multi = QuerySet::new(vec![FactId(2), FactId(9), FactId(14)], 16).unwrap();
    let multi_family = AnswerFamily::new(vec![
        AnswerSet::new(&[Answer::Yes, Answer::No, Answer::Yes]),
        AnswerSet::new(&[Answer::Yes, Answer::Yes, Answer::No]),
    ]);
    group.bench_function("multi_fact", |b| {
        b.iter(|| {
            let mut belief = beliefs.tasks()[0].clone();
            update_with_family(&mut belief, &multi, &panel, &multi_family).unwrap()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    chain_rule,
    incremental_greedy,
    beam_width,
    projection,
    update
);
criterion_main!(benches);
