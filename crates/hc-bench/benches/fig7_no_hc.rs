//! Figure 7 kernels: one selection round in the hierarchical
//! configuration (2-expert panel, EBCC init) vs the NO-HC configuration
//! (whole 8-worker crowd, uniform init).
//!
//! Regenerate the figure's series with
//! `cargo run --release -p hc-eval -- --experiment fig7`.

use criterion::{criterion_group, criterion_main, Criterion};
use hc_bench::{bench_corpus, bench_prepared, bench_rng};
use hc_core::selection::{GreedySelector, TaskSelector};
use hc_core::worker::ExpertPanel;
use hc_sim::{prepare, InitMethod, PipelineConfig};
use std::hint::black_box;

fn hc_round(c: &mut Criterion) {
    let dataset = bench_corpus();
    let prepared = bench_prepared(&dataset);
    let selector = GreedySelector::new();
    let candidates = hc_core::selection::global_facts(&prepared.beliefs);
    let mut rng = bench_rng();
    c.bench_function("fig7/hc_round", |b| {
        b.iter(|| {
            selector
                .select(
                    black_box(&prepared.beliefs),
                    &prepared.panel,
                    1,
                    &candidates,
                    &mut rng,
                )
                .unwrap()
        })
    });
}

fn no_hc_round(c: &mut Criterion) {
    let dataset = bench_corpus();
    let config = PipelineConfig::paper_default();
    let uniform = prepare(&dataset, &config, &InitMethod::Uniform).unwrap();
    let whole_crowd = ExpertPanel::from_accuracies(&dataset.worker_accuracies).unwrap();
    let selector = GreedySelector::new();
    let candidates = hc_core::selection::global_facts(&uniform.beliefs);
    let mut rng = bench_rng();
    c.bench_function("fig7/no_hc_round", |b| {
        b.iter(|| {
            selector
                .select(
                    black_box(&uniform.beliefs),
                    &whole_crowd,
                    1,
                    &candidates,
                    &mut rng,
                )
                .unwrap()
        })
    });
}

criterion_group!(benches, hc_round, no_hc_round);
criterion_main!(benches);
