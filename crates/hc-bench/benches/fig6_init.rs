//! Figure 6 kernels: building the initial belief state from each
//! aggregator's posteriors (aggregate on CP answers + product-belief
//! construction).
//!
//! Regenerate the figure's series with
//! `cargo run --release -p hc-eval -- --experiment fig6`.

use criterion::{criterion_group, criterion_main, Criterion};
use hc_baselines::all_aggregators;
use hc_bench::bench_corpus;
use hc_eval::experiments::aggregator_marginals;
use hc_sim::{prepare, InitMethod, PipelineConfig};
use std::hint::black_box;

fn init_by_aggregator(c: &mut Criterion) {
    let dataset = bench_corpus();
    let config = PipelineConfig::paper_default();
    let mut group = c.benchmark_group("fig6/init");
    for agg in all_aggregators() {
        group.bench_function(agg.name(), |b| {
            b.iter(|| {
                let marginals =
                    aggregator_marginals(black_box(&dataset), config.theta, agg.as_ref());
                prepare(&dataset, &config, &InitMethod::Marginals(marginals)).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, init_by_aggregator);
criterion_main!(benches);
