//! CSV interop with the Zheng et al. truth-inference benchmark format
//! \[29\] — the format the paper's real datasets ship in:
//!
//! * `answer.csv` — header `question,worker,answer`, one crowdsourced
//!   answer per line;
//! * `truth.csv` — header `question,truth`, one gold label per line.
//!
//! Question and worker identifiers are arbitrary strings; this module
//! interns them into dense indices (returning the mappings so labels can
//! be traced back). Only numeric class labels `0..n_classes` are
//! accepted.
//!
//! Hand-rolled parsing: the format has no quoting or escaping in the
//! benchmark releases, so a CSV crate would be an unjustified
//! dependency.

use crate::dataset::CrowdDataset;
use crate::error::{DataError, Result};
use crate::matrix::{AnswerEntry, AnswerMatrix};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::Path;

/// String-id ↔ dense-index mappings recovered while importing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Interning {
    /// Question id of each item index.
    pub items: Vec<String>,
    /// Worker id of each worker index.
    pub workers: Vec<String>,
}

/// Parses `answer.csv` + `truth.csv` contents into a dataset.
///
/// Worker accuracies are estimated against the gold truth (clamped into
/// `[0.5, 1.0]`, the §II-A admissible range); items without a gold label
/// are rejected, as every experiment here needs full ground truth.
pub fn parse_benchmark(answers_csv: &str, truth_csv: &str) -> Result<(CrowdDataset, Interning)> {
    let mut interning = Interning::default();
    let mut item_index: HashMap<String, u32> = HashMap::new();
    let mut worker_index: HashMap<String, u32> = HashMap::new();
    let mut entries: Vec<AnswerEntry> = Vec::new();
    let mut max_label = 0u8;

    for (lineno, line) in non_header_lines(answers_csv, "question,worker,answer") {
        let mut parts = line.split(',');
        let (Some(q), Some(w), Some(a), None) =
            (parts.next(), parts.next(), parts.next(), parts.next())
        else {
            return Err(bad_line("answer.csv", lineno, line));
        };
        let label: u8 = a
            .trim()
            .parse()
            .map_err(|_| bad_line("answer.csv", lineno, line))?;
        max_label = max_label.max(label);
        let item = intern(q, &mut item_index, &mut interning.items);
        let worker = intern(w, &mut worker_index, &mut interning.workers);
        entries.push(AnswerEntry {
            item,
            worker,
            label,
        });
    }

    let n_items = interning.items.len();
    let mut truth = vec![None; n_items];
    for (lineno, line) in non_header_lines(truth_csv, "question,truth") {
        let mut parts = line.split(',');
        let (Some(q), Some(t), None) = (parts.next(), parts.next(), parts.next()) else {
            return Err(bad_line("truth.csv", lineno, line));
        };
        let label: u8 = t
            .trim()
            .parse()
            .map_err(|_| bad_line("truth.csv", lineno, line))?;
        max_label = max_label.max(label);
        let Some(&item) = item_index.get(q.trim()) else {
            // Gold for a question nobody answered: ignore, matching the
            // benchmark loaders.
            continue;
        };
        truth[item as usize] = Some(label);
    }

    let ground_truth: Vec<u8> = truth
        .into_iter()
        .enumerate()
        .map(|(item, t)| {
            t.ok_or_else(|| {
                DataError::InvalidConfig(format!(
                    "question {:?} has answers but no gold truth",
                    interning.items[item]
                ))
            })
        })
        .collect::<Result<_>>()?;

    let n_classes = usize::from(max_label) + 1;
    let matrix = AnswerMatrix::new(n_items, interning.workers.len(), n_classes, entries)?;
    let accuracies: Vec<f64> = matrix
        .worker_accuracy(&ground_truth)
        .into_iter()
        .map(|acc| acc.unwrap_or(0.5).clamp(0.5, 1.0))
        .collect();
    let dataset = CrowdDataset::new(matrix, ground_truth, accuracies)?;
    Ok((dataset, interning))
}

/// Loads `answer.csv` and `truth.csv` from a benchmark directory.
pub fn load_benchmark_dir(dir: &Path) -> Result<(CrowdDataset, Interning)> {
    let answers = std::fs::read_to_string(dir.join("answer.csv"))?;
    let truth = std::fs::read_to_string(dir.join("truth.csv"))?;
    parse_benchmark(&answers, &truth)
}

/// Renders a dataset back into `(answer.csv, truth.csv)` contents, using
/// `q<item>` / `w<worker>` identifiers.
pub fn to_benchmark_csv(dataset: &CrowdDataset) -> (String, String) {
    let mut answers = String::from("question,worker,answer\n");
    for e in dataset.matrix.entries() {
        let _ = writeln!(answers, "q{},w{},{}", e.item, e.worker, e.label);
    }
    let mut truth = String::from("question,truth\n");
    for (item, &t) in dataset.ground_truth.iter().enumerate() {
        let _ = writeln!(truth, "q{item},{t}");
    }
    (answers, truth)
}

/// Writes `answer.csv` and `truth.csv` into a directory.
pub fn save_benchmark_dir(dataset: &CrowdDataset, dir: &Path) -> Result<()> {
    std::fs::create_dir_all(dir)?;
    let (answers, truth) = to_benchmark_csv(dataset);
    std::fs::write(dir.join("answer.csv"), answers)?;
    std::fs::write(dir.join("truth.csv"), truth)?;
    Ok(())
}

/// Yields trimmed, non-empty lines with 1-based numbers, skipping an
/// optional header line.
fn non_header_lines<'a>(
    content: &'a str,
    header: &'a str,
) -> impl Iterator<Item = (usize, &'a str)> {
    content
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(move |(i, l)| !(l.is_empty() || *i == 1 && l.eq_ignore_ascii_case(header)))
}

fn intern(raw: &str, index: &mut HashMap<String, u32>, names: &mut Vec<String>) -> u32 {
    let key = raw.trim();
    if let Some(&idx) = index.get(key) {
        return idx;
    }
    let idx = names.len() as u32;
    names.push(key.to_string());
    index.insert(key.to_string(), idx);
    idx
}

fn bad_line(file: &str, lineno: usize, line: &str) -> DataError {
    DataError::InvalidConfig(format!("{file}:{lineno}: malformed line {line:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{generate, SynthConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const ANSWERS: &str = "\
question,worker,answer
tweet-1,alice,1
tweet-1,bob,0
tweet-2,alice,0
tweet-2,bob,0
";
    const TRUTH: &str = "\
question,truth
tweet-1,1
tweet-2,0
";

    #[test]
    fn parses_benchmark_format() {
        let (ds, interning) = parse_benchmark(ANSWERS, TRUTH).unwrap();
        assert_eq!(ds.n_items(), 2);
        assert_eq!(ds.n_workers(), 2);
        assert_eq!(ds.ground_truth, vec![1, 0]);
        assert_eq!(interning.items, vec!["tweet-1", "tweet-2"]);
        assert_eq!(interning.workers, vec!["alice", "bob"]);
        // alice: 2/2 correct; bob: 1/2 -> clamped to 0.5.
        assert_eq!(ds.worker_accuracies, vec![1.0, 0.5]);
    }

    #[test]
    fn header_is_optional_and_blank_lines_skipped() {
        let no_header = "tweet-1,alice,1\n\n tweet-2 , alice , 0 \n";
        let (ds, _) = parse_benchmark(no_header, "tweet-1,1\ntweet-2,0\n").unwrap();
        assert_eq!(ds.matrix.len(), 2);
    }

    #[test]
    fn missing_gold_is_rejected() {
        let err = parse_benchmark(ANSWERS, "question,truth\ntweet-1,1\n");
        assert!(matches!(err, Err(DataError::InvalidConfig(_))));
    }

    #[test]
    fn gold_for_unanswered_question_is_ignored() {
        let truth = format!("{TRUTH}tweet-99,1\n");
        let (ds, _) = parse_benchmark(ANSWERS, &truth).unwrap();
        assert_eq!(ds.n_items(), 2);
    }

    #[test]
    fn malformed_lines_are_reported_with_location() {
        let err = parse_benchmark("a,b\n", TRUTH).unwrap_err();
        assert!(err.to_string().contains("answer.csv:1"));
        let err = parse_benchmark(ANSWERS, "q,notanumber\n").unwrap_err();
        assert!(err.to_string().contains("truth.csv:1"));
    }

    #[test]
    fn synthetic_corpus_round_trips_through_csv() {
        let mut config = SynthConfig::paper_default();
        config.n_tasks = 4;
        let original = generate(&config, &mut StdRng::seed_from_u64(3)).unwrap();
        let (answers, truth) = to_benchmark_csv(&original);
        let (restored, _) = parse_benchmark(&answers, &truth).unwrap();
        assert_eq!(restored.matrix, original.matrix);
        assert_eq!(restored.ground_truth, original.ground_truth);
        // Accuracies become gold-estimates rather than generator
        // parameters; they must correlate but need not be equal.
        assert_eq!(restored.worker_accuracies.len(), original.worker_accuracies.len());
    }

    #[test]
    fn benchmark_dir_round_trip() {
        let mut config = SynthConfig::paper_default();
        config.n_tasks = 2;
        let ds = generate(&config, &mut StdRng::seed_from_u64(4)).unwrap();
        let dir = std::env::temp_dir().join("hc_data_csv_test");
        save_benchmark_dir(&ds, &dir).unwrap();
        let (restored, _) = load_benchmark_dir(&dir).unwrap();
        assert_eq!(restored.matrix, ds.matrix);
        std::fs::remove_dir_all(&dir).ok();
    }
}
