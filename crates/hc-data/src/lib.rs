//! # hc-data — corpora for hierarchical crowdsourcing
//!
//! Dataset containers ([`matrix`], [`dataset`]), the 5-facts-per-task
//! grouping of §IV-A ([`group`]), a synthetic heterogeneous-crowd corpus
//! generator replacing the paper's offline sentiment dataset ([`synth`];
//! see `DESIGN.md` for the substitution rationale), and JSON / binary
//! snapshot codecs ([`io`]).

#![warn(missing_docs)]

pub mod csv;
pub mod dataset;
pub mod error;
pub mod group;
pub mod io;
pub mod matrix;
pub mod stats;
pub mod synth;

pub use dataset::CrowdDataset;
pub use error::{DataError, Result};
pub use group::TaskGrouping;
pub use matrix::{AnswerEntry, AnswerMatrix};
pub use stats::{fleiss_kappa, matrix_stats, worker_agreement, MatrixStats};
pub use synth::{generate, markov_joint, AccuracyModel, CrowdProfile, SynthConfig, SystematicErrors};
