//! Error types for dataset construction and (de)serialisation.

use std::fmt;

/// Errors from `hc-data` containers, generators, and codecs.
#[derive(Debug)]
pub enum DataError {
    /// An answer referenced an item, worker, or label outside the
    /// matrix's declared dimensions.
    OutOfRange {
        /// Item index of the offending entry.
        item: u32,
        /// Worker index of the offending entry.
        worker: u32,
        /// Label of the offending entry.
        label: u8,
    },
    /// A worker answered the same item more than once.
    DuplicateAnswer {
        /// Item answered twice.
        item: u32,
        /// Worker who answered twice.
        worker: u32,
    },
    /// A configuration value was invalid (message explains which).
    InvalidConfig(String),
    /// Ground truth or accuracy vectors disagree with the matrix shape.
    ShapeMismatch {
        /// Expected length.
        expected: usize,
        /// Actual length.
        actual: usize,
    },
    /// The binary snapshot was truncated or corrupt.
    CorruptSnapshot(String),
    /// Underlying JSON (de)serialisation failure.
    Json(serde_json::Error),
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Propagated core-model error (e.g. invalid accuracy).
    Core(hc_core::HcError),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::OutOfRange {
                item,
                worker,
                label,
            } => write!(
                f,
                "answer (item {item}, worker {worker}, label {label}) out of range"
            ),
            DataError::DuplicateAnswer { item, worker } => {
                write!(f, "worker {worker} answered item {item} twice")
            }
            DataError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            DataError::ShapeMismatch { expected, actual } => {
                write!(f, "shape mismatch: expected {expected}, got {actual}")
            }
            DataError::CorruptSnapshot(msg) => write!(f, "corrupt snapshot: {msg}"),
            DataError::Json(e) => write!(f, "json error: {e}"),
            DataError::Io(e) => write!(f, "io error: {e}"),
            DataError::Core(e) => write!(f, "core error: {e}"),
        }
    }
}

impl std::error::Error for DataError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DataError::Json(e) => Some(e),
            DataError::Io(e) => Some(e),
            DataError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<serde_json::Error> for DataError {
    fn from(e: serde_json::Error) -> Self {
        DataError::Json(e)
    }
}

impl From<std::io::Error> for DataError {
    fn from(e: std::io::Error) -> Self {
        DataError::Io(e)
    }
}

impl From<hc_core::HcError> for DataError {
    fn from(e: hc_core::HcError) -> Self {
        DataError::Core(e)
    }
}

/// Result alias for `hc-data`.
pub type Result<T> = std::result::Result<T, DataError>;

// PartialEq only for the variants tests compare; error payloads like
// io::Error are not comparable.
impl PartialEq for DataError {
    fn eq(&self, other: &Self) -> bool {
        use DataError::*;
        match (self, other) {
            (
                OutOfRange {
                    item: a,
                    worker: b,
                    label: c,
                },
                OutOfRange {
                    item: x,
                    worker: y,
                    label: z,
                },
            ) => (a, b, c) == (x, y, z),
            (
                DuplicateAnswer { item: a, worker: b },
                DuplicateAnswer { item: x, worker: y },
            ) => (a, b) == (x, y),
            (InvalidConfig(a), InvalidConfig(b)) => a == b,
            (
                ShapeMismatch {
                    expected: a,
                    actual: b,
                },
                ShapeMismatch {
                    expected: x,
                    actual: y,
                },
            ) => (a, b) == (x, y),
            (CorruptSnapshot(a), CorruptSnapshot(b)) => a == b,
            (Core(a), Core(b)) => a == b,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = DataError::OutOfRange {
            item: 1,
            worker: 2,
            label: 3,
        };
        assert!(e.to_string().contains("worker 2"));
        assert!(DataError::InvalidConfig("bad".into())
            .to_string()
            .contains("bad"));
    }

    #[test]
    fn conversions_work() {
        let e: DataError = hc_core::HcError::EmptyCrowd.into();
        assert!(matches!(e, DataError::Core(_)));
    }
}
