//! Dataset (de)serialisation: human-readable JSON and a compact binary
//! snapshot format.
//!
//! JSON is the interchange format (inspectable, diffable); the binary
//! snapshot (`HCDS` magic, little-endian, built on `bytes`) is for large
//! corpora where JSON's ~6× size overhead matters.

use crate::dataset::CrowdDataset;
use crate::error::{DataError, Result};
use crate::matrix::{AnswerEntry, AnswerMatrix};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fs;
use std::path::Path;

/// Magic bytes of the binary snapshot format.
const MAGIC: &[u8; 4] = b"HCDS";
/// Current snapshot format version.
const VERSION: u16 = 1;

/// Saves a dataset as pretty-printed JSON.
pub fn save_json(dataset: &CrowdDataset, path: &Path) -> Result<()> {
    let json = serde_json::to_string_pretty(dataset)?;
    fs::write(path, json)?;
    Ok(())
}

/// Loads a dataset from JSON.
pub fn load_json(path: &Path) -> Result<CrowdDataset> {
    let json = fs::read_to_string(path)?;
    Ok(serde_json::from_str(&json)?)
}

/// Encodes a dataset into the binary snapshot format.
pub fn encode_snapshot(dataset: &CrowdDataset) -> Bytes {
    let m = &dataset.matrix;
    let mut buf = BytesMut::with_capacity(32 + m.n_items() + 8 * m.n_workers() + 9 * m.len());
    buf.put_slice(MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u32_le(m.n_items() as u32);
    buf.put_u32_le(m.n_workers() as u32);
    buf.put_u16_le(m.n_classes() as u16);
    buf.put_u64_le(m.len() as u64);
    for &t in &dataset.ground_truth {
        buf.put_u8(t);
    }
    for &a in &dataset.worker_accuracies {
        buf.put_f64_le(a);
    }
    for e in m.entries() {
        buf.put_u32_le(e.item);
        buf.put_u32_le(e.worker);
        buf.put_u8(e.label);
    }
    buf.freeze()
}

/// Decodes a binary snapshot.
///
/// # Errors
///
/// [`DataError::CorruptSnapshot`] on bad magic, unknown version, or
/// truncation; construction errors if the decoded contents are invalid.
pub fn decode_snapshot(mut data: Bytes) -> Result<CrowdDataset> {
    let corrupt = |msg: &str| DataError::CorruptSnapshot(msg.to_string());
    if data.remaining() < 4 + 2 + 4 + 4 + 2 + 8 {
        return Err(corrupt("header truncated"));
    }
    let mut magic = [0u8; 4];
    data.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(corrupt("bad magic"));
    }
    let version = data.get_u16_le();
    if version != VERSION {
        return Err(DataError::CorruptSnapshot(format!(
            "unsupported version {version}"
        )));
    }
    let n_items = data.get_u32_le() as usize;
    let n_workers = data.get_u32_le() as usize;
    let n_classes = data.get_u16_le() as usize;
    let n_entries = data.get_u64_le() as usize;

    let body = n_items + 8 * n_workers + 9 * n_entries;
    if data.remaining() < body {
        return Err(corrupt("body truncated"));
    }
    let mut ground_truth = vec![0u8; n_items];
    data.copy_to_slice(&mut ground_truth);
    let mut worker_accuracies = Vec::with_capacity(n_workers);
    for _ in 0..n_workers {
        worker_accuracies.push(data.get_f64_le());
    }
    let mut entries = Vec::with_capacity(n_entries);
    for _ in 0..n_entries {
        let item = data.get_u32_le();
        let worker = data.get_u32_le();
        let label = data.get_u8();
        entries.push(AnswerEntry {
            item,
            worker,
            label,
        });
    }
    let matrix = AnswerMatrix::new(n_items, n_workers, n_classes, entries)?;
    CrowdDataset::new(matrix, ground_truth, worker_accuracies)
}

/// Saves a dataset as a binary snapshot file.
pub fn save_snapshot(dataset: &CrowdDataset, path: &Path) -> Result<()> {
    fs::write(path, encode_snapshot(dataset))?;
    Ok(())
}

/// Loads a dataset from a binary snapshot file.
pub fn load_snapshot(path: &Path) -> Result<CrowdDataset> {
    let data = fs::read(path)?;
    decode_snapshot(Bytes::from(data))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{generate, SynthConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample() -> CrowdDataset {
        let mut config = SynthConfig::paper_default();
        config.n_tasks = 4;
        generate(&config, &mut StdRng::seed_from_u64(5)).unwrap()
    }

    #[test]
    fn snapshot_round_trips() {
        let ds = sample();
        let decoded = decode_snapshot(encode_snapshot(&ds)).unwrap();
        assert_eq!(ds, decoded);
    }

    #[test]
    fn json_round_trips_via_files() {
        let ds = sample();
        let dir = std::env::temp_dir().join("hc_data_io_test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ds.json");
        save_json(&ds, &path).unwrap();
        let loaded = load_json(&path).unwrap();
        assert_eq!(ds, loaded);
        fs::remove_file(path).ok();
    }

    #[test]
    fn snapshot_round_trips_via_files() {
        let ds = sample();
        let dir = std::env::temp_dir().join("hc_data_io_test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ds.hcds");
        save_snapshot(&ds, &path).unwrap();
        let loaded = load_snapshot(&path).unwrap();
        assert_eq!(ds, loaded);
        fs::remove_file(path).ok();
    }

    #[test]
    fn snapshot_is_much_smaller_than_json() {
        let ds = sample();
        let bin = encode_snapshot(&ds).len();
        let json = serde_json::to_string(&ds).unwrap().len();
        assert!(bin * 3 < json, "binary {bin} vs json {json}");
    }

    #[test]
    fn corrupt_snapshots_are_rejected() {
        let ds = sample();
        let good = encode_snapshot(&ds);

        // Bad magic.
        let mut bad = BytesMut::from(&good[..]);
        bad[0] = b'X';
        assert!(matches!(
            decode_snapshot(bad.freeze()),
            Err(DataError::CorruptSnapshot(_))
        ));

        // Truncated body.
        let truncated = good.slice(0..good.len() - 3);
        assert!(matches!(
            decode_snapshot(truncated),
            Err(DataError::CorruptSnapshot(_))
        ));

        // Truncated header.
        assert!(matches!(
            decode_snapshot(good.slice(0..6)),
            Err(DataError::CorruptSnapshot(_))
        ));

        // Unknown version.
        let mut versioned = BytesMut::from(&good[..]);
        versioned[4] = 99;
        assert!(matches!(
            decode_snapshot(versioned.freeze()),
            Err(DataError::CorruptSnapshot(_))
        ));
    }
}
