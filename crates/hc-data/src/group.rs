//! Task grouping: merging consecutive items into multi-fact tasks.
//!
//! §IV-A: "we aggregate 5 tasks of the same dataset to form a new task.
//! Then, each task has 5 facts" — 1000 sentiment items become 200
//! five-fact tasks whose facts are treated as correlated. This module
//! provides that mapping plus the bridges from a grouped [`CrowdDataset`]
//! into `hc-core` structures (vote tables, ground truths, global fact
//! addressing).

use crate::dataset::CrowdDataset;
use crate::error::{DataError, Result};
use hc_core::init::VoteTable;
use hc_core::selection::GlobalFact;
use hc_core::Answer;

/// A partition of `n_items` into consecutive tasks of `group_size` facts
/// (the final task may be smaller when `n_items` is not a multiple).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskGrouping {
    n_items: usize,
    group_size: usize,
}

impl TaskGrouping {
    /// Groups `n_items` into tasks of `group_size` facts.
    ///
    /// # Errors
    ///
    /// [`DataError::InvalidConfig`] for a zero group size.
    pub fn new(n_items: usize, group_size: usize) -> Result<Self> {
        if group_size == 0 {
            return Err(DataError::InvalidConfig("group_size must be >= 1".into()));
        }
        if group_size > hc_core::belief::SPARSE_MAX_FACTS {
            return Err(DataError::InvalidConfig(format!(
                "group_size {group_size} exceeds the sparse belief limit"
            )));
        }
        Ok(TaskGrouping {
            n_items,
            group_size,
        })
    }

    /// Number of tasks.
    pub fn n_tasks(&self) -> usize {
        self.n_items.div_ceil(self.group_size)
    }

    /// Number of facts in task `t`.
    pub fn task_len(&self, task: usize) -> usize {
        let start = task * self.group_size;
        (self.n_items - start).min(self.group_size)
    }

    /// The item index behind a task-local fact.
    pub fn item_of(&self, gf: GlobalFact) -> usize {
        gf.task * self.group_size + gf.fact.index()
    }

    /// The `(task, fact)` address of an item.
    pub fn fact_of(&self, item: usize) -> GlobalFact {
        GlobalFact::new(item / self.group_size, (item % self.group_size) as u32)
    }

    /// Item ranges per task.
    pub fn task_items(&self, task: usize) -> std::ops::Range<usize> {
        let start = task * self.group_size;
        start..start + self.task_len(task)
    }

    /// Per-task ground truths as booleans (binary corpora only).
    pub fn grouped_truth(&self, dataset: &CrowdDataset) -> Result<Vec<Vec<bool>>> {
        let flat = dataset.binary_truth()?;
        Ok((0..self.n_tasks())
            .map(|t| self.task_items(t).map(|i| flat[i]).collect())
            .collect())
    }

    /// Per-task [`VoteTable`]s from the answers of the given workers —
    /// the input of the Equation (15) belief initialisation.
    ///
    /// # Errors
    ///
    /// Propagates [`hc_core::HcError::EmptyCrowd`] when some fact received
    /// no votes from the selected workers.
    pub fn vote_tables(
        &self,
        dataset: &CrowdDataset,
        workers: impl Fn(u32) -> bool,
    ) -> Result<Vec<VoteTable>> {
        if dataset.matrix.n_classes() != 2 {
            return Err(DataError::InvalidConfig(
                "vote tables need a binary corpus".into(),
            ));
        }
        let mut tables = Vec::with_capacity(self.n_tasks());
        for t in 0..self.n_tasks() {
            let votes: Vec<Vec<Answer>> = self
                .task_items(t)
                .map(|item| {
                    dataset
                        .matrix
                        .by_item(item)
                        .iter()
                        .filter(|e| workers(e.worker))
                        .map(|e| Answer::from_bool(e.label == 1))
                        .collect()
                })
                .collect();
            tables.push(VoteTable::new(votes)?);
        }
        Ok(tables)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::{AnswerEntry, AnswerMatrix};

    fn dataset(n_items: usize, n_workers: usize) -> CrowdDataset {
        // Every worker answers every item with the truth (alternating).
        let truth: Vec<u8> = (0..n_items).map(|i| (i % 2) as u8).collect();
        let entries = (0..n_items as u32)
            .flat_map(|i| {
                (0..n_workers as u32).map(move |w| AnswerEntry {
                    item: i,
                    worker: w,
                    label: (i % 2) as u8,
                })
            })
            .collect();
        let matrix = AnswerMatrix::new(n_items, n_workers, 2, entries).unwrap();
        CrowdDataset::new(matrix, truth, vec![0.8; n_workers]).unwrap()
    }

    #[test]
    fn grouping_counts_tasks() {
        let g = TaskGrouping::new(10, 5).unwrap();
        assert_eq!(g.n_tasks(), 2);
        assert_eq!(g.task_len(0), 5);
        let ragged = TaskGrouping::new(11, 5).unwrap();
        assert_eq!(ragged.n_tasks(), 3);
        assert_eq!(ragged.task_len(2), 1);
    }

    #[test]
    fn addressing_round_trips() {
        let g = TaskGrouping::new(12, 5).unwrap();
        for item in 0..12 {
            assert_eq!(g.item_of(g.fact_of(item)), item);
        }
        assert_eq!(g.fact_of(7), GlobalFact::new(1, 2));
    }

    #[test]
    fn grouped_truth_matches_items() {
        let ds = dataset(6, 2);
        let g = TaskGrouping::new(6, 3).unwrap();
        let truth = g.grouped_truth(&ds).unwrap();
        assert_eq!(truth, vec![vec![false, true, false], vec![true, false, true]]);
    }

    #[test]
    fn vote_tables_follow_votes() {
        let ds = dataset(4, 3);
        let g = TaskGrouping::new(4, 2).unwrap();
        let tables = g.vote_tables(&ds, |_| true).unwrap();
        assert_eq!(tables.len(), 2);
        // Items 0,2 are all-No; items 1,3 all-Yes.
        assert_eq!(tables[0].yes_fractions(), vec![0.0, 1.0]);
        assert_eq!(tables[1].yes_fractions(), vec![0.0, 1.0]);
    }

    #[test]
    fn vote_tables_respect_worker_filter() {
        let ds = dataset(2, 3);
        let g = TaskGrouping::new(2, 2).unwrap();
        // Keeping no workers leaves facts unanswered -> error.
        assert!(g.vote_tables(&ds, |_| false).is_err());
        let one = g.vote_tables(&ds, |w| w == 0).unwrap();
        assert_eq!(one.len(), 1);
    }

    #[test]
    fn zero_group_size_rejected() {
        assert!(TaskGrouping::new(4, 0).is_err());
        assert!(TaskGrouping::new(4, 999).is_err());
    }
}
