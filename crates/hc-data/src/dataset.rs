//! The complete crowdsourced dataset: answers, ground truth, and worker
//! accuracies.

use crate::error::{DataError, Result};
use crate::matrix::AnswerMatrix;
use hc_core::Crowd;
use serde::{Deserialize, Serialize};

/// A fully-collected crowdsourcing corpus, mirroring the offline replay
/// setting of §IV-A: every worker's answer to every item is recorded up
/// front, the ground truth is known for evaluation only, and worker
/// accuracies are either the generator's true parameters or estimates
/// from gold questions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrowdDataset {
    /// All collected answers.
    pub matrix: AnswerMatrix,
    /// True class of each item (evaluation only — never shown to the
    /// algorithms).
    pub ground_truth: Vec<u8>,
    /// Accuracy rate of each worker, aligned with matrix worker indices.
    pub worker_accuracies: Vec<f64>,
}

impl CrowdDataset {
    /// Bundles a matrix with its ground truth and worker accuracies.
    ///
    /// # Errors
    ///
    /// [`DataError::ShapeMismatch`] when vector lengths disagree with the
    /// matrix dimensions, or [`DataError::InvalidConfig`] for labels in
    /// `ground_truth` outside the class range.
    pub fn new(
        matrix: AnswerMatrix,
        ground_truth: Vec<u8>,
        worker_accuracies: Vec<f64>,
    ) -> Result<Self> {
        if ground_truth.len() != matrix.n_items() {
            return Err(DataError::ShapeMismatch {
                expected: matrix.n_items(),
                actual: ground_truth.len(),
            });
        }
        if worker_accuracies.len() != matrix.n_workers() {
            return Err(DataError::ShapeMismatch {
                expected: matrix.n_workers(),
                actual: worker_accuracies.len(),
            });
        }
        if let Some(&bad) = ground_truth
            .iter()
            .find(|&&t| t as usize >= matrix.n_classes())
        {
            return Err(DataError::InvalidConfig(format!(
                "ground-truth label {bad} outside {} classes",
                matrix.n_classes()
            )));
        }
        Ok(CrowdDataset {
            matrix,
            ground_truth,
            worker_accuracies,
        })
    }

    /// Number of items.
    pub fn n_items(&self) -> usize {
        self.matrix.n_items()
    }

    /// Number of workers.
    pub fn n_workers(&self) -> usize {
        self.matrix.n_workers()
    }

    /// The crowd as `hc-core` workers (validated accuracies).
    pub fn crowd(&self) -> Result<Crowd> {
        Crowd::from_accuracies(&self.worker_accuracies).map_err(Into::into)
    }

    /// Fraction of `labels` that match the ground truth — the accuracy
    /// metric of §IV-B.
    pub fn accuracy_of(&self, labels: &[u8]) -> f64 {
        debug_assert_eq!(labels.len(), self.ground_truth.len());
        let correct = labels
            .iter()
            .zip(&self.ground_truth)
            .filter(|(a, b)| a == b)
            .count();
        correct as f64 / self.ground_truth.len().max(1) as f64
    }

    /// Ground truth as booleans; only valid for binary corpora.
    pub fn binary_truth(&self) -> Result<Vec<bool>> {
        if self.matrix.n_classes() != 2 {
            return Err(DataError::InvalidConfig(format!(
                "binary_truth on {}-class dataset",
                self.matrix.n_classes()
            )));
        }
        Ok(self.ground_truth.iter().map(|&t| t == 1).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::AnswerEntry;

    fn matrix() -> AnswerMatrix {
        AnswerMatrix::new(
            2,
            2,
            2,
            vec![
                AnswerEntry {
                    item: 0,
                    worker: 0,
                    label: 1,
                },
                AnswerEntry {
                    item: 1,
                    worker: 1,
                    label: 0,
                },
            ],
        )
        .unwrap()
    }

    #[test]
    fn validates_shapes() {
        assert!(CrowdDataset::new(matrix(), vec![1], vec![0.8, 0.9]).is_err());
        assert!(CrowdDataset::new(matrix(), vec![1, 0], vec![0.8]).is_err());
        assert!(CrowdDataset::new(matrix(), vec![1, 2], vec![0.8, 0.9]).is_err());
        assert!(CrowdDataset::new(matrix(), vec![1, 0], vec![0.8, 0.9]).is_ok());
    }

    #[test]
    fn accuracy_of_labels() {
        let ds = CrowdDataset::new(matrix(), vec![1, 0], vec![0.8, 0.9]).unwrap();
        assert_eq!(ds.accuracy_of(&[1, 0]), 1.0);
        assert_eq!(ds.accuracy_of(&[0, 0]), 0.5);
        assert_eq!(ds.accuracy_of(&[0, 1]), 0.0);
    }

    #[test]
    fn binary_truth_round_trips() {
        let ds = CrowdDataset::new(matrix(), vec![1, 0], vec![0.8, 0.9]).unwrap();
        assert_eq!(ds.binary_truth().unwrap(), vec![true, false]);
    }

    #[test]
    fn crowd_conversion_validates_accuracies() {
        let ds = CrowdDataset::new(matrix(), vec![1, 0], vec![0.8, 0.3]).unwrap();
        assert!(ds.crowd().is_err(), "0.3 accuracy is below chance");
    }
}
