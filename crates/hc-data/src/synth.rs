//! Synthetic heterogeneous-crowd corpus generator.
//!
//! Substitute for the paper's real sentiment dataset (company tweets from
//! the Zheng et al. benchmark \[29\]), which is not available offline. The
//! generator reproduces the statistical structure the algorithms actually
//! consume (see `DESIGN.md` — Substitutions):
//!
//! * binary decision-making facts, merged 5-per-task, with *correlated*
//!   truth within a task (first-order Markov chain over the facts: each
//!   fact repeats the previous one's truth value with probability
//!   `correlation`);
//! * a heterogeneous crowd: a small high-accuracy group above the θ=0.9
//!   split and a larger 0.55–0.89 preliminary group, 8 workers per task
//!   as in §IV-A;
//! * complete answer matrices sampled from the §II-A error model — each
//!   worker answers each fact correctly with probability `Pr_cr`,
//!   independently.
//!
//! Every sample is driven by a caller-provided RNG, so corpora are
//! reproducible bit-for-bit from a seed.

use crate::dataset::CrowdDataset;
use crate::error::{DataError, Result};
use crate::matrix::{AnswerEntry, AnswerMatrix};
use rand::Rng;
use rand_distr::{Beta, Distribution};
use serde::{Deserialize, Serialize};

/// How one group of workers' accuracy rates are drawn.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AccuracyModel {
    /// Uniform in `[lo, hi]`.
    Uniform {
        /// Lower bound (≥ 0.5).
        lo: f64,
        /// Upper bound (≤ 1.0).
        hi: f64,
    },
    /// `Beta(alpha, beta)` rescaled into `[lo, hi]` — lets the crowd skew
    /// toward either end of its band.
    Beta {
        /// Beta shape α.
        alpha: f64,
        /// Beta shape β.
        beta: f64,
        /// Lower bound (≥ 0.5).
        lo: f64,
        /// Upper bound (≤ 1.0).
        hi: f64,
    },
    /// Every worker has exactly this accuracy.
    Fixed(f64),
}

impl AccuracyModel {
    fn validate(&self) -> Result<()> {
        let (lo, hi) = match *self {
            AccuracyModel::Uniform { lo, hi } => (lo, hi),
            AccuracyModel::Beta { alpha, beta, lo, hi } => {
                if alpha <= 0.0 || beta <= 0.0 {
                    return Err(DataError::InvalidConfig(
                        "beta shapes must be positive".into(),
                    ));
                }
                (lo, hi)
            }
            AccuracyModel::Fixed(a) => (a, a),
        };
        if !(0.5..=1.0).contains(&lo) || !(0.5..=1.0).contains(&hi) || lo > hi {
            return Err(DataError::InvalidConfig(format!(
                "accuracy band [{lo}, {hi}] must lie within [0.5, 1.0]"
            )));
        }
        Ok(())
    }

    fn sample(&self, rng: &mut impl Rng) -> f64 {
        match *self {
            AccuracyModel::Uniform { lo, hi } => rng.gen_range(lo..=hi),
            AccuracyModel::Beta { alpha, beta, lo, hi } => {
                let dist = Beta::new(alpha, beta).expect("validated shapes");
                lo + (hi - lo) * dist.sample(rng)
            }
            AccuracyModel::Fixed(a) => a,
        }
    }
}

/// The crowd composition: ordered groups of `(count, accuracy model)`.
///
/// Worker indices are assigned group by group, so `group_ranges` can
/// recover which workers belong to which band.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrowdProfile {
    /// `(how many workers, how their accuracies are drawn)` per group.
    pub groups: Vec<(usize, AccuracyModel)>,
}

impl CrowdProfile {
    /// The §IV-A setting: 8 workers per task — 2 experts above the θ=0.9
    /// split and 6 preliminary workers. One preliminary worker sits in
    /// [0.86, 0.89] and one in [0.81, 0.84] so the Figure 4 thresholds
    /// (0.8, 0.85, 0.9) are guaranteed to produce three different crowd
    /// splits regardless of seed.
    pub fn paper_default() -> Self {
        CrowdProfile {
            groups: vec![
                (2, AccuracyModel::Uniform { lo: 0.91, hi: 0.97 }),
                (1, AccuracyModel::Uniform { lo: 0.86, hi: 0.89 }),
                (1, AccuracyModel::Uniform { lo: 0.81, hi: 0.84 }),
                (4, AccuracyModel::Uniform { lo: 0.55, hi: 0.79 }),
            ],
        }
    }

    /// Total worker count.
    pub fn n_workers(&self) -> usize {
        self.groups.iter().map(|(n, _)| n).sum()
    }

    fn validate(&self) -> Result<()> {
        if self.n_workers() == 0 {
            return Err(DataError::InvalidConfig("crowd has no workers".into()));
        }
        for (_, model) in &self.groups {
            model.validate()?;
        }
        Ok(())
    }
}

/// Correlated systematic worker errors — the conditional-independence
/// violation EBCC \[30\] targets: the first `workers` workers share an
/// error mode, all answering class 0 on the same `rate` fraction of
/// items regardless of truth (e.g. annotators who share a misread
/// guideline). Plain DS/BCC cannot express this; EBCC's subtypes can.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SystematicErrors {
    /// How many workers (indices `0..workers`) share the mode.
    pub workers: usize,
    /// Fraction of items hit by the shared mode.
    pub rate: f64,
}

/// Full generator configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SynthConfig {
    /// Number of multi-fact tasks.
    pub n_tasks: usize,
    /// Facts per task (5 in the paper's workload).
    pub facts_per_task: usize,
    /// `P(first fact of a task is true)`.
    pub base_rate: f64,
    /// `P(fact_i has the same truth value as fact_{i-1})` — the
    /// within-task correlation. `0.5` makes facts independent; `1.0`
    /// makes each task all-true or all-false.
    pub correlation: f64,
    /// Crowd composition.
    pub crowd: CrowdProfile,
    /// Optional correlated-worker error mode (default: none).
    #[serde(default)]
    pub systematic_errors: Option<SystematicErrors>,
}

impl SynthConfig {
    /// The workload of §IV-A: 200 tasks × 5 facts (1000 sentiment items),
    /// 8 workers, noticeable within-task correlation.
    pub fn paper_default() -> Self {
        SynthConfig {
            n_tasks: 200,
            facts_per_task: 5,
            base_rate: 0.55,
            correlation: 0.7,
            crowd: CrowdProfile::paper_default(),
            systematic_errors: None,
        }
    }

    /// Total item count.
    pub fn n_items(&self) -> usize {
        self.n_tasks * self.facts_per_task
    }

    fn validate(&self) -> Result<()> {
        if self.n_tasks == 0 || self.facts_per_task == 0 {
            return Err(DataError::InvalidConfig(
                "need at least one task and one fact per task".into(),
            ));
        }
        if self.facts_per_task > hc_core::belief::SPARSE_MAX_FACTS {
            return Err(DataError::InvalidConfig(format!(
                "facts_per_task {} exceeds the sparse belief limit",
                self.facts_per_task
            )));
        }
        if !(0.0 < self.base_rate && self.base_rate < 1.0) {
            return Err(DataError::InvalidConfig(format!(
                "base_rate {} must be in (0, 1)",
                self.base_rate
            )));
        }
        if !(0.0..=1.0).contains(&self.correlation) {
            return Err(DataError::InvalidConfig(format!(
                "correlation {} must be in [0, 1]",
                self.correlation
            )));
        }
        if let Some(se) = &self.systematic_errors {
            if se.workers > self.crowd.n_workers() {
                return Err(DataError::InvalidConfig(format!(
                    "systematic_errors.workers {} exceeds crowd size {}",
                    se.workers,
                    self.crowd.n_workers()
                )));
            }
            if !(0.0..=1.0).contains(&se.rate) {
                return Err(DataError::InvalidConfig(format!(
                    "systematic_errors.rate {} must be in [0, 1]",
                    se.rate
                )));
            }
        }
        self.crowd.validate()
    }
}

/// Generates a complete corpus from the configuration and RNG.
pub fn generate(config: &SynthConfig, rng: &mut impl Rng) -> Result<CrowdDataset> {
    config.validate()?;
    let n_items = config.n_items();
    let n_workers = config.crowd.n_workers();

    // Worker accuracies, group by group.
    let mut accuracies = Vec::with_capacity(n_workers);
    for (count, model) in &config.crowd.groups {
        for _ in 0..*count {
            accuracies.push(model.sample(rng));
        }
    }

    // Ground truth: per task, a Markov chain over the facts.
    let mut truth = Vec::with_capacity(n_items);
    for _ in 0..config.n_tasks {
        let mut prev = rng.gen_bool(config.base_rate);
        truth.push(u8::from(prev));
        for _ in 1..config.facts_per_task {
            let same = rng.gen_bool(config.correlation);
            let value = if same { prev } else { !prev };
            truth.push(u8::from(value));
            prev = value;
        }
    }

    // Which items the shared systematic error mode hits (if configured).
    let systematic: Vec<bool> = match &config.systematic_errors {
        Some(se) => (0..n_items).map(|_| rng.gen_bool(se.rate)).collect(),
        None => vec![false; n_items],
    };
    let systematic_workers = config
        .systematic_errors
        .map(|se| se.workers)
        .unwrap_or(0);

    // Complete answer matrix: every worker answers every item, correct
    // with probability `accuracy` (the §II-A error model), except on
    // systematic-mode items where affected workers all answer class 0.
    let mut entries = Vec::with_capacity(n_items * n_workers);
    for (item, &t) in truth.iter().enumerate() {
        for (worker, &acc) in accuracies.iter().enumerate() {
            let label = if worker < systematic_workers && systematic[item] {
                0
            } else if rng.gen_bool(acc) {
                t
            } else {
                1 - t
            };
            entries.push(AnswerEntry {
                item: item as u32,
                worker: worker as u32,
                label,
            });
        }
    }

    let matrix = AnswerMatrix::new(n_items, n_workers, 2, entries)?;
    CrowdDataset::new(matrix, truth, accuracies)
}

/// The exact joint truth distribution a task's facts follow under the
/// generator's Markov model — index `o` is the probability of the
/// observation bitmask `o`. Useful as a gold prior in tests and oracle
/// studies.
pub fn markov_joint(facts: usize, base_rate: f64, correlation: f64) -> Vec<f64> {
    let mut joint = vec![0.0; 1 << facts];
    for (o, slot) in joint.iter_mut().enumerate() {
        let first = o & 1 == 1;
        let mut p = if first { base_rate } else { 1.0 - base_rate };
        for i in 1..facts {
            let prev = (o >> (i - 1)) & 1;
            let cur = (o >> i) & 1;
            p *= if prev == cur {
                correlation
            } else {
                1.0 - correlation
            };
        }
        *slot = p;
    }
    joint
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn paper_default_generates_expected_shape() {
        let config = SynthConfig::paper_default();
        let ds = generate(&config, &mut rng(1)).unwrap();
        assert_eq!(ds.n_items(), 1000);
        assert_eq!(ds.n_workers(), 8);
        assert_eq!(ds.matrix.len(), 8000, "complete matrix");
        // θ=0.9 split finds the two experts.
        let experts = ds
            .worker_accuracies
            .iter()
            .filter(|&&a| a >= 0.9)
            .count();
        assert_eq!(experts, 2);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let config = SynthConfig::paper_default();
        let a = generate(&config, &mut rng(42)).unwrap();
        let b = generate(&config, &mut rng(42)).unwrap();
        assert_eq!(a, b);
        let c = generate(&config, &mut rng(43)).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn worker_empirical_accuracy_tracks_parameter() {
        let config = SynthConfig {
            n_tasks: 400,
            facts_per_task: 5,
            base_rate: 0.5,
            correlation: 0.6,
            crowd: CrowdProfile {
                groups: vec![(1, AccuracyModel::Fixed(0.9)), (1, AccuracyModel::Fixed(0.6))],
            },
            systematic_errors: None,
        };
        let ds = generate(&config, &mut rng(7)).unwrap();
        let emp = ds.matrix.worker_accuracy(&ds.ground_truth);
        assert!((emp[0].unwrap() - 0.9).abs() < 0.03);
        assert!((emp[1].unwrap() - 0.6).abs() < 0.03);
    }

    #[test]
    fn correlation_one_makes_tasks_uniform() {
        let config = SynthConfig {
            n_tasks: 50,
            facts_per_task: 4,
            base_rate: 0.5,
            correlation: 1.0,
            crowd: CrowdProfile {
                groups: vec![(1, AccuracyModel::Fixed(0.9))],
            },
            systematic_errors: None,
        };
        let ds = generate(&config, &mut rng(3)).unwrap();
        for t in 0..50 {
            let slice = &ds.ground_truth[t * 4..(t + 1) * 4];
            assert!(slice.iter().all(|&v| v == slice[0]));
        }
    }

    #[test]
    fn markov_joint_normalises_and_matches_marginal() {
        let joint = markov_joint(5, 0.55, 0.7);
        assert!((joint.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // First-fact marginal equals base rate.
        let p_first: f64 = joint
            .iter()
            .enumerate()
            .filter(|(o, _)| o & 1 == 1)
            .map(|(_, &p)| p)
            .sum();
        assert!((p_first - 0.55).abs() < 1e-12);
    }

    #[test]
    fn markov_joint_independent_when_correlation_half() {
        let joint = markov_joint(3, 0.5, 0.5);
        for &p in &joint {
            assert!((p - 0.125).abs() < 1e-12);
        }
    }

    #[test]
    fn empirical_truth_correlation_matches_config() {
        let config = SynthConfig {
            n_tasks: 2000,
            facts_per_task: 5,
            base_rate: 0.5,
            correlation: 0.8,
            crowd: CrowdProfile {
                groups: vec![(1, AccuracyModel::Fixed(0.9))],
            },
            systematic_errors: None,
        };
        let ds = generate(&config, &mut rng(11)).unwrap();
        let mut same = 0usize;
        let mut total = 0usize;
        for t in 0..config.n_tasks {
            let slice = &ds.ground_truth[t * 5..(t + 1) * 5];
            for w in slice.windows(2) {
                total += 1;
                if w[0] == w[1] {
                    same += 1;
                }
            }
        }
        let ratio = same as f64 / total as f64;
        assert!((ratio - 0.8).abs() < 0.02, "ratio {ratio}");
    }

    #[test]
    fn beta_model_stays_in_band() {
        let model = AccuracyModel::Beta {
            alpha: 2.0,
            beta: 5.0,
            lo: 0.6,
            hi: 0.8,
        };
        let mut r = rng(9);
        for _ in 0..100 {
            let a = model.sample(&mut r);
            assert!((0.6..=0.8).contains(&a));
        }
    }

    #[test]
    fn systematic_errors_correlate_the_affected_workers() {
        let config = SynthConfig {
            n_tasks: 400,
            facts_per_task: 5,
            base_rate: 0.5,
            correlation: 0.5,
            crowd: CrowdProfile {
                groups: vec![(4, AccuracyModel::Fixed(0.85))],
            },
            systematic_errors: Some(SystematicErrors {
                workers: 2,
                rate: 0.3,
            }),
        };
        let ds = generate(&config, &mut rng(21)).unwrap();
        // Agreement between the two correlated workers must exceed the
        // agreement between two independent ones.
        let view = ds.matrix.worker_view();
        let agreement = |a: usize, b: usize| {
            let hits = view[a]
                .iter()
                .zip(&view[b])
                .filter(|((_, la), (_, lb))| la == lb)
                .count();
            hits as f64 / view[a].len() as f64
        };
        let correlated = agreement(0, 1);
        let independent = agreement(2, 3);
        assert!(
            correlated > independent + 0.05,
            "correlated {correlated} vs independent {independent}"
        );
    }

    #[test]
    fn systematic_errors_validation() {
        let mut config = SynthConfig::paper_default();
        config.systematic_errors = Some(SystematicErrors {
            workers: 99,
            rate: 0.2,
        });
        assert!(generate(&config, &mut rng(1)).is_err());
        config.systematic_errors = Some(SystematicErrors {
            workers: 2,
            rate: 1.5,
        });
        assert!(generate(&config, &mut rng(1)).is_err());
        config.systematic_errors = Some(SystematicErrors {
            workers: 2,
            rate: 0.2,
        });
        assert!(generate(&config, &mut rng(1)).is_ok());
    }

    #[test]
    fn config_validation_rejects_nonsense() {
        let mut config = SynthConfig::paper_default();
        config.base_rate = 0.0;
        assert!(generate(&config, &mut rng(1)).is_err());

        let mut config = SynthConfig::paper_default();
        config.correlation = 1.5;
        assert!(generate(&config, &mut rng(1)).is_err());

        let mut config = SynthConfig::paper_default();
        config.n_tasks = 0;
        assert!(generate(&config, &mut rng(1)).is_err());

        let mut config = SynthConfig::paper_default();
        config.crowd = CrowdProfile { groups: vec![] };
        assert!(generate(&config, &mut rng(1)).is_err());

        let mut config = SynthConfig::paper_default();
        config.crowd = CrowdProfile {
            groups: vec![(1, AccuracyModel::Uniform { lo: 0.3, hi: 0.9 })],
        };
        assert!(generate(&config, &mut rng(1)).is_err());
    }
}
