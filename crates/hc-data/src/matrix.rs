//! Sparse crowdsourced answer matrices.
//!
//! The universal input of every aggregation baseline and of the HC
//! pipeline: a list of `(item, worker, label)` triples. Items are the
//! atomic labeling units (single binary facts in this paper's workloads);
//! labels are small class indices (`0 = No`, `1 = Yes` for
//! decision-making tasks, but the container supports any class count so
//! the multi-class baselines stay faithful to their papers).
//!
//! Stored in CSR-by-item layout so per-item scans (the hot loop of every
//! EM aggregator) are contiguous.

use crate::error::{DataError, Result};
use serde::{Deserialize, Serialize};

/// One crowdsourced answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AnswerEntry {
    /// Item (fact) index.
    pub item: u32,
    /// Worker index.
    pub worker: u32,
    /// Class label index (`< n_classes`).
    pub label: u8,
}

/// A validated, item-indexed sparse answer matrix.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AnswerMatrix {
    n_items: usize,
    n_workers: usize,
    n_classes: usize,
    /// Entries sorted by `(item, worker)`.
    entries: Vec<AnswerEntry>,
    /// CSR offsets: entries of item `i` live in
    /// `entries[item_offsets[i]..item_offsets[i+1]]`.
    item_offsets: Vec<u32>,
}

impl AnswerMatrix {
    /// Builds a matrix from raw triples.
    ///
    /// # Errors
    ///
    /// [`DataError::OutOfRange`] when any entry references an item,
    /// worker, or label outside the declared dimensions;
    /// [`DataError::DuplicateAnswer`] when a worker answered the same
    /// item twice.
    pub fn new(
        n_items: usize,
        n_workers: usize,
        n_classes: usize,
        mut entries: Vec<AnswerEntry>,
    ) -> Result<Self> {
        for e in &entries {
            if e.item as usize >= n_items
                || e.worker as usize >= n_workers
                || e.label as usize >= n_classes
            {
                return Err(DataError::OutOfRange {
                    item: e.item,
                    worker: e.worker,
                    label: e.label,
                });
            }
        }
        entries.sort_unstable_by_key(|e| (e.item, e.worker));
        for w in entries.windows(2) {
            if w[0].item == w[1].item && w[0].worker == w[1].worker {
                return Err(DataError::DuplicateAnswer {
                    item: w[0].item,
                    worker: w[0].worker,
                });
            }
        }
        let mut item_offsets = Vec::with_capacity(n_items + 1);
        item_offsets.push(0u32);
        let mut cursor = 0usize;
        for item in 0..n_items as u32 {
            while cursor < entries.len() && entries[cursor].item == item {
                cursor += 1;
            }
            item_offsets.push(cursor as u32);
        }
        Ok(AnswerMatrix {
            n_items,
            n_workers,
            n_classes,
            entries,
            item_offsets,
        })
    }

    /// Number of items (facts).
    #[inline]
    pub fn n_items(&self) -> usize {
        self.n_items
    }

    /// Number of workers.
    #[inline]
    pub fn n_workers(&self) -> usize {
        self.n_workers
    }

    /// Number of classes.
    #[inline]
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Total number of answers.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the matrix holds no answers.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All entries, sorted by `(item, worker)`.
    #[inline]
    pub fn entries(&self) -> &[AnswerEntry] {
        &self.entries
    }

    /// The answers for one item (contiguous slice).
    #[inline]
    pub fn by_item(&self, item: usize) -> &[AnswerEntry] {
        let lo = self.item_offsets[item] as usize;
        let hi = self.item_offsets[item + 1] as usize;
        &self.entries[lo..hi]
    }

    /// Per-worker view: `result[w]` lists `(item, label)` pairs for
    /// worker `w`, in item order. `O(len)`; build once per aggregator
    /// run, not per iteration.
    pub fn worker_view(&self) -> Vec<Vec<(u32, u8)>> {
        let mut view = vec![Vec::new(); self.n_workers];
        for e in &self.entries {
            view[e.worker as usize].push((e.item, e.label));
        }
        view
    }

    /// Per-item vote counts: `result[i][c]` counts answers of class `c`
    /// for item `i`.
    pub fn vote_counts(&self) -> Vec<Vec<u32>> {
        let mut counts = vec![vec![0u32; self.n_classes]; self.n_items];
        for e in &self.entries {
            counts[e.item as usize][e.label as usize] += 1;
        }
        counts
    }

    /// Restricts the matrix to a subset of workers, preserving all
    /// indices (rows of excluded workers simply disappear). Used to build
    /// the preliminary-worker-only matrix for belief initialisation.
    pub fn filter_workers(&self, keep: impl Fn(u32) -> bool) -> AnswerMatrix {
        let entries: Vec<AnswerEntry> = self
            .entries
            .iter()
            .copied()
            .filter(|e| keep(e.worker))
            .collect();
        AnswerMatrix::new(self.n_items, self.n_workers, self.n_classes, entries)
            .expect("filtered entries stay valid")
    }

    /// Empirical accuracy of each worker against a ground-truth vector;
    /// `None` for workers with no answers.
    pub fn worker_accuracy(&self, truth: &[u8]) -> Vec<Option<f64>> {
        debug_assert_eq!(truth.len(), self.n_items);
        let mut correct = vec![0u32; self.n_workers];
        let mut total = vec![0u32; self.n_workers];
        for e in &self.entries {
            total[e.worker as usize] += 1;
            if truth[e.item as usize] == e.label {
                correct[e.worker as usize] += 1;
            }
        }
        correct
            .iter()
            .zip(&total)
            .map(|(&c, &t)| (t > 0).then(|| c as f64 / t as f64))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(item: u32, worker: u32, label: u8) -> AnswerEntry {
        AnswerEntry {
            item,
            worker,
            label,
        }
    }

    fn small() -> AnswerMatrix {
        AnswerMatrix::new(
            3,
            2,
            2,
            vec![
                entry(2, 0, 1),
                entry(0, 0, 1),
                entry(0, 1, 0),
                entry(1, 1, 1),
            ],
        )
        .unwrap()
    }

    #[test]
    fn csr_layout_sorts_and_indexes() {
        let m = small();
        assert_eq!(m.len(), 4);
        assert_eq!(m.by_item(0).len(), 2);
        assert_eq!(m.by_item(1).len(), 1);
        assert_eq!(m.by_item(2).len(), 1);
        assert_eq!(m.by_item(0)[0].worker, 0);
        assert_eq!(m.by_item(0)[1].worker, 1);
    }

    #[test]
    fn rejects_out_of_range() {
        assert!(matches!(
            AnswerMatrix::new(1, 1, 2, vec![entry(1, 0, 0)]),
            Err(DataError::OutOfRange { .. })
        ));
        assert!(matches!(
            AnswerMatrix::new(1, 1, 2, vec![entry(0, 1, 0)]),
            Err(DataError::OutOfRange { .. })
        ));
        assert!(matches!(
            AnswerMatrix::new(1, 1, 2, vec![entry(0, 0, 2)]),
            Err(DataError::OutOfRange { .. })
        ));
    }

    #[test]
    fn rejects_duplicates() {
        assert!(matches!(
            AnswerMatrix::new(1, 1, 2, vec![entry(0, 0, 0), entry(0, 0, 1)]),
            Err(DataError::DuplicateAnswer { item: 0, worker: 0 })
        ));
    }

    #[test]
    fn items_without_answers_have_empty_slices() {
        let m = AnswerMatrix::new(3, 1, 2, vec![entry(1, 0, 1)]).unwrap();
        assert!(m.by_item(0).is_empty());
        assert_eq!(m.by_item(1).len(), 1);
        assert!(m.by_item(2).is_empty());
    }

    #[test]
    fn worker_view_groups_by_worker() {
        let m = small();
        let view = m.worker_view();
        assert_eq!(view[0], vec![(0, 1), (2, 1)]);
        assert_eq!(view[1], vec![(0, 0), (1, 1)]);
    }

    #[test]
    fn vote_counts_tally_labels() {
        let m = small();
        let counts = m.vote_counts();
        assert_eq!(counts[0], vec![1, 1]);
        assert_eq!(counts[1], vec![0, 1]);
        assert_eq!(counts[2], vec![0, 1]);
    }

    #[test]
    fn filter_workers_drops_rows() {
        let m = small();
        let only_w1 = m.filter_workers(|w| w == 1);
        assert_eq!(only_w1.len(), 2);
        assert!(only_w1.entries().iter().all(|e| e.worker == 1));
        assert_eq!(only_w1.n_workers(), m.n_workers(), "indices preserved");
    }

    #[test]
    fn worker_accuracy_against_truth() {
        let m = small();
        let acc = m.worker_accuracy(&[1, 1, 0]);
        assert_eq!(acc[0], Some(0.5)); // item0 correct, item2 wrong
        assert_eq!(acc[1], Some(0.5)); // item0 wrong, item1 correct
        let empty = AnswerMatrix::new(1, 2, 2, vec![entry(0, 0, 1)]).unwrap();
        assert_eq!(empty.worker_accuracy(&[1])[1], None);
    }

    #[test]
    fn empty_matrix_is_valid() {
        let m = AnswerMatrix::new(2, 2, 2, vec![]).unwrap();
        assert!(m.is_empty());
        assert!(m.by_item(0).is_empty());
    }
}
