//! Corpus diagnostics: inter-annotator agreement and answer-matrix
//! statistics.
//!
//! Standard measures for judging a crowdsourced corpus before any truth
//! inference runs: per-item vote agreement, pairwise worker agreement
//! (the raw signal behind EBCC's worker-correlation modeling), and
//! Fleiss' κ — chance-corrected agreement across the whole crowd.

use crate::matrix::AnswerMatrix;

/// Summary statistics of an answer matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixStats {
    /// Total answers.
    pub answers: usize,
    /// Mean answers per item.
    pub answers_per_item: f64,
    /// Fraction of items where every vote agrees.
    pub unanimous_rate: f64,
    /// Mean per-item majority share (1.0 = always unanimous, ~1/K =
    /// uniform disagreement).
    pub mean_majority_share: f64,
    /// Fleiss' κ across all items (see [`fleiss_kappa`]).
    pub fleiss_kappa: f64,
}

/// Computes summary statistics for a matrix.
pub fn matrix_stats(matrix: &AnswerMatrix) -> MatrixStats {
    let counts = matrix.vote_counts();
    let mut unanimous = 0usize;
    let mut majority_share_sum = 0.0;
    let mut rated_items = 0usize;
    for item_counts in &counts {
        let total: u32 = item_counts.iter().sum();
        if total == 0 {
            continue;
        }
        rated_items += 1;
        let max = *item_counts.iter().max().expect("n_classes >= 1");
        if max == total {
            unanimous += 1;
        }
        majority_share_sum += max as f64 / total as f64;
    }
    MatrixStats {
        answers: matrix.len(),
        answers_per_item: matrix.len() as f64 / matrix.n_items().max(1) as f64,
        unanimous_rate: unanimous as f64 / rated_items.max(1) as f64,
        mean_majority_share: majority_share_sum / rated_items.max(1) as f64,
        fleiss_kappa: fleiss_kappa(matrix),
    }
}

/// Fleiss' κ: chance-corrected agreement for many raters over
/// categorical items.
///
/// Items with fewer than two answers are skipped (agreement is undefined
/// on them); the generalised (variable-rater-count) form is used, so
/// incomplete matrices are fine. Returns 0 when the statistic is
/// undefined (no rateable items, or zero expected disagreement with zero
/// observed disagreement — i.e. perfect unanimity, which we report as
/// κ = 1).
pub fn fleiss_kappa(matrix: &AnswerMatrix) -> f64 {
    let k = matrix.n_classes();
    let counts = matrix.vote_counts();
    let mut p_bar_sum = 0.0;
    let mut rated_items = 0usize;
    let mut class_totals = vec![0.0f64; k];
    let mut total_answers = 0.0f64;

    for item_counts in &counts {
        let n: u32 = item_counts.iter().sum();
        if n < 2 {
            continue;
        }
        rated_items += 1;
        let n = n as f64;
        let agree: f64 = item_counts
            .iter()
            .map(|&c| c as f64 * (c as f64 - 1.0))
            .sum();
        p_bar_sum += agree / (n * (n - 1.0));
        for (slot, &c) in class_totals.iter_mut().zip(item_counts) {
            *slot += c as f64;
        }
        total_answers += n;
    }
    if rated_items == 0 || total_answers == 0.0 {
        return 0.0;
    }
    let p_bar = p_bar_sum / rated_items as f64;
    let p_e: f64 = class_totals
        .iter()
        .map(|&t| (t / total_answers).powi(2))
        .sum();
    if (1.0 - p_e).abs() < 1e-12 {
        // All answers in one class: perfect (if vacuous) agreement.
        return if p_bar >= 1.0 - 1e-12 { 1.0 } else { 0.0 };
    }
    (p_bar - p_e) / (1.0 - p_e)
}

/// Pairwise worker agreement: `result[a][b]` is the fraction of items
/// both answered where their labels match (`NaN` when they share no
/// items). The diagonal is 1 for workers with any answers.
pub fn worker_agreement(matrix: &AnswerMatrix) -> Vec<Vec<f64>> {
    let m = matrix.n_workers();
    let mut agree = vec![vec![0u32; m]; m];
    let mut shared = vec![vec![0u32; m]; m];
    for item in 0..matrix.n_items() {
        let answers = matrix.by_item(item);
        for (i, a) in answers.iter().enumerate() {
            for b in &answers[i..] {
                let (wa, wb) = (a.worker as usize, b.worker as usize);
                shared[wa][wb] += 1;
                shared[wb][wa] += 1;
                if a.label == b.label {
                    agree[wa][wb] += 1;
                    agree[wb][wa] += 1;
                }
            }
        }
    }
    (0..m)
        .map(|a| {
            (0..m)
                .map(|b| {
                    if shared[a][b] == 0 {
                        f64::NAN
                    } else {
                        agree[a][b] as f64 / shared[a][b] as f64
                    }
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::AnswerEntry;
    use crate::synth::{generate, CrowdProfile, SynthConfig, SystematicErrors};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn entry(item: u32, worker: u32, label: u8) -> AnswerEntry {
        AnswerEntry {
            item,
            worker,
            label,
        }
    }

    #[test]
    fn unanimous_matrix_has_kappa_one() {
        let m = AnswerMatrix::new(
            2,
            3,
            2,
            vec![
                entry(0, 0, 1),
                entry(0, 1, 1),
                entry(0, 2, 1),
                entry(1, 0, 0),
                entry(1, 1, 0),
                entry(1, 2, 0),
            ],
        )
        .unwrap();
        let kappa = fleiss_kappa(&m);
        assert!((kappa - 1.0).abs() < 1e-9, "kappa {kappa}");
        let stats = matrix_stats(&m);
        assert_eq!(stats.unanimous_rate, 1.0);
        assert_eq!(stats.mean_majority_share, 1.0);
    }

    #[test]
    fn random_answers_have_kappa_near_zero() {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(5);
        let n_items = 500;
        let entries: Vec<AnswerEntry> = (0..n_items as u32)
            .flat_map(|item| {
                let labels: Vec<u8> = (0..4).map(|_| rng.gen_range(0..2u8)).collect();
                labels
                    .into_iter()
                    .enumerate()
                    .map(move |(w, l)| entry(item, w as u32, l))
                    .collect::<Vec<_>>()
            })
            .collect();
        let m = AnswerMatrix::new(n_items, 4, 2, entries).unwrap();
        let kappa = fleiss_kappa(&m);
        assert!(kappa.abs() < 0.06, "kappa {kappa} should be ~0");
    }

    #[test]
    fn accurate_crowds_have_higher_kappa_than_noisy_ones() {
        let corpus = |acc: f64| {
            let config = SynthConfig {
                n_tasks: 100,
                facts_per_task: 5,
                base_rate: 0.5,
                correlation: 0.5,
                crowd: CrowdProfile {
                    groups: vec![(5, crate::synth::AccuracyModel::Fixed(acc))],
                },
                systematic_errors: None,
            };
            generate(&config, &mut StdRng::seed_from_u64(9)).unwrap()
        };
        let sharp = fleiss_kappa(&corpus(0.95).matrix);
        let noisy = fleiss_kappa(&corpus(0.6).matrix);
        assert!(sharp > 0.7, "sharp {sharp}");
        assert!(noisy < sharp, "noisy {noisy} vs sharp {sharp}");
    }

    #[test]
    fn worker_agreement_exposes_systematic_correlation() {
        let mut config = SynthConfig {
            n_tasks: 200,
            facts_per_task: 5,
            base_rate: 0.5,
            correlation: 0.5,
            crowd: CrowdProfile {
                groups: vec![(4, crate::synth::AccuracyModel::Fixed(0.8))],
            },
            systematic_errors: None,
        };
        config.systematic_errors = Some(SystematicErrors {
            workers: 2,
            rate: 0.35,
        });
        let ds = generate(&config, &mut StdRng::seed_from_u64(10)).unwrap();
        let agreement = worker_agreement(&ds.matrix);
        assert!(
            agreement[0][1] > agreement[2][3] + 0.04,
            "correlated pair {} vs independent pair {}",
            agreement[0][1],
            agreement[2][3]
        );
        // Diagonal and symmetry.
        assert_eq!(agreement[0][0], 1.0);
        assert_eq!(agreement[1][2], agreement[2][1]);
    }

    #[test]
    fn items_with_single_answers_are_skipped() {
        let m = AnswerMatrix::new(
            2,
            2,
            2,
            vec![entry(0, 0, 1), entry(0, 1, 1), entry(1, 0, 0)],
        )
        .unwrap();
        // Item 1 has one answer; κ computed over item 0 only.
        assert!((fleiss_kappa(&m) - 1.0).abs() < 1e-9);
        // A matrix with no multi-answer items is undefined -> 0.
        let single = AnswerMatrix::new(1, 1, 2, vec![entry(0, 0, 1)]).unwrap();
        assert_eq!(fleiss_kappa(&single), 0.0);
    }
}
