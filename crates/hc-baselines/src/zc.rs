//! ZenCrowd (ZC) — probabilistic truth inference with a single scalar
//! reliability per worker, fitted by EM \[32\].
//!
//! Model: worker `w` answers correctly with probability `r_w`, and when
//! wrong picks uniformly among the other `K-1` classes:
//! `P(l | z = j) = r_w` if `l = j`, else `(1 - r_w) / (K - 1)`.
//!
//! * **E-step**: `P(z_i = j) ∝ Π_{(w,l) on i} P(l | j; r_w)` (uniform
//!   class prior, per the original factor-graph formulation).
//! * **M-step**: `r_w = (Σ_{(i,l) by w} q_i(l) + a) / (n_w + a + b)` —
//!   the expected fraction of correct answers, with a light
//!   `Beta(a, b)` prior keeping estimates off the 0/1 boundary.

use crate::aggregate::{check_all_answered, AggregateResult, Aggregator, Result};
use crate::util::{max_abs_diff, softmax_in_place};
use hc_data::AnswerMatrix;

/// ZenCrowd EM aggregator.
#[derive(Debug, Clone, Copy)]
pub struct ZenCrowd {
    /// Maximum EM iterations.
    pub max_iter: usize,
    /// Convergence threshold on the max posterior change.
    pub tol: f64,
    /// Beta prior pseudo-counts `(a, b)` on worker reliability.
    pub prior: (f64, f64),
}

impl Default for ZenCrowd {
    fn default() -> Self {
        ZenCrowd {
            max_iter: 100,
            tol: 1e-6,
            prior: (2.0, 1.0),
        }
    }
}

impl ZenCrowd {
    /// ZC with default hyperparameters.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Aggregator for ZenCrowd {
    fn name(&self) -> &'static str {
        "ZC"
    }

    fn aggregate(&self, matrix: &AnswerMatrix) -> Result<AggregateResult> {
        check_all_answered(matrix)?;
        let n = matrix.n_items();
        let m = matrix.n_workers();
        let k = matrix.n_classes();
        let wrong_share = 1.0 / (k as f64 - 1.0).max(1.0);
        let (a, b) = self.prior;

        // Soft majority-vote initialisation.
        let mut posteriors: Vec<Vec<f64>> = matrix
            .vote_counts()
            .into_iter()
            .map(|counts| {
                let total: u32 = counts.iter().sum();
                counts
                    .into_iter()
                    .map(|c| c as f64 / total as f64)
                    .collect()
            })
            .collect();
        let mut reliability = vec![0.8; m];
        let mut iterations = 0;
        let mut converged = false;

        for _ in 0..self.max_iter {
            iterations += 1;
            // M-step: expected correct-answer fraction per worker.
            let mut expected_correct = vec![0.0; m];
            let mut answered = vec![0u32; m];
            for e in matrix.entries() {
                expected_correct[e.worker as usize] +=
                    posteriors[e.item as usize][e.label as usize];
                answered[e.worker as usize] += 1;
            }
            for w in 0..m {
                reliability[w] =
                    (expected_correct[w] + a) / (answered[w] as f64 + a + b);
            }

            // E-step.
            let mut new_posteriors = Vec::with_capacity(n);
            for item in 0..n {
                let mut log_scores = vec![0.0; k];
                for e in matrix.by_item(item) {
                    let r = reliability[e.worker as usize];
                    let ln_correct = r.ln();
                    let ln_wrong = ((1.0 - r) * wrong_share).max(f64::MIN_POSITIVE).ln();
                    for (j, score) in log_scores.iter_mut().enumerate() {
                        *score += if j == e.label as usize {
                            ln_correct
                        } else {
                            ln_wrong
                        };
                    }
                }
                softmax_in_place(&mut log_scores);
                new_posteriors.push(log_scores);
            }

            let delta = max_abs_diff(&posteriors, &new_posteriors);
            posteriors = new_posteriors;
            if delta < self.tol {
                converged = true;
                break;
            }
        }

        Ok(AggregateResult {
            posteriors,
            worker_reliability: reliability.iter().map(|r| r.clamp(0.0, 1.0)).collect(),
            iterations,
            converged,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mv::MajorityVote;
    use crate::test_support::{heterogeneous_dataset, labeled_accuracy};

    #[test]
    fn recovers_truth_on_clean_data() {
        // Three 0.85–0.9 workers bound the Bayes accuracy near 0.95;
        // ZC must land at that information ceiling.
        let data = heterogeneous_dataset(300, &[0.9, 0.9, 0.85], 10);
        let r = ZenCrowd::new().aggregate(&data.matrix).unwrap();
        assert!(r.validate());
        assert!(labeled_accuracy(&data, &r) > 0.92);
    }

    #[test]
    fn learns_worker_reliability() {
        // Three workers so that disagreements carry a majority signal —
        // with only two, reliabilities are unidentifiable.
        let data = heterogeneous_dataset(800, &[0.95, 0.6, 0.6], 11);
        let r = ZenCrowd::new().aggregate(&data.matrix).unwrap();
        assert!(
            r.worker_reliability[0] > r.worker_reliability[1],
            "reliability {:?}",
            r.worker_reliability
        );
    }

    #[test]
    fn stays_close_to_mv_with_one_expert_among_noise() {
        // The paper (§IV-B) reports ZC performing poorly with limited
        // redundancy — the EM can lock onto the noisy majority. Assert
        // well-formedness and a sane band rather than dominance over MV.
        let data = heterogeneous_dataset(500, &[0.97, 0.55, 0.55, 0.55, 0.55], 12);
        let r = ZenCrowd::new().aggregate(&data.matrix).unwrap();
        assert!(r.validate());
        let zc_acc = labeled_accuracy(&data, &r);
        let mv_acc = labeled_accuracy(&data, &MajorityVote::new().aggregate(&data.matrix).unwrap());
        assert!(zc_acc > 0.55, "ZC {zc_acc} collapsed below chance");
        assert!(zc_acc >= mv_acc - 0.12, "ZC {zc_acc} far below MV {mv_acc}");
    }

    #[test]
    fn deterministic_and_convergent() {
        let data = heterogeneous_dataset(100, &[0.9, 0.7], 13);
        let a = ZenCrowd::new().aggregate(&data.matrix).unwrap();
        let b = ZenCrowd::new().aggregate(&data.matrix).unwrap();
        assert_eq!(a, b);
        assert!(a.converged);
    }
}
