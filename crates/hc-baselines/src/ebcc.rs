//! EBCC — Enhanced Bayesian Classifier Combination \[30\].
//!
//! Li, Rubinstein & Cohn (ICML 2019) extend BCC to capture *worker
//! correlation*: each true class is a mixture of latent **subtypes**, and
//! workers react to subtypes, not just classes — two workers who confuse
//! the same subtype are correlated, which plain DS/BCC (which assume
//! conditional independence given the class) cannot express.
//!
//! This implementation is an EM re-derivation of that model (the original
//! uses mean-field variational inference; we document the differences):
//!
//! * latent state `s_i = (k, m)` — class `k`, subtype `m` of that class;
//!   `G = K·M` joint states with prior `p[s]`;
//! * per-worker response distributions `π_w[s][l]` over labels, with
//!   **hierarchical shrinkage**: each subtype's row is smoothed toward
//!   the worker's class-level confusion row (pseudo-counts proportional
//!   to it), which ties subtypes of a class together exactly where the
//!   variational Dirichlet prior of the original does;
//! * **E-step**: `q_i(s) ∝ p[s] Π_{(w,l) on i} π_w[s][l]` (log-space);
//! * **M-step**: class-level confusion from subtype-aggregated
//!   responsibilities, then subtype rows re-estimated with the shrinkage
//!   pseudo-counts;
//! * class posterior `P(y_i = k) = Σ_m q_i(k, m)`.
//!
//! Subtype symmetry is broken by a small seeded perturbation of the
//! initial responsibilities, so runs are deterministic per seed.

use crate::aggregate::{check_all_answered, AggregateResult, Aggregator, Result};
use crate::util::{max_abs_diff, softmax_in_place};
use hc_data::AnswerMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// EBCC mixture-of-subtypes aggregator.
#[derive(Debug, Clone, Copy)]
pub struct Ebcc {
    /// Subtypes per class (`M`; the original paper defaults to 2–3).
    pub subtypes: usize,
    /// Maximum EM iterations.
    pub max_iter: usize,
    /// Convergence threshold on the max class-posterior change.
    pub tol: f64,
    /// Base additive smoothing of response rows.
    pub smoothing: f64,
    /// Strength of shrinkage toward the class-level confusion row.
    pub shrinkage: f64,
    /// Seed of the symmetry-breaking perturbation.
    pub seed: u64,
}

impl Default for Ebcc {
    fn default() -> Self {
        Ebcc {
            subtypes: 2,
            max_iter: 100,
            tol: 1e-6,
            smoothing: 0.01,
            shrinkage: 2.0,
            seed: 0xEBCC,
        }
    }
}

impl Ebcc {
    /// EBCC with default hyperparameters.
    pub fn new() -> Self {
        Self::default()
    }

    /// EBCC with a specific subtype count.
    pub fn with_subtypes(subtypes: usize) -> Self {
        Ebcc {
            subtypes,
            ..Self::default()
        }
    }
}

impl Aggregator for Ebcc {
    fn name(&self) -> &'static str {
        "EBCC"
    }

    fn aggregate(&self, matrix: &AnswerMatrix) -> Result<AggregateResult> {
        if self.subtypes == 0 {
            return Err(crate::aggregate::AggregateError::InvalidParameter(
                "subtypes must be >= 1".into(),
            ));
        }
        check_all_answered(matrix)?;
        let n = matrix.n_items();
        let m_workers = matrix.n_workers();
        let k = matrix.n_classes();
        let m_sub = self.subtypes;
        let g = k * m_sub; // joint states
        let mut rng = StdRng::seed_from_u64(self.seed);

        // Init: MV class distribution spread evenly over subtypes with a
        // small perturbation to break subtype symmetry.
        let mut q: Vec<Vec<f64>> = matrix
            .vote_counts()
            .into_iter()
            .map(|counts| {
                let total: u32 = counts.iter().sum();
                let mut row = Vec::with_capacity(g);
                for c in counts {
                    let class_mass = c as f64 / total as f64;
                    for _ in 0..m_sub {
                        let jitter = 1.0 + 0.1 * rng.gen_range(-1.0..1.0);
                        row.push(class_mass / m_sub as f64 * jitter);
                    }
                }
                let sum: f64 = row.iter().sum();
                for v in &mut row {
                    *v /= sum;
                }
                row
            })
            .collect();

        let mut response = vec![vec![0.0; g * k]; m_workers]; // π_w[s][l]
        let mut prior = vec![1.0 / g as f64; g];
        let mut class_post: Vec<Vec<f64>> = vec![vec![1.0 / k as f64; k]; n];
        let mut iterations = 0;
        let mut converged = false;

        for _ in 0..self.max_iter {
            iterations += 1;

            // ---- M-step ----
            // Class-level confusion per worker: conf_w[j][l].
            let mut class_conf = vec![vec![self.smoothing; k * k]; m_workers];
            for e in matrix.entries() {
                let qi = &q[e.item as usize];
                let c = &mut class_conf[e.worker as usize];
                for j in 0..k {
                    let class_mass: f64 = qi[j * m_sub..(j + 1) * m_sub].iter().sum();
                    c[j * k + e.label as usize] += class_mass;
                }
            }
            for c in class_conf.iter_mut() {
                for j in 0..k {
                    let row_sum: f64 = c[j * k..(j + 1) * k].iter().sum();
                    for l in 0..k {
                        c[j * k + l] /= row_sum;
                    }
                }
            }

            // Subtype-level responses with shrinkage toward class rows.
            for r in response.iter_mut() {
                r.fill(0.0);
            }
            for e in matrix.entries() {
                let qi = &q[e.item as usize];
                let r = &mut response[e.worker as usize];
                for (s, &qs) in qi.iter().enumerate() {
                    r[s * k + e.label as usize] += qs;
                }
            }
            for (w, r) in response.iter_mut().enumerate() {
                for s in 0..g {
                    let class = s / m_sub;
                    let mut row_sum = 0.0;
                    for l in 0..k {
                        // Shrinkage pseudo-count: class-level row scaled.
                        r[s * k + l] += self.smoothing
                            + self.shrinkage * class_conf[w][class * k + l];
                        row_sum += r[s * k + l];
                    }
                    for l in 0..k {
                        r[s * k + l] /= row_sum;
                    }
                }
            }

            // State prior.
            let mut mass = vec![self.smoothing; g];
            for qi in &q {
                for (s, &qs) in qi.iter().enumerate() {
                    mass[s] += qs;
                }
            }
            let total_mass: f64 = mass.iter().sum();
            for (p, &mv) in prior.iter_mut().zip(&mass) {
                *p = mv / total_mass;
            }

            // ---- E-step ----
            let mut new_q = Vec::with_capacity(n);
            for item in 0..n {
                let mut log_scores: Vec<f64> = prior.iter().map(|&p| p.ln()).collect();
                for e in matrix.by_item(item) {
                    let r = &response[e.worker as usize];
                    for (s, score) in log_scores.iter_mut().enumerate() {
                        *score += r[s * k + e.label as usize].ln();
                    }
                }
                softmax_in_place(&mut log_scores);
                new_q.push(log_scores);
            }
            q = new_q;

            // Class posteriors and convergence check.
            let mut new_class_post = Vec::with_capacity(n);
            for qi in &q {
                let row: Vec<f64> = (0..k)
                    .map(|j| qi[j * m_sub..(j + 1) * m_sub].iter().sum())
                    .collect();
                new_class_post.push(row);
            }
            let delta = max_abs_diff(&class_post, &new_class_post);
            class_post = new_class_post;
            if delta < self.tol {
                converged = true;
                break;
            }
        }

        // Reliability: prior-weighted diagonal of the *class-level*
        // response (marginalising subtypes).
        let mut class_prior = vec![0.0; k];
        for (s, &p) in prior.iter().enumerate() {
            class_prior[s / m_sub] += p;
        }
        let worker_reliability = response
            .iter()
            .map(|r| {
                let mut acc = 0.0;
                for s in 0..g {
                    let class = s / m_sub;
                    acc += prior[s] * r[s * k + class];
                }
                // Normalise by total prior mass (=1).
                acc.clamp(0.0, 1.0)
            })
            .collect();

        Ok(AggregateResult {
            posteriors: class_post,
            worker_reliability,
            iterations,
            converged,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ds::DawidSkene;
    use crate::test_support::{correlated_worker_dataset, heterogeneous_dataset, labeled_accuracy};

    #[test]
    fn recovers_truth_on_clean_data() {
        let data = heterogeneous_dataset(300, &[0.9, 0.9, 0.85], 60);
        let r = Ebcc::new().aggregate(&data.matrix).unwrap();
        assert!(r.validate());
        assert!(labeled_accuracy(&data, &r) > 0.95);
    }

    #[test]
    fn handles_correlated_workers_at_least_as_well_as_ds() {
        // Two workers share a systematic error mode on a subpopulation;
        // subtype mixtures are designed for exactly this.
        let data = correlated_worker_dataset(600, 61);
        let ebcc_acc = labeled_accuracy(&data, &Ebcc::new().aggregate(&data.matrix).unwrap());
        let ds_acc = labeled_accuracy(&data, &DawidSkene::new().aggregate(&data.matrix).unwrap());
        assert!(
            ebcc_acc + 0.02 >= ds_acc,
            "EBCC {ebcc_acc} vs DS {ds_acc}"
        );
    }

    #[test]
    fn seeded_runs_are_reproducible() {
        let data = heterogeneous_dataset(100, &[0.9, 0.7], 62);
        let a = Ebcc::new().aggregate(&data.matrix).unwrap();
        let b = Ebcc::new().aggregate(&data.matrix).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn single_subtype_reduces_to_ds_like_behaviour() {
        let data = heterogeneous_dataset(300, &[0.92, 0.85, 0.7], 63);
        let ebcc1 = Ebcc::with_subtypes(1).aggregate(&data.matrix).unwrap();
        let ds = DawidSkene::new().aggregate(&data.matrix).unwrap();
        let agree = ebcc1
            .map_labels()
            .iter()
            .zip(ds.map_labels())
            .filter(|(a, b)| **a == *b)
            .count();
        assert!(agree as f64 / 300.0 > 0.97, "agreement {agree}/300");
    }

    #[test]
    fn zero_subtypes_rejected() {
        let data = heterogeneous_dataset(10, &[0.9], 64);
        assert!(Ebcc::with_subtypes(0).aggregate(&data.matrix).is_err());
    }

    #[test]
    fn reliability_orders_workers() {
        let data = heterogeneous_dataset(600, &[0.95, 0.6], 65);
        let r = Ebcc::new().aggregate(&data.matrix).unwrap();
        assert!(r.worker_reliability[0] > r.worker_reliability[1]);
    }
}
