//! BCC — Bayesian Classifier Combination \[36\], by collapsed Gibbs
//! sampling.
//!
//! The fully-Bayesian counterpart of Dawid–Skene: latent true labels
//! `z_i ~ Cat(p)` with `p ~ Dir(α)`, and per-worker confusion rows
//! `π_w[j] ~ Dir(β)`. With the conjugate priors collapsed, the Gibbs
//! sweep resamples each `z_i` from its predictive distribution
//!
//! `P(z_i = j | z_{−i}, answers) ∝ (n_j^{−i} + α) ·
//!     Π_{(w,l) on i} (n_w[j][l]^{−i} + β) / (n_w[j][·]^{−i} + K·β)`
//!
//! where the `n` are label/confusion counts excluding item `i`. Posterior
//! label distributions are the empirical frequencies over the post-burn-in
//! samples. The sampler is seeded, so runs are reproducible.

use crate::aggregate::{check_all_answered, AggregateResult, Aggregator, Result};
use hc_data::AnswerMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// BCC collapsed Gibbs sampler.
#[derive(Debug, Clone, Copy)]
pub struct Bcc {
    /// Burn-in sweeps discarded before collecting samples.
    pub burn_in: usize,
    /// Post-burn-in sweeps whose samples form the posterior.
    pub samples: usize,
    /// Dirichlet concentration on the class prior.
    pub alpha: f64,
    /// Dirichlet concentration on confusion-matrix rows (asymmetric:
    /// diagonal gets `beta_diag`, off-diagonal `beta_off` — encoding the
    /// better-than-chance worker assumption of §II-A).
    pub beta_diag: f64,
    /// Off-diagonal confusion pseudo-count.
    pub beta_off: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Bcc {
    fn default() -> Self {
        Bcc {
            burn_in: 50,
            samples: 100,
            alpha: 1.0,
            beta_diag: 2.0,
            beta_off: 1.0,
            seed: 0xBCC,
        }
    }
}

impl Bcc {
    /// BCC with default hyperparameters.
    pub fn new() -> Self {
        Self::default()
    }

    /// BCC with a specific seed.
    pub fn with_seed(seed: u64) -> Self {
        Bcc {
            seed,
            ..Self::default()
        }
    }
}

impl Aggregator for Bcc {
    fn name(&self) -> &'static str {
        "BCC"
    }

    fn aggregate(&self, matrix: &AnswerMatrix) -> Result<AggregateResult> {
        check_all_answered(matrix)?;
        let n = matrix.n_items();
        let m = matrix.n_workers();
        let k = matrix.n_classes();
        let mut rng = StdRng::seed_from_u64(self.seed);

        // Init z from majority vote.
        let mut z: Vec<u8> = matrix
            .vote_counts()
            .iter()
            .map(|counts| {
                counts
                    .iter()
                    .enumerate()
                    .max_by_key(|&(_, &c)| c)
                    .map(|(c, _)| c as u8)
                    .unwrap_or(0)
            })
            .collect();

        // Counts.
        let mut n_class = vec![0u32; k];
        // conf[w][j*k + l]
        let mut conf = vec![vec![0u32; k * k]; m];
        // conf_row[w][j] = Σ_l conf[w][j][l]
        let mut conf_row = vec![vec![0u32; k]; m];
        for (&zi, item) in z.iter().zip(0..n) {
            n_class[zi as usize] += 1;
            for e in matrix.by_item(item) {
                let c = &mut conf[e.worker as usize];
                c[zi as usize * k + e.label as usize] += 1;
                conf_row[e.worker as usize][zi as usize] += 1;
            }
        }

        let beta_row_total = self.beta_diag + self.beta_off * (k as f64 - 1.0);
        let mut label_samples = vec![vec![0u32; k]; n];
        let mut conf_accum = vec![vec![0.0f64; k * k]; m];
        let mut scores = vec![0.0f64; k];

        for sweep in 0..self.burn_in + self.samples {
            #[allow(clippy::needless_range_loop)] // item also keys by_item()
            for item in 0..n {
                let old = z[item] as usize;
                // Remove item's contribution.
                n_class[old] -= 1;
                for e in matrix.by_item(item) {
                    conf[e.worker as usize][old * k + e.label as usize] -= 1;
                    conf_row[e.worker as usize][old] -= 1;
                }
                // Predictive scores per class (products are short: one
                // factor per answer; stay in linear space with per-step
                // rescaling not needed for typical crowd sizes).
                for (j, s) in scores.iter_mut().enumerate() {
                    *s = n_class[j] as f64 + self.alpha;
                }
                for e in matrix.by_item(item) {
                    let w = e.worker as usize;
                    let l = e.label as usize;
                    for (j, s) in scores.iter_mut().enumerate() {
                        let pseudo = if j == l { self.beta_diag } else { self.beta_off };
                        let num = conf[w][j * k + l] as f64 + pseudo;
                        let den = conf_row[w][j] as f64 + beta_row_total;
                        *s *= num / den;
                    }
                }
                let total: f64 = scores.iter().sum();
                let mut draw = rng.gen_range(0.0..total);
                let mut new = k - 1;
                for (j, &s) in scores.iter().enumerate() {
                    if draw < s {
                        new = j;
                        break;
                    }
                    draw -= s;
                }
                // Add back.
                z[item] = new as u8;
                n_class[new] += 1;
                for e in matrix.by_item(item) {
                    conf[e.worker as usize][new * k + e.label as usize] += 1;
                    conf_row[e.worker as usize][new] += 1;
                }
            }
            if sweep >= self.burn_in {
                for (item, &zi) in z.iter().enumerate() {
                    label_samples[item][zi as usize] += 1;
                }
                for w in 0..m {
                    for (slot, &c) in conf_accum[w].iter_mut().zip(&conf[w]) {
                        *slot += c as f64;
                    }
                }
            }
        }

        let s_total = self.samples.max(1) as f64;
        let posteriors: Vec<Vec<f64>> = label_samples
            .into_iter()
            .map(|counts| counts.into_iter().map(|c| c as f64 / s_total).collect())
            .collect();

        // Reliability: diagonal mass of the averaged confusion counts.
        let worker_reliability = conf_accum
            .iter()
            .map(|c| {
                let diag: f64 = (0..k).map(|j| c[j * k + j]).sum();
                let total: f64 = c.iter().sum();
                if total > 0.0 {
                    (diag / total).clamp(0.0, 1.0)
                } else {
                    0.5
                }
            })
            .collect();

        Ok(AggregateResult {
            posteriors,
            worker_reliability,
            iterations: self.burn_in + self.samples,
            converged: true,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{heterogeneous_dataset, labeled_accuracy};

    #[test]
    fn recovers_truth_on_clean_data() {
        let data = heterogeneous_dataset(300, &[0.9, 0.9, 0.85], 50);
        let r = Bcc::new().aggregate(&data.matrix).unwrap();
        assert!(r.validate());
        assert!(labeled_accuracy(&data, &r) > 0.95);
    }

    #[test]
    fn seeded_runs_are_reproducible() {
        let data = heterogeneous_dataset(100, &[0.9, 0.7], 51);
        let a = Bcc::with_seed(7).aggregate(&data.matrix).unwrap();
        let b = Bcc::with_seed(7).aggregate(&data.matrix).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_agree_on_labels() {
        // The posterior is a Monte-Carlo estimate, but MAP labels on an
        // easy corpus must be seed-independent.
        let data = heterogeneous_dataset(200, &[0.92, 0.9, 0.88], 52);
        let a = Bcc::with_seed(1).aggregate(&data.matrix).unwrap();
        let b = Bcc::with_seed(2).aggregate(&data.matrix).unwrap();
        let agree = a
            .map_labels()
            .iter()
            .zip(b.map_labels())
            .filter(|(x, y)| **x == *y)
            .count();
        assert!(agree as f64 / 200.0 > 0.97);
    }

    #[test]
    fn reliability_separates_workers() {
        // Three workers so disagreements carry signal.
        let data = heterogeneous_dataset(800, &[0.95, 0.6, 0.6], 53);
        let r = Bcc::new().aggregate(&data.matrix).unwrap();
        assert!(
            r.worker_reliability[0] > r.worker_reliability[1],
            "reliability {:?}",
            r.worker_reliability
        );
    }
}
