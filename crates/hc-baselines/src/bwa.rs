//! BWA — Bayesian Weighted Average \[35\].
//!
//! Li et al.'s conjugate Bayesian model for adjudicating highly
//! redundant annotations: worker votes are combined with log-odds
//! weights derived from Beta-posterior reliability estimates, and
//! weights/posteriors are refined by simple iterative EM:
//!
//! * **E-step**: `q_i(j) ∝ exp(Σ_{(w,l) on i, l=j} v_w)` — a weighted
//!   vote with each worker contributing weight `v_w` to the class they
//!   chose.
//! * **M-step**: worker `w`'s expected correct count
//!   `c_w = Σ_{(i,l) by w} q_i(l)` updates the conjugate posterior
//!   `Beta(a + c_w, b + n_w − c_w)`, and the new weight is the posterior
//!   mean log-odds `v_w = ln((a + c_w) / (b + n_w − c_w))`, floored at 0
//!   (a below-chance worker is ignored rather than inverted, matching
//!   the paper's reliance on redundancy rather than adversarial flips).

use crate::aggregate::{check_all_answered, AggregateResult, Aggregator, Result};
use crate::util::{max_abs_diff, softmax_in_place};
use hc_data::AnswerMatrix;

/// BWA EM aggregator.
#[derive(Debug, Clone, Copy)]
pub struct Bwa {
    /// Maximum EM iterations.
    pub max_iter: usize,
    /// Convergence threshold on the max posterior change.
    pub tol: f64,
    /// Beta prior `(a, b)` on worker correctness.
    pub prior: (f64, f64),
}

impl Default for Bwa {
    fn default() -> Self {
        Bwa {
            max_iter: 100,
            tol: 1e-6,
            prior: (4.0, 1.0),
        }
    }
}

impl Bwa {
    /// BWA with default hyperparameters.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Aggregator for Bwa {
    fn name(&self) -> &'static str {
        "BWA"
    }

    fn aggregate(&self, matrix: &AnswerMatrix) -> Result<AggregateResult> {
        check_all_answered(matrix)?;
        let n = matrix.n_items();
        let m = matrix.n_workers();
        let k = matrix.n_classes();
        let (a, b) = self.prior;

        let mut posteriors: Vec<Vec<f64>> = matrix
            .vote_counts()
            .into_iter()
            .map(|counts| {
                let total: u32 = counts.iter().sum();
                counts
                    .into_iter()
                    .map(|c| c as f64 / total as f64)
                    .collect()
            })
            .collect();
        let mut weights = vec![(a / b).ln(); m];
        let mut reliability = vec![a / (a + b); m];
        let mut iterations = 0;
        let mut converged = false;

        for _ in 0..self.max_iter {
            iterations += 1;
            // M-step: conjugate Beta update of each worker's weight.
            let mut correct = vec![0.0; m];
            let mut answered = vec![0u32; m];
            for e in matrix.entries() {
                correct[e.worker as usize] += posteriors[e.item as usize][e.label as usize];
                answered[e.worker as usize] += 1;
            }
            for w in 0..m {
                let alpha = a + correct[w];
                let beta = b + answered[w] as f64 - correct[w];
                reliability[w] = alpha / (alpha + beta);
                weights[w] = (alpha / beta).ln().max(0.0);
            }

            // E-step: weighted vote softmax.
            let mut new_posteriors = Vec::with_capacity(n);
            for item in 0..n {
                let mut scores = vec![0.0; k];
                for e in matrix.by_item(item) {
                    scores[e.label as usize] += weights[e.worker as usize];
                }
                softmax_in_place(&mut scores);
                new_posteriors.push(scores);
            }

            let delta = max_abs_diff(&posteriors, &new_posteriors);
            posteriors = new_posteriors;
            if delta < self.tol {
                converged = true;
                break;
            }
        }

        Ok(AggregateResult {
            posteriors,
            worker_reliability: reliability.iter().map(|r| r.clamp(0.0, 1.0)).collect(),
            iterations,
            converged,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{heterogeneous_dataset, labeled_accuracy};

    #[test]
    fn recovers_truth_with_redundancy() {
        let data = heterogeneous_dataset(300, &[0.85, 0.85, 0.8, 0.8, 0.75], 40);
        let r = Bwa::new().aggregate(&data.matrix).unwrap();
        assert!(r.validate());
        assert!(labeled_accuracy(&data, &r) > 0.93);
    }

    #[test]
    fn reliability_tracks_true_accuracy() {
        // Three workers so disagreements carry signal.
        let data = heterogeneous_dataset(800, &[0.95, 0.6, 0.6], 41);
        let r = Bwa::new().aggregate(&data.matrix).unwrap();
        assert!(
            r.worker_reliability[1] < r.worker_reliability[0],
            "reliability {:?}",
            r.worker_reliability
        );
        assert!(r.worker_reliability[0] > 0.8);
    }

    #[test]
    fn deterministic_and_convergent() {
        let data = heterogeneous_dataset(150, &[0.9, 0.8, 0.7], 42);
        let a = Bwa::new().aggregate(&data.matrix).unwrap();
        let b = Bwa::new().aggregate(&data.matrix).unwrap();
        assert_eq!(a, b);
        assert!(a.converged);
    }

    #[test]
    fn below_chance_expected_workers_get_zero_weight() {
        // A tiny corpus where one worker disagrees with everyone: its
        // weight should floor at 0 rather than go negative.
        let data = heterogeneous_dataset(400, &[0.95, 0.95, 0.95, 0.5], 43);
        let r = Bwa::new().aggregate(&data.matrix).unwrap();
        assert!(r.worker_reliability[3] < 0.7);
        assert!(labeled_accuracy(&data, &r) > 0.9);
    }
}
