//! Majority-voting variants from Sheng et al. \[15\], cited by the paper
//! (§I and §V): MV-Freq, MV-Beta and Paired-MV.
//!
//! * **MV-Freq** — soft majority voting: the posterior is the empirical
//!   label frequency (this is also what [`crate::mv::MajorityVote`]
//!   returns; kept here under its literature name for sweeps).
//! * **MV-Beta** — Bayesian soft voting for binary labels: with a
//!   `Beta(a, b)` prior, the posterior probability of the positive class
//!   integrates the uncertainty of few votes instead of trusting raw
//!   frequencies (3 Yes out of 4 is weaker evidence than 30 of 40).
//!   We report the posterior mean `(yes + a) / (votes + a + b)`.
//! * **Paired-MV** — pairs up votes and discards ties pair-by-pair: the
//!   votes are consumed in pairs; agreeing pairs count one vote for
//!   their label, disagreeing pairs cancel. Reduces the variance
//!   injected by low-quality voters when redundancy is high.

use crate::aggregate::{check_all_answered, AggregateError, AggregateResult, Aggregator, Result};
use hc_data::AnswerMatrix;

/// Soft majority voting under its literature name (MV-Freq).
#[derive(Debug, Clone, Copy, Default)]
pub struct MvFreq;

impl MvFreq {
    /// A new MV-Freq aggregator.
    pub fn new() -> Self {
        MvFreq
    }
}

impl Aggregator for MvFreq {
    fn name(&self) -> &'static str {
        "MV-Freq"
    }

    fn aggregate(&self, matrix: &AnswerMatrix) -> Result<AggregateResult> {
        crate::mv::MajorityVote::new().aggregate(matrix)
    }
}

/// Beta-smoothed majority voting (binary corpora only).
#[derive(Debug, Clone, Copy)]
pub struct MvBeta {
    /// Pseudo-count of positive votes.
    pub alpha: f64,
    /// Pseudo-count of negative votes.
    pub beta: f64,
}

impl Default for MvBeta {
    fn default() -> Self {
        MvBeta {
            alpha: 1.0,
            beta: 1.0,
        }
    }
}

impl MvBeta {
    /// MV-Beta with a uniform `Beta(1, 1)` prior.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Aggregator for MvBeta {
    fn name(&self) -> &'static str {
        "MV-Beta"
    }

    fn aggregate(&self, matrix: &AnswerMatrix) -> Result<AggregateResult> {
        if matrix.n_classes() != 2 {
            return Err(AggregateError::NotBinary(matrix.n_classes()));
        }
        check_all_answered(matrix)?;
        let posteriors: Vec<Vec<f64>> = (0..matrix.n_items())
            .map(|item| {
                let answers = matrix.by_item(item);
                let yes = answers.iter().filter(|e| e.label == 1).count() as f64;
                let total = answers.len() as f64;
                let p = (yes + self.alpha) / (total + self.alpha + self.beta);
                vec![1.0 - p, p]
            })
            .collect();
        finish_with_agreement(matrix, posteriors)
    }
}

/// Pairing-based majority voting (binary corpora only).
#[derive(Debug, Clone, Copy, Default)]
pub struct PairedMv;

impl PairedMv {
    /// A new Paired-MV aggregator.
    pub fn new() -> Self {
        PairedMv
    }
}

impl Aggregator for PairedMv {
    fn name(&self) -> &'static str {
        "Paired-MV"
    }

    fn aggregate(&self, matrix: &AnswerMatrix) -> Result<AggregateResult> {
        if matrix.n_classes() != 2 {
            return Err(AggregateError::NotBinary(matrix.n_classes()));
        }
        check_all_answered(matrix)?;
        let posteriors: Vec<Vec<f64>> = (0..matrix.n_items())
            .map(|item| {
                let answers = matrix.by_item(item);
                // Consume votes in (worker-sorted) pairs; agreeing pairs
                // vote once, disagreeing pairs cancel. A leftover odd
                // vote counts as half a vote for its label.
                let mut yes = 0.0;
                let mut no = 0.0;
                let mut chunks = answers.chunks_exact(2);
                for pair in &mut chunks {
                    match (pair[0].label, pair[1].label) {
                        (1, 1) => yes += 1.0,
                        (0, 0) => no += 1.0,
                        _ => {} // Disagreement: the pair cancels.
                    }
                }
                if let [odd] = chunks.remainder() {
                    if odd.label == 1 {
                        yes += 0.5;
                    } else {
                        no += 0.5;
                    }
                }
                let total = yes + no;
                let p = if total > 0.0 {
                    yes / total
                } else {
                    0.5 // Every pair cancelled: total uncertainty.
                };
                vec![1.0 - p, p]
            })
            .collect();
        finish_with_agreement(matrix, posteriors)
    }
}

/// Fills in worker reliability as agreement with the MAP labels — the
/// convention every voting variant shares.
fn finish_with_agreement(
    matrix: &AnswerMatrix,
    posteriors: Vec<Vec<f64>>,
) -> Result<AggregateResult> {
    let result = AggregateResult {
        posteriors,
        worker_reliability: vec![0.0; matrix.n_workers()],
        iterations: 1,
        converged: true,
    };
    let labels = result.map_labels();
    let mut agree = vec![0u32; matrix.n_workers()];
    let mut total = vec![0u32; matrix.n_workers()];
    for e in matrix.entries() {
        total[e.worker as usize] += 1;
        if labels[e.item as usize] == e.label {
            agree[e.worker as usize] += 1;
        }
    }
    let worker_reliability = agree
        .iter()
        .zip(&total)
        .map(|(&a, &t)| if t > 0 { a as f64 / t as f64 } else { 0.5 })
        .collect();
    Ok(AggregateResult {
        worker_reliability,
        ..result
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{heterogeneous_dataset, labeled_accuracy};
    use hc_data::AnswerEntry;

    fn entry(item: u32, worker: u32, label: u8) -> AnswerEntry {
        AnswerEntry {
            item,
            worker,
            label,
        }
    }

    #[test]
    fn mv_freq_matches_plain_mv() {
        let data = heterogeneous_dataset(100, &[0.9, 0.8, 0.7], 70);
        let freq = MvFreq::new().aggregate(&data.matrix).unwrap();
        let plain = crate::mv::MajorityVote::new().aggregate(&data.matrix).unwrap();
        assert_eq!(freq, plain);
    }

    #[test]
    fn mv_beta_shrinks_toward_prior() {
        // 2 Yes of 2 votes: frequency says 1.0, Beta(1,1) says 3/4.
        let m = AnswerMatrix::new(1, 2, 2, vec![entry(0, 0, 1), entry(0, 1, 1)]).unwrap();
        let r = MvBeta::new().aggregate(&m).unwrap();
        assert!((r.posteriors[0][1] - 0.75).abs() < 1e-12);
        assert!(r.validate());
    }

    #[test]
    fn mv_beta_approaches_frequency_with_many_votes() {
        let entries: Vec<AnswerEntry> = (0..100).map(|w| entry(0, w, 1)).collect();
        let m = AnswerMatrix::new(1, 100, 2, entries).unwrap();
        let r = MvBeta::new().aggregate(&m).unwrap();
        assert!(r.posteriors[0][1] > 0.98);
    }

    #[test]
    fn paired_mv_cancels_disagreeing_pairs() {
        // Votes (worker order): 1,0 | 1,1 — first pair cancels, second
        // votes Yes. Posterior should be fully Yes.
        let m = AnswerMatrix::new(
            1,
            4,
            2,
            vec![entry(0, 0, 1), entry(0, 1, 0), entry(0, 2, 1), entry(0, 3, 1)],
        )
        .unwrap();
        let r = PairedMv::new().aggregate(&m).unwrap();
        assert_eq!(r.posteriors[0], vec![0.0, 1.0]);
    }

    #[test]
    fn paired_mv_all_cancelled_is_uncertain() {
        let m = AnswerMatrix::new(1, 2, 2, vec![entry(0, 0, 1), entry(0, 1, 0)]).unwrap();
        let r = PairedMv::new().aggregate(&m).unwrap();
        assert_eq!(r.posteriors[0], vec![0.5, 0.5]);
    }

    #[test]
    fn paired_mv_counts_odd_leftover_as_half_vote() {
        // Three Yes votes: one pair (Yes) + a leftover Yes half-vote.
        let m = AnswerMatrix::new(
            1,
            3,
            2,
            vec![entry(0, 0, 1), entry(0, 1, 1), entry(0, 2, 1)],
        )
        .unwrap();
        let r = PairedMv::new().aggregate(&m).unwrap();
        assert_eq!(r.posteriors[0], vec![0.0, 1.0]);
    }

    #[test]
    fn variants_reject_multiclass() {
        let m = AnswerMatrix::new(1, 1, 3, vec![entry(0, 0, 2)]).unwrap();
        assert!(matches!(
            MvBeta::new().aggregate(&m),
            Err(AggregateError::NotBinary(3))
        ));
        assert!(matches!(
            PairedMv::new().aggregate(&m),
            Err(AggregateError::NotBinary(3))
        ));
    }

    #[test]
    fn variants_track_mv_accuracy_on_real_corpora() {
        let data = heterogeneous_dataset(400, &[0.9, 0.85, 0.8, 0.75, 0.7], 71);
        let mv = labeled_accuracy(
            &data,
            &crate::mv::MajorityVote::new().aggregate(&data.matrix).unwrap(),
        );
        for result in [
            MvBeta::new().aggregate(&data.matrix).unwrap(),
            PairedMv::new().aggregate(&data.matrix).unwrap(),
        ] {
            let acc = labeled_accuracy(&data, &result);
            assert!((acc - mv).abs() < 0.08, "variant {acc} vs MV {mv}");
        }
    }
}
