//! GLAD — Generative model of Labels, Abilities and Difficulties \[33\].
//!
//! Extends ZC's worker model with per-item difficulty: worker `w` answers
//! item `i` correctly with probability `σ(α_w · β_i)` where `α_w ∈ ℝ` is
//! the worker's ability and `β_i = exp(γ_i) > 0` the item's
//! discriminability (low `β` = hard item). Wrong answers spread uniformly
//! over the other `K-1` classes (the standard multi-class
//! generalisation; the original paper is binary).
//!
//! EM with gradient ascent in the M-step:
//!
//! * **E-step**: `q_i(j) ∝ Π_{(w,l) on i} P(l | j; α_w, β_i)`.
//! * **M-step**: a few gradient steps on the expected complete-data
//!   log-likelihood w.r.t. `α` and `γ` with Gaussian priors
//!   `α ~ N(1, 1)`, `γ ~ N(0, 1)` for identifiability:
//!   `∂Q/∂α_w = Σ_{(i,l) by w} Σ_j q_i(j) (δ_{lj} − σ(α_w β_i)) β_i − (α_w − 1)`
//!   `∂Q/∂γ_i = Σ_{(w,l) on i} Σ_j q_i(j) (δ_{lj} − σ(α_w β_i)) α_w β_i − γ_i`

use crate::aggregate::{check_all_answered, AggregateResult, Aggregator, Result};
use crate::util::{max_abs_diff, sigmoid, softmax_in_place};
use hc_data::AnswerMatrix;

/// GLAD EM aggregator.
#[derive(Debug, Clone, Copy)]
pub struct Glad {
    /// Maximum EM iterations.
    pub max_iter: usize,
    /// Convergence threshold on the max posterior change.
    pub tol: f64,
    /// Gradient-ascent steps per M-step.
    pub grad_steps: usize,
    /// Gradient-ascent learning rate.
    pub learning_rate: f64,
}

impl Default for Glad {
    fn default() -> Self {
        Glad {
            max_iter: 50,
            tol: 1e-5,
            grad_steps: 10,
            learning_rate: 0.05,
        }
    }
}

impl Glad {
    /// GLAD with default hyperparameters.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Aggregator for Glad {
    fn name(&self) -> &'static str {
        "GLAD"
    }

    fn aggregate(&self, matrix: &AnswerMatrix) -> Result<AggregateResult> {
        check_all_answered(matrix)?;
        let n = matrix.n_items();
        let m = matrix.n_workers();
        let k = matrix.n_classes();
        let wrong_share = 1.0 / (k as f64 - 1.0).max(1.0);

        let mut posteriors: Vec<Vec<f64>> = matrix
            .vote_counts()
            .into_iter()
            .map(|counts| {
                let total: u32 = counts.iter().sum();
                counts
                    .into_iter()
                    .map(|c| c as f64 / total as f64)
                    .collect()
            })
            .collect();
        let mut alpha = vec![1.0; m]; // worker ability
        let mut gamma = vec![0.0; n]; // log item discriminability
        let mut iterations = 0;
        let mut converged = false;

        for _ in 0..self.max_iter {
            iterations += 1;

            // M-step: gradient ascent on alpha and gamma.
            for _ in 0..self.grad_steps {
                let mut grad_alpha: Vec<f64> =
                    alpha.iter().map(|&a| -(a - 1.0)).collect();
                let mut grad_gamma: Vec<f64> = gamma.iter().map(|&g| -g).collect();
                for e in matrix.entries() {
                    let i = e.item as usize;
                    let w = e.worker as usize;
                    let beta = gamma[i].exp();
                    let s = sigmoid(alpha[w] * beta);
                    // Σ_j q_i(j) (δ_{lj} − σ) = q_i(l) − σ.
                    let resid = posteriors[i][e.label as usize] - s;
                    grad_alpha[w] += resid * beta;
                    grad_gamma[i] += resid * alpha[w] * beta;
                }
                for (a, g) in alpha.iter_mut().zip(&grad_alpha) {
                    *a += self.learning_rate * g;
                }
                for (g, d) in gamma.iter_mut().zip(&grad_gamma) {
                    // Clamp to keep exp(gamma) in a sane range.
                    *g = (*g + self.learning_rate * d).clamp(-4.0, 4.0);
                }
            }

            // E-step.
            let mut new_posteriors = Vec::with_capacity(n);
            #[allow(clippy::needless_range_loop)] // item also keys by_item()
            for item in 0..n {
                let beta = gamma[item].exp();
                let mut log_scores = vec![0.0; k];
                for e in matrix.by_item(item) {
                    let s = sigmoid(alpha[e.worker as usize] * beta)
                        .clamp(1e-9, 1.0 - 1e-9);
                    let ln_correct = s.ln();
                    let ln_wrong = ((1.0 - s) * wrong_share).ln();
                    for (j, score) in log_scores.iter_mut().enumerate() {
                        *score += if j == e.label as usize {
                            ln_correct
                        } else {
                            ln_wrong
                        };
                    }
                }
                softmax_in_place(&mut log_scores);
                new_posteriors.push(log_scores);
            }

            let delta = max_abs_diff(&posteriors, &new_posteriors);
            posteriors = new_posteriors;
            if delta < self.tol {
                converged = true;
                break;
            }
        }

        // Reliability: average predicted correctness over the worker's
        // answered items.
        let mut reliability = vec![0.0; m];
        let mut counts = vec![0u32; m];
        for e in matrix.entries() {
            let w = e.worker as usize;
            reliability[w] += sigmoid(alpha[w] * gamma[e.item as usize].exp());
            counts[w] += 1;
        }
        for (r, &c) in reliability.iter_mut().zip(&counts) {
            if c > 0 {
                *r /= c as f64;
            } else {
                *r = 0.5;
            }
        }

        Ok(AggregateResult {
            posteriors,
            worker_reliability: reliability,
            iterations,
            converged,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{heterogeneous_dataset, labeled_accuracy};

    #[test]
    fn recovers_truth_on_clean_data() {
        let data = heterogeneous_dataset(300, &[0.9, 0.88, 0.85], 20);
        let r = Glad::new().aggregate(&data.matrix).unwrap();
        assert!(r.validate());
        assert!(labeled_accuracy(&data, &r) > 0.93);
    }

    #[test]
    fn ability_orders_workers() {
        // Three workers so disagreements carry signal.
        let data = heterogeneous_dataset(800, &[0.95, 0.6, 0.6], 21);
        let r = Glad::new().aggregate(&data.matrix).unwrap();
        assert!(
            r.worker_reliability[0] > r.worker_reliability[1],
            "reliability {:?}",
            r.worker_reliability
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let data = heterogeneous_dataset(100, &[0.9, 0.75], 22);
        let a = Glad::new().aggregate(&data.matrix).unwrap();
        let b = Glad::new().aggregate(&data.matrix).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn posteriors_stay_normalised_under_many_iterations() {
        let data = heterogeneous_dataset(80, &[0.85, 0.7, 0.65], 23);
        let mut cfg = Glad::new();
        cfg.max_iter = 200;
        let r = cfg.aggregate(&data.matrix).unwrap();
        assert!(r.validate());
    }
}
