//! Dawid–Skene (DS) — maximum-likelihood truth inference with per-worker
//! confusion matrices, fitted by EM \[31\].
//!
//! Model: each item has a latent true class `z_i ~ Categorical(p)`;
//! worker `w` answering an item of true class `j` reports label `l` with
//! probability `π_w[j][l]` (the worker's confusion matrix). EM:
//!
//! * **E-step**: `P(z_i = j | answers) ∝ p[j] · Π_{(w,l) on i} π_w[j][l]`
//!   (log-space).
//! * **M-step**: `π_w[j][l] ∝ Σ_i q_i(j) · 1[w answered l on i]` and
//!   `p[j] ∝ Σ_i q_i(j)`, both with additive (Laplace) smoothing so that
//!   sparse workers don't produce zero likelihoods.
//!
//! Initialised from majority-vote frequencies, the standard DS warm
//! start.

use crate::aggregate::{check_all_answered, AggregateResult, Aggregator, Result};
use crate::util::{max_abs_diff, softmax_in_place};
use hc_data::AnswerMatrix;

/// Dawid–Skene EM aggregator.
#[derive(Debug, Clone, Copy)]
pub struct DawidSkene {
    /// Maximum EM iterations.
    pub max_iter: usize,
    /// Convergence threshold on the max posterior change.
    pub tol: f64,
    /// Additive smoothing for confusion-matrix rows.
    pub smoothing: f64,
}

impl Default for DawidSkene {
    fn default() -> Self {
        DawidSkene {
            max_iter: 100,
            tol: 1e-6,
            smoothing: 0.01,
        }
    }
}

impl DawidSkene {
    /// DS with default hyperparameters.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Aggregator for DawidSkene {
    fn name(&self) -> &'static str {
        "DS"
    }

    fn aggregate(&self, matrix: &AnswerMatrix) -> Result<AggregateResult> {
        check_all_answered(matrix)?;
        let n = matrix.n_items();
        let m = matrix.n_workers();
        let k = matrix.n_classes();

        // Soft majority-vote initialisation.
        let mut posteriors: Vec<Vec<f64>> = matrix
            .vote_counts()
            .into_iter()
            .map(|counts| {
                let total: u32 = counts.iter().sum();
                counts
                    .into_iter()
                    .map(|c| c as f64 / total as f64)
                    .collect()
            })
            .collect();

        let mut confusion = vec![vec![0.0; k * k]; m];
        let mut prior = vec![1.0 / k as f64; k];
        let mut iterations = 0;
        let mut converged = false;

        for _ in 0..self.max_iter {
            iterations += 1;
            // M-step: confusion matrices and class prior.
            for c in confusion.iter_mut() {
                c.fill(self.smoothing);
            }
            let mut class_mass = vec![self.smoothing; k];
            for e in matrix.entries() {
                let q = &posteriors[e.item as usize];
                let c = &mut confusion[e.worker as usize];
                for (j, &qj) in q.iter().enumerate() {
                    c[j * k + e.label as usize] += qj;
                }
            }
            for q in &posteriors {
                for (j, &qj) in q.iter().enumerate() {
                    class_mass[j] += qj;
                }
            }
            for c in confusion.iter_mut() {
                for j in 0..k {
                    let row_sum: f64 = c[j * k..(j + 1) * k].iter().sum();
                    for l in 0..k {
                        c[j * k + l] /= row_sum;
                    }
                }
            }
            let total_mass: f64 = class_mass.iter().sum();
            for (p, &mass) in prior.iter_mut().zip(&class_mass) {
                *p = mass / total_mass;
            }

            // E-step: new posteriors in log-space.
            let mut new_posteriors = Vec::with_capacity(n);
            for item in 0..n {
                let mut log_scores: Vec<f64> = prior.iter().map(|&p| p.ln()).collect();
                for e in matrix.by_item(item) {
                    let c = &confusion[e.worker as usize];
                    for (j, score) in log_scores.iter_mut().enumerate() {
                        *score += c[j * k + e.label as usize].ln();
                    }
                }
                softmax_in_place(&mut log_scores);
                new_posteriors.push(log_scores);
            }

            let delta = max_abs_diff(&posteriors, &new_posteriors);
            posteriors = new_posteriors;
            if delta < self.tol {
                converged = true;
                break;
            }
        }

        // Reliability: prior-weighted diagonal of each confusion matrix.
        let worker_reliability = confusion
            .iter()
            .map(|c| {
                (0..k)
                    .map(|j| prior[j] * c[j * k + j])
                    .sum::<f64>()
                    .clamp(0.0, 1.0)
            })
            .collect();

        Ok(AggregateResult {
            posteriors,
            worker_reliability,
            iterations,
            converged,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mv::MajorityVote;
    use crate::test_support::{heterogeneous_dataset, labeled_accuracy};

    #[test]
    fn recovers_truth_on_clean_data() {
        let ds_data = heterogeneous_dataset(300, &[0.95, 0.9, 0.9], 1);
        let r = DawidSkene::new().aggregate(&ds_data.matrix).unwrap();
        assert!(r.validate());
        let acc = labeled_accuracy(&ds_data, &r);
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn beats_majority_vote_on_heterogeneous_crowd() {
        // One strong worker among noisy ones: MV treats all equally, DS
        // learns the confusion matrices.
        let data = heterogeneous_dataset(500, &[0.95, 0.56, 0.56, 0.56, 0.56], 2);
        let ds_acc = labeled_accuracy(&data, &DawidSkene::new().aggregate(&data.matrix).unwrap());
        let mv_acc = labeled_accuracy(&data, &MajorityVote::new().aggregate(&data.matrix).unwrap());
        assert!(
            ds_acc >= mv_acc,
            "DS {ds_acc} should be at least MV {mv_acc}"
        );
    }

    #[test]
    fn reliability_orders_workers() {
        // Three workers so disagreements carry signal.
        let data = heterogeneous_dataset(800, &[0.95, 0.6, 0.6], 3);
        let r = DawidSkene::new().aggregate(&data.matrix).unwrap();
        assert!(
            r.worker_reliability[0] > r.worker_reliability[1],
            "reliabilities {:?}",
            r.worker_reliability
        );
    }

    #[test]
    fn converges_and_is_deterministic() {
        let data = heterogeneous_dataset(100, &[0.9, 0.8, 0.7], 4);
        let mut cfg = DawidSkene::new();
        cfg.max_iter = 500;
        let a = cfg.aggregate(&data.matrix).unwrap();
        let b = cfg.aggregate(&data.matrix).unwrap();
        assert_eq!(a, b);
        assert!(a.converged, "should converge within 500 iterations");
    }
}
