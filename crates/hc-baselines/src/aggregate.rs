//! The common interface of all label-aggregation / truth-inference
//! baselines (§IV-B of the paper).
//!
//! Every algorithm consumes a sparse [`AnswerMatrix`] and produces
//! per-item class posteriors plus per-worker reliability estimates. The
//! posteriors double as belief-initialisation marginals for the HC
//! pipeline (Figure 6's "varying initialisation" study).

use hc_data::AnswerMatrix;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Output of one aggregation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AggregateResult {
    /// `posteriors[item][class]` — each row a normalised distribution.
    pub posteriors: Vec<Vec<f64>>,
    /// Estimated reliability of each worker in `[0, 1]` (probability of
    /// answering correctly; class-averaged diagonal for confusion-matrix
    /// models).
    pub worker_reliability: Vec<f64>,
    /// Iterations the algorithm ran.
    pub iterations: usize,
    /// Whether the convergence criterion was met (vs iteration cap).
    pub converged: bool,
}

impl AggregateResult {
    /// MAP label per item (ties break to the lowest class).
    pub fn map_labels(&self) -> Vec<u8> {
        self.posteriors
            .iter()
            .map(|row| {
                let mut best = 0usize;
                for (c, &p) in row.iter().enumerate().skip(1) {
                    if p > row[best] {
                        best = c;
                    }
                }
                best as u8
            })
            .collect()
    }

    /// `P(class = 1)` per item; the belief-initialisation marginals for
    /// binary corpora.
    pub fn binary_marginals(&self) -> Vec<f64> {
        self.posteriors.iter().map(|row| row[1]).collect()
    }

    /// Checks internal invariants (row normalisation, ranges). Intended
    /// for tests.
    pub fn validate(&self) -> bool {
        self.posteriors.iter().all(|row| {
            let sum: f64 = row.iter().sum();
            (sum - 1.0).abs() < 1e-6 && row.iter().all(|&p| (0.0..=1.0 + 1e-9).contains(&p))
        }) && self
            .worker_reliability
            .iter()
            .all(|&r| (0.0..=1.0 + 1e-9).contains(&r))
    }
}

/// Errors from aggregation runs.
#[derive(Debug, Clone, PartialEq)]
pub enum AggregateError {
    /// The matrix had no answers for some item, so no posterior exists.
    UnansweredItem(u32),
    /// The algorithm only supports binary corpora but got more classes.
    NotBinary(usize),
    /// Invalid hyperparameter (message explains which).
    InvalidParameter(String),
}

impl fmt::Display for AggregateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AggregateError::UnansweredItem(i) => write!(f, "item {i} has no answers"),
            AggregateError::NotBinary(k) => {
                write!(f, "algorithm supports binary labels only, got {k} classes")
            }
            AggregateError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl std::error::Error for AggregateError {}

/// Result alias for aggregators.
pub type Result<T> = std::result::Result<T, AggregateError>;

/// A label-aggregation algorithm.
pub trait Aggregator: Send + Sync {
    /// Short name used in experiment tables ("MV", "DS", "EBCC", …).
    fn name(&self) -> &'static str;

    /// Infers per-item posteriors from the answer matrix.
    fn aggregate(&self, matrix: &AnswerMatrix) -> Result<AggregateResult>;
}

/// Ensures every item has at least one answer (every EM baseline needs
/// this); returns the first unanswered item otherwise.
pub fn check_all_answered(matrix: &AnswerMatrix) -> Result<()> {
    for item in 0..matrix.n_items() {
        if matrix.by_item(item).is_empty() {
            return Err(AggregateError::UnansweredItem(item as u32));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_labels_argmax() {
        let r = AggregateResult {
            posteriors: vec![vec![0.3, 0.7], vec![0.6, 0.4], vec![0.5, 0.5]],
            worker_reliability: vec![0.8],
            iterations: 1,
            converged: true,
        };
        assert_eq!(r.map_labels(), vec![1, 0, 0]);
        assert_eq!(r.binary_marginals(), vec![0.7, 0.4, 0.5]);
        assert!(r.validate());
    }

    #[test]
    fn validate_catches_bad_rows() {
        let r = AggregateResult {
            posteriors: vec![vec![0.9, 0.9]],
            worker_reliability: vec![0.8],
            iterations: 1,
            converged: true,
        };
        assert!(!r.validate());
    }

    #[test]
    fn unanswered_items_detected() {
        let m = AnswerMatrix::new(
            2,
            1,
            2,
            vec![hc_data::AnswerEntry {
                item: 0,
                worker: 0,
                label: 1,
            }],
        )
        .unwrap();
        assert_eq!(
            check_all_answered(&m),
            Err(AggregateError::UnansweredItem(1))
        );
    }
}
