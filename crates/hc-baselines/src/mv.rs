//! Majority vote (MV) — the simplest aggregation baseline \[11\].
//!
//! The posterior for each item is the empirical vote distribution (the
//! "MV-Freq" soft variant), so MV also works as a belief initialiser;
//! the MAP label is the plain majority label. Worker reliability is the
//! fraction of a worker's answers that agree with the majority labels.

use crate::aggregate::{check_all_answered, AggregateResult, Aggregator, Result};
use hc_data::AnswerMatrix;

/// Majority voting with frequency posteriors.
#[derive(Debug, Clone, Copy, Default)]
pub struct MajorityVote;

impl MajorityVote {
    /// A new MV aggregator.
    pub fn new() -> Self {
        MajorityVote
    }
}

impl Aggregator for MajorityVote {
    fn name(&self) -> &'static str {
        "MV"
    }

    fn aggregate(&self, matrix: &AnswerMatrix) -> Result<AggregateResult> {
        check_all_answered(matrix)?;
        let k = matrix.n_classes();
        let posteriors: Vec<Vec<f64>> = (0..matrix.n_items())
            .map(|item| {
                let answers = matrix.by_item(item);
                let mut dist = vec![0.0; k];
                for e in answers {
                    dist[e.label as usize] += 1.0;
                }
                let inv = 1.0 / answers.len() as f64;
                for d in &mut dist {
                    *d *= inv;
                }
                dist
            })
            .collect();

        // Majority labels, then per-worker agreement.
        let result = AggregateResult {
            posteriors,
            worker_reliability: vec![0.0; matrix.n_workers()],
            iterations: 1,
            converged: true,
        };
        let labels = result.map_labels();
        let mut agree = vec![0u32; matrix.n_workers()];
        let mut total = vec![0u32; matrix.n_workers()];
        for e in matrix.entries() {
            total[e.worker as usize] += 1;
            if labels[e.item as usize] == e.label {
                agree[e.worker as usize] += 1;
            }
        }
        let worker_reliability = agree
            .iter()
            .zip(&total)
            .map(|(&a, &t)| if t > 0 { a as f64 / t as f64 } else { 0.5 })
            .collect();
        Ok(AggregateResult {
            worker_reliability,
            ..result
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hc_data::AnswerEntry;

    fn entry(item: u32, worker: u32, label: u8) -> AnswerEntry {
        AnswerEntry {
            item,
            worker,
            label,
        }
    }

    #[test]
    fn majority_wins() {
        let m = AnswerMatrix::new(
            2,
            3,
            2,
            vec![
                entry(0, 0, 1),
                entry(0, 1, 1),
                entry(0, 2, 0),
                entry(1, 0, 0),
                entry(1, 1, 0),
                entry(1, 2, 1),
            ],
        )
        .unwrap();
        let r = MajorityVote::new().aggregate(&m).unwrap();
        assert_eq!(r.map_labels(), vec![1, 0]);
        assert!((r.posteriors[0][1] - 2.0 / 3.0).abs() < 1e-12);
        assert!(r.validate());
    }

    #[test]
    fn reliability_is_agreement_with_majority() {
        let m = AnswerMatrix::new(
            2,
            3,
            2,
            vec![
                entry(0, 0, 1),
                entry(0, 1, 1),
                entry(0, 2, 0),
                entry(1, 0, 0),
                entry(1, 1, 0),
                entry(1, 2, 1),
            ],
        )
        .unwrap();
        let r = MajorityVote::new().aggregate(&m).unwrap();
        assert_eq!(r.worker_reliability, vec![1.0, 1.0, 0.0]);
    }

    #[test]
    fn unanswered_item_is_error() {
        let m = AnswerMatrix::new(2, 1, 2, vec![entry(0, 0, 1)]).unwrap();
        assert!(MajorityVote::new().aggregate(&m).is_err());
    }

    #[test]
    fn multiclass_votes() {
        let m = AnswerMatrix::new(
            1,
            4,
            3,
            vec![
                entry(0, 0, 2),
                entry(0, 1, 2),
                entry(0, 2, 1),
                entry(0, 3, 0),
            ],
        )
        .unwrap();
        let r = MajorityVote::new().aggregate(&m).unwrap();
        assert_eq!(r.map_labels(), vec![2]);
        assert!((r.posteriors[0][2] - 0.5).abs() < 1e-12);
    }
}
