//! CRH — Conflict Resolution on Heterogeneous data \[34\].
//!
//! Truth-discovery framework: jointly estimate truths and source
//! (worker) weights by minimising the weighted distance between the
//! workers' answers and the truths,
//! `min_{t, w} Σ_k w_k Σ_i d(x_i^k, t_i)` s.t. `Σ_k exp(−w_k) = 1`,
//! with 0/1 loss for categorical labels. Block coordinate descent:
//!
//! * **weight update**: `w_k = ln(Σ_k' err_{k'} / err_k)` where `err_k`
//!   is worker `k`'s total distance to the current truths (smoothed);
//! * **truth update**: `t_i = argmax_c Σ_{k answered i with c} w_k` —
//!   weighted majority vote.
//!
//! Posteriors are the normalised weighted vote scores, making CRH usable
//! as a belief initialiser.

use crate::aggregate::{check_all_answered, AggregateResult, Aggregator, Result};
use hc_data::AnswerMatrix;

/// CRH truth-discovery aggregator.
#[derive(Debug, Clone, Copy)]
pub struct Crh {
    /// Maximum coordinate-descent iterations.
    pub max_iter: usize,
    /// Smoothing added to per-worker error counts.
    pub smoothing: f64,
}

impl Default for Crh {
    fn default() -> Self {
        Crh {
            max_iter: 50,
            smoothing: 0.5,
        }
    }
}

impl Crh {
    /// CRH with default hyperparameters.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Aggregator for Crh {
    fn name(&self) -> &'static str {
        "CRH"
    }

    fn aggregate(&self, matrix: &AnswerMatrix) -> Result<AggregateResult> {
        check_all_answered(matrix)?;
        let n = matrix.n_items();
        let m = matrix.n_workers();
        let k = matrix.n_classes();

        // Init truths by majority vote.
        let mut truths: Vec<u8> = matrix
            .vote_counts()
            .iter()
            .map(|counts| {
                counts
                    .iter()
                    .enumerate()
                    .max_by_key(|&(_, &c)| c)
                    .map(|(c, _)| c as u8)
                    .unwrap_or(0)
            })
            .collect();
        let mut weights = vec![1.0; m];
        let mut iterations = 0;

        let mut converged = false;
        for _ in 0..self.max_iter {
            iterations += 1;
            // Weight update from 0/1 distances to current truths.
            let mut err = vec![self.smoothing; m];
            for e in matrix.entries() {
                if e.label != truths[e.item as usize] {
                    err[e.worker as usize] += 1.0;
                }
            }
            let total_err: f64 = err.iter().sum();
            for (w, &e) in weights.iter_mut().zip(&err) {
                *w = (total_err / e).ln().max(0.0);
            }

            // Truth update: weighted majority.
            let mut new_truths = Vec::with_capacity(n);
            for item in 0..n {
                let mut scores = vec![0.0; k];
                for e in matrix.by_item(item) {
                    scores[e.label as usize] += weights[e.worker as usize];
                }
                let best = scores
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                    .map(|(c, _)| c as u8)
                    .unwrap_or(0);
                new_truths.push(best);
            }
            if new_truths == truths {
                converged = true;
                break;
            }
            truths = new_truths;
        }

        // Posteriors: softmax-free normalised weighted votes.
        let mut posteriors = Vec::with_capacity(n);
        for item in 0..n {
            let mut scores = vec![0.0; k];
            for e in matrix.by_item(item) {
                scores[e.label as usize] += weights[e.worker as usize];
            }
            let sum: f64 = scores.iter().sum();
            if sum > 0.0 {
                for s in &mut scores {
                    *s /= sum;
                }
            } else {
                scores.fill(1.0 / k as f64);
            }
            posteriors.push(scores);
        }

        // Reliability: agreement rate with the final truths.
        let mut agree = vec![0u32; m];
        let mut total = vec![0u32; m];
        for e in matrix.entries() {
            total[e.worker as usize] += 1;
            if e.label == truths[e.item as usize] {
                agree[e.worker as usize] += 1;
            }
        }
        let worker_reliability = agree
            .iter()
            .zip(&total)
            .map(|(&a, &t)| if t > 0 { a as f64 / t as f64 } else { 0.5 })
            .collect();

        Ok(AggregateResult {
            posteriors,
            worker_reliability,
            iterations,
            converged,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mv::MajorityVote;
    use crate::test_support::{heterogeneous_dataset, labeled_accuracy};

    #[test]
    fn recovers_truth_on_clean_data() {
        let data = heterogeneous_dataset(300, &[0.9, 0.9, 0.85], 30);
        let r = Crh::new().aggregate(&data.matrix).unwrap();
        assert!(r.validate());
        assert!(labeled_accuracy(&data, &r) > 0.94);
    }

    #[test]
    fn upweights_reliable_workers() {
        let data = heterogeneous_dataset(500, &[0.95, 0.55, 0.55], 31);
        let r = Crh::new().aggregate(&data.matrix).unwrap();
        assert!(r.worker_reliability[0] > r.worker_reliability[1]);
        let mv_acc = labeled_accuracy(&data, &MajorityVote::new().aggregate(&data.matrix).unwrap());
        let crh_acc = labeled_accuracy(&data, &r);
        assert!(crh_acc >= mv_acc, "CRH {crh_acc} vs MV {mv_acc}");
    }

    #[test]
    fn converges_quickly_and_deterministically() {
        let data = heterogeneous_dataset(120, &[0.9, 0.8, 0.7], 32);
        let a = Crh::new().aggregate(&data.matrix).unwrap();
        let b = Crh::new().aggregate(&data.matrix).unwrap();
        assert_eq!(a, b);
        assert!(a.converged);
        assert!(a.iterations < 50);
    }
}
