//! Shared numerical helpers for the EM / variational baselines.

/// Numerically stable `ln Σ exp(x_i)`.
pub fn log_sum_exp(xs: &[f64]) -> f64 {
    let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if max == f64::NEG_INFINITY {
        return f64::NEG_INFINITY;
    }
    let sum: f64 = xs.iter().map(|&x| (x - max).exp()).sum();
    max + sum.ln()
}

/// In-place softmax from log-scores; returns the normaliser `ln Z`.
pub fn softmax_in_place(log_scores: &mut [f64]) -> f64 {
    let lz = log_sum_exp(log_scores);
    for s in log_scores.iter_mut() {
        *s = (*s - lz).exp();
    }
    lz
}

/// Logistic sigmoid, numerically stable on both tails.
#[inline]
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Maximum absolute difference between two flat posterior tables —
/// the convergence criterion of every EM loop here.
pub fn max_abs_diff(a: &[Vec<f64>], b: &[Vec<f64>]) -> f64 {
    a.iter()
        .zip(b)
        .flat_map(|(ra, rb)| ra.iter().zip(rb).map(|(&x, &y)| (x - y).abs()))
        .fold(0.0, f64::max)
}

/// Digamma function ψ(x) (for variational Dirichlet expectations).
///
/// Standard recurrence + asymptotic series; accurate to ~1e-12 for
/// x > 0, which is all variational updates need.
pub fn digamma(mut x: f64) -> f64 {
    debug_assert!(x > 0.0);
    let mut result = 0.0;
    // Shift x above 6 for the asymptotic expansion.
    while x < 10.0 {
        result -= 1.0 / x;
        x += 1.0;
    }
    let inv = 1.0 / x;
    let inv2 = inv * inv;
    result += x.ln() - 0.5 * inv
        - inv2
            * (1.0 / 12.0 - inv2 * (1.0 / 120.0 - inv2 * (1.0 / 252.0 - inv2 / 240.0)));
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_sum_exp_matches_direct() {
        let xs = [0.1f64, -2.0, 3.5];
        let direct: f64 = xs.iter().map(|x| x.exp()).sum::<f64>().ln();
        assert!((log_sum_exp(&xs) - direct).abs() < 1e-12);
    }

    #[test]
    fn log_sum_exp_handles_extremes() {
        assert!((log_sum_exp(&[-1000.0, -1000.0]) - (-1000.0 + 2f64.ln())).abs() < 1e-9);
        assert_eq!(log_sum_exp(&[]), f64::NEG_INFINITY);
        assert!(log_sum_exp(&[1e300_f64.ln(), 1e300_f64.ln()]).is_finite());
    }

    #[test]
    fn softmax_normalises() {
        let mut scores = vec![1.0, 2.0, 3.0];
        softmax_in_place(&mut scores);
        assert!((scores.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(scores[2] > scores[1] && scores[1] > scores[0]);
    }

    #[test]
    fn sigmoid_is_stable_and_symmetric() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!((sigmoid(5.0) + sigmoid(-5.0) - 1.0).abs() < 1e-12);
        assert_eq!(sigmoid(-800.0), 0.0);
        assert_eq!(sigmoid(800.0), 1.0);
    }

    #[test]
    fn max_abs_diff_finds_largest() {
        let a = vec![vec![0.1, 0.9], vec![0.5, 0.5]];
        let b = vec![vec![0.1, 0.9], vec![0.2, 0.8]];
        assert!((max_abs_diff(&a, &b) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn digamma_matches_known_values() {
        // ψ(1) = -γ (Euler–Mascheroni).
        assert!((digamma(1.0) + 0.577_215_664_901_532_9).abs() < 1e-10);
        // ψ(x+1) = ψ(x) + 1/x.
        for &x in &[0.3, 1.7, 4.2, 11.0] {
            assert!((digamma(x + 1.0) - digamma(x) - 1.0 / x).abs() < 1e-10);
        }
        // ψ(1/2) = -γ - 2 ln 2.
        assert!((digamma(0.5) + 0.577_215_664_901_532_9 + 2.0 * 2f64.ln()).abs() < 1e-10);
    }
}
