//! # hc-baselines — truth-inference baselines
//!
//! Rust ports of the eight label-aggregation baselines the paper compares
//! against (§IV-B): majority vote ([`mv`]), Dawid–Skene ([`ds`]),
//! ZenCrowd ([`zc`]), GLAD ([`glad`]), CRH ([`crh`]), BWA ([`bwa`]), BCC
//! ([`bcc`]) and EBCC ([`ebcc`]). All implement the [`Aggregator`] trait
//! over an `hc-data` answer matrix and return class posteriors usable as
//! HC belief initialisers (Figure 6).
//!
//! Ports are re-derived from the original model descriptions — the
//! paper's experiments use the Python reference implementations of Zheng
//! et al. \[29\] and Li et al. \[35\], which are unavailable offline. Each
//! module's docs state the model and update equations implemented.

#![warn(missing_docs)]

pub mod aggregate;
pub mod bcc;
pub mod bwa;
pub mod crh;
pub mod ds;
pub mod ebcc;
pub mod glad;
pub mod mv;
pub mod mv_variants;
pub mod util;
pub mod zc;

pub use aggregate::{AggregateError, AggregateResult, Aggregator, Result};
pub use bcc::Bcc;
pub use bwa::Bwa;
pub use crh::Crh;
pub use ds::DawidSkene;
pub use ebcc::Ebcc;
pub use glad::Glad;
pub use mv::MajorityVote;
pub use mv_variants::{MvBeta, MvFreq, PairedMv};
pub use zc::ZenCrowd;

/// All eight baselines with default hyperparameters, in the order the
/// paper lists them — the sweep set of Figures 2 and 6.
pub fn all_aggregators() -> Vec<Box<dyn Aggregator>> {
    vec![
        Box::new(MajorityVote::new()),
        Box::new(DawidSkene::new()),
        Box::new(ZenCrowd::new()),
        Box::new(Glad::new()),
        Box::new(Crh::new()),
        Box::new(Bwa::new()),
        Box::new(Bcc::new()),
        Box::new(Ebcc::new()),
    ]
}

/// Looks up an aggregator by its table name (`"MV"`, `"DS"`, …).
pub fn aggregator_by_name(name: &str) -> Option<Box<dyn Aggregator>> {
    all_aggregators().into_iter().find(|a| a.name() == name)
}

#[cfg(test)]
pub(crate) mod test_support {
    use hc_data::{AnswerEntry, AnswerMatrix, CrowdDataset};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Independent binary items, every worker answers every item, worker
    /// `w` correct with probability `accuracies[w]`.
    pub fn heterogeneous_dataset(n_items: usize, accuracies: &[f64], seed: u64) -> CrowdDataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let truth: Vec<u8> = (0..n_items).map(|_| rng.gen_range(0..2u8)).collect();
        let mut entries = Vec::with_capacity(n_items * accuracies.len());
        for (item, &t) in truth.iter().enumerate() {
            for (worker, &acc) in accuracies.iter().enumerate() {
                let label = if rng.gen_bool(acc) { t } else { 1 - t };
                entries.push(AnswerEntry {
                    item: item as u32,
                    worker: worker as u32,
                    label,
                });
            }
        }
        let matrix = AnswerMatrix::new(n_items, accuracies.len(), 2, entries).unwrap();
        CrowdDataset::new(matrix, truth, accuracies.to_vec()).unwrap()
    }

    /// A corpus with *correlated* workers: items split into an easy and a
    /// confusing subpopulation; two of the five workers share a
    /// systematic error mode on the confusing items (they both answer 0
    /// there regardless of truth), violating conditional independence
    /// given the class — the regime EBCC targets.
    pub fn correlated_worker_dataset(n_items: usize, seed: u64) -> CrowdDataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let truth: Vec<u8> = (0..n_items).map(|_| rng.gen_range(0..2u8)).collect();
        let confusing: Vec<bool> = (0..n_items).map(|_| rng.gen_bool(0.3)).collect();
        let accuracies = [0.85, 0.85, 0.8, 0.8, 0.8];
        let mut entries = Vec::new();
        for (item, &t) in truth.iter().enumerate() {
            for (worker, &acc) in accuracies.iter().enumerate() {
                let label = if worker < 2 && confusing[item] {
                    // Correlated systematic mode.
                    0
                } else if rng.gen_bool(acc) {
                    t
                } else {
                    1 - t
                };
                entries.push(AnswerEntry {
                    item: item as u32,
                    worker: worker as u32,
                    label,
                });
            }
        }
        let matrix = AnswerMatrix::new(n_items, accuracies.len(), 2, entries).unwrap();
        CrowdDataset::new(matrix, truth, accuracies.to_vec()).unwrap()
    }

    /// Accuracy of an aggregation result's MAP labels on the dataset.
    pub fn labeled_accuracy(
        dataset: &CrowdDataset,
        result: &crate::aggregate::AggregateResult,
    ) -> f64 {
        dataset.accuracy_of(&result.map_labels())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use test_support::{heterogeneous_dataset, labeled_accuracy};

    #[test]
    fn registry_names_are_unique_and_complete() {
        let aggs = all_aggregators();
        assert_eq!(aggs.len(), 8);
        let names: Vec<&str> = aggs.iter().map(|a| a.name()).collect();
        assert_eq!(
            names,
            vec!["MV", "DS", "ZC", "GLAD", "CRH", "BWA", "BCC", "EBCC"]
        );
    }

    #[test]
    fn lookup_by_name() {
        assert!(aggregator_by_name("EBCC").is_some());
        assert!(aggregator_by_name("XYZ").is_none());
    }

    #[test]
    fn every_baseline_beats_coin_flip_on_easy_corpus() {
        let data = heterogeneous_dataset(200, &[0.9, 0.85, 0.8, 0.75], 99);
        for agg in all_aggregators() {
            let r = agg.aggregate(&data.matrix).unwrap();
            assert!(r.validate(), "{} produced invalid result", agg.name());
            let acc = labeled_accuracy(&data, &r);
            assert!(acc > 0.8, "{} accuracy {acc}", agg.name());
        }
    }

    #[test]
    fn confusion_matrix_models_dominate_on_heterogeneous_crowd() {
        // The Figure 6 ordering: EBCC/DS/BCC should be at least as good
        // as plain MV when worker quality varies widely.
        let data = heterogeneous_dataset(800, &[0.95, 0.93, 0.55, 0.55, 0.55, 0.55], 100);
        let mv = labeled_accuracy(&data, &MajorityVote::new().aggregate(&data.matrix).unwrap());
        for name in ["DS", "BCC", "EBCC"] {
            let agg = aggregator_by_name(name).unwrap();
            let acc = labeled_accuracy(&data, &agg.aggregate(&data.matrix).unwrap());
            assert!(acc >= mv, "{name} {acc} should be >= MV {mv}");
        }
    }
}
