//! Crowd answer-latency modeling — the waiting-time side of the paper's
//! k trade-off (§IV-C(1): "In each round, larger tasks set does not
//! noticeably increase the waiting time to complete answer collection.
//! Of course, we can accomplish our tasks faster … if we take a larger
//! k").
//!
//! Each worker answers the queries of a round concurrently with the
//! other workers; within one worker, queries are answered sequentially.
//! A round therefore takes `max_over_workers(Σ_queries latency)`, and a
//! whole run takes the sum of its rounds plus a per-round dispatch
//! overhead — which is exactly why few large rounds finish sooner than
//! many single-query rounds at equal budget.

use hc_core::Worker;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Latency model of a simulated crowd.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyModel {
    /// Fixed per-round dispatch/collection overhead (seconds) — task
    /// publication, worker notification, payout processing.
    pub round_overhead: f64,
    /// Mean seconds a worker spends answering one query.
    pub mean_answer_secs: f64,
    /// Multiplicative jitter half-range: an answer takes
    /// `mean · U(1 − jitter, 1 + jitter)` seconds.
    pub jitter: f64,
    /// Accuracy slowdown: seconds added per answer, per point of
    /// accuracy above 0.5 (experts deliberate; spammers click).
    pub care_secs_per_accuracy: f64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel {
            round_overhead: 30.0,
            mean_answer_secs: 12.0,
            jitter: 0.4,
            care_secs_per_accuracy: 20.0,
        }
    }
}

impl LatencyModel {
    /// Sampled seconds for one answer from `worker`.
    pub fn answer_secs(&self, worker: &Worker, rng: &mut impl Rng) -> f64 {
        let care = (worker.accuracy.rate() - 0.5) * self.care_secs_per_accuracy;
        let base = self.mean_answer_secs + care;
        let factor = if self.jitter > 0.0 {
            rng.gen_range(1.0 - self.jitter..=1.0 + self.jitter)
        } else {
            1.0
        };
        base * factor
    }

    /// Discards the jitter draws [`Self::answer_secs`] would have
    /// consumed for `n` delivered answers — used by checkpoint restore
    /// to fast-forward a freshly seeded latency RNG to its recorded
    /// position. Jitter-free models draw nothing, so this is a no-op.
    pub fn skip_jitter_draws(&self, rng: &mut impl Rng, n: u64) {
        if self.jitter > 0.0 {
            for _ in 0..n {
                let _ = rng.gen_range(1.0 - self.jitter..=1.0 + self.jitter);
            }
        }
    }

    /// Wall-clock seconds for one round of `k` queries answered by every
    /// worker of the panel: workers run in parallel, their own queries
    /// sequentially.
    pub fn round_secs(&self, workers: &[Worker], k: usize, rng: &mut impl Rng) -> f64 {
        let slowest = workers
            .iter()
            .map(|w| (0..k).map(|_| self.answer_secs(w, rng)).sum::<f64>())
            .fold(0.0, f64::max);
        self.round_overhead + slowest
    }
}

/// Accumulated wall-clock accounting for a simulated run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct WallClock {
    /// Total simulated seconds.
    pub total_secs: f64,
    /// Rounds simulated.
    pub rounds: usize,
}

impl WallClock {
    /// Adds one round's wall time.
    pub fn record_round(&mut self, secs: f64) {
        self.total_secs += secs;
        self.rounds += 1;
    }

    /// Mean seconds per round.
    pub fn mean_round_secs(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.total_secs / self.rounds as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn workers(rates: &[f64]) -> Vec<Worker> {
        rates
            .iter()
            .enumerate()
            .map(|(i, &r)| Worker::new(i as u32, r).unwrap())
            .collect()
    }

    #[test]
    fn experts_deliberate_longer() {
        let model = LatencyModel {
            jitter: 0.0,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(1);
        let fast = model.answer_secs(&workers(&[0.55])[0], &mut rng);
        let slow = model.answer_secs(&workers(&[0.95])[0], &mut rng);
        assert!(slow > fast);
        assert!((slow - fast - 0.4 * 20.0).abs() < 1e-9);
    }

    #[test]
    fn round_time_is_max_over_workers_not_sum() {
        let model = LatencyModel {
            jitter: 0.0,
            round_overhead: 0.0,
            care_secs_per_accuracy: 0.0,
            mean_answer_secs: 10.0,
        };
        let mut rng = StdRng::seed_from_u64(2);
        let one_worker = model.round_secs(&workers(&[0.9]), 3, &mut rng);
        let five_workers = model.round_secs(&workers(&[0.9; 5]), 3, &mut rng);
        assert!((one_worker - 30.0).abs() < 1e-9);
        assert!((five_workers - 30.0).abs() < 1e-9, "parallel workers");
    }

    #[test]
    fn fewer_larger_rounds_finish_sooner_at_equal_budget() {
        // 60 queries as 60×k=1 vs 20×k=3: per-query time is equal, so
        // the difference is 40 extra round overheads.
        let model = LatencyModel {
            jitter: 0.0,
            ..Default::default()
        };
        let panel = workers(&[0.92, 0.95]);
        let mut rng = StdRng::seed_from_u64(3);
        let mut small_k = WallClock::default();
        for _ in 0..60 {
            small_k.record_round(model.round_secs(&panel, 1, &mut rng));
        }
        let mut large_k = WallClock::default();
        for _ in 0..20 {
            large_k.record_round(model.round_secs(&panel, 3, &mut rng));
        }
        assert!(large_k.total_secs < small_k.total_secs);
        let saved = small_k.total_secs - large_k.total_secs;
        assert!((saved - 40.0 * model.round_overhead).abs() < 1e-6);
    }

    #[test]
    fn jitter_stays_in_band_and_is_seeded() {
        let model = LatencyModel::default();
        let w = workers(&[0.8]);
        let mut a = StdRng::seed_from_u64(4);
        let mut b = StdRng::seed_from_u64(4);
        for _ in 0..100 {
            let x = model.answer_secs(&w[0], &mut a);
            let y = model.answer_secs(&w[0], &mut b);
            assert_eq!(x, y);
            let base = model.mean_answer_secs + 0.3 * model.care_secs_per_accuracy;
            assert!(x >= base * 0.6 - 1e-9 && x <= base * 1.4 + 1e-9);
        }
    }

    #[test]
    fn wall_clock_aggregates() {
        let mut clock = WallClock::default();
        assert_eq!(clock.mean_round_secs(), 0.0);
        clock.record_round(10.0);
        clock.record_round(20.0);
        assert_eq!(clock.rounds, 2);
        assert!((clock.mean_round_secs() - 15.0).abs() < 1e-12);
    }
}
