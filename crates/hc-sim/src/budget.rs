//! Thread-safe budget accounting for concurrent experiment sweeps.
//!
//! The HC loop tracks its own per-run budget; this ledger exists for the
//! evaluation harness, where several parameter settings share one global
//! answer budget across worker threads (`hc-eval` runs sweeps with
//! crossbeam scoped threads).

use parking_lot::Mutex;
use std::sync::Arc;

/// A shared, thread-safe checking-answer budget.
#[derive(Debug, Clone)]
pub struct BudgetLedger {
    inner: Arc<Mutex<Inner>>,
}

#[derive(Debug)]
struct Inner {
    remaining: u64,
    spent: u64,
}

impl BudgetLedger {
    /// A ledger holding `total` budget units.
    pub fn new(total: u64) -> Self {
        BudgetLedger {
            inner: Arc::new(Mutex::new(Inner {
                remaining: total,
                spent: 0,
            })),
        }
    }

    /// Atomically spends `amount` if available; returns whether it was
    /// charged.
    pub fn try_spend(&self, amount: u64) -> bool {
        let mut inner = self.inner.lock();
        if inner.remaining >= amount {
            inner.remaining -= amount;
            inner.spent += amount;
            true
        } else {
            false
        }
    }

    /// Budget still available.
    pub fn remaining(&self) -> u64 {
        self.inner.lock().remaining
    }

    /// Budget charged so far.
    pub fn spent(&self) -> u64 {
        self.inner.lock().spent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spends_until_exhausted() {
        let ledger = BudgetLedger::new(10);
        assert!(ledger.try_spend(4));
        assert!(ledger.try_spend(6));
        assert!(!ledger.try_spend(1));
        assert_eq!(ledger.remaining(), 0);
        assert_eq!(ledger.spent(), 10);
    }

    #[test]
    fn rejects_overdraft_without_partial_charge() {
        let ledger = BudgetLedger::new(5);
        assert!(!ledger.try_spend(6));
        assert_eq!(ledger.remaining(), 5);
        assert_eq!(ledger.spent(), 0);
    }

    #[test]
    fn concurrent_spends_never_overdraw() {
        let ledger = BudgetLedger::new(1000);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let ledger = ledger.clone();
                scope.spawn(move || {
                    while ledger.try_spend(3) {}
                });
            }
        });
        assert!(ledger.remaining() < 3);
        assert_eq!(ledger.spent() + ledger.remaining(), 1000);
    }
}
