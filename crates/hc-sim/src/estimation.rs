//! Worker-accuracy estimation from gold (known-truth) sample questions.
//!
//! §II-A: "The accuracy rates of each worker cr ∈ C can be easily
//! estimated with a set of sample tasks with ground truth." The main
//! experiments use the generator's true accuracies; this module provides
//! the realistic alternative — estimate from a gold subset — plus Wilson
//! confidence intervals so callers can size the gold set. The
//! `ext-estimation` experiment measures how the HC loop degrades when it
//! runs on estimates instead of true rates.

use hc_data::CrowdDataset;
use rand::Rng;

/// Samples `n_gold` distinct item indices to serve as gold questions.
pub fn sample_gold_items(n_items: usize, n_gold: usize, rng: &mut impl Rng) -> Vec<usize> {
    let n_gold = n_gold.min(n_items);
    // Partial Fisher–Yates over the index range.
    let mut indices: Vec<usize> = (0..n_items).collect();
    for i in 0..n_gold {
        let j = rng.gen_range(i..n_items);
        indices.swap(i, j);
    }
    indices.truncate(n_gold);
    indices
}

/// Per-worker accuracy estimates from the gold subset, via the Laplace
/// rule of succession `(correct + 1) / (total + 2)`, clamped into the
/// admissible `[0.5, 1.0)` range (§II-A).
///
/// The smoothing matters beyond statistics: a raw estimate of exactly
/// 1.0 would make the Bayes update treat the worker as infallible, and
/// two "infallible" workers disagreeing produces an impossible-evidence
/// error. Finite gold sets can never justify certainty, and the Laplace
/// estimator encodes exactly that. Workers with no gold answers default
/// to the chance rate 0.5.
pub fn estimate_accuracies(dataset: &CrowdDataset, gold_items: &[usize]) -> Vec<f64> {
    let mut correct = vec![0u32; dataset.n_workers()];
    let mut total = vec![0u32; dataset.n_workers()];
    for &item in gold_items {
        for e in dataset.matrix.by_item(item) {
            total[e.worker as usize] += 1;
            if e.label == dataset.ground_truth[item] {
                correct[e.worker as usize] += 1;
            }
        }
    }
    correct
        .iter()
        .zip(&total)
        .map(|(&c, &t)| {
            if t == 0 {
                0.5
            } else {
                ((c as f64 + 1.0) / (t as f64 + 2.0)).max(0.5)
            }
        })
        .collect()
}

/// Wilson score interval for a binomial proportion — the standard
/// small-sample confidence interval for an estimated accuracy rate.
///
/// `z` is the normal quantile (1.96 for 95%). Returns `(lo, hi)` within
/// `[0, 1]`; `(0, 1)` when there are no trials.
///
/// The math lives in [`hc_core::telemetry::crowd::wilson_interval`]
/// (the crowd-health ledger uses the same interval for its empirical
/// agreement rates); this wrapper keeps the `u32` signature this module
/// has always exposed.
pub fn wilson_interval(correct: u32, total: u32, z: f64) -> (f64, f64) {
    hc_core::telemetry::crowd::wilson_interval(u64::from(correct), u64::from(total), z)
}

/// A gold-set accuracy estimate with its Wilson uncertainty.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccuracyEstimate {
    /// Laplace-smoothed point estimate, clamped to `[0.5, 1.0)` (what
    /// [`estimate_accuracies`] returns).
    pub rate: f64,
    /// Wilson interval half-width at the requested confidence — the
    /// `±` on the *raw* proportion (before Laplace smoothing), so it
    /// honestly reflects the gold-set evidence.
    pub half_width: f64,
    /// Gold answers this worker contributed.
    pub total: u32,
}

/// [`estimate_accuracies`] plus per-worker Wilson half-widths, so
/// callers can see not just the estimate but how much gold evidence
/// backs it. `z` is the normal quantile (1.96 for 95%). Workers with no
/// gold answers get the chance rate with the vacuous half-width 0.5.
pub fn estimate_accuracies_with_intervals(
    dataset: &CrowdDataset,
    gold_items: &[usize],
    z: f64,
) -> Vec<AccuracyEstimate> {
    let mut correct = vec![0u32; dataset.n_workers()];
    let mut total = vec![0u32; dataset.n_workers()];
    for &item in gold_items {
        for e in dataset.matrix.by_item(item) {
            total[e.worker as usize] += 1;
            if e.label == dataset.ground_truth[item] {
                correct[e.worker as usize] += 1;
            }
        }
    }
    let rates = estimate_accuracies(dataset, gold_items);
    rates
        .into_iter()
        .zip(correct.iter().zip(&total))
        .map(|(rate, (&c, &t))| AccuracyEstimate {
            rate,
            half_width: hc_core::telemetry::crowd::wilson_half_width(u64::from(c), u64::from(t), z),
            total: t,
        })
        .collect()
}

/// Gold-set size needed so the Wilson half-width at accuracy `p` stays
/// below `half_width` — a planning helper for "how many sample tasks do
/// I need before the θ-split is trustworthy?".
pub fn gold_size_for_half_width(p: f64, half_width: f64, z: f64) -> usize {
    debug_assert!((0.0..=1.0).contains(&p));
    debug_assert!(half_width > 0.0);
    // Solve the normal-approximation bound n >= z^2 p(1-p) / w^2 and then
    // verify/adjust against the exact Wilson width.
    let mut n = ((z * z * p * (1.0 - p)) / (half_width * half_width)).ceil() as usize;
    n = n.max(1);
    loop {
        let correct = (p * n as f64).round() as u32;
        let (lo, hi) = wilson_interval(correct, n as u32, z);
        if (hi - lo) / 2.0 <= half_width || n > 1_000_000 {
            return n;
        }
        n = n + n / 8 + 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hc_data::synth::{generate, SynthConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn corpus(seed: u64) -> CrowdDataset {
        let mut config = SynthConfig::paper_default();
        config.n_tasks = 100;
        generate(&config, &mut StdRng::seed_from_u64(seed)).unwrap()
    }

    #[test]
    fn gold_sample_is_distinct_and_sized() {
        let mut rng = StdRng::seed_from_u64(1);
        let gold = sample_gold_items(50, 10, &mut rng);
        assert_eq!(gold.len(), 10);
        let mut dedup = gold.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 10);
        assert!(gold.iter().all(|&i| i < 50));
        // Oversized requests saturate.
        assert_eq!(sample_gold_items(5, 99, &mut rng).len(), 5);
    }

    #[test]
    fn estimates_approach_true_accuracies_with_large_gold_sets() {
        let dataset = corpus(2);
        let mut rng = StdRng::seed_from_u64(3);
        let gold = sample_gold_items(dataset.n_items(), 400, &mut rng);
        let estimates = estimate_accuracies(&dataset, &gold);
        for (est, &truth) in estimates.iter().zip(&dataset.worker_accuracies) {
            assert!(
                (est - truth).abs() < 0.06,
                "estimate {est} vs truth {truth}"
            );
        }
    }

    #[test]
    fn small_gold_sets_are_noisier_but_admissible() {
        let dataset = corpus(4);
        let mut rng = StdRng::seed_from_u64(5);
        let gold = sample_gold_items(dataset.n_items(), 10, &mut rng);
        let estimates = estimate_accuracies(&dataset, &gold);
        assert!(estimates.iter().all(|&a| (0.5..=1.0).contains(&a)));
    }

    #[test]
    fn no_gold_answers_default_to_chance() {
        let dataset = corpus(6);
        let estimates = estimate_accuracies(&dataset, &[]);
        assert!(estimates.iter().all(|&a| a == 0.5));
    }

    #[test]
    fn wilson_interval_properties() {
        // Contains the point estimate and is inside [0, 1].
        let (lo, hi) = wilson_interval(8, 10, 1.96);
        assert!(lo < 0.8 && 0.8 < hi);
        assert!((0.0..=1.0).contains(&lo) && (0.0..=1.0).contains(&hi));
        // Narrows with more trials.
        let (lo2, hi2) = wilson_interval(80, 100, 1.96);
        assert!(hi2 - lo2 < hi - lo);
        // Degenerate case.
        assert_eq!(wilson_interval(0, 0, 1.96), (0.0, 1.0));
        // Extreme proportions stay in range.
        let (lo3, hi3) = wilson_interval(10, 10, 1.96);
        assert!(lo3 > 0.6 && hi3 <= 1.0);
    }

    #[test]
    fn interval_estimates_carry_evidence_weighted_half_widths() {
        let dataset = corpus(8);
        let mut rng = StdRng::seed_from_u64(9);
        let small = sample_gold_items(dataset.n_items(), 10, &mut rng);
        let large = sample_gold_items(dataset.n_items(), 400, &mut rng);
        let narrow = estimate_accuracies_with_intervals(&dataset, &large, 1.96);
        let wide = estimate_accuracies_with_intervals(&dataset, &small, 1.96);
        // Point estimates match the plain estimator exactly.
        let plain = estimate_accuracies(&dataset, &large);
        assert_eq!(
            narrow.iter().map(|e| e.rate).collect::<Vec<_>>(),
            plain
        );
        // More gold evidence, tighter intervals (workers all answer
        // every item in this corpus, so per-worker totals track the
        // gold-set size).
        for (n, w) in narrow.iter().zip(&wide) {
            assert!(n.total > w.total);
            assert!(n.half_width < w.half_width, "{n:?} vs {w:?}");
            assert!(n.half_width > 0.0 && w.half_width <= 0.5 + 1e-12);
        }
        // No gold at all: chance rate, vacuous interval.
        let none = estimate_accuracies_with_intervals(&dataset, &[], 1.96);
        assert!(none.iter().all(|e| e.rate == 0.5 && e.half_width == 0.5 && e.total == 0));
    }

    #[test]
    fn gold_size_scales_with_precision() {
        let loose = gold_size_for_half_width(0.9, 0.1, 1.96);
        let tight = gold_size_for_half_width(0.9, 0.02, 1.96);
        assert!(tight > loose);
        // The returned size actually achieves the width.
        let n = gold_size_for_half_width(0.8, 0.05, 1.96) as u32;
        let (lo, hi) = wilson_interval((0.8 * n as f64).round() as u32, n, 1.96);
        assert!((hi - lo) / 2.0 <= 0.05 + 1e-9);
    }
}
