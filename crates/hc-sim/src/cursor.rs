//! Shared codec helpers for oracle checkpoint cursors.
//!
//! Every simulated-crowd oracle serializes its mutable progress —
//! attempt counters, churn lists, RNG positions — to a compact JSON
//! cursor string via [`hc_core::session::ResumableOracle`]. The helpers
//! here mirror the session codec's conventions: integers as exact-f64
//! JSON numbers (guarded below `2^53`), floats that must restore
//! bit-for-bit as 16-hex-digit IEEE-754 bit patterns, and all failures
//! mapped to [`HcError::InvalidCheckpoint`] so a torn or foreign cursor
//! can never half-apply.

use hc_core::telemetry::json::{self, Json};
use hc_core::{HcError, Result};
use std::collections::BTreeMap;

pub(crate) fn bad(what: &str) -> HcError {
    HcError::InvalidCheckpoint {
        reason: format!("oracle cursor: missing or invalid `{what}`"),
    }
}

/// Parses a cursor string, rejecting anything that is not a JSON object.
pub(crate) fn parse(cursor: &str) -> Result<Json> {
    let v = json::parse(cursor).map_err(|e| HcError::InvalidCheckpoint {
        reason: format!("oracle cursor is not valid JSON: {e}"),
    })?;
    match v {
        Json::Obj(_) => Ok(v),
        _ => Err(HcError::InvalidCheckpoint {
            reason: "oracle cursor is not a JSON object".into(),
        }),
    }
}

pub(crate) fn obj(entries: Vec<(&str, Json)>) -> Json {
    let mut map = BTreeMap::new();
    for (k, v) in entries {
        map.insert(k.to_string(), v);
    }
    Json::Obj(map)
}

pub(crate) fn num(v: u64) -> Json {
    debug_assert!(v < (1u64 << 53), "u64 exceeds exact-f64 range");
    Json::Num(v as f64)
}

pub(crate) fn get_u64(v: &Json, key: &str) -> Result<u64> {
    v.get(key).and_then(Json::as_u64).ok_or_else(|| bad(key))
}

pub(crate) fn get_usize(v: &Json, key: &str) -> Result<usize> {
    v.get(key).and_then(Json::as_usize).ok_or_else(|| bad(key))
}

pub(crate) fn get_str<'a>(v: &'a Json, key: &str) -> Result<&'a str> {
    v.get(key).and_then(Json::as_str).ok_or_else(|| bad(key))
}

pub(crate) fn get_arr<'a>(v: &'a Json, key: &str) -> Result<&'a [Json]> {
    v.get(key).and_then(Json::as_arr).ok_or_else(|| bad(key))
}

/// Encodes a float as its IEEE-754 bit pattern for lossless restore.
pub(crate) fn bits_json(v: f64) -> Json {
    Json::Str(format!("{:016x}", v.to_bits()))
}

pub(crate) fn bits_from(item: &Json, key: &str) -> Result<f64> {
    let s = item.as_str().ok_or_else(|| bad(key))?;
    if s.len() != 16 {
        return Err(bad(key));
    }
    let bits = u64::from_str_radix(s, 16).map_err(|_| bad(key))?;
    Ok(f64::from_bits(bits))
}

pub(crate) fn get_bits_f64(v: &Json, key: &str) -> Result<f64> {
    let item = v.get(key).ok_or_else(|| bad(key))?;
    bits_from(item, key)
}

pub(crate) fn u64_arr(values: &[u64]) -> Json {
    Json::Arr(values.iter().map(|&x| num(x)).collect())
}

pub(crate) fn get_u64_arr(v: &Json, key: &str) -> Result<Vec<u64>> {
    get_arr(v, key)?
        .iter()
        .map(|x| x.as_u64().ok_or_else(|| bad(key)))
        .collect()
}

pub(crate) fn u32_arr(values: &[u32]) -> Json {
    Json::Arr(values.iter().map(|&x| num(u64::from(x))).collect())
}

pub(crate) fn get_u32_arr(v: &Json, key: &str) -> Result<Vec<u32>> {
    get_arr(v, key)?
        .iter()
        .map(|x| {
            x.as_u64()
                .and_then(|n| u32::try_from(n).ok())
                .ok_or_else(|| bad(key))
        })
        .collect()
}

pub(crate) fn f64_bits_arr(values: &[f64]) -> Json {
    Json::Arr(values.iter().map(|&x| bits_json(x)).collect())
}

pub(crate) fn get_f64_bits_arr(v: &Json, key: &str) -> Result<Vec<f64>> {
    get_arr(v, key)?
        .iter()
        .map(|item| bits_from(item, key))
        .collect()
}
